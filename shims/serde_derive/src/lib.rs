//! Offline shim: no-op `Serialize` / `Deserialize` derives.
//!
//! The workspace derives serde traits on model types for downstream
//! interoperability, but nothing in-tree serializes through serde (the
//! binary formats are hand-rolled in `synthpop::io` and
//! `episim_core::checkpoint`). These derives therefore expand to nothing,
//! which keeps the annotations compiling without crates.io access.

use proc_macro::TokenStream;

/// No-op `#[derive(Serialize)]`.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// No-op `#[derive(Deserialize)]`.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
