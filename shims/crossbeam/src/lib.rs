//! Offline shim for the `crossbeam::channel` API surface this workspace
//! uses: unbounded MPMC channels with cloneable senders *and* receivers,
//! `send` / `recv` / `try_recv` / `recv_timeout`, and disconnect
//! detection. Built on `std::sync::{Mutex, Condvar}`; not as fast as real
//! crossbeam, but semantically equivalent for the runtime's needs.

pub mod channel {
    use std::collections::VecDeque;
    use std::fmt;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::{Arc, Condvar, Mutex};
    use std::time::{Duration, Instant};

    struct Inner<T> {
        queue: Mutex<VecDeque<T>>,
        ready: Condvar,
        senders: AtomicUsize,
        receivers: AtomicUsize,
    }

    /// Sending half (cloneable).
    pub struct Sender<T> {
        inner: Arc<Inner<T>>,
    }

    /// Receiving half (cloneable — the channel is MPMC).
    pub struct Receiver<T> {
        inner: Arc<Inner<T>>,
    }

    /// The channel is disconnected (every receiver dropped); the value is
    /// returned to the caller.
    pub struct SendError<T>(pub T);

    impl<T> fmt::Debug for SendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            write!(f, "SendError(..)")
        }
    }

    /// The channel is empty and every sender dropped.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct RecvError;

    /// Outcome of a non-blocking receive attempt.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum TryRecvError {
        /// Nothing queued right now.
        Empty,
        /// Empty and every sender dropped.
        Disconnected,
    }

    /// Outcome of a bounded-wait receive attempt.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum RecvTimeoutError {
        /// Nothing arrived within the timeout.
        Timeout,
        /// Empty and every sender dropped.
        Disconnected,
    }

    /// Create an unbounded MPMC channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let inner = Arc::new(Inner {
            queue: Mutex::new(VecDeque::new()),
            ready: Condvar::new(),
            senders: AtomicUsize::new(1),
            receivers: AtomicUsize::new(1),
        });
        (
            Sender {
                inner: inner.clone(),
            },
            Receiver { inner },
        )
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            self.inner.senders.fetch_add(1, Ordering::Relaxed);
            Sender {
                inner: self.inner.clone(),
            }
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            if self.inner.senders.fetch_sub(1, Ordering::AcqRel) == 1 {
                // Last sender gone: wake blocked receivers so they observe
                // the disconnect.
                let _guard = self.inner.queue.lock().unwrap();
                self.inner.ready.notify_all();
            }
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            self.inner.receivers.fetch_add(1, Ordering::Relaxed);
            Receiver {
                inner: self.inner.clone(),
            }
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            self.inner.receivers.fetch_sub(1, Ordering::AcqRel);
        }
    }

    impl<T> Sender<T> {
        /// Enqueue `value`; fails only when every receiver is gone.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            if self.inner.receivers.load(Ordering::Acquire) == 0 {
                return Err(SendError(value));
            }
            let mut q = self.inner.queue.lock().unwrap();
            q.push_back(value);
            drop(q);
            self.inner.ready.notify_one();
            Ok(())
        }
    }

    impl<T> Receiver<T> {
        fn disconnected(&self) -> bool {
            self.inner.senders.load(Ordering::Acquire) == 0
        }

        /// Block until a value arrives or the channel disconnects.
        pub fn recv(&self) -> Result<T, RecvError> {
            let mut q = self.inner.queue.lock().unwrap();
            loop {
                if let Some(v) = q.pop_front() {
                    return Ok(v);
                }
                if self.disconnected() {
                    return Err(RecvError);
                }
                q = self.inner.ready.wait(q).unwrap();
            }
        }

        /// Whether the channel currently holds no messages (advisory — the
        /// answer can be stale by the time the caller acts on it, same as
        /// real crossbeam's `is_empty`).
        pub fn is_empty(&self) -> bool {
            self.inner.queue.lock().unwrap().is_empty()
        }

        /// Non-blocking receive.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            let mut q = self.inner.queue.lock().unwrap();
            match q.pop_front() {
                Some(v) => Ok(v),
                None if self.disconnected() => Err(TryRecvError::Disconnected),
                None => Err(TryRecvError::Empty),
            }
        }

        /// Receive, waiting at most `timeout`.
        pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
            let deadline = Instant::now() + timeout;
            let mut q = self.inner.queue.lock().unwrap();
            loop {
                if let Some(v) = q.pop_front() {
                    return Ok(v);
                }
                if self.disconnected() {
                    return Err(RecvTimeoutError::Disconnected);
                }
                let now = Instant::now();
                if now >= deadline {
                    return Err(RecvTimeoutError::Timeout);
                }
                let (guard, res) = self.inner.ready.wait_timeout(q, deadline - now).unwrap();
                q = guard;
                if res.timed_out() && q.is_empty() {
                    if self.disconnected() {
                        return Err(RecvTimeoutError::Disconnected);
                    }
                    return Err(RecvTimeoutError::Timeout);
                }
            }
        }
    }

    #[cfg(test)]
    mod tests {
        use super::*;
        use std::time::Duration;

        #[test]
        fn send_recv_roundtrip() {
            let (tx, rx) = unbounded();
            tx.send(5u32).unwrap();
            tx.send(6).unwrap();
            assert_eq!(rx.recv(), Ok(5));
            assert_eq!(rx.try_recv(), Ok(6));
            assert_eq!(rx.try_recv(), Err(TryRecvError::Empty));
        }

        #[test]
        fn timeout_then_delivery() {
            let (tx, rx) = unbounded();
            assert_eq!(
                rx.recv_timeout(Duration::from_millis(5)),
                Err(RecvTimeoutError::Timeout)
            );
            let h = std::thread::spawn(move || {
                std::thread::sleep(Duration::from_millis(10));
                tx.send(1u8).unwrap();
            });
            assert_eq!(rx.recv_timeout(Duration::from_secs(5)), Ok(1));
            h.join().unwrap();
        }

        #[test]
        fn disconnect_observed() {
            let (tx, rx) = unbounded::<u8>();
            drop(tx);
            assert_eq!(rx.recv(), Err(RecvError));
            assert_eq!(rx.try_recv(), Err(TryRecvError::Disconnected));
            assert_eq!(
                rx.recv_timeout(Duration::from_millis(1)),
                Err(RecvTimeoutError::Disconnected)
            );
        }

        #[test]
        fn send_to_no_receivers_fails() {
            let (tx, rx) = unbounded::<u8>();
            drop(rx);
            assert!(tx.send(1).is_err());
        }

        #[test]
        fn mpmc_across_threads() {
            let (tx, rx) = unbounded::<u64>();
            let n_senders = 4;
            let per = 1000u64;
            let mut handles = Vec::new();
            for s in 0..n_senders {
                let tx = tx.clone();
                handles.push(std::thread::spawn(move || {
                    for i in 0..per {
                        tx.send(s * per + i).unwrap();
                    }
                }));
            }
            drop(tx);
            let rx2 = rx.clone();
            let consumer = std::thread::spawn(move || {
                let mut got = 0u64;
                while rx2.recv().is_ok() {
                    got += 1;
                }
                got
            });
            let mut got = 0u64;
            while rx.recv().is_ok() {
                got += 1;
            }
            for h in handles {
                h.join().unwrap();
            }
            got += consumer.join().unwrap();
            assert_eq!(got, n_senders * per);
        }
    }
}
