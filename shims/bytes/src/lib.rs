//! Offline shim for the `bytes` API surface this workspace uses:
//! [`Buf`] over `&[u8]`, [`BufMut`] over [`BytesMut`], and the
//! [`BytesMut::freeze`] → [`Bytes`] handoff. Little-endian accessors only —
//! exactly what the `EPOP`/`EPCK` binary formats need.

use std::ops::Deref;

/// Read cursor over a byte source (mirrors `bytes::Buf`).
pub trait Buf {
    /// Bytes left to read.
    fn remaining(&self) -> usize;
    /// Copy `dst.len()` bytes out, advancing the cursor.
    ///
    /// # Panics
    /// Panics if fewer than `dst.len()` bytes remain.
    fn copy_to_slice(&mut self, dst: &mut [u8]);

    /// Read one byte.
    fn get_u8(&mut self) -> u8 {
        let mut b = [0u8; 1];
        self.copy_to_slice(&mut b);
        b[0]
    }

    /// Read a little-endian `u16`.
    fn get_u16_le(&mut self) -> u16 {
        let mut b = [0u8; 2];
        self.copy_to_slice(&mut b);
        u16::from_le_bytes(b)
    }

    /// Read a little-endian `u32`.
    fn get_u32_le(&mut self) -> u32 {
        let mut b = [0u8; 4];
        self.copy_to_slice(&mut b);
        u32::from_le_bytes(b)
    }

    /// Read a little-endian `u64`.
    fn get_u64_le(&mut self) -> u64 {
        let mut b = [0u8; 8];
        self.copy_to_slice(&mut b);
        u64::from_le_bytes(b)
    }

    /// Read a little-endian `f32`.
    fn get_f32_le(&mut self) -> f32 {
        f32::from_bits(self.get_u32_le())
    }

    /// Read a little-endian `f64`.
    fn get_f64_le(&mut self) -> f64 {
        f64::from_bits(self.get_u64_le())
    }
}

impl Buf for &[u8] {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn copy_to_slice(&mut self, dst: &mut [u8]) {
        assert!(self.len() >= dst.len(), "buffer underflow");
        let (head, tail) = self.split_at(dst.len());
        dst.copy_from_slice(head);
        *self = tail;
    }
}

/// Write sink (mirrors `bytes::BufMut`).
pub trait BufMut {
    /// Append raw bytes.
    fn put_slice(&mut self, src: &[u8]);

    /// Append one byte.
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    /// Append a little-endian `u16`.
    fn put_u16_le(&mut self, v: u16) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Append a little-endian `u32`.
    fn put_u32_le(&mut self, v: u32) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Append a little-endian `u64`.
    fn put_u64_le(&mut self, v: u64) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Append a little-endian `f32`.
    fn put_f32_le(&mut self, v: f32) {
        self.put_u32_le(v.to_bits());
    }

    /// Append a little-endian `f64`.
    fn put_f64_le(&mut self, v: f64) {
        self.put_u64_le(v.to_bits());
    }
}

/// Growable byte buffer (mirrors `bytes::BytesMut`).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct BytesMut {
    data: Vec<u8>,
}

impl BytesMut {
    /// Empty buffer with reserved capacity.
    pub fn with_capacity(cap: usize) -> Self {
        BytesMut {
            data: Vec::with_capacity(cap),
        }
    }

    /// Freeze into an immutable [`Bytes`].
    pub fn freeze(self) -> Bytes {
        Bytes { data: self.data }
    }

    /// Current length.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Read access to the written bytes (trailing-checksum codecs hash
    /// the body before appending the trailer).
    pub fn as_slice(&self) -> &[u8] {
        &self.data
    }
}

impl AsRef<[u8]> for BytesMut {
    fn as_ref(&self) -> &[u8] {
        &self.data
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.data.extend_from_slice(src);
    }
}

/// Immutable byte container (mirrors `bytes::Bytes`).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Bytes {
    data: Vec<u8>,
}

impl Bytes {
    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }
}

impl Deref for Bytes {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.data
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(data: Vec<u8>) -> Self {
        Bytes { data }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_all_widths() {
        let mut w = BytesMut::with_capacity(32);
        w.put_u8(7);
        w.put_u16_le(300);
        w.put_u32_le(70_000);
        w.put_u64_le(1 << 40);
        w.put_f32_le(1.5);
        w.put_f64_le(-2.25e300);
        w.put_slice(b"xyz");
        let frozen = w.freeze();
        let mut r: &[u8] = &frozen;
        assert_eq!(r.remaining(), frozen.len());
        assert_eq!(r.get_u8(), 7);
        assert_eq!(r.get_u16_le(), 300);
        assert_eq!(r.get_u32_le(), 70_000);
        assert_eq!(r.get_u64_le(), 1 << 40);
        assert_eq!(r.get_f32_le(), 1.5);
        assert_eq!(r.get_f64_le(), -2.25e300);
        let mut tail = [0u8; 3];
        r.copy_to_slice(&mut tail);
        assert_eq!(&tail, b"xyz");
        assert_eq!(r.remaining(), 0);
    }

    #[test]
    #[should_panic(expected = "underflow")]
    fn underflow_panics() {
        let mut r: &[u8] = &[1, 2];
        let mut out = [0u8; 3];
        r.copy_to_slice(&mut out);
    }
}
