//! Offline shim for `criterion`: the subset of the criterion 0.5 API used
//! by this workspace's benches, backed by a simple wall-clock harness.
//!
//! Each `Bencher::iter` call runs a short warm-up, then a fixed number of
//! timed batches (scaled by `sample_size`) and prints the median per-iteration
//! time. This intentionally trades criterion's statistical rigor for zero
//! external dependencies; the `hotpath` binary in `crates/bench` is the
//! authoritative perf-regression harness.

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Top-level harness handle, compatible with `criterion::Criterion`.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 100 }
    }
}

impl Criterion {
    /// Builder-style sample-size override (by value, as in criterion 0.5).
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n;
        self
    }

    /// Start a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let sample_size = self.sample_size;
        BenchmarkGroup {
            _parent: self,
            name: name.into(),
            sample_size,
        }
    }

    /// Run a single ungrouped benchmark.
    pub fn bench_function<F>(&mut self, name: &str, f: F)
    where
        F: FnMut(&mut Bencher),
    {
        run_bench(name, self.sample_size, f);
    }
}

/// A named group of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Per-group sample-size override (by reference, as in criterion 0.5).
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n;
        self
    }

    /// Run a benchmark within this group.
    pub fn bench_function<F>(&mut self, name: &str, f: F)
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, name);
        run_bench(&full, self.sample_size, f);
    }

    /// Run a parameterized benchmark within this group.
    pub fn bench_with_input<I: ?Sized, F>(&mut self, id: BenchmarkId, input: &I, mut f: F)
    where
        F: FnMut(&mut Bencher, &I),
    {
        let full = format!("{}/{}", self.name, id.label);
        run_bench(&full, self.sample_size, |b| f(b, input));
    }

    /// End the group (report flushing is a no-op here).
    pub fn finish(self) {}
}

/// Identifier for a parameterized benchmark.
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    pub fn new(name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            label: format!("{}/{}", name.into(), parameter),
        }
    }

    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            label: parameter.to_string(),
        }
    }
}

/// Timing handle passed to benchmark closures.
pub struct Bencher {
    iters_per_sample: u64,
    samples: usize,
    /// Median per-iteration time of the last `iter` call, for the report.
    last_median: Duration,
}

impl Bencher {
    /// Time `routine`, recording the median per-iteration duration.
    pub fn iter<O, R>(&mut self, mut routine: R)
    where
        R: FnMut() -> O,
    {
        // Warm-up and calibration: aim for samples of roughly >= 1ms each so
        // Instant overhead is negligible, capped to keep total time bounded.
        let t0 = Instant::now();
        black_box(routine());
        let once = t0.elapsed().max(Duration::from_nanos(1));
        let target = Duration::from_millis(1);
        let per_sample = (target.as_nanos() / once.as_nanos()).clamp(1, 10_000) as u64;
        self.iters_per_sample = per_sample;

        let mut times: Vec<Duration> = Vec::with_capacity(self.samples);
        for _ in 0..self.samples {
            let start = Instant::now();
            for _ in 0..per_sample {
                black_box(routine());
            }
            times.push(start.elapsed() / per_sample as u32);
        }
        times.sort_unstable();
        self.last_median = times[times.len() / 2];
    }
}

fn run_bench<F>(name: &str, sample_size: usize, mut f: F)
where
    F: FnMut(&mut Bencher),
{
    let mut b = Bencher {
        iters_per_sample: 1,
        samples: sample_size.max(1),
        last_median: Duration::ZERO,
    };
    f(&mut b);
    println!(
        "bench {name:<50} median {:>12.1} ns/iter ({} samples x {} iters)",
        b.last_median.as_nanos() as f64,
        b.samples,
        b.iters_per_sample
    );
}

/// Expands to a `fn $name()` that runs each target, mirroring both
/// criterion forms: struct-style (`name = ...; config = ...; targets = ...`)
/// and tuple-style (`(name, target, ...)`).
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c: $crate::Criterion = $config;
            $( $target(&mut c); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Expands to `fn main()` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_closure() {
        let mut c = Criterion::default().sample_size(3);
        let mut group = c.benchmark_group("shim");
        group.sample_size(2);
        group.bench_function("noop", |b| b.iter(|| black_box(1 + 1)));
        group.bench_with_input(BenchmarkId::new("param", 4), &4u32, |b, &n| {
            b.iter(|| black_box(n * 2))
        });
        group.finish();
    }
}
