//! Offline shim for `serde`: the trait names, plus no-op derive macros
//! behind the `derive` feature. The workspace's model types carry serde
//! derives for downstream interoperability but never serialize through
//! serde in-tree, so empty expansions are sufficient.

/// Marker stand-in for `serde::Serialize`.
pub trait Serialize {}

/// Marker stand-in for `serde::Deserialize`.
pub trait Deserialize<'de>: Sized {}

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};
