//! Offline shim for the `rand` 0.8 API surface this workspace uses.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors minimal re-implementations of its external dependencies under
//! `shims/`. This crate provides [`RngCore`], [`SeedableRng`], the
//! extension trait [`Rng`] (with `gen`), and the [`Error`] type — enough
//! for `ptts::crng::CounterRng` and the samplers in `synthpop`. The
//! simulator's own randomness is entirely counter-based ([`RngCore`]
//! implementors in `ptts`); nothing here generates entropy.

use std::fmt;

/// Error type carried by [`RngCore::try_fill_bytes`]. The deterministic
/// generators in this workspace are infallible, so this is never produced.
#[derive(Debug)]
pub struct Error;

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "rng error")
    }
}

impl std::error::Error for Error {}

/// The core RNG interface (mirrors `rand_core::RngCore`).
pub trait RngCore {
    /// Next 32 random bits.
    fn next_u32(&mut self) -> u32;
    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;
    /// Fill `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]);
    /// Fallible fill; the default delegates to [`RngCore::fill_bytes`].
    fn try_fill_bytes(&mut self, dest: &mut [u8]) -> Result<(), Error> {
        self.fill_bytes(dest);
        Ok(())
    }
}

/// An RNG constructible from a fixed seed (mirrors `rand_core::SeedableRng`).
pub trait SeedableRng: Sized {
    /// Seed material.
    type Seed;
    /// Build from a seed.
    fn from_seed(seed: Self::Seed) -> Self;
}

/// Types producible uniformly from an RNG (stand-in for sampling with the
/// `Standard` distribution).
pub trait Standard: Sized {
    /// Draw one value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u64 {
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for bool {
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 high bits → uniform double in [0,1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// Half-open ranges samplable by [`Rng::gen_range`] (stand-in for
/// `rand::distributions::uniform::SampleRange`).
pub trait SampleRange {
    /// The sampled value type.
    type Output;
    /// Draw one value uniformly from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> Self::Output;
}

impl SampleRange for std::ops::Range<f64> {
    type Output = f64;
    #[inline]
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "empty gen_range range");
        self.start + f64::sample(rng) * (self.end - self.start)
    }
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange for std::ops::Range<$t> {
            type Output = $t;
            #[inline]
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty gen_range range");
                let span = (self.end as i128 - self.start as i128) as u128;
                // Modulo bias is negligible for the small spans used here.
                let off = (rng.next_u64() as u128) % span;
                (self.start as i128 + off as i128) as $t
            }
        }
    )*};
}

int_sample_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Convenience extension over [`RngCore`] (mirrors `rand::Rng`).
pub trait Rng: RngCore {
    /// Draw a uniform value of type `T`.
    #[inline]
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// Draw a value uniformly from a half-open range.
    #[inline]
    fn gen_range<S: SampleRange>(&mut self, range: S) -> S::Output {
        range.sample_from(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

#[cfg(test)]
mod tests {
    use super::*;

    struct Lcg(u64);
    impl RngCore for Lcg {
        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }
        fn next_u64(&mut self) -> u64 {
            self.0 = self.0.wrapping_mul(6364136223846793005).wrapping_add(1);
            self.0
        }
        fn fill_bytes(&mut self, dest: &mut [u8]) {
            for b in dest {
                *b = self.next_u64() as u8;
            }
        }
    }

    #[test]
    fn gen_draws_each_type() {
        let mut r = Lcg(1);
        let _: u64 = r.gen();
        let _: u32 = r.gen();
        let _: bool = r.gen();
        let f: f64 = r.gen();
        assert!((0.0..1.0).contains(&f));
        let g: f32 = r.gen();
        assert!((0.0..1.0).contains(&g));
    }

    #[test]
    fn try_fill_bytes_defaults_to_infallible() {
        let mut r = Lcg(9);
        let mut buf = [0u8; 13];
        r.try_fill_bytes(&mut buf).unwrap();
        assert!(buf.iter().any(|&b| b != 0));
    }
}
