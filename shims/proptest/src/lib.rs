//! Offline shim for the `proptest` API surface this workspace uses.
//!
//! A deterministic random-testing harness: each `proptest!` test runs
//! `ProptestConfig::cases` iterations, drawing inputs from [`Strategy`]
//! values seeded by a SplitMix64 stream keyed on the test path and case
//! index. No shrinking — a failing case panics with the case index, which
//! is reproducible because generation is fully deterministic.

pub mod strategy {
    use crate::test_runner::TestRng;

    /// A generator of test inputs (mirrors `proptest::strategy::Strategy`).
    pub trait Strategy {
        /// The produced value type.
        type Value;

        /// Draw one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Transform produced values.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { inner: self, f }
        }

        /// Type-erase.
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            Box::new(self)
        }
    }

    /// A type-erased strategy.
    pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

    impl<T> Strategy for BoxedStrategy<T> {
        type Value = T;

        fn generate(&self, rng: &mut TestRng) -> T {
            (**self).generate(rng)
        }
    }

    /// Always produces a clone of one value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;

        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// The adapter behind [`Strategy::prop_map`].
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;

        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// Uniform choice among boxed strategies (behind `prop_oneof!`).
    pub struct Union<T> {
        options: Vec<BoxedStrategy<T>>,
    }

    impl<T> Union<T> {
        /// Build from the option list (must be non-empty).
        pub fn new(options: Vec<BoxedStrategy<T>>) -> Self {
            assert!(!options.is_empty(), "prop_oneof! needs at least one arm");
            Union { options }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;

        fn generate(&self, rng: &mut TestRng) -> T {
            let i = rng.below(self.options.len() as u64) as usize;
            self.options[i].generate(rng)
        }
    }

    macro_rules! int_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for core::ops::Range<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as u64).wrapping_sub(self.start as u64);
                    self.start + rng.below(span) as $t
                }
            }
        )*};
    }
    int_range_strategy!(u8, u16, u32, u64, usize);

    macro_rules! signed_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for core::ops::Range<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as i64).wrapping_sub(self.start as i64) as u64;
                    (self.start as i64 + rng.below(span) as i64) as $t
                }
            }
        )*};
    }
    signed_range_strategy!(i8, i16, i32, i64, isize);

    impl Strategy for core::ops::Range<f64> {
        type Value = f64;

        fn generate(&self, rng: &mut TestRng) -> f64 {
            self.start + rng.unit_f64() * (self.end - self.start)
        }
    }

    impl Strategy for core::ops::Range<f32> {
        type Value = f32;

        fn generate(&self, rng: &mut TestRng) -> f32 {
            self.start + (rng.unit_f64() as f32) * (self.end - self.start)
        }
    }

    macro_rules! tuple_strategy {
        ($(($($s:ident $idx:tt),+))*) => {$(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);

                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.generate(rng),)+)
                }
            }
        )*};
    }
    tuple_strategy! {
        (A 0)
        (A 0, B 1)
        (A 0, B 1, C 2)
        (A 0, B 1, C 2, D 3)
        (A 0, B 1, C 2, D 3, E 4)
    }

    /// Types with a canonical whole-domain strategy (behind `any`).
    pub trait Arbitrary: Sized {
        /// Draw one arbitrary value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.next() & 1 == 1
        }
    }

    impl Arbitrary for u8 {
        fn arbitrary(rng: &mut TestRng) -> u8 {
            rng.next() as u8
        }
    }

    impl Arbitrary for u32 {
        fn arbitrary(rng: &mut TestRng) -> u32 {
            rng.next() as u32
        }
    }

    impl Arbitrary for u64 {
        fn arbitrary(rng: &mut TestRng) -> u64 {
            rng.next()
        }
    }

    /// The strategy returned by [`any`].
    pub struct AnyStrategy<T> {
        _marker: core::marker::PhantomData<T>,
    }

    impl<T: Arbitrary> Strategy for AnyStrategy<T> {
        type Value = T;

        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    /// The whole-domain strategy for `T` (mirrors `proptest::prelude::any`).
    pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
        AnyStrategy {
            _marker: core::marker::PhantomData,
        }
    }
}

pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Vec strategy with element strategy and length range.
    pub struct VecStrategy<S> {
        element: S,
        len: core::ops::Range<usize>,
    }

    /// `vec(strategy, range)` — mirrors `proptest::collection::vec`.
    pub fn vec<S: Strategy>(element: S, len: core::ops::Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, len }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.len.end - self.len.start).max(1) as u64;
            let n = self.len.start + rng.below(span) as usize;
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod test_runner {
    /// Per-test configuration (mirrors `proptest::test_runner::Config`).
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of cases to run per property.
        pub cases: u32,
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 32 }
        }
    }

    impl ProptestConfig {
        /// Config running `cases` cases.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    /// Deterministic SplitMix64 stream keyed by test path and case index.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// RNG for one case of one test.
        pub fn for_case(test_path: &str, case: u32) -> Self {
            let mut state = 0x9E3779B97F4A7C15u64 ^ (case as u64).wrapping_mul(0xA24BAED4963EE407);
            for b in test_path.bytes() {
                state = state.wrapping_mul(1099511628211).wrapping_add(b as u64);
            }
            let mut rng = TestRng { state };
            // Warm the stream so nearby keys decorrelate.
            rng.next();
            rng.next();
            rng
        }

        /// Next 64 random bits.
        #[inline]
        #[allow(clippy::should_implement_trait)] // not an Iterator; infinite stream
        pub fn next(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E3779B97F4A7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
            z ^ (z >> 31)
        }

        /// Uniform draw in `[0, n)`; `n = 0` yields 0.
        #[inline]
        pub fn below(&mut self, n: u64) -> u64 {
            if n == 0 {
                return 0;
            }
            // Multiply-shift; bias is negligible for test-input sizes.
            ((self.next() as u128 * n as u128) >> 64) as u64
        }

        /// Uniform `f64` in `[0, 1)`.
        #[inline]
        pub fn unit_f64(&mut self) -> f64 {
            (self.next() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }
    }
}

/// Everything the tests import (mirrors `proptest::prelude`).
pub mod prelude {
    pub use crate::collection;
    pub use crate::strategy::{any, BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// The test-defining macro (mirrors `proptest::proptest!`).
///
/// Supports the forms used in this workspace: an optional
/// `#![proptest_config(expr)]` header followed by `fn` items whose
/// arguments are `name in strategy` bindings.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items!{ ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items!{
            ($crate::test_runner::ProptestConfig::default()) $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    ( ($cfg:expr) ) => {};
    ( ($cfg:expr)
      $(#[$meta:meta])*
      fn $name:ident( $($arg:ident in $strat:expr),+ $(,)? ) $body:block
      $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __cfg: $crate::test_runner::ProptestConfig = $cfg;
            for __case in 0..__cfg.cases {
                let mut __rng = $crate::test_runner::TestRng::for_case(
                    concat!(module_path!(), "::", stringify!($name)),
                    __case,
                );
                $(
                    let $arg = $crate::strategy::Strategy::generate(&($strat), &mut __rng);
                )+
                // The closure gives `prop_assert!`-style early exits a
                // scope without leaking `return` into the case loop.
                #[allow(clippy::redundant_closure_call)]
                {
                    (|| $body)();
                }
            }
        }
        $crate::__proptest_items!{ ($cfg) $($rest)* }
    };
}

/// Uniform choice among strategies (mirrors `proptest::prop_oneof!`).
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strat)),+
        ])
    };
}

/// Assertion inside a property (mirrors `proptest::prop_assert!`).
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Equality assertion inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Inequality assertion inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;
    use crate::test_runner::TestRng;

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = TestRng::for_case("bounds", 0);
        for _ in 0..1000 {
            let v = (5u32..17).generate(&mut rng);
            assert!((5..17).contains(&v));
            let f = (-2.0f64..3.0).generate(&mut rng);
            assert!((-2.0..3.0).contains(&f));
        }
    }

    #[test]
    fn determinism_per_case() {
        let mut a = TestRng::for_case("x", 3);
        let mut b = TestRng::for_case("x", 3);
        let mut c = TestRng::for_case("x", 4);
        assert_eq!(a.next(), b.next());
        assert_ne!(a.next(), c.next());
    }

    #[test]
    fn oneof_covers_all_arms() {
        let strat = prop_oneof![Just(1u32), Just(2), Just(3)];
        let mut rng = TestRng::for_case("arms", 0);
        let mut seen = [false; 4];
        for _ in 0..200 {
            seen[strat.generate(&mut rng) as usize] = true;
        }
        assert!(seen[1] && seen[2] && seen[3]);
    }

    #[test]
    fn collection_vec_lengths() {
        let strat = collection::vec(0u32..10, 2..6);
        let mut rng = TestRng::for_case("vec", 1);
        for _ in 0..100 {
            let v = strat.generate(&mut rng);
            assert!((2..6).contains(&v.len()));
            assert!(v.iter().all(|&x| x < 10));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(8))]

        /// The macro itself: bindings, tuples, maps, any.
        #[test]
        fn macro_grammar(
            x in 0u64..100,
            pair in (1u32..5, 10u32..20).prop_map(|(a, b)| a + b),
            flag in any::<bool>(),
        ) {
            prop_assert!(x < 100);
            prop_assert!((11..25).contains(&pair));
            prop_assert_eq!(flag as u8 <= 1, true);
        }
    }
}
