//! Extracting per-partition model inputs from a concrete data
//! distribution — exact counts, no sampling.

use episim_core::distribution::DataDistribution;
use load_model::{LoadUnits, PiecewiseModel};
use std::collections::HashMap;

/// Wire size of one visit message (matches `SimMsg::size_bytes`).
pub const VISIT_BYTES: u64 = 20;

/// Per-partition quantities the day-time model consumes.
#[derive(Debug, Clone, Default)]
pub struct PartitionInputs {
    /// Number of partitions.
    pub k: u32,
    /// Person-phase visit count per partition (messages generated).
    pub person_visits: Vec<u64>,
    /// Location-phase static load per partition, in load-model units.
    pub location_load: Vec<u64>,
    /// Remote (cross-partition) visit messages sent, per source partition.
    pub remote_out: Vec<u64>,
    /// Remote visit messages received, per destination partition.
    pub remote_in: Vec<u64>,
    /// Local (same-partition) visit messages, per partition.
    pub local: Vec<u64>,
    /// Number of distinct remote destinations per source partition
    /// (bounds aggregation: at least one packet per destination lane).
    pub fanout: Vec<u32>,
}

impl PartitionInputs {
    /// Total visits.
    pub fn total_visits(&self) -> u64 {
        self.remote_out.iter().sum::<u64>() + self.local.iter().sum::<u64>()
    }

    /// Fraction of visits that cross partitions.
    pub fn remote_fraction(&self) -> f64 {
        let total = self.total_visits();
        if total == 0 {
            return 0.0;
        }
        self.remote_out.iter().sum::<u64>() as f64 / total as f64
    }
}

/// Compute exact per-partition inputs from a distribution.
pub fn inputs_from_distribution(
    dist: &DataDistribution,
    model: &PiecewiseModel,
    units: LoadUnits,
) -> PartitionInputs {
    let k = dist.k as usize;
    let mut inputs = PartitionInputs {
        k: dist.k,
        person_visits: vec![0; k],
        location_load: vec![0; k],
        remote_out: vec![0; k],
        remote_in: vec![0; k],
        local: vec![0; k],
        fanout: vec![0; k],
    };

    // Location event counts → static loads.
    let mut events = vec![0u64; dist.pop.locations.len()];
    for v in &dist.pop.visits {
        events[v.location.0 as usize] += 2;
    }
    for (l, &e) in events.iter().enumerate() {
        let part = dist.location_part[l] as usize;
        inputs.location_load[part] += model.eval_units(e as f64, units.per_second);
    }

    // Visit traffic.
    let mut pairs: HashMap<(u32, u32), u64> = HashMap::new();
    for v in &dist.pop.visits {
        let src = dist.person_part[v.person.0 as usize];
        let dst = dist.location_part[v.location.0 as usize];
        inputs.person_visits[src as usize] += 1;
        if src == dst {
            inputs.local[src as usize] += 1;
        } else {
            inputs.remote_out[src as usize] += 1;
            inputs.remote_in[dst as usize] += 1;
            *pairs.entry((src, dst)).or_insert(0) += 1;
        }
    }
    for &(src, _) in pairs.keys() {
        inputs.fanout[src as usize] += 1;
    }
    inputs
}

#[cfg(test)]
mod tests {
    use super::*;
    use episim_core::distribution::Strategy;
    use synthpop::{Population, PopulationConfig};

    fn inputs(strategy: Strategy, k: u32) -> PartitionInputs {
        let pop = Population::generate(&PopulationConfig::small("T", 3000, 7));
        let dist = DataDistribution::build(&pop, strategy, k, 1);
        inputs_from_distribution(
            &dist,
            &PiecewiseModel::paper_constants(),
            LoadUnits::default(),
        )
    }

    #[test]
    fn totals_conserved() {
        let pop = Population::generate(&PopulationConfig::small("T", 3000, 7));
        let dist = DataDistribution::build(&pop, Strategy::RoundRobin, 6, 1);
        let i = inputs_from_distribution(
            &dist,
            &PiecewiseModel::paper_constants(),
            LoadUnits::default(),
        );
        assert_eq!(i.total_visits(), dist.pop.n_visits());
        assert_eq!(
            i.remote_out.iter().sum::<u64>(),
            i.remote_in.iter().sum::<u64>()
        );
        assert_eq!(i.person_visits.iter().sum::<u64>(), dist.pop.n_visits());
    }

    #[test]
    fn k_one_all_local() {
        let i = inputs(Strategy::RoundRobin, 1);
        assert_eq!(i.remote_out[0], 0);
        assert_eq!(i.fanout[0], 0);
        assert_eq!(i.remote_fraction(), 0.0);
    }

    #[test]
    fn rr_mostly_remote_gp_less() {
        let rr = inputs(Strategy::RoundRobin, 8);
        let gp = inputs(Strategy::GraphPartition, 8);
        assert!(rr.remote_fraction() > 0.8);
        assert!(gp.remote_fraction() < rr.remote_fraction());
    }

    #[test]
    fn fanout_bounded_by_k_minus_one() {
        let i = inputs(Strategy::RoundRobin, 8);
        assert!(i.fanout.iter().all(|&f| f <= 7));
        assert!(i.fanout.iter().any(|&f| f > 0));
    }

    #[test]
    fn location_load_positive_everywhere_under_rr() {
        let i = inputs(Strategy::RoundRobin, 4);
        assert!(i.location_load.iter().all(|&l| l > 0));
    }
}
