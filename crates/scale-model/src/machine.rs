//! Machine constants for a Cray XE6 (Gemini interconnect) and the runtime
//! options whose effect §IV quantifies.

use serde::{Deserialize, Serialize};

/// Termination-detection flavour (§IV-B).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum SyncKind {
    /// Completion detection scoped to the module: one up-down sweep of a
    /// reduction tree per phase.
    CompletionDetection,
    /// Quiescence detection: requires application-wide quiescence — charged
    /// several tree sweeps per phase (Charm++ QD iterates until two
    /// consecutive idle waves agree).
    QuiescenceDetection,
}

/// Tunable machine constants. Defaults approximate Blue Waters' XE6 nodes
/// (AMD Interlagos, Gemini torus).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MachineModel {
    /// CPU nanoseconds to process one person-visit on the person side
    /// (health update amortized in). Calibrated.
    pub person_visit_ns: f64,
    /// Scale factor from `load-model` location units (ns at
    /// `LoadUnits::default`) to this machine's nanoseconds. Calibrated.
    pub location_unit_scale: f64,
    /// CPU overhead to send or receive one fine-grained message without a
    /// comm thread (allocation + serialization + injection).
    pub msg_overhead_ns: f64,
    /// Fraction of `msg_overhead_ns` remaining on the worker when a
    /// dedicated communication thread offloads injection (§IV-A).
    pub comm_thread_factor: f64,
    /// Fraction of `msg_overhead_ns` paid for intra-process (shared-memory)
    /// delivery.
    pub intra_factor: f64,
    /// Per-network-packet overhead (Gemini small-message latency ≈ 1.5 µs).
    pub packet_overhead_ns: f64,
    /// Per-direction injection bandwidth, bytes/second (Gemini ≈ 6 GB/s).
    pub bandwidth_bytes_per_s: f64,
    /// Per-hop latency of the synchronization tree.
    pub hop_latency_ns: f64,
    /// Tree sweeps per QD round relative to CD's single sweep.
    pub qd_sweeps: f64,
    /// Fixed per-day overhead (iteration bookkeeping), ns.
    pub per_day_fixed_ns: f64,
}

impl Default for MachineModel {
    fn default() -> Self {
        MachineModel {
            person_visit_ns: 900.0,
            location_unit_scale: 1.0,
            msg_overhead_ns: 450.0,
            comm_thread_factor: 0.4,
            intra_factor: 0.15,
            packet_overhead_ns: 650.0,
            bandwidth_bytes_per_s: 6.0e9,
            hop_latency_ns: 1500.0,
            qd_sweeps: 4.0,
            per_day_fixed_ns: 50_000.0,
        }
    }
}

/// The §IV optimization switches, as the model sees them.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RuntimeOptions {
    /// Message aggregation batch size (1 = no aggregation).
    pub aggregation_batch: u32,
    /// Dedicated communication threads (§IV-A SMP mode).
    pub comm_thread: bool,
    /// PEs per SMP process (sends within a process are shared-memory).
    pub pes_per_process: u32,
    /// Synchronization mechanism.
    pub sync: SyncKind,
    /// TRAM 2D topological routing: aggregation lanes drop to O(√P) at the
    /// cost of an extra hop for off-row/off-column destinations.
    pub tram: bool,
}

impl RuntimeOptions {
    /// All §IV optimizations on (the paper's tuned configuration).
    pub fn optimized() -> Self {
        RuntimeOptions {
            aggregation_batch: 64,
            comm_thread: true,
            pes_per_process: 8,
            sync: SyncKind::CompletionDetection,
            tram: false,
        }
    }

    /// The optimized configuration with TRAM routing on top.
    pub fn optimized_tram() -> Self {
        RuntimeOptions {
            tram: true,
            ..Self::optimized()
        }
    }

    /// The "RR no-opt" baseline of Figure 12.
    pub fn no_opt() -> Self {
        RuntimeOptions {
            aggregation_batch: 1,
            comm_thread: false,
            pes_per_process: 1,
            sync: SyncKind::QuiescenceDetection,
            tram: false,
        }
    }
}

impl MachineModel {
    /// Synchronization cost for one phase barrier over `p` participants.
    pub fn sync_ns(&self, p: u32, sync: SyncKind) -> f64 {
        let depth = (p.max(2) as f64).log2().ceil();
        let sweeps = match sync {
            SyncKind::CompletionDetection => 2.0, // up + down
            SyncKind::QuiescenceDetection => 2.0 * self.qd_sweeps,
        };
        depth * self.hop_latency_ns * sweeps
    }

    /// Worker-side cost of sending one remote message.
    pub fn remote_send_ns(&self, opts: &RuntimeOptions) -> f64 {
        if opts.comm_thread {
            self.msg_overhead_ns * self.comm_thread_factor
        } else {
            self.msg_overhead_ns
        }
    }

    /// Worker-side cost of one intra-process message.
    pub fn intra_send_ns(&self) -> f64 {
        self.msg_overhead_ns * self.intra_factor
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sync_grows_logarithmically() {
        let m = MachineModel::default();
        let s1k = m.sync_ns(1024, SyncKind::CompletionDetection);
        let s1m = m.sync_ns(1 << 20, SyncKind::CompletionDetection);
        assert!((s1m / s1k - 2.0).abs() < 1e-9, "log2 scaling");
    }

    #[test]
    fn qd_costs_more_than_cd() {
        let m = MachineModel::default();
        assert!(
            m.sync_ns(4096, SyncKind::QuiescenceDetection)
                > 2.0 * m.sync_ns(4096, SyncKind::CompletionDetection)
        );
    }

    #[test]
    fn comm_thread_cuts_send_cost() {
        let m = MachineModel::default();
        let opt = RuntimeOptions::optimized();
        let noopt = RuntimeOptions::no_opt();
        assert!(m.remote_send_ns(&opt) < 0.5 * m.remote_send_ns(&noopt));
        assert!(m.intra_send_ns() < m.remote_send_ns(&noopt));
    }
}
