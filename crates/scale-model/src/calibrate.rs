//! Calibrating the machine model against measured runs of the real
//! simulator.
//!
//! The paper builds its load model "by measuring LocationManagers'
//! processing time" (§III-A); we do the same: the sequential chare engine
//! records per-PE busy nanoseconds for every phase, and this module turns a
//! measured [`episim_core::simulator::SimRun`] into the two compute
//! constants the projection needs.

use crate::machine::MachineModel;
use episim_core::simulator::SimRun;
use serde::{Deserialize, Serialize};

/// Calibrated compute constants with their supporting measurements.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Calibration {
    /// Measured nanoseconds per person-visit in phase 1.
    pub person_visit_ns: f64,
    /// Measured scale factor from load-model units to this machine's
    /// nanoseconds in phase 3.
    pub location_unit_scale: f64,
    /// Total visits observed.
    pub visits: u64,
    /// Total location-phase busy nanoseconds observed.
    pub location_busy_ns: u64,
}

/// Fit the per-visit and location-unit constants from a measured run.
///
/// `location_units` is the summed static-model load (in `LoadUnits`) of the
/// population the run executed, so the scale is measured-ns per unit.
pub fn calibrate_from_run(run: &SimRun, location_units_per_day: u64) -> Option<Calibration> {
    let mut visits = 0u64;
    let mut person_busy = 0u64;
    let mut location_busy = 0u64;
    for (day, perf) in run.perf.iter().enumerate() {
        visits += run.curve.days.get(day).map(|d| d.visits).unwrap_or(0);
        person_busy += perf.person_phase.totals().busy_ns;
        location_busy += perf.location_phase.totals().busy_ns;
    }
    if visits == 0 || location_units_per_day == 0 || run.perf.is_empty() {
        return None;
    }
    let days = run.perf.len() as u64;
    Some(Calibration {
        person_visit_ns: person_busy as f64 / visits as f64,
        location_unit_scale: location_busy as f64 / (location_units_per_day * days) as f64,
        visits,
        location_busy_ns: location_busy,
    })
}

impl Calibration {
    /// Produce a machine model with this machine's measured compute
    /// constants and default (XE6) communication constants.
    pub fn apply_to(&self, mut machine: MachineModel) -> MachineModel {
        machine.person_visit_ns = self.person_visit_ns;
        machine.location_unit_scale = self.location_unit_scale;
        machine
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use chare_rt::RuntimeConfig;
    use episim_core::distribution::{DataDistribution, Strategy};
    use episim_core::simulator::{SimConfig, Simulator};
    use load_model::{LoadUnits, PiecewiseModel};
    use ptts::flu_model;
    use synthpop::{Population, PopulationConfig};

    #[test]
    fn calibration_from_real_run_is_sane() {
        let pop = Population::generate(&PopulationConfig::small("T", 1500, 3));
        let dist = DataDistribution::build(&pop, Strategy::RoundRobin, 2, 1);
        let units: u64 = episim_core::workload::location_static_loads(
            &dist.pop,
            &PiecewiseModel::paper_constants(),
            LoadUnits::default(),
        )
        .iter()
        .sum();
        let cfg = SimConfig {
            days: 5,
            r: 0.001,
            seed: 1,
            initial_infections: 5,
            stop_when_extinct: false,
            ..Default::default()
        };
        let run = Simulator::new(&dist, flu_model(), cfg, RuntimeConfig::sequential(2)).run();
        let cal = calibrate_from_run(&run, units).expect("calibration");
        assert!(cal.person_visit_ns > 1.0, "{}", cal.person_visit_ns);
        assert!(cal.person_visit_ns < 1e6);
        assert!(cal.location_unit_scale > 0.0);
        let m = cal.apply_to(MachineModel::default());
        assert_eq!(m.person_visit_ns, cal.person_visit_ns);
    }

    #[test]
    fn empty_run_yields_none() {
        let run = SimRun::default();
        assert!(calibrate_from_run(&run, 100).is_none());
    }
}
