//! The per-day time model and strong-scaling projection.
//!
//! One simulated day costs (§II-B's structure):
//!
//! ```text
//! T_day = T_person + T_location + T_sync + T_fixed
//! T_person  = max_p [ visits_p·c_visit + sends_p ]      (phase 1)
//! T_location= max_p [ load_p·scale + recv_p + comm_p ]  (phase 3)
//! T_sync    = 3 × sync(P)                               (phases 2, 4, 6)
//! ```
//!
//! where `sends_p`/`recv_p` charge per-message CPU overhead (reduced by the
//! comm thread and by shared-memory delivery) and `comm_p` charges network
//! packets after aggregation plus bytes over the injection bandwidth. Every
//! `max_p` is over real per-partition sums — the §III-B `Lmax` phenomenon
//! enters the projection through exactly the quantity the paper analyzes.

use crate::inputs::{PartitionInputs, VISIT_BYTES};
use crate::machine::{MachineModel, RuntimeOptions};

/// Projected time for one simulated day, with its breakdown.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DayProjection {
    /// Total seconds per simulated day.
    pub seconds: f64,
    /// Person-phase compute + send component (max over partitions).
    pub person_s: f64,
    /// Location-phase compute + receive component.
    pub location_s: f64,
    /// Network component (packets + bytes) of the bottleneck partition.
    pub network_s: f64,
    /// Synchronization component.
    pub sync_s: f64,
}

/// Project one day's execution time.
pub fn project_day(
    inputs: &PartitionInputs,
    machine: &MachineModel,
    opts: &RuntimeOptions,
) -> DayProjection {
    let k = inputs.k.max(1);
    let remote_send = machine.remote_send_ns(opts);
    let intra_send = machine.intra_send_ns();
    let batch = opts.aggregation_batch.max(1) as f64;
    // With pes_per_process > 1, a fraction of "remote" partitions actually
    // share a process; approximate that fraction as (p−1)/k capped at 1.
    let share = ((opts.pes_per_process.saturating_sub(1)) as f64 / k as f64).min(1.0);

    let mut person_max = 0.0f64;
    let mut location_max = 0.0f64;
    let mut network_max = 0.0f64;
    for p in 0..k as usize {
        // Person phase: compute + message injection.
        let visits = inputs.person_visits[p] as f64;
        let remote = inputs.remote_out[p] as f64;
        let local = inputs.local[p] as f64;
        let remote_eff = remote * (1.0 - share);
        let intra_eff = remote * share;
        let person_ns = visits * machine.person_visit_ns
            + remote_eff * remote_send
            + intra_eff * intra_send
            + local * intra_send * 0.5;
        person_max = person_max.max(person_ns);

        // Network: packets after aggregation (at least one per destination
        // lane) plus bytes over the injection bandwidth.
        // TRAM caps lanes at the 2D grid's row+column peers (O(√P)) but
        // roughly half the messages take a second hop (forwarded bytes and
        // a relay handling cost).
        let tram_lanes = 2.0 * ((k as f64).sqrt().ceil() - 1.0);
        let (lanes, hop_factor) = if opts.tram {
            ((inputs.fanout[p] as f64).min(tram_lanes.max(1.0)), 1.5)
        } else {
            (inputs.fanout[p] as f64, 1.0)
        };
        let packets = if remote_eff > 0.0 {
            (remote_eff / batch).ceil().max(lanes.max(1.0))
        } else {
            0.0
        };
        let bytes = remote_eff * VISIT_BYTES as f64 * hop_factor;
        let network_ns = packets * hop_factor * machine.packet_overhead_ns
            + bytes / machine.bandwidth_bytes_per_s * 1e9;
        network_max = network_max.max(network_ns);

        // Location phase: DES compute + receive overhead for inbound
        // remote messages.
        let recv = inputs.remote_in[p] as f64 * (1.0 - share);
        let location_ns =
            inputs.location_load[p] as f64 * machine.location_unit_scale + recv * remote_send;
        location_max = location_max.max(location_ns);
    }
    let sync_ns = 3.0 * machine.sync_ns(k, opts.sync);
    let total_ns = person_max + location_max + network_max + sync_ns + machine.per_day_fixed_ns;
    DayProjection {
        seconds: total_ns / 1e9,
        person_s: person_max / 1e9,
        location_s: location_max / 1e9,
        network_s: network_max / 1e9,
        sync_s: sync_ns / 1e9,
    }
}

/// One strong-scaling point: `(core_modules, seconds_per_day)` plus the
/// speedup/efficiency bookkeeping of the paper's headline numbers.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ScalingPoint {
    /// Core-modules (partitions).
    pub k: u32,
    /// Seconds per simulated day.
    pub seconds: f64,
    /// Speedup relative to a supplied 1-core baseline.
    pub speedup: f64,
    /// Parallel efficiency (`speedup / k`).
    pub efficiency: f64,
}

/// Assemble a scaling point given the single-core baseline time.
pub fn strong_scaling_point(
    k: u32,
    projection: &DayProjection,
    baseline_seconds: f64,
) -> ScalingPoint {
    let speedup = if projection.seconds > 0.0 {
        baseline_seconds / projection.seconds
    } else {
        0.0
    };
    ScalingPoint {
        k,
        seconds: projection.seconds,
        speedup,
        efficiency: speedup / k.max(1) as f64,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use episim_core::distribution::{DataDistribution, Strategy};
    use load_model::{LoadUnits, PiecewiseModel};
    use synthpop::{Population, PopulationConfig};

    fn inputs(strategy: Strategy, k: u32) -> PartitionInputs {
        let pop = Population::generate(&PopulationConfig::small("T", 6000, 3));
        let dist = DataDistribution::build(&pop, strategy, k, 1);
        crate::inputs_from_distribution(
            &dist,
            &PiecewiseModel::paper_constants(),
            LoadUnits::default(),
        )
    }

    #[test]
    fn more_partitions_faster_until_saturation() {
        let m = MachineModel::default();
        let opts = RuntimeOptions::optimized();
        let t1 = project_day(&inputs(Strategy::RoundRobin, 1), &m, &opts).seconds;
        let t8 = project_day(&inputs(Strategy::RoundRobin, 8), &m, &opts).seconds;
        let t64 = project_day(&inputs(Strategy::RoundRobin, 64), &m, &opts).seconds;
        assert!(t8 < t1, "t8 {t8} vs t1 {t1}");
        assert!(t64 < t8, "t64 {t64} vs t8 {t8}");
        // Far from linear at 64 on a 6k-person toy (communication floor).
        assert!(t1 / t64 < 64.0);
    }

    #[test]
    fn optimizations_help() {
        // The §IV claim: opts collectively cut execution time (Figure 12
        // shows ≈ 40% for RR on CA).
        let m = MachineModel::default();
        let i = inputs(Strategy::RoundRobin, 32);
        let opt = project_day(&i, &m, &RuntimeOptions::optimized()).seconds;
        let noopt = project_day(&i, &m, &RuntimeOptions::no_opt()).seconds;
        assert!(opt < 0.8 * noopt, "optimized {opt} vs no-opt {noopt}");
    }

    #[test]
    fn gp_beats_rr_at_scale() {
        let m = MachineModel::default();
        let opts = RuntimeOptions::optimized();
        let rr = project_day(&inputs(Strategy::RoundRobin, 64), &m, &opts);
        let gp = project_day(&inputs(Strategy::GraphPartitionSplit, 64), &m, &opts);
        assert!(
            gp.seconds < rr.seconds,
            "GP-splitLoc {} vs RR {}",
            gp.seconds,
            rr.seconds
        );
    }

    #[test]
    fn tram_helps_when_fanout_dominates() {
        // RR at high k: every partition talks to ~k−1 others, so the lane
        // floor (one packet per destination) dominates; TRAM's O(√k) lanes
        // must win despite the extra hop.
        let m = MachineModel::default();
        let i = inputs(Strategy::RoundRobin, 256);
        let plain = project_day(&i, &m, &RuntimeOptions::optimized());
        let tram = project_day(&i, &m, &RuntimeOptions::optimized_tram());
        assert!(
            tram.network_s < plain.network_s,
            "TRAM {} vs plain {}",
            tram.network_s,
            plain.network_s
        );
    }

    #[test]
    fn tram_costs_when_fanout_is_small() {
        // At tiny k the fanout is already below 2√k; TRAM only adds hops.
        let m = MachineModel::default();
        let i = inputs(Strategy::GraphPartition, 4);
        let plain = project_day(&i, &m, &RuntimeOptions::optimized());
        let tram = project_day(&i, &m, &RuntimeOptions::optimized_tram());
        assert!(tram.network_s >= plain.network_s);
    }

    #[test]
    fn sync_dominates_at_extreme_scale() {
        // With tiny per-partition work the log-P sync floor shows up.
        let m = MachineModel::default();
        let opts = RuntimeOptions::optimized();
        let i = inputs(Strategy::RoundRobin, 256);
        let proj = project_day(&i, &m, &opts);
        assert!(proj.sync_s > 0.0);
        assert!(proj.seconds >= proj.sync_s);
    }

    #[test]
    fn scaling_point_math() {
        let proj = DayProjection {
            seconds: 0.5,
            person_s: 0.2,
            location_s: 0.2,
            network_s: 0.05,
            sync_s: 0.05,
        };
        let pt = strong_scaling_point(100, &proj, 25.0);
        assert!((pt.speedup - 50.0).abs() < 1e-12);
        assert!((pt.efficiency - 0.5).abs() < 1e-12);
    }

    #[test]
    fn breakdown_sums_close_to_total() {
        let m = MachineModel::default();
        let opts = RuntimeOptions::optimized();
        let i = inputs(Strategy::GraphPartition, 16);
        let p = project_day(&i, &m, &opts);
        let parts = p.person_s + p.location_s + p.network_s + p.sync_s;
        assert!(p.seconds >= parts);
        assert!(p.seconds - parts < 1e-3, "fixed overhead only");
    }
}
