//! Marker attributes consumed by `simlint` (the workspace's static
//! determinism-and-hot-path analyzer — see `crates/simlint` and DESIGN.md
//! §9).
//!
//! The attributes expand to nothing: they exist so the *source text* can
//! carry machine-checkable contracts. `simlint` lexes the workspace and
//! enforces, e.g., that no allocation call appears inside a function
//! annotated `#[hot_path]` (rule R4).

use proc_macro::TokenStream;

/// Marks a function as part of the zero-allocation DES hot path.
///
/// Expands to the item unchanged. `simlint --check` (rule R4) rejects
/// `Vec::new`, `Box::new`, `vec!`, `format!`, `.to_vec()`, `.collect()`
/// and friends inside the annotated function unless the offending line
/// carries a `// simlint: allow(R4) -- <justification>` waiver.
#[proc_macro_attribute]
pub fn hot_path(_attr: TokenStream, item: TokenStream) -> TokenStream {
    item
}
