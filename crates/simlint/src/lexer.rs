//! A hand-rolled Rust lexer, just deep enough to lint on.
//!
//! The analyzer's rules are defined over *code tokens*: identifiers,
//! punctuation, and literals with their line/column positions. Everything
//! that routinely defeats grep — `//` and nested `/* */` comments, string
//! literals with escapes, raw strings `r#"…"#` with arbitrary hash counts,
//! byte/C-string prefixes, char literals vs. lifetimes — is consumed here
//! so a `HashMap` inside a doc comment or an error message never produces
//! a finding.
//!
//! Line comments are *kept* (as [`Comment`] records, separate from the
//! token stream) because waivers live in them:
//! `// simlint: allow(R2) -- watchdog only`.

/// One lexed token.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Token {
    /// What the token is.
    pub kind: TokenKind,
    /// 1-based line.
    pub line: u32,
    /// 1-based column (byte offset within the line).
    pub col: u32,
}

/// Token classes the rules care about.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TokenKind {
    /// Identifier or keyword (`fn`, `HashMap`, `hot_path`, …).
    Ident(String),
    /// One punctuation byte (`.`, `[`, `!`, `:` — `::` arrives as two).
    Punct(char),
    /// Any literal: string, raw string, char, number. The payload is the
    /// literal's source text (used only for integer-index detection).
    Literal(String),
    /// A lifetime (`'a`). Distinguished so `'a` never looks like an
    /// unterminated char literal.
    Lifetime(String),
}

impl TokenKind {
    /// The identifier text, if this is an identifier.
    pub fn ident(&self) -> Option<&str> {
        match self {
            TokenKind::Ident(s) => Some(s),
            _ => None,
        }
    }

    /// Is this exactly the identifier `s`?
    pub fn is_ident(&self, s: &str) -> bool {
        self.ident() == Some(s)
    }

    /// Is this the punctuation `c`?
    pub fn is_punct(&self, c: char) -> bool {
        matches!(self, TokenKind::Punct(p) if *p == c)
    }
}

/// A line comment, kept for waiver parsing.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Comment {
    /// Text after the `//` (trimmed).
    pub text: String,
    /// 1-based line the comment starts on.
    pub line: u32,
    /// Whether anything other than whitespace preceded it on the line
    /// (an end-of-line comment waives its own line; a standalone comment
    /// waives the next code line).
    pub trailing: bool,
}

/// The lexed form of one source file.
#[derive(Debug, Default)]
pub struct Lexed {
    /// Code tokens in source order.
    pub tokens: Vec<Token>,
    /// Line comments in source order (block comments are discarded).
    pub comments: Vec<Comment>,
}

/// Lex Rust source text. Never fails: unterminated constructs consume to
/// end-of-input, which is the forgiving behavior a linter wants.
pub fn lex(src: &str) -> Lexed {
    Lexer::new(src).run()
}

struct Lexer<'a> {
    src: &'a [u8],
    pos: usize,
    line: u32,
    /// Byte offset where the current line started.
    line_start: usize,
    out: Lexed,
}

impl<'a> Lexer<'a> {
    fn new(src: &'a str) -> Self {
        Lexer {
            src: src.as_bytes(),
            pos: 0,
            line: 1,
            line_start: 0,
            out: Lexed::default(),
        }
    }

    fn col(&self) -> u32 {
        (self.pos - self.line_start) as u32 + 1
    }

    fn peek(&self) -> Option<u8> {
        self.src.get(self.pos).copied()
    }

    fn peek_at(&self, off: usize) -> Option<u8> {
        self.src.get(self.pos + off).copied()
    }

    /// Advance one byte, maintaining the line counter.
    fn bump(&mut self) -> Option<u8> {
        let b = self.peek()?;
        self.pos += 1;
        if b == b'\n' {
            self.line += 1;
            self.line_start = self.pos;
        }
        Some(b)
    }

    fn run(mut self) -> Lexed {
        while let Some(b) = self.peek() {
            match b {
                b'/' if self.peek_at(1) == Some(b'/') => self.line_comment(),
                b'/' if self.peek_at(1) == Some(b'*') => self.block_comment(),
                b'"' => self.string_literal(),
                b'\'' => self.char_or_lifetime(),
                b'r' | b'b' | b'c' if self.raw_or_prefixed_string() => {}
                _ if is_ident_start(b) => self.ident_or_number(),
                b'0'..=b'9' => self.number(),
                _ if b.is_ascii_whitespace() => {
                    self.bump();
                }
                _ => {
                    let (line, col) = (self.line, self.col());
                    self.bump();
                    self.push_tok(TokenKind::Punct(b as char), line, col);
                }
            }
        }
        self.out
    }

    fn push_tok(&mut self, kind: TokenKind, line: u32, col: u32) {
        self.out.tokens.push(Token { kind, line, col });
    }

    fn line_comment(&mut self) {
        let line = self.line;
        let trailing = self.src[self.line_start..self.pos]
            .iter()
            .any(|b| !b.is_ascii_whitespace());
        let start = self.pos + 2;
        while let Some(b) = self.peek() {
            if b == b'\n' {
                break;
            }
            self.bump();
        }
        let text = String::from_utf8_lossy(&self.src[start..self.pos])
            .trim()
            .to_string();
        self.out.comments.push(Comment {
            text,
            line,
            trailing,
        });
    }

    fn block_comment(&mut self) {
        // Rust block comments nest.
        self.bump();
        self.bump();
        let mut depth = 1u32;
        while depth > 0 {
            match (self.peek(), self.peek_at(1)) {
                (Some(b'/'), Some(b'*')) => {
                    depth += 1;
                    self.bump();
                    self.bump();
                }
                (Some(b'*'), Some(b'/')) => {
                    depth -= 1;
                    self.bump();
                    self.bump();
                }
                (Some(_), _) => {
                    self.bump();
                }
                (None, _) => return, // unterminated: consume to EOF
            }
        }
    }

    /// A `"…"` literal with `\` escapes.
    fn string_literal(&mut self) {
        let (line, col) = (self.line, self.col());
        let start = self.pos;
        self.bump(); // opening quote
        while let Some(b) = self.bump() {
            match b {
                b'\\' => {
                    self.bump();
                }
                b'"' => break,
                _ => {}
            }
        }
        let text = String::from_utf8_lossy(&self.src[start..self.pos]).into_owned();
        self.push_tok(TokenKind::Literal(text), line, col);
    }

    /// `'a` (lifetime) vs `'x'` / `'\n'` (char literal).
    fn char_or_lifetime(&mut self) {
        let (line, col) = (self.line, self.col());
        let start = self.pos;
        self.bump(); // the quote
        match self.peek() {
            Some(b'\\') => {
                // Escaped char literal: consume escape then closing quote.
                self.bump();
                self.bump();
                while let Some(b) = self.peek() {
                    // Multi-byte escapes like '\u{1F600}'.
                    self.bump();
                    if b == b'\'' {
                        break;
                    }
                }
                let text = String::from_utf8_lossy(&self.src[start..self.pos]).into_owned();
                self.push_tok(TokenKind::Literal(text), line, col);
            }
            Some(b) if is_ident_start(b) => {
                // Could be 'x' (char) or 'x (lifetime): a char literal has
                // a closing quote right after one character (possibly
                // multi-byte UTF-8, handled by scanning to the quote as
                // long as no ident-boundary appears first).
                let mut off = 1;
                while self
                    .peek_at(off)
                    .is_some_and(|c| is_ident_continue(c) && c != b'\'')
                {
                    off += 1;
                }
                if self.peek_at(off) == Some(b'\'') && off <= 4 {
                    // Char literal ('x', or a short multi-byte char).
                    for _ in 0..=off {
                        self.bump();
                    }
                    let text = String::from_utf8_lossy(&self.src[start..self.pos]).into_owned();
                    self.push_tok(TokenKind::Literal(text), line, col);
                } else {
                    // Lifetime: consume the identifier.
                    let id_start = self.pos;
                    while self.peek().is_some_and(is_ident_continue) {
                        self.bump();
                    }
                    let name = String::from_utf8_lossy(&self.src[id_start..self.pos]).into_owned();
                    self.push_tok(TokenKind::Lifetime(name), line, col);
                }
            }
            Some(_) => {
                // Char literal with punctuation payload, e.g. '(' or '"'.
                self.bump();
                if self.peek() == Some(b'\'') {
                    self.bump();
                }
                let text = String::from_utf8_lossy(&self.src[start..self.pos]).into_owned();
                self.push_tok(TokenKind::Literal(text), line, col);
            }
            None => {
                self.push_tok(TokenKind::Punct('\''), line, col);
            }
        }
    }

    /// Handle `r"…"`, `r#"…"#`, `br#"…"#`, `b"…"`, `b'x'`, `c"…"`.
    /// Returns false when the `r`/`b`/`c` starts a plain identifier.
    fn raw_or_prefixed_string(&mut self) -> bool {
        let b0 = self.peek().unwrap_or(0);
        // Work out the shape without consuming.
        let mut off = 1;
        let mut second = self.peek_at(off);
        if b0 == b'b' && second == Some(b'r') {
            off += 1;
            second = self.peek_at(off);
        }
        let raw = (b0 == b'r' || (b0 == b'b' && off == 2)) && {
            // Count hashes after the prefix.
            let mut h = off;
            while self.peek_at(h) == Some(b'#') {
                h += 1;
            }
            self.peek_at(h) == Some(b'"')
        };
        if raw {
            let (line, col) = (self.line, self.col());
            let start = self.pos;
            for _ in 0..off {
                self.bump();
            }
            let mut hashes = 0usize;
            while self.peek() == Some(b'#') {
                hashes += 1;
                self.bump();
            }
            self.bump(); // opening quote
                         // Scan for `"` followed by `hashes` hashes.
            'outer: while let Some(b) = self.bump() {
                if b == b'"' {
                    for i in 0..hashes {
                        if self.peek_at(i) != Some(b'#') {
                            continue 'outer;
                        }
                    }
                    for _ in 0..hashes {
                        self.bump();
                    }
                    break;
                }
            }
            let text = String::from_utf8_lossy(&self.src[start..self.pos]).into_owned();
            self.push_tok(TokenKind::Literal(text), line, col);
            return true;
        }
        // b"…" / c"…" (non-raw prefixed string) or b'x'.
        if (b0 == b'b' || b0 == b'c') && second == Some(b'"') && off == 1 {
            self.bump(); // prefix
            self.string_literal();
            return true;
        }
        if b0 == b'b' && second == Some(b'\'') && off == 1 {
            self.bump(); // prefix
            self.char_or_lifetime();
            return true;
        }
        false
    }

    fn ident_or_number(&mut self) {
        let (line, col) = (self.line, self.col());
        let start = self.pos;
        while self.peek().is_some_and(is_ident_continue) {
            self.bump();
        }
        let text = String::from_utf8_lossy(&self.src[start..self.pos]).into_owned();
        self.push_tok(TokenKind::Ident(text), line, col);
    }

    fn number(&mut self) {
        let (line, col) = (self.line, self.col());
        let start = self.pos;
        // Good enough for linting: digits plus the usual number alphabet
        // (underscores, type suffixes, hex/oct/bin tags, exponents, one
        // dot as long as a digit follows — `0..n` must stay three tokens).
        while let Some(b) = self.peek() {
            let ok = b.is_ascii_alphanumeric()
                || b == b'_'
                || (b == b'.'
                    && self.peek_at(1).is_some_and(|c| c.is_ascii_digit())
                    && !self.src[start..self.pos].contains(&b'.'));
            if ok {
                self.bump();
            } else {
                break;
            }
        }
        let text = String::from_utf8_lossy(&self.src[start..self.pos]).into_owned();
        self.push_tok(TokenKind::Literal(text), line, col);
    }
}

fn is_ident_start(b: u8) -> bool {
    b.is_ascii_alphabetic() || b == b'_' || b >= 0x80
}

fn is_ident_continue(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_' || b >= 0x80
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<String> {
        lex(src)
            .tokens
            .iter()
            .filter_map(|t| t.kind.ident().map(str::to_string))
            .collect()
    }

    #[test]
    fn comments_are_skipped() {
        let src = "// HashMap here\nlet x = 1; /* HashMap /* nested */ still */ let y;";
        assert!(!idents(src).contains(&"HashMap".to_string()));
        assert_eq!(idents(src), vec!["let", "x", "let", "y"]);
    }

    #[test]
    fn strings_are_skipped() {
        let src = "let m = \"HashMap::new()\"; let r = r#\"Instant::now()\"# ; f(b\"SystemTime\");";
        let ids = idents(src);
        assert!(!ids.contains(&"HashMap".to_string()));
        assert!(!ids.contains(&"Instant".to_string()));
        assert!(!ids.contains(&"SystemTime".to_string()));
    }

    #[test]
    fn raw_string_with_hashes_and_quotes() {
        let src = "let s = r##\"a \"# HashMap \"## ; next";
        let ids = idents(src);
        assert!(!ids.contains(&"HashMap".to_string()));
        assert!(ids.contains(&"next".to_string()));
    }

    #[test]
    fn lifetimes_do_not_eat_code() {
        let src = "fn f<'a>(x: &'a str) { unwrap() }";
        let ids = idents(src);
        assert!(ids.contains(&"unwrap".to_string()));
        assert!(lex(src)
            .tokens
            .iter()
            .any(|t| t.kind == TokenKind::Lifetime("a".into())));
    }

    #[test]
    fn char_literals_do_not_open_strings() {
        // If '"' were mis-lexed, the following HashMap would vanish into a
        // phantom string.
        let src = "let q = '\"'; let c = '\\n'; HashMap::new()";
        assert!(idents(src).contains(&"HashMap".to_string()));
    }

    #[test]
    fn positions_are_tracked() {
        let lexed = lex("ab\n  cd");
        assert_eq!(lexed.tokens[0].line, 1);
        assert_eq!(lexed.tokens[0].col, 1);
        assert_eq!(lexed.tokens[1].line, 2);
        assert_eq!(lexed.tokens[1].col, 3);
    }

    #[test]
    fn waiver_comments_are_kept_with_trailing_flag() {
        let src = "let x = 1; // simlint: allow(R1) -- test\n// standalone\nlet y = 2;";
        let lexed = lex(src);
        assert_eq!(lexed.comments.len(), 2);
        assert!(lexed.comments[0].trailing);
        assert_eq!(lexed.comments[0].text, "simlint: allow(R1) -- test");
        assert!(!lexed.comments[1].trailing);
    }

    #[test]
    fn block_comments_nest_three_deep() {
        // Rust block comments nest; only a depth counter survives this.
        let src = "/* a /* b /* unsafe */ HashMap */ Instant */ let x = 1;";
        assert_eq!(idents(src), vec!["let", "x"]);
        // An unterminated inner level swallows the rest of the input
        // without panicking.
        let src = "/* a /* b */ still open\nlet y = 1;";
        assert_eq!(idents(src), Vec::<String>::new());
    }

    #[test]
    fn raw_strings_with_hash_fences_hide_their_contents() {
        // The fence length must match: a `"#` inside an `r##` string is
        // payload, not a terminator — and neither the waiver text nor
        // the `unsafe` keyword inside it may surface as tokens/comments.
        let src = r####"let s = r##"x "# // simlint: allow(R2) -- nope; unsafe"##; let t = 1;"####;
        let lexed = lex(src);
        let ids: Vec<String> = lexed
            .tokens
            .iter()
            .filter_map(|t| t.kind.ident().map(str::to_string))
            .collect();
        assert_eq!(ids, vec!["let", "s", "let", "t"]);
        assert!(lexed.comments.is_empty(), "{:?}", lexed.comments);
    }

    #[test]
    fn byte_and_char_literals_do_not_open_comments_or_unsafe() {
        // A '/' char and a b'/' byte literal must not start a comment,
        // and "unsafe" inside a byte string is data, not a keyword.
        let src = "let a = '/'; let b = b'/'; let c = b\"unsafe // x\"; done()";
        let lexed = lex(src);
        let ids: Vec<String> = lexed
            .tokens
            .iter()
            .filter_map(|t| t.kind.ident().map(str::to_string))
            .collect();
        assert!(!ids.contains(&"unsafe".to_string()));
        assert!(ids.contains(&"done".to_string()));
        assert!(lexed.comments.is_empty(), "{:?}", lexed.comments);
    }

    #[test]
    fn numbers_and_ranges() {
        let lexed = lex("a[0]; b[0..4]; 1.5e3");
        let lits: Vec<&str> = lexed
            .tokens
            .iter()
            .filter_map(|t| match &t.kind {
                TokenKind::Literal(s) => Some(s.as_str()),
                _ => None,
            })
            .collect();
        assert_eq!(lits, vec!["0", "0", "4", "1.5e3"]);
    }
}
