//! Findings and their renderings: rustc-style text and machine-readable
//! JSON. The JSON codec is symmetric (emit + parse) so CI consumers and
//! the round-trip tests share one definition.

use std::fmt;

/// One rule violation (or waived violation) at a source position.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// Rule id (`R1` … `R5`, or `W0` for malformed waivers).
    pub rule: String,
    /// Path relative to the scan root, with `/` separators.
    pub file: String,
    /// 1-based line.
    pub line: u32,
    /// 1-based column.
    pub col: u32,
    /// Human-readable description of the hazard.
    pub message: String,
    /// For call-graph rules (R6/R7): the witness chain from the root to
    /// the sink (`["kernel::step", "scratch.push", "Vec::push"]`).
    /// Empty for per-file rules.
    pub path: Vec<String>,
    /// Set when an in-source waiver covers this finding; carries the
    /// waiver's justification text.
    pub waived: Option<String>,
}

impl Finding {
    /// rustc-style one-line rendering.
    pub fn render_text(&self) -> String {
        let status = if self.waived.is_some() {
            "waived"
        } else {
            "error"
        };
        format!(
            "{}:{}:{}: {status}[{}]: {}",
            self.file, self.line, self.col, self.rule, self.message
        )
    }
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.render_text())
    }
}

/// Serialize findings as a JSON array (stable key order, one object per
/// finding).
pub fn to_json(findings: &[Finding]) -> String {
    let mut out = String::from("[");
    for (i, f) in findings.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str("\n  {");
        out.push_str(&format!("\"rule\":{}", json_str(&f.rule)));
        out.push_str(&format!(",\"file\":{}", json_str(&f.file)));
        out.push_str(&format!(",\"line\":{}", f.line));
        out.push_str(&format!(",\"col\":{}", f.col));
        out.push_str(&format!(",\"message\":{}", json_str(&f.message)));
        out.push_str(",\"path\":[");
        for (k, seg) in f.path.iter().enumerate() {
            if k > 0 {
                out.push(',');
            }
            out.push_str(&json_str(seg));
        }
        out.push(']');
        match &f.waived {
            Some(j) => out.push_str(&format!(",\"waived\":{}", json_str(j))),
            None => out.push_str(",\"waived\":null"),
        }
        out.push('}');
    }
    out.push_str("\n]\n");
    out
}

fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Parse the JSON produced by [`to_json`]. This is not a general JSON
/// parser — it accepts exactly the subset the emitter writes (plus
/// whitespace), which is all the round-trip contract requires.
pub fn from_json(src: &str) -> Result<Vec<Finding>, String> {
    let mut p = JsonParser {
        src: src.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    p.expect(b'[')?;
    let mut out = Vec::new();
    p.skip_ws();
    if p.peek() == Some(b']') {
        return Ok(out);
    }
    loop {
        out.push(p.object()?);
        p.skip_ws();
        match p.next()? {
            b',' => continue,
            b']' => break,
            c => return Err(format!("expected ',' or ']', got '{}'", c as char)),
        }
    }
    Ok(out)
}

struct JsonParser<'a> {
    src: &'a [u8],
    pos: usize,
}

impl JsonParser<'_> {
    fn peek(&self) -> Option<u8> {
        self.src.get(self.pos).copied()
    }

    fn next(&mut self) -> Result<u8, String> {
        let b = self.peek().ok_or("unexpected end of JSON")?;
        self.pos += 1;
        Ok(b)
    }

    fn skip_ws(&mut self) {
        while self.peek().is_some_and(|b| b.is_ascii_whitespace()) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, want: u8) -> Result<(), String> {
        let got = self.next()?;
        if got != want {
            return Err(format!(
                "expected '{}', got '{}'",
                want as char, got as char
            ));
        }
        Ok(())
    }

    fn string(&mut self) -> Result<String, String> {
        self.skip_ws();
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.next()? {
                b'"' => return Ok(out),
                b'\\' => match self.next()? {
                    b'"' => out.push('"'),
                    b'\\' => out.push('\\'),
                    b'n' => out.push('\n'),
                    b'r' => out.push('\r'),
                    b't' => out.push('\t'),
                    b'u' => {
                        let mut v = 0u32;
                        for _ in 0..4 {
                            let d = self.next()?;
                            v = v * 16 + (d as char).to_digit(16).ok_or("bad \\u escape")?;
                        }
                        out.push(char::from_u32(v).ok_or("bad codepoint")?);
                    }
                    c => return Err(format!("bad escape '\\{}'", c as char)),
                },
                c if c < 0x80 => out.push(c as char),
                c => {
                    // Reassemble UTF-8 multibyte sequences.
                    let len = match c {
                        0xC0..=0xDF => 2,
                        0xE0..=0xEF => 3,
                        _ => 4,
                    };
                    let start = self.pos - 1;
                    for _ in 1..len {
                        self.next()?;
                    }
                    out.push_str(
                        std::str::from_utf8(&self.src[start..self.pos])
                            .map_err(|e| e.to_string())?,
                    );
                }
            }
        }
    }

    fn number(&mut self) -> Result<u32, String> {
        self.skip_ws();
        let start = self.pos;
        while self.peek().is_some_and(|b| b.is_ascii_digit()) {
            self.pos += 1;
        }
        std::str::from_utf8(&self.src[start..self.pos])
            .ok()
            .and_then(|s| s.parse().ok())
            .ok_or_else(|| "expected a number".to_string())
    }

    fn object(&mut self) -> Result<Finding, String> {
        self.skip_ws();
        self.expect(b'{')?;
        let mut f = Finding {
            rule: String::new(),
            file: String::new(),
            line: 0,
            col: 0,
            message: String::new(),
            path: Vec::new(),
            waived: None,
        };
        loop {
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            match key.as_str() {
                "rule" => f.rule = self.string()?,
                "file" => f.file = self.string()?,
                "line" => f.line = self.number()?,
                "col" => f.col = self.number()?,
                "message" => f.message = self.string()?,
                "path" => {
                    self.expect(b'[')?;
                    self.skip_ws();
                    if self.peek() == Some(b']') {
                        self.pos += 1;
                    } else {
                        loop {
                            f.path.push(self.string()?);
                            self.skip_ws();
                            match self.next()? {
                                b',' => continue,
                                b']' => break,
                                c => {
                                    return Err(format!(
                                        "expected ',' or ']' in path, got '{}'",
                                        c as char
                                    ))
                                }
                            }
                        }
                    }
                }
                "waived" => {
                    if self.peek() == Some(b'n') {
                        for want in b"null" {
                            self.expect(*want)?;
                        }
                        f.waived = None;
                    } else {
                        f.waived = Some(self.string()?);
                    }
                }
                other => return Err(format!("unknown key {other:?}")),
            }
            self.skip_ws();
            match self.next()? {
                b',' => continue,
                b'}' => return Ok(f),
                c => return Err(format!("expected ',' or '}}', got '{}'", c as char)),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Vec<Finding> {
        vec![
            Finding {
                rule: "R1".into(),
                file: "crates/core/src/kernel.rs".into(),
                line: 12,
                col: 9,
                message: "default-hasher `HashMap` in determinism scope".into(),
                path: Vec::new(),
                waived: None,
            },
            Finding {
                rule: "R2".into(),
                file: "crates/chare-rt/src/vt.rs".into(),
                line: 252,
                col: 21,
                message: "wall-clock read (`Instant::now`)".into(),
                path: Vec::new(),
                waived: Some("watchdog only, \"quoted\" + non-ASCII ✓".into()),
            },
            Finding {
                rule: "R6".into(),
                file: "crates/core/src/kernel.rs".into(),
                line: 300,
                col: 13,
                message: "hot path reaches allocation: kernel::step → scratch.push → Vec::push"
                    .into(),
                path: vec![
                    "kernel::step".into(),
                    "scratch.push".into(),
                    "Vec::push".into(),
                ],
                waived: None,
            },
        ]
    }

    #[test]
    fn json_round_trips() {
        let findings = sample();
        let json = to_json(&findings);
        let back = from_json(&json).expect("parses");
        assert_eq!(back, findings);
    }

    #[test]
    fn empty_round_trips() {
        assert_eq!(from_json(&to_json(&[])).unwrap(), Vec::<Finding>::new());
    }

    #[test]
    fn text_rendering_is_rustc_style() {
        let f = &sample()[0];
        assert_eq!(
            f.render_text(),
            "crates/core/src/kernel.rs:12:9: error[R1]: default-hasher `HashMap` in determinism scope"
        );
        assert!(sample()[1].render_text().contains("waived[R2]"));
    }
}
