//! CLI driver: `cargo run -p simlint --release -- --check`.
//!
//! Exit codes: 0 = clean (waived findings allowed), 1 = unwaived
//! findings, 2 = usage / policy / IO error.

use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut root = PathBuf::from(".");
    let mut format_json = false;
    let mut check = false;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--check" => check = true,
            "--format" => match args.next().as_deref() {
                Some("json") => format_json = true,
                Some("text") => format_json = false,
                other => {
                    eprintln!("simlint: --format expects `text` or `json`, got {other:?}");
                    return ExitCode::from(2);
                }
            },
            "--root" => match args.next() {
                Some(p) => root = PathBuf::from(p),
                None => {
                    eprintln!("simlint: --root expects a path");
                    return ExitCode::from(2);
                }
            },
            "--help" | "-h" => {
                print_help();
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("simlint: unknown argument `{other}` (try --help)");
                return ExitCode::from(2);
            }
        }
    }
    if !check {
        print_help();
        return ExitCode::from(2);
    }

    let policy = match simlint::load_policy(&root) {
        Ok(p) => p,
        Err(e) => {
            eprintln!("simlint: {e}");
            return ExitCode::from(2);
        }
    };
    let findings = match simlint::run_check(&root, &policy) {
        Ok(f) => f,
        Err(e) => {
            eprintln!("simlint: {e}");
            return ExitCode::from(2);
        }
    };
    let unwaived = simlint::unwaived_count(&findings);
    let waived = findings.len() - unwaived;

    if format_json {
        print!("{}", simlint::diag::to_json(&findings));
    } else {
        for f in findings.iter().filter(|f| f.waived.is_none()) {
            println!("{}", f.render_text());
        }
        println!(
            "simlint: {unwaived} finding{} ({waived} waived)",
            if unwaived == 1 { "" } else { "s" }
        );
    }
    if unwaived > 0 {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}

fn print_help() {
    println!(
        "simlint — workspace determinism-and-hot-path analyzer (DESIGN.md \u{a7}9)\n\
         \n\
         USAGE: simlint --check [--root <dir>] [--format text|json]\n\
         \n\
         Reads <root>/simlint.toml and scans the configured trees.\n\
         Rules: R1 default-hasher maps in determinism scopes;\n\
         R2 wall-clock reads outside watchdog/bench scopes;\n\
         R3 panic paths in the net transport;\n\
         R5 codec encode/decode lockstep;\n\
         R6 transitive hot-path purity — a #[hot_path] fn must not\n\
         reach allocation, panics, or the wall clock through any call\n\
         chain (the full witness path is reported);\n\
         R7 lock-order discipline against the [r7] hierarchy;\n\
         R8 unsafe audit — unsafe only in [r8]-allowed files, each\n\
         site with an adjacent // SAFETY: justification.\n\
         Waive a line with: // simlint: allow(R2) -- <justification>\n\
         A waiver that suppresses nothing is a W1 finding; a malformed\n\
         one is W0. Neither can be waived.\n\
         \n\
         Exit: 0 clean, 1 unwaived findings, 2 usage/policy error."
    );
}
