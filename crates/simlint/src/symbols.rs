//! Item and call-site extraction: the front half of the workspace call
//! graph (DESIGN.md §9).
//!
//! This is *not* a parser. It walks the token stream produced by
//! [`crate::lexer`] with three pieces of context — an `impl` stack (for
//! method owners), a `fn` stack (for call-site attribution, nested fns
//! included), and the `#[cfg(test)]` module extents — and records every
//! function definition plus every syntactic call site inside it. Name
//! resolution happens later, in [`crate::graph`], against the whole
//! workspace; this module only answers "what is defined here and what
//! does each body mention".

use crate::lexer::{Lexed, Token, TokenKind};
use crate::rules::{brace_close, bracket_close, matching_close, test_mod_extents};

/// One function definition (free fn, inherent or trait-impl method).
#[derive(Debug, Clone)]
pub struct FnDef {
    /// The function's name.
    pub name: String,
    /// The `impl` type the fn is defined on, if any (`impl Foo` and
    /// `impl Trait for Foo` both record `Foo`).
    pub owner: Option<String>,
    /// 1-based position of the name token.
    pub line: u32,
    /// 1-based column of the name token.
    pub col: u32,
    /// Carries a `#[hot_path]` (or `#[simlint_macros::hot_path]`) marker.
    pub is_hot: bool,
    /// Signature returns a `MutexGuard` / `RwLock*Guard`: callers of this
    /// fn hold whatever lock the body acquires (rule R7).
    pub returns_guard: bool,
    /// Defined inside a `#[cfg(test)] mod` body.
    pub in_test_mod: bool,
    /// Token-index range of the body: `(open_brace, close_brace)`.
    pub body: (usize, usize),
    /// Call sites inside the body, in source order.
    pub calls: Vec<CallSite>,
}

/// What a call site syntactically looks like. Resolution strength
/// differs per shape (see [`crate::graph`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Callee {
    /// `name(…)` — a free-function call (or module-qualified
    /// `path::name(…)`, which resolves the same way).
    Plain(String),
    /// `self.name(…)` — a method call on the enclosing impl type.
    SelfMethod(String),
    /// `recv.name(…)` with a non-`self` receiver; `recv` is the last
    /// identifier of the receiver chain, kept for display and for the
    /// lock table (`state.lock()`).
    Method { recv: String, name: String },
    /// `Type::name(…)` with an uppercase `Type` head.
    Qualified { ty: String, name: String },
    /// `name!(…)`.
    Macro(String),
}

impl Callee {
    /// Human-readable form for call-path diagnostics.
    pub fn display(&self) -> String {
        match self {
            Callee::Plain(n) => n.clone(),
            Callee::SelfMethod(n) => format!("self.{n}"),
            Callee::Method { recv, name } => format!("{recv}.{name}"),
            Callee::Qualified { ty, name } => format!("{ty}::{name}"),
            Callee::Macro(n) => format!("{n}!"),
        }
    }

    /// The bare method/function name being invoked.
    pub fn name(&self) -> &str {
        match self {
            Callee::Plain(n) | Callee::SelfMethod(n) | Callee::Macro(n) => n,
            Callee::Method { name, .. } | Callee::Qualified { name, .. } => name,
        }
    }
}

/// One call site inside a fn body.
#[derive(Debug, Clone)]
pub struct CallSite {
    pub callee: Callee,
    /// 1-based position of the invoked name token.
    pub line: u32,
    pub col: u32,
    /// Token index of the invoked name (rule R7's lexical scan keys its
    /// guard-liveness walk on this).
    pub tok: usize,
}

/// Everything extracted from one file.
#[derive(Debug, Default)]
pub struct FileSyms {
    pub fns: Vec<FnDef>,
}

/// Keywords that can look like `name(` but are control flow, not calls.
const KEYWORDS: &[&str] = &[
    "if", "match", "while", "for", "loop", "return", "in", "as", "move", "ref", "let", "else",
    "unsafe", "use", "where", "impl", "fn", "pub", "mod", "struct", "enum", "union", "trait",
    "type", "const", "static", "break", "continue", "crate", "super", "dyn", "box", "async",
    "await", "yield", "extern",
];

const GUARD_TYPES: &[&str] = &["MutexGuard", "RwLockReadGuard", "RwLockWriteGuard"];

/// Extract all fn definitions (and their call sites) from one file.
pub fn extract(lexed: &Lexed) -> FileSyms {
    let tokens = &lexed.tokens;
    let hot = hot_fn_indices(tokens);
    let tests = test_mod_extents(tokens);
    let mut out = FileSyms::default();
    // (owner, body-close token index) for each open `impl`.
    let mut impl_stack: Vec<(Option<String>, usize)> = Vec::new();
    // (index into out.fns, body-close token index) for each open fn.
    let mut fn_stack: Vec<(usize, usize)> = Vec::new();

    let mut i = 0;
    while i < tokens.len() {
        while impl_stack.last().is_some_and(|&(_, end)| i > end) {
            impl_stack.pop();
        }
        while fn_stack.last().is_some_and(|&(_, end)| i > end) {
            fn_stack.pop();
        }
        let t = &tokens[i];
        if t.kind.is_ident("impl") {
            if let Some((owner, open)) = parse_impl_header(tokens, i) {
                if let Some(close) = brace_close(tokens, open) {
                    impl_stack.push((owner, close));
                    i = open + 1;
                    continue;
                }
            }
            i += 1;
            continue;
        }
        if t.kind.is_ident("fn") && tokens.get(i + 1).is_some_and(|n| n.kind.ident().is_some()) {
            match parse_fn_signature(tokens, i) {
                Some(sig) => {
                    if let Some((open, close)) = sig.body {
                        let name_tok = &tokens[i + 1];
                        out.fns.push(FnDef {
                            name: name_tok.kind.ident().unwrap_or_default().to_string(),
                            owner: impl_stack.last().and_then(|(o, _)| o.clone()),
                            line: name_tok.line,
                            col: name_tok.col,
                            is_hot: hot.contains(&i),
                            returns_guard: sig.returns_guard,
                            in_test_mod: in_extents(name_tok.line, &tests),
                            body: (open, close),
                            calls: Vec::new(),
                        });
                        fn_stack.push((out.fns.len() - 1, close));
                        i = open + 1;
                        continue;
                    }
                    // Bodyless declaration (trait item, extern block).
                    i = sig.end + 1;
                    continue;
                }
                None => {
                    i += 1;
                    continue;
                }
            }
        }
        if let (Some(&(fn_idx, _)), Some(name)) = (fn_stack.last(), t.kind.ident()) {
            if let Some(callee) = detect_call(tokens, i, name) {
                out.fns[fn_idx].calls.push(CallSite {
                    callee,
                    line: t.line,
                    col: t.col,
                    tok: i,
                });
            }
        }
        i += 1;
    }
    out
}

/// Indices of `fn` tokens carrying a `hot_path` attribute (possibly with
/// other attributes in between).
fn hot_fn_indices(tokens: &[Token]) -> std::collections::BTreeSet<usize> {
    let mut out = std::collections::BTreeSet::new();
    let mut i = 0;
    while i < tokens.len() {
        if tokens[i].kind.is_punct('#') && tokens.get(i + 1).is_some_and(|t| t.kind.is_punct('[')) {
            if let Some(close) = bracket_close(tokens, i + 1) {
                let is_hot = tokens[i + 1..close]
                    .iter()
                    .any(|t| t.kind.is_ident("hot_path"));
                if is_hot {
                    if let Some(fn_idx) = tokens[close..]
                        .iter()
                        .position(|t| t.kind.is_ident("fn"))
                        .map(|p| close + p)
                    {
                        out.insert(fn_idx);
                    }
                }
                i = close + 1;
                continue;
            }
        }
        i += 1;
    }
    out
}

/// `impl … {` header: the owning type name (after `for`, if present) and
/// the body-open brace index.
fn parse_impl_header(tokens: &[Token], at: usize) -> Option<(Option<String>, usize)> {
    let mut j = at + 1;
    if tokens.get(j).is_some_and(|t| t.kind.is_punct('<')) {
        j = skip_generics(tokens, j)?;
    }
    let mut owner: Option<String> = None;
    let mut path_open = true; // collecting the current type path
    while j < tokens.len() {
        match &tokens[j].kind {
            TokenKind::Punct('{') => return Some((owner, j)),
            TokenKind::Punct(';') => return None, // `impl Trait for Type;` — not a body
            TokenKind::Ident(id) if id == "for" => {
                owner = None;
                path_open = true;
            }
            TokenKind::Ident(id) if id == "where" => path_open = false,
            TokenKind::Ident(id) if id == "dyn" || id == "mut" => {}
            TokenKind::Ident(id) if path_open => owner = Some(id.clone()),
            TokenKind::Punct('<') => {
                j = skip_generics(tokens, j)?;
                path_open = false;
                continue;
            }
            TokenKind::Punct(':') | TokenKind::Punct('&') | TokenKind::Lifetime(_) => {}
            TokenKind::Punct('(') => {
                // Tuple / fn-pointer impl target: no usable owner name.
                j = matching_close(tokens, j, '(', ')')?;
                owner = None;
                path_open = false;
            }
            _ => path_open = false,
        }
        j += 1;
    }
    None
}

struct FnSignature {
    /// `(open, close)` body braces, `None` for a bodyless declaration.
    body: Option<(usize, usize)>,
    /// Index of the terminator (`{`'s close, or the `;`).
    end: usize,
    returns_guard: bool,
}

/// Parse a fn item's shape starting at the `fn` keyword token.
fn parse_fn_signature(tokens: &[Token], at: usize) -> Option<FnSignature> {
    let mut j = at + 2; // past `fn name`
    if tokens.get(j).is_some_and(|t| t.kind.is_punct('<')) {
        j = skip_generics(tokens, j)?;
    }
    if !tokens.get(j).is_some_and(|t| t.kind.is_punct('(')) {
        return None;
    }
    let params_close = matching_close(tokens, j, '(', ')')?;
    // Return type + where clause: everything to the first `{` or `;`.
    let mut k = params_close + 1;
    let mut returns_guard = false;
    while k < tokens.len() {
        match &tokens[k].kind {
            TokenKind::Punct('{') => {
                let close = brace_close(tokens, k)?;
                return Some(FnSignature {
                    body: Some((k, close)),
                    end: close,
                    returns_guard,
                });
            }
            TokenKind::Punct(';') => {
                return Some(FnSignature {
                    body: None,
                    end: k,
                    returns_guard,
                });
            }
            TokenKind::Ident(id) if GUARD_TYPES.contains(&id.as_str()) => returns_guard = true,
            _ => {}
        }
        k += 1;
    }
    None
}

/// Skip a `<…>` generic-argument list starting at the `<` token. Returns
/// the index just past the matching `>`. `->` arrows inside bounds do not
/// close the list.
fn skip_generics(tokens: &[Token], at: usize) -> Option<usize> {
    let mut depth = 0i32;
    let mut j = at;
    while j < tokens.len() {
        match &tokens[j].kind {
            TokenKind::Punct('<') => depth += 1,
            TokenKind::Punct('>') => {
                let arrow = j > 0 && tokens[j - 1].kind.is_punct('-');
                if !arrow {
                    depth -= 1;
                    if depth == 0 {
                        return Some(j + 1);
                    }
                }
            }
            TokenKind::Punct('{') | TokenKind::Punct(';') => return None,
            _ => {}
        }
        j += 1;
    }
    None
}

/// Is the identifier at `i` the head of a call? Looks for `(` right after
/// (or after a `::<…>` turbofish) and classifies by what precedes it.
fn detect_call(tokens: &[Token], i: usize, name: &str) -> Option<Callee> {
    if KEYWORDS.contains(&name) {
        return None;
    }
    let next = tokens.get(i + 1)?;
    // `name!(…)`, `name![…]`, `name!{…}` — macro invocation.
    if next.kind.is_punct('!') {
        let after = tokens.get(i + 2)?;
        if after.kind.is_punct('(') || after.kind.is_punct('[') || after.kind.is_punct('{') {
            return Some(Callee::Macro(name.to_string()));
        }
        return None;
    }
    // `name(` or `name::<T>(` (turbofish).
    let is_call = if next.kind.is_punct('(') {
        true
    } else if next.kind.is_punct(':')
        && tokens.get(i + 2).is_some_and(|t| t.kind.is_punct(':'))
        && tokens.get(i + 3).is_some_and(|t| t.kind.is_punct('<'))
    {
        skip_generics(tokens, i + 3)
            .and_then(|after| tokens.get(after))
            .is_some_and(|t| t.kind.is_punct('('))
    } else {
        false
    };
    if !is_call {
        return None;
    }
    // Classify by the preceding tokens.
    if i >= 1 && tokens[i - 1].kind.is_punct('.') {
        let recv = if i >= 2 {
            tokens[i - 2].kind.ident().unwrap_or("_")
        } else {
            "_"
        };
        let chained = i >= 3 && tokens[i - 3].kind.is_punct('.');
        if recv == "self" && !chained {
            return Some(Callee::SelfMethod(name.to_string()));
        }
        return Some(Callee::Method {
            recv: recv.to_string(),
            name: name.to_string(),
        });
    }
    if i >= 2 && tokens[i - 1].kind.is_punct(':') && tokens[i - 2].kind.is_punct(':') {
        let ty = if i >= 3 {
            tokens[i - 3].kind.ident().unwrap_or("")
        } else {
            ""
        };
        if ty.starts_with(|c: char| c.is_ascii_uppercase()) {
            return Some(Callee::Qualified {
                ty: ty.to_string(),
                name: name.to_string(),
            });
        }
        // Module-qualified free fn (`ffi::syscall(…)`), or an
        // unclassifiable `<T as Trait>::name(…)`.
        return Some(Callee::Plain(name.to_string()));
    }
    if i >= 1 && tokens[i - 1].kind.is_ident("fn") {
        return None; // the definition itself
    }
    // Bare `Name(` with an uppercase head is a tuple-struct or enum
    // variant constructor, not a call.
    if name.starts_with(|c: char| c.is_ascii_uppercase()) {
        return None;
    }
    Some(Callee::Plain(name.to_string()))
}

fn in_extents(line: u32, extents: &[(u32, u32)]) -> bool {
    extents.iter().any(|&(a, b)| line >= a && line <= b)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn syms(src: &str) -> FileSyms {
        extract(&lex(src))
    }

    #[test]
    fn free_fns_methods_and_owners() {
        let src = "fn top() { helper(); }\n\
                   struct S;\n\
                   impl S { fn m(&self) { self.n(); } fn n(&self) {} }\n\
                   impl Drop for S { fn drop(&mut self) { cleanup(); } }";
        let s = syms(src);
        let names: Vec<(String, Option<String>)> = s
            .fns
            .iter()
            .map(|f| (f.name.clone(), f.owner.clone()))
            .collect();
        assert_eq!(
            names,
            vec![
                ("top".into(), None),
                ("m".into(), Some("S".into())),
                ("n".into(), Some("S".into())),
                ("drop".into(), Some("S".into())),
            ]
        );
        assert_eq!(s.fns[0].calls[0].callee, Callee::Plain("helper".into()));
        assert_eq!(s.fns[1].calls[0].callee, Callee::SelfMethod("n".into()));
    }

    #[test]
    fn hot_attr_survives_interleaved_attributes() {
        let src = "#[simlint_macros::hot_path]\n#[inline]\nfn hot() {}\nfn cold() {}";
        let s = syms(src);
        assert!(s.fns[0].is_hot);
        assert!(!s.fns[1].is_hot);
    }

    #[test]
    fn call_shapes_are_classified() {
        let src = "fn f(&self) {\n\
                     self.inner.push(1);\n\
                     Vec::with_capacity(4);\n\
                     ffi::syscall(1);\n\
                     vec![0; 4];\n\
                     data.iter().collect::<Vec<u8>>();\n\
                     Some(3);\n\
                   }";
        let calls = &syms(src).fns[0].calls;
        let shapes: Vec<String> = calls.iter().map(|c| c.callee.display()).collect();
        assert_eq!(
            shapes,
            vec![
                "inner.push",
                "Vec::with_capacity",
                "syscall",
                "vec!",
                "data.iter",
                "_.collect", // turbofish still detected; recv after `)` is opaque
            ]
        );
    }

    #[test]
    fn nested_fns_attribute_calls_to_the_innermost() {
        let src = "fn outer() { fn inner() { deep(); } shallow(); }";
        let s = syms(src);
        assert_eq!(s.fns[0].name, "outer");
        assert_eq!(s.fns[1].name, "inner");
        assert_eq!(s.fns[1].calls[0].callee, Callee::Plain("deep".into()));
        assert_eq!(s.fns[0].calls[0].callee, Callee::Plain("shallow".into()));
    }

    #[test]
    fn guard_returning_signature_is_detected() {
        let src = "fn a(&self) -> MutexGuard<'_, u32> { self.m.lock().unwrap() }\n\
                   fn b(g: &str) -> usize { g.len() }";
        let s = syms(src);
        assert!(s.fns[0].returns_guard);
        assert!(!s.fns[1].returns_guard);
    }

    #[test]
    fn test_mod_fns_are_flagged() {
        let src = "fn live() {}\n#[cfg(test)]\nmod tests { fn helper() {} }";
        let s = syms(src);
        assert!(!s.fns[0].in_test_mod);
        assert!(s.fns[1].in_test_mod);
    }

    #[test]
    fn generics_and_where_clauses_do_not_derail_bodies() {
        let src = "fn f<T: Fn(u8) -> u8>(x: T) -> impl Iterator<Item = u8> where T: Clone {\n\
                     target();\n\
                     std::iter::empty()\n\
                   }";
        let s = syms(src);
        assert_eq!(s.fns.len(), 1);
        assert!(s.fns[0]
            .calls
            .iter()
            .any(|c| c.callee == Callee::Plain("target".into())));
    }
}
