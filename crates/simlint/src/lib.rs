//! simlint — the workspace determinism-and-hot-path static analyzer.
//!
//! See DESIGN.md §9 ("Static determinism wall") for the rule catalogue
//! and waiver policy. The analyzer is dependency-free by construction:
//! it lexes Rust source itself ([`lexer`]), reads its policy from a tiny
//! TOML subset ([`policy`]), and emits rustc-style text or JSON
//! ([`diag`]). Rules live in [`rules`]; this module is the driver that
//! walks the tree and stitches the passes together.

pub mod diag;
pub mod lexer;
pub mod policy;
pub mod rules;

use diag::Finding;
use policy::Policy;
use std::fs;
use std::path::{Path, PathBuf};

/// Run every rule over the tree under `root` according to `policy`.
///
/// Returns all findings — waived ones included, with their justification
/// attached — sorted by (file, line, col, rule) so output is stable
/// across platforms and directory-iteration orders. The caller decides
/// the exit code from [`unwaived_count`].
pub fn run_check(root: &Path, policy: &Policy) -> Result<Vec<Finding>, String> {
    let mut findings = Vec::new();
    for file in collect_files(root, policy)? {
        let rel = rel_path(root, &file);
        let src = fs::read_to_string(&file)
            .map_err(|e| format!("{}: read failed: {e}", file.display()))?;
        let lexed = lexer::lex(&src);
        let (waivers, mut w0) = rules::parse_waivers(&rel, &lexed);
        let mut file_findings = Vec::new();
        file_findings.extend(rules::rule_r1(&rel, &lexed, policy));
        file_findings.extend(rules::rule_r2(&rel, &lexed, policy));
        file_findings.extend(rules::rule_r3(&rel, &lexed, policy));
        file_findings.extend(rules::rule_r4(&rel, &lexed));
        for spec in &policy.codecs {
            if spec.file == rel {
                file_findings.extend(rules::rule_r5(spec, &lexed));
            }
        }
        rules::apply_waivers(&mut file_findings, &waivers);
        findings.append(&mut file_findings);
        findings.append(&mut w0);
    }
    // Codec spec files that never appeared in the walk are a policy error
    // (a stale simlint.toml must fail loudly, not silently pass).
    for spec in &policy.codecs {
        let path = root.join(&spec.file);
        if !path.is_file() {
            findings.push(Finding {
                rule: "R5".into(),
                file: spec.file.clone(),
                line: 1,
                col: 1,
                message: format!("[codec.{}] file not found under scan root", spec.name),
                waived: None,
            });
        }
    }
    findings
        .sort_by(|a, b| (&a.file, a.line, a.col, &a.rule).cmp(&(&b.file, b.line, b.col, &b.rule)));
    Ok(findings)
}

/// Number of findings that actually fail the check.
pub fn unwaived_count(findings: &[Finding]) -> usize {
    findings.iter().filter(|f| f.waived.is_none()).count()
}

/// All `.rs` files under the policy's include roots, excluding excluded
/// prefixes and `target/` build directories, in sorted order.
fn collect_files(root: &Path, policy: &Policy) -> Result<Vec<PathBuf>, String> {
    let mut out = Vec::new();
    for inc in &policy.scan_include {
        let dir = root.join(inc);
        if !dir.exists() {
            return Err(format!("scan include `{inc}` does not exist under root"));
        }
        walk(root, &dir, policy, &mut out)?;
    }
    out.sort();
    out.dedup();
    Ok(out)
}

fn walk(root: &Path, dir: &Path, policy: &Policy, out: &mut Vec<PathBuf>) -> Result<(), String> {
    let rel = rel_path(root, dir);
    if policy::in_scope(&rel, &policy.scan_exclude) {
        return Ok(());
    }
    if dir.is_file() {
        if dir.extension().is_some_and(|e| e == "rs") {
            out.push(dir.to_path_buf());
        }
        return Ok(());
    }
    if dir.file_name().is_some_and(|n| n == "target") {
        return Ok(());
    }
    let mut entries: Vec<PathBuf> = fs::read_dir(dir)
        .map_err(|e| format!("{}: read_dir failed: {e}", dir.display()))?
        .filter_map(|e| e.ok().map(|e| e.path()))
        .collect();
    entries.sort();
    for entry in entries {
        let rel = rel_path(root, &entry);
        if policy::in_scope(&rel, &policy.scan_exclude) {
            continue;
        }
        if entry.is_dir() {
            walk(root, &entry, policy, out)?;
        } else if entry.extension().is_some_and(|e| e == "rs") {
            out.push(entry);
        }
    }
    Ok(())
}

/// `path` relative to `root`, `/`-separated (for stable diagnostics and
/// policy matching on every platform).
fn rel_path(root: &Path, path: &Path) -> String {
    path.strip_prefix(root)
        .unwrap_or(path)
        .components()
        .map(|c| c.as_os_str().to_string_lossy().into_owned())
        .collect::<Vec<_>>()
        .join("/")
}

/// Load and parse the policy file at `root/simlint.toml`.
pub fn load_policy(root: &Path) -> Result<Policy, String> {
    let path = root.join("simlint.toml");
    let src =
        fs::read_to_string(&path).map_err(|e| format!("{}: read failed: {e}", path.display()))?;
    Policy::parse(&src).map_err(|e| format!("simlint.toml: {e}"))
}
