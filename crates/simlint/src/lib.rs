//! simlint — the workspace determinism-and-hot-path static analyzer.
//!
//! See DESIGN.md §9 ("Static determinism wall") for the rule catalogue
//! and waiver policy. The analyzer is dependency-free by construction:
//! it lexes Rust source itself ([`lexer`]), reads its policy from a tiny
//! TOML subset ([`policy`]), and emits rustc-style text or JSON
//! ([`diag`]). Per-file rules live in [`rules`]; the item extractor
//! ([`symbols`]) and the call-graph rules R6/R7 ([`graph`]) see the
//! whole workspace at once. This module is the driver: pass 1 lexes and
//! extracts every file, pass 2 runs per-file rules, pass 3 builds the
//! call graph and runs the transitive rules, and the waiver post-pass
//! (including W1 stale-waiver detection) stitches it all together.

pub mod diag;
pub mod graph;
pub mod lexer;
pub mod policy;
pub mod rules;
pub mod symbols;

use diag::Finding;
use policy::Policy;
use std::fs;
use std::path::{Path, PathBuf};

/// One scanned file: its lexed token stream plus extracted items. The
/// whole-workspace slice of these is what [`graph::CallGraph`] consumes.
pub struct SourceFile {
    /// Path relative to the scan root, `/`-separated.
    pub rel: String,
    pub lexed: lexer::Lexed,
    pub syms: symbols::FileSyms,
}

/// Run every rule over the tree under `root` according to `policy`.
///
/// Returns all findings — waived ones included, with their justification
/// attached — sorted by (file, line, col, rule) so output is stable
/// across platforms and directory-iteration orders. The caller decides
/// the exit code from [`unwaived_count`].
pub fn run_check(root: &Path, policy: &Policy) -> Result<Vec<Finding>, String> {
    // Pass 1: lex + extract the whole tree.
    let mut files = Vec::new();
    for file in collect_files(root, policy)? {
        let rel = rel_path(root, &file);
        let src = fs::read_to_string(&file)
            .map_err(|e| format!("{}: read failed: {e}", file.display()))?;
        let lexed = lexer::lex(&src);
        let syms = symbols::extract(&lexed);
        files.push(SourceFile { rel, lexed, syms });
    }

    // Pass 2: per-file rules.
    let mut per_file: Vec<Vec<Finding>> = files
        .iter()
        .map(|sf| {
            let mut out = Vec::new();
            out.extend(rules::rule_r1(&sf.rel, &sf.lexed, policy));
            out.extend(rules::rule_r2(&sf.rel, &sf.lexed, policy));
            out.extend(rules::rule_r3(&sf.rel, &sf.lexed, policy));
            out.extend(rules::rule_r8(&sf.rel, &sf.lexed, policy));
            for spec in &policy.codecs {
                if spec.file == sf.rel {
                    out.extend(rules::rule_r5(spec, &sf.lexed));
                }
            }
            out
        })
        .collect();

    // Pass 3: the call-graph rules see every file at once.
    let call_graph = graph::CallGraph::build(&files);
    let graph_findings = graph::rule_r6(&files, &call_graph)
        .into_iter()
        .chain(graph::rule_r7(&files, &call_graph, policy));
    for f in graph_findings {
        match files.iter().position(|sf| sf.rel == f.file) {
            Some(i) => per_file[i].push(f),
            None => return Err(format!("graph finding for unscanned file {}", f.file)),
        }
    }

    // Waiver post-pass: apply per file, then surface unused waivers (W1)
    // and malformed ones (W0).
    let mut findings = Vec::new();
    for (sf, mut file_findings) in files.iter().zip(per_file) {
        let (waivers, mut w0) = rules::parse_waivers(&sf.rel, &sf.lexed);
        let used = rules::apply_waivers(&mut file_findings, &waivers);
        findings.extend(rules::stale_waiver_findings(&sf.rel, &waivers, &used));
        findings.append(&mut file_findings);
        findings.append(&mut w0);
    }
    // Codec spec files that never appeared in the walk are a policy error
    // (a stale simlint.toml must fail loudly, not silently pass).
    for spec in &policy.codecs {
        let path = root.join(&spec.file);
        if !path.is_file() {
            findings.push(Finding {
                rule: "R5".into(),
                file: spec.file.clone(),
                line: 1,
                col: 1,
                message: format!("[codec.{}] file not found under scan root", spec.name),
                path: Vec::new(),
                waived: None,
            });
        }
    }
    findings
        .sort_by(|a, b| (&a.file, a.line, a.col, &a.rule).cmp(&(&b.file, b.line, b.col, &b.rule)));
    Ok(findings)
}

/// Number of findings that actually fail the check.
pub fn unwaived_count(findings: &[Finding]) -> usize {
    findings.iter().filter(|f| f.waived.is_none()).count()
}

/// All `.rs` files under the policy's include roots, excluding excluded
/// prefixes and `target/` build directories, in sorted order.
fn collect_files(root: &Path, policy: &Policy) -> Result<Vec<PathBuf>, String> {
    let mut out = Vec::new();
    for inc in &policy.scan_include {
        let dir = root.join(inc);
        if !dir.exists() {
            return Err(format!("scan include `{inc}` does not exist under root"));
        }
        walk(root, &dir, policy, &mut out)?;
    }
    out.sort();
    out.dedup();
    Ok(out)
}

fn walk(root: &Path, dir: &Path, policy: &Policy, out: &mut Vec<PathBuf>) -> Result<(), String> {
    let rel = rel_path(root, dir);
    if policy::in_scope(&rel, &policy.scan_exclude) {
        return Ok(());
    }
    if dir.is_file() {
        if dir.extension().is_some_and(|e| e == "rs") {
            out.push(dir.to_path_buf());
        }
        return Ok(());
    }
    if dir.file_name().is_some_and(|n| n == "target") {
        return Ok(());
    }
    let mut entries: Vec<PathBuf> = fs::read_dir(dir)
        .map_err(|e| format!("{}: read_dir failed: {e}", dir.display()))?
        .filter_map(|e| e.ok().map(|e| e.path()))
        .collect();
    entries.sort();
    for entry in entries {
        let rel = rel_path(root, &entry);
        if policy::in_scope(&rel, &policy.scan_exclude) {
            continue;
        }
        if entry.is_dir() {
            walk(root, &entry, policy, out)?;
        } else if entry.extension().is_some_and(|e| e == "rs") {
            out.push(entry);
        }
    }
    Ok(())
}

/// `path` relative to `root`, `/`-separated (for stable diagnostics and
/// policy matching on every platform).
fn rel_path(root: &Path, path: &Path) -> String {
    path.strip_prefix(root)
        .unwrap_or(path)
        .components()
        .map(|c| c.as_os_str().to_string_lossy().into_owned())
        .collect::<Vec<_>>()
        .join("/")
}

/// Load and parse the policy file at `root/simlint.toml`.
pub fn load_policy(root: &Path) -> Result<Policy, String> {
    let path = root.join("simlint.toml");
    let src =
        fs::read_to_string(&path).map_err(|e| format!("{}: read failed: {e}", path.display()))?;
    Policy::parse(&src).map_err(|e| format!("simlint.toml: {e}"))
}
