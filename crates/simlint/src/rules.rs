//! The per-file rule implementations (R1–R3, R5, R8) plus the waiver
//! machinery. The call-graph rules (R6 transitive hot-path purity, R7
//! lock order) live in [`crate::graph`]; R4's direct hot-path check was
//! subsumed by R6.
//!
//! Every rule here is a pure function over one file's token stream; rule
//! R5 additionally cross-references two token streams (enum declaration
//! vs. codec bodies). Waivers are parsed out of line comments and applied
//! as a post-pass: a waived finding is kept (with its justification) so
//! the JSON report documents the wall, but it no longer fails the check.
//! A waiver that suppresses nothing is itself a finding (W1), so the
//! wall cannot silently rot as code moves.

use crate::diag::Finding;
use crate::lexer::{Lexed, Token, TokenKind};
use crate::policy::{in_scope, CodecSpec, Policy};
use std::collections::BTreeSet;

/// A parsed `// simlint: allow(R1, R2) -- justification` waiver.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Waiver {
    /// Rule ids the waiver covers.
    pub rules: Vec<String>,
    /// Mandatory free-text justification (after `--`).
    pub justification: String,
    /// The code line this waiver applies to: its own line for trailing
    /// comments, the next code line for standalone comments.
    pub applies_line: u32,
    /// Line of the comment itself (for diagnostics).
    pub comment_line: u32,
}

/// Extract waivers from a file's comments. Malformed waivers — a
/// `simlint:` comment that is not `allow(<rules>) -- <justification>` —
/// become `W0` findings, which cannot themselves be waived.
pub fn parse_waivers(path: &str, lexed: &Lexed) -> (Vec<Waiver>, Vec<Finding>) {
    let mut waivers = Vec::new();
    let mut findings = Vec::new();
    for c in &lexed.comments {
        let Some(body) = c.text.strip_prefix("simlint:") else {
            continue;
        };
        match parse_waiver_body(body.trim()) {
            Ok((rules, justification)) => {
                let applies_line = if c.trailing {
                    c.line
                } else {
                    next_code_line(&lexed.tokens, c.line).unwrap_or(c.line)
                };
                waivers.push(Waiver {
                    rules,
                    justification,
                    applies_line,
                    comment_line: c.line,
                });
            }
            Err(msg) => findings.push(Finding {
                rule: "W0".into(),
                file: path.into(),
                line: c.line,
                col: 1,
                message: format!("malformed waiver: {msg}"),
                path: Vec::new(),
                waived: None,
            }),
        }
    }
    (waivers, findings)
}

fn parse_waiver_body(body: &str) -> Result<(Vec<String>, String), String> {
    let rest = body
        .strip_prefix("allow")
        .ok_or("expected `allow(<rules>) -- <justification>`")?
        .trim_start();
    let rest = rest.strip_prefix('(').ok_or("expected `(` after `allow`")?;
    let (rules_str, rest) = rest.split_once(')').ok_or("unclosed `(` in `allow(...)`")?;
    let mut rules = Vec::new();
    for r in rules_str.split(',') {
        let r = r.trim();
        if !matches!(r, "R1" | "R2" | "R3" | "R4" | "R5" | "R6" | "R7" | "R8") {
            return Err(format!("unknown rule id `{r}` (expected R1..R8)"));
        }
        rules.push(r.to_string());
    }
    if rules.is_empty() {
        return Err("empty rule list".into());
    }
    let justification = rest
        .trim_start()
        .strip_prefix("--")
        .map(str::trim)
        .unwrap_or("");
    if justification.is_empty() {
        return Err("missing justification (`-- <why this is safe>`)".into());
    }
    Ok((rules, justification.to_string()))
}

/// First line strictly after `after` that carries a code token.
fn next_code_line(tokens: &[Token], after: u32) -> Option<u32> {
    tokens.iter().map(|t| t.line).find(|&l| l > after)
}

/// Mark findings covered by a waiver on the same line. `W0`/`W1` findings
/// are never waivable. Returns one flag per waiver: did it suppress at
/// least one finding? Unused waivers become W1 stale-waiver findings via
/// [`stale_waiver_findings`].
pub fn apply_waivers(findings: &mut [Finding], waivers: &[Waiver]) -> Vec<bool> {
    let mut used = vec![false; waivers.len()];
    for f in findings.iter_mut() {
        if f.rule == "W0" || f.rule == "W1" {
            continue;
        }
        if let Some((k, w)) = waivers
            .iter()
            .enumerate()
            .find(|(_, w)| w.applies_line == f.line && w.rules.contains(&f.rule))
        {
            f.waived = Some(w.justification.clone());
            used[k] = true;
        }
    }
    used
}

/// W1: a waiver that suppressed nothing. Stale waivers hide real policy —
/// the rule they name either moved or was fixed — so they must be pruned,
/// and (like W0) they cannot themselves be waived.
pub fn stale_waiver_findings(path: &str, waivers: &[Waiver], used: &[bool]) -> Vec<Finding> {
    waivers
        .iter()
        .zip(used)
        .filter(|(_, &u)| !u)
        .map(|(w, _)| Finding {
            rule: "W1".into(),
            file: path.into(),
            line: w.comment_line,
            col: 1,
            message: format!(
                "stale waiver: `allow({})` suppresses no finding on line {} — remove it",
                w.rules.join(", "),
                w.applies_line
            ),
            path: Vec::new(),
            waived: None,
        })
        .collect()
}

/// Line extents (inclusive) of `#[cfg(test)] mod … { … }` bodies. Rules
/// that tolerate panics in tests (R3) skip these regions.
pub fn test_mod_extents(tokens: &[Token]) -> Vec<(u32, u32)> {
    let mut out = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        if is_cfg_test_attr(tokens, i) {
            // Skip this and any further attributes, then expect `mod`.
            let mut j = i;
            while j < tokens.len() && tokens[j].kind.is_punct('#') {
                match bracket_close(tokens, j + 1) {
                    Some(end) => j = end + 1,
                    None => break,
                }
            }
            if tokens.get(j).is_some_and(|t| t.kind.is_ident("mod")) {
                if let Some(open) = tokens[j..]
                    .iter()
                    .position(|t| t.kind.is_punct('{'))
                    .map(|p| j + p)
                {
                    if let Some(close) = brace_close(tokens, open) {
                        out.push((tokens[open].line, tokens[close].line));
                        i = close + 1;
                        continue;
                    }
                }
            }
        }
        i += 1;
    }
    out
}

fn is_cfg_test_attr(tokens: &[Token], i: usize) -> bool {
    matches!(
        (
            tokens.get(i),
            tokens.get(i + 1),
            tokens.get(i + 2),
            tokens.get(i + 3),
            tokens.get(i + 4),
        ),
        (Some(a), Some(b), Some(c), Some(d), Some(e))
            if a.kind.is_punct('#')
                && b.kind.is_punct('[')
                && c.kind.is_ident("cfg")
                && d.kind.is_punct('(')
                && e.kind.is_ident("test")
    )
}

/// Index of the `]` matching the `[` at `open`.
pub(crate) fn bracket_close(tokens: &[Token], open: usize) -> Option<usize> {
    matching_close(tokens, open, '[', ']')
}

/// Index of the `}` matching the `{` at `open`.
pub(crate) fn brace_close(tokens: &[Token], open: usize) -> Option<usize> {
    matching_close(tokens, open, '{', '}')
}

pub(crate) fn matching_close(tokens: &[Token], open: usize, o: char, c: char) -> Option<usize> {
    if !tokens.get(open)?.kind.is_punct(o) {
        return None;
    }
    let mut depth = 0usize;
    for (idx, t) in tokens.iter().enumerate().skip(open) {
        if t.kind.is_punct(o) {
            depth += 1;
        } else if t.kind.is_punct(c) {
            depth -= 1;
            if depth == 0 {
                return Some(idx);
            }
        }
    }
    None
}

fn in_extents(line: u32, extents: &[(u32, u32)]) -> bool {
    extents.iter().any(|&(a, b)| line >= a && line <= b)
}

/// Token-sequence pattern element.
enum Pat {
    /// Exactly this identifier.
    I(&'static str),
    /// Exactly this punctuation character.
    P(char),
    /// Any identifier.
    AnyIdent,
    /// An integer literal (digits and underscores only).
    IntLit,
}

fn pat_matches(tokens: &[Token], at: usize, pat: &[Pat]) -> bool {
    if at + pat.len() > tokens.len() {
        return false;
    }
    pat.iter().enumerate().all(|(k, p)| {
        let kind = &tokens[at + k].kind;
        match p {
            Pat::I(s) => kind.is_ident(s),
            Pat::P(c) => kind.is_punct(*c),
            Pat::AnyIdent => kind.ident().is_some(),
            Pat::IntLit => matches!(
                kind,
                TokenKind::Literal(l)
                    if !l.is_empty()
                        && l.bytes().next().is_some_and(|b| b.is_ascii_digit())
                        && l.bytes().all(|b| b.is_ascii_digit() || b == b'_')
            ),
        }
    })
}

/// Scan `tokens` for every occurrence of any pattern, reporting a finding
/// anchored at `pat[report]` with `message(matched_pattern_index)`.
fn scan_patterns(
    path: &str,
    tokens: &[Token],
    rule: &str,
    patterns: &[(&[Pat], usize, &str)],
    skip: &[(u32, u32)],
    range: Option<(usize, usize)>,
) -> Vec<Finding> {
    let (lo, hi) = range.unwrap_or((0, tokens.len()));
    let mut out = Vec::new();
    for i in lo..hi {
        for (pat, report, message) in patterns {
            if pat_matches(tokens, i, pat) {
                let anchor = &tokens[i + report.min(&(pat.len() - 1))];
                if in_extents(anchor.line, skip) {
                    continue;
                }
                out.push(Finding {
                    rule: rule.into(),
                    file: path.into(),
                    line: anchor.line,
                    col: anchor.col,
                    message: (*message).into(),
                    path: Vec::new(),
                    waived: None,
                });
            }
        }
    }
    out
}

/// R1: default-hasher `HashMap`/`HashSet` in determinism-scoped crates.
/// Iteration order of `RandomState` maps varies per process, which breaks
/// the cross-engine `curve_hash` conformance contract, so the scoped
/// crates must use `BTreeMap`/`BTreeSet` (or a seeded hasher behind a
/// waiver).
pub fn rule_r1(path: &str, lexed: &Lexed, policy: &Policy) -> Vec<Finding> {
    if !in_scope(path, &policy.r1_scope) {
        return Vec::new();
    }
    const PATS: &[(&[Pat], usize, &str)] = &[
        (
            &[Pat::I("HashMap")],
            0,
            "`HashMap` (default RandomState hasher) in a determinism-scoped crate; \
             use `BTreeMap` or a seeded hasher",
        ),
        (
            &[Pat::I("HashSet")],
            0,
            "`HashSet` (default RandomState hasher) in a determinism-scoped crate; \
             use `BTreeSet` or a seeded hasher",
        ),
    ];
    scan_patterns(path, &lexed.tokens, "R1", PATS, &[], None)
}

/// R2: wall-clock reads outside policy-allowed paths. Virtual time (GVT)
/// is the only clock the simulation may observe; `Instant::now` /
/// `SystemTime` in engine code silently de-syncs replay and DST runs.
pub fn rule_r2(path: &str, lexed: &Lexed, policy: &Policy) -> Vec<Finding> {
    if in_scope(path, &policy.r2_allow) {
        return Vec::new();
    }
    const PATS: &[(&[Pat], usize, &str)] = &[
        (
            &[Pat::I("Instant"), Pat::P(':'), Pat::P(':'), Pat::I("now")],
            0,
            "wall-clock read (`Instant::now`) outside an allowed watchdog/bench scope",
        ),
        (
            &[Pat::I("SystemTime")],
            0,
            "wall-clock type (`SystemTime`) outside an allowed watchdog/bench scope",
        ),
    ];
    scan_patterns(path, &lexed.tokens, "R2", PATS, &[], None)
}

/// R3: panic paths in the net transport. A peer disconnect must surface
/// as `TransportError`, not a panic: a panicking comm thread takes down
/// the process with exit 101 and the conformance harness cannot tell a
/// clean failure from a crash. Skips `#[cfg(test)]` modules.
pub fn rule_r3(path: &str, lexed: &Lexed, policy: &Policy) -> Vec<Finding> {
    if !in_scope(path, &policy.r3_scope) {
        return Vec::new();
    }
    let skip = test_mod_extents(&lexed.tokens);
    const PATS: &[(&[Pat], usize, &str)] = &[
        (
            &[Pat::P('.'), Pat::I("unwrap"), Pat::P('(')],
            1,
            "`.unwrap()` in a transport path; propagate `TransportError` instead",
        ),
        (
            &[Pat::P('.'), Pat::I("expect"), Pat::P('(')],
            1,
            "`.expect()` in a transport path; propagate `TransportError` instead",
        ),
        (
            &[Pat::I("panic"), Pat::P('!')],
            0,
            "`panic!` in a transport path; propagate `TransportError` instead",
        ),
        (
            &[Pat::I("unreachable"), Pat::P('!')],
            0,
            "`unreachable!` in a transport path; propagate `TransportError` instead",
        ),
        (
            &[Pat::AnyIdent, Pat::P('['), Pat::IntLit, Pat::P(']')],
            1,
            "literal indexing can panic on a short frame; length-check and waive, \
             or use `get()`",
        ),
    ];
    scan_patterns(path, &lexed.tokens, "R3", PATS, &skip, None)
}

/// R8: unsafe audit. Every `unsafe` keyword must sit in a policy-allowed
/// file ([`Policy::r8_allow`]) *and* carry an adjacent `// SAFETY:`
/// justification — trailing on the same line, or on a comment line above
/// with only blank lines, other comments, attributes, or further `unsafe`
/// lines in between (so one comment can cover a contiguous unsafe
/// group). Doc comments (`///`) do not count: a safety argument for the
/// *caller* is not an argument for this block's soundness.
pub fn rule_r8(path: &str, lexed: &Lexed, policy: &Policy) -> Vec<Finding> {
    let tokens = &lexed.tokens;
    let allowed = in_scope(path, &policy.r8_allow);

    // Per-line token facts for the upward SAFETY scan.
    let mut first_tok_on_line: std::collections::BTreeMap<u32, &TokenKind> =
        std::collections::BTreeMap::new();
    let mut unsafe_lines = BTreeSet::new();
    for t in tokens {
        first_tok_on_line.entry(t.line).or_insert(&t.kind);
        if t.kind.is_ident("unsafe") {
            unsafe_lines.insert(t.line);
        }
    }
    let safety_at = |line: u32| {
        lexed
            .comments
            .iter()
            .any(|c| c.line == line && c.text.trim_start().starts_with("SAFETY:"))
    };

    let mut out = Vec::new();
    let mut seen_lines = BTreeSet::new();
    for t in tokens {
        if !t.kind.is_ident("unsafe") || !seen_lines.insert(t.line) {
            continue;
        }
        if !allowed {
            out.push(Finding {
                rule: "R8".into(),
                file: path.into(),
                line: t.line,
                col: t.col,
                message: "`unsafe` in a file outside the [r8] allow list; unsafe code is \
                          confined to audited modules"
                    .into(),
                path: Vec::new(),
                waived: None,
            });
            continue;
        }
        // Trailing `// SAFETY:` on the same line?
        if safety_at(t.line) {
            continue;
        }
        // Upward scan: a standalone SAFETY comment with only transparent
        // lines (blank / comment-only / attribute / more unsafe) between.
        const MAX_SCAN: u32 = 30;
        let mut justified = false;
        let mut l = t.line;
        while l > 1 && t.line - l < MAX_SCAN {
            l -= 1;
            if safety_at(l) {
                justified = true;
                break;
            }
            let transparent = match first_tok_on_line.get(&l) {
                None => true, // blank or comment-only line
                Some(k) if k.is_punct('#') => true,
                _ => unsafe_lines.contains(&l),
            };
            if !transparent {
                break;
            }
        }
        if !justified {
            out.push(Finding {
                rule: "R8".into(),
                file: path.into(),
                line: t.line,
                col: t.col,
                message: "`unsafe` without an adjacent `// SAFETY:` justification".into(),
                path: Vec::new(),
                waived: None,
            });
        }
    }
    out
}

/// R5: codec lockstep. Every variant of the spec's enum must be named in
/// both the encode and decode function bodies — a variant added to the
/// enum but not to both codec arms is exactly the silent wire-format skew
/// this rule exists to catch.
pub fn rule_r5(spec: &CodecSpec, lexed: &Lexed) -> Vec<Finding> {
    let tokens = &lexed.tokens;
    let mut out = Vec::new();
    let Some((variants, decl_line, decl_col)) = enum_variants(tokens, &spec.enum_name) else {
        out.push(Finding {
            rule: "R5".into(),
            file: spec.file.clone(),
            line: 1,
            col: 1,
            message: format!(
                "[codec.{}] enum `{}` not found in {}",
                spec.name, spec.enum_name, spec.file
            ),
            path: Vec::new(),
            waived: None,
        });
        return out;
    };
    for (role, fn_name) in [("encode", &spec.encode_fn), ("decode", &spec.decode_fn)] {
        let Some(idents) = fn_body_idents(tokens, fn_name) else {
            out.push(Finding {
                rule: "R5".into(),
                file: spec.file.clone(),
                line: 1,
                col: 1,
                message: format!(
                    "[codec.{}] {role} fn `{fn_name}` not found in {}",
                    spec.name, spec.file
                ),
                path: Vec::new(),
                waived: None,
            });
            continue;
        };
        for v in &variants {
            if !idents.contains(v.as_str()) {
                out.push(Finding {
                    rule: "R5".into(),
                    file: spec.file.clone(),
                    line: decl_line,
                    col: decl_col,
                    message: format!(
                        "variant `{}::{v}` is not handled in `{fn_name}` ({role} arm missing)",
                        spec.enum_name
                    ),
                    path: Vec::new(),
                    waived: None,
                });
            }
        }
    }
    out
}

/// Variant names of `enum name { … }`, with the declaration position.
fn enum_variants(tokens: &[Token], name: &str) -> Option<(Vec<String>, u32, u32)> {
    let decl = (0..tokens.len()).find(|&i| {
        tokens[i].kind.is_ident("enum") && tokens.get(i + 1).is_some_and(|t| t.kind.is_ident(name))
    })?;
    let open = tokens[decl..]
        .iter()
        .position(|t| t.kind.is_punct('{'))
        .map(|p| decl + p)?;
    let close = brace_close(tokens, open)?;
    let mut variants = Vec::new();
    let mut depth = 0usize; // nesting inside variant payloads
    let mut expecting = true;
    let mut i = open + 1;
    while i < close {
        let t = &tokens[i];
        match &t.kind {
            TokenKind::Punct('#') if depth == 0 => {
                // Skip `#[…]` attribute groups on variants.
                if let Some(end) = bracket_close(tokens, i + 1) {
                    i = end + 1;
                    continue;
                }
            }
            TokenKind::Punct('{' | '(' | '[') => depth += 1,
            TokenKind::Punct('}' | ')' | ']') => depth = depth.saturating_sub(1),
            TokenKind::Punct(',') if depth == 0 => expecting = true,
            TokenKind::Ident(id) if depth == 0 && expecting => {
                variants.push(id.clone());
                expecting = false;
            }
            _ => {}
        }
        i += 1;
    }
    Some((variants, tokens[decl + 1].line, tokens[decl + 1].col))
}

/// All identifiers appearing in the body of `fn name`.
fn fn_body_idents(tokens: &[Token], name: &str) -> Option<BTreeSet<String>> {
    let decl = (0..tokens.len()).find(|&i| {
        tokens[i].kind.is_ident("fn") && tokens.get(i + 1).is_some_and(|t| t.kind.is_ident(name))
    })?;
    let open = tokens[decl..]
        .iter()
        .position(|t| t.kind.is_punct('{'))
        .map(|p| decl + p)?;
    let close = brace_close(tokens, open)?;
    Some(
        tokens[open..close]
            .iter()
            .filter_map(|t| t.kind.ident().map(str::to_string))
            .collect(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn policy() -> Policy {
        Policy {
            scan_include: vec!["src".into()],
            r1_scope: vec!["src/det".into()],
            r2_allow: vec!["src/bench".into()],
            r3_scope: vec!["src/net/transport.rs".into()],
            r8_allow: vec!["src/ring.rs".into()],
            ..Policy::default()
        }
    }

    #[test]
    fn waiver_parses_and_applies_trailing() {
        let src = "let m = foo(); // simlint: allow(R1, R2) -- seeded hasher\n";
        let lexed = lex(src);
        let (ws, w0) = parse_waivers("f.rs", &lexed);
        assert!(w0.is_empty());
        assert_eq!(ws.len(), 1);
        assert_eq!(ws[0].rules, vec!["R1", "R2"]);
        assert_eq!(ws[0].applies_line, 1);
        assert_eq!(ws[0].justification, "seeded hasher");
    }

    #[test]
    fn standalone_waiver_covers_next_code_line() {
        let src = "// simlint: allow(R2) -- watchdog\n\nlet t = now();\n";
        let (ws, _) = parse_waivers("f.rs", &lex(src));
        assert_eq!(ws[0].applies_line, 3);
    }

    #[test]
    fn malformed_waiver_is_w0() {
        for bad in [
            "// simlint: allow(R1)\nx();",            // no justification
            "// simlint: allow(R9) -- nope\nx();",    // unknown rule
            "// simlint: deny(R1) -- huh\nx();",      // not allow
            "// simlint: allow(R1 -- unclosed\nx();", // unclosed paren
        ] {
            let (ws, w0) = parse_waivers("f.rs", &lex(bad));
            assert!(ws.is_empty(), "waiver accepted: {bad}");
            assert_eq!(w0.len(), 1, "no W0 for: {bad}");
            assert_eq!(w0[0].rule, "W0");
        }
    }

    #[test]
    fn r1_fires_in_scope_only() {
        let src = "use std::collections::HashMap;\nlet m: HashMap<u32, u32> = HashMap::new();";
        let p = policy();
        let hits = rule_r1("src/det/a.rs", &lex(src), &p);
        assert_eq!(hits.len(), 3);
        assert!(rule_r1("src/other/a.rs", &lex(src), &p).is_empty());
    }

    #[test]
    fn r2_matches_instant_now_not_instant_elapsed_arg() {
        let p = policy();
        let hits = rule_r2("src/a.rs", &lex("let t = Instant::now();"), &p);
        assert_eq!(hits.len(), 1);
        assert!(rule_r2("src/a.rs", &lex("fn f(t: Instant) {}"), &p).is_empty());
        assert_eq!(
            rule_r2("src/a.rs", &lex("let s = SystemTime::now();"), &p).len(),
            1
        );
        assert!(rule_r2("src/bench/a.rs", &lex("Instant::now();"), &p).is_empty());
    }

    #[test]
    fn r3_skips_test_mods_and_flags_literal_indexing() {
        let src = "fn f(b: &[u8]) { let k = b[0]; x.unwrap(); }\n\
                   #[cfg(test)]\nmod tests {\n fn g() { y.unwrap(); }\n}\n";
        let p = policy();
        let hits = rule_r3("src/net/transport.rs", &lex(src), &p);
        assert_eq!(hits.len(), 2); // b[0] and the non-test unwrap
        assert!(hits.iter().any(|f| f.message.contains("indexing")));
        assert!(rule_r3("src/elsewhere.rs", &lex(src), &p).is_empty());
    }

    #[test]
    fn r3_does_not_flag_range_slices() {
        let p = policy();
        let hits = rule_r3(
            "src/net/transport.rs",
            &lex("let s = &b[0..4]; let t = &b[4..];"),
            &p,
        );
        assert!(hits.is_empty(), "{hits:?}");
    }

    #[test]
    fn r8_flags_unsafe_outside_the_allowlist() {
        let src = "fn f(p: *const u8) -> u8 { unsafe { *p } }";
        let hits = rule_r8("src/other.rs", &lex(src), &policy());
        assert_eq!(hits.len(), 1);
        assert!(hits[0].message.contains("allow list"));
        assert!(rule_r8(
            "src/ring.rs",
            &lex("// SAFETY: p valid\nlet x = unsafe { *p };"),
            &policy()
        )
        .is_empty());
    }

    #[test]
    fn r8_requires_an_adjacent_safety_comment() {
        let p = policy();
        // Trailing, directly above, and above-with-attribute all count.
        for ok in [
            "let x = unsafe { *p }; // SAFETY: p is valid for reads",
            "// SAFETY: p is valid for reads\nlet x = unsafe { *p };",
            "// SAFETY: callers uphold the ring invariant\n#[inline]\nunsafe fn g() {}",
            "// SAFETY: both lines index the mapped header\nlet a = unsafe { *p };\nlet b = unsafe { *q };",
        ] {
            assert!(rule_r8("src/ring.rs", &lex(ok), &p).is_empty(), "{ok}");
        }
        // Missing, separated by code, and doc-comment-only do not.
        for bad in [
            "let x = unsafe { *p };",
            "// SAFETY: stale, code moved\nlet y = 1;\nlet x = unsafe { *p };",
            "/// SAFETY: doc comments are for callers\nunsafe fn g() {}",
        ] {
            assert_eq!(rule_r8("src/ring.rs", &lex(bad), &p).len(), 1, "{bad}");
        }
    }

    #[test]
    fn r8_reports_once_per_line() {
        let src = "fn f() { unsafe { a() }; unsafe { b() } }";
        assert_eq!(rule_r8("src/other.rs", &lex(src), &policy()).len(), 1);
    }

    #[test]
    fn r5_detects_missing_arm() {
        let src = "enum Msg { A, B(u32), C { x: u8 } }\n\
                   fn enc(m: &Msg) { match m { Msg::A => {}, Msg::B(_) => {}, Msg::C { .. } => {} } }\n\
                   fn dec(b: &[u8]) -> Msg { if b[0] == 0 { Msg::A } else { Msg::B(0) } }\n";
        let spec = CodecSpec {
            name: "msg".into(),
            file: "src/wire.rs".into(),
            enum_name: "Msg".into(),
            encode_fn: "enc".into(),
            decode_fn: "dec".into(),
        };
        let hits = rule_r5(&spec, &lex(src));
        assert_eq!(hits.len(), 1, "{hits:?}");
        assert!(hits[0].message.contains("Msg::C"));
        assert!(hits[0].message.contains("dec"));
    }

    #[test]
    fn r5_variant_extraction_skips_attributes_and_payload_fields() {
        let src = "enum E { #[doc = \"x\"] A, B { inner: Vec<u8> }, C(Box<E>) }";
        let (vars, _, _) = enum_variants(&lex(src).tokens, "E").unwrap();
        assert_eq!(vars, vec!["A", "B", "C"]);
    }

    #[test]
    fn waived_finding_keeps_justification() {
        let src = "let m = HashMap::new(); // simlint: allow(R1) -- scratch map, drained sorted\n";
        let lexed = lex(src);
        let p = policy();
        let mut hits = rule_r1("src/det/a.rs", &lexed, &p);
        let (ws, _) = parse_waivers("src/det/a.rs", &lexed);
        let used = apply_waivers(&mut hits, &ws);
        assert!(hits.iter().all(|f| f.waived.is_some()));
        assert_eq!(
            hits[0].waived.as_deref(),
            Some("scratch map, drained sorted")
        );
        assert_eq!(used, vec![true]);
        assert!(stale_waiver_findings("src/det/a.rs", &ws, &used).is_empty());
    }

    #[test]
    fn unused_waiver_becomes_w1() {
        let src = "let x = 1; // simlint: allow(R2) -- nothing here reads the clock\n";
        let lexed = lex(src);
        let (ws, _) = parse_waivers("src/a.rs", &lexed);
        let used = apply_waivers(&mut [], &ws);
        assert_eq!(used, vec![false]);
        let w1 = stale_waiver_findings("src/a.rs", &ws, &used);
        assert_eq!(w1.len(), 1);
        assert_eq!(w1[0].rule, "W1");
        assert_eq!(w1[0].line, 1);
        assert!(w1[0].message.contains("allow(R2)"));
    }
}
