//! The `simlint.toml` policy file: per-module rule scopes and codec
//! cross-check specs.
//!
//! The parser is a deliberately small TOML subset — `[section]` /
//! `[section.sub]` headers, `key = "string"`, `key = ["a", "b"]`
//! (multi-line allowed), `#` comments — which is exactly what the policy
//! needs and keeps the analyzer dependency-free.

/// One codec exhaustiveness spec for rule R5: every variant of `enum_name`
/// declared in `file` must be named in both the `encode_fn` and
/// `decode_fn` bodies of that file.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CodecSpec {
    /// Spec name (the `[codec.<name>]` suffix), used in diagnostics.
    pub name: String,
    /// File declaring the enum and both codec functions.
    pub file: String,
    /// Enum whose variants are checked.
    pub enum_name: String,
    /// Encoder function name.
    pub encode_fn: String,
    /// Decoder function name.
    pub decode_fn: String,
}

/// The parsed policy.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Policy {
    /// Directories (relative to the root) to scan.
    pub scan_include: Vec<String>,
    /// Path prefixes excluded from every rule (fixture corpora etc.).
    pub scan_exclude: Vec<String>,
    /// R1: path prefixes of determinism-scoped crates.
    pub r1_scope: Vec<String>,
    /// R2: path prefixes where wall-clock reads are policy-allowed
    /// (benches, pre-simulation setup).
    pub r2_allow: Vec<String>,
    /// R3: transport-path files where panics must become `TransportError`.
    pub r3_scope: Vec<String>,
    /// R5 codec specs.
    pub codecs: Vec<CodecSpec>,
    /// R7: path prefixes where lock-order discipline is checked.
    pub r7_scope: Vec<String>,
    /// R7: the declared lock hierarchy, outermost first. Acquiring a lock
    /// at or above the rank of one already held is a finding.
    pub r7_order: Vec<String>,
    /// R7: guard-returning free helper functions (`lock`, `lock_recover`)
    /// whose first ranked-lock argument names the lock they acquire.
    pub r7_helpers: Vec<String>,
    /// R8: files where `unsafe` is permitted (with `// SAFETY:` comments).
    pub r8_allow: Vec<String>,
}

impl Policy {
    /// Parse the policy text. Errors carry a line number.
    pub fn parse(src: &str) -> Result<Policy, String> {
        let mut policy = Policy::default();
        let mut section = String::new();
        let mut lines = src.lines().enumerate().peekable();
        while let Some((lineno, raw)) = lines.next() {
            let line = strip_comment(raw).trim().to_string();
            if line.is_empty() {
                continue;
            }
            if let Some(rest) = line.strip_prefix('[') {
                let name = rest
                    .strip_suffix(']')
                    .ok_or_else(|| format!("line {}: unclosed section header", lineno + 1))?;
                section = name.trim().to_string();
                if let Some(codec) = section.strip_prefix("codec.") {
                    policy.codecs.push(CodecSpec {
                        name: codec.to_string(),
                        file: String::new(),
                        enum_name: String::new(),
                        encode_fn: String::new(),
                        decode_fn: String::new(),
                    });
                }
                continue;
            }
            let (key, mut value) = line
                .split_once('=')
                .map(|(k, v)| (k.trim().to_string(), v.trim().to_string()))
                .ok_or_else(|| format!("line {}: expected `key = value`", lineno + 1))?;
            // Multi-line array: accumulate until the closing bracket.
            if value.starts_with('[') {
                while !value.trim_end().ends_with(']') {
                    let (_, cont) = lines
                        .next()
                        .ok_or_else(|| format!("line {}: unterminated array", lineno + 1))?;
                    value.push(' ');
                    value.push_str(strip_comment(cont).trim());
                }
            }
            policy
                .assign(&section, &key, &value)
                .map_err(|e| format!("line {}: {e}", lineno + 1))?;
        }
        policy.validate()?;
        Ok(policy)
    }

    fn assign(&mut self, section: &str, key: &str, value: &str) -> Result<(), String> {
        if let Some(codec) = section.strip_prefix("codec.") {
            let spec = self
                .codecs
                .iter_mut()
                .find(|c| c.name == codec)
                .ok_or("codec section vanished")?;
            let v = parse_string(value)?;
            match key {
                "file" => spec.file = v,
                "enum" => spec.enum_name = v,
                "encode" => spec.encode_fn = v,
                "decode" => spec.decode_fn = v,
                other => return Err(format!("unknown codec key `{other}`")),
            }
            return Ok(());
        }
        let slot = match (section, key) {
            ("scan", "include") => &mut self.scan_include,
            ("scan", "exclude") => &mut self.scan_exclude,
            ("r1", "scope") => &mut self.r1_scope,
            ("r2", "allow") => &mut self.r2_allow,
            ("r3", "scope") => &mut self.r3_scope,
            ("r7", "scope") => &mut self.r7_scope,
            ("r7", "order") => &mut self.r7_order,
            ("r7", "helpers") => &mut self.r7_helpers,
            ("r8", "allow") => &mut self.r8_allow,
            (s, k) => return Err(format!("unknown key `{k}` in section `[{s}]`")),
        };
        *slot = parse_string_array(value)?;
        Ok(())
    }

    fn validate(&self) -> Result<(), String> {
        for c in &self.codecs {
            if c.file.is_empty()
                || c.enum_name.is_empty()
                || c.encode_fn.is_empty()
                || c.decode_fn.is_empty()
            {
                return Err(format!(
                    "[codec.{}] needs `file`, `enum`, `encode`, and `decode`",
                    c.name
                ));
            }
        }
        Ok(())
    }
}

/// Strip a `#` comment, respecting quoted strings.
fn strip_comment(line: &str) -> &str {
    let mut in_str = false;
    for (i, c) in line.char_indices() {
        match c {
            '"' => in_str = !in_str,
            '#' if !in_str => return &line[..i],
            _ => {}
        }
    }
    line
}

fn parse_string(value: &str) -> Result<String, String> {
    value
        .strip_prefix('"')
        .and_then(|v| v.strip_suffix('"'))
        .map(str::to_string)
        .ok_or_else(|| format!("expected a quoted string, got `{value}`"))
}

fn parse_string_array(value: &str) -> Result<Vec<String>, String> {
    let inner = value
        .strip_prefix('[')
        .and_then(|v| v.trim_end().strip_suffix(']'))
        .ok_or_else(|| format!("expected an array, got `{value}`"))?;
    let mut out = Vec::new();
    for item in inner.split(',') {
        let item = item.trim();
        if item.is_empty() {
            continue; // trailing comma
        }
        out.push(parse_string(item)?);
    }
    Ok(out)
}

/// Does `path` (relative, `/`-separated) fall under any prefix in `scopes`?
/// A prefix matches the exact file or any path inside the directory.
pub fn in_scope(path: &str, scopes: &[String]) -> bool {
    scopes.iter().any(|s| {
        let s = s.trim_end_matches('/');
        path == s || path.starts_with(&format!("{s}/"))
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = r#"
# policy
[scan]
include = ["crates", "src"]
exclude = [
    "crates/simlint/tests/fixtures",  # known-bad corpus
]

[r1]
scope = ["crates/core", "crates/ptts"]

[r2]
allow = ["crates/bench"]

[r3]
scope = ["crates/chare-rt/src/net/comm.rs"]

[r7]
scope = ["crates/serve"]
order = ["handlers", "state", "topic_state"]
helpers = ["lock", "lock_recover"]

[r8]
allow = ["crates/chare-rt/src/net/shm.rs"]

[codec.simmsg]
file = "crates/core/src/messages.rs"
enum = "SimMsg"
encode = "wire_encode"
decode = "wire_decode"
"#;

    #[test]
    fn parses_the_full_shape() {
        let p = Policy::parse(SAMPLE).expect("parses");
        assert_eq!(p.scan_include, vec!["crates", "src"]);
        assert_eq!(p.scan_exclude, vec!["crates/simlint/tests/fixtures"]);
        assert_eq!(p.r1_scope, vec!["crates/core", "crates/ptts"]);
        assert_eq!(p.r7_order, vec!["handlers", "state", "topic_state"]);
        assert_eq!(p.r7_helpers, vec!["lock", "lock_recover"]);
        assert_eq!(p.r8_allow, vec!["crates/chare-rt/src/net/shm.rs"]);
        assert_eq!(p.codecs.len(), 1);
        assert_eq!(p.codecs[0].enum_name, "SimMsg");
        assert_eq!(p.codecs[0].decode_fn, "wire_decode");
    }

    #[test]
    fn rejects_incomplete_codec() {
        let err = Policy::parse("[codec.x]\nfile = \"a.rs\"\n").unwrap_err();
        assert!(err.contains("codec.x"));
    }

    #[test]
    fn rejects_unknown_keys() {
        assert!(Policy::parse("[scan]\nbogus = [\"a\"]\n").is_err());
        assert!(Policy::parse("no_equals\n").is_err());
    }

    #[test]
    fn scope_matching_is_prefix_by_component() {
        let scopes = vec!["crates/core".to_string()];
        assert!(in_scope("crates/core/src/kernel.rs", &scopes));
        assert!(in_scope("crates/core", &scopes));
        assert!(!in_scope("crates/core2/src/lib.rs", &scopes));
    }
}
