//! The workspace call graph and the two rules defined over it:
//!
//! * **R6** — transitive hot-path purity. Every function reachable from a
//!   `#[hot_path]` fn is scanned for allocation, panic, and wall-clock
//!   sinks; a hit is reported at the sink's call site with the full
//!   witness path from a hot root (`simulate_location_day →
//!   resolve_susceptible → cands.push → Vec::push`).
//! * **R7** — lock-order discipline. `simlint.toml` declares a total
//!   order over named locks; a lexical guard-liveness walk over each
//!   scoped fn (plus the transitive lock-entry sets of its callees) flags
//!   any acquisition at or above the rank of a guard that is still live.
//!
//! Resolution is name-based and deliberately conservative — precision
//! rules are documented on [`CallGraph::resolve`]. Unresolvable calls
//! fall through to the sink tables, so `scratch.push(x)` is an
//! allocation even though `Vec::push` is not workspace code.

use crate::diag::Finding;
use crate::lexer::TokenKind;
use crate::policy::{in_scope, Policy};
use crate::symbols::{Callee, FnDef};
use crate::SourceFile;
use std::collections::{BTreeMap, VecDeque};

/// `(file index, fn index within that file)`.
pub type FnId = (usize, usize);

/// Method names so generic that cross-file name matching would wire
/// unrelated types together (`.load()` on an atomic is not
/// `Config::load`). These resolve only through an exact owner match.
const COMMON_METHODS: &[&str] = &[
    "add",
    "append",
    "as_mut",
    "as_mut_ptr",
    "as_ptr",
    "as_ref",
    "cast",
    "clear",
    "clone",
    "contains",
    "default",
    "drain",
    "drop",
    "extend",
    "filter",
    "fold",
    "from",
    "get",
    "get_mut",
    "display",
    "insert",
    "into",
    "is_empty",
    "iter",
    "iter_mut",
    "join",
    "len",
    "load",
    "lock",
    "map",
    "max",
    "min",
    "new",
    "next",
    "offset",
    "pop",
    "push",
    "read",
    "recv",
    "remaining",
    "remove",
    "resize",
    "retain",
    "send",
    "store",
    "sub",
    "swap",
    "take",
    "try_lock",
    "try_read",
    "try_write",
    "wrapping_add",
    "wrapping_sub",
    "write",
];

/// Allocation sinks by method name, with the canonical name shown at the
/// end of the witness path.
const ALLOC_METHODS: &[(&str, &str)] = &[
    ("push", "Vec::push"),
    ("push_back", "VecDeque::push_back"),
    ("push_front", "VecDeque::push_front"),
    ("extend", "Extend::extend"),
    ("extend_from_slice", "Vec::extend_from_slice"),
    ("append", "Vec::append"),
    ("insert", "Map::insert"),
    ("reserve", "Vec::reserve"),
    ("reserve_exact", "Vec::reserve_exact"),
    ("resize", "Vec::resize"),
    ("resize_with", "Vec::resize_with"),
    ("to_vec", "[T]::to_vec"),
    ("to_string", "ToString::to_string"),
    ("to_owned", "ToOwned::to_owned"),
    ("collect", "Iterator::collect"),
];

/// Allocation sinks by `Type::fn` qualified form.
const ALLOC_QUALIFIED: &[(&str, &str)] = &[
    ("Vec", "new"),
    ("Vec", "with_capacity"),
    ("VecDeque", "new"),
    ("VecDeque", "with_capacity"),
    ("Box", "new"),
    ("String", "new"),
    ("String", "from"),
    ("String", "with_capacity"),
    ("Arc", "new"),
    ("Rc", "new"),
    ("BTreeMap", "new"),
    ("BTreeSet", "new"),
    ("HashMap", "new"),
    ("HashSet", "new"),
];

const ALLOC_MACROS: &[&str] = &["vec", "format"];

const PANIC_METHODS: &[&str] = &["unwrap", "expect"];

const PANIC_MACROS: &[&str] = &[
    "panic",
    "unreachable",
    "todo",
    "unimplemented",
    "assert",
    "assert_eq",
    "assert_ne",
];

/// Wall-clock sinks (`debug_assert*` is excluded from the panic set: it
/// compiles out of the release builds the hot-path contract covers).
const CLOCK_QUALIFIED: &[(&str, &str)] = &[("Instant", "now"), ("SystemTime", "now")];

/// What a sink is, for the diagnostic text.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum SinkKind {
    Alloc,
    Panic,
    Clock,
}

impl SinkKind {
    fn describe(self) -> &'static str {
        match self {
            SinkKind::Alloc => "allocation",
            SinkKind::Panic => "a panic path",
            SinkKind::Clock => "a wall-clock read",
        }
    }
}

/// Classify an unresolved callee against the sink tables.
fn sink_of(callee: &Callee) -> Option<(SinkKind, String)> {
    match callee {
        Callee::Method { name, .. } | Callee::SelfMethod(name) => {
            if let Some((_, canon)) = ALLOC_METHODS.iter().find(|(n, _)| n == name) {
                return Some((SinkKind::Alloc, (*canon).to_string()));
            }
            if PANIC_METHODS.contains(&name.as_str()) {
                return Some((SinkKind::Panic, format!(".{name}()")));
            }
            None
        }
        Callee::Qualified { ty, name } => {
            if ALLOC_QUALIFIED.iter().any(|(t, n)| t == ty && n == name) {
                return Some((SinkKind::Alloc, format!("{ty}::{name}")));
            }
            if CLOCK_QUALIFIED.iter().any(|(t, n)| t == ty && n == name) {
                return Some((SinkKind::Clock, format!("{ty}::{name}")));
            }
            None
        }
        Callee::Macro(name) => {
            if ALLOC_MACROS.contains(&name.as_str()) {
                return Some((SinkKind::Alloc, format!("{name}!")));
            }
            if PANIC_MACROS.contains(&name.as_str()) {
                return Some((SinkKind::Panic, format!("{name}!")));
            }
            None
        }
        Callee::Plain(_) => None,
    }
}

/// The workspace symbol table plus resolved call edges.
pub struct CallGraph {
    /// Free fns by name (non-test only).
    free_by_name: BTreeMap<String, Vec<FnId>>,
    /// Free fns by (file, name), test fns included.
    free_same_file: BTreeMap<(usize, String), Vec<FnId>>,
    /// Methods by name (non-test only).
    methods_by_name: BTreeMap<String, Vec<FnId>>,
    /// Methods by (owner, name).
    methods_by_owner: BTreeMap<(String, String), Vec<FnId>>,
}

impl CallGraph {
    pub fn build(files: &[SourceFile]) -> CallGraph {
        let mut g = CallGraph {
            free_by_name: BTreeMap::new(),
            free_same_file: BTreeMap::new(),
            methods_by_name: BTreeMap::new(),
            methods_by_owner: BTreeMap::new(),
        };
        for (fi, file) in files.iter().enumerate() {
            for (di, def) in file.syms.fns.iter().enumerate() {
                let id = (fi, di);
                match &def.owner {
                    None => {
                        g.free_same_file
                            .entry((fi, def.name.clone()))
                            .or_default()
                            .push(id);
                        if !def.in_test_mod {
                            g.free_by_name.entry(def.name.clone()).or_default().push(id);
                        }
                    }
                    Some(owner) => {
                        g.methods_by_owner
                            .entry((owner.clone(), def.name.clone()))
                            .or_default()
                            .push(id);
                        if !def.in_test_mod {
                            g.methods_by_name
                                .entry(def.name.clone())
                                .or_default()
                                .push(id);
                        }
                    }
                }
            }
        }
        g
    }

    /// Resolve a call site to workspace definitions. Empty = external
    /// (std, a dependency, or too ambiguous to wire safely):
    ///
    /// * plain calls: same-file free fns, else all same-name free fns;
    /// * `self.m(…)`: the enclosing impl type's `m`, else the unique-owner
    ///   rule below;
    /// * `recv.m(…)`: unresolved if `m` is a [`COMMON_METHODS`] name;
    ///   otherwise resolved iff every workspace method named `m` belongs
    ///   to a single owner type;
    /// * `Type::m(…)` / `Self::m(…)`: exact owner match.
    pub fn resolve(&self, caller_file: usize, caller: &FnDef, callee: &Callee) -> Vec<FnId> {
        match callee {
            Callee::Plain(name) => {
                if let Some(v) = self.free_same_file.get(&(caller_file, name.clone())) {
                    return v.clone();
                }
                self.free_by_name.get(name).cloned().unwrap_or_default()
            }
            Callee::SelfMethod(name) => {
                if let Some(owner) = &caller.owner {
                    if let Some(v) = self.methods_by_owner.get(&(owner.clone(), name.clone())) {
                        return v.clone();
                    }
                }
                self.unique_owner(name)
            }
            Callee::Method { name, .. } => {
                if COMMON_METHODS.contains(&name.as_str()) {
                    return Vec::new();
                }
                self.unique_owner(name)
            }
            Callee::Qualified { ty, name } => {
                let owner = if ty == "Self" {
                    match &caller.owner {
                        Some(o) => o.clone(),
                        None => return Vec::new(),
                    }
                } else {
                    ty.clone()
                };
                self.methods_by_owner
                    .get(&(owner, name.clone()))
                    .cloned()
                    .unwrap_or_default()
            }
            Callee::Macro(_) => Vec::new(),
        }
    }

    /// All workspace methods named `name`, iff they agree on one owner.
    fn unique_owner(&self, name: &str) -> Vec<FnId> {
        let Some(defs) = self.methods_by_name.get(name) else {
            return Vec::new();
        };
        defs.clone()
    }
}

fn def(files: &[SourceFile], id: FnId) -> &FnDef {
    &files[id.0].syms.fns[id.1]
}

/// Display form of a fn for witness paths: `Owner::name` for methods,
/// `filestem::name` for free fns.
fn fn_display(files: &[SourceFile], id: FnId) -> String {
    let d = def(files, id);
    match &d.owner {
        Some(o) => format!("{o}::{}", d.name),
        None => {
            let stem = files[id.0]
                .rel
                .rsplit('/')
                .next()
                .and_then(|f| f.strip_suffix(".rs"))
                .unwrap_or("?");
            format!("{stem}::{}", d.name)
        }
    }
}

/// Guard the `unique_owner` rule: resolution is taken only when all defs
/// share one owner type.
fn owners_agree(files: &[SourceFile], ids: &[FnId]) -> bool {
    let mut owners = ids.iter().map(|&id| def(files, id).owner.as_deref());
    let first = owners.next().flatten();
    first.is_some() && owners.all(|o| o == first)
}

/// R6: transitive hot-path purity.
pub fn rule_r6(files: &[SourceFile], graph: &CallGraph) -> Vec<Finding> {
    // BFS the hot closure, remembering one witness parent per fn.
    let mut parent: BTreeMap<FnId, Option<FnId>> = BTreeMap::new();
    let mut queue: VecDeque<FnId> = VecDeque::new();
    for (fi, file) in files.iter().enumerate() {
        for (di, d) in file.syms.fns.iter().enumerate() {
            if d.is_hot && !d.in_test_mod {
                parent.insert((fi, di), None);
                queue.push_back((fi, di));
            }
        }
    }
    let mut findings = Vec::new();
    while let Some(id) = queue.pop_front() {
        let d = def(files, id);
        for call in &d.calls {
            let resolved = filtered_resolution(files, graph, id.0, d, &call.callee);
            if resolved.is_empty() {
                if let Some((kind, canon)) = sink_of(&call.callee) {
                    let mut path = witness_path(files, &parent, id);
                    let display = call.callee.display();
                    if display != canon {
                        path.push(display);
                    }
                    path.push(canon.clone());
                    findings.push(Finding {
                        rule: "R6".into(),
                        file: files[id.0].rel.clone(),
                        line: call.line,
                        col: call.col,
                        message: format!(
                            "hot path reaches {}: {} — `#[hot_path]` code must not reach \
                             allocation, panics, or the wall clock through any call chain",
                            kind.describe(),
                            path.join(" → "),
                        ),
                        path,
                        waived: None,
                    });
                }
                continue;
            }
            for callee_id in resolved {
                if def(files, callee_id).in_test_mod {
                    continue;
                }
                parent.entry(callee_id).or_insert_with(|| {
                    queue.push_back(callee_id);
                    Some(id)
                });
            }
        }
    }
    findings
}

/// Resolution with the unique-owner agreement check applied (kept out of
/// `CallGraph::resolve` so the lock pass shares the exact same edges).
fn filtered_resolution(
    files: &[SourceFile],
    graph: &CallGraph,
    caller_file: usize,
    caller: &FnDef,
    callee: &Callee,
) -> Vec<FnId> {
    let ids = graph.resolve(caller_file, caller, callee);
    match callee {
        // The unique-owner rule backs these two shapes; demand agreement.
        Callee::Method { .. } => {
            if owners_agree(files, &ids) {
                ids
            } else {
                Vec::new()
            }
        }
        Callee::SelfMethod(_) => {
            if ids.is_empty() || owners_agree(files, &ids) {
                ids
            } else {
                Vec::new()
            }
        }
        _ => ids,
    }
}

/// Reconstruct the hot-root → … → `id` chain from BFS parents.
fn witness_path(
    files: &[SourceFile],
    parent: &BTreeMap<FnId, Option<FnId>>,
    id: FnId,
) -> Vec<String> {
    let mut chain = vec![id];
    let mut cur = id;
    while let Some(Some(p)) = parent.get(&cur) {
        chain.push(*p);
        cur = *p;
    }
    chain.reverse();
    chain.into_iter().map(|f| fn_display(files, f)).collect()
}

/// R7: lock-order discipline.
///
/// `policy.r7_order` ranks lock field names outermost-first. Within each
/// scoped file, a linear walk tracks which guards are live (let-bound
/// guards die at block end or `drop(name)`; temporaries at statement
/// end) and flags any acquisition whose rank is ≤ a live guard's rank —
/// including acquisitions made transitively by a callee.
pub fn rule_r7(files: &[SourceFile], graph: &CallGraph, policy: &Policy) -> Vec<Finding> {
    if policy.r7_order.is_empty() {
        return Vec::new();
    }
    // Transitive lock-entry sets: fn → {rank → witness callee chain}.
    let mut enters: BTreeMap<FnId, BTreeMap<usize, Vec<FnId>>> = BTreeMap::new();
    for (fi, file) in files.iter().enumerate() {
        for (di, d) in file.syms.fns.iter().enumerate() {
            let direct: BTreeMap<usize, Vec<FnId>> = direct_acquisitions(file, d, policy)
                .into_iter()
                .map(|a| (a.rank, Vec::new()))
                .collect();
            enters.insert((fi, di), direct);
        }
    }
    // Fixpoint propagation over resolved call edges.
    loop {
        let mut changed = false;
        for (fi, file) in files.iter().enumerate() {
            for (di, d) in file.syms.fns.iter().enumerate() {
                for call in &d.calls {
                    for callee_id in filtered_resolution(files, graph, fi, d, &call.callee) {
                        let from = enters.get(&callee_id).cloned().unwrap_or_default();
                        let into = enters.entry((fi, di)).or_default();
                        for (rank, chain) in from {
                            into.entry(rank).or_insert_with(|| {
                                changed = true;
                                let mut c = vec![callee_id];
                                c.extend(chain);
                                c
                            });
                        }
                    }
                }
            }
        }
        if !changed {
            break;
        }
    }

    let mut findings = Vec::new();
    for (fi, file) in files.iter().enumerate() {
        if !in_scope(&file.rel, &policy.r7_scope) {
            continue;
        }
        for d in &file.syms.fns {
            if d.in_test_mod {
                continue;
            }
            scan_fn_lock_order(files, graph, policy, fi, d, &enters, &mut findings);
        }
    }
    findings
}

/// One direct lock acquisition inside a fn body.
struct Acquisition {
    rank: usize,
    /// Token index of the acquisition (the method or helper name).
    tok: usize,
}

/// Direct acquisitions: `name.lock()` / `.read()` / `.write()` (and
/// `try_` forms) where `name` is a ranked lock, plus guard-returning
/// helper calls (`lock_recover(&self.replies)`) whose argument names one.
fn direct_acquisitions(file: &SourceFile, d: &FnDef, policy: &Policy) -> Vec<Acquisition> {
    const LOCK_METHODS: &[&str] = &["lock", "read", "write", "try_lock", "try_read", "try_write"];
    let tokens = &file.lexed.tokens;
    let mut out = Vec::new();
    for call in &d.calls {
        match &call.callee {
            Callee::Method { recv, name } if LOCK_METHODS.contains(&name.as_str()) => {
                if let Some(rank) = policy.r7_order.iter().position(|l| l == recv) {
                    out.push(Acquisition {
                        rank,
                        tok: call.tok,
                    });
                }
            }
            Callee::Plain(name) if policy.r7_helpers.contains(name) => {
                // Find the first ranked-lock ident among the arguments.
                let open = (call.tok + 1..tokens.len())
                    .find(|&k| tokens[k].kind.is_punct('('))
                    .unwrap_or(call.tok + 1);
                if let Some(close) = crate::rules::matching_close(tokens, open, '(', ')') {
                    let rank = tokens[open..close].iter().find_map(|t| {
                        t.kind
                            .ident()
                            .and_then(|id| policy.r7_order.iter().position(|l| l == id))
                    });
                    if let Some(rank) = rank {
                        out.push(Acquisition {
                            rank,
                            tok: call.tok,
                        });
                    }
                }
            }
            _ => {}
        }
    }
    out
}

/// A guard that is currently live during the lexical walk.
struct LiveGuard {
    rank: usize,
    /// Lock name, for diagnostics.
    lock: String,
    /// The binding ident for `let g = …` guards (killed by `drop(g)`).
    ident: Option<String>,
    /// Brace depth at the binding; the guard dies when depth drops below.
    depth: usize,
    /// Statement-temporary: additionally dies at the next `;` at `depth`.
    stmt: bool,
    line: u32,
}

fn scan_fn_lock_order(
    files: &[SourceFile],
    graph: &CallGraph,
    policy: &Policy,
    fi: usize,
    d: &FnDef,
    enters: &BTreeMap<FnId, BTreeMap<usize, Vec<FnId>>>,
    findings: &mut Vec<Finding>,
) {
    let file = &files[fi];
    let tokens = &file.lexed.tokens;
    let acquisitions: BTreeMap<usize, usize> = direct_acquisitions(file, d, policy)
        .into_iter()
        .map(|a| (a.tok, a.rank))
        .collect();
    let calls_by_tok: BTreeMap<usize, &Callee> =
        d.calls.iter().map(|c| (c.tok, &c.callee)).collect();

    let mut live: Vec<LiveGuard> = Vec::new();
    let mut depth = 0usize;
    // Pending `let` binding name, cleared at `;`.
    let mut pending_let: Option<Option<String>> = None;

    let (open, close) = d.body;
    let mut i = open;
    while i <= close {
        let t = &tokens[i];
        match &t.kind {
            TokenKind::Punct('{') => depth += 1,
            TokenKind::Punct('}') => {
                depth = depth.saturating_sub(1);
                live.retain(|g| g.depth <= depth);
            }
            TokenKind::Punct(';') => {
                live.retain(|g| !(g.stmt && g.depth == depth));
                pending_let = None;
            }
            TokenKind::Ident(id) if id == "let" => {
                let mut k = i + 1;
                if tokens.get(k).is_some_and(|t| t.kind.is_ident("mut")) {
                    k += 1;
                }
                let name = tokens.get(k).and_then(|t| t.kind.ident()).and_then(|n| {
                    // A plain `let name =` binding; anything else (a
                    // pattern) is tracked anonymously.
                    let next_is_eq = tokens
                        .get(k + 1)
                        .is_some_and(|t| t.kind.is_punct('=') || t.kind.is_punct(':'));
                    next_is_eq.then(|| n.to_string())
                });
                pending_let = Some(name);
            }
            // `drop(name)` releases a let-bound guard early.
            TokenKind::Ident(id)
                if id == "drop" && tokens.get(i + 1).is_some_and(|t| t.kind.is_punct('(')) =>
            {
                if let Some(name) = tokens.get(i + 2).and_then(|t| t.kind.ident()) {
                    live.retain(|g| g.ident.as_deref() != Some(name));
                }
            }
            _ => {}
        }
        if let Some(&rank) = acquisitions.get(&i) {
            let lock = policy.r7_order[rank].clone();
            check_acquisition(
                &lock, rank, t.line, t.col, &live, &file.rel, policy, None, findings,
            );
            live.push(LiveGuard {
                rank,
                lock,
                ident: pending_let.clone().flatten(),
                depth,
                stmt: pending_let.is_none(),
                line: t.line,
            });
        } else if let Some(callee) = calls_by_tok.get(&i) {
            let resolved = filtered_resolution(files, graph, fi, d, callee);
            if !resolved.is_empty() {
                let callee_id = resolved[0];
                let callee_def = def(files, callee_id);
                let entered = enters.get(&callee_id).cloned().unwrap_or_default();
                for (rank, chain) in &entered {
                    let mut via = vec![fn_display(files, callee_id)];
                    via.extend(chain.iter().map(|&c| fn_display(files, c)));
                    check_acquisition(
                        &policy.r7_order[*rank],
                        *rank,
                        t.line,
                        t.col,
                        &live,
                        &file.rel,
                        policy,
                        Some(&via),
                        findings,
                    );
                }
                if callee_def.returns_guard {
                    for (rank, _) in entered {
                        live.push(LiveGuard {
                            rank,
                            lock: policy.r7_order[rank].clone(),
                            ident: pending_let.clone().flatten(),
                            depth,
                            stmt: pending_let.is_none(),
                            line: t.line,
                        });
                    }
                }
            }
        }
        i += 1;
    }
}

#[allow(clippy::too_many_arguments)]
fn check_acquisition(
    lock: &str,
    rank: usize,
    line: u32,
    col: u32,
    live: &[LiveGuard],
    rel: &str,
    policy: &Policy,
    via: Option<&[String]>,
    findings: &mut Vec<Finding>,
) {
    let Some(held) = live
        .iter()
        .filter(|g| g.rank >= rank)
        .max_by_key(|g| g.rank)
    else {
        return;
    };
    let via_text = via
        .map(|v| format!(" via `{}`", v.join(" → ")))
        .unwrap_or_default();
    let message = if held.rank == rank {
        format!(
            "lock `{lock}` re-acquired{via_text} while its own guard (line {}) is still live — \
             self-deadlock on std::sync::Mutex",
            held.line
        )
    } else {
        format!(
            "lock `{lock}` (rank {rank}) acquired{via_text} while `{}` (rank {}, line {}) is \
             held — declared order is {}",
            held.lock,
            held.rank,
            held.line,
            policy.r7_order.join(" → "),
        )
    };
    let mut path: Vec<String> = via.map(|v| v.to_vec()).unwrap_or_default();
    path.push(lock.to_string());
    findings.push(Finding {
        rule: "R7".into(),
        file: rel.into(),
        line,
        col,
        message,
        path,
        waived: None,
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;
    use crate::symbols::extract;

    fn file(rel: &str, src: &str) -> SourceFile {
        let lexed = lex(src);
        let syms = extract(&lexed);
        SourceFile {
            rel: rel.to_string(),
            lexed,
            syms,
        }
    }

    fn lock_policy() -> Policy {
        Policy {
            r7_scope: vec!["src".into()],
            r7_order: vec!["state".into(), "topic_state".into()],
            r7_helpers: vec!["lock_helper".into()],
            ..Policy::default()
        }
    }

    #[test]
    fn r6_reports_a_two_deep_witness_path() {
        let files = vec![file(
            "src/kernel.rs",
            "#[hot_path]\nfn step(s: &mut Scratch) { mid(s); }\n\
             fn mid(s: &mut Scratch) { leaf(s); }\n\
             fn leaf(s: &mut Scratch) { s.buf.push(1); }\n",
        )];
        let graph = CallGraph::build(&files);
        let findings = rule_r6(&files, &graph);
        assert_eq!(findings.len(), 1, "{findings:?}");
        let f = &findings[0];
        assert_eq!(f.rule, "R6");
        assert_eq!(
            f.path,
            vec![
                "kernel::step",
                "kernel::mid",
                "kernel::leaf",
                "buf.push",
                "Vec::push"
            ]
        );
        assert!(f
            .message
            .contains("kernel::step → kernel::mid → kernel::leaf"));
    }

    #[test]
    fn r6_ignores_cold_fns_and_survives_recursion() {
        let files = vec![file(
            "src/a.rs",
            "fn cold() { Vec::new(); }\n\
             #[hot_path]\nfn hot(n: u32) { if n > 0 { hot(n - 1); } helper(); }\n\
             fn helper() { work(); }\nfn work() {}\n",
        )];
        let graph = CallGraph::build(&files);
        assert!(rule_r6(&files, &graph).is_empty());
    }

    #[test]
    fn r6_sees_panic_and_clock_sinks() {
        let files = vec![file(
            "src/a.rs",
            "#[hot_path]\nfn hot(x: Option<u32>) { tick(); x.unwrap(); }\n\
             fn tick() { let t = Instant::now(); }\n",
        )];
        let graph = CallGraph::build(&files);
        let findings = rule_r6(&files, &graph);
        assert_eq!(findings.len(), 2, "{findings:?}");
        assert!(findings.iter().any(|f| f.message.contains("wall-clock")));
        assert!(findings.iter().any(|f| f.message.contains("panic")));
    }

    #[test]
    fn r7_flags_out_of_order_nesting_and_allows_declared_order() {
        let src = "\
fn bad(a: &L, b: &L) {\n\
    let g = topic_state.lock();\n\
    let h = state.lock();\n\
}\n\
fn good(a: &L, b: &L) {\n\
    let g = state.lock();\n\
    let h = topic_state.lock();\n\
}\n\
fn dropped(a: &L) {\n\
    let g = topic_state.lock();\n\
    drop(g);\n\
    let h = state.lock();\n\
}\n";
        let files = vec![file("src/m.rs", src)];
        let graph = CallGraph::build(&files);
        let findings = rule_r7(&files, &graph, &lock_policy());
        assert_eq!(findings.len(), 1, "{findings:?}");
        assert_eq!(findings[0].line, 3);
        assert!(findings[0].message.contains("declared order"));
    }

    #[test]
    fn r7_tracks_transitive_acquisition_through_helpers() {
        let src = "\
fn publish_under_lock() {\n\
    let g = topic_state.lock();\n\
    helper_locks_state();\n\
}\n\
fn helper_locks_state() {\n\
    let s = lock_helper(&state);\n\
}\n";
        let files = vec![file("src/m.rs", src)];
        let graph = CallGraph::build(&files);
        let findings = rule_r7(&files, &graph, &lock_policy());
        assert_eq!(findings.len(), 1, "{findings:?}");
        assert!(findings[0].message.contains("via"), "{findings:?}");
        assert!(findings[0].path.contains(&"state".to_string()));
    }

    #[test]
    fn r7_stmt_temporaries_die_at_statement_end() {
        let src = "\
fn ok() {\n\
    topic_state.lock().touch();\n\
    let g = state.lock();\n\
}\n";
        let files = vec![file("src/m.rs", src)];
        let graph = CallGraph::build(&files);
        assert!(rule_r7(&files, &graph, &lock_policy()).is_empty());
    }

    #[test]
    fn r7_self_relock_is_a_finding() {
        let src = "fn twice() { let a = state.lock(); let b = state.lock(); }";
        let files = vec![file("src/m.rs", src)];
        let graph = CallGraph::build(&files);
        let findings = rule_r7(&files, &graph, &lock_policy());
        assert_eq!(findings.len(), 1);
        assert!(findings[0].message.contains("self-deadlock"));
    }
}
