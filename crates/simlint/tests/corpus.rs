//! Fixture-corpus integration tests: one positive and one negative case
//! per rule (R1–R3, R5 per-file; R6–R8 call-graph and audit rules),
//! waiver placement including W1 stale-waiver detection, JSON
//! round-trip, the CLI exit-code contract, and — the wall itself — a
//! clean run over the real workspace.

use simlint::diag::{from_json, to_json, Finding};
use simlint::{load_policy, run_check, unwaived_count};
use std::path::{Path, PathBuf};

fn corpus_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures/corpus")
}

fn repo_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("../..")
}

fn corpus_findings() -> Vec<Finding> {
    let root = corpus_root();
    let policy = load_policy(&root).expect("corpus policy parses");
    run_check(&root, &policy).expect("corpus scan succeeds")
}

fn in_file<'a>(findings: &'a [Finding], rule: &str, file: &str) -> Vec<&'a Finding> {
    findings
        .iter()
        .filter(|f| f.rule == rule && f.file == file)
        .collect()
}

#[test]
fn r1_flags_default_hashers_in_scope_only() {
    let all = corpus_findings();
    let pos = in_file(&all, "R1", "src/det/r1_pos.rs");
    assert_eq!(pos.len(), 2, "{pos:?}");
    assert!(pos.iter().any(|f| f.message.contains("HashMap")));
    assert!(pos.iter().any(|f| f.message.contains("HashSet")));
    assert!(in_file(&all, "R1", "src/det/r1_neg.rs").is_empty());
    assert!(
        in_file(&all, "R1", "src/outside/r1_out_of_scope.rs").is_empty(),
        "R1 must respect its scope"
    );
}

#[test]
fn r2_flags_wall_clock_outside_allowed_paths() {
    let all = corpus_findings();
    let pos = in_file(&all, "R2", "src/r2_pos.rs");
    // Instant::now once; the SystemTime *type* in the signature and the
    // SystemTime::now call each count.
    assert_eq!(pos.len(), 3, "{pos:?}");
    assert!(pos.iter().all(|f| f.waived.is_none()));
    assert!(in_file(&all, "R2", "src/bench/r2_neg.rs").is_empty());
}

#[test]
fn r3_flags_panic_paths_in_transport_scope_only() {
    let all = corpus_findings();
    let pos = in_file(&all, "R3", "src/net/r3_pos.rs");
    // buf[0], .unwrap(), panic!, unreachable!
    assert_eq!(pos.len(), 4, "{pos:?}");
    assert!(pos.iter().any(|f| f.message.contains("indexing")));
    assert!(pos.iter().any(|f| f.message.contains("unwrap")));
    assert!(pos.iter().any(|f| f.message.contains("panic!")));
    assert!(pos.iter().any(|f| f.message.contains("unreachable!")));
    assert!(
        in_file(&all, "R3", "src/net/r3_neg.rs").is_empty(),
        "checked access, range slices and #[cfg(test)] bodies are allowed"
    );
}

#[test]
fn r3_covers_the_shm_transport_scope() {
    let all = corpus_findings();
    let pos = in_file(&all, "R3", "src/shm/r3_pos.rs");
    // .expect() (waived — mmap setup), hdr[0], panic!, .unwrap()
    assert_eq!(pos.len(), 4, "{pos:?}");
    let waived: Vec<_> = pos.iter().filter(|f| f.waived.is_some()).collect();
    assert_eq!(
        waived.len(),
        1,
        "only the mmap setup line is waived: {pos:?}"
    );
    assert!(waived[0].message.contains("expect"));
    assert!(waived[0].waived.as_deref().unwrap().contains("mmap setup"));
    assert!(pos
        .iter()
        .filter(|f| f.waived.is_none())
        .any(|f| f.message.contains("indexing")));
    assert!(
        in_file(&all, "R3", "src/shm/r3_neg.rs").is_empty(),
        "cursor arithmetic with checked slicing is the approved ring idiom"
    );
}

#[test]
fn r6_reports_the_full_witness_path_in_text_and_json() {
    let all = corpus_findings();
    let pos = in_file(&all, "R6", "src/r6_pos.rs");
    assert_eq!(pos.len(), 2, "direct format! + two-deep push: {pos:?}");
    assert!(pos.iter().any(|f| f.message.contains("format!")));
    // The allocation two calls below the hot root is reported with the
    // whole chain, both in the message and in the structured `path`.
    let deep = pos
        .iter()
        .find(|f| f.message.contains("Vec::push"))
        .expect("transitive push finding");
    let chain = "r6_pos::advance → r6_pos::stage → r6_pos::record → events.push → Vec::push";
    assert!(deep.message.contains(chain), "{}", deep.message);
    assert_eq!(
        deep.path,
        [
            "r6_pos::advance",
            "r6_pos::stage",
            "r6_pos::record",
            "events.push",
            "Vec::push"
        ]
    );
    let json = to_json(&all);
    assert!(
        json.contains(
            "\"path\":[\"r6_pos::advance\",\"r6_pos::stage\",\"r6_pos::record\",\
             \"events.push\",\"Vec::push\"]"
        ),
        "witness path must survive into the JSON output:\n{json}"
    );
    assert!(
        in_file(&all, "R6", "src/r6_neg.rs").is_empty(),
        "preallocated hot closures and unreachable cold allocators are clean"
    );
}

#[test]
fn r7_flags_inverted_lock_order_only() {
    let all = corpus_findings();
    let pos = in_file(&all, "R7", "src/locks/r7_pos.rs");
    assert_eq!(pos.len(), 1, "{pos:?}");
    assert!(pos[0].message.contains("`table`"), "{}", pos[0].message);
    assert!(pos[0].message.contains("`slot`"), "{}", pos[0].message);
    assert!(
        pos[0].message.contains("declared order"),
        "{}",
        pos[0].message
    );
    assert!(
        in_file(&all, "R7", "src/locks/r7_neg.rs").is_empty(),
        "declared-order nesting and drop-before-reacquire are clean"
    );
}

#[test]
fn r8_audits_unsafe_placement_and_safety_comments() {
    let all = corpus_findings();
    let outside = in_file(&all, "R8", "src/r8_pos.rs");
    assert_eq!(outside.len(), 1, "{outside:?}");
    assert!(outside[0].message.contains("allow list"));
    let allowed = in_file(&all, "R8", "src/r8_allowed.rs");
    assert_eq!(allowed.len(), 1, "only the uncommented site: {allowed:?}");
    assert!(allowed[0].message.contains("SAFETY"));
    assert!(
        in_file(&all, "R8", "src/shm/r3_pos.rs").is_empty(),
        "allow-listed unsafe with a trailing SAFETY comment is clean"
    );
}

#[test]
fn stale_waivers_surface_as_w1() {
    let all = corpus_findings();
    let w1 = in_file(&all, "W1", "src/w1_stale.rs");
    assert_eq!(w1.len(), 1, "{w1:?}");
    assert_eq!(w1[0].line, 4, "W1 anchors at the waiver comment");
    assert!(w1[0].message.contains("suppresses no finding"));
    assert!(w1[0].waived.is_none(), "W1 itself can never be waived");
    // Waivers that do suppress something must not produce W1 noise.
    assert!(in_file(&all, "W1", "src/waivers.rs").is_empty());
    assert!(in_file(&all, "W1", "src/shm/r3_pos.rs").is_empty());
}

#[test]
fn r5_flags_codec_variant_skew_only() {
    let all = corpus_findings();
    let pos = in_file(&all, "R5", "src/codec_bad.rs");
    assert_eq!(pos.len(), 1, "{pos:?}");
    assert!(pos[0].message.contains("Msg::Heartbeat"));
    assert!(pos[0].message.contains("decode_msg"));
    assert!(in_file(&all, "R5", "src/codec_good.rs").is_empty());
}

#[test]
fn excluded_paths_are_never_scanned() {
    let all = corpus_findings();
    assert!(
        all.iter().all(|f| f.file != "src/skipped/excluded.rs"),
        "scan exclude must hide the file entirely: {all:?}"
    );
}

#[test]
fn waiver_placement_trailing_standalone_and_w0() {
    let all = corpus_findings();
    let r2 = in_file(&all, "R2", "src/waivers.rs");
    assert_eq!(r2.len(), 3, "{r2:?}");
    let waived: Vec<_> = r2.iter().filter(|f| f.waived.is_some()).collect();
    assert_eq!(waived.len(), 2, "trailing + standalone: {r2:?}");
    assert!(waived
        .iter()
        .any(|f| f.waived.as_deref().unwrap().contains("watchdog arming")));
    assert!(waived
        .iter()
        .any(|f| f.waived.as_deref().unwrap().contains("next line")));
    // The malformed waiver (no justification) is a W0 and does not waive.
    let w0 = in_file(&all, "W0", "src/waivers.rs");
    assert_eq!(w0.len(), 1, "{w0:?}");
    assert!(w0[0].message.contains("justification"));
    assert!(r2.iter().any(|f| f.waived.is_none()));
}

#[test]
fn corpus_fails_the_check_and_json_round_trips() {
    let all = corpus_findings();
    assert!(
        unwaived_count(&all) >= 8,
        "the corpus must fail the check loudly, got {all:?}"
    );
    let json = to_json(&all);
    let back = from_json(&json).expect("emitted JSON parses");
    assert_eq!(back, all, "JSON round-trip must be lossless");
}

/// The wall: the real workspace must be clean, and every waiver on it
/// must carry a justification (enforced structurally by the parser, but
/// pinned here so the contract shows up in the test list).
#[test]
fn workspace_tree_is_clean() {
    let root = repo_root();
    let policy = load_policy(&root).expect("workspace simlint.toml parses");
    let findings = run_check(&root, &policy).expect("workspace scan succeeds");
    let unwaived: Vec<_> = findings.iter().filter(|f| f.waived.is_none()).collect();
    assert!(
        unwaived.is_empty(),
        "unwaived findings in the workspace:\n{}",
        unwaived
            .iter()
            .map(|f| f.render_text())
            .collect::<Vec<_>>()
            .join("\n")
    );
    for f in &findings {
        let just = f.waived.as_deref().unwrap_or_default();
        assert!(
            just.len() >= 10,
            "waiver on {}:{} has a too-thin justification: `{just}`",
            f.file,
            f.line
        );
    }
}

#[test]
fn cli_exit_codes_match_the_contract() {
    let bin = env!("CARGO_BIN_EXE_simlint");
    let corpus = corpus_root();
    let run = |args: &[&str]| {
        std::process::Command::new(bin)
            .args(args)
            .output()
            .expect("simlint binary runs")
    };
    // Corpus: unwaived findings -> exit 1, findings on stdout.
    let out = run(&["--check", "--root", corpus.to_str().unwrap()]);
    assert_eq!(out.status.code(), Some(1));
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("error[R1]"), "{text}");
    assert!(text.contains("error[R5]"), "{text}");
    // Corpus JSON: parses back into the same findings run_check returns.
    let out = run(&[
        "--check",
        "--format",
        "json",
        "--root",
        corpus.to_str().unwrap(),
    ]);
    assert_eq!(out.status.code(), Some(1));
    let parsed = from_json(&String::from_utf8_lossy(&out.stdout)).expect("CLI JSON parses");
    assert_eq!(parsed, corpus_findings());
    // Workspace: clean -> exit 0.
    let repo = repo_root();
    let out = run(&["--check", "--root", repo.to_str().unwrap()]);
    assert_eq!(
        out.status.code(),
        Some(0),
        "workspace must pass: {}",
        String::from_utf8_lossy(&out.stdout)
    );
    // Usage error -> exit 2.
    let out = run(&["--bogus-flag"]);
    assert_eq!(out.status.code(), Some(2));
}
