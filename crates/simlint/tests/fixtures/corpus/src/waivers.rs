// Waiver syntax corpus: one trailing waiver, one standalone waiver, and
// one malformed waiver (missing justification) that must become W0.
fn watchdog_nanos() -> u64 {
    let t0 = std::time::Instant::now(); // simlint: allow(R2) -- fixture: watchdog arming only
    t0.elapsed().as_nanos() as u64
}

fn deadline_nanos() -> u64 {
    // simlint: allow(R2) -- fixture: standalone waiver covers the next line
    let t = std::time::SystemTime::now();
    match t.duration_since(std::time::UNIX_EPOCH) {
        Ok(d) => d.as_nanos() as u64,
        Err(_) => 0,
    }
}

// simlint: allow(R2)
fn unjustified_nanos() -> u64 {
    std::time::Instant::now().elapsed().as_nanos() as u64
}
