// R2 negative by scope: benches are allowed to time real work.
fn measure() -> u128 {
    let t0 = std::time::Instant::now();
    t0.elapsed().as_nanos()
}
