// R7 positive: `table` is declared outermost, so acquiring it while a
// `slot` guard is still live inverts the hierarchy.
use std::sync::Mutex;

pub struct Locks {
    table: Mutex<u64>,
    slot: Mutex<u64>,
}

impl Locks {
    fn inverted(&self) -> u64 {
        let s = self.slot.lock().unwrap();
        let t = self.table.lock().unwrap();
        *s + *t
    }
}
