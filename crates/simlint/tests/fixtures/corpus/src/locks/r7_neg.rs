// R7 negative: acquisitions in declared order, and drop-before-
// reacquire, are both clean.
use std::sync::Mutex;

pub struct Locks {
    table: Mutex<u64>,
    slot: Mutex<u64>,
}

impl Locks {
    fn ordered(&self) -> u64 {
        let t = self.table.lock().unwrap();
        let s = self.slot.lock().unwrap();
        *t + *s
    }

    fn sequential(&self) -> u64 {
        let s = self.slot.lock().unwrap();
        let held = *s;
        drop(s);
        let t = self.table.lock().unwrap();
        held + *t
    }
}
