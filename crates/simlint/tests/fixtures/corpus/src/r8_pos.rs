// R8 positive: `unsafe` in a file outside the [r8] allow list is always
// a finding — a SAFETY comment cannot move a file into the list.
fn peek(xs: &[u8]) -> u8 {
    // SAFETY: this comment does not make the file policy-allowed.
    unsafe { *xs.as_ptr() }
}
