// R8 allow-listed file: each `unsafe` site still needs an adjacent
// `// SAFETY:` justification; the second one below is missing it.
fn first(xs: &[u8]) -> u8 {
    // SAFETY: fixture — the caller guarantees xs is non-empty.
    unsafe { *xs.as_ptr() }
}

fn second(xs: &[u8]) -> u8 {
    unsafe { *xs.as_ptr().add(1) }
}
