// R3 positive: panic paths in a shared-memory-transport-scoped file. The
// waived `.expect()` models the one legitimate shape: an mmap setup call
// whose failure is a boot-time environment error, not a peer failure.
fn map_region(fd: i32, len: usize) -> *mut u8 {
    let base = mmap(fd, len).expect("mmap shm region"); // simlint: allow(R3) -- mmap setup: boot-time environment error, no peer involved
    let hdr = header(base, len);
    let magic = hdr[0];
    if magic != 0x45 {
        panic!("bad shm magic");
    }
    base
}

fn push_frame(ring: &mut [u8], frame: &[u8]) -> usize {
    let cap: usize = capacity(ring).unwrap();
    cap - frame.len()
}

fn mmap(_fd: i32, _len: usize) -> Option<*mut u8> {
    None
}

fn header(base: *mut u8, _len: usize) -> &'static [u8] {
    unsafe { std::slice::from_raw_parts(base, 8) } // SAFETY: fixture — the header is always 8 mapped bytes
}

fn capacity(r: &[u8]) -> Option<usize> {
    Some(r.len())
}
