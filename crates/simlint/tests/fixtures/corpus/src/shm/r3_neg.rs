// R3 negative: a ring producer written the way the real shm transport is —
// checked slicing, errors as values, cursor arithmetic instead of literal
// indexing — raises nothing in shm scope.
fn try_push(ring: &mut [u8], head: u64, tail: u64, frame: &[u8]) -> Result<u64, String> {
    let cap = ring.len() as u64;
    if tail.wrapping_sub(head) + frame.len() as u64 > cap {
        return Err("ring full".into());
    }
    let at = (tail % cap) as usize;
    let room = ring.len() - at;
    let take = room.min(frame.len());
    ring.get_mut(at..at + take)
        .ok_or("slice out of range")?
        .copy_from_slice(&frame[..take]);
    Ok(tail + frame.len() as u64)
}

#[cfg(test)]
mod tests {
    #[test]
    fn tests_may_panic() {
        let mut ring = vec![0u8; 16];
        assert_eq!(super::try_push(&mut ring, 0, 0, &[7]).unwrap(), 1);
        assert_eq!(ring[0], 7);
    }
}
