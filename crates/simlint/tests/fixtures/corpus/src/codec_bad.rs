// R5 positive: `Heartbeat` was added to the enum and to the encoder, but
// the decoder was never taught about it — the silent wire-format skew the
// rule exists to catch.
pub enum Msg {
    Ping,
    Data(u32),
    Heartbeat,
}

pub fn encode_msg(m: &Msg, out: &mut Vec<u8>) {
    match m {
        Msg::Ping => out.push(0),
        Msg::Data(x) => {
            out.push(1);
            out.extend_from_slice(&x.to_le_bytes());
        }
        Msg::Heartbeat => out.push(2),
    }
}

pub fn decode_msg(b: &[u8]) -> Option<Msg> {
    match b.first()? {
        0 => Some(Msg::Ping),
        1 => Some(Msg::Data(u32::from_le_bytes(b.get(1..5)?.try_into().ok()?))),
        _ => None,
    }
}
