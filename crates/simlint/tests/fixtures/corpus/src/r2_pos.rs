// R2 positive: wall-clock reads outside any allowed scope.
fn tick() -> std::time::Instant {
    std::time::Instant::now()
}

fn stamp() -> std::time::SystemTime {
    std::time::SystemTime::now()
}
