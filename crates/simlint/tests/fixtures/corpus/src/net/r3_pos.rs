// R3 positive: panic paths in a transport-scoped file.
fn read_frame(buf: &[u8]) -> u8 {
    let kind = buf[0];
    let n: u32 = parse(buf).unwrap();
    if n > 1000 {
        panic!("oversized frame");
    }
    match kind {
        0 => kind,
        _ => unreachable!(),
    }
}

fn parse(b: &[u8]) -> Option<u32> {
    b.first().map(|&x| x as u32)
}
