// R3 negative: checked access, range slices, and panics confined to a
// `#[cfg(test)]` module are all fine in transport scope.
fn read_frame(buf: &[u8]) -> Option<u8> {
    let kind = *buf.first()?;
    let _header = buf.get(0..4)?;
    let _rest = &buf[4..];
    Some(kind)
}

#[cfg(test)]
mod tests {
    #[test]
    fn tests_may_panic() {
        let v = [1u8];
        assert_eq!(v[0], super::read_frame(&[1, 0, 0, 0, 0]).unwrap());
    }
}
