// R1 negative by scope: HashMap outside `src/det` is not flagged.
use std::collections::HashMap;

fn cache() -> HashMap<u32, u32> {
    HashMap::new()
}
