// R4 negative: the hot function reuses scratch buffers; the allocating
// function is not annotated, so it is out of the rule's reach.
#[simlint_macros::hot_path]
fn hot(xs: &[u32], scratch: &mut Vec<u32>) -> u64 {
    scratch.clear();
    scratch.extend_from_slice(xs);
    scratch.iter().map(|&x| x as u64).sum()
}

fn cold() -> Vec<u32> {
    let v = Vec::with_capacity(8);
    v
}
