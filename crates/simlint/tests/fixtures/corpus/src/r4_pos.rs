// R4 positive: allocation inside a `#[hot_path]` function.
#[simlint_macros::hot_path]
fn hot(xs: &[u32]) -> u64 {
    let copy = xs.to_vec();
    let label = format!("{} items", copy.len());
    label.len() as u64
}
