// Excluded by [scan].exclude: nothing in here may ever be reported.
use std::collections::HashMap;

fn never_scanned() -> std::time::Instant {
    let _m: HashMap<u8, u8> = HashMap::new();
    std::time::Instant::now()
}
