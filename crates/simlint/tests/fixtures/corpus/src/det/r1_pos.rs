// R1 positive: default-hasher collections inside the determinism scope.
use std::collections::HashMap;

fn tally(xs: &[u32]) -> usize {
    let mut seen = std::collections::HashSet::new();
    for &x in xs {
        seen.insert(x);
    }
    seen.len()
}
