// R1 negative: ordered collections, plus the banned names appearing only
// in comments and string literals (the lexer must not see those).
// A HashMap would be wrong here.
use std::collections::BTreeMap;

fn label() -> &'static str {
    "prefer BTreeMap over HashMap; HashSet is banned too"
}

fn tally(xs: &[u32]) -> BTreeMap<u32, u32> {
    let mut m = BTreeMap::new();
    for &x in xs {
        *m.entry(x).or_insert(0) += 1;
    }
    m
}
