// R6 positive: one direct sink (`format!`) and one allocation the hot
// function only reaches two calls deep — the transitive walk must carry
// the full witness path to the `Vec::push` at the bottom.
#[simlint_macros::hot_path]
fn advance(events: &mut Vec<u64>, now: u64) -> usize {
    let tag = format!("tick {now}");
    stage(events, now + tag.len() as u64);
    events.len()
}

fn stage(events: &mut Vec<u64>, now: u64) {
    record(events, now)
}

fn record(events: &mut Vec<u64>, now: u64) {
    events.push(now);
}
