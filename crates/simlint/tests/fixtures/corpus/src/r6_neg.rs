// R6 negative: the hot closure only touches preallocated state, and the
// allocating helper is unreachable from any `#[hot_path]` root.
#[simlint_macros::hot_path]
fn advance(counts: &mut [u64], idx: usize) -> u64 {
    bump(counts, idx);
    total(counts)
}

fn bump(counts: &mut [u64], idx: usize) {
    if let Some(c) = counts.get_mut(idx) {
        *c += 1;
    }
}

fn total(counts: &[u64]) -> u64 {
    counts.iter().sum()
}

fn cold_report(counts: &[u64]) -> String {
    format!("{} buckets", counts.len())
}
