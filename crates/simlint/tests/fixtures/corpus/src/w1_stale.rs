// W1: a well-formed waiver that suppresses nothing is itself a finding
// (stale waivers rot into false documentation).
fn quiet() -> u64 {
    // simlint: allow(R2) -- fixture: stale — the next line never reads the clock
    41 + 1
}
