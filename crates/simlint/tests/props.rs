//! Property tests: the lexer, the waiver parser and the JSON codec must
//! be total — no input may panic them — and JSON round-trips must be
//! lossless regardless of what the message strings contain.

use proptest::collection;
use proptest::prelude::*;
use simlint::diag::{from_json, to_json, Finding};
use simlint::lexer::lex;
use simlint::rules::parse_waivers;

/// Characters chosen to stress every lexer mode: string/char/raw-string
/// delimiters, comment starters, escapes, newlines, control characters
/// and non-ASCII.
const PALETTE: &[char] = &[
    'a', 'Z', '0', '9', '_', '"', '\'', '/', '*', '#', 'r', 'b', '\\', '\n', '\t', ' ', '(', ')',
    '{', '}', '[', ']', ':', ';', '.', ',', '-', '=', '!', '<', '>', '\u{1}', 'λ',
];

fn arb_string(max: usize) -> impl Strategy<Value = String> {
    collection::vec(0usize..PALETTE.len(), 0..max)
        .prop_map(|ix| ix.into_iter().map(|i| PALETTE[i]).collect())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Arbitrary character soup never panics the lexer, and every token
    /// it produces carries a 1-based position.
    #[test]
    fn lexer_is_total(src in arb_string(200)) {
        let lexed = lex(&src);
        for t in &lexed.tokens {
            prop_assert!(t.line >= 1 && t.col >= 1);
        }
    }

    /// Truncated strings, comments and raw strings — the lexer's
    /// recovery paths — also never panic.
    #[test]
    fn lexer_survives_truncation(prefix in 0usize..6, suffix in arb_string(40)) {
        const OPENERS: &[&str] = &["/*", "//", "r#\"", "b\"", "\"", "'"];
        let _ = lex(&format!("{}{}", OPENERS[prefix], suffix));
    }

    /// Waiver parsing is total over arbitrary comment bodies: every
    /// `simlint:` comment either parses or becomes a W0, never a panic.
    #[test]
    fn waiver_parsing_is_total(body in arb_string(80)) {
        let src = format!("// simlint:{body}\nlet x = 1;\n");
        let (waivers, w0) = parse_waivers("f.rs", &lex(&src));
        // The first line always yields exactly one outcome; embedded
        // newlines in `body` may add more comments after it.
        prop_assert!(waivers.len() + w0.len() >= 1);
    }

    /// JSON round-trip is lossless for any finding contents, including
    /// quotes, backslashes, newlines and control characters in every
    /// string field.
    #[test]
    fn json_round_trip_is_lossless(
        rule in arb_string(4),
        file in arb_string(30),
        line in 1u32..100_000,
        col in 1u32..500,
        message in arb_string(60),
        path in collection::vec(arb_string(20), 0..4),
        has_waiver in 0usize..2,
        waiver_text in arb_string(60),
    ) {
        let findings = vec![Finding {
            rule,
            file,
            line,
            col,
            message,
            path,
            waived: (has_waiver == 1).then_some(waiver_text),
        }];
        let back = from_json(&to_json(&findings)).expect("round-trip parses");
        prop_assert_eq!(back, findings);
    }
}
