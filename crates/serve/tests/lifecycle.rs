//! End-to-end lifecycle tests over localhost TCP: submit → stream →
//! pause → resume → cancel, the cross-engine pause/resume determinism
//! pin, and the no-orphan guarantee after cancel + shutdown.

use episerve::{
    reference_hash, Client, Deadline, EngineSel, Event, EventStream, JobId, JobSpec, JobState,
    PoolConfig, Server, ServerConfig,
};
use std::path::PathBuf;
use std::time::Duration;

fn data_dir(tag: &str) -> PathBuf {
    let d = std::env::temp_dir().join(format!("episerve-it-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&d);
    d
}

fn scenario_dsl() -> String {
    format!(
        "{}\nsim days=14 r=0.0004 seed=11 initial=6\n",
        ptts::dsl::FLU_DSL
    )
}

fn small_spec(name: &str, engine: EngineSel) -> JobSpec {
    let mut spec = JobSpec::dsl(name, &scenario_dsl(), engine);
    spec.hints.pop_size = 700;
    spec.hints.n_pes = 2;
    spec.hints.n_partitions = 4;
    // Pace the run so pause/cancel requests land mid-run even in release
    // builds (a 700-person, 14-day job otherwise finishes in microseconds).
    spec.hints.throttle_ms = 15;
    spec
}

fn start_server(tag: &str, workers: usize) -> (Server, String) {
    let mut cfg = ServerConfig::local(data_dir(tag));
    cfg.pool = PoolConfig { workers };
    let server = Server::start(cfg).expect("server start");
    let addr = server.addr().to_string();
    (server, addr)
}

/// Wait (with timeout) until the server reports `job` in `want`.
fn wait_for_state(client: &mut Client, job: JobId, want: JobState) {
    let deadline = Deadline::after(Duration::from_secs(60));
    loop {
        let (state, _) = client.status(job).expect("status");
        if state == want {
            return;
        }
        assert!(
            !deadline.expired(),
            "job {job} stuck in {} waiting for {}",
            state.as_str(),
            want.as_str()
        );
        std::thread::sleep(Duration::from_millis(20));
    }
}

/// Wait until the job has streamed at least `days` curve points.
fn wait_for_days(client: &mut Client, job: JobId, days: u32) {
    let deadline = Deadline::after(Duration::from_secs(60));
    loop {
        let (state, done) = client.status(job).expect("status");
        if done >= days {
            return;
        }
        assert!(
            !deadline.expired() && !state.is_terminal(),
            "job {job} ({}, {done} days) never reached {days} days",
            state.as_str()
        );
        std::thread::sleep(Duration::from_millis(10));
    }
}

/// The tentpole determinism pin: for every engine, a job that is paused
/// mid-run (checkpointed to disk, re-queued, resumed by a possibly
/// different worker) completes with a curve hash bit-identical to the
/// uninterrupted twin of the same spec.
#[test]
fn pause_resume_hash_is_bit_identical_across_all_engines() {
    let (server, addr) = start_server("xengine", 2);
    let mut client = Client::connect(&addr).expect("connect");

    for engine in [
        EngineSel::Seq,
        EngineSel::Threads,
        EngineSel::Vt,
        EngineSel::Net,
    ] {
        let spec = small_spec(&format!("x-{}", engine.as_str()), engine);
        let direct = reference_hash(&spec).expect("reference twin");

        let job = client.submit(&spec).expect("submit");
        wait_for_days(&mut client, job, 4);
        client.pause(job).expect("pause");
        wait_for_state(&mut client, job, JobState::Paused);
        let (_, paused_days) = client.status(job).expect("status");
        assert!(
            paused_days >= 4 && paused_days < 14,
            "{}: pause landed at day {paused_days}, not mid-run",
            engine.as_str()
        );

        client.resume(job).expect("resume");
        let (_, stream) = client.subscribe(job).expect("subscribe");
        let mut streamed = Vec::new();
        let terminal = stream
            .drain(|d| streamed.push(d.day))
            .expect("terminal event");
        let Event::Completed {
            curve_hash, days, ..
        } = terminal
        else {
            panic!("{}: expected Completed, got {terminal:?}", engine.as_str());
        };
        assert_eq!(
            curve_hash,
            direct,
            "{}: paused-then-resumed hash differs from the uninterrupted twin",
            engine.as_str()
        );
        assert_eq!(streamed.len() as u32, days, "stream replays the full curve");
        assert_eq!(
            streamed,
            (0..days).collect::<Vec<_>>(),
            "{}: curve points arrive gapless and in order",
            engine.as_str()
        );
    }

    server.shutdown();
    server.join();
}

/// Count this process's direct children via procfs (Linux). The serve
/// pool runs everything in-process — even net jobs are standalone — so
/// the child set must stay empty throughout.
fn child_pids() -> Vec<u32> {
    let mut out = Vec::new();
    let tasks = std::path::Path::new("/proc/self/task");
    let Ok(entries) = std::fs::read_dir(tasks) else {
        return out;
    };
    for entry in entries.flatten() {
        let path = entry.path().join("children");
        if let Ok(text) = std::fs::read_to_string(path) {
            out.extend(
                text.split_whitespace()
                    .filter_map(|p| p.parse::<u32>().ok()),
            );
        }
    }
    out
}

/// Cancel-mid-run: the cooperative day-boundary stop ends the job in
/// `Cancelled`, the stream terminates with the terminal state event, the
/// worker pool drains on shutdown, and no orphan processes survive
/// (reusing the net suite's reap discipline: assert on the child table,
/// not on hope).
#[test]
fn cancel_mid_run_leaves_no_orphans() {
    let before = child_pids();
    let (server, addr) = start_server("cancel", 2);
    let mut client = Client::connect(&addr).expect("connect");

    let mut spec = small_spec("victim", EngineSel::Threads);
    spec.days = Some(400); // long enough that cancel always lands mid-run
    let job = client.submit(&spec).expect("submit");
    wait_for_days(&mut client, job, 2);
    client.cancel(job).expect("cancel");
    wait_for_state(&mut client, job, JobState::Cancelled);

    // The subscription replays the partial curve, then the terminal
    // cancel event.
    let (state, stream) = client.subscribe(job).expect("subscribe");
    assert_eq!(state, JobState::Cancelled);
    let mut days = 0u32;
    let terminal = stream.drain(|_| days += 1).expect("terminal");
    assert!(
        matches!(
            terminal,
            Event::State {
                state: JobState::Cancelled,
                ..
            }
        ),
        "expected terminal cancel, got {terminal:?}"
    );
    assert!(days >= 2, "partial curve replays before the terminal event");

    server.shutdown();
    server.join();
    let after = child_pids();
    assert_eq!(
        after, before,
        "cancel + shutdown must not leave orphan processes"
    );
}

/// The full service loop over the wire: mixed-engine concurrent jobs,
/// status, listing, illegal transitions as typed errors, ensemble jobs,
/// and wire-driven shutdown.
#[test]
fn mixed_engine_service_loop() {
    let (server, addr) = start_server("mixed", 3);
    let mut client = Client::connect(&addr).expect("connect");

    // An invalid spec is refused synchronously.
    let mut broken = small_spec("broken", EngineSel::Seq);
    broken.source = episerve::ScenarioSource::Dsl("disease nope\nstate".into());
    let err = client
        .submit(&broken)
        .expect_err("bad spec must be refused");
    assert!(err.to_string().contains("does not parse"), "{err}");

    // Mixed engines, submitted together.
    let jobs: Vec<(JobId, JobSpec)> = [EngineSel::Seq, EngineSel::Threads, EngineSel::Vt]
        .into_iter()
        .enumerate()
        .map(|(i, engine)| {
            let spec = small_spec(&format!("mix-{i}"), engine);
            (client.submit(&spec).expect("submit"), spec)
        })
        .collect();

    // An ensemble sweep rides alongside.
    let mut sweep = small_spec("sweep", EngineSel::Ensemble);
    sweep.source = episerve::ScenarioSource::Sweep {
        dsl: scenario_dsl(),
        r_values: vec![0.0002, 0.0004],
        replicates: 2,
        workers: 2,
    };
    let sweep_job = client.submit(&sweep).expect("submit sweep");

    // Pausing an ensemble job is a typed refusal, not a hang.
    let err = client.pause(sweep_job).expect_err("ensemble pause refused");
    assert!(err.to_string().contains("atomically"), "{err}");

    for (job, spec) in &jobs {
        let (_, stream) = client.subscribe(*job).expect("subscribe");
        let terminal = stream.drain(|_| {}).expect("terminal");
        let Event::Completed { curve_hash, .. } = terminal else {
            panic!("job {job} ended {terminal:?}");
        };
        assert_eq!(curve_hash, reference_hash(spec).expect("twin"));
    }
    let (_, sweep_stream) = client.subscribe(sweep_job).expect("subscribe sweep");
    let terminal = sweep_stream.drain(|_| {}).expect("terminal");
    let Event::Completed {
        curve_hash, days, ..
    } = terminal
    else {
        panic!("sweep ended {terminal:?}");
    };
    assert_ne!(curve_hash, 0, "sweep summary carries the store hash");
    assert_eq!(days, 4, "2 r-values x 2 replicates");

    // Listing shows every job terminal.
    let listed = client.list().expect("list");
    assert_eq!(listed.len(), 4);
    assert!(listed.iter().all(|(_, s)| s.is_terminal()));

    // Unknown job ids are typed errors on every lifecycle verb.
    for result in [
        client.pause(999).err(),
        client.resume(999).err(),
        client.cancel(999).err(),
        client.status(999).err(),
    ] {
        let err = result.expect("unknown job must error");
        assert!(err.to_string().contains("no job 999"), "{err}");
    }

    // Wire-driven shutdown: Bye, then the server drains.
    client.shutdown().expect("shutdown");
    server.join();
}

/// Subscribing to an unknown job errors; subscribing twice streams the
/// same completed curve to both (late subscribers replay).
#[test]
fn late_and_duplicate_subscribers_replay() {
    let (server, addr) = start_server("replay", 2);
    let mut client = Client::connect(&addr).expect("connect");
    assert!(EventStream::open(&addr, 42).is_err(), "unknown job refused");

    let spec = small_spec("replayed", EngineSel::Seq);
    let job = client.submit(&spec).expect("submit");
    wait_for_state(&mut client, job, JobState::Completed);

    let mut hashes = Vec::new();
    for _ in 0..2 {
        let (state, stream) = client.subscribe(job).expect("subscribe");
        assert_eq!(state, JobState::Completed);
        let mut n = 0u32;
        match stream.drain(|_| n += 1).expect("terminal") {
            Event::Completed {
                curve_hash, days, ..
            } => {
                assert_eq!(n, days);
                hashes.push(curve_hash);
            }
            other => panic!("{other:?}"),
        }
    }
    assert_eq!(hashes.first(), hashes.last());

    server.shutdown();
    server.join();
}
