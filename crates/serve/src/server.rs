//! The episerve TCP front-end: accept loop, per-connection request
//! handlers, and subscription streaming.
//!
//! Connection protocol: the first request must be
//! [`Request::Hello`] with the right magic/version; everything after is
//! request/response in lockstep, except [`Request::Subscribe`], which
//! flips the connection into a one-way [`kind::EVENT`] stream that ends
//! at the job's terminal event.
//!
//! Sockets run with a short read timeout so every handler thread
//! re-checks the shutdown flag regularly; [`Server::join`] can therefore
//! always complete: accept loop first, then the worker pool (drained by
//! [`Manager::shutdown`]'s cooperative cancels), then the handlers.

use crate::manager::{EngineCaps, LifecycleError, Manager, SubmitError};
use crate::pool::{self, Pool, PoolConfig};
use crate::protocol::{
    decode_request, encode_event, encode_response, errcode, kind, Request, Response, MAGIC, VERSION,
};
use chare_rt::{read_frame, write_frame};
use std::io;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

/// How long a blocked socket read waits before re-checking shutdown.
const READ_TICK: Duration = Duration::from_millis(200);
/// How long a subscription waits for the next event before re-checking
/// shutdown.
const STREAM_TICK: Duration = Duration::from_millis(100);

/// Server construction parameters.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Bind address (`127.0.0.1:0` picks a free port).
    pub addr: String,
    /// Checkpoint + transition-log directory.
    pub data_dir: PathBuf,
    /// Scheduler queue capacity.
    pub queue_cap: usize,
    /// Per-subscriber event buffer (the lagging-subscriber window).
    pub topic_cap: usize,
    /// Per-engine concurrency caps.
    pub caps: EngineCaps,
    /// Worker threads.
    pub pool: PoolConfig,
}

impl ServerConfig {
    /// Loopback defaults rooted at `data_dir`.
    pub fn local(data_dir: PathBuf) -> ServerConfig {
        ServerConfig {
            addr: "127.0.0.1:0".to_string(),
            data_dir,
            queue_cap: 64,
            topic_cap: 256,
            caps: EngineCaps::default(),
            pool: PoolConfig::default(),
        }
    }
}

struct Shared {
    manager: Arc<Manager>,
    stop: AtomicBool,
    handlers: Mutex<Vec<JoinHandle<()>>>,
}

/// A running episerve instance.
pub struct Server {
    addr: SocketAddr,
    shared: Arc<Shared>,
    accept: Option<JoinHandle<()>>,
    pool: Option<Pool>,
}

impl Server {
    /// Bind, spawn the pool and the accept loop, and return immediately.
    pub fn start(cfg: ServerConfig) -> io::Result<Server> {
        let manager = Manager::new(cfg.data_dir.clone(), cfg.queue_cap, cfg.topic_cap, cfg.caps)?;
        let pool = pool::spawn(Arc::clone(&manager), cfg.pool);
        let listener = TcpListener::bind(&cfg.addr)?;
        let addr = listener.local_addr()?;
        let shared = Arc::new(Shared {
            manager,
            stop: AtomicBool::new(false),
            handlers: Mutex::new(Vec::new()),
        });
        let accept_shared = Arc::clone(&shared);
        let accept = std::thread::Builder::new()
            .name("episerve-accept".to_string())
            .spawn(move || accept_loop(&listener, &accept_shared))?;
        Ok(Server {
            addr,
            shared,
            accept: Some(accept),
            pool: Some(pool),
        })
    }

    /// The bound address (with the resolved port).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Direct handle on the manager (tests inspect job state with it).
    pub fn manager(&self) -> Arc<Manager> {
        Arc::clone(&self.shared.manager)
    }

    /// Begin shutdown: stop accepting, cancel queued jobs, arm
    /// cooperative stops on running ones. Idempotent; `join` completes
    /// once everything drains.
    pub fn shutdown(&self) {
        initiate_shutdown(&self.shared, self.addr);
    }

    /// Block until the accept loop, worker pool, and every connection
    /// handler have exited. Call [`Server::shutdown`] first (or submit a
    /// [`Request::Shutdown`] over the wire).
    pub fn join(mut self) {
        if let Some(h) = self.accept.take() {
            let _ = h.join();
        }
        if let Some(pool) = self.pool.take() {
            pool.join();
        }
        loop {
            let Some(h) = pop_handler(&self.shared) else {
                break;
            };
            let _ = h.join();
        }
    }
}

fn pop_handler(shared: &Shared) -> Option<JoinHandle<()>> {
    match shared.handlers.lock() {
        Ok(mut v) => v.pop(),
        Err(poison) => poison.into_inner().pop(),
    }
}

fn initiate_shutdown(shared: &Shared, addr: SocketAddr) {
    if shared.stop.swap(true, Ordering::AcqRel) {
        return;
    }
    shared.manager.shutdown();
    // Unblock the accept loop with a throwaway connection.
    let _ = TcpStream::connect(addr);
}

fn accept_loop(listener: &TcpListener, shared: &Arc<Shared>) {
    for conn in listener.incoming() {
        if shared.stop.load(Ordering::Acquire) {
            break;
        }
        let Ok(stream) = conn else { continue };
        let addr = listener.local_addr().ok();
        let conn_shared = Arc::clone(shared);
        let handle = std::thread::Builder::new()
            .name("episerve-conn".to_string())
            .spawn(move || {
                let _ = handle_connection(stream, &conn_shared, addr);
            });
        if let Ok(handle) = handle {
            match shared.handlers.lock() {
                Ok(mut v) => v.push(handle),
                Err(poison) => poison.into_inner().push(handle),
            }
        }
    }
}

/// Read one REQUEST frame, tolerating read-timeout ticks. `Ok(None)`
/// means clean EOF or shutdown.
fn next_request(stream: &mut TcpStream, shared: &Shared) -> io::Result<Option<Request>> {
    loop {
        match read_frame(stream) {
            Ok((kind::REQUEST, payload, _)) => {
                return match decode_request(&payload) {
                    Ok(req) => Ok(Some(req)),
                    Err(e) => Err(io::Error::new(io::ErrorKind::InvalidData, e.to_string())),
                };
            }
            Ok((other, _, _)) => {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!("unexpected frame kind {other}"),
                ));
            }
            Err(e) => match e.kind() {
                io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut => {
                    if shared.stop.load(Ordering::Acquire) {
                        return Ok(None);
                    }
                }
                io::ErrorKind::UnexpectedEof => return Ok(None),
                _ => return Err(e),
            },
        }
    }
}

fn respond(stream: &mut TcpStream, resp: &Response) -> io::Result<()> {
    write_frame(stream, kind::RESPONSE, &encode_response(resp)).map(|_| ())
}

fn handle_connection(
    mut stream: TcpStream,
    shared: &Shared,
    self_addr: Option<SocketAddr>,
) -> io::Result<()> {
    stream.set_nodelay(true).ok();
    stream.set_read_timeout(Some(READ_TICK))?;

    // Handshake first.
    match next_request(&mut stream, shared)? {
        Some(Request::Hello { magic, version }) if magic == MAGIC && version == VERSION => {
            respond(&mut stream, &Response::HelloOk { version: VERSION })?;
        }
        Some(_) => {
            respond(
                &mut stream,
                &Response::Error {
                    code: errcode::BAD_PROTO,
                    message: format!("first request must be Hello({MAGIC:#x}, v{VERSION})"),
                },
            )?;
            return Ok(());
        }
        None => return Ok(()),
    }

    while let Some(req) = next_request(&mut stream, shared)? {
        match req {
            Request::Hello { .. } => {
                respond(
                    &mut stream,
                    &Response::Error {
                        code: errcode::BAD_PROTO,
                        message: "duplicate Hello".to_string(),
                    },
                )?;
            }
            Request::Submit { spec } => {
                let resp = match shared.manager.submit(spec) {
                    Ok(job) => Response::Submitted { job },
                    Err(SubmitError::Invalid(message)) => Response::Error {
                        code: errcode::BAD_SPEC,
                        message,
                    },
                    Err(SubmitError::QueueFull) => Response::Error {
                        code: errcode::QUEUE_FULL,
                        message: "scheduler queue is full".to_string(),
                    },
                    Err(SubmitError::ShuttingDown) => Response::Error {
                        code: errcode::SHUTTING_DOWN,
                        message: "server is shutting down".to_string(),
                    },
                };
                respond(&mut stream, &resp)?;
            }
            Request::Pause { job } => {
                respond(
                    &mut stream,
                    &lifecycle_response(job, shared.manager.pause(job)),
                )?;
            }
            Request::Resume { job } => {
                respond(
                    &mut stream,
                    &lifecycle_response(job, shared.manager.resume(job)),
                )?;
            }
            Request::Cancel { job } => {
                respond(
                    &mut stream,
                    &lifecycle_response(job, shared.manager.cancel(job)),
                )?;
            }
            Request::Status { job } => {
                let resp = match shared.manager.status(job) {
                    Some((state, days_done)) => Response::JobStatus {
                        job,
                        state,
                        days_done,
                    },
                    None => Response::Error {
                        code: errcode::NO_SUCH_JOB,
                        message: format!("no job {job}"),
                    },
                };
                respond(&mut stream, &resp)?;
            }
            Request::List => {
                respond(
                    &mut stream,
                    &Response::Jobs {
                        jobs: shared.manager.list(),
                    },
                )?;
            }
            Request::Subscribe { job } => {
                match shared.manager.subscribe(job) {
                    Some(mut sub) => {
                        let state = shared
                            .manager
                            .status(job)
                            .map_or(crate::job::JobState::Queued, |(s, _)| s);
                        respond(&mut stream, &Response::Ack { job, state })?;
                        // Stream until the terminal event (or shutdown /
                        // client disconnect).
                        loop {
                            match sub.recv_timeout(STREAM_TICK) {
                                Some(ev) => {
                                    let terminal = ev.is_terminal();
                                    write_frame(&mut stream, kind::EVENT, &encode_event(&ev))?;
                                    if terminal {
                                        break;
                                    }
                                }
                                None => {
                                    if shared.stop.load(Ordering::Acquire) {
                                        break;
                                    }
                                }
                            }
                        }
                    }
                    None => {
                        respond(
                            &mut stream,
                            &Response::Error {
                                code: errcode::NO_SUCH_JOB,
                                message: format!("no job {job}"),
                            },
                        )?;
                    }
                }
                // A subscription consumes the connection.
                return Ok(());
            }
            Request::Shutdown => {
                respond(&mut stream, &Response::Bye)?;
                if let Some(addr) = self_addr {
                    initiate_shutdown(shared, addr);
                }
                return Ok(());
            }
        }
    }
    Ok(())
}

fn lifecycle_response(job: u64, result: Result<crate::job::JobState, LifecycleError>) -> Response {
    match result {
        Ok(state) => Response::Ack { job, state },
        Err(LifecycleError::NoSuchJob) => Response::Error {
            code: errcode::NO_SUCH_JOB,
            message: format!("no job {job}"),
        },
        Err(LifecycleError::BadTransition { state }) => Response::Error {
            code: errcode::BAD_TRANSITION,
            message: format!("job {job} is {}", state.as_str()),
        },
        Err(LifecycleError::Unsupported(message)) => Response::Error {
            code: errcode::BAD_TRANSITION,
            message,
        },
        Err(LifecycleError::QueueFull) => Response::Error {
            code: errcode::QUEUE_FULL,
            message: "scheduler queue is full".to_string(),
        },
        Err(LifecycleError::ShuttingDown) => Response::Error {
            code: errcode::SHUTTING_DOWN,
            message: "server is shutting down".to_string(),
        },
    }
}
