//! The scheduler queue: bounded, two priority classes, FIFO within a
//! class. Pure data structure — the [`crate::manager::Manager`] holds it
//! under its lock and layers the engine-cap eligibility filter on top via
//! [`JobQueue::pop_where`].

use crate::job::{JobId, Priority};
use std::collections::VecDeque;

/// Submit refused: the queue is at capacity.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct QueueFull;

/// Bounded FIFO+priority queue of job ids.
#[derive(Debug)]
pub struct JobQueue {
    high: VecDeque<JobId>,
    normal: VecDeque<JobId>,
    cap: usize,
}

impl JobQueue {
    /// A queue admitting at most `cap` jobs across both classes.
    pub fn new(cap: usize) -> JobQueue {
        JobQueue {
            high: VecDeque::new(),
            normal: VecDeque::new(),
            cap,
        }
    }

    /// Jobs currently queued.
    pub fn len(&self) -> usize {
        self.high.len() + self.normal.len()
    }

    /// Whether nothing is queued.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Enqueue at the back of the priority class.
    pub fn push(&mut self, id: JobId, priority: Priority) -> Result<(), QueueFull> {
        if self.len() >= self.cap {
            return Err(QueueFull);
        }
        match priority {
            Priority::High => self.high.push_back(id),
            Priority::Normal => self.normal.push_back(id),
        }
        Ok(())
    }

    /// Dequeue the first job (high class first, FIFO within a class) for
    /// which `eligible` returns true — the worker-pool hook that skips
    /// jobs whose engine is at its concurrency cap without starving the
    /// jobs behind them.
    pub fn pop_where(&mut self, mut eligible: impl FnMut(JobId) -> bool) -> Option<JobId> {
        for class in [&mut self.high, &mut self.normal] {
            if let Some(pos) = class.iter().position(|&id| eligible(id)) {
                return class.remove(pos);
            }
        }
        None
    }

    /// Remove a specific job (cancel-while-queued). Returns whether it
    /// was present.
    pub fn remove(&mut self, id: JobId) -> bool {
        for class in [&mut self.high, &mut self.normal] {
            if let Some(pos) = class.iter().position(|&q| q == id) {
                class.remove(pos);
                return true;
            }
        }
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fifo_within_class_high_first() {
        let mut q = JobQueue::new(8);
        q.push(1, Priority::Normal).unwrap();
        q.push(2, Priority::Normal).unwrap();
        q.push(3, Priority::High).unwrap();
        q.push(4, Priority::High).unwrap();
        let order: Vec<JobId> = std::iter::from_fn(|| q.pop_where(|_| true)).collect();
        assert_eq!(order, [3, 4, 1, 2]);
    }

    #[test]
    fn bounded_and_removable() {
        let mut q = JobQueue::new(2);
        q.push(1, Priority::Normal).unwrap();
        q.push(2, Priority::High).unwrap();
        assert_eq!(q.push(3, Priority::High), Err(QueueFull));
        assert!(q.remove(1));
        assert!(!q.remove(1));
        assert_eq!(q.len(), 1);
        q.push(3, Priority::Normal).unwrap();
        assert_eq!(q.pop_where(|_| true), Some(2));
    }

    #[test]
    fn pop_where_skips_ineligible_without_starving() {
        let mut q = JobQueue::new(8);
        q.push(1, Priority::Normal).unwrap();
        q.push(2, Priority::Normal).unwrap();
        q.push(3, Priority::Normal).unwrap();
        // Job 1's engine is saturated: 2 must be leased first, 1 stays.
        assert_eq!(q.pop_where(|id| id != 1), Some(2));
        assert_eq!(q.pop_where(|_| true), Some(1));
        assert_eq!(q.pop_where(|_| true), Some(3));
        assert!(q.pop_where(|_| true).is_none());
    }
}
