//! The episerve wire protocol: CRC-trailed request/response/event payloads
//! inside the same `[len: u32 LE][kind: u8][payload]` frames the net
//! engine uses ([`chare_rt::write_frame`] / [`chare_rt::read_frame`]).
//!
//! Layout (DESIGN.md §12):
//!
//! ```text
//! frame   := [len: u32 LE] [kind: u8] [payload]          (transport framing)
//! payload := [body] [crc32(body): u32 LE]                (this module)
//! body    := [tag: u8] [variant fields, LE]              (one enum variant)
//! ```
//!
//! Frame kinds: [`kind::REQUEST`] (client→server), [`kind::RESPONSE`]
//! (server→client, exactly one per request), [`kind::EVENT`]
//! (server→client on subscription streams).
//!
//! This file is simlint R3-scoped: every malformed input surfaces as a
//! typed [`ProtoError`] — no panic paths — and R5 holds the
//! encode/decode pairs ([`encode_request`]/[`decode_request`],
//! [`encode_response`]/[`decode_response`], [`encode_event`]/
//! [`decode_event`]) in variant lockstep. Decoders reject trailing
//! garbage, bad tags, and CRC mismatches.

use crate::job::{EngineSel, JobId, JobSpec, JobState, Priority, ResourceHints, ScenarioSource};
use bytes::{Buf, BufMut, Bytes, BytesMut};
use chare_rt::crc32;
use episim_core::DayStats;
use std::fmt;

/// "EPSV" little-endian: the hello magic every connection leads with.
pub const MAGIC: u32 = 0x5653_5045;
/// Protocol version; bumped on any incompatible layout change.
pub const VERSION: u32 = 1;
/// Longest string (job name, DSL text, error message) accepted on the
/// wire; anything larger is malformed by definition.
pub const MAX_STR: usize = 1 << 20;
/// Longest vector (sweep grid, job listing) accepted on the wire.
pub const MAX_VEC: usize = 1 << 16;

/// Frame kinds carried in the transport header.
pub mod kind {
    /// Client → server.
    pub const REQUEST: u8 = 1;
    /// Server → client, one per request.
    pub const RESPONSE: u8 = 2;
    /// Server → client, subscription streams only.
    pub const EVENT: u8 = 3;
}

/// Error codes carried by [`Response::Error`].
pub mod errcode {
    /// The scheduler queue is at capacity.
    pub const QUEUE_FULL: u8 = 1;
    /// No job with that id.
    pub const NO_SUCH_JOB: u8 = 2;
    /// The job's current state does not allow the request
    /// (e.g. pausing a completed job).
    pub const BAD_TRANSITION: u8 = 3;
    /// The spec failed validation (DSL parse error, bad sizing, engine /
    /// source mismatch).
    pub const BAD_SPEC: u8 = 4;
    /// Malformed frame, wrong magic/version, or wrong first request.
    pub const BAD_PROTO: u8 = 5;
    /// The server is shutting down and not accepting work.
    pub const SHUTTING_DOWN: u8 = 6;
}

/// Why a payload failed to decode.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ProtoError {
    /// Payload ended before the variant's fields did.
    Truncated,
    /// CRC trailer mismatch.
    BadCrc {
        /// Trailer value.
        stored: u32,
        /// Recomputed value.
        computed: u32,
    },
    /// Unknown variant / state / engine tag.
    BadTag(u8),
    /// Bytes left over after a complete variant.
    Trailing(usize),
    /// A length field exceeded [`MAX_STR`] / [`MAX_VEC`].
    TooLong(usize),
    /// A string field was not UTF-8.
    BadUtf8,
}

impl fmt::Display for ProtoError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ProtoError::Truncated => write!(f, "payload truncated"),
            ProtoError::BadCrc { stored, computed } => {
                write!(
                    f,
                    "crc mismatch: stored {stored:#010x}, computed {computed:#010x}"
                )
            }
            ProtoError::BadTag(t) => write!(f, "unknown tag {t}"),
            ProtoError::Trailing(n) => write!(f, "{n} trailing bytes after variant"),
            ProtoError::TooLong(n) => write!(f, "length field {n} exceeds protocol bounds"),
            ProtoError::BadUtf8 => write!(f, "string field is not utf-8"),
        }
    }
}

impl std::error::Error for ProtoError {}

/// Client → server messages.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Version handshake; must be the first request on every connection.
    Hello {
        /// Must equal [`MAGIC`].
        magic: u32,
        /// Must equal [`VERSION`].
        version: u32,
    },
    /// Queue a job; answered with [`Response::Submitted`].
    Submit {
        /// The job to run.
        spec: JobSpec,
    },
    /// Turn this connection into an event stream for `job` (replays the
    /// curve so far, then follows live until a terminal event).
    Subscribe {
        /// Target job.
        job: JobId,
    },
    /// Request a checkpoint-pause at the next day boundary.
    Pause {
        /// Target job.
        job: JobId,
    },
    /// Re-enqueue a paused job.
    Resume {
        /// Target job.
        job: JobId,
    },
    /// Cancel: dequeue, discard the checkpoint, or cooperatively stop at
    /// the next day boundary, depending on state.
    Cancel {
        /// Target job.
        job: JobId,
    },
    /// One-shot state + progress snapshot.
    Status {
        /// Target job.
        job: JobId,
    },
    /// List every job the server knows.
    List,
    /// Stop accepting work, cancel running jobs, drain, exit.
    Shutdown,
}

/// Server → client replies, exactly one per [`Request`].
#[derive(Debug, Clone, PartialEq)]
pub enum Response {
    /// Handshake accepted.
    HelloOk {
        /// Server protocol version.
        version: u32,
    },
    /// Job accepted and queued.
    Submitted {
        /// Assigned id.
        job: JobId,
    },
    /// Lifecycle request accepted; `state` is the job's state at the
    /// moment the request was applied (a pause/cancel of a running job
    /// reports `Running` — the transition lands at the next day boundary
    /// and is observable on the event stream).
    Ack {
        /// Target job.
        job: JobId,
        /// State when the request took effect.
        state: JobState,
    },
    /// Status snapshot.
    JobStatus {
        /// Target job.
        job: JobId,
        /// Current state.
        state: JobState,
        /// Days simulated so far (curve length).
        days_done: u32,
    },
    /// Listing.
    Jobs {
        /// `(id, state)` per job, id-ascending.
        jobs: Vec<(JobId, JobState)>,
    },
    /// Request refused; see [`errcode`].
    Error {
        /// Machine-readable code.
        code: u8,
        /// Human-readable detail.
        message: String,
    },
    /// Acknowledges [`Request::Shutdown`]; the server drains and exits.
    Bye,
}

/// Server → client stream items on a subscription.
///
/// [`Event::Completed`], [`Event::Failed`], and
/// [`Event::State`]`{ state: Cancelled }` are terminal: the server closes
/// the stream after sending one, and the pubsub layer never drops them
/// (only [`Event::Day`] curve points are subject to the lagging-subscriber
/// drop policy, which is surfaced as [`Event::Lagged`]).
#[derive(Debug, Clone, PartialEq)]
pub enum Event {
    /// One finished simulation day.
    Day {
        /// Source job.
        job: JobId,
        /// The day's global statistics.
        stats: DayStats,
    },
    /// A lifecycle transition.
    State {
        /// Source job.
        job: JobId,
        /// New state.
        state: JobState,
    },
    /// Terminal success summary.
    Completed {
        /// Source job.
        job: JobId,
        /// Days in the final curve.
        days: u32,
        /// Cumulative infections (seeds included).
        cumulative: u64,
        /// FNV-1a determinism hash of the full curve
        /// ([`episim_core::output::curve_hash`]); bit-identical to a
        /// direct uninterrupted run of the same spec.
        curve_hash: u64,
    },
    /// Terminal failure.
    Failed {
        /// Source job.
        job: JobId,
        /// What went wrong.
        message: String,
    },
    /// The subscriber fell behind and `missed` [`Event::Day`] points were
    /// dropped (oldest first) since the last delivered event.
    Lagged {
        /// Source job.
        job: JobId,
        /// Dropped event count.
        missed: u64,
    },
}

impl Event {
    /// Does this event end the stream?
    pub fn is_terminal(&self) -> bool {
        matches!(
            self,
            Event::Completed { .. }
                | Event::Failed { .. }
                | Event::State {
                    state: JobState::Cancelled,
                    ..
                }
        )
    }
}

// ---------------------------------------------------------------------------
// Reader: a bounds-checked cursor (the underlying `Buf` impl panics on
// underflow, which R3 forbids here — every read goes through `take`).
// ---------------------------------------------------------------------------

struct Reader<'a> {
    buf: &'a [u8],
}

impl<'a> Reader<'a> {
    fn new(buf: &'a [u8]) -> Reader<'a> {
        Reader { buf }
    }

    fn take(&mut self, n: usize) -> Result<(), ProtoError> {
        if self.buf.remaining() < n {
            return Err(ProtoError::Truncated);
        }
        Ok(())
    }

    fn u8(&mut self) -> Result<u8, ProtoError> {
        self.take(1)?;
        Ok(self.buf.get_u8())
    }

    fn u32(&mut self) -> Result<u32, ProtoError> {
        self.take(4)?;
        Ok(self.buf.get_u32_le())
    }

    fn u64(&mut self) -> Result<u64, ProtoError> {
        self.take(8)?;
        Ok(self.buf.get_u64_le())
    }

    fn f64(&mut self) -> Result<f64, ProtoError> {
        Ok(f64::from_bits(self.u64()?))
    }

    fn string(&mut self) -> Result<String, ProtoError> {
        let n = self.u32()? as usize;
        if n > MAX_STR {
            return Err(ProtoError::TooLong(n));
        }
        self.take(n)?;
        let mut raw = vec![0u8; n];
        self.buf.copy_to_slice(&mut raw);
        String::from_utf8(raw).map_err(|_| ProtoError::BadUtf8)
    }

    fn vec_len(&mut self) -> Result<usize, ProtoError> {
        let n = self.u32()? as usize;
        if n > MAX_VEC {
            return Err(ProtoError::TooLong(n));
        }
        Ok(n)
    }

    fn finish(&self) -> Result<(), ProtoError> {
        match self.buf.remaining() {
            0 => Ok(()),
            n => Err(ProtoError::Trailing(n)),
        }
    }
}

fn put_string(buf: &mut BytesMut, s: &str) {
    buf.put_u32_le(s.len() as u32);
    buf.put_slice(s.as_bytes());
}

/// Append the CRC trailer and freeze.
fn seal(mut body: BytesMut) -> Bytes {
    let c = crc32(body.as_slice());
    body.put_u32_le(c);
    body.freeze()
}

/// Verify and strip the CRC trailer.
fn open(payload: &[u8]) -> Result<&[u8], ProtoError> {
    let n = payload.len();
    if n < 4 {
        return Err(ProtoError::Truncated);
    }
    let (body, mut trailer) = payload.split_at(n - 4);
    let stored = trailer.get_u32_le();
    let computed = crc32(body);
    if stored != computed {
        return Err(ProtoError::BadCrc { stored, computed });
    }
    Ok(body)
}

// ---------------------------------------------------------------------------
// Shared field codecs.
// ---------------------------------------------------------------------------

fn put_state(buf: &mut BytesMut, s: JobState) {
    buf.put_u8(s.code());
}

fn get_state(rd: &mut Reader<'_>) -> Result<JobState, ProtoError> {
    let code = rd.u8()?;
    JobState::from_code(code).ok_or(ProtoError::BadTag(code))
}

fn put_spec(buf: &mut BytesMut, spec: &JobSpec) {
    put_string(buf, &spec.name);
    match &spec.source {
        ScenarioSource::Dsl(text) => {
            buf.put_u8(1);
            put_string(buf, text);
        }
        ScenarioSource::Sweep {
            dsl,
            r_values,
            replicates,
            workers,
        } => {
            buf.put_u8(2);
            put_string(buf, dsl);
            buf.put_u32_le(r_values.len() as u32);
            for r in r_values {
                buf.put_u64_le(r.to_bits());
            }
            buf.put_u32_le(*replicates);
            buf.put_u32_le(*workers);
        }
    }
    buf.put_u8(spec.engine.code());
    match spec.seed {
        Some(seed) => {
            buf.put_u8(1);
            buf.put_u64_le(seed);
        }
        None => buf.put_u8(0),
    }
    match spec.days {
        Some(days) => {
            buf.put_u8(1);
            buf.put_u32_le(days);
        }
        None => buf.put_u8(0),
    }
    buf.put_u8(spec.priority.code());
    buf.put_u32_le(spec.hints.pop_size);
    buf.put_u64_le(spec.hints.pop_seed);
    buf.put_u32_le(spec.hints.n_pes);
    buf.put_u32_le(spec.hints.n_partitions);
    buf.put_u32_le(spec.hints.throttle_ms);
}

fn get_spec(rd: &mut Reader<'_>) -> Result<JobSpec, ProtoError> {
    let name = rd.string()?;
    let source = match rd.u8()? {
        1 => ScenarioSource::Dsl(rd.string()?),
        2 => {
            let dsl = rd.string()?;
            let n = rd.vec_len()?;
            let mut r_values = Vec::with_capacity(n);
            for _ in 0..n {
                r_values.push(rd.f64()?);
            }
            let replicates = rd.u32()?;
            let workers = rd.u32()?;
            ScenarioSource::Sweep {
                dsl,
                r_values,
                replicates,
                workers,
            }
        }
        t => return Err(ProtoError::BadTag(t)),
    };
    let engine_code = rd.u8()?;
    let engine = EngineSel::from_code(engine_code).ok_or(ProtoError::BadTag(engine_code))?;
    let seed = match rd.u8()? {
        0 => None,
        1 => Some(rd.u64()?),
        t => return Err(ProtoError::BadTag(t)),
    };
    let days = match rd.u8()? {
        0 => None,
        1 => Some(rd.u32()?),
        t => return Err(ProtoError::BadTag(t)),
    };
    let prio_code = rd.u8()?;
    let priority = Priority::from_code(prio_code).ok_or(ProtoError::BadTag(prio_code))?;
    let hints = ResourceHints {
        pop_size: rd.u32()?,
        pop_seed: rd.u64()?,
        n_pes: rd.u32()?,
        n_partitions: rd.u32()?,
        throttle_ms: rd.u32()?,
    };
    Ok(JobSpec {
        name,
        source,
        engine,
        seed,
        days,
        priority,
        hints,
    })
}

fn put_day(buf: &mut BytesMut, d: &DayStats) {
    buf.put_u32_le(d.day);
    buf.put_u64_le(d.new_infections);
    buf.put_u64_le(d.infected_now);
    buf.put_u64_le(d.susceptible);
    buf.put_u64_le(d.symptomatic);
    buf.put_u64_le(d.cumulative);
    buf.put_u64_le(d.visits);
    buf.put_u64_le(d.events);
    buf.put_u64_le(d.interactions);
    buf.put_u64_le(d.infects_sent);
    for k in &d.infections_by_kind {
        buf.put_u64_le(*k);
    }
}

fn get_day(rd: &mut Reader<'_>) -> Result<DayStats, ProtoError> {
    let mut d = DayStats {
        day: rd.u32()?,
        new_infections: rd.u64()?,
        infected_now: rd.u64()?,
        susceptible: rd.u64()?,
        symptomatic: rd.u64()?,
        cumulative: rd.u64()?,
        visits: rd.u64()?,
        events: rd.u64()?,
        interactions: rd.u64()?,
        infects_sent: rd.u64()?,
        infections_by_kind: [0; 5],
    };
    for slot in d.infections_by_kind.iter_mut() {
        *slot = rd.u64()?;
    }
    Ok(d)
}

// ---------------------------------------------------------------------------
// Request codec (R5 lockstep: encode_request / decode_request).
// ---------------------------------------------------------------------------

/// Encode a [`Request`] into a CRC-trailed payload.
pub fn encode_request(req: &Request) -> Bytes {
    let mut buf = BytesMut::with_capacity(64);
    match req {
        Request::Hello { magic, version } => {
            buf.put_u8(1);
            buf.put_u32_le(*magic);
            buf.put_u32_le(*version);
        }
        Request::Submit { spec } => {
            buf.put_u8(2);
            put_spec(&mut buf, spec);
        }
        Request::Subscribe { job } => {
            buf.put_u8(3);
            buf.put_u64_le(*job);
        }
        Request::Pause { job } => {
            buf.put_u8(4);
            buf.put_u64_le(*job);
        }
        Request::Resume { job } => {
            buf.put_u8(5);
            buf.put_u64_le(*job);
        }
        Request::Cancel { job } => {
            buf.put_u8(6);
            buf.put_u64_le(*job);
        }
        Request::Status { job } => {
            buf.put_u8(7);
            buf.put_u64_le(*job);
        }
        Request::List => buf.put_u8(8),
        Request::Shutdown => buf.put_u8(9),
    }
    seal(buf)
}

/// Decode a CRC-trailed payload into a [`Request`].
pub fn decode_request(payload: &[u8]) -> Result<Request, ProtoError> {
    let body = open(payload)?;
    let mut rd = Reader::new(body);
    let req = match rd.u8()? {
        1 => Request::Hello {
            magic: rd.u32()?,
            version: rd.u32()?,
        },
        2 => Request::Submit {
            spec: get_spec(&mut rd)?,
        },
        3 => Request::Subscribe { job: rd.u64()? },
        4 => Request::Pause { job: rd.u64()? },
        5 => Request::Resume { job: rd.u64()? },
        6 => Request::Cancel { job: rd.u64()? },
        7 => Request::Status { job: rd.u64()? },
        8 => Request::List,
        9 => Request::Shutdown,
        t => return Err(ProtoError::BadTag(t)),
    };
    rd.finish()?;
    Ok(req)
}

// ---------------------------------------------------------------------------
// Response codec (R5 lockstep: encode_response / decode_response).
// ---------------------------------------------------------------------------

/// Encode a [`Response`] into a CRC-trailed payload.
pub fn encode_response(resp: &Response) -> Bytes {
    let mut buf = BytesMut::with_capacity(64);
    match resp {
        Response::HelloOk { version } => {
            buf.put_u8(1);
            buf.put_u32_le(*version);
        }
        Response::Submitted { job } => {
            buf.put_u8(2);
            buf.put_u64_le(*job);
        }
        Response::Ack { job, state } => {
            buf.put_u8(3);
            buf.put_u64_le(*job);
            put_state(&mut buf, *state);
        }
        Response::JobStatus {
            job,
            state,
            days_done,
        } => {
            buf.put_u8(4);
            buf.put_u64_le(*job);
            put_state(&mut buf, *state);
            buf.put_u32_le(*days_done);
        }
        Response::Jobs { jobs } => {
            buf.put_u8(5);
            buf.put_u32_le(jobs.len() as u32);
            for (job, state) in jobs {
                buf.put_u64_le(*job);
                put_state(&mut buf, *state);
            }
        }
        Response::Error { code, message } => {
            buf.put_u8(6);
            buf.put_u8(*code);
            put_string(&mut buf, message);
        }
        Response::Bye => buf.put_u8(7),
    }
    seal(buf)
}

/// Decode a CRC-trailed payload into a [`Response`].
pub fn decode_response(payload: &[u8]) -> Result<Response, ProtoError> {
    let body = open(payload)?;
    let mut rd = Reader::new(body);
    let resp = match rd.u8()? {
        1 => Response::HelloOk { version: rd.u32()? },
        2 => Response::Submitted { job: rd.u64()? },
        3 => Response::Ack {
            job: rd.u64()?,
            state: get_state(&mut rd)?,
        },
        4 => Response::JobStatus {
            job: rd.u64()?,
            state: get_state(&mut rd)?,
            days_done: rd.u32()?,
        },
        5 => {
            let n = rd.vec_len()?;
            let mut jobs = Vec::with_capacity(n);
            for _ in 0..n {
                let job = rd.u64()?;
                let state = get_state(&mut rd)?;
                jobs.push((job, state));
            }
            Response::Jobs { jobs }
        }
        6 => Response::Error {
            code: rd.u8()?,
            message: rd.string()?,
        },
        7 => Response::Bye,
        t => return Err(ProtoError::BadTag(t)),
    };
    rd.finish()?;
    Ok(resp)
}

// ---------------------------------------------------------------------------
// Event codec (R5 lockstep: encode_event / decode_event).
// ---------------------------------------------------------------------------

/// Encode an [`Event`] into a CRC-trailed payload.
pub fn encode_event(ev: &Event) -> Bytes {
    let mut buf = BytesMut::with_capacity(128);
    match ev {
        Event::Day { job, stats } => {
            buf.put_u8(1);
            buf.put_u64_le(*job);
            put_day(&mut buf, stats);
        }
        Event::State { job, state } => {
            buf.put_u8(2);
            buf.put_u64_le(*job);
            put_state(&mut buf, *state);
        }
        Event::Completed {
            job,
            days,
            cumulative,
            curve_hash,
        } => {
            buf.put_u8(3);
            buf.put_u64_le(*job);
            buf.put_u32_le(*days);
            buf.put_u64_le(*cumulative);
            buf.put_u64_le(*curve_hash);
        }
        Event::Failed { job, message } => {
            buf.put_u8(4);
            buf.put_u64_le(*job);
            put_string(&mut buf, message);
        }
        Event::Lagged { job, missed } => {
            buf.put_u8(5);
            buf.put_u64_le(*job);
            buf.put_u64_le(*missed);
        }
    }
    seal(buf)
}

/// Decode a CRC-trailed payload into an [`Event`].
pub fn decode_event(payload: &[u8]) -> Result<Event, ProtoError> {
    let body = open(payload)?;
    let mut rd = Reader::new(body);
    let ev = match rd.u8()? {
        1 => Event::Day {
            job: rd.u64()?,
            stats: get_day(&mut rd)?,
        },
        2 => Event::State {
            job: rd.u64()?,
            state: get_state(&mut rd)?,
        },
        3 => Event::Completed {
            job: rd.u64()?,
            days: rd.u32()?,
            cumulative: rd.u64()?,
            curve_hash: rd.u64()?,
        },
        4 => Event::Failed {
            job: rd.u64()?,
            message: rd.string()?,
        },
        5 => Event::Lagged {
            job: rd.u64()?,
            missed: rd.u64()?,
        },
        t => return Err(ProtoError::BadTag(t)),
    };
    rd.finish()?;
    Ok(ev)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::job::{EngineSel, JobSpec, JobState, Priority, ScenarioSource};
    use proptest::prelude::*;

    fn sample_specs() -> Vec<JobSpec> {
        let mut plain = JobSpec::dsl("alpha", "disease x\n", EngineSel::Seq);
        plain.seed = Some(99);
        plain.days = Some(30);
        plain.priority = Priority::High;
        let mut sweep = JobSpec::dsl("beta", "disease y\n", EngineSel::Ensemble);
        sweep.source = ScenarioSource::Sweep {
            dsl: "disease y\n".into(),
            r_values: vec![0.0004, 0.0008, 0.0016],
            replicates: 4,
            workers: 2,
        };
        vec![plain, sweep]
    }

    fn sample_requests() -> Vec<Request> {
        let mut reqs = vec![
            Request::Hello {
                magic: MAGIC,
                version: VERSION,
            },
            Request::Subscribe { job: 3 },
            Request::Pause { job: 4 },
            Request::Resume { job: 5 },
            Request::Cancel { job: 6 },
            Request::Status { job: 7 },
            Request::List,
            Request::Shutdown,
        ];
        for spec in sample_specs() {
            reqs.push(Request::Submit { spec });
        }
        reqs
    }

    fn sample_responses() -> Vec<Response> {
        vec![
            Response::HelloOk { version: VERSION },
            Response::Submitted { job: 12 },
            Response::Ack {
                job: 12,
                state: JobState::Running,
            },
            Response::JobStatus {
                job: 12,
                state: JobState::Paused,
                days_done: 17,
            },
            Response::Jobs {
                jobs: vec![(1, JobState::Completed), (2, JobState::Queued)],
            },
            Response::Error {
                code: errcode::NO_SUCH_JOB,
                message: "no job 9".into(),
            },
            Response::Bye,
        ]
    }

    fn sample_events() -> Vec<Event> {
        let stats = DayStats {
            day: 3,
            new_infections: 17,
            infected_now: 40,
            susceptible: 900,
            symptomatic: 11,
            cumulative: 62,
            visits: 4_000,
            events: 9_000,
            interactions: 123,
            infects_sent: 18,
            infections_by_kind: [1, 2, 3, 4, 8],
        };
        vec![
            Event::Day { job: 1, stats },
            Event::State {
                job: 1,
                state: JobState::Paused,
            },
            Event::Completed {
                job: 1,
                days: 120,
                cumulative: 800,
                curve_hash: 0xdead_beef_cafe_f00d,
            },
            Event::Failed {
                job: 2,
                message: "scenario DSL does not parse".into(),
            },
            Event::Lagged { job: 1, missed: 42 },
        ]
    }

    #[test]
    fn requests_roundtrip() {
        for req in sample_requests() {
            let wire = encode_request(&req);
            assert_eq!(decode_request(&wire).unwrap(), req);
        }
    }

    #[test]
    fn responses_roundtrip() {
        for resp in sample_responses() {
            let wire = encode_response(&resp);
            assert_eq!(decode_response(&wire).unwrap(), resp);
        }
    }

    #[test]
    fn events_roundtrip() {
        for ev in sample_events() {
            let wire = encode_event(&ev);
            assert_eq!(decode_event(&wire).unwrap(), ev);
        }
    }

    #[test]
    fn terminal_classification() {
        let evs = sample_events();
        let terminal: Vec<bool> = evs.iter().map(Event::is_terminal).collect();
        assert_eq!(terminal, [false, false, true, true, false]);
        assert!(Event::State {
            job: 1,
            state: JobState::Cancelled
        }
        .is_terminal());
    }

    #[test]
    fn every_truncation_is_rejected_never_panics() {
        for req in sample_requests() {
            let wire = encode_request(&req);
            for cut in 0..wire.len() {
                assert!(decode_request(&wire[..cut]).is_err(), "cut at {cut}");
            }
        }
        for resp in sample_responses() {
            let wire = encode_response(&resp);
            for cut in 0..wire.len() {
                assert!(decode_response(&wire[..cut]).is_err(), "cut at {cut}");
            }
        }
        for ev in sample_events() {
            let wire = encode_event(&ev);
            for cut in 0..wire.len() {
                assert!(decode_event(&wire[..cut]).is_err(), "cut at {cut}");
            }
        }
    }

    #[test]
    fn single_bit_flips_are_caught_by_crc_or_structure() {
        let wire = encode_request(&Request::Status { job: 7 });
        for byte in 0..wire.len() {
            for bit in 0..8 {
                let mut bad = wire.to_vec();
                bad[byte] ^= 1 << bit;
                assert_ne!(
                    decode_request(&bad).ok(),
                    Some(Request::Status { job: 7 }),
                    "flip at byte {byte} bit {bit} went unnoticed"
                );
            }
        }
    }

    #[test]
    fn trailing_garbage_is_rejected() {
        // Append garbage *inside* the CRC'd body: rebuild with a valid
        // trailer over body+garbage, so only the Trailing check can catch
        // it.
        let wire = encode_request(&Request::List);
        let body = &wire[..wire.len() - 4];
        let mut padded = body.to_vec();
        padded.push(0xAA);
        let crc = crc32(&padded);
        padded.extend_from_slice(&crc.to_le_bytes());
        assert_eq!(decode_request(&padded), Err(ProtoError::Trailing(1)));
    }

    #[test]
    fn bad_tags_are_typed_errors() {
        let mut body = vec![200u8]; // no such request tag
        let crc = crc32(&body);
        body.extend_from_slice(&crc.to_le_bytes());
        assert_eq!(decode_request(&body), Err(ProtoError::BadTag(200)));

        // Bad state code inside an Ack.
        let wire = encode_response(&Response::Ack {
            job: 1,
            state: JobState::Queued,
        });
        let mut bad = wire[..wire.len() - 4].to_vec();
        let last = bad.len() - 1;
        bad[last] = 77; // state code slot
        let crc = crc32(&bad);
        bad.extend_from_slice(&crc.to_le_bytes());
        assert_eq!(decode_response(&bad), Err(ProtoError::BadTag(77)));
    }

    proptest! {
        /// Arbitrary payload bytes never panic the decoders (R3 in spirit
        /// and in letter).
        #[test]
        fn decoders_are_total(payload in proptest::collection::vec(any::<u8>(), 0..256)) {
            let _ = decode_request(&payload);
            let _ = decode_response(&payload);
            let _ = decode_event(&payload);
        }
    }
}
