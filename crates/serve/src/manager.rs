//! The job manager: registry, scheduler queue, per-job topics, the
//! transition log, and the lease protocol the worker pool drives.
//!
//! All mutable state lives behind one mutex ([`ManagerState`]); topic
//! publishes happen *while holding it*, which gives subscribers a crisp
//! guarantee: the replay a new subscription receives plus the live events
//! after it are exactly the job's event sequence — no gap, no duplicate
//! (lock order is always manager → topic, never the reverse).
//!
//! Every state change goes through [`JobState::can_transition`] and is
//! appended to `transitions.log` in the data dir as
//! `"<seq> job=<id> <from> -> <to>"` — `seq` is a process-monotonic
//! counter, not a wall-clock timestamp, keeping the control plane inside
//! the repo's determinism rules (simlint R2).

use crate::job::{EngineSel, JobId, JobSpec, JobState};
use crate::protocol::Event;
use crate::pubsub::{Subscription, Topic};
use crate::queue::JobQueue;
use episim_core::output::curve_hash;
use episim_core::DayStats;
use std::collections::BTreeMap;
use std::io::Write;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU8, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard};

/// Control-flag values a running worker polls at each day boundary.
pub mod ctl {
    /// Keep simulating.
    pub const RUN: u8 = 0;
    /// Checkpoint and pause at the next day boundary.
    pub const PAUSE: u8 = 1;
    /// Cooperatively stop (cancel) at the next day boundary.
    pub const CANCEL: u8 = 2;
}

/// Per-engine concurrency caps for the worker pool: at most this many
/// jobs of each engine class run at once (the thread-hungry engines get
/// small caps so one job can't monopolize the host).
#[derive(Debug, Clone, Copy)]
pub struct EngineCaps {
    /// Sequential-engine jobs.
    pub seq: u32,
    /// Threaded-engine jobs.
    pub threads: u32,
    /// Virtual-time-engine jobs.
    pub vt: u32,
    /// Standalone net-engine jobs.
    pub net: u32,
    /// Ensemble sweeps (already internally parallel).
    pub ensemble: u32,
}

impl Default for EngineCaps {
    fn default() -> Self {
        EngineCaps {
            seq: 4,
            threads: 2,
            vt: 2,
            net: 2,
            ensemble: 1,
        }
    }
}

impl EngineCaps {
    /// The cap for one engine class.
    pub fn cap(&self, e: EngineSel) -> u32 {
        match e {
            EngineSel::Seq => self.seq,
            EngineSel::Threads => self.threads,
            EngineSel::Vt => self.vt,
            EngineSel::Net => self.net,
            EngineSel::Ensemble => self.ensemble,
        }
    }
}

/// Why a submit was refused.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SubmitError {
    /// [`JobSpec::validate`] failed.
    Invalid(String),
    /// The scheduler queue is full.
    QueueFull,
    /// The server is shutting down.
    ShuttingDown,
}

/// Why a lifecycle request (pause/resume/cancel) was refused.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LifecycleError {
    /// Unknown job id.
    NoSuchJob,
    /// The job's current state does not allow the request.
    BadTransition {
        /// The state the job was actually in.
        state: JobState,
    },
    /// The operation is structurally unsupported for this job.
    Unsupported(String),
    /// Resume refused: the queue is full (the job stays `Paused`).
    QueueFull,
    /// The server is shutting down.
    ShuttingDown,
}

/// Everything the manager tracks about one job.
#[derive(Debug)]
pub struct JobRecord {
    /// The submitted spec.
    pub spec: JobSpec,
    /// Current lifecycle state.
    pub state: JobState,
    /// The curve so far (prefix across pauses; full curve at completion).
    pub days: Vec<DayStats>,
    /// FNV-1a hash of `days`, set at completion.
    pub curve_hash: Option<u64>,
    /// Failure message, set on `Failed`.
    pub error: Option<String>,
    /// Checkpoint file, set while `Paused`.
    pub checkpoint: Option<PathBuf>,
    /// Initial seeded infections (for completion summaries).
    pub seeds: u64,
    /// The terminal event as published, replayed verbatim to late
    /// subscribers (an ensemble summary's `days` is its member count,
    /// which `days.len()` cannot reconstruct).
    pub terminal: Option<Event>,
}

/// What a worker receives when it wins a job.
pub struct Lease {
    /// The job.
    pub job: JobId,
    /// Spec snapshot.
    pub spec: JobSpec,
    /// Present when this lease resumes a paused job.
    pub checkpoint: Option<PathBuf>,
    /// Control flag to poll at day boundaries (see [`ctl`]).
    pub flag: Arc<AtomicU8>,
}

struct ManagerState {
    jobs: BTreeMap<JobId, JobRecord>,
    topics: BTreeMap<JobId, Topic>,
    queue: JobQueue,
    flags: BTreeMap<JobId, Arc<AtomicU8>>,
    running: BTreeMap<u8, u32>,
    next_id: JobId,
    seq: u64,
    log: std::fs::File,
    shutdown: bool,
}

/// The control plane's shared core. Cheap to clone via `Arc`; the server
/// front-end and every pool worker hold one.
pub struct Manager {
    state: Mutex<ManagerState>,
    work_bell: Condvar,
    caps: EngineCaps,
    data_dir: PathBuf,
    topic_cap: usize,
}

impl Manager {
    /// Create a manager rooted at `data_dir` (created if absent; holds
    /// checkpoints and the transition log).
    pub fn new(
        data_dir: PathBuf,
        queue_cap: usize,
        topic_cap: usize,
        caps: EngineCaps,
    ) -> std::io::Result<Arc<Manager>> {
        std::fs::create_dir_all(&data_dir)?;
        let log = std::fs::File::create(data_dir.join("transitions.log"))?;
        Ok(Arc::new(Manager {
            state: Mutex::new(ManagerState {
                jobs: BTreeMap::new(),
                topics: BTreeMap::new(),
                queue: JobQueue::new(queue_cap),
                flags: BTreeMap::new(),
                running: BTreeMap::new(),
                next_id: 1,
                seq: 0,
                log,
                shutdown: false,
            }),
            work_bell: Condvar::new(),
            caps,
            data_dir,
            topic_cap,
        }))
    }

    fn lock_state(&self) -> MutexGuard<'_, ManagerState> {
        match self.state.lock() {
            Ok(g) => g,
            Err(poison) => poison.into_inner(),
        }
    }

    /// Validate, register, queue, and announce a new job.
    pub fn submit(&self, spec: JobSpec) -> Result<JobId, SubmitError> {
        spec.validate().map_err(SubmitError::Invalid)?;
        let mut st = self.lock_state();
        if st.shutdown {
            return Err(SubmitError::ShuttingDown);
        }
        let id = st.next_id;
        st.queue
            .push(id, spec.priority)
            .map_err(|_| SubmitError::QueueFull)?;
        st.next_id += 1;
        st.jobs.insert(
            id,
            JobRecord {
                spec,
                state: JobState::Queued,
                days: Vec::new(),
                curve_hash: None,
                error: None,
                checkpoint: None,
                seeds: 0,
                terminal: None,
            },
        );
        st.topics.insert(id, Topic::new(id, self.topic_cap));
        log_line(&mut st, id, None, JobState::Queued);
        drop(st);
        self.work_bell.notify_all();
        Ok(id)
    }

    /// Request a checkpoint-pause. Only running engine jobs can pause;
    /// the transition lands at the next day boundary (watch the event
    /// stream for `State { Paused }`).
    pub fn pause(&self, job: JobId) -> Result<JobState, LifecycleError> {
        let st = self.lock_state();
        let rec = st.jobs.get(&job).ok_or(LifecycleError::NoSuchJob)?;
        if rec.spec.engine == EngineSel::Ensemble {
            return Err(LifecycleError::Unsupported(
                "ensemble sweeps run atomically and cannot pause".into(),
            ));
        }
        if rec.state != JobState::Running {
            return Err(LifecycleError::BadTransition { state: rec.state });
        }
        if let Some(flag) = st.flags.get(&job) {
            // Only arm the pause if nothing stronger (cancel) is pending.
            let _ =
                flag.compare_exchange(ctl::RUN, ctl::PAUSE, Ordering::AcqRel, Ordering::Acquire);
        }
        Ok(JobState::Running)
    }

    /// Re-enqueue a paused job; its next lease resumes from the
    /// checkpoint.
    pub fn resume(&self, job: JobId) -> Result<JobState, LifecycleError> {
        let mut st = self.lock_state();
        if st.shutdown {
            return Err(LifecycleError::ShuttingDown);
        }
        let rec = st.jobs.get(&job).ok_or(LifecycleError::NoSuchJob)?;
        if rec.state != JobState::Paused {
            return Err(LifecycleError::BadTransition { state: rec.state });
        }
        let priority = rec.spec.priority;
        st.queue
            .push(job, priority)
            .map_err(|_| LifecycleError::QueueFull)?;
        transition(&mut st, job, JobState::Queued);
        drop(st);
        self.work_bell.notify_all();
        Ok(JobState::Queued)
    }

    /// Cancel a job: dequeue it, discard its checkpoint, or (if running)
    /// arm the cooperative day-boundary stop.
    pub fn cancel(&self, job: JobId) -> Result<JobState, LifecycleError> {
        let mut st = self.lock_state();
        let rec = st.jobs.get(&job).ok_or(LifecycleError::NoSuchJob)?;
        match rec.state {
            JobState::Queued => {
                st.queue.remove(job);
                transition(&mut st, job, JobState::Cancelled);
                Ok(JobState::Cancelled)
            }
            JobState::Running => {
                if let Some(flag) = st.flags.get(&job) {
                    flag.store(ctl::CANCEL, Ordering::Release);
                }
                Ok(JobState::Running)
            }
            JobState::Paused => {
                if let Some(path) = st.jobs.get_mut(&job).and_then(|r| r.checkpoint.take()) {
                    let _ = std::fs::remove_file(path);
                }
                transition(&mut st, job, JobState::Cancelled);
                Ok(JobState::Cancelled)
            }
            state => Err(LifecycleError::BadTransition { state }),
        }
    }

    /// `(state, days simulated)` snapshot.
    pub fn status(&self, job: JobId) -> Option<(JobState, u32)> {
        let st = self.lock_state();
        st.jobs.get(&job).map(|r| (r.state, r.days.len() as u32))
    }

    /// Every job, id-ascending.
    pub fn list(&self) -> Vec<(JobId, JobState)> {
        let st = self.lock_state();
        st.jobs.iter().map(|(&id, r)| (id, r.state)).collect()
    }

    /// The completion hash, once the job completed.
    pub fn curve_hash_of(&self, job: JobId) -> Option<u64> {
        self.lock_state().jobs.get(&job).and_then(|r| r.curve_hash)
    }

    /// Attach an event stream: replays the curve so far (and the terminal
    /// event, if the job already ended), then follows live.
    pub fn subscribe(&self, job: JobId) -> Option<Subscription> {
        let st = self.lock_state();
        let rec = st.jobs.get(&job)?;
        let topic = st.topics.get(&job)?.clone();
        let mut replay: Vec<Event> = rec
            .days
            .iter()
            .map(|d| Event::Day { job, stats: *d })
            .collect();
        if let Some(terminal) = rec.terminal.clone() {
            replay.push(terminal);
        }
        // Still under the manager lock: no publish can interleave between
        // building the replay and attaching the subscriber.
        Some(topic.subscribe(replay))
    }

    /// Stop accepting work: cancel every queued job, arm the cooperative
    /// stop on every running one, and wake lease waiters so pool workers
    /// drain and exit.
    pub fn shutdown(&self) {
        let mut st = self.lock_state();
        st.shutdown = true;
        while let Some(job) = st.queue.pop_where(|_| true) {
            transition(&mut st, job, JobState::Cancelled);
        }
        for (job, flag) in &st.flags {
            if st
                .jobs
                .get(job)
                .is_some_and(|r| r.state == JobState::Running)
            {
                flag.store(ctl::CANCEL, Ordering::Release);
            }
        }
        drop(st);
        self.work_bell.notify_all();
    }

    /// Has [`Manager::shutdown`] been called?
    pub fn is_shutting_down(&self) -> bool {
        self.lock_state().shutdown
    }

    /// Are any jobs currently leased?
    pub fn running_count(&self) -> u32 {
        self.lock_state().running.values().sum()
    }

    // -- pool-facing ------------------------------------------------------

    /// Block until a job is available under the engine caps (leasing it),
    /// or until shutdown with nothing left to lease (returning `None`).
    pub fn lease(&self) -> Option<Lease> {
        let mut st = self.lock_state();
        loop {
            let caps = self.caps;
            let picked = {
                let ManagerState {
                    queue,
                    jobs,
                    running,
                    ..
                } = &mut *st;
                queue.pop_where(|id| {
                    jobs.get(&id).is_some_and(|r| {
                        let code = r.spec.engine.code();
                        running.get(&code).copied().unwrap_or(0) < caps.cap(r.spec.engine)
                    })
                })
            };
            if let Some(job) = picked {
                transition(&mut st, job, JobState::Running);
                let rec = st.jobs.get_mut(&job)?;
                let spec = rec.spec.clone();
                let checkpoint = rec.checkpoint.take();
                let flag = Arc::new(AtomicU8::new(ctl::RUN));
                *st.running.entry(spec.engine.code()).or_insert(0) += 1;
                st.flags.insert(job, Arc::clone(&flag));
                return Some(Lease {
                    job,
                    spec,
                    checkpoint,
                    flag,
                });
            }
            if st.shutdown {
                return None;
            }
            st = match self.work_bell.wait(st) {
                Ok(g) => g,
                Err(poison) => poison.into_inner(),
            };
        }
    }

    /// One finished day from a running job: extend the recorded curve and
    /// stream it.
    pub fn day_finished(&self, job: JobId, stats: &DayStats) {
        let mut st = self.lock_state();
        if let Some(rec) = st.jobs.get_mut(&job) {
            rec.days.push(*stats);
        }
        if let Some(topic) = st.topics.get(&job) {
            topic.publish(Event::Day { job, stats: *stats });
        }
    }

    /// Record the seed count a fresh (non-resumed) run established.
    pub fn note_seeds(&self, job: JobId, seeds: u64) {
        let mut st = self.lock_state();
        if let Some(rec) = st.jobs.get_mut(&job) {
            if rec.seeds == 0 {
                rec.seeds = seeds;
            }
        }
    }

    /// Terminal success: hash the recorded curve, publish the summary.
    pub fn finish_completed(&self, job: JobId) {
        let mut st = self.lock_state();
        let (days, cumulative, seeds) = match st.jobs.get(&job) {
            Some(rec) => (
                rec.days.clone(),
                rec.days.last().map_or(rec.seeds, |d| d.cumulative),
                rec.seeds,
            ),
            None => return,
        };
        let hash = curve_hash(&days);
        let summary = Event::Completed {
            job,
            days: days.len() as u32,
            cumulative: cumulative.max(seeds),
            curve_hash: hash,
        };
        if let Some(rec) = st.jobs.get_mut(&job) {
            rec.curve_hash = Some(hash);
            rec.terminal = Some(summary.clone());
        }
        transition(&mut st, job, JobState::Completed);
        if let Some(topic) = st.topics.get(&job) {
            topic.publish(summary);
        }
        self.release(&mut st, job);
        drop(st);
        self.work_bell.notify_all();
    }

    /// Terminal success for an ensemble sweep: no per-day curve, so the
    /// summary carries the [`episim_core::ResultStore`] hash as its
    /// `curve_hash` and the member count in the `days` slot.
    pub fn finish_sweep_completed(&self, job: JobId, members: u32, store_hash: u64) {
        let mut st = self.lock_state();
        let seeds = st.jobs.get(&job).map_or(0, |r| r.seeds);
        let summary = Event::Completed {
            job,
            days: members,
            cumulative: seeds,
            curve_hash: store_hash,
        };
        if let Some(rec) = st.jobs.get_mut(&job) {
            rec.curve_hash = Some(store_hash);
            rec.terminal = Some(summary.clone());
        }
        transition(&mut st, job, JobState::Completed);
        if let Some(topic) = st.topics.get(&job) {
            topic.publish(summary);
        }
        self.release(&mut st, job);
        drop(st);
        self.work_bell.notify_all();
    }

    /// Terminal failure.
    pub fn finish_failed(&self, job: JobId, message: String) {
        let mut st = self.lock_state();
        if let Some(rec) = st.jobs.get_mut(&job) {
            rec.error = Some(message.clone());
            rec.terminal = Some(Event::Failed {
                job,
                message: message.clone(),
            });
        }
        transition(&mut st, job, JobState::Failed);
        if let Some(topic) = st.topics.get(&job) {
            topic.publish(Event::Failed { job, message });
        }
        self.release(&mut st, job);
        drop(st);
        self.work_bell.notify_all();
    }

    /// The worker checkpointed and stopped. If a cancel raced in after
    /// the pause was observed, honor it now (`Running → Paused →
    /// Cancelled` — both edges legal, both logged).
    pub fn finish_paused(&self, job: JobId, checkpoint: PathBuf) {
        let mut st = self.lock_state();
        let cancel_raced = st
            .flags
            .get(&job)
            .is_some_and(|f| f.load(Ordering::Acquire) == ctl::CANCEL);
        if let Some(rec) = st.jobs.get_mut(&job) {
            rec.checkpoint = Some(checkpoint.clone());
        }
        transition(&mut st, job, JobState::Paused);
        if cancel_raced {
            if let Some(path) = st.jobs.get_mut(&job).and_then(|r| r.checkpoint.take()) {
                let _ = std::fs::remove_file(path);
            }
            transition(&mut st, job, JobState::Cancelled);
        }
        self.release(&mut st, job);
        drop(st);
        self.work_bell.notify_all();
    }

    /// The worker stopped cooperatively after a cancel.
    pub fn finish_cancelled(&self, job: JobId) {
        let mut st = self.lock_state();
        transition(&mut st, job, JobState::Cancelled);
        self.release(&mut st, job);
        drop(st);
        self.work_bell.notify_all();
    }

    fn release(&self, st: &mut ManagerState, job: JobId) {
        if let Some(rec) = st.jobs.get(&job) {
            let code = rec.spec.engine.code();
            if let Some(n) = st.running.get_mut(&code) {
                *n = n.saturating_sub(1);
            }
        }
        st.flags.remove(&job);
    }

    /// Where checkpoints live.
    pub fn data_dir(&self) -> &std::path::Path {
        &self.data_dir
    }
}

/// Perform and log a state change; publishes the `State` event. Panics on
/// an illegal edge — by construction the manager only calls this on legal
/// ones, and the transition-table test pins the table itself.
fn transition(st: &mut ManagerState, job: JobId, to: JobState) {
    let Some(rec) = st.jobs.get_mut(&job) else {
        return;
    };
    let from = rec.state;
    assert!(
        from.can_transition(to),
        "illegal transition {} -> {} for job {job}",
        from.as_str(),
        to.as_str()
    );
    rec.state = to;
    // Cancellation's terminal event is the `State` change itself; richer
    // terminals (Completed/Failed summaries) are stored by the finish_*
    // methods before they call here.
    if to == JobState::Cancelled {
        rec.terminal = Some(Event::State { job, state: to });
    }
    log_line(st, job, Some(from), to);
    if let Some(topic) = st.topics.get(&job) {
        topic.publish(Event::State { job, state: to });
    }
}

fn log_line(st: &mut ManagerState, job: JobId, from: Option<JobState>, to: JobState) {
    st.seq += 1;
    let seq = st.seq;
    let from = from.map_or("submit", |s| s.as_str());
    let _ = writeln!(st.log, "{seq} job={job} {from} -> {}", to.as_str());
    let _ = st.log.flush();
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::job::{Priority, ScenarioSource};
    use std::time::Duration;

    fn dir(tag: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!("episerve-mgr-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&d);
        d
    }

    fn spec(name: &str) -> JobSpec {
        JobSpec::dsl(name, ptts::dsl::FLU_DSL, EngineSel::Seq)
    }

    #[test]
    fn submit_validates_and_queues() {
        let m = Manager::new(dir("submit"), 2, 16, EngineCaps::default()).unwrap();
        let id = m.submit(spec("a")).unwrap();
        assert_eq!(m.status(id), Some((JobState::Queued, 0)));

        let mut bad = spec("b");
        bad.source = ScenarioSource::Dsl("disease broken\nstate".into());
        assert!(matches!(m.submit(bad), Err(SubmitError::Invalid(_))));

        m.submit(spec("c")).unwrap();
        assert_eq!(m.submit(spec("d")), Err(SubmitError::QueueFull));
    }

    #[test]
    fn lease_respects_engine_caps_and_priority() {
        let caps = EngineCaps {
            seq: 1,
            ..EngineCaps::default()
        };
        let m = Manager::new(dir("caps"), 16, 16, caps).unwrap();
        let a = m.submit(spec("a")).unwrap();
        let mut high = spec("hi");
        high.priority = Priority::High;
        let b = m.submit(high).unwrap();
        let mut thr = spec("thr");
        thr.engine = EngineSel::Threads;
        let c = m.submit(thr).unwrap();

        // High-priority seq job leases first.
        let l1 = m.lease().unwrap();
        assert_eq!(l1.job, b);
        // Seq cap is 1: the next lease must skip job `a` and take the
        // threads job.
        let l2 = m.lease().unwrap();
        assert_eq!(l2.job, c);
        // Freeing the seq slot unblocks `a`.
        m.finish_completed(b);
        let l3 = m.lease().unwrap();
        assert_eq!(l3.job, a);
    }

    #[test]
    fn lifecycle_errors_are_typed() {
        let m = Manager::new(dir("err"), 16, 16, EngineCaps::default()).unwrap();
        assert_eq!(m.pause(99), Err(LifecycleError::NoSuchJob));
        let id = m.submit(spec("a")).unwrap();
        // Pause of a queued job is illegal (Queued -> Paused not an edge).
        assert_eq!(
            m.pause(id),
            Err(LifecycleError::BadTransition {
                state: JobState::Queued
            })
        );
        // Resume of a queued job likewise.
        assert_eq!(
            m.resume(id),
            Err(LifecycleError::BadTransition {
                state: JobState::Queued
            })
        );
        // Cancel from queue works and is terminal.
        assert_eq!(m.cancel(id), Ok(JobState::Cancelled));
        assert_eq!(
            m.cancel(id),
            Err(LifecycleError::BadTransition {
                state: JobState::Cancelled
            })
        );
    }

    #[test]
    fn cancel_of_running_arms_flag_and_worker_finishes() {
        let m = Manager::new(dir("cancel"), 16, 16, EngineCaps::default()).unwrap();
        let id = m.submit(spec("a")).unwrap();
        let lease = m.lease().unwrap();
        assert_eq!(m.cancel(id), Ok(JobState::Running));
        assert_eq!(lease.flag.load(Ordering::Acquire), ctl::CANCEL);
        m.finish_cancelled(id);
        assert_eq!(m.status(id), Some((JobState::Cancelled, 0)));
    }

    #[test]
    fn subscribe_replays_days_and_terminal() {
        let m = Manager::new(dir("sub"), 16, 16, EngineCaps::default()).unwrap();
        let id = m.submit(spec("a")).unwrap();
        let _lease = m.lease().unwrap();
        for day in 0..3 {
            m.day_finished(
                id,
                &DayStats {
                    day,
                    cumulative: 5 + day as u64,
                    ..Default::default()
                },
            );
        }
        m.finish_completed(id);
        let mut sub = m.subscribe(id).unwrap();
        let mut days = 0;
        loop {
            match sub.recv_timeout(Duration::from_secs(1)) {
                Some(Event::Day { .. }) => days += 1,
                Some(Event::Completed {
                    days: n,
                    curve_hash,
                    ..
                }) => {
                    assert_eq!(n, 3);
                    assert_eq!(Some(curve_hash), m.curve_hash_of(id));
                    break;
                }
                other => panic!("unexpected {other:?}"),
            }
        }
        assert_eq!(days, 3);
    }

    #[test]
    fn shutdown_cancels_queued_and_arms_running() {
        let m = Manager::new(dir("shutdown"), 16, 16, EngineCaps::default()).unwrap();
        let running = m.submit(spec("run")).unwrap();
        let queued = m.submit(spec("wait")).unwrap();
        let lease = m.lease().unwrap();
        assert_eq!(lease.job, running);
        m.shutdown();
        assert_eq!(m.status(queued), Some((JobState::Cancelled, 0)));
        assert_eq!(lease.flag.load(Ordering::Acquire), ctl::CANCEL);
        assert!(matches!(
            m.submit(spec("late")),
            Err(SubmitError::ShuttingDown)
        ));
        m.finish_cancelled(running);
        assert!(m.lease().is_none(), "lease drains after shutdown");
    }

    #[test]
    fn pause_cancel_race_lands_in_cancelled_via_paused() {
        let m = Manager::new(dir("race"), 16, 16, EngineCaps::default()).unwrap();
        let id = m.submit(spec("a")).unwrap();
        let lease = m.lease().unwrap();
        assert_eq!(m.pause(id), Ok(JobState::Running));
        // Cancel overwrites the pending pause.
        assert_eq!(m.cancel(id), Ok(JobState::Running));
        assert_eq!(lease.flag.load(Ordering::Acquire), ctl::CANCEL);
        // Worker observed PAUSE before the overwrite and checkpointed
        // anyway: the manager walks Paused -> Cancelled and removes the
        // file.
        let ckpt = m.data_dir().join("job-race.ckpt");
        std::fs::write(&ckpt, b"x").unwrap();
        m.finish_paused(id, ckpt.clone());
        assert_eq!(m.status(id), Some((JobState::Cancelled, 0)));
        assert!(!ckpt.exists(), "raced checkpoint is cleaned up");
    }
}
