//! The *only* wall-clock module in episerve (simlint R2 allowlists this
//! file and nothing else in the crate). The control plane needs real time
//! in exactly two places — client/test wait deadlines and the demo's
//! latency measurements — and both go through [`Deadline`] / [`Stopwatch`]
//! so a grep for `Instant::now` outside this file stays empty. None of
//! this ever feeds the simulation: job execution is day-driven and
//! deterministic regardless of scheduling timing.

use std::time::{Duration, Instant};

/// A fixed point in the future to poll against.
#[derive(Debug, Clone, Copy)]
pub struct Deadline {
    at: Instant,
}

impl Deadline {
    /// A deadline `d` from now.
    pub fn after(d: Duration) -> Deadline {
        Deadline {
            at: Instant::now() + d,
        }
    }

    /// Has the deadline passed?
    pub fn expired(&self) -> bool {
        Instant::now() >= self.at
    }

    /// Time left (zero once expired).
    pub fn remaining(&self) -> Duration {
        self.at.saturating_duration_since(Instant::now())
    }
}

/// Elapsed-time measurement for the demo / experiments.
#[derive(Debug, Clone, Copy)]
pub struct Stopwatch {
    started: Instant,
}

impl Stopwatch {
    /// Start timing.
    pub fn start() -> Stopwatch {
        Stopwatch {
            started: Instant::now(),
        }
    }

    /// Seconds since start.
    pub fn seconds(&self) -> f64 {
        self.started.elapsed().as_secs_f64()
    }

    /// Milliseconds since start.
    pub fn millis(&self) -> f64 {
        self.started.elapsed().as_secs_f64() * 1e3
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deadline_expires_and_remaining_hits_zero() {
        let d = Deadline::after(Duration::from_millis(1));
        std::thread::sleep(Duration::from_millis(5));
        assert!(d.expired());
        assert_eq!(d.remaining(), Duration::ZERO);
        let far = Deadline::after(Duration::from_secs(3600));
        assert!(!far.expired());
        assert!(far.remaining() > Duration::from_secs(3500));
    }

    #[test]
    fn stopwatch_is_monotonic() {
        let w = Stopwatch::start();
        let a = w.seconds();
        let b = w.seconds();
        assert!(b >= a);
        assert!(w.millis() >= b * 1e3);
    }
}
