//! Job model: what a client submits ([`JobSpec`]) and the lifecycle state
//! machine every job walks ([`JobState`]).
//!
//! The state machine is deliberately small and *closed*: every transition
//! the manager performs goes through [`JobState::can_transition`], illegal
//! edges are rejected before any side effect, and the exhaustive
//! transition-table test in this module is the spec of record (mirrored in
//! DESIGN.md §12).

/// Server-assigned job identifier, monotonically increasing from 1.
pub type JobId = u64;

/// Scheduling priority: `High` jobs drain before `Normal` ones; within a
/// class the queue is FIFO.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Priority {
    /// Default class.
    #[default]
    Normal,
    /// Drains first.
    High,
}

impl Priority {
    /// Wire code.
    pub fn code(self) -> u8 {
        match self {
            Priority::Normal => 0,
            Priority::High => 1,
        }
    }

    /// Decode a wire code.
    pub fn from_code(code: u8) -> Option<Priority> {
        match code {
            0 => Some(Priority::Normal),
            1 => Some(Priority::High),
            _ => None,
        }
    }
}

/// Where the scenario comes from: inline ptts DSL text, or the same text
/// plus an explicit sweep grid for ensemble jobs.
#[derive(Debug, Clone, PartialEq)]
pub enum ScenarioSource {
    /// A complete ptts scenario (disease model + optional `sim` /
    /// `intervention` directives) as DSL text, parsed server-side via
    /// `str::parse::<ptts::dsl::Scenario>()`.
    Dsl(String),
    /// Scenario text plus a sweep grid; only valid with
    /// [`EngineSel::Ensemble`].
    Sweep {
        /// Scenario DSL text (the base config for every grid point).
        dsl: String,
        /// Transmissibility grid.
        r_values: Vec<f64>,
        /// Replicate seeds per grid point.
        replicates: u32,
        /// Ensemble worker threads.
        workers: u32,
    },
}

impl ScenarioSource {
    /// The scenario DSL text regardless of variant.
    pub fn dsl(&self) -> &str {
        match self {
            ScenarioSource::Dsl(text) => text,
            ScenarioSource::Sweep { dsl, .. } => dsl,
        }
    }
}

/// Which execution engine runs the job.
///
/// In-server `Net` jobs always run standalone (`n_procs = 1`): the net
/// engine's multi-process mode works by re-executing the *current binary*
/// as SPMD workers, which would fork whole extra servers. Multi-process
/// net runs stay batch-mode (see DESIGN.md §12).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EngineSel {
    /// Deterministic sequential engine.
    Seq,
    /// Real OS threads.
    Threads,
    /// Virtual-time DST engine.
    Vt,
    /// Net engine, standalone process (no comm thread, no workers).
    Net,
    /// Copy-on-write ensemble sweep (`run_sweep`); requires
    /// [`ScenarioSource::Sweep`].
    Ensemble,
}

impl EngineSel {
    /// Wire code.
    pub fn code(self) -> u8 {
        match self {
            EngineSel::Seq => 0,
            EngineSel::Threads => 1,
            EngineSel::Vt => 2,
            EngineSel::Net => 3,
            EngineSel::Ensemble => 4,
        }
    }

    /// Decode a wire code.
    pub fn from_code(code: u8) -> Option<EngineSel> {
        match code {
            0 => Some(EngineSel::Seq),
            1 => Some(EngineSel::Threads),
            2 => Some(EngineSel::Vt),
            3 => Some(EngineSel::Net),
            4 => Some(EngineSel::Ensemble),
            _ => None,
        }
    }

    /// Short display name (matches `EngineChoice`'s CLI spellings).
    pub fn as_str(self) -> &'static str {
        match self {
            EngineSel::Seq => "seq",
            EngineSel::Threads => "threads",
            EngineSel::Vt => "vt",
            EngineSel::Net => "net",
            EngineSel::Ensemble => "ensemble",
        }
    }
}

/// Resource hints: how big a synthetic population to build and how many
/// PEs/partitions to spread it over. The server clamps rather than
/// trusts — see [`JobSpec::validate`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ResourceHints {
    /// Synthetic population size (persons).
    pub pop_size: u32,
    /// Population generator seed.
    pub pop_seed: u64,
    /// Processing elements for the runtime.
    pub n_pes: u32,
    /// Graph partitions (chare pairs) for the data distribution.
    pub n_partitions: u32,
    /// Artificial per-day delay in milliseconds (0 = none). Lets tests
    /// and demos land pause/cancel requests mid-run deterministically on
    /// jobs that would otherwise finish in microseconds; the sleep sits
    /// outside the simulation step, so curve hashes are unaffected.
    pub throttle_ms: u32,
}

impl Default for ResourceHints {
    fn default() -> Self {
        ResourceHints {
            pop_size: 1_000,
            pop_seed: 7,
            n_pes: 2,
            n_partitions: 4,
            throttle_ms: 0,
        }
    }
}

/// Everything the server needs to run one job.
#[derive(Debug, Clone, PartialEq)]
pub struct JobSpec {
    /// Human label (shows up in listings; also names the population).
    pub name: String,
    /// Scenario source.
    pub source: ScenarioSource,
    /// Engine selection.
    pub engine: EngineSel,
    /// Master-seed override (else the scenario's `sim seed=`, else 42).
    pub seed: Option<u64>,
    /// Day-count override (else the scenario's `sim days=`, else 120).
    pub days: Option<u32>,
    /// Scheduling priority.
    pub priority: Priority,
    /// Population / layout sizing.
    pub hints: ResourceHints,
}

/// Bounds enforced by [`JobSpec::validate`].
pub const MAX_POP_SIZE: u32 = 200_000;
/// Smallest population the generator produces sensibly.
pub const MIN_POP_SIZE: u32 = 50;
/// Largest day count a job may request.
pub const MAX_DAYS: u32 = 2_000;
/// Largest per-day throttle a job may request (ms).
pub const MAX_THROTTLE_MS: u32 = 1_000;

impl JobSpec {
    /// A small default spec around inline DSL text — tests and the demo
    /// start from this and override fields.
    pub fn dsl(name: &str, dsl_text: &str, engine: EngineSel) -> JobSpec {
        JobSpec {
            name: name.to_string(),
            source: ScenarioSource::Dsl(dsl_text.to_string()),
            engine,
            seed: None,
            days: None,
            priority: Priority::Normal,
            hints: ResourceHints::default(),
        }
    }

    /// Structural validation performed at submit time, *before* the job is
    /// queued, so a bad spec is rejected synchronously instead of failing
    /// asynchronously in a worker. Checks: the DSL parses, sizing is in
    /// bounds, and the source variant matches the engine (sweeps need the
    /// ensemble engine and vice versa).
    pub fn validate(&self) -> Result<(), String> {
        if self.name.is_empty() {
            return Err("job name must be non-empty".into());
        }
        if let Err(e) = self.source.dsl().parse::<ptts::dsl::Scenario>() {
            return Err(format!("scenario DSL does not parse: {e}"));
        }
        match (&self.source, self.engine) {
            (ScenarioSource::Sweep { .. }, EngineSel::Ensemble) => {}
            (ScenarioSource::Sweep { .. }, other) => {
                return Err(format!(
                    "sweep source requires the ensemble engine, not {}",
                    other.as_str()
                ));
            }
            (ScenarioSource::Dsl(_), EngineSel::Ensemble) => {
                return Err("ensemble engine requires a sweep source".into());
            }
            (ScenarioSource::Dsl(_), _) => {}
        }
        if let ScenarioSource::Sweep {
            r_values,
            replicates,
            workers,
            ..
        } = &self.source
        {
            if r_values.is_empty() {
                return Err("sweep needs at least one r value".into());
            }
            if *replicates == 0 || *workers == 0 {
                return Err("sweep replicates and workers must be >= 1".into());
            }
        }
        if self.hints.pop_size < MIN_POP_SIZE || self.hints.pop_size > MAX_POP_SIZE {
            return Err(format!(
                "pop_size {} outside [{MIN_POP_SIZE}, {MAX_POP_SIZE}]",
                self.hints.pop_size
            ));
        }
        if self.hints.n_pes == 0 || self.hints.n_partitions == 0 {
            return Err("n_pes and n_partitions must be >= 1".into());
        }
        if self.hints.throttle_ms > MAX_THROTTLE_MS {
            return Err(format!(
                "throttle_ms {} exceeds {MAX_THROTTLE_MS}",
                self.hints.throttle_ms
            ));
        }
        if let Some(days) = self.days {
            if days == 0 || days > MAX_DAYS {
                return Err(format!("days {days} outside [1, {MAX_DAYS}]"));
            }
        }
        Ok(())
    }
}

/// The job lifecycle:
///
/// ```text
///            submit            lease              finish
///   (new) ─────────▶ Queued ─────────▶ Running ─────────▶ Completed
///                      │  ▲              │ │ └──────────▶ Failed
///                      │  │ resume  pause│ │cancel
///                      │  └────── Paused◀┘ └────────────▶ Cancelled
///                      │ cancel      │ cancel
///                      └──────────▶ Cancelled ◀──────────┘
/// ```
///
/// `Completed`, `Failed`, and `Cancelled` are terminal. Resume re-enqueues
/// (`Paused → Queued`), so a resumed job waits its turn like any other.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum JobState {
    /// Waiting in the scheduler queue.
    Queued,
    /// Leased to a worker and simulating.
    Running,
    /// Checkpointed at a day boundary; resumable.
    Paused,
    /// Ran to the end (or extinction); curve hash published.
    Completed,
    /// Worker hit an error; message recorded.
    Failed,
    /// Cancelled by the client (from queue, pause, or mid-run).
    Cancelled,
}

impl JobState {
    /// Every state, for exhaustive table tests.
    pub const ALL: [JobState; 6] = [
        JobState::Queued,
        JobState::Running,
        JobState::Paused,
        JobState::Completed,
        JobState::Failed,
        JobState::Cancelled,
    ];

    /// Is this a terminal state (no further transitions)?
    pub fn is_terminal(self) -> bool {
        matches!(
            self,
            JobState::Completed | JobState::Failed | JobState::Cancelled
        )
    }

    /// The legal-transition table. This is the single source of truth:
    /// the manager consults it before every state change.
    pub fn can_transition(self, to: JobState) -> bool {
        use JobState::*;
        matches!(
            (self, to),
            (Queued, Running)
                | (Queued, Cancelled)
                | (Running, Paused)
                | (Running, Completed)
                | (Running, Failed)
                | (Running, Cancelled)
                | (Paused, Queued)
                | (Paused, Cancelled)
        )
    }

    /// Wire code.
    pub fn code(self) -> u8 {
        match self {
            JobState::Queued => 0,
            JobState::Running => 1,
            JobState::Paused => 2,
            JobState::Completed => 3,
            JobState::Failed => 4,
            JobState::Cancelled => 5,
        }
    }

    /// Decode a wire code.
    pub fn from_code(code: u8) -> Option<JobState> {
        match code {
            0 => Some(JobState::Queued),
            1 => Some(JobState::Running),
            2 => Some(JobState::Paused),
            3 => Some(JobState::Completed),
            4 => Some(JobState::Failed),
            5 => Some(JobState::Cancelled),
            _ => None,
        }
    }

    /// Display name (used in the transition log and listings).
    pub fn as_str(self) -> &'static str {
        match self {
            JobState::Queued => "queued",
            JobState::Running => "running",
            JobState::Paused => "paused",
            JobState::Completed => "completed",
            JobState::Failed => "failed",
            JobState::Cancelled => "cancelled",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The exhaustive legal/illegal transition table (ISSUE satellite):
    /// all 36 ordered pairs, each asserted individually against the
    /// diagram in the type docs.
    #[test]
    fn transition_table_is_exactly_the_documented_graph() {
        use JobState::*;
        let legal = [
            (Queued, Running),
            (Queued, Cancelled),
            (Running, Paused),
            (Running, Completed),
            (Running, Failed),
            (Running, Cancelled),
            (Paused, Queued),
            (Paused, Cancelled),
        ];
        for from in JobState::ALL {
            for to in JobState::ALL {
                let want = legal.contains(&(from, to));
                assert_eq!(
                    from.can_transition(to),
                    want,
                    "{} -> {} should be {}",
                    from.as_str(),
                    to.as_str(),
                    if want { "legal" } else { "illegal" }
                );
            }
        }
        assert_eq!(legal.len(), 8, "the graph has exactly 8 edges");
    }

    #[test]
    fn terminal_states_have_no_outgoing_edges() {
        for from in JobState::ALL.into_iter().filter(|s| s.is_terminal()) {
            for to in JobState::ALL {
                assert!(!from.can_transition(to));
            }
        }
        // And no edge *into* Queued except from Paused (resume).
        for from in JobState::ALL {
            if from.can_transition(JobState::Queued) {
                assert_eq!(from, JobState::Paused);
            }
        }
    }

    #[test]
    fn codes_roundtrip() {
        for s in JobState::ALL {
            assert_eq!(JobState::from_code(s.code()), Some(s));
        }
        assert_eq!(JobState::from_code(99), None);
        for p in [Priority::Normal, Priority::High] {
            assert_eq!(Priority::from_code(p.code()), Some(p));
        }
        for e in [
            EngineSel::Seq,
            EngineSel::Threads,
            EngineSel::Vt,
            EngineSel::Net,
            EngineSel::Ensemble,
        ] {
            assert_eq!(EngineSel::from_code(e.code()), Some(e));
        }
    }

    #[test]
    fn validate_rejects_structural_errors() {
        let good = JobSpec::dsl("t", ptts::dsl::FLU_DSL, EngineSel::Seq);
        assert!(good.validate().is_ok());

        let mut bad = good.clone();
        bad.name.clear();
        assert!(bad.validate().is_err());

        let mut bad = good.clone();
        bad.source = ScenarioSource::Dsl("disease broken\nstate".into());
        assert!(bad.validate().unwrap_err().contains("does not parse"));

        let mut bad = good.clone();
        bad.engine = EngineSel::Ensemble;
        assert!(bad.validate().unwrap_err().contains("sweep source"));

        let mut bad = good.clone();
        bad.source = ScenarioSource::Sweep {
            dsl: ptts::dsl::FLU_DSL.into(),
            r_values: vec![0.0004],
            replicates: 2,
            workers: 2,
        };
        assert!(bad.validate().unwrap_err().contains("ensemble engine"));

        let mut bad = good.clone();
        bad.hints.pop_size = 10;
        assert!(bad.validate().is_err());

        let mut bad = good.clone();
        bad.days = Some(0);
        assert!(bad.validate().is_err());

        let mut sweep = good;
        sweep.engine = EngineSel::Ensemble;
        sweep.source = ScenarioSource::Sweep {
            dsl: ptts::dsl::FLU_DSL.into(),
            r_values: vec![0.0004, 0.0008],
            replicates: 2,
            workers: 2,
        };
        assert!(sweep.validate().is_ok());
    }
}
