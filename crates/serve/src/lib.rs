//! # episerve — simulation-as-a-service over the episim engines
//!
//! The paper's workflow is batch: build a population, pick an engine,
//! run, read the curve. This crate wraps that pipeline in a long-lived
//! control plane (DESIGN.md §12): clients submit typed job specs over
//! localhost TCP, a bounded FIFO+priority queue feeds a worker pool with
//! per-engine concurrency caps, and per-day curve points stream back over
//! subscription connections while jobs run. Pause/resume rides the
//! hardened CRC checkpoint format ([`episim_core::checkpoint`]) through
//! [`episim_core::Simulator::resume_from`]; cancel is the cooperative
//! day-boundary stop ([`episim_core::DayControl`]). The determinism
//! contract survives service-ification: a job's completion event carries
//! the same FNV-1a `curve_hash` a direct run of the same spec produces —
//! including jobs that were paused and resumed mid-flight.
//!
//! Modules:
//! * [`protocol`] — CRC-trailed request/response/event codecs inside the
//!   net engine's length-prefixed frames.
//! * [`job`] — [`job::JobSpec`] and the [`job::JobState`] machine.
//! * [`queue`] — the bounded FIFO+priority scheduler queue.
//! * [`manager`] — registry, transition log, lease protocol, topics.
//! * [`pool`] — worker threads driving the four engines.
//! * [`pubsub`] — per-job broadcast with a bounded lagging-subscriber
//!   drop policy.
//! * [`server`] / [`client`] — the TCP front-end and the blocking client.
//! * [`timer`] — the crate's only wall-clock access (simlint R2).

pub mod client;
pub mod job;
pub mod manager;
pub mod pool;
pub mod protocol;
pub mod pubsub;
pub mod queue;
pub mod server;
pub mod timer;

pub use client::{Client, ClientError, EventStream};
pub use job::{EngineSel, JobId, JobSpec, JobState, Priority, ResourceHints, ScenarioSource};
pub use manager::{EngineCaps, LifecycleError, Manager, SubmitError};
pub use pool::{reference_hash, PoolConfig};
pub use protocol::{Event, ProtoError, Request, Response};
pub use pubsub::{Subscription, Topic};
pub use server::{Server, ServerConfig};
pub use timer::{Deadline, Stopwatch};
