//! The worker pool: OS threads that lease jobs from the
//! [`Manager`], build the world, and drive the engines through the
//! day-boundary lifecycle hooks ([`Simulator::run_days_observed`]).
//!
//! A worker is a pure consumer of the lease protocol:
//!
//! * per-day curve points stream out via [`Manager::day_finished`];
//! * a pending pause turns into `dismantle → capture → Checkpoint::save`
//!   (the hardened CRC format) and [`Manager::finish_paused`];
//! * a resumed lease goes through [`Simulator::resume_from`] — the
//!   single validated entry point — so a corrupt or mismatched
//!   checkpoint fails the job with a typed message instead of crashing
//!   the worker;
//! * cancel is the cooperative day-boundary stop ([`DayControl::Stop`]).
//!
//! Panics inside a job (engine bugs, bad downcasts) are caught per-lease
//! and turn into `Failed` transitions; the worker thread survives.

use crate::job::{EngineSel, JobSpec, ScenarioSource};
use crate::manager::{ctl, Lease, Manager};
use episim_core::{
    CowWorld, DataDistribution, DayControl, EngineChoice, EnsembleSpec, RunHalt, SimConfig,
    Simulator, Strategy,
};
use ptts::dsl::Scenario;
use ptts::intervention::InterventionSet;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::Ordering;
use std::sync::Arc;
use std::thread::JoinHandle;
use synthpop::{Population, PopulationConfig};

/// Pool sizing.
#[derive(Debug, Clone, Copy)]
pub struct PoolConfig {
    /// Worker threads (each runs at most one job at a time).
    pub workers: usize,
}

impl Default for PoolConfig {
    fn default() -> Self {
        PoolConfig { workers: 4 }
    }
}

/// Handle over the spawned worker threads.
pub struct Pool {
    handles: Vec<JoinHandle<()>>,
}

/// Spawn `cfg.workers` lease-loop threads against `manager`.
pub fn spawn(manager: Arc<Manager>, cfg: PoolConfig) -> Pool {
    let handles = (0..cfg.workers.max(1))
        .map(|i| {
            let mgr = Arc::clone(&manager);
            std::thread::Builder::new()
                .name(format!("episerve-worker-{i}"))
                .spawn(move || worker_loop(&mgr))
                .unwrap_or_else(|e| panic!("spawn worker {i}: {e}"))
        })
        .collect();
    Pool { handles }
}

impl Pool {
    /// Wait for every worker to drain (they exit once the manager is
    /// shut down and the queue is empty).
    pub fn join(self) {
        for h in self.handles {
            let _ = h.join();
        }
    }
}

fn worker_loop(mgr: &Manager) {
    while let Some(lease) = mgr.lease() {
        let job = lease.job;
        let outcome = catch_unwind(AssertUnwindSafe(|| run_lease(mgr, &lease)));
        if let Err(payload) = outcome {
            let msg = payload
                .downcast_ref::<String>()
                .cloned()
                .or_else(|| payload.downcast_ref::<&str>().map(|s| s.to_string()))
                .unwrap_or_else(|| "worker panicked".to_string());
            mgr.finish_failed(job, format!("panic: {msg}"));
        }
    }
}

/// Resolve the effective simulation config from spec + scenario, with
/// the same defaults `SimConfig::default()` documents.
fn effective_config(spec: &JobSpec, scenario: &Scenario) -> SimConfig {
    let defaults = SimConfig::default();
    SimConfig {
        days: spec.days.or(scenario.sim.days).unwrap_or(defaults.days),
        r: scenario.sim.r.unwrap_or(defaults.r),
        seed: spec.seed.or(scenario.sim.seed).unwrap_or(defaults.seed),
        initial_infections: scenario
            .sim
            .initial_infections
            .unwrap_or(defaults.initial_infections),
        interventions: InterventionSet::new(scenario.interventions.clone()),
        stop_when_extinct: true,
    }
}

/// Build the world a spec describes. Deterministic in the spec: the same
/// hints + seed always produce the same population and distribution,
/// which is what makes server-side curve hashes comparable to direct
/// runs of the same spec.
fn build_distribution(spec: &JobSpec, cfg: &SimConfig) -> DataDistribution {
    let pop = Population::generate(&PopulationConfig::small(
        &spec.name,
        spec.hints.pop_size,
        spec.hints.pop_seed,
    ));
    DataDistribution::build(
        &pop,
        Strategy::GraphPartition,
        spec.hints.n_partitions,
        cfg.seed,
    )
}

/// Run a spec's *uninterrupted twin* in-process and return its curve
/// hash: exactly the world-building and engine selection a pool worker
/// performs, minus the service machinery. The demo and the lifecycle
/// tests compare server completion events against this — the
/// service-ification determinism check.
pub fn reference_hash(spec: &JobSpec) -> Result<u64, String> {
    let scenario: Scenario = spec
        .source
        .dsl()
        .parse()
        .map_err(|e| format!("scenario DSL does not parse: {e}"))?;
    let cfg = effective_config(spec, &scenario);
    let dist = build_distribution(spec, &cfg);
    let choice = match spec.engine {
        EngineSel::Seq => EngineChoice::Seq,
        EngineSel::Threads => EngineChoice::Threads,
        EngineSel::Vt => EngineChoice::Vt,
        EngineSel::Net => EngineChoice::Net,
        EngineSel::Ensemble => {
            return Err("ensemble jobs have no single-curve twin".to_string());
        }
    };
    let rt_cfg = choice.runtime_config(spec.hints.n_pes, 1);
    Ok(Simulator::run_curve(&dist, scenario.ptts.clone(), cfg, rt_cfg).hash())
}

fn run_lease(mgr: &Manager, lease: &Lease) {
    let job = lease.job;
    let scenario: Scenario = match lease.spec.source.dsl().parse() {
        Ok(s) => s,
        Err(e) => {
            mgr.finish_failed(job, format!("scenario DSL does not parse: {e}"));
            return;
        }
    };
    let cfg = effective_config(&lease.spec, &scenario);
    let dist = build_distribution(&lease.spec, &cfg);

    match lease.spec.engine {
        EngineSel::Ensemble => run_ensemble_lease(mgr, lease, &scenario, &cfg, &dist),
        engine => run_engine_lease(mgr, lease, engine, &scenario, cfg, &dist),
    }
}

/// Ensemble sweeps are atomic: one `run_sweep` call, cancel honored only
/// before the sweep starts, terminal summary carries the
/// [`episim_core::ResultStore`] hash as its `curve_hash`.
fn run_ensemble_lease(
    mgr: &Manager,
    lease: &Lease,
    scenario: &Scenario,
    cfg: &SimConfig,
    dist: &DataDistribution,
) {
    let job = lease.job;
    if lease.flag.load(Ordering::Acquire) == ctl::CANCEL {
        mgr.finish_cancelled(job);
        return;
    }
    let ScenarioSource::Sweep {
        r_values,
        replicates,
        workers,
        ..
    } = &lease.spec.source
    else {
        mgr.finish_failed(job, "ensemble job without a sweep source".into());
        return;
    };
    let world = CowWorld::build(dist, scenario.ptts.clone());
    let sweep = EnsembleSpec::grid(cfg, r_values, *replicates);
    let store = episim_core::run_sweep(&world, &sweep, *workers);
    mgr.note_seeds(job, cfg.initial_infections as u64);
    let members = (store.n_points() * store.n_seeds()) as u32;
    mgr.finish_sweep_completed(job, members, store.hash());
}

fn run_engine_lease(
    mgr: &Manager,
    lease: &Lease,
    engine: EngineSel,
    scenario: &Scenario,
    cfg: SimConfig,
    dist: &DataDistribution,
) {
    let job = lease.job;
    let choice = match engine {
        EngineSel::Seq => EngineChoice::Seq,
        EngineSel::Threads => EngineChoice::Threads,
        EngineSel::Vt => EngineChoice::Vt,
        // In-server net jobs run standalone: the SPMD launcher re-execs
        // the current binary, which must never fork extra servers.
        EngineSel::Net => EngineChoice::Net,
        EngineSel::Ensemble => {
            mgr.finish_failed(job, "ensemble engine reached the engine path".into());
            return;
        }
    };
    let rt_cfg = choice.runtime_config(lease.spec.hints.n_pes, 1);
    let end = cfg.days;

    // Fresh start or checkpoint resume through the validated entry.
    let (mut sim, mut carry, start, seeds) = match &lease.checkpoint {
        Some(path) => {
            match Simulator::resume_from(path, dist, scenario.ptts.clone(), cfg.clone(), rt_cfg) {
                Ok(resumed) => (resumed.sim, resumed.carry, resumed.next_day, resumed.seeds),
                Err(e) => {
                    mgr.finish_failed(job, format!("resume refused: {e}"));
                    return;
                }
            }
        }
        None => {
            let seeds = cfg.initial_infections.min(dist.pop.n_people()) as u64;
            let carry = episim_core::simulator::Carry::new(cfg.interventions.clone(), seeds);
            let sim = Simulator::new(dist, scenario.ptts.clone(), cfg.clone(), rt_cfg);
            (sim, carry, 0, seeds)
        }
    };
    mgr.note_seeds(job, seeds);

    let flag = Arc::clone(&lease.flag);
    let throttle = lease.spec.hints.throttle_ms;
    let (_days, _perf, halt) = sim.run_days_observed(start, end, &mut carry, &mut |stats| {
        mgr.day_finished(job, stats);
        if throttle > 0 {
            // Pacing only — outside the simulation step, so the curve
            // (and its hash) is identical with or without it.
            std::thread::sleep(std::time::Duration::from_millis(throttle as u64));
        }
        match flag.load(Ordering::Acquire) {
            ctl::PAUSE => DayControl::Pause,
            ctl::CANCEL => DayControl::Stop,
            _ => DayControl::Continue,
        }
    });

    match halt {
        RunHalt::Finished { .. } => mgr.finish_completed(job),
        RunHalt::Stopped { .. } => mgr.finish_cancelled(job),
        RunHalt::Paused { next_day } => {
            let (states, _features) = sim.dismantle();
            let ckpt = episim_core::checkpoint::capture(next_day, seeds, &carry, states);
            let path = mgr.data_dir().join(format!("job-{job}.epck"));
            match ckpt.save(&path) {
                Ok(()) => mgr.finish_paused(job, path),
                Err(e) => mgr.finish_failed(job, format!("checkpoint save failed: {e}")),
            }
        }
    }
}
