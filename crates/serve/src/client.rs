//! Blocking client for the episerve control plane: one request/response
//! connection per [`Client`], one dedicated streaming connection per
//! [`EventStream`].

use crate::job::{JobId, JobSpec, JobState};
use crate::protocol::{
    decode_event, decode_response, encode_request, kind, Event, ProtoError, Request, Response,
    MAGIC, VERSION,
};
use chare_rt::{read_frame, write_frame};
use std::fmt;
use std::io;
use std::net::TcpStream;

/// Client-side failure surface.
#[derive(Debug)]
pub enum ClientError {
    /// Socket-level failure.
    Io(io::Error),
    /// The server's bytes failed to decode.
    Proto(ProtoError),
    /// The server refused the request ([`crate::protocol::errcode`]).
    Server {
        /// Error code.
        code: u8,
        /// Detail message.
        message: String,
    },
    /// The server answered with the wrong response variant.
    Unexpected(String),
}

impl fmt::Display for ClientError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "io: {e}"),
            ClientError::Proto(e) => write!(f, "protocol: {e}"),
            ClientError::Server { code, message } => write!(f, "server error {code}: {message}"),
            ClientError::Unexpected(what) => write!(f, "unexpected response: {what}"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<io::Error> for ClientError {
    fn from(e: io::Error) -> Self {
        ClientError::Io(e)
    }
}

impl From<ProtoError> for ClientError {
    fn from(e: ProtoError) -> Self {
        ClientError::Proto(e)
    }
}

fn hello(stream: &mut TcpStream) -> Result<(), ClientError> {
    write_frame(
        stream,
        kind::REQUEST,
        &encode_request(&Request::Hello {
            magic: MAGIC,
            version: VERSION,
        }),
    )?;
    match read_response(stream)? {
        Response::HelloOk { .. } => Ok(()),
        Response::Error { code, message } => Err(ClientError::Server { code, message }),
        other => Err(ClientError::Unexpected(format!("{other:?}"))),
    }
}

fn read_response(stream: &mut TcpStream) -> Result<Response, ClientError> {
    let (k, payload, _) = read_frame(stream)?;
    if k != kind::RESPONSE {
        return Err(ClientError::Unexpected(format!("frame kind {k}")));
    }
    Ok(decode_response(&payload)?)
}

/// A request/response connection.
pub struct Client {
    stream: TcpStream,
    addr: String,
}

impl Client {
    /// Connect and handshake.
    pub fn connect(addr: &str) -> Result<Client, ClientError> {
        let mut stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true).ok();
        hello(&mut stream)?;
        Ok(Client {
            stream,
            addr: addr.to_string(),
        })
    }

    fn call(&mut self, req: &Request) -> Result<Response, ClientError> {
        write_frame(&mut self.stream, kind::REQUEST, &encode_request(req))?;
        match read_response(&mut self.stream)? {
            Response::Error { code, message } => Err(ClientError::Server { code, message }),
            resp => Ok(resp),
        }
    }

    /// Queue a job; returns its id.
    pub fn submit(&mut self, spec: &JobSpec) -> Result<JobId, ClientError> {
        match self.call(&Request::Submit { spec: spec.clone() })? {
            Response::Submitted { job } => Ok(job),
            other => Err(ClientError::Unexpected(format!("{other:?}"))),
        }
    }

    /// Request a day-boundary checkpoint-pause.
    pub fn pause(&mut self, job: JobId) -> Result<JobState, ClientError> {
        self.ack(&Request::Pause { job })
    }

    /// Re-enqueue a paused job.
    pub fn resume(&mut self, job: JobId) -> Result<JobState, ClientError> {
        self.ack(&Request::Resume { job })
    }

    /// Cancel a job.
    pub fn cancel(&mut self, job: JobId) -> Result<JobState, ClientError> {
        self.ack(&Request::Cancel { job })
    }

    fn ack(&mut self, req: &Request) -> Result<JobState, ClientError> {
        match self.call(req)? {
            Response::Ack { state, .. } => Ok(state),
            other => Err(ClientError::Unexpected(format!("{other:?}"))),
        }
    }

    /// `(state, days simulated)`.
    pub fn status(&mut self, job: JobId) -> Result<(JobState, u32), ClientError> {
        match self.call(&Request::Status { job })? {
            Response::JobStatus {
                state, days_done, ..
            } => Ok((state, days_done)),
            other => Err(ClientError::Unexpected(format!("{other:?}"))),
        }
    }

    /// Every job the server knows, id-ascending.
    pub fn list(&mut self) -> Result<Vec<(JobId, JobState)>, ClientError> {
        match self.call(&Request::List)? {
            Response::Jobs { jobs } => Ok(jobs),
            other => Err(ClientError::Unexpected(format!("{other:?}"))),
        }
    }

    /// Ask the server to drain and exit.
    pub fn shutdown(&mut self) -> Result<(), ClientError> {
        match self.call(&Request::Shutdown)? {
            Response::Bye => Ok(()),
            other => Err(ClientError::Unexpected(format!("{other:?}"))),
        }
    }

    /// Open a dedicated streaming connection for `job` (replays the
    /// curve so far, then follows live). Returns the job's state at
    /// subscribe time and the stream.
    pub fn subscribe(&self, job: JobId) -> Result<(JobState, EventStream), ClientError> {
        EventStream::open(&self.addr, job)
    }
}

/// A one-way event stream; iterate to drain it. Iteration ends after the
/// job's terminal event (or on disconnect).
pub struct EventStream {
    stream: TcpStream,
    done: bool,
}

impl EventStream {
    /// Connect, handshake, subscribe.
    pub fn open(addr: &str, job: JobId) -> Result<(JobState, EventStream), ClientError> {
        let mut stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true).ok();
        hello(&mut stream)?;
        write_frame(
            &mut stream,
            kind::REQUEST,
            &encode_request(&Request::Subscribe { job }),
        )?;
        match read_response(&mut stream)? {
            Response::Ack { state, .. } => Ok((
                state,
                EventStream {
                    stream,
                    done: false,
                },
            )),
            Response::Error { code, message } => Err(ClientError::Server { code, message }),
            other => Err(ClientError::Unexpected(format!("{other:?}"))),
        }
    }

    /// Drain the stream, invoking `on_day` per curve point, and return
    /// the terminal event. Lagged notices are counted, not surfaced.
    pub fn drain(
        mut self,
        mut on_day: impl FnMut(&episim_core::DayStats),
    ) -> Result<Event, ClientError> {
        let mut lagged = 0u64;
        for ev in &mut self {
            let ev = ev?;
            match &ev {
                Event::Day { stats, .. } => on_day(stats),
                Event::Lagged { missed, .. } => lagged += missed,
                _ => {}
            }
            if ev.is_terminal() {
                let _ = lagged;
                return Ok(ev);
            }
        }
        Err(ClientError::Unexpected(
            "stream ended without a terminal event".to_string(),
        ))
    }
}

impl Iterator for EventStream {
    type Item = Result<Event, ClientError>;

    fn next(&mut self) -> Option<Self::Item> {
        if self.done {
            return None;
        }
        match read_frame(&mut self.stream) {
            Ok((kind::EVENT, payload, _)) => match decode_event(&payload) {
                Ok(ev) => {
                    if ev.is_terminal() {
                        self.done = true;
                    }
                    Some(Ok(ev))
                }
                Err(e) => {
                    self.done = true;
                    Some(Err(ClientError::Proto(e)))
                }
            },
            Ok((k, _, _)) => {
                self.done = true;
                Some(Err(ClientError::Unexpected(format!("frame kind {k}"))))
            }
            Err(e) if e.kind() == io::ErrorKind::UnexpectedEof => {
                self.done = true;
                None
            }
            Err(e) => {
                self.done = true;
                Some(Err(ClientError::Io(e)))
            }
        }
    }
}
