//! Per-job broadcast topics with bounded subscriber queues.
//!
//! Streaming semantics (DESIGN.md §12):
//! * A subscriber joining late first receives a replay of the curve so
//!   far, then follows live — the stream is gapless unless it lags.
//! * Each subscriber owns a bounded queue. When a publish finds the
//!   queue full, the *oldest* queued [`Event::Day`] point is dropped and
//!   a miss is counted; the subscriber sees one [`Event::Lagged`] with
//!   the accumulated count before its next delivered event.
//! * Terminal events ([`Event::is_terminal`]) are never dropped: if the
//!   queue is full of curve points, a curve point is evicted to make
//!   room, so completion summaries (with their `curve_hash`) always
//!   arrive.

use crate::protocol::Event;
use std::collections::VecDeque;
use std::sync::{Arc, Condvar, Mutex};
use std::time::Duration;

struct SubSlot {
    queue: VecDeque<Event>,
    missed: u64,
    /// Set once a terminal event is enqueued; publishes stop after that.
    finished: bool,
    /// Subscriber dropped; slot is garbage.
    closed: bool,
}

struct TopicState {
    subs: Vec<SubSlot>,
}

struct TopicInner {
    topic_state: Mutex<TopicState>,
    bell: Condvar,
    cap: usize,
    job: u64,
}

/// One job's broadcast channel.
#[derive(Clone)]
pub struct Topic {
    inner: Arc<TopicInner>,
}

impl Topic {
    /// A topic whose subscribers buffer at most `cap` events; `job` is
    /// stamped into synthesized [`Event::Lagged`] notices.
    pub fn new(job: u64, cap: usize) -> Topic {
        Topic {
            inner: Arc::new(TopicInner {
                topic_state: Mutex::new(TopicState { subs: Vec::new() }),
                bell: Condvar::new(),
                cap: cap.max(2),
                job,
            }),
        }
    }

    /// Attach a subscriber. `replay` (the curve so far, oldest first) is
    /// preloaded into its queue before any live event, so the stream is
    /// a gapless prefix + live tail. Replay events exceeding the buffer
    /// follow the same drop-oldest policy.
    pub fn subscribe(&self, replay: Vec<Event>) -> Subscription {
        let mut st = lock(&self.inner.topic_state);
        let mut slot = SubSlot {
            queue: VecDeque::new(),
            missed: 0,
            finished: false,
            closed: false,
        };
        for ev in replay {
            enqueue(&mut slot, ev, self.inner.cap);
        }
        // Reuse a closed slot if one exists so long-lived jobs with
        // churning subscribers don't grow the vec unboundedly.
        let idx = match st.subs.iter().position(|s| s.closed) {
            Some(i) => {
                st.subs[i] = slot;
                i
            }
            None => {
                st.subs.push(slot);
                st.subs.len() - 1
            }
        };
        Subscription {
            inner: Arc::clone(&self.inner),
            idx,
        }
    }

    /// Broadcast to every live subscriber.
    pub fn publish(&self, ev: Event) {
        let mut st = lock(&self.inner.topic_state);
        for slot in st.subs.iter_mut().filter(|s| !s.closed && !s.finished) {
            enqueue(slot, ev.clone(), self.inner.cap);
        }
        drop(st);
        self.inner.bell.notify_all();
    }

    /// Live (non-closed) subscriber count.
    pub fn subscriber_count(&self) -> usize {
        lock(&self.inner.topic_state)
            .subs
            .iter()
            .filter(|s| !s.closed)
            .count()
    }
}

fn enqueue(slot: &mut SubSlot, ev: Event, cap: usize) {
    if ev.is_terminal() {
        slot.finished = true;
    }
    if slot.queue.len() >= cap {
        // Evict the oldest *droppable* event; terminal events are
        // protected. Day points dominate in practice, so this is O(1)
        // amortized.
        if let Some(pos) = slot.queue.iter().position(|q| !q.is_terminal()) {
            slot.queue.remove(pos);
            slot.missed += 1;
        }
    }
    slot.queue.push_back(ev);
}

fn lock<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    match m.lock() {
        Ok(g) => g,
        Err(poison) => poison.into_inner(),
    }
}

/// One subscriber's receive handle. Dropping it closes the slot.
pub struct Subscription {
    inner: Arc<TopicInner>,
    idx: usize,
}

impl Subscription {
    /// Next event, waiting up to `timeout`. Returns `None` on timeout.
    /// If deliveries were dropped since the last call, an
    /// [`Event::Lagged`] carrying the miss count is synthesized *first*,
    /// so consumers always learn about gaps in order.
    pub fn recv_timeout(&mut self, timeout: Duration) -> Option<Event> {
        let mut st = lock(&self.inner.topic_state);
        loop {
            if let Some(slot) = st.subs.get_mut(self.idx) {
                if slot.missed > 0 {
                    let missed = slot.missed;
                    slot.missed = 0;
                    return Some(Event::Lagged {
                        job: self.inner.job,
                        missed,
                    });
                }
                if let Some(ev) = slot.queue.pop_front() {
                    return Some(ev);
                }
            }
            let (next, res) = match self.inner.bell.wait_timeout(st, timeout) {
                Ok(pair) => pair,
                Err(poison) => {
                    let (g, res) = poison.into_inner();
                    (g, res)
                }
            };
            st = next;
            if res.timed_out() {
                return None;
            }
        }
    }
}

impl Drop for Subscription {
    fn drop(&mut self) {
        let mut st = lock(&self.inner.topic_state);
        if let Some(slot) = st.subs.get_mut(self.idx) {
            slot.closed = true;
            slot.queue.clear();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::job::JobState;
    use episim_core::DayStats;

    fn day(job: u64, day: u32) -> Event {
        Event::Day {
            job,
            stats: DayStats {
                day,
                ..Default::default()
            },
        }
    }

    #[test]
    fn replay_then_live_is_gapless() {
        let t = Topic::new(1, 64);
        let mut sub = t.subscribe(vec![day(1, 0), day(1, 1)]);
        t.publish(day(1, 2));
        for want in 0..3 {
            match sub.recv_timeout(Duration::from_secs(1)) {
                Some(Event::Day { stats, .. }) => assert_eq!(stats.day, want),
                other => panic!("expected day {want}, got {other:?}"),
            }
        }
    }

    #[test]
    fn overflow_drops_oldest_and_synthesizes_lagged() {
        let t = Topic::new(9, 4);
        let mut sub = t.subscribe(Vec::new());
        for d in 0..10 {
            t.publish(day(9, d));
        }
        // 10 published into a 4-slot buffer: 6 dropped, oldest first.
        match sub.recv_timeout(Duration::from_secs(1)) {
            Some(Event::Lagged { job, missed }) => {
                assert_eq!((job, missed), (9, 6));
            }
            other => panic!("expected Lagged first, got {other:?}"),
        }
        let mut got = Vec::new();
        while let Some(Event::Day { stats, .. }) = sub.recv_timeout(Duration::from_millis(50)) {
            got.push(stats.day);
        }
        assert_eq!(got, [6, 7, 8, 9], "survivors are the newest, in order");
    }

    #[test]
    fn terminal_events_survive_overflow() {
        let t = Topic::new(2, 2);
        let mut sub = t.subscribe(Vec::new());
        t.publish(day(2, 0));
        t.publish(day(2, 1));
        t.publish(Event::Completed {
            job: 2,
            days: 2,
            cumulative: 5,
            curve_hash: 0xabc,
        });
        // Buffer cap 2: the completion evicted a day point, never itself.
        let mut saw_completed = false;
        let mut first = true;
        while let Some(ev) = sub.recv_timeout(Duration::from_millis(50)) {
            if first {
                assert!(matches!(ev, Event::Lagged { missed: 1, .. }));
                first = false;
            }
            if let Event::Completed { curve_hash, .. } = ev {
                assert_eq!(curve_hash, 0xabc);
                saw_completed = true;
            }
        }
        assert!(saw_completed);
    }

    #[test]
    fn publishes_after_terminal_are_ignored() {
        let t = Topic::new(3, 8);
        let mut sub = t.subscribe(Vec::new());
        t.publish(Event::State {
            job: 3,
            state: JobState::Cancelled,
        });
        t.publish(day(3, 0));
        assert!(sub
            .recv_timeout(Duration::from_millis(50))
            .is_some_and(|ev| ev.is_terminal()));
        assert!(sub.recv_timeout(Duration::from_millis(50)).is_none());
    }

    #[test]
    fn dropped_subscription_slot_is_reused() {
        let t = Topic::new(4, 8);
        let sub = t.subscribe(Vec::new());
        assert_eq!(t.subscriber_count(), 1);
        drop(sub);
        assert_eq!(t.subscriber_count(), 0);
        let _sub2 = t.subscribe(Vec::new());
        assert_eq!(t.subscriber_count(), 1);
        assert_eq!(
            lock(&t.inner.topic_state).subs.len(),
            1,
            "slot reused, not grown"
        );
    }
}
