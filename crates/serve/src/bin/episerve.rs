//! The episerve server binary.
//!
//! ```text
//! episerve [--addr 127.0.0.1:7app] [--data-dir DIR] [--workers N]
//!          [--queue-cap N] [--topic-cap N]
//! ```
//!
//! Prints the bound address on stdout (`listening on <addr>`), then
//! serves until a client sends `Shutdown` (or the process receives a
//! signal).

use episerve::{PoolConfig, Server, ServerConfig};
use std::path::PathBuf;
use std::process::ExitCode;

fn usage() -> ExitCode {
    eprintln!(
        "usage: episerve [--addr HOST:PORT] [--data-dir DIR] [--workers N] \
         [--queue-cap N] [--topic-cap N]"
    );
    ExitCode::FAILURE
}

fn main() -> ExitCode {
    let mut cfg = ServerConfig::local(PathBuf::from("episerve-data"));
    let mut args = std::env::args().skip(1);
    while let Some(flag) = args.next() {
        let Some(value) = args.next() else {
            return usage();
        };
        match flag.as_str() {
            "--addr" => cfg.addr = value,
            "--data-dir" => cfg.data_dir = PathBuf::from(value),
            "--workers" => match value.parse() {
                Ok(n) => cfg.pool = PoolConfig { workers: n },
                Err(_) => return usage(),
            },
            "--queue-cap" => match value.parse() {
                Ok(n) => cfg.queue_cap = n,
                Err(_) => return usage(),
            },
            "--topic-cap" => match value.parse() {
                Ok(n) => cfg.topic_cap = n,
                Err(_) => return usage(),
            },
            _ => return usage(),
        }
    }
    match Server::start(cfg) {
        Ok(server) => {
            println!("listening on {}", server.addr());
            server.join();
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("episerve: {e}");
            ExitCode::FAILURE
        }
    }
}
