//! # ptts — disease dynamics for EpiSimdemics-rs
//!
//! This crate implements the *health-state* side of the EpiSimdemics
//! contagion simulator described in Yeom et al., *Overcoming the Scalability
//! Challenges of Epidemic Simulations on Blue Waters* (IPDPS 2014):
//!
//! * [`model`] — the **probabilistic timed transition system** (PTTS): a
//!   finite state machine whose states carry a *dwell time* distribution and
//!   whose transitions are probabilistic and selected by the *treatment* a
//!   person has received (§II-A of the paper).
//! * [`disease`] — ready-made disease models (an influenza-like illness used
//!   throughout the evaluation).
//! * [`transmission`] — the pairwise transmission function of
//!   Barrett et al. (SC'08), `p = 1 − (1 − r·s_i·ι_j)^τ`, and its combined
//!   per-susceptible form.
//! * [`dsl`] — a small domain-specific language for specifying diseases and
//!   interventions in text form (the paper cites a DSL for "complex
//!   interventions and behavior" \[6\]).
//! * [`intervention`] — public-policy interventions (vaccination, school
//!   closure, social distancing) with triggers.
//! * [`crng`] — a counter-based deterministic RNG so that simulation output
//!   is bit-reproducible regardless of parallel message interleaving.

pub mod crng;
pub mod disease;
pub mod dsl;
pub mod intervention;
pub mod model;
pub mod transmission;

pub use crng::CounterRng;
pub use disease::{flu_model, seirs_model, sir_model};
pub use intervention::{Action, Intervention, InterventionSet, Trigger};
pub use model::{
    DwellDist, HealthTracker, Ptts, PttsBuilder, StateId, TransitionTable, TreatmentId,
};
pub use transmission::{combined_infection_prob, infection_prob};
