//! Public-policy interventions.
//!
//! EpiSimdemics was used during the 2009 H1N1 response to run
//! course-of-action analyses "to estimate the impact of closing schools and
//! shutting down workplaces" (§I). This module implements the intervention
//! machinery: *triggers* (when does a policy activate) and *actions* (what
//! it does), evaluated once per simulated day against global epidemic
//! observables.
//!
//! Location kinds are referenced by their numeric id so this crate stays
//! independent of the population-synthesis crate; `synthpop::LocationKind`
//! uses matching discriminants.

use crate::crng::{CounterRng, Purpose};
use crate::model::TreatmentId;
use serde::{Deserialize, Serialize};

/// Maximum number of distinct location kinds an intervention can target.
pub const MAX_LOCATION_KINDS: usize = 8;

/// When an intervention activates.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum Trigger {
    /// On a fixed simulation day.
    Day(u32),
    /// When prevalence (currently-infected fraction) first exceeds this.
    PrevalenceAbove(f64),
    /// When the day's new-infection count first exceeds this.
    NewCasesAbove(u64),
    /// When cumulative infections first exceed this fraction of the
    /// population (attack rate).
    AttackRateAbove(f64),
}

/// What an intervention does while active.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum Action {
    /// Vaccinate a random `fraction` of the still-susceptible population,
    /// switching them to `treatment` and scaling their susceptibility by
    /// `efficacy_factor` (0 = perfect vaccine, 1 = no protection).
    /// Applied once, on the activation day.
    Vaccinate {
        fraction: f64,
        treatment: TreatmentId,
        efficacy_factor: f64,
    },
    /// Close all locations of the given kind for `duration` days; visits to
    /// closed locations are dropped.
    CloseKind { kind: u8, duration: u32 },
    /// Social distancing: a `compliance` fraction of contacts have their
    /// effective transmissibility scaled by `factor` for `duration` days.
    /// Modeled as a global scale `1 − compliance·(1 − factor)` on `r`.
    SocialDistance {
        compliance: f64,
        factor: f64,
        duration: u32,
    },
}

/// A trigger–action pair. Each intervention fires at most once.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Intervention {
    /// Activation condition.
    pub trigger: Trigger,
    /// Behaviour while active.
    pub action: Action,
}

/// Global epidemic observables an intervention trigger can test, supplied
/// by the simulator each day.
#[derive(Debug, Clone, Copy, Default)]
pub struct DayObservables {
    /// Simulation day (0-based).
    pub day: u32,
    /// Currently infected (non-susceptible, non-removed) count.
    pub infected_now: u64,
    /// New infections recorded yesterday.
    pub new_cases: u64,
    /// Cumulative infections so far.
    pub cumulative: u64,
    /// Total population.
    pub population: u64,
}

impl DayObservables {
    fn prevalence(&self) -> f64 {
        if self.population == 0 {
            0.0
        } else {
            self.infected_now as f64 / self.population as f64
        }
    }

    fn attack_rate(&self) -> f64 {
        if self.population == 0 {
            0.0
        } else {
            self.cumulative as f64 / self.population as f64
        }
    }
}

/// A one-shot vaccination order produced on an activation day.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct VaccinationOrder {
    /// Fraction of susceptibles to vaccinate (per-person compliance draw).
    pub fraction: f64,
    /// Treatment to assign.
    pub treatment: TreatmentId,
    /// Susceptibility multiplier for vaccinated persons.
    pub efficacy_factor: f64,
}

impl VaccinationOrder {
    /// Decide, deterministically, whether `person` complies with this
    /// order issued on `day`.
    pub fn applies_to(&self, seed: u64, person: u64, day: u64) -> bool {
        CounterRng::for_entity(seed, person, day, Purpose::Compliance).bernoulli(self.fraction)
    }
}

/// The effects in force on a given day, consumed by the simulator.
#[derive(Debug, Clone, PartialEq)]
pub struct ActiveEffects {
    /// `closed_kinds[k]` — locations of kind `k` accept no visits today.
    pub closed_kinds: [bool; MAX_LOCATION_KINDS],
    /// Multiplier on the disease transmissibility `r` (≤ 1).
    pub r_scale: f64,
    /// Vaccination orders activating today (applied once).
    pub vaccinations: Vec<VaccinationOrder>,
}

impl Default for ActiveEffects {
    fn default() -> Self {
        ActiveEffects {
            closed_kinds: [false; MAX_LOCATION_KINDS],
            r_scale: 1.0,
            vaccinations: Vec::new(),
        }
    }
}

#[derive(Debug, Clone, Copy)]
struct ActiveWindow {
    action: Action,
    /// Day the action stops applying (exclusive).
    end_day: u32,
    /// Index of the intervention this window came from (for snapshots).
    source: u32,
}

/// A set of interventions plus their runtime activation state.
#[derive(Debug, Clone, Default)]
pub struct InterventionSet {
    interventions: Vec<Intervention>,
    fired: Vec<bool>,
    active: Vec<ActiveWindow>,
}

impl InterventionSet {
    /// Build from a list of interventions.
    pub fn new(interventions: Vec<Intervention>) -> Self {
        let fired = vec![false; interventions.len()];
        InterventionSet {
            interventions,
            fired,
            active: Vec::new(),
        }
    }

    /// No interventions at all.
    pub fn none() -> Self {
        Self::new(Vec::new())
    }

    /// The configured interventions.
    pub fn interventions(&self) -> &[Intervention] {
        &self.interventions
    }

    /// Evaluate triggers for `obs.day` and return the effects in force.
    /// Must be called exactly once per day, in day order.
    pub fn evaluate(&mut self, obs: &DayObservables) -> ActiveEffects {
        // Fire newly-triggered interventions.
        for i in 0..self.interventions.len() {
            if self.fired[i] {
                continue;
            }
            let iv = self.interventions[i];
            let fire = match iv.trigger {
                Trigger::Day(d) => obs.day >= d,
                Trigger::PrevalenceAbove(p) => obs.prevalence() > p,
                Trigger::NewCasesAbove(n) => obs.new_cases > n,
                Trigger::AttackRateAbove(a) => obs.attack_rate() > a,
            };
            if fire {
                self.fired[i] = true;
                let duration = match iv.action {
                    Action::Vaccinate { .. } => 1, // one-shot
                    Action::CloseKind { duration, .. }
                    | Action::SocialDistance { duration, .. } => duration,
                };
                self.active.push(ActiveWindow {
                    action: iv.action,
                    end_day: obs.day.saturating_add(duration.max(1)),
                    source: i as u32,
                });
            }
        }
        // Collect effects from active windows; drop expired ones.
        let mut effects = ActiveEffects::default();
        let day = obs.day;
        self.active.retain(|w| w.end_day > day);
        for w in &self.active {
            match w.action {
                Action::Vaccinate {
                    fraction,
                    treatment,
                    efficacy_factor,
                } => {
                    // Only on the activation day (duration 1 ⇒ end_day-1).
                    if day + 1 == w.end_day {
                        effects.vaccinations.push(VaccinationOrder {
                            fraction: fraction.clamp(0.0, 1.0),
                            treatment,
                            efficacy_factor: efficacy_factor.clamp(0.0, 1.0),
                        });
                    }
                }
                Action::CloseKind { kind, .. } => {
                    if (kind as usize) < MAX_LOCATION_KINDS {
                        effects.closed_kinds[kind as usize] = true;
                    }
                }
                Action::SocialDistance {
                    compliance, factor, ..
                } => {
                    let scale = 1.0 - compliance.clamp(0.0, 1.0) * (1.0 - factor.clamp(0.0, 1.0));
                    effects.r_scale *= scale;
                }
            }
        }
        effects
    }
}

/// Serializable activation state of an [`InterventionSet`] — which
/// interventions have fired and which windows are still open — for
/// checkpoint/restart.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct InterventionSnapshot {
    /// Fired flag per configured intervention.
    pub fired: Vec<bool>,
    /// Open windows as `(intervention index, end_day)`.
    pub active: Vec<(u32, u32)>,
}

impl InterventionSet {
    /// Capture the activation state.
    pub fn snapshot(&self) -> InterventionSnapshot {
        InterventionSnapshot {
            fired: self.fired.clone(),
            active: self.active.iter().map(|w| (w.source, w.end_day)).collect(),
        }
    }

    /// Rebuild a set from its configuration plus a snapshot.
    ///
    /// # Panics
    /// Panics if the snapshot does not match the configuration's length or
    /// references an out-of-range intervention.
    pub fn restore(interventions: Vec<Intervention>, snap: &InterventionSnapshot) -> Self {
        assert_eq!(
            interventions.len(),
            snap.fired.len(),
            "snapshot does not match the intervention list"
        );
        let active = snap
            .active
            .iter()
            .map(|&(source, end_day)| ActiveWindow {
                action: interventions[source as usize].action,
                end_day,
                source,
            })
            .collect();
        InterventionSet {
            interventions,
            fired: snap.fired.clone(),
            active,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn obs(day: u32, infected: u64, new_cases: u64, cumulative: u64) -> DayObservables {
        DayObservables {
            day,
            infected_now: infected,
            new_cases,
            cumulative,
            population: 1000,
        }
    }

    #[test]
    fn day_trigger_fires_once() {
        let mut set = InterventionSet::new(vec![Intervention {
            trigger: Trigger::Day(3),
            action: Action::Vaccinate {
                fraction: 0.5,
                treatment: TreatmentId(1),
                efficacy_factor: 0.3,
            },
        }]);
        assert!(set.evaluate(&obs(0, 0, 0, 0)).vaccinations.is_empty());
        assert!(set.evaluate(&obs(2, 0, 0, 0)).vaccinations.is_empty());
        let e3 = set.evaluate(&obs(3, 0, 0, 0));
        assert_eq!(e3.vaccinations.len(), 1);
        assert_eq!(e3.vaccinations[0].fraction, 0.5);
        // Fires only once.
        assert!(set.evaluate(&obs(4, 0, 0, 0)).vaccinations.is_empty());
    }

    #[test]
    fn closure_lasts_for_duration() {
        let mut set = InterventionSet::new(vec![Intervention {
            trigger: Trigger::PrevalenceAbove(0.01),
            action: Action::CloseKind {
                kind: 2,
                duration: 3,
            },
        }]);
        assert!(!set.evaluate(&obs(0, 5, 0, 5)).closed_kinds[2]); // 0.5% ≤ 1%
        assert!(set.evaluate(&obs(1, 20, 0, 20)).closed_kinds[2]); // 2% > 1%
        assert!(set.evaluate(&obs(2, 20, 0, 40)).closed_kinds[2]);
        assert!(set.evaluate(&obs(3, 20, 0, 60)).closed_kinds[2]);
        assert!(!set.evaluate(&obs(4, 20, 0, 80)).closed_kinds[2]); // expired
    }

    #[test]
    fn distancing_scales_r() {
        let mut set = InterventionSet::new(vec![Intervention {
            trigger: Trigger::NewCasesAbove(10),
            action: Action::SocialDistance {
                compliance: 0.5,
                factor: 0.4,
                duration: 2,
            },
        }]);
        assert_eq!(set.evaluate(&obs(0, 0, 10, 10)).r_scale, 1.0); // not strictly above
        let e = set.evaluate(&obs(1, 0, 11, 21));
        // 1 − 0.5·(1 − 0.4) = 0.7
        assert!((e.r_scale - 0.7).abs() < 1e-12);
        assert!((set.evaluate(&obs(2, 0, 0, 21)).r_scale - 0.7).abs() < 1e-12);
        assert_eq!(set.evaluate(&obs(3, 0, 0, 21)).r_scale, 1.0);
    }

    #[test]
    fn attack_rate_trigger() {
        let mut set = InterventionSet::new(vec![Intervention {
            trigger: Trigger::AttackRateAbove(0.1),
            action: Action::CloseKind {
                kind: 0,
                duration: 1,
            },
        }]);
        assert!(!set.evaluate(&obs(0, 0, 0, 100)).closed_kinds[0]); // exactly 10%
        assert!(set.evaluate(&obs(1, 0, 0, 101)).closed_kinds[0]);
    }

    #[test]
    fn multiple_distancing_effects_compose() {
        let mut set = InterventionSet::new(vec![
            Intervention {
                trigger: Trigger::Day(0),
                action: Action::SocialDistance {
                    compliance: 1.0,
                    factor: 0.5,
                    duration: 5,
                },
            },
            Intervention {
                trigger: Trigger::Day(0),
                action: Action::SocialDistance {
                    compliance: 1.0,
                    factor: 0.5,
                    duration: 5,
                },
            },
        ]);
        let e = set.evaluate(&obs(0, 0, 0, 0));
        assert!((e.r_scale - 0.25).abs() < 1e-12);
    }

    #[test]
    fn vaccination_compliance_is_deterministic_and_near_fraction() {
        let order = VaccinationOrder {
            fraction: 0.3,
            treatment: TreatmentId(1),
            efficacy_factor: 0.2,
        };
        let n = 20_000u64;
        let count = (0..n).filter(|&p| order.applies_to(5, p, 10)).count();
        let frac = count as f64 / n as f64;
        assert!((frac - 0.3).abs() < 0.01, "{frac}");
        // Determinism.
        assert_eq!(order.applies_to(5, 123, 10), order.applies_to(5, 123, 10));
    }

    #[test]
    fn snapshot_restore_round_trip() {
        let ivs = vec![
            Intervention {
                trigger: Trigger::Day(1),
                action: Action::CloseKind {
                    kind: 2,
                    duration: 10,
                },
            },
            Intervention {
                trigger: Trigger::Day(100),
                action: Action::SocialDistance {
                    compliance: 1.0,
                    factor: 0.5,
                    duration: 5,
                },
            },
        ];
        let mut set = InterventionSet::new(ivs.clone());
        set.evaluate(&obs(0, 0, 0, 0));
        set.evaluate(&obs(1, 0, 0, 0)); // fires the closure
        let snap = set.snapshot();
        assert_eq!(snap.fired, vec![true, false]);
        assert_eq!(snap.active.len(), 1);
        // Restore must behave identically for the remaining days.
        let mut restored = InterventionSet::restore(ivs, &snap);
        for day in 2..15 {
            let a = set.evaluate(&obs(day, 0, 0, 0));
            let b = restored.evaluate(&obs(day, 0, 0, 0));
            assert_eq!(a, b, "day {day}");
        }
    }

    #[test]
    fn out_of_range_kind_is_ignored() {
        let mut set = InterventionSet::new(vec![Intervention {
            trigger: Trigger::Day(0),
            action: Action::CloseKind {
                kind: MAX_LOCATION_KINDS as u8,
                duration: 5,
            },
        }]);
        let e = set.evaluate(&obs(0, 0, 0, 0));
        assert!(e.closed_kinds.iter().all(|&c| !c));
    }
}
