//! The EpiSimdemics transmission function.
//!
//! EpiSimdemics (and Perumalla & Seal's comparator, which "uses the same
//! disease model and transmission function", §VI) computes the probability
//! that susceptible person *i* is infected by infectious person *j* after
//! being co-located for a contact duration τ as
//!
//! ```text
//! p_ij = 1 − (1 − r · s_i · ι_j)^τ
//! ```
//!
//! where `r` is the per-unit-time transmissibility of the disease, `s_i` the
//! susceptibility of *i*'s health state and `ι_j` the infectivity of *j*'s
//! state (Barrett et al., SC'08). Over a day at one location, the combined
//! escape probability multiplies across all infectious contacts.

/// Probability that one susceptible–infectious contact of `tau` time units
/// transmits. All inputs are clamped to valid ranges; `tau` is in the same
/// unit `r` is expressed per (we use minutes).
#[inline]
pub fn infection_prob(r: f64, susceptibility: f64, infectivity: f64, tau: f64) -> f64 {
    let per_unit = (r * susceptibility * infectivity).clamp(0.0, 1.0);
    if per_unit == 0.0 || tau <= 0.0 {
        return 0.0;
    }
    if per_unit >= 1.0 {
        return 1.0;
    }
    // 1 − (1−q)^τ via ln1p/exp for numerical robustness at small q·τ.
    1.0 - (tau * (-per_unit).ln_1p()).exp()
}

/// Combined infection probability for a susceptible exposed to several
/// infectious contacts: `1 − Π_j (1 − p_j)`.
///
/// `contacts` yields `(infectivity_j, tau_j)` pairs.
#[inline]
pub fn combined_infection_prob<I>(r: f64, susceptibility: f64, contacts: I) -> f64
where
    I: IntoIterator<Item = (f64, f64)>,
{
    // Accumulate log escape probability to avoid underflow with many
    // contacts.
    let mut log_escape = 0.0f64;
    for (inf, tau) in contacts {
        let p = infection_prob(r, susceptibility, inf, tau);
        if p >= 1.0 {
            return 1.0;
        }
        log_escape += (-p).ln_1p();
    }
    1.0 - log_escape.exp()
}

/// Given the combined probability and the per-contact probabilities, select
/// which contact is credited as the infector, proportionally to each
/// contact's hazard. `u` is a uniform draw in `[0,1)`. Returns the index of
/// the selected contact, or `None` if `probs` is empty or all-zero.
pub fn select_infector(probs: &[f64], u: f64) -> Option<usize> {
    // A certain contact (p = 1) has infinite hazard and wins outright.
    if let Some(i) = probs.iter().position(|&p| p >= 1.0) {
        return Some(i);
    }
    let total: f64 = probs.iter().map(|&p| hazard(p)).sum();
    if total <= 0.0 {
        return None;
    }
    let target = u.clamp(0.0, 1.0 - f64::EPSILON) * total;
    let mut acc = 0.0;
    for (i, &p) in probs.iter().enumerate() {
        acc += hazard(p);
        if target < acc {
            return Some(i);
        }
    }
    Some(probs.len() - 1)
}

/// Convert an infection probability to a cumulative hazard, the correct
/// weight when attributing an infection among competing contacts.
#[inline]
fn hazard(p: f64) -> f64 {
    if p >= 1.0 {
        f64::INFINITY
    } else {
        -(-p).ln_1p()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_inputs_give_zero() {
        assert_eq!(infection_prob(0.0, 1.0, 1.0, 60.0), 0.0);
        assert_eq!(infection_prob(0.01, 0.0, 1.0, 60.0), 0.0);
        assert_eq!(infection_prob(0.01, 1.0, 0.0, 60.0), 0.0);
        assert_eq!(infection_prob(0.01, 1.0, 1.0, 0.0), 0.0);
    }

    #[test]
    fn probability_bounds() {
        for &r in &[1e-6, 1e-3, 0.1, 0.9, 2.0] {
            for &tau in &[0.1, 1.0, 60.0, 1440.0] {
                let p = infection_prob(r, 1.0, 1.0, tau);
                assert!((0.0..=1.0).contains(&p), "p={p} r={r} tau={tau}");
            }
        }
    }

    #[test]
    fn monotone_in_duration_and_rate() {
        let p1 = infection_prob(0.001, 1.0, 1.0, 30.0);
        let p2 = infection_prob(0.001, 1.0, 1.0, 60.0);
        let p3 = infection_prob(0.002, 1.0, 1.0, 30.0);
        assert!(p2 > p1);
        assert!(p3 > p1);
    }

    #[test]
    fn matches_closed_form() {
        // p = 1 − (1−q)^τ
        let q: f64 = 0.01 * 0.8 * 0.5;
        let tau = 45.0;
        let expected = 1.0 - (1.0 - q).powf(tau);
        let got = infection_prob(0.01, 0.8, 0.5, tau);
        assert!((got - expected).abs() < 1e-12, "{got} vs {expected}");
    }

    #[test]
    fn combined_equals_product_of_escapes() {
        let contacts = [(1.0, 30.0), (0.5, 60.0), (0.25, 120.0)];
        let r = 0.002;
        let escape: f64 = contacts
            .iter()
            .map(|&(inf, tau)| 1.0 - infection_prob(r, 1.0, inf, tau))
            .product();
        let got = combined_infection_prob(r, 1.0, contacts.iter().copied());
        assert!((got - (1.0 - escape)).abs() < 1e-12);
    }

    #[test]
    fn combined_empty_is_zero() {
        assert_eq!(combined_infection_prob(0.01, 1.0, std::iter::empty()), 0.0);
    }

    #[test]
    fn combined_exceeds_any_single() {
        let r = 0.001;
        let single = infection_prob(r, 1.0, 1.0, 60.0);
        let both = combined_infection_prob(r, 1.0, [(1.0, 60.0), (1.0, 60.0)]);
        assert!(both > single);
        assert!(both < 2.0 * single); // sub-additive
    }

    #[test]
    fn saturating_rate_caps_at_one() {
        assert_eq!(infection_prob(2.0, 1.0, 1.0, 5.0), 1.0);
        assert_eq!(combined_infection_prob(2.0, 1.0, [(1.0, 5.0)]), 1.0);
    }

    #[test]
    fn infector_selection_weighted() {
        // Contact 1 has ~3x the hazard of contact 0; over a sweep of u the
        // selection frequency should reflect that.
        let probs = [0.1, 0.28];
        let n = 10_000;
        let ones = (0..n)
            .filter(|&i| select_infector(&probs, i as f64 / n as f64) == Some(1))
            .count();
        let frac = ones as f64 / n as f64;
        let h0 = -(1.0f64 - probs[0]).ln();
        let h1 = -(1.0f64 - probs[1]).ln();
        let expected = h1 / (h0 + h1);
        assert!((frac - expected).abs() < 0.01, "{frac} vs {expected}");
    }

    #[test]
    fn infector_selection_edge_cases() {
        assert_eq!(select_infector(&[], 0.5), None);
        assert_eq!(select_infector(&[0.0, 0.0], 0.5), None);
        assert_eq!(select_infector(&[0.0, 0.4], 0.99), Some(1));
        assert_eq!(select_infector(&[1.0, 0.4], 0.0), Some(0)); // certain contact wins
    }
}
