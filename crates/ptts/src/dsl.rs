//! A small domain-specific language for disease models and interventions.
//!
//! The paper notes that "EpiSimdemics has a domain-specific language for
//! specifying complex interventions and behavior, such as vaccinations,
//! school closures, and anxiety levels" (§II-A, citing \[6\]). This module
//! implements a line-oriented text format covering the same ground:
//!
//! ```text
//! # influenza-like illness
//! disease flu
//! treatments 2
//! state susceptible  inf=0.0  sus=1.0  dwell=forever
//! state latent       inf=0.0  sus=0.0  dwell=uniform(1,3)
//! state incubating   inf=0.25 sus=0.0  dwell=fixed(1)
//! state symptomatic  inf=1.0  sus=0.0  dwell=uniform(3,6)
//! state recovered    inf=0.0  sus=0.0  dwell=forever
//! trans latent      t0: incubating 1.0
//! trans incubating  t0: symptomatic 0.67, recovered 0.33
//! trans incubating  t1: symptomatic 0.20, recovered 0.80
//! trans symptomatic t0: recovered 1.0
//! start susceptible
//! exposed latent
//!
//! intervention vaccinate  when day 5          fraction 0.3 treatment 1 efficacy 0.2
//! intervention close      when prevalence 0.01 kind 3 duration 14
//! intervention distance   when newcases 100    compliance 0.5 factor 0.5 duration 21
//! ```

use crate::intervention::{Action, Intervention, Trigger};
use crate::model::{DwellDist, Ptts, PttsBuilder, TreatmentId};
use std::fmt;

/// A parse error with its 1-based line number.
#[derive(Debug, Clone, PartialEq)]
pub struct ParseError {
    /// 1-based line of the offending input.
    pub line: usize,
    /// Explanation.
    pub message: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for ParseError {}

/// Simulation parameters a scenario file may set with the `sim` directive
/// (`sim days=120 r=0.0001 seed=42 initial=10`). All fields optional;
/// consumers fall back to their own defaults.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct SimParams {
    /// Days to simulate.
    pub days: Option<u32>,
    /// Transmissibility per minute of contact.
    pub r: Option<f64>,
    /// Master seed.
    pub seed: Option<u64>,
    /// Initially infected count.
    pub initial_infections: Option<u32>,
}

/// A parameter sweep a scenario file may request with the `sweep`
/// directive (`sweep r=0.0004,0.0008,0.0016 replicates=8 workers=4`).
/// The ensemble engine turns this into a grid of parameter points; an
/// absent directive leaves everything empty/None.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct SweepSpec {
    /// Transmissibility grid values, in file order.
    pub r_values: Vec<f64>,
    /// Replicate seeds per grid point.
    pub replicates: Option<u32>,
    /// Ensemble worker threads.
    pub workers: Option<u32>,
}

impl SweepSpec {
    /// Did the scenario request a sweep?
    pub fn is_empty(&self) -> bool {
        self.r_values.is_empty() && self.replicates.is_none() && self.workers.is_none()
    }
}

/// Result of parsing a scenario file: the disease model plus interventions.
#[derive(Debug, Clone)]
pub struct Scenario {
    /// The parsed PTTS.
    pub ptts: Ptts,
    /// Interventions in file order.
    pub interventions: Vec<Intervention>,
    /// Optional simulation parameters.
    pub sim: SimParams,
    /// Optional parameter sweep.
    pub sweep: SweepSpec,
}

impl std::str::FromStr for Scenario {
    type Err = ParseError;

    /// Parse-from-string entry for job submission (`text.parse()?`): the
    /// episerve control plane receives scenario DSL text on the wire and
    /// turns it into a [`Scenario`] through this impl. Identical to
    /// [`parse`].
    fn from_str(s: &str) -> Result<Scenario, ParseError> {
        parse(s)
    }
}

/// Parse a scenario from DSL text.
pub fn parse(input: &str) -> Result<Scenario, ParseError> {
    let mut name: Option<String> = None;
    let mut treatments: u16 = 1;
    type StateLine = (String, f64, f64, DwellDist);
    type TransLine = (String, u16, Vec<(String, f64)>);
    let mut states: Vec<StateLine> = Vec::new();
    let mut transitions: Vec<TransLine> = Vec::new();
    let mut start: Option<String> = None;
    let mut exposed: Option<String> = None;
    let mut interventions = Vec::new();
    let mut sim = SimParams::default();
    let mut sweep = SweepSpec::default();

    for (idx, raw) in input.lines().enumerate() {
        let lineno = idx + 1;
        let line = raw.split('#').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        let err = |msg: String| ParseError {
            line: lineno,
            message: msg,
        };
        let mut words = line.split_whitespace();
        match words.next().unwrap() {
            "disease" => {
                name = Some(
                    words
                        .next()
                        .ok_or_else(|| err("expected: disease <name>".into()))?
                        .to_string(),
                );
            }
            "treatments" => {
                treatments = parse_num(words.next(), "treatments", lineno)?;
            }
            "state" => {
                let sname = words
                    .next()
                    .ok_or_else(|| err("expected: state <name> ...".into()))?
                    .to_string();
                let (mut inf, mut sus, mut dwell) = (None, None, None);
                for w in words {
                    if let Some(v) = w.strip_prefix("inf=") {
                        inf = Some(parse_num::<f64>(Some(v), "inf", lineno)?);
                    } else if let Some(v) = w.strip_prefix("sus=") {
                        sus = Some(parse_num::<f64>(Some(v), "sus", lineno)?);
                    } else if let Some(v) = w.strip_prefix("dwell=") {
                        dwell = Some(parse_dwell(v, lineno)?);
                    } else {
                        return Err(err(format!("unknown state attribute `{w}`")));
                    }
                }
                states.push((
                    sname,
                    inf.ok_or_else(|| err("state missing inf=".into()))?,
                    sus.ok_or_else(|| err("state missing sus=".into()))?,
                    dwell.ok_or_else(|| err("state missing dwell=".into()))?,
                ));
            }
            "trans" => {
                let from = words
                    .next()
                    .ok_or_else(|| err("expected: trans <state> tN: ...".into()))?
                    .to_string();
                let tspec = words
                    .next()
                    .ok_or_else(|| err("expected treatment spec `tN:`".into()))?;
                let t: u16 = tspec
                    .strip_prefix('t')
                    .and_then(|s| s.strip_suffix(':'))
                    .and_then(|s| s.parse().ok())
                    .ok_or_else(|| err(format!("bad treatment spec `{tspec}` (want tN:)")))?;
                let rest: String = words.collect::<Vec<_>>().join(" ");
                let mut edges = Vec::new();
                for part in rest.split(',') {
                    let mut it = part.split_whitespace();
                    let target = it
                        .next()
                        .ok_or_else(|| err("empty transition edge".into()))?
                        .to_string();
                    let p: f64 = parse_num(it.next(), "edge probability", lineno)?;
                    edges.push((target, p));
                }
                if edges.is_empty() {
                    return Err(err("transition with no edges".into()));
                }
                transitions.push((from, t, edges));
            }
            "start" => {
                start = Some(
                    words
                        .next()
                        .ok_or_else(|| err("expected: start <state>".into()))?
                        .to_string(),
                )
            }
            "exposed" => {
                exposed = Some(
                    words
                        .next()
                        .ok_or_else(|| err("expected: exposed <state>".into()))?
                        .to_string(),
                )
            }
            "intervention" => {
                interventions.push(parse_intervention(line, lineno)?);
            }
            "sim" => {
                for w in words {
                    if let Some(v) = w.strip_prefix("days=") {
                        sim.days = Some(parse_num(Some(v), "days", lineno)?);
                    } else if let Some(v) = w.strip_prefix("r=") {
                        sim.r = Some(parse_num(Some(v), "r", lineno)?);
                    } else if let Some(v) = w.strip_prefix("seed=") {
                        sim.seed = Some(parse_num(Some(v), "seed", lineno)?);
                    } else if let Some(v) = w.strip_prefix("initial=") {
                        sim.initial_infections = Some(parse_num(Some(v), "initial", lineno)?);
                    } else {
                        return Err(err(format!("unknown sim attribute `{w}`")));
                    }
                }
            }
            "sweep" => {
                for w in words {
                    if let Some(v) = w.strip_prefix("r=") {
                        for item in v.split(',') {
                            sweep
                                .r_values
                                .push(parse_num(Some(item.trim()), "sweep r", lineno)?);
                        }
                    } else if let Some(v) = w.strip_prefix("replicates=") {
                        sweep.replicates = Some(parse_num(Some(v), "replicates", lineno)?);
                    } else if let Some(v) = w.strip_prefix("workers=") {
                        sweep.workers = Some(parse_num(Some(v), "workers", lineno)?);
                    } else {
                        return Err(err(format!("unknown sweep attribute `{w}`")));
                    }
                }
            }
            other => return Err(err(format!("unknown directive `{other}`"))),
        }
    }

    let mut b = PttsBuilder::new(name.unwrap_or_else(|| "unnamed".into())).treatments(treatments);
    for (n, inf, sus, dwell) in states {
        b = b.state(&n, inf, sus, dwell);
    }
    for (from, t, edges) in &transitions {
        let edge_refs: Vec<(&str, f64)> = edges.iter().map(|(n, p)| (n.as_str(), *p)).collect();
        b = b.transition(from, TreatmentId(*t), &edge_refs);
    }
    if let Some(s) = &start {
        b = b.start(s);
    }
    if let Some(e) = &exposed {
        b = b.exposed(e);
    }
    let ptts = b.build().map_err(|m| ParseError {
        line: 0,
        message: format!("model validation failed: {m}"),
    })?;
    Ok(Scenario {
        ptts,
        interventions,
        sim,
        sweep,
    })
}

fn parse_num<T: std::str::FromStr>(
    word: Option<&str>,
    what: &str,
    line: usize,
) -> Result<T, ParseError> {
    word.and_then(|w| w.parse().ok()).ok_or_else(|| ParseError {
        line,
        message: format!("expected a number for {what}"),
    })
}

fn parse_dwell(spec: &str, line: usize) -> Result<DwellDist, ParseError> {
    let err = |m: String| ParseError { line, message: m };
    if spec == "forever" {
        return Ok(DwellDist::Forever);
    }
    let (kind, args) = spec
        .split_once('(')
        .and_then(|(k, rest)| rest.strip_suffix(')').map(|a| (k, a)))
        .ok_or_else(|| err(format!("bad dwell spec `{spec}`")))?;
    let nums: Vec<&str> = args.split(',').map(str::trim).collect();
    match (kind, nums.as_slice()) {
        ("fixed", [n]) => Ok(DwellDist::Fixed(parse_num(Some(n), "dwell", line)?)),
        ("uniform", [lo, hi]) => Ok(DwellDist::Uniform(
            parse_num(Some(lo), "dwell lo", line)?,
            parse_num(Some(hi), "dwell hi", line)?,
        )),
        ("geometric", [p]) => Ok(DwellDist::Geometric(parse_num(Some(p), "dwell p", line)?)),
        _ => Err(err(format!("bad dwell spec `{spec}`"))),
    }
}

fn parse_intervention(line: &str, lineno: usize) -> Result<Intervention, ParseError> {
    let err = |m: String| ParseError {
        line: lineno,
        message: m,
    };
    let words: Vec<&str> = line.split_whitespace().collect();
    // words[0] == "intervention"
    let kind = *words
        .get(1)
        .ok_or_else(|| err("missing intervention kind".into()))?;
    // key-value pairs after the kind; `when <trigger> <value>` is special.
    let mut kv = std::collections::BTreeMap::new();
    let mut trigger = None;
    let mut i = 2;
    while i < words.len() {
        if words[i] == "when" {
            let tkind = *words
                .get(i + 1)
                .ok_or_else(|| err("`when` needs a trigger kind".into()))?;
            let tval = *words
                .get(i + 2)
                .ok_or_else(|| err("trigger needs a value".into()))?;
            trigger = Some(match tkind {
                "day" => Trigger::Day(parse_num(Some(tval), "day", lineno)?),
                "prevalence" => {
                    Trigger::PrevalenceAbove(parse_num(Some(tval), "prevalence", lineno)?)
                }
                "newcases" => Trigger::NewCasesAbove(parse_num(Some(tval), "newcases", lineno)?),
                "attackrate" => {
                    Trigger::AttackRateAbove(parse_num(Some(tval), "attackrate", lineno)?)
                }
                other => return Err(err(format!("unknown trigger `{other}`"))),
            });
            i += 3;
        } else {
            let key = words[i];
            let val = *words
                .get(i + 1)
                .ok_or_else(|| err(format!("`{key}` needs a value")))?;
            kv.insert(key, val);
            i += 2;
        }
    }
    let trigger = trigger.ok_or_else(|| err("intervention missing `when` clause".into()))?;
    let get_f64 = |k: &str| -> Result<f64, ParseError> { parse_num(kv.get(k).copied(), k, lineno) };
    let action = match kind {
        "vaccinate" => Action::Vaccinate {
            fraction: get_f64("fraction")?,
            treatment: TreatmentId(parse_num(
                kv.get("treatment").copied(),
                "treatment",
                lineno,
            )?),
            efficacy_factor: get_f64("efficacy")?,
        },
        "close" => Action::CloseKind {
            kind: parse_num(kv.get("kind").copied(), "kind", lineno)?,
            duration: parse_num(kv.get("duration").copied(), "duration", lineno)?,
        },
        "distance" => Action::SocialDistance {
            compliance: get_f64("compliance")?,
            factor: get_f64("factor")?,
            duration: parse_num(kv.get("duration").copied(), "duration", lineno)?,
        },
        other => return Err(err(format!("unknown intervention kind `{other}`"))),
    };
    Ok(Intervention { trigger, action })
}

/// The built-in flu scenario as DSL text — also serves as format
/// documentation and round-trip test fixture.
pub const FLU_DSL: &str = r#"
# influenza-like illness matching ptts::disease::flu_model
disease flu
treatments 2
state susceptible  inf=0.0  sus=1.0  dwell=forever
state latent       inf=0.0  sus=0.0  dwell=uniform(1,3)
state incubating   inf=0.25 sus=0.0  dwell=fixed(1)
state symptomatic  inf=1.0  sus=0.0  dwell=uniform(3,6)
state asymptomatic inf=0.5  sus=0.0  dwell=uniform(3,6)
state recovered    inf=0.0  sus=0.0  dwell=forever
trans latent       t0: incubating 1.0
trans incubating   t0: symptomatic 0.67, asymptomatic 0.33
trans incubating   t1: symptomatic 0.20, asymptomatic 0.80
trans symptomatic  t0: recovered 1.0
trans asymptomatic t0: recovered 1.0
start susceptible
exposed latent
"#;

#[cfg(test)]
mod tests {
    use super::*;
    use crate::disease::flu_model;

    #[test]
    fn from_str_matches_parse() {
        let via_parse = parse(FLU_DSL).expect("parse");
        let via_from_str: Scenario = FLU_DSL.parse().expect("FromStr");
        assert_eq!(via_from_str.sim, via_parse.sim);
        assert_eq!(
            via_from_str.interventions.len(),
            via_parse.interventions.len()
        );
        assert!("disease broken\nstate".parse::<Scenario>().is_err());
    }

    #[test]
    fn parses_builtin_flu_dsl() {
        let s = parse(FLU_DSL).expect("FLU_DSL must parse");
        assert_eq!(s.ptts.name(), "flu");
        assert_eq!(s.ptts.n_states(), flu_model().n_states());
        assert_eq!(s.ptts.n_treatments(), 2);
        assert!(s.interventions.is_empty());
    }

    #[test]
    fn dsl_matches_programmatic_model() {
        let parsed = parse(FLU_DSL).unwrap().ptts;
        let built = flu_model();
        for name in ["susceptible", "latent", "incubating", "symptomatic"] {
            let p = parsed.state_by_name(name).unwrap();
            let b = built.state_by_name(name).unwrap();
            assert_eq!(parsed.state(p).infectivity, built.state(b).infectivity);
            assert_eq!(parsed.state(p).dwell, built.state(b).dwell);
        }
    }

    #[test]
    fn parses_interventions() {
        let text = format!(
            "{FLU_DSL}\n\
             intervention vaccinate when day 5 fraction 0.3 treatment 1 efficacy 0.2\n\
             intervention close when prevalence 0.01 kind 3 duration 14\n\
             intervention distance when newcases 100 compliance 0.5 factor 0.5 duration 21\n"
        );
        let s = parse(&text).unwrap();
        assert_eq!(s.interventions.len(), 3);
        assert_eq!(s.interventions[0].trigger, Trigger::Day(5));
        assert!(matches!(
            s.interventions[1].action,
            Action::CloseKind {
                kind: 3,
                duration: 14
            }
        ));
        assert!(matches!(
            s.interventions[2].trigger,
            Trigger::NewCasesAbove(100)
        ));
    }

    #[test]
    fn sim_directive_parsed() {
        let text = format!("{FLU_DSL}\nsim days=90 r=0.0002 seed=7 initial=12\n");
        let s = parse(&text).unwrap();
        assert_eq!(s.sim.days, Some(90));
        assert_eq!(s.sim.r, Some(0.0002));
        assert_eq!(s.sim.seed, Some(7));
        assert_eq!(s.sim.initial_infections, Some(12));
        // Absent directive leaves everything None.
        let bare = parse(FLU_DSL).unwrap();
        assert_eq!(bare.sim, SimParams::default());
    }

    #[test]
    fn sweep_directive_parsed() {
        let text = format!("{FLU_DSL}\nsweep r=0.0004,0.0008,0.0016 replicates=8 workers=4\n");
        let s = parse(&text).unwrap();
        assert_eq!(s.sweep.r_values, vec![0.0004, 0.0008, 0.0016]);
        assert_eq!(s.sweep.replicates, Some(8));
        assert_eq!(s.sweep.workers, Some(4));
        assert!(!s.sweep.is_empty());
        // Absent directive leaves the sweep empty.
        let bare = parse(FLU_DSL).unwrap();
        assert!(bare.sweep.is_empty());
        assert_eq!(bare.sweep, SweepSpec::default());
    }

    #[test]
    fn sweep_directive_rejects_bad_input() {
        let text = format!("{FLU_DSL}\nsweep r=fast\n");
        assert!(parse(&text).unwrap_err().message.contains("sweep r"));
        let text = format!("{FLU_DSL}\nsweep shape=log\n");
        assert!(parse(&text).unwrap_err().message.contains("shape"));
    }

    #[test]
    fn sim_directive_rejects_unknown_attrs() {
        let text = format!("{FLU_DSL}\nsim warp=9\n");
        let e = parse(&text).unwrap_err();
        assert!(e.message.contains("warp"));
    }

    #[test]
    fn comments_and_blank_lines_ignored() {
        let text = "# leading comment\n\ndisease d # trailing comment\n\
                    state a inf=0 sus=1 dwell=forever\n\
                    state b inf=1 sus=0 dwell=fixed(2)\n\
                    trans b t0: c 1.0\n\
                    state c inf=0 sus=0 dwell=forever\n\
                    start a\nexposed b\n";
        assert!(parse(text).is_ok());
    }

    #[test]
    fn error_reports_line_number() {
        let text = "disease d\nstate a inf=zero sus=1 dwell=forever\n";
        let e = parse(text).unwrap_err();
        assert_eq!(e.line, 2);
        assert!(e.message.contains("inf"));
    }

    #[test]
    fn unknown_directive_rejected() {
        let e = parse("frobnicate 3\n").unwrap_err();
        assert!(e.message.contains("frobnicate"));
    }

    #[test]
    fn bad_dwell_rejected() {
        let e = parse("state a inf=0 sus=1 dwell=weird(1)\n").unwrap_err();
        assert!(e.message.contains("dwell"));
    }

    #[test]
    fn missing_when_rejected() {
        let text = format!("{FLU_DSL}\nintervention close kind 1 duration 5\n");
        let e = parse(&text).unwrap_err();
        assert!(e.message.contains("when"));
    }

    #[test]
    fn validation_errors_surface() {
        // Non-absorbing state without transitions fails model validation.
        let text = "disease d\nstate a inf=0 sus=1 dwell=forever\n\
                    state b inf=1 sus=0 dwell=fixed(2)\nstart a\nexposed b\n";
        let e = parse(text).unwrap_err();
        assert!(e.message.contains("validation"));
    }
}
