//! The probabilistic timed transition system (PTTS).
//!
//! A person's health state is tracked by "a finite state machine with the
//! addition of a dwell time (the time a person will remain in a state before
//! automatically transitioning to the next state) distribution for each
//! state, and sets of probabilistic transitions between states. Different
//! sets of transitions are used, depending on the treatment received by the
//! person, such as vaccination" (paper, §II-A).
//!
//! States carry an *infectivity* (how strongly an occupant in this state
//! sheds) and a *susceptibility* (how easily an occupant in this state is
//! infected); the transmission function in [`crate::transmission`] consumes
//! these.

use crate::crng::{CounterRng, Purpose};
use serde::{Deserialize, Serialize};

/// Index of a health state within a [`Ptts`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct StateId(pub u16);

/// Index of a treatment (a set of transition tables). Treatment `0` is
/// always the default (untreated) behaviour.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct TreatmentId(pub u16);

impl TreatmentId {
    /// The untreated/default treatment.
    pub const DEFAULT: TreatmentId = TreatmentId(0);
}

/// Dwell-time distribution attached to a PTTS state, in whole days
/// (EpiSimdemics iterates in one-day time steps).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum DwellDist {
    /// Absorbing: the person never leaves this state spontaneously
    /// (e.g. `susceptible`, `recovered`, `dead`).
    Forever,
    /// Exactly `n` days.
    Fixed(u32),
    /// Uniform over `[lo, hi]` inclusive.
    Uniform(u32, u32),
    /// Geometric: each day leave with probability `p` (mean `1/p` days).
    /// Sampled by inversion; result is at least 1 day.
    Geometric(f64),
}

impl DwellDist {
    /// Sample a dwell time in days. `Forever` returns `u32::MAX`.
    pub fn sample(&self, rng: &mut CounterRng) -> u32 {
        match *self {
            DwellDist::Forever => u32::MAX,
            DwellDist::Fixed(n) => n.max(1),
            DwellDist::Uniform(lo, hi) => {
                let (lo, hi) = (lo.min(hi).max(1), hi.max(lo).max(1));
                lo + rng.uniform_u64((hi - lo + 1) as u64) as u32
            }
            DwellDist::Geometric(p) => {
                let p = p.clamp(1e-9, 1.0);
                if p >= 1.0 {
                    return 1;
                }
                // Inverse-CDF for geometric on {1, 2, ...}.
                let u = rng.uniform_f64().max(f64::MIN_POSITIVE);
                let k = (u.ln() / (1.0 - p).ln()).ceil();
                k.max(1.0).min(u32::MAX as f64) as u32
            }
        }
    }

    /// Expected dwell time in days (`None` for `Forever`).
    pub fn mean(&self) -> Option<f64> {
        match *self {
            DwellDist::Forever => None,
            DwellDist::Fixed(n) => Some(n.max(1) as f64),
            DwellDist::Uniform(lo, hi) => {
                Some((lo.min(hi).max(1) as f64 + hi.max(lo).max(1) as f64) / 2.0)
            }
            DwellDist::Geometric(p) => Some(1.0 / p.clamp(1e-9, 1.0)),
        }
    }
}

/// One probabilistic transition table: successor states with probabilities
/// summing to 1.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TransitionTable {
    edges: Vec<(StateId, f64)>,
}

impl TransitionTable {
    /// Build a table; probabilities are normalized to sum to 1.
    ///
    /// # Panics
    /// Panics if `edges` is empty or total probability is not positive.
    pub fn new(mut edges: Vec<(StateId, f64)>) -> Self {
        assert!(
            !edges.is_empty(),
            "transition table needs at least one edge"
        );
        let total: f64 = edges.iter().map(|&(_, p)| p).sum();
        assert!(total > 0.0, "transition probabilities must sum to > 0");
        for e in &mut edges {
            e.1 /= total;
        }
        TransitionTable { edges }
    }

    /// Sample a successor state. States with probability zero are never
    /// returned.
    pub fn sample(&self, rng: &mut CounterRng) -> StateId {
        let u = rng.uniform_f64();
        let mut acc = 0.0;
        for &(s, p) in &self.edges {
            acc += p;
            if p > 0.0 && u < acc {
                return s;
            }
        }
        // Floating-point slack (the accumulated sum can land a hair under
        // 1.0): fall back to the last edge with positive probability — the
        // table's tail may legitimately hold zero-probability edges, and a
        // fallback to `edges.last()` could select an impossible transition.
        self.edges
            .iter()
            .rev()
            .find(|&&(_, p)| p > 0.0)
            .expect("normalized table has a positive-probability edge")
            .0
    }

    /// The successor states and normalized probabilities.
    pub fn edges(&self) -> &[(StateId, f64)] {
        &self.edges
    }
}

/// Definition of a single PTTS health state.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct StateDef {
    /// Human-readable name (`"latent"`, `"infectious"` ...).
    pub name: String,
    /// Shedding strength ι ∈ \[0,1\] while in this state.
    pub infectivity: f64,
    /// Susceptibility s ∈ \[0,1\] while in this state.
    pub susceptibility: f64,
    /// How long a person dwells here before transitioning.
    pub dwell: DwellDist,
    /// Transition tables per treatment; index = `TreatmentId.0`. Missing
    /// entries fall back to the default treatment's table. `None` for
    /// absorbing states.
    pub transitions: Vec<Option<TransitionTable>>,
}

/// A complete probabilistic timed transition system.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Ptts {
    name: String,
    states: Vec<StateDef>,
    start: StateId,
    /// The state newly-infected persons enter (the target of an "infect"
    /// message), e.g. `latent`.
    exposed: StateId,
    n_treatments: u16,
}

impl Ptts {
    /// Disease model name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of states.
    pub fn n_states(&self) -> usize {
        self.states.len()
    }

    /// Number of treatments (≥ 1; treatment 0 is the default).
    pub fn n_treatments(&self) -> u16 {
        self.n_treatments
    }

    /// The initial (healthy) state.
    pub fn start_state(&self) -> StateId {
        self.start
    }

    /// The state entered upon infection.
    pub fn exposed_state(&self) -> StateId {
        self.exposed
    }

    /// Look up a state definition.
    pub fn state(&self, id: StateId) -> &StateDef {
        &self.states[id.0 as usize]
    }

    /// Find a state by name.
    pub fn state_by_name(&self, name: &str) -> Option<StateId> {
        self.states
            .iter()
            .position(|s| s.name == name)
            .map(|i| StateId(i as u16))
    }

    /// Infectivity of a state (convenience accessor on the hot path).
    #[inline]
    pub fn infectivity(&self, id: StateId) -> f64 {
        self.states[id.0 as usize].infectivity
    }

    /// Susceptibility of a state.
    #[inline]
    pub fn susceptibility(&self, id: StateId) -> f64 {
        self.states[id.0 as usize].susceptibility
    }

    /// Whether a state can infect others.
    #[inline]
    pub fn is_infectious(&self, id: StateId) -> bool {
        self.infectivity(id) > 0.0
    }

    /// Whether a state can be infected.
    #[inline]
    pub fn is_susceptible(&self, id: StateId) -> bool {
        self.susceptibility(id) > 0.0
    }

    /// The transition table for `(state, treatment)`, falling back to the
    /// default treatment, or `None` for absorbing states.
    pub fn table(&self, state: StateId, treatment: TreatmentId) -> Option<&TransitionTable> {
        let s = &self.states[state.0 as usize];
        let t = treatment.0 as usize;
        if t < s.transitions.len() {
            if let Some(tab) = &s.transitions[t] {
                return Some(tab);
            }
        }
        s.transitions.first().and_then(|t| t.as_ref())
    }

    /// Verify structural invariants: probabilities normalized, ids in range,
    /// the exposed state eventually reaches an absorbing state, etc.
    pub fn validate(&self) -> Result<(), String> {
        let n = self.states.len();
        if n == 0 {
            return Err("PTTS has no states".into());
        }
        if self.start.0 as usize >= n || self.exposed.0 as usize >= n {
            return Err("start/exposed state out of range".into());
        }
        for (i, s) in self.states.iter().enumerate() {
            if !(0.0..=1.0).contains(&s.infectivity) || !(0.0..=1.0).contains(&s.susceptibility) {
                return Err(format!("state {i} ({}) has out-of-range rates", s.name));
            }
            for tab in s.transitions.iter().flatten() {
                let sum: f64 = tab.edges.iter().map(|&(_, p)| p).sum();
                if (sum - 1.0).abs() > 1e-9 {
                    return Err(format!("state {i} table not normalized (sum {sum})"));
                }
                for &(tgt, _) in &tab.edges {
                    if tgt.0 as usize >= n {
                        return Err(format!("state {i} transitions to missing state {}", tgt.0));
                    }
                }
            }
            if matches!(s.dwell, DwellDist::Forever) && s.transitions.iter().any(|t| t.is_some()) {
                return Err(format!("absorbing state {i} ({}) has transitions", s.name));
            }
            if !matches!(s.dwell, DwellDist::Forever)
                && s.transitions.first().is_none_or(|t| t.is_none())
            {
                return Err(format!(
                    "non-absorbing state {i} ({}) lacks a default transition table",
                    s.name
                ));
            }
        }
        // Reachability of an absorbing state from `exposed` (epidemic ends).
        let mut reached = vec![false; n];
        let mut stack = vec![self.exposed];
        let mut absorbing_reachable = false;
        while let Some(s) = stack.pop() {
            if std::mem::replace(&mut reached[s.0 as usize], true) {
                continue;
            }
            let def = &self.states[s.0 as usize];
            if matches!(def.dwell, DwellDist::Forever) {
                absorbing_reachable = true;
                continue;
            }
            for tab in def.transitions.iter().flatten() {
                for &(tgt, p) in &tab.edges {
                    if p > 0.0 {
                        stack.push(tgt);
                    }
                }
            }
        }
        if !absorbing_reachable {
            return Err("no absorbing state reachable from the exposed state".into());
        }
        Ok(())
    }
}

/// Builder for [`Ptts`]. See [`crate::disease::flu_model`] for a full
/// example.
pub struct PttsBuilder {
    name: String,
    states: Vec<StateDef>,
    start: Option<String>,
    exposed: Option<String>,
    n_treatments: u16,
}

impl PttsBuilder {
    /// Start building a model named `name`.
    pub fn new(name: impl Into<String>) -> Self {
        PttsBuilder {
            name: name.into(),
            states: Vec::new(),
            start: None,
            exposed: None,
            n_treatments: 1,
        }
    }

    /// Declare the number of treatments (≥1).
    pub fn treatments(mut self, n: u16) -> Self {
        self.n_treatments = n.max(1);
        self
    }

    /// Add a state; returns the builder for chaining.
    pub fn state(
        mut self,
        name: &str,
        infectivity: f64,
        susceptibility: f64,
        dwell: DwellDist,
    ) -> Self {
        self.states.push(StateDef {
            name: name.to_string(),
            infectivity,
            susceptibility,
            dwell,
            transitions: Vec::new(),
        });
        self
    }

    /// Add a transition table for `(state, treatment)` by state names.
    ///
    /// # Panics
    /// Panics on unknown state names.
    pub fn transition(mut self, from: &str, treatment: TreatmentId, edges: &[(&str, f64)]) -> Self {
        let resolve = |states: &[StateDef], name: &str| -> StateId {
            StateId(
                states
                    .iter()
                    .position(|s| s.name == name)
                    .unwrap_or_else(|| panic!("unknown state `{name}`")) as u16,
            )
        };
        let resolved: Vec<(StateId, f64)> = edges
            .iter()
            .map(|&(n, p)| (resolve(&self.states, n), p))
            .collect();
        let from_id = resolve(&self.states, from).0 as usize;
        let slot = treatment.0 as usize;
        let s = &mut self.states[from_id];
        if s.transitions.len() <= slot {
            s.transitions.resize(slot + 1, None);
        }
        s.transitions[slot] = Some(TransitionTable::new(resolved));
        self
    }

    /// Set the initial healthy state by name.
    pub fn start(mut self, name: &str) -> Self {
        self.start = Some(name.to_string());
        self
    }

    /// Set the state entered upon infection by name.
    pub fn exposed(mut self, name: &str) -> Self {
        self.exposed = Some(name.to_string());
        self
    }

    /// Finish, validating the model.
    pub fn build(self) -> Result<Ptts, String> {
        let find = |name: &Option<String>, what: &str| -> Result<StateId, String> {
            let name = name
                .as_ref()
                .ok_or_else(|| format!("{what} state not set"))?;
            self.states
                .iter()
                .position(|s| &s.name == name)
                .map(|i| StateId(i as u16))
                .ok_or_else(|| format!("{what} state `{name}` not defined"))
        };
        let ptts = Ptts {
            start: find(&self.start, "start")?,
            exposed: find(&self.exposed, "exposed")?,
            name: self.name,
            states: self.states,
            n_treatments: self.n_treatments,
        };
        ptts.validate()?;
        Ok(ptts)
    }
}

/// Per-person health tracking: current state plus remaining dwell days.
///
/// The tracker is advanced once per simulated day in phase 1 of the
/// algorithm ("each person recalculates their health state", §II-B).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct HealthTracker {
    /// Current health state.
    pub state: StateId,
    /// Days remaining in the current state (`u32::MAX` = forever).
    pub days_remaining: u32,
    /// Treatment currently applied to this person.
    pub treatment: TreatmentId,
}

impl HealthTracker {
    /// A fresh tracker in the model's start state.
    pub fn new(ptts: &Ptts) -> Self {
        HealthTracker {
            state: ptts.start_state(),
            days_remaining: u32::MAX,
            treatment: TreatmentId::DEFAULT,
        }
    }

    /// Advance one day: decrement dwell and perform any due transition
    /// (possibly chaining through zero-dwell states). Returns `true` if the
    /// state changed.
    pub fn advance(&mut self, ptts: &Ptts, seed: u64, entity: u64, day: u64) -> bool {
        if self.days_remaining == u32::MAX {
            return false;
        }
        self.days_remaining = self.days_remaining.saturating_sub(1);
        let mut changed = false;
        // Chain through at most n_states transitions per day to guard
        // against zero-dwell cycles.
        let mut hops = 0;
        while self.days_remaining == 0 && hops < ptts.n_states() {
            let Some(table) = ptts.table(self.state, self.treatment) else {
                self.days_remaining = u32::MAX;
                break;
            };
            let mut trng =
                CounterRng::from_key(&[seed, entity, day, Purpose::Transition as u64, hops as u64]);
            let next = table.sample(&mut trng);
            let mut drng =
                CounterRng::from_key(&[seed, entity, day, Purpose::Dwell as u64, hops as u64]);
            self.days_remaining = ptts.state(next).dwell.sample(&mut drng);
            self.state = next;
            changed = true;
            hops += 1;
        }
        changed
    }

    /// React to an infect message: move to the exposed state and sample its
    /// dwell. No-op unless currently susceptible.
    pub fn infect(&mut self, ptts: &Ptts, seed: u64, entity: u64, day: u64) -> bool {
        if !ptts.is_susceptible(self.state) {
            return false;
        }
        let exposed = ptts.exposed_state();
        let mut drng = CounterRng::for_entity(seed, entity, day, Purpose::Dwell);
        self.state = exposed;
        self.days_remaining = ptts.state(exposed).dwell.sample(&mut drng);
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::disease::flu_model;

    fn tiny_model() -> Ptts {
        PttsBuilder::new("tiny")
            .state("s", 0.0, 1.0, DwellDist::Forever)
            .state("i", 0.8, 0.0, DwellDist::Fixed(3))
            .state("r", 0.0, 0.0, DwellDist::Forever)
            .transition("i", TreatmentId::DEFAULT, &[("r", 1.0)])
            .start("s")
            .exposed("i")
            .build()
            .unwrap()
    }

    #[test]
    fn builder_produces_valid_model() {
        let m = tiny_model();
        assert_eq!(m.n_states(), 3);
        assert_eq!(m.state(m.start_state()).name, "s");
        assert_eq!(m.state(m.exposed_state()).name, "i");
        assert!(m.is_susceptible(m.start_state()));
        assert!(m.is_infectious(m.exposed_state()));
    }

    #[test]
    fn infect_then_recover_deterministically() {
        let m = tiny_model();
        let mut h = HealthTracker::new(&m);
        assert!(h.infect(&m, 1, 2, 0));
        assert_eq!(m.state(h.state).name, "i");
        assert_eq!(h.days_remaining, 3);
        for day in 1..=2 {
            h.advance(&m, 1, 2, day);
            assert_eq!(m.state(h.state).name, "i");
        }
        h.advance(&m, 1, 2, 3);
        assert_eq!(m.state(h.state).name, "r");
        assert_eq!(h.days_remaining, u32::MAX);
    }

    #[test]
    fn infect_is_idempotent_on_non_susceptible() {
        let m = tiny_model();
        let mut h = HealthTracker::new(&m);
        assert!(h.infect(&m, 1, 2, 0));
        let before = h;
        assert!(!h.infect(&m, 1, 2, 1)); // already infected
        assert_eq!(h, before);
    }

    #[test]
    fn advance_in_absorbing_state_is_noop() {
        let m = tiny_model();
        let mut h = HealthTracker::new(&m);
        assert!(!h.advance(&m, 1, 2, 0));
        assert_eq!(h.state, m.start_state());
    }

    #[test]
    fn same_seed_same_trajectory() {
        let m = flu_model();
        let run = |seed| {
            let mut h = HealthTracker::new(&m);
            h.infect(&m, seed, 42, 0);
            let mut traj = vec![h.state];
            for day in 1..60 {
                h.advance(&m, seed, 42, day);
                traj.push(h.state);
            }
            traj
        };
        assert_eq!(run(7), run(7));
        assert_ne!(
            run(7),
            run(8),
            "different seeds should (generically) differ"
        );
    }

    #[test]
    fn dwell_sampling_ranges() {
        let mut rng = CounterRng::from_key(&[3]);
        for _ in 0..200 {
            let v = DwellDist::Uniform(2, 5).sample(&mut rng);
            assert!((2..=5).contains(&v));
            let f = DwellDist::Fixed(4).sample(&mut rng);
            assert_eq!(f, 4);
            let g = DwellDist::Geometric(0.5).sample(&mut rng);
            assert!(g >= 1);
        }
        assert_eq!(DwellDist::Forever.sample(&mut rng), u32::MAX);
    }

    #[test]
    fn geometric_mean_close_to_inverse_p() {
        let mut rng = CounterRng::from_key(&[31]);
        let d = DwellDist::Geometric(0.25);
        let n = 20_000;
        let mean: f64 = (0..n).map(|_| d.sample(&mut rng) as f64).sum::<f64>() / n as f64;
        assert!((mean - 4.0).abs() < 0.15, "mean {mean}, expected ≈ 4");
    }

    #[test]
    fn transition_table_normalizes() {
        let t = TransitionTable::new(vec![(StateId(0), 2.0), (StateId(1), 6.0)]);
        assert!((t.edges()[0].1 - 0.25).abs() < 1e-12);
        assert!((t.edges()[1].1 - 0.75).abs() < 1e-12);
    }

    #[test]
    fn transition_sampling_follows_probabilities() {
        let t = TransitionTable::new(vec![(StateId(0), 0.2), (StateId(1), 0.8)]);
        let mut rng = CounterRng::from_key(&[23]);
        let n = 50_000;
        let ones = (0..n).filter(|_| t.sample(&mut rng) == StateId(1)).count();
        let frac = ones as f64 / n as f64;
        assert!((frac - 0.8).abs() < 0.01, "frac {frac}");
    }

    #[test]
    fn zero_probability_edges_never_sampled() {
        // A zero-weight edge at the tail must be unreachable even through
        // the floating-point fallback path.
        let t = TransitionTable::new(vec![
            (StateId(0), 0.3),
            (StateId(1), 0.7),
            (StateId(2), 0.0),
        ]);
        let mut rng = CounterRng::from_key(&[91]);
        for _ in 0..20_000 {
            assert_ne!(t.sample(&mut rng), StateId(2));
        }
        // Even when the positive mass sits before zero-weight tails only.
        let t = TransitionTable::new(vec![(StateId(7), 1.0), (StateId(8), 0.0)]);
        for _ in 0..1000 {
            assert_eq!(t.sample(&mut rng), StateId(7));
        }
    }

    #[test]
    fn validate_rejects_dangling_target() {
        let bad = PttsBuilder::new("bad")
            .state("s", 0.0, 1.0, DwellDist::Forever)
            .state("i", 0.5, 0.0, DwellDist::Fixed(1))
            .transition("i", TreatmentId::DEFAULT, &[("i", 1.0)]) // cycle, no absorbing
            .start("s")
            .exposed("i")
            .build();
        assert!(bad.is_err());
    }

    #[test]
    fn treatment_fallback_to_default() {
        let m = tiny_model();
        let tab_default = m.table(m.exposed_state(), TreatmentId::DEFAULT);
        let tab_other = m.table(m.exposed_state(), TreatmentId(5));
        assert!(tab_default.is_some());
        // Treatment 5 was never defined: falls back to the default table.
        assert_eq!(
            tab_default.unwrap().edges().len(),
            tab_other.unwrap().edges().len()
        );
    }

    #[test]
    fn flu_model_validates() {
        assert!(flu_model().validate().is_ok());
    }
}
