//! Counter-based deterministic random number generation.
//!
//! EpiSimdemics' output must not depend on message arrival order, which a
//! message-driven runtime does not control. Every stochastic decision in the
//! simulator therefore draws from a generator keyed by *what* is being
//! decided — `(seed, entity, day, purpose)` — rather than from a shared
//! sequential stream. Two runs with the same seed produce identical epidemic
//! trajectories on any thread count.
//!
//! The generator hashes its key with a SplitMix64-style finalizer and then
//! iterates SplitMix64 from the hashed state. SplitMix64 passes BigCrush and
//! is more than adequate for Monte-Carlo use; it is *not* cryptographic.

use rand::{Error, RngCore, SeedableRng};

/// Distinguishes independent random decisions made for the same entity on
/// the same day. Keying by purpose means adding a new stochastic decision
/// never perturbs existing streams.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u64)]
pub enum Purpose {
    /// Health-state transition draws (which successor state).
    Transition = 1,
    /// Dwell-time draws (how long to stay in the new state).
    Dwell = 2,
    /// Schedule perturbation (which locations to visit today).
    Schedule = 3,
    /// Transmission draws at a location.
    Infection = 4,
    /// Intervention compliance draws (e.g. does this person vaccinate).
    Compliance = 5,
    /// Population-synthesis draws.
    Synthesis = 6,
    /// Percolation draws of the ensemble surrogate screen (keying them
    /// separately means the screen never perturbs full-run streams).
    Surrogate = 7,
}

#[inline]
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A deterministic counter-based RNG keyed by an arbitrary tuple of `u64`s.
///
/// Implements [`rand::RngCore`] so it can drive any `rand` sampler.
///
/// ```
/// use ptts::crng::{CounterRng, Purpose};
/// use rand::Rng;
///
/// let mut a = CounterRng::for_entity(42, 7, 3, Purpose::Transition);
/// let mut b = CounterRng::for_entity(42, 7, 3, Purpose::Transition);
/// assert_eq!(a.gen::<u64>(), b.gen::<u64>());
///
/// // A different purpose yields an independent stream.
/// let mut c = CounterRng::for_entity(42, 7, 3, Purpose::Dwell);
/// assert_ne!(a.gen::<u64>(), c.gen::<u64>());
/// ```
#[derive(Debug, Clone)]
pub struct CounterRng {
    state: u64,
}

impl CounterRng {
    /// Key the stream with an arbitrary sequence of components.
    pub fn from_key(parts: &[u64]) -> Self {
        // Fold components through the SplitMix64 finalizer; the running
        // state absorbs each part so that permuted keys diverge.
        let mut state = 0x243F_6A88_85A3_08D3u64; // pi fractional bits
        for &p in parts {
            state ^= p.wrapping_mul(0x9E37_79B9_7F4A_7C15);
            splitmix64(&mut state);
        }
        CounterRng { state }
    }

    /// The common four-component key used throughout the simulator.
    pub fn for_entity(seed: u64, entity: u64, day: u64, purpose: Purpose) -> Self {
        Self::from_key(&[seed, entity, day, purpose as u64])
    }

    /// Draw a uniform `f64` in `[0, 1)`.
    #[inline]
    pub fn uniform_f64(&mut self) -> f64 {
        // 53 high bits → uniform double in [0,1).
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Draw a uniform integer in `[0, n)`. `n` must be non-zero.
    ///
    /// Uses Lemire's multiply-shift rejection method, which is unbiased.
    #[inline]
    pub fn uniform_u64(&mut self, n: u64) -> u64 {
        assert!(n > 0, "uniform_u64 requires n > 0");
        loop {
            let x = self.next_u64();
            let m = (x as u128) * (n as u128);
            let lo = m as u64;
            if lo >= n || lo >= n.wrapping_neg() % n {
                return (m >> 64) as u64;
            }
        }
    }

    /// Bernoulli draw with probability `p` (clamped to `[0,1]`).
    #[inline]
    pub fn bernoulli(&mut self, p: f64) -> bool {
        self.uniform_f64() < p
    }
}

impl RngCore for CounterRng {
    #[inline]
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    #[inline]
    fn next_u64(&mut self) -> u64 {
        splitmix64(&mut self.state)
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let bytes = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&bytes[..rem.len()]);
        }
    }

    fn try_fill_bytes(&mut self, dest: &mut [u8]) -> Result<(), Error> {
        self.fill_bytes(dest);
        Ok(())
    }
}

impl SeedableRng for CounterRng {
    type Seed = [u8; 8];

    fn from_seed(seed: Self::Seed) -> Self {
        CounterRng::from_key(&[u64::from_le_bytes(seed)])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn same_key_same_stream() {
        let mut a = CounterRng::from_key(&[1, 2, 3]);
        let mut b = CounterRng::from_key(&[1, 2, 3]);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn permuted_key_diverges() {
        let mut a = CounterRng::from_key(&[1, 2, 3]);
        let mut b = CounterRng::from_key(&[3, 2, 1]);
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn adjacent_entities_uncorrelated() {
        // Crude correlation check: means of adjacent-entity streams differ
        // and each is near 0.5.
        for entity in 0..4u64 {
            let mut rng = CounterRng::for_entity(9, entity, 0, Purpose::Transition);
            let mean: f64 = (0..4096).map(|_| rng.uniform_f64()).sum::<f64>() / 4096.0;
            assert!((mean - 0.5).abs() < 0.03, "mean {mean} too far from 0.5");
        }
    }

    #[test]
    fn uniform_u64_in_range_and_covers() {
        let mut rng = CounterRng::from_key(&[7]);
        let mut seen = [false; 10];
        for _ in 0..1000 {
            let v = rng.uniform_u64(10);
            assert!(v < 10);
            seen[v as usize] = true;
        }
        assert!(seen.iter().all(|&s| s), "all residues should appear");
    }

    #[test]
    fn uniform_f64_bounds() {
        let mut rng = CounterRng::from_key(&[11]);
        for _ in 0..10_000 {
            let v = rng.uniform_f64();
            assert!((0.0..1.0).contains(&v));
        }
    }

    #[test]
    fn fill_bytes_matches_next_u64() {
        let mut a = CounterRng::from_key(&[5]);
        let mut b = CounterRng::from_key(&[5]);
        let mut buf = [0u8; 16];
        a.fill_bytes(&mut buf);
        assert_eq!(&buf[..8], &b.next_u64().to_le_bytes());
        assert_eq!(&buf[8..], &b.next_u64().to_le_bytes());
    }

    #[test]
    fn fill_bytes_partial_tail() {
        let mut a = CounterRng::from_key(&[5]);
        let mut buf = [0u8; 11];
        a.fill_bytes(&mut buf); // must not panic on a non-multiple-of-8 buffer
        assert!(buf.iter().any(|&b| b != 0));
    }

    #[test]
    fn bernoulli_extremes() {
        let mut rng = CounterRng::from_key(&[13]);
        assert!(!rng.bernoulli(0.0));
        assert!(rng.bernoulli(1.0));
    }

    #[test]
    fn works_as_rngcore() {
        let mut rng = CounterRng::from_key(&[17]);
        let x: f64 = rng.gen_range(0.0..10.0);
        assert!((0.0..10.0).contains(&x));
    }
}
