//! Ready-made disease models.
//!
//! The evaluation in the paper simulates an influenza-like illness over
//! 120–180 daily iterations ("three to four months of simulated time",
//! §II-B). [`flu_model`] reproduces the canonical EpiSimdemics H1N1-style
//! model: susceptible → latent → infectious (symptomatic or asymptomatic)
//! → recovered, with a vaccinated treatment that shortens and attenuates
//! the infectious period.

use crate::model::{DwellDist, Ptts, PttsBuilder, TreatmentId};

/// Treatment id for vaccinated persons in [`flu_model`].
pub const TREATMENT_VACCINATED: TreatmentId = TreatmentId(1);

/// An influenza-like PTTS with a default and a vaccinated treatment.
///
/// States:
///
/// | state          | ι (infectivity) | s (susceptibility) | dwell        |
/// |----------------|-----------------|--------------------|--------------|
/// | `susceptible`  | 0.0             | 1.0                | forever      |
/// | `latent`       | 0.0             | 0.0                | uniform 1–3 d|
/// | `incubating`   | 0.25            | 0.0                | fixed 1 d    |
/// | `symptomatic`  | 1.0             | 0.0                | uniform 3–6 d|
/// | `asymptomatic` | 0.5             | 0.0                | uniform 3–6 d|
/// | `recovered`    | 0.0             | 0.0                | forever      |
///
/// Under the default treatment, 67% of incubating persons become
/// symptomatic; under [`TREATMENT_VACCINATED`], only 20% do (vaccination
/// mostly converts courses to the milder asymptomatic track).
pub fn flu_model() -> Ptts {
    PttsBuilder::new("flu")
        .treatments(2)
        .state("susceptible", 0.0, 1.0, DwellDist::Forever)
        .state("latent", 0.0, 0.0, DwellDist::Uniform(1, 3))
        .state("incubating", 0.25, 0.0, DwellDist::Fixed(1))
        .state("symptomatic", 1.0, 0.0, DwellDist::Uniform(3, 6))
        .state("asymptomatic", 0.5, 0.0, DwellDist::Uniform(3, 6))
        .state("recovered", 0.0, 0.0, DwellDist::Forever)
        .transition("latent", TreatmentId::DEFAULT, &[("incubating", 1.0)])
        .transition(
            "incubating",
            TreatmentId::DEFAULT,
            &[("symptomatic", 0.67), ("asymptomatic", 0.33)],
        )
        .transition(
            "incubating",
            TREATMENT_VACCINATED,
            &[("symptomatic", 0.20), ("asymptomatic", 0.80)],
        )
        .transition("symptomatic", TreatmentId::DEFAULT, &[("recovered", 1.0)])
        .transition("asymptomatic", TreatmentId::DEFAULT, &[("recovered", 1.0)])
        .start("susceptible")
        .exposed("latent")
        .build()
        .expect("built-in flu model must validate")
}

/// An SEIRS model with waning immunity: recovered persons drift back to
/// susceptible with a geometric dwell of mean `waning_days`, producing
/// *endemic* dynamics (reinfection and a persistent infection level) rather
/// than a single epidemic wave.
///
/// Caveats for consumers: the simulator's `infected_now` counts every
/// person with a running dwell timer, which here includes the
/// waning-immunity compartment — read the susceptible series for endemic
/// analyses. On reinfection a person's transmission-tree provenance
/// (`infected_on`/`infected_by`) is overwritten by the latest infection.
pub fn seirs_model(waning_days: f64) -> Ptts {
    let waning_p = (1.0 / waning_days.max(1.0)).clamp(1e-6, 1.0);
    PttsBuilder::new("seirs")
        .state("susceptible", 0.0, 1.0, DwellDist::Forever)
        .state("latent", 0.0, 0.0, DwellDist::Uniform(1, 3))
        .state("infectious", 1.0, 0.0, DwellDist::Uniform(3, 6))
        .state("waning", 0.0, 0.0, DwellDist::Geometric(waning_p))
        .transition("latent", TreatmentId::DEFAULT, &[("infectious", 1.0)])
        .transition("infectious", TreatmentId::DEFAULT, &[("waning", 1.0)])
        .transition("waning", TreatmentId::DEFAULT, &[("susceptible", 1.0)])
        .start("susceptible")
        .exposed("latent")
        .build()
        .expect("built-in SEIRS model must validate")
}

/// A minimal SIR model, useful in unit tests and as a DSL example: one
/// infectious state with a geometric dwell (mean `1/gamma` days).
pub fn sir_model(gamma: f64) -> Ptts {
    PttsBuilder::new("sir")
        .state("susceptible", 0.0, 1.0, DwellDist::Forever)
        .state("infectious", 1.0, 0.0, DwellDist::Geometric(gamma))
        .state("recovered", 0.0, 0.0, DwellDist::Forever)
        .transition("infectious", TreatmentId::DEFAULT, &[("recovered", 1.0)])
        .start("susceptible")
        .exposed("infectious")
        .build()
        .expect("built-in SIR model must validate")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::HealthTracker;

    #[test]
    fn flu_states_present() {
        let m = flu_model();
        for s in [
            "susceptible",
            "latent",
            "incubating",
            "symptomatic",
            "asymptomatic",
            "recovered",
        ] {
            assert!(m.state_by_name(s).is_some(), "missing state {s}");
        }
        assert_eq!(m.n_treatments(), 2);
    }

    #[test]
    fn flu_has_latent_period() {
        // The core algorithm exploits the latent period to process a whole
        // day in parallel (§II-B); the exposed state must be non-infectious.
        let m = flu_model();
        assert_eq!(m.infectivity(m.exposed_state()), 0.0);
    }

    #[test]
    fn vaccination_reduces_symptomatic_fraction() {
        let m = flu_model();
        let inc = m.state_by_name("incubating").unwrap();
        let sym = m.state_by_name("symptomatic").unwrap();
        let frac = |t: TreatmentId| {
            m.table(inc, t)
                .unwrap()
                .edges()
                .iter()
                .find(|&&(s, _)| s == sym)
                .map(|&(_, p)| p)
                .unwrap_or(0.0)
        };
        assert!(frac(TREATMENT_VACCINATED) < frac(TreatmentId::DEFAULT));
    }

    #[test]
    fn full_course_terminates() {
        let m = flu_model();
        for entity in 0..50u64 {
            let mut h = HealthTracker::new(&m);
            h.infect(&m, 99, entity, 0);
            let mut day = 1;
            while h.days_remaining != u32::MAX {
                h.advance(&m, 99, entity, day);
                day += 1;
                assert!(day < 100, "course must terminate");
            }
            assert_eq!(m.state(h.state).name, "recovered");
            // Latent 1-3 + incubating 1 + infectious 3-6 = 5..=10 days.
            assert!((5..=10).contains(&(day - 1)), "course length {}", day - 1);
        }
    }

    #[test]
    fn seirs_cycles_back_to_susceptible() {
        let m = seirs_model(30.0);
        assert!(m.validate().is_ok());
        let mut h = HealthTracker::new(&m);
        h.infect(&m, 3, 9, 0);
        let mut day = 1u64;
        // Walk until the person returns to susceptible (waning elapsed).
        while m.state(h.state).name != "susceptible" {
            h.advance(&m, 3, 9, day);
            day += 1;
            assert!(day < 2000, "waning must eventually return to susceptible");
        }
        // And they can be infected again.
        assert!(h.infect(&m, 3, 9, day));
        assert_eq!(m.state(h.state).name, "latent");
    }

    #[test]
    fn sir_model_validates() {
        let m = sir_model(0.3);
        assert!(m.validate().is_ok());
        assert!(m.is_infectious(m.exposed_state()));
    }
}
