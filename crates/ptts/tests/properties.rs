//! Property tests for the PTTS health-state machinery: dwell-time samples
//! respect their distribution's bounds, transition tables stay normalized
//! under arbitrary positive weights, sampling never selects an impossible
//! edge, and full trackers honour dwell times for arbitrary seeded
//! generators.

use proptest::prelude::*;
use ptts::crng::CounterRng;
use ptts::{DwellDist, HealthTracker, PttsBuilder, StateId, TransitionTable, TreatmentId};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn dwell_samples_respect_bounds(
        seed in 0u64..1_000_000,
        n in 0u32..200,
        lo in 0u32..50,
        span in 0u32..50,
        p in 0.01f64..1.0,
    ) {
        let mut rng = CounterRng::from_key(&[seed]);
        for _ in 0..20 {
            // Fixed: exactly n days, floored at 1.
            prop_assert_eq!(DwellDist::Fixed(n).sample(&mut rng), n.max(1));
            // Uniform: inside the (sanitized) inclusive range.
            let hi = lo + span;
            let v = DwellDist::Uniform(lo, hi).sample(&mut rng);
            prop_assert!(v >= lo.max(1) && v <= hi.max(1), "uniform {v} outside [{lo}, {hi}]");
            // Geometric: at least one day, finite.
            let g = DwellDist::Geometric(p).sample(&mut rng);
            prop_assert!(g >= 1);
            // Forever: the absorbing sentinel.
            prop_assert_eq!(DwellDist::Forever.sample(&mut rng), u32::MAX);
        }
    }

    #[test]
    fn dwell_means_match_bounds(
        lo in 1u32..40,
        span in 0u32..40,
        p in 0.01f64..1.0,
    ) {
        let hi = lo + span;
        let m = DwellDist::Uniform(lo, hi).mean().unwrap();
        prop_assert!(m >= lo as f64 && m <= hi as f64);
        let g = DwellDist::Geometric(p).mean().unwrap();
        prop_assert!((g - 1.0 / p).abs() < 1e-9);
        prop_assert!(DwellDist::Forever.mean().is_none());
    }

    #[test]
    fn transition_tables_normalize_any_positive_weights(
        weights in collection::vec(0.0f64..10.0, 1..6),
        extra in 0.001f64..10.0,
        seed in 0u64..1_000_000,
    ) {
        // At least one strictly positive weight (the constructor's
        // contract); the rest may be zero.
        let mut edges: Vec<(StateId, f64)> = weights
            .iter()
            .enumerate()
            .map(|(i, &w)| (StateId(i as u16), w))
            .collect();
        edges.push((StateId(weights.len() as u16), extra));
        let table = TransitionTable::new(edges.clone());

        // Normalization: probabilities sum to 1, each within [0, 1].
        let sum: f64 = table.edges().iter().map(|&(_, p)| p).sum();
        prop_assert!((sum - 1.0).abs() < 1e-9, "sum {sum}");
        for &(_, p) in table.edges() {
            prop_assert!((0.0..=1.0).contains(&p));
        }

        // Sampling: only positive-weight states may ever be returned.
        let allowed: Vec<StateId> = edges
            .iter()
            .filter(|&&(_, w)| w > 0.0)
            .map(|&(s, _)| s)
            .collect();
        let mut rng = CounterRng::from_key(&[seed, 1]);
        for _ in 0..50 {
            let s = table.sample(&mut rng);
            prop_assert!(
                allowed.contains(&s),
                "sampled zero-probability state {}", s.0
            );
        }
    }

    #[test]
    fn tracker_honours_dwell_bounds_for_arbitrary_models(
        lo in 1u32..10,
        span in 0u32..10,
        seed in 0u64..1_000_000,
        entity in 0u64..10_000,
    ) {
        let hi = lo + span;
        let m = PttsBuilder::new("prop")
            .state("s", 0.0, 1.0, DwellDist::Forever)
            .state("i", 0.9, 0.0, DwellDist::Uniform(lo, hi))
            .state("r", 0.0, 0.0, DwellDist::Forever)
            .transition("i", TreatmentId::DEFAULT, &[("r", 1.0)])
            .start("s")
            .exposed("i")
            .build()
            .unwrap();
        let mut h = HealthTracker::new(&m);
        prop_assert!(h.infect(&m, seed, entity, 0));
        let sampled = h.days_remaining;
        prop_assert!(
            sampled >= lo && sampled <= hi,
            "sampled dwell {sampled} outside [{lo}, {hi}]"
        );
        // Advance day by day: the state must flip to `r` after exactly the
        // sampled number of days, never before, never after.
        for day in 1..=sampled + 2 {
            h.advance(&m, seed, entity, day as u64);
            if day < sampled {
                prop_assert_eq!(h.state, m.exposed_state(), "left early on day {}", day);
            } else {
                prop_assert_eq!(
                    h.state,
                    m.state_by_name("r").unwrap(),
                    "wrong state on day {}", day
                );
            }
        }
        prop_assert_eq!(h.days_remaining, u32::MAX);
    }

    #[test]
    fn tracker_trajectories_replay_from_the_seed(
        seed in 0u64..1_000_000,
        entity in 0u64..10_000,
        p_recover in 0.05f64..0.95,
    ) {
        // A stochastic model (geometric dwell + probabilistic branch):
        // trajectories are a pure function of (seed, entity).
        let build = || {
            PttsBuilder::new("replay")
                .state("s", 0.0, 1.0, DwellDist::Forever)
                .state("i", 0.9, 0.0, DwellDist::Geometric(0.4))
                .state("w", 0.2, 0.0, DwellDist::Fixed(2))
                .state("r", 0.0, 0.0, DwellDist::Forever)
                .transition(
                    "i",
                    TreatmentId::DEFAULT,
                    &[("r", p_recover), ("w", 1.0 - p_recover)],
                )
                .transition("w", TreatmentId::DEFAULT, &[("r", 1.0)])
                .start("s")
                .exposed("i")
                .build()
                .unwrap()
        };
        let run = |m: &ptts::Ptts| {
            let mut h = HealthTracker::new(m);
            h.infect(m, seed, entity, 0);
            let mut traj = vec![h.state];
            for day in 1..40u64 {
                h.advance(m, seed, entity, day);
                traj.push(h.state);
            }
            traj
        };
        let m1 = build();
        let m2 = build();
        prop_assert_eq!(run(&m1), run(&m2));
        // The walk always terminates in the absorbing state.
        let last = *run(&m1).last().unwrap();
        prop_assert_eq!(last, m1.state_by_name("r").unwrap());
    }
}
