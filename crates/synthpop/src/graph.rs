//! CSR views of the bipartite person–location graph and degree statistics.
//!
//! The generator stores visits sorted by person; partitioning, splitLoc and
//! the location phase all need the transpose (visits grouped by location).
//! [`BipartiteGraph`] holds both directions plus the degree statistics used
//! throughout §III.

use crate::generator::{Population, Visit};
use crate::{LocationId, PersonId};

/// Both CSR directions of the person–location graph.
#[derive(Debug, Clone)]
pub struct BipartiteGraph {
    n_people: u32,
    n_locations: u32,
    /// For each location, the indices (into `Population::visits`) of its
    /// visits: `visit_idx[loc_offsets[l] .. loc_offsets[l+1]]`.
    loc_offsets: Vec<u32>,
    visit_idx: Vec<u32>,
}

impl BipartiteGraph {
    /// Build the location-side CSR from a population (counting sort; O(V)).
    pub fn build(pop: &Population) -> Self {
        let n_locations = pop.n_locations();
        let mut counts = vec![0u32; n_locations as usize + 1];
        for v in &pop.visits {
            counts[v.location.0 as usize + 1] += 1;
        }
        for i in 1..counts.len() {
            counts[i] += counts[i - 1];
        }
        let loc_offsets = counts.clone();
        let mut cursor = counts;
        let mut visit_idx = vec![0u32; pop.visits.len()];
        for (i, v) in pop.visits.iter().enumerate() {
            let slot = cursor[v.location.0 as usize];
            visit_idx[slot as usize] = i as u32;
            cursor[v.location.0 as usize] += 1;
        }
        BipartiteGraph {
            n_people: pop.n_people(),
            n_locations,
            loc_offsets,
            visit_idx,
        }
    }

    /// Number of person nodes.
    pub fn n_people(&self) -> u32 {
        self.n_people
    }

    /// Number of location nodes.
    pub fn n_locations(&self) -> u32 {
        self.n_locations
    }

    /// Indices into `Population::visits` for one location's visits.
    pub fn visits_at(&self, l: LocationId) -> &[u32] {
        let lo = self.loc_offsets[l.0 as usize] as usize;
        let hi = self.loc_offsets[l.0 as usize + 1] as usize;
        &self.visit_idx[lo..hi]
    }

    /// In-degree (visit count) of a location.
    #[inline]
    pub fn location_degree(&self, l: LocationId) -> u32 {
        self.loc_offsets[l.0 as usize + 1] - self.loc_offsets[l.0 as usize]
    }

    /// Number of *unique* visitors of a location (the paper's Fig. 3c
    /// plots "in-degree per location which is the number of unique
    /// visitors").
    pub fn unique_visitors(&self, pop: &Population, l: LocationId) -> u32 {
        let mut ps: Vec<PersonId> = self
            .visits_at(l)
            .iter()
            .map(|&i| pop.visits[i as usize].person)
            .collect();
        ps.sort_unstable();
        ps.dedup();
        ps.len() as u32
    }

    /// All location degrees.
    pub fn location_degrees(&self) -> Vec<u32> {
        (0..self.n_locations)
            .map(|l| self.location_degree(LocationId(l)))
            .collect()
    }

    /// Degree statistics of the location side.
    pub fn location_degree_stats(&self) -> DegreeStats {
        DegreeStats::from_degrees(
            (0..self.n_locations).map(|l| self.location_degree(LocationId(l))),
        )
    }

    /// Degree statistics of the person side.
    pub fn person_degree_stats(&self, pop: &Population) -> DegreeStats {
        DegreeStats::from_degrees(
            (0..self.n_people).map(|p| pop.visits_of(PersonId(p)).len() as u32),
        )
    }
}

/// Simple degree statistics: average, standard deviation, max.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DegreeStats {
    /// Node count.
    pub n: u64,
    /// Mean degree (`davg` in §III-B).
    pub avg: f64,
    /// Standard deviation.
    pub sd: f64,
    /// Maximum degree (`dmax` in §III-B).
    pub max: u32,
}

impl DegreeStats {
    /// Compute from an iterator of degrees.
    pub fn from_degrees(degrees: impl IntoIterator<Item = u32>) -> Self {
        let (mut n, mut sum, mut sumsq, mut max) = (0u64, 0f64, 0f64, 0u32);
        for d in degrees {
            n += 1;
            sum += d as f64;
            sumsq += (d as f64) * (d as f64);
            max = max.max(d);
        }
        if n == 0 {
            return DegreeStats {
                n: 0,
                avg: 0.0,
                sd: 0.0,
                max: 0,
            };
        }
        let avg = sum / n as f64;
        let var = (sumsq / n as f64 - avg * avg).max(0.0);
        DegreeStats {
            n,
            avg,
            sd: var.sqrt(),
            max,
        }
    }
}

/// Compute, per location, the number of arrive+depart events its DES will
/// process (2 × visits) — the `X` input of the paper's static load model.
pub fn events_per_location(graph: &BipartiteGraph) -> Vec<u64> {
    (0..graph.n_locations())
        .map(|l| 2 * graph.location_degree(LocationId(l)) as u64)
        .collect()
}

/// Access a visit through a graph index pair.
#[inline]
pub fn visit_at(pop: &Population, idx: u32) -> &Visit {
    &pop.visits[idx as usize]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generator::PopulationConfig;

    fn small() -> (Population, BipartiteGraph) {
        let pop = Population::generate(&PopulationConfig::small("T", 3000, 21));
        let g = BipartiteGraph::build(&pop);
        (pop, g)
    }

    #[test]
    fn transpose_is_consistent() {
        let (pop, g) = small();
        // Every visit appears in exactly one location bucket, the right one.
        let mut seen = vec![false; pop.visits.len()];
        for l in 0..g.n_locations() {
            for &i in g.visits_at(LocationId(l)) {
                assert_eq!(pop.visits[i as usize].location, LocationId(l));
                assert!(!seen[i as usize], "visit listed twice");
                seen[i as usize] = true;
            }
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn degrees_sum_to_visit_count() {
        let (pop, g) = small();
        let total: u64 = (0..g.n_locations())
            .map(|l| g.location_degree(LocationId(l)) as u64)
            .sum();
        assert_eq!(total, pop.n_visits());
    }

    #[test]
    fn unique_visitors_le_degree() {
        let (pop, g) = small();
        for l in 0..g.n_locations() {
            let l = LocationId(l);
            assert!(g.unique_visitors(&pop, l) <= g.location_degree(l));
        }
    }

    #[test]
    fn stats_match_hand_computation() {
        let s = DegreeStats::from_degrees([2u32, 4, 6]);
        assert_eq!(s.n, 3);
        assert!((s.avg - 4.0).abs() < 1e-12);
        assert!((s.sd - (8.0f64 / 3.0).sqrt()).abs() < 1e-12);
        assert_eq!(s.max, 6);
    }

    #[test]
    fn empty_stats() {
        let s = DegreeStats::from_degrees(std::iter::empty());
        assert_eq!(s.n, 0);
        assert_eq!(s.max, 0);
    }

    #[test]
    fn person_side_stats_match_paper_shape() {
        let (pop, g) = small();
        let s = g.person_degree_stats(&pop);
        assert!((s.avg - 5.5).abs() < 0.8, "avg {}", s.avg);
        assert!(s.sd < 3.5, "sd {}", s.sd);
    }

    #[test]
    fn events_are_twice_degree() {
        let (_, g) = small();
        let ev = events_per_location(&g);
        for l in 0..g.n_locations() {
            assert_eq!(ev[l as usize], 2 * g.location_degree(LocationId(l)) as u64);
        }
    }
}
