//! The Table I catalog: population data of the 48 contiguous US states + DC.
//!
//! The eight rows the paper prints (US, CA, NY, MI, NC, IA, AR, WY) use the
//! paper's exact numbers from the 2009 American Community Survey-derived
//! synthetic population. The remaining states (needed for Figure 5, which
//! plots all "48 contiguous states and DC") are derived from their 2009
//! census population estimates scaled by the US-wide people→location and
//! people→visit ratios observed in Table I.

/// One state's synthetic-population sizes (full scale, as in Table I).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct UsState {
    /// Two-letter postal code (`"DC"` for the District of Columbia).
    pub code: &'static str,
    /// Daily visit count (person–location edges).
    pub visits: u64,
    /// Number of person nodes.
    pub people: u64,
    /// Number of location nodes.
    pub locations: u64,
    /// Whether the row is verbatim from Table I (vs derived from census
    /// population estimates).
    pub exact: bool,
}

/// Visits per person in the US row of Table I (1,541,367,574 / 280,397,680).
pub const US_VISITS_PER_PERSON: f64 = 5.497_078;
/// People per location in the US row of Table I (280,397,680 / 71,705,723).
pub const US_PEOPLE_PER_LOCATION: f64 = 3.910_395;

const fn exact(code: &'static str, visits: u64, people: u64, locations: u64) -> UsState {
    UsState {
        code,
        visits,
        people,
        locations,
        exact: true,
    }
}

/// Derive a row from a 2009 census population estimate. Table I's synthetic
/// populations cover ≈ 93.2% of the census count (280.4M of ~301M for the
/// contiguous US), so we apply that coverage factor, then the US-wide
/// ratios.
const CENSUS_COVERAGE: f64 = 0.932;

fn derived(code: &'static str, census_pop_thousands: u64) -> UsState {
    let people = (census_pop_thousands as f64 * 1000.0 * CENSUS_COVERAGE) as u64;
    UsState {
        code,
        visits: (people as f64 * US_VISITS_PER_PERSON) as u64,
        people,
        locations: (people as f64 / US_PEOPLE_PER_LOCATION) as u64,
        exact: false,
    }
}

/// The eight rows printed in Table I (including the aggregate US row).
pub const TABLE_I_STATES: [UsState; 8] = [
    exact("US", 1_541_367_574, 280_397_680, 71_705_723),
    exact("CA", 183_858_275, 33_588_339, 7_178_611),
    exact("NY", 98_350_857, 17_910_467, 4_719_921),
    exact("MI", 52_534_554, 9_541_140, 2_490_068),
    exact("NC", 47_130_620, 8_541_564, 2_289_167),
    exact("IA", 15_280_731, 2_766_716, 748_239),
    exact("AR", 14_803_256, 2_685_280, 739_507),
    exact("WY", 2_756_411, 499_514, 144_369),
];

/// 2009 census population estimates (thousands) for the states not in
/// Table I. 41 states + DC; together with Table I's 7 individual states
/// this covers the 48 contiguous states and DC used in Figure 5.
const DERIVED_POPS: [(&str, u64); 42] = [
    ("AL", 4_710),
    ("AZ", 6_595),
    ("CO", 5_025),
    ("CT", 3_518),
    ("DC", 600),
    ("DE", 885),
    ("FL", 18_538),
    ("GA", 9_829),
    ("ID", 1_546),
    ("IL", 12_910),
    ("IN", 6_423),
    ("KS", 2_819),
    ("KY", 4_314),
    ("LA", 4_492),
    ("MA", 6_594),
    ("MD", 5_699),
    ("ME", 1_318),
    ("MN", 5_266),
    ("MO", 5_988),
    ("MS", 2_952),
    ("MT", 975),
    ("ND", 647),
    ("NE", 1_797),
    ("NH", 1_325),
    ("NJ", 8_708),
    ("NM", 2_010),
    ("NV", 2_643),
    ("OH", 11_543),
    ("OK", 3_687),
    ("OR", 3_826),
    ("PA", 12_605),
    ("RI", 1_053),
    ("SC", 4_561),
    ("SD", 812),
    ("TN", 6_296),
    ("TX", 24_782),
    ("UT", 2_785),
    ("VA", 7_883),
    ("VT", 622),
    ("WA", 6_664),
    ("WI", 5_655),
    ("WV", 1_820),
];

/// All 49 regions of Figure 5 (48 contiguous states + DC), largest first.
/// Does not include the aggregate `US` row.
pub fn all_states() -> Vec<UsState> {
    let mut v: Vec<UsState> = TABLE_I_STATES[1..].to_vec();
    v.extend(DERIVED_POPS.iter().map(|&(code, pop)| derived(code, pop)));
    v.sort_by(|a, b| b.people.cmp(&a.people).then(a.code.cmp(b.code)));
    v
}

/// Static accessor mirror of [`all_states`] for doc examples.
pub const ALL_STATES: fn() -> Vec<UsState> = all_states;

/// Look up a region by postal code (case-insensitive). `"US"` returns the
/// aggregate row.
pub fn by_code(code: &str) -> Option<UsState> {
    let upper = code.to_ascii_uppercase();
    TABLE_I_STATES
        .iter()
        .copied()
        .find(|s| s.code == upper)
        .or_else(|| all_states().into_iter().find(|s| s.code == upper))
}

impl UsState {
    /// Scale every count by `scale` (e.g. `1e-3` for a laptop-sized
    /// reproduction), keeping at least 1 of each.
    pub fn scaled(&self, scale: f64) -> ScaledCounts {
        ScaledCounts {
            code: self.code,
            people: ((self.people as f64 * scale).round() as u64).max(1),
            locations: ((self.locations as f64 * scale).round() as u64).max(1),
            visits: ((self.visits as f64 * scale).round() as u64).max(1),
        }
    }

    /// Average visits per person at full scale.
    pub fn visits_per_person(&self) -> f64 {
        self.visits as f64 / self.people as f64
    }

    /// Average visits per location at full scale (the paper's location
    /// average degree of ≈ 21.5).
    pub fn visits_per_location(&self) -> f64 {
        self.visits as f64 / self.locations as f64
    }
}

/// Target sizes after scaling.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ScaledCounts {
    /// Region code.
    pub code: &'static str,
    /// Scaled person count.
    pub people: u64,
    /// Scaled location count.
    pub locations: u64,
    /// Scaled visit count.
    pub visits: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_i_rows_match_paper() {
        let ca = by_code("ca").unwrap();
        assert_eq!(ca.people, 33_588_339);
        assert_eq!(ca.locations, 7_178_611);
        assert_eq!(ca.visits, 183_858_275);
        assert!(ca.exact);
        let wy = by_code("WY").unwrap();
        assert_eq!(wy.people, 499_514);
    }

    #[test]
    fn forty_nine_regions() {
        let all = all_states();
        assert_eq!(all.len(), 49, "48 contiguous states + DC");
        assert!(all.iter().all(|s| s.code != "US"));
        assert!(all.iter().all(|s| s.code != "AK" && s.code != "HI"));
        // No duplicates.
        let mut codes: Vec<_> = all.iter().map(|s| s.code).collect();
        codes.sort_unstable();
        codes.dedup();
        assert_eq!(codes.len(), 49);
    }

    #[test]
    fn us_ratios_match_table() {
        let us = TABLE_I_STATES[0];
        assert!((us.visits_per_person() - US_VISITS_PER_PERSON).abs() < 1e-4);
        assert!((us.people as f64 / us.locations as f64 - US_PEOPLE_PER_LOCATION).abs() < 1e-4);
        // Paper: "average degree of 5.5 for person nodes and 21.5 for
        // location nodes".
        assert!((us.visits_per_person() - 5.5).abs() < 0.1);
        assert!((us.visits_per_location() - 21.5).abs() < 0.1);
    }

    #[test]
    fn derived_rows_have_plausible_ratios() {
        for s in all_states().iter().filter(|s| !s.exact) {
            assert!((s.visits_per_person() - 5.5).abs() < 0.1, "{}", s.code);
            assert!(s.people > 100_000, "{} too small", s.code);
        }
    }

    #[test]
    fn state_sum_close_to_us_total() {
        let total: u64 = all_states().iter().map(|s| s.people).sum();
        let us = TABLE_I_STATES[0].people;
        let ratio = total as f64 / us as f64;
        assert!((0.97..1.03).contains(&ratio), "sum/US = {ratio}");
    }

    #[test]
    fn scaling_rounds_and_floors() {
        let wy = by_code("WY").unwrap();
        let s = wy.scaled(1e-3);
        assert_eq!(s.people, 500);
        assert_eq!(s.locations, 144);
        let tiny = wy.scaled(1e-9);
        assert_eq!(tiny.people, 1);
        assert_eq!(tiny.locations, 1);
    }

    #[test]
    fn unknown_code_is_none() {
        assert!(by_code("ZZ").is_none());
        assert!(by_code("AK").is_none(), "Alaska is not contiguous");
    }
}
