//! # synthpop — synthetic populations and the person–location graph
//!
//! EpiSimdemics' input is "a bipartite graph consisting of person and
//! location nodes, with edges between them representing a visit by a person
//! to a specific location at a specific time … a synthetic network based on
//! census and other data" (paper §II-A, citing Barrett et al. \[5\]). The
//! NDSSL populations themselves are not redistributable, so this crate is
//! the substitution documented in DESIGN.md: a parametric generator that
//! reproduces the *statistical* properties the paper's analysis rests on —
//!
//! * Table I's per-state people/location/visit counts (at a configurable
//!   scale),
//! * near-constant person out-degree (avg ≈ 5.5, σ ≈ 2.6),
//! * heavy-tailed (power-law) location in-degree with exponent β,
//! * sublocation structure inside each location (rooms/classrooms), which
//!   §III-C's splitLoc preprocessing exploits,
//! * location kinds (home/work/school/...) so interventions such as school
//!   closure act on the right nodes.
//!
//! Modules:
//! * [`state`] — the Table I catalog: 48 contiguous US states + DC.
//! * [`powerlaw`] — bounded-Pareto sampling and exponent estimation.
//! * [`alias`] — Walker alias tables for O(1) weighted sampling.
//! * [`generator`] — the population generator itself.
//! * [`graph`] — CSR views of the bipartite graph + degree statistics.
//! * [`histogram`] — log-binned histograms (Figures 3c/3d/7).
//! * [`io`] — a compact binary format for generated populations.

pub mod alias;
pub mod generator;
pub mod graph;
pub mod histogram;
pub mod io;
pub mod powerlaw;
pub mod state;

pub use generator::{Location, LocationKind, Person, Population, PopulationConfig, Visit};
pub use graph::BipartiteGraph;
pub use histogram::LogHistogram;
pub use powerlaw::BoundedPareto;
pub use state::{UsState, ALL_STATES, TABLE_I_STATES};

/// Identifier of a person within one population (dense, 0-based).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct PersonId(pub u32);

/// Identifier of a location within one population (dense, 0-based).
///
/// After splitLoc preprocessing (in `episim-core`), new location ids are
/// appended past the original range.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct LocationId(pub u32);

/// Index of a sublocation (room) within its location.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct SublocationId(pub u16);

/// Minutes in a simulated day.
pub const MINUTES_PER_DAY: u16 = 1440;
