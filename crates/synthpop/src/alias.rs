//! Walker alias tables: O(1) sampling from a fixed discrete distribution.
//!
//! The generator draws hundreds of millions of weighted location choices at
//! full scale; the alias method makes each draw two table lookups instead of
//! a binary search over cumulative weights.

use rand::RngCore;

/// An alias table over `n` outcomes with fixed weights.
#[derive(Debug, Clone)]
pub struct AliasTable {
    /// Acceptance probability of the primary outcome in each bucket,
    /// pre-scaled to u64 range for a branch-cheap comparison.
    prob: Vec<u64>,
    /// Alias outcome used when the primary is rejected.
    alias: Vec<u32>,
}

impl AliasTable {
    /// Build from non-negative weights (not necessarily normalized).
    ///
    /// # Panics
    /// Panics if `weights` is empty, longer than `u32::MAX`, contains a
    /// negative/NaN weight, or sums to zero.
    pub fn new(weights: &[f64]) -> Self {
        let n = weights.len();
        assert!(n > 0, "alias table needs at least one outcome");
        assert!(n <= u32::MAX as usize, "too many outcomes");
        let total: f64 = weights
            .iter()
            .map(|&w| {
                assert!(w >= 0.0 && w.is_finite(), "weights must be finite and ≥ 0");
                w
            })
            .sum();
        assert!(total > 0.0, "total weight must be positive");

        // Scale so the average bucket holds probability exactly 1.
        let scale = n as f64 / total;
        let mut scaled: Vec<f64> = weights.iter().map(|&w| w * scale).collect();
        let mut prob = vec![0u64; n];
        let mut alias = vec![0u32; n];

        // Classic two-worklist construction (Vose's method).
        let mut small: Vec<u32> = Vec::new();
        let mut large: Vec<u32> = Vec::new();
        for (i, &p) in scaled.iter().enumerate() {
            if p < 1.0 {
                small.push(i as u32);
            } else {
                large.push(i as u32);
            }
        }
        while let (Some(&s), Some(&l)) = (small.last(), large.last()) {
            small.pop();
            let ps = scaled[s as usize];
            prob[s as usize] = to_fixed(ps);
            alias[s as usize] = l;
            scaled[l as usize] = (scaled[l as usize] + ps) - 1.0;
            if scaled[l as usize] < 1.0 {
                large.pop();
                small.push(l);
            }
        }
        for &i in small.iter().chain(large.iter()) {
            prob[i as usize] = u64::MAX; // always accept
        }
        AliasTable { prob, alias }
    }

    /// Number of outcomes.
    pub fn len(&self) -> usize {
        self.prob.len()
    }

    /// Whether the table is empty (never true post-construction).
    pub fn is_empty(&self) -> bool {
        self.prob.is_empty()
    }

    /// Draw an outcome index.
    #[inline]
    pub fn sample<R: RngCore>(&self, rng: &mut R) -> u32 {
        let n = self.prob.len() as u64;
        let r = rng.next_u64();
        // Bucket from the high bits (mod bias negligible vs n ≤ 2^32), accept
        // from a second draw.
        let bucket = (r % n) as usize;
        if rng.next_u64() <= self.prob[bucket] {
            bucket as u32
        } else {
            self.alias[bucket]
        }
    }
}

#[inline]
fn to_fixed(p: f64) -> u64 {
    (p.clamp(0.0, 1.0) * u64::MAX as f64) as u64
}

#[cfg(test)]
mod tests {
    use super::*;
    use ptts::CounterRng;

    fn empirical(weights: &[f64], draws: usize) -> Vec<f64> {
        let t = AliasTable::new(weights);
        let mut rng = CounterRng::from_key(&[42]);
        let mut counts = vec![0usize; weights.len()];
        for _ in 0..draws {
            counts[t.sample(&mut rng) as usize] += 1;
        }
        counts.iter().map(|&c| c as f64 / draws as f64).collect()
    }

    #[test]
    fn uniform_weights_sample_uniformly() {
        let freqs = empirical(&[1.0; 8], 200_000);
        for f in freqs {
            assert!((f - 0.125).abs() < 0.01, "{f}");
        }
    }

    #[test]
    fn skewed_weights_respected() {
        let freqs = empirical(&[1.0, 2.0, 7.0], 300_000);
        assert!((freqs[0] - 0.1).abs() < 0.01);
        assert!((freqs[1] - 0.2).abs() < 0.01);
        assert!((freqs[2] - 0.7).abs() < 0.01);
    }

    #[test]
    fn zero_weight_never_sampled() {
        let freqs = empirical(&[0.0, 1.0, 0.0, 1.0], 100_000);
        assert_eq!(freqs[0], 0.0);
        assert_eq!(freqs[2], 0.0);
    }

    #[test]
    fn single_outcome() {
        let t = AliasTable::new(&[3.5]);
        let mut rng = CounterRng::from_key(&[1]);
        for _ in 0..100 {
            assert_eq!(t.sample(&mut rng), 0);
        }
    }

    #[test]
    fn heavy_tailed_weights() {
        // Pareto-ish weights: the head must dominate but the tail must
        // still appear.
        let weights: Vec<f64> = (1..=1000).map(|i| 1.0 / (i as f64).powi(2)).collect();
        let freqs = empirical(&weights, 500_000);
        assert!(freqs[0] > 0.55 && freqs[0] < 0.67, "{}", freqs[0]);
        assert!(freqs[1] > 0.10 && freqs[1] < 0.20, "{}", freqs[1]);
        let tail: f64 = freqs[100..].iter().sum();
        assert!(tail > 0.0, "tail outcomes should occasionally appear");
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn rejects_all_zero() {
        AliasTable::new(&[0.0, 0.0]);
    }

    #[test]
    #[should_panic(expected = "at least one")]
    fn rejects_empty() {
        AliasTable::new(&[]);
    }
}
