//! A compact binary format for generated populations.
//!
//! Generating the larger states takes seconds and is deterministic, but
//! sweeping experiments re-use the same population many times; this format
//! lets harnesses cache them on disk. Layout (little-endian throughout):
//!
//! ```text
//! magic "EPOP" | version u32 | seed u64
//! code: len u16 + utf-8 bytes
//! n_people u32 | n_locations u32 | n_visits u64
//! locations:  (kind u8, n_sublocations u16, weight f32) × n_locations
//! people:     (home u32, anchor u32)                    × n_people
//!             anchor = u32::MAX encodes "none"
//! offsets:    u32 × (n_people + 1)
//! visits:     (person u32, location u32, sublocation u16,
//!              start u16, duration u16)                 × n_visits
//! ```

use crate::generator::{Location, LocationKind, Person, Population, Visit};
use crate::{LocationId, PersonId, SublocationId};
use bytes::{Buf, BufMut, Bytes, BytesMut};
use std::fmt;

const MAGIC: &[u8; 4] = b"EPOP";
const VERSION: u32 = 1;

/// Decoding failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DecodeError {
    /// Wrong magic bytes (not a population file).
    BadMagic,
    /// Unsupported format version.
    BadVersion(u32),
    /// The buffer ended before the declared contents.
    Truncated,
    /// A field held an out-of-range value.
    Corrupt(&'static str),
}

impl fmt::Display for DecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DecodeError::BadMagic => write!(f, "not an EPOP population file"),
            DecodeError::BadVersion(v) => write!(f, "unsupported EPOP version {v}"),
            DecodeError::Truncated => write!(f, "population file truncated"),
            DecodeError::Corrupt(what) => write!(f, "corrupt population file: {what}"),
        }
    }
}

impl std::error::Error for DecodeError {}

/// Serialize a population.
pub fn encode(pop: &Population) -> Bytes {
    let mut buf = BytesMut::with_capacity(
        64 + pop.locations.len() * 7
            + pop.people.len() * 8
            + pop.person_offsets.len() * 4
            + pop.visits.len() * 14,
    );
    buf.put_slice(MAGIC);
    buf.put_u32_le(VERSION);
    buf.put_u64_le(pop.seed);
    let code = pop.code.as_bytes();
    buf.put_u16_le(code.len() as u16);
    buf.put_slice(code);
    buf.put_u32_le(pop.people.len() as u32);
    buf.put_u32_le(pop.locations.len() as u32);
    buf.put_u64_le(pop.visits.len() as u64);
    for l in &pop.locations {
        buf.put_u8(l.kind as u8);
        buf.put_u16_le(l.n_sublocations);
        buf.put_f32_le(l.weight);
    }
    for p in &pop.people {
        buf.put_u32_le(p.home.0);
        buf.put_u32_le(p.anchor.map(|a| a.0).unwrap_or(u32::MAX));
    }
    for &o in &pop.person_offsets {
        buf.put_u32_le(o);
    }
    for v in &pop.visits {
        buf.put_u32_le(v.person.0);
        buf.put_u32_le(v.location.0);
        buf.put_u16_le(v.sublocation.0);
        buf.put_u16_le(v.start_min);
        buf.put_u16_le(v.duration_min);
    }
    buf.freeze()
}

fn need(buf: &impl Buf, n: usize) -> Result<(), DecodeError> {
    if buf.remaining() < n {
        Err(DecodeError::Truncated)
    } else {
        Ok(())
    }
}

fn kind_from(b: u8) -> Result<LocationKind, DecodeError> {
    LocationKind::ALL
        .into_iter()
        .find(|&k| k as u8 == b)
        .ok_or(DecodeError::Corrupt("location kind"))
}

/// Deserialize a population.
pub fn decode(mut buf: &[u8]) -> Result<Population, DecodeError> {
    need(&buf, 4)?;
    let mut magic = [0u8; 4];
    buf.copy_to_slice(&mut magic);
    if &magic != MAGIC {
        return Err(DecodeError::BadMagic);
    }
    need(&buf, 4 + 8 + 2)?;
    let version = buf.get_u32_le();
    if version != VERSION {
        return Err(DecodeError::BadVersion(version));
    }
    let seed = buf.get_u64_le();
    let code_len = buf.get_u16_le() as usize;
    need(&buf, code_len)?;
    let mut code_bytes = vec![0u8; code_len];
    buf.copy_to_slice(&mut code_bytes);
    let code = String::from_utf8(code_bytes).map_err(|_| DecodeError::Corrupt("code not utf-8"))?;
    need(&buf, 4 + 4 + 8)?;
    let n_people = buf.get_u32_le() as usize;
    let n_locations = buf.get_u32_le() as usize;
    let n_visits = buf.get_u64_le() as usize;

    need(&buf, n_locations * 7)?;
    let mut locations = Vec::with_capacity(n_locations);
    for _ in 0..n_locations {
        let kind = kind_from(buf.get_u8())?;
        let n_sublocations = buf.get_u16_le().max(1);
        let weight = buf.get_f32_le();
        locations.push(Location {
            kind,
            n_sublocations,
            weight,
        });
    }
    need(&buf, n_people * 8)?;
    let mut people = Vec::with_capacity(n_people);
    for _ in 0..n_people {
        let home = buf.get_u32_le();
        let anchor = buf.get_u32_le();
        if home as usize >= n_locations {
            return Err(DecodeError::Corrupt("home out of range"));
        }
        if anchor != u32::MAX && anchor as usize >= n_locations {
            return Err(DecodeError::Corrupt("anchor out of range"));
        }
        people.push(Person {
            home: LocationId(home),
            anchor: (anchor != u32::MAX).then_some(LocationId(anchor)),
        });
    }
    need(&buf, (n_people + 1) * 4)?;
    let mut person_offsets = Vec::with_capacity(n_people + 1);
    for _ in 0..=n_people {
        person_offsets.push(buf.get_u32_le());
    }
    if person_offsets.first() != Some(&0)
        || person_offsets.last().copied() != Some(n_visits as u32)
        || person_offsets.windows(2).any(|w| w[0] > w[1])
    {
        return Err(DecodeError::Corrupt("person offsets"));
    }
    need(&buf, n_visits * 14)?;
    let mut visits = Vec::with_capacity(n_visits);
    for _ in 0..n_visits {
        let person = buf.get_u32_le();
        let location = buf.get_u32_le();
        let sublocation = buf.get_u16_le();
        let start_min = buf.get_u16_le();
        let duration_min = buf.get_u16_le();
        if person as usize >= n_people || location as usize >= n_locations {
            return Err(DecodeError::Corrupt("visit endpoint out of range"));
        }
        visits.push(Visit {
            person: PersonId(person),
            location: LocationId(location),
            sublocation: SublocationId(sublocation),
            start_min,
            duration_min,
        });
    }
    Ok(Population {
        code,
        seed,
        people,
        locations,
        visits,
        person_offsets,
    })
}

/// Write a population to a file.
pub fn save(pop: &Population, path: &std::path::Path) -> std::io::Result<()> {
    std::fs::write(path, encode(pop))
}

/// Read a population from a file.
pub fn load(path: &std::path::Path) -> std::io::Result<Population> {
    let data = std::fs::read(path)?;
    decode(&data).map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generator::PopulationConfig;

    fn pop() -> Population {
        Population::generate(&PopulationConfig::small("IO", 800, 13))
    }

    #[test]
    fn round_trip_is_identity() {
        let p = pop();
        let bytes = encode(&p);
        let q = decode(&bytes).unwrap();
        assert_eq!(p.code, q.code);
        assert_eq!(p.seed, q.seed);
        assert_eq!(p.people, q.people);
        assert_eq!(p.locations, q.locations);
        assert_eq!(p.visits, q.visits);
        assert_eq!(p.person_offsets, q.person_offsets);
    }

    #[test]
    fn file_round_trip() {
        let p = pop();
        let dir = std::env::temp_dir().join("episim-io-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("pop.epop");
        save(&p, &path).unwrap();
        let q = load(&path).unwrap();
        assert_eq!(p.visits, q.visits);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn rejects_bad_magic() {
        assert_eq!(decode(b"NOPE").err(), Some(DecodeError::BadMagic));
        assert_eq!(decode(b"EP").err(), Some(DecodeError::Truncated));
        let mut data = encode(&pop()).to_vec();
        data[0] = b'X';
        assert_eq!(decode(&data).err(), Some(DecodeError::BadMagic));
    }

    #[test]
    fn rejects_bad_version() {
        let mut data = encode(&pop()).to_vec();
        data[4] = 99;
        assert!(matches!(decode(&data), Err(DecodeError::BadVersion(_))));
    }

    #[test]
    fn rejects_truncation_anywhere() {
        let data = encode(&pop()).to_vec();
        // Chop at a sample of byte positions: never panic, always a clean
        // error.
        for cut in [0usize, 3, 8, 20, data.len() / 2, data.len() - 1] {
            let r = decode(&data[..cut]);
            assert!(r.is_err(), "cut at {cut} decoded successfully");
        }
    }

    #[test]
    fn rejects_out_of_range_references() {
        let p = pop();
        let mut data = encode(&p).to_vec();
        // Overwrite the first visit's location id with a huge value. The
        // visit array starts after header + locations + people + offsets.
        let code_len = p.code.len();
        let header = 4 + 4 + 8 + 2 + code_len + 4 + 4 + 8;
        let fixed = header + p.locations.len() * 7 + p.people.len() * 8 + (p.people.len() + 1) * 4;
        data[fixed + 4..fixed + 8].copy_from_slice(&u32::MAX.to_le_bytes());
        assert_eq!(
            decode(&data).err(),
            Some(DecodeError::Corrupt("visit endpoint out of range"))
        );
    }

    #[test]
    fn encoded_size_is_compact() {
        let p = pop();
        let bytes = encode(&p);
        // ~14 bytes per visit dominates; ensure no accidental bloat.
        let budget = 200
            + p.locations.len() * 7
            + p.people.len() * 8
            + (p.people.len() + 1) * 4
            + p.visits.len() * 14;
        assert!(bytes.len() <= budget, "{} > {budget}", bytes.len());
    }
}
