//! Log-binned histograms, matching the paper's distribution plots.
//!
//! Figures 3(c), 3(d) and 7 plot degree / load distributions with
//! logarithmic bins ("bin 10^k..."). [`LogHistogram`] reproduces that
//! binning with a configurable number of bins per decade.

/// A histogram with logarithmically spaced bins.
#[derive(Debug, Clone)]
pub struct LogHistogram {
    bins_per_decade: u32,
    /// counts[i] covers [edge(i), edge(i+1)).
    counts: Vec<u64>,
    /// Values < 1 (including 0) land in a dedicated underflow bucket.
    underflow: u64,
    total: u64,
}

impl LogHistogram {
    /// Create a histogram with `bins_per_decade` bins per factor of 10.
    pub fn new(bins_per_decade: u32) -> Self {
        assert!(bins_per_decade > 0);
        LogHistogram {
            bins_per_decade,
            counts: Vec::new(),
            underflow: 0,
            total: 0,
        }
    }

    /// Lower edge of bin `i`.
    pub fn edge(&self, i: usize) -> f64 {
        10f64.powf(i as f64 / self.bins_per_decade as f64)
    }

    /// Add one observation.
    pub fn add(&mut self, value: f64) {
        self.total += 1;
        if value < 1.0 || value.is_nan() || !value.is_finite() {
            self.underflow += 1;
            return;
        }
        let bin = (value.log10() * self.bins_per_decade as f64).floor() as usize;
        if self.counts.len() <= bin {
            self.counts.resize(bin + 1, 0);
        }
        self.counts[bin] += 1;
    }

    /// Add many observations.
    pub fn extend(&mut self, values: impl IntoIterator<Item = f64>) {
        for v in values {
            self.add(v);
        }
    }

    /// Count of observations below 1.
    pub fn underflow(&self) -> u64 {
        self.underflow
    }

    /// Total observations.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Non-empty rows as `(bin_lo, bin_hi, count)`.
    pub fn rows(&self) -> Vec<(f64, f64, u64)> {
        self.counts
            .iter()
            .enumerate()
            .filter(|&(_, &c)| c > 0)
            .map(|(i, &c)| (self.edge(i), self.edge(i + 1), c))
            .collect()
    }

    /// Render as aligned text, one row per non-empty bin — used by the
    /// figure-regeneration binaries.
    pub fn render(&self, label: &str) -> String {
        let mut out = format!(
            "# {label}: {} observations\n# bin_lo\tbin_hi\tcount\n",
            self.total
        );
        if self.underflow > 0 {
            out.push_str(&format!("0\t1\t{}\n", self.underflow));
        }
        for (lo, hi, c) in self.rows() {
            out.push_str(&format!("{lo:.3}\t{hi:.3}\t{c}\n"));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn values_land_in_expected_bins() {
        let mut h = LogHistogram::new(1);
        h.extend([1.0, 5.0, 9.99, 10.0, 99.0, 100.0]);
        let rows = h.rows();
        assert_eq!(rows.len(), 3);
        assert_eq!(rows[0], (1.0, 10.0, 3));
        assert_eq!(rows[1].2, 2);
        assert_eq!(rows[2].2, 1);
    }

    #[test]
    fn underflow_handles_zero_and_negative() {
        let mut h = LogHistogram::new(2);
        h.extend([0.0, -3.0, 0.5, f64::NAN, 2.0]);
        assert_eq!(h.underflow(), 4);
        assert_eq!(h.total(), 5);
        assert_eq!(h.rows().len(), 1);
    }

    #[test]
    fn finer_binning() {
        let mut h = LogHistogram::new(4);
        h.add(1.0);
        h.add(1.9); // 10^(1/4) ≈ 1.78, so 1.9 is bin 1
        let rows = h.rows();
        assert_eq!(rows.len(), 2);
    }

    #[test]
    fn counts_conserved() {
        let mut h = LogHistogram::new(3);
        h.extend((1..1000).map(|i| i as f64));
        let binned: u64 = h.rows().iter().map(|r| r.2).sum();
        assert_eq!(binned + h.underflow(), h.total());
        assert_eq!(h.total(), 999);
    }

    #[test]
    fn render_contains_rows() {
        let mut h = LogHistogram::new(1);
        h.extend([1.0, 20.0]);
        let text = h.render("test");
        assert!(text.contains("# test"));
        assert!(text.lines().count() >= 4);
    }
}
