//! Bounded power-law (Pareto) sampling and exponent estimation.
//!
//! §III-B of the paper models the location degree distribution as
//! `f = D · c · d^(−β)` with β > 1 — the heavy-tailed structure responsible
//! for the scalability ceiling. This module provides the sampler the
//! generator uses to produce that structure and an estimator used by tests
//! to verify the generated graphs actually exhibit it.

use rand::RngCore;

/// A continuous bounded Pareto distribution on `[xmin, xmax]` with shape
/// `alpha` (density ∝ x^(−alpha−1) — i.e. a degree exponent β = alpha + 1).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BoundedPareto {
    /// Shape parameter (> 0).
    pub alpha: f64,
    /// Lower bound (> 0).
    pub xmin: f64,
    /// Upper bound (> xmin).
    pub xmax: f64,
}

impl BoundedPareto {
    /// Create a sampler.
    ///
    /// # Panics
    /// Panics unless `alpha > 0` and `0 < xmin < xmax`.
    pub fn new(alpha: f64, xmin: f64, xmax: f64) -> Self {
        assert!(alpha > 0.0, "alpha must be positive");
        assert!(xmin > 0.0 && xmax > xmin, "need 0 < xmin < xmax");
        BoundedPareto { alpha, xmin, xmax }
    }

    /// Inverse-CDF sample from a uniform `u ∈ [0,1)`.
    #[inline]
    pub fn inv_cdf(&self, u: f64) -> f64 {
        // F(x) = (1 − (xmin/x)^α) / (1 − (xmin/xmax)^α)
        let a = self.alpha;
        let hmin = self.xmin.powf(-a);
        let hmax = self.xmax.powf(-a);
        let h = hmin - u * (hmin - hmax);
        h.powf(-1.0 / a)
    }

    /// Draw one sample.
    #[inline]
    pub fn sample<R: RngCore>(&self, rng: &mut R) -> f64 {
        let u = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        self.inv_cdf(u)
    }

    /// Mean of the bounded Pareto.
    pub fn mean(&self) -> f64 {
        let a = self.alpha;
        let (l, h) = (self.xmin, self.xmax);
        if (a - 1.0).abs() < 1e-12 {
            // α = 1 limit: mean = ln(h/l) · l·h/(h−l)
            (h / l).ln() * l * h / (h - l)
        } else {
            let num = l.powf(a) / (1.0 - (l / h).powf(a));
            num * (a / (a - 1.0)) * (1.0 / l.powf(a - 1.0) - 1.0 / h.powf(a - 1.0))
        }
    }
}

/// Maximum-likelihood estimate of the (unbounded) power-law exponent β for
/// samples ≥ `xmin`: `β = 1 + n / Σ ln(x_i / xmin)` (Clauset et al. 2009).
///
/// Returns `None` if fewer than 2 samples exceed `xmin`.
pub fn estimate_exponent(samples: impl IntoIterator<Item = f64>, xmin: f64) -> Option<f64> {
    let mut n = 0usize;
    let mut sum_log = 0.0f64;
    for x in samples {
        if x >= xmin && x.is_finite() {
            n += 1;
            sum_log += (x / xmin).ln();
        }
    }
    if n < 2 || sum_log <= 0.0 {
        return None;
    }
    Some(1.0 + n as f64 / sum_log)
}

/// A clipped-normal sampler for near-constant degrees (the person side:
/// "avg = 5.5, σ = 2.6 ... no significant variance", §III-A). Uses
/// Box–Muller over the supplied RNG and clips to `[lo, hi]`.
#[derive(Debug, Clone, Copy)]
pub struct ClippedNormal {
    /// Mean.
    pub mean: f64,
    /// Standard deviation before clipping.
    pub sd: f64,
    /// Inclusive lower clip.
    pub lo: f64,
    /// Inclusive upper clip.
    pub hi: f64,
}

impl ClippedNormal {
    /// Draw one sample.
    pub fn sample<R: RngCore>(&self, rng: &mut R) -> f64 {
        let u1 = (((rng.next_u64() >> 11) as f64) + 0.5) * (1.0 / (1u64 << 53) as f64);
        let u2 = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        let z = (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos();
        (self.mean + self.sd * z).clamp(self.lo, self.hi)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ptts::CounterRng;

    #[test]
    fn samples_within_bounds() {
        let d = BoundedPareto::new(1.0, 1.0, 1000.0);
        let mut rng = CounterRng::from_key(&[1]);
        for _ in 0..10_000 {
            let x = d.sample(&mut rng);
            assert!((1.0..=1000.0).contains(&x), "{x}");
        }
    }

    #[test]
    fn inv_cdf_monotone() {
        let d = BoundedPareto::new(1.5, 2.0, 500.0);
        let mut prev = 0.0;
        for i in 0..100 {
            let x = d.inv_cdf(i as f64 / 100.0);
            assert!(x >= prev);
            prev = x;
        }
        assert!((d.inv_cdf(0.0) - 2.0).abs() < 1e-9);
        assert!((d.inv_cdf(1.0 - 1e-15) - 500.0).abs() < 1.0);
    }

    #[test]
    fn empirical_mean_matches_analytic() {
        let d = BoundedPareto::new(1.2, 1.0, 10_000.0);
        let mut rng = CounterRng::from_key(&[2]);
        let n = 200_000;
        let mean: f64 = (0..n).map(|_| d.sample(&mut rng)).sum::<f64>() / n as f64;
        let expected = d.mean();
        assert!(
            (mean - expected).abs() / expected < 0.05,
            "empirical {mean} vs analytic {expected}"
        );
    }

    #[test]
    fn exponent_recovered_by_mle() {
        // Sample with α = 1.0 (β = 2.0) and recover the exponent.
        let d = BoundedPareto::new(1.0, 1.0, 1e9);
        let mut rng = CounterRng::from_key(&[3]);
        let samples: Vec<f64> = (0..100_000).map(|_| d.sample(&mut rng)).collect();
        let beta = estimate_exponent(samples, 1.0).unwrap();
        assert!((beta - 2.0).abs() < 0.05, "estimated β = {beta}");
    }

    #[test]
    fn estimator_edge_cases() {
        assert!(estimate_exponent(std::iter::empty(), 1.0).is_none());
        assert!(estimate_exponent([5.0], 1.0).is_none());
        assert!(estimate_exponent([1.0, 1.0], 1.0).is_none()); // sum_log = 0
    }

    #[test]
    fn heavy_tail_actually_heavy() {
        // With β = 2 the max of 100k samples should dwarf the mean.
        let d = BoundedPareto::new(1.0, 1.0, 1e7);
        let mut rng = CounterRng::from_key(&[4]);
        let samples: Vec<f64> = (0..100_000).map(|_| d.sample(&mut rng)).collect();
        let mean = samples.iter().sum::<f64>() / samples.len() as f64;
        let max = samples.iter().cloned().fold(0.0, f64::max);
        assert!(max > 50.0 * mean, "max {max} mean {mean}");
    }

    #[test]
    fn clipped_normal_stays_clipped_and_centered() {
        let d = ClippedNormal {
            mean: 5.5,
            sd: 2.6,
            lo: 1.0,
            hi: 15.0,
        };
        let mut rng = CounterRng::from_key(&[5]);
        let n = 50_000;
        let samples: Vec<f64> = (0..n).map(|_| d.sample(&mut rng)).collect();
        assert!(samples.iter().all(|&x| (1.0..=15.0).contains(&x)));
        let mean = samples.iter().sum::<f64>() / n as f64;
        assert!((mean - 5.5).abs() < 0.1, "mean {mean}");
        let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        let sd = var.sqrt();
        assert!(
            (sd - 2.6).abs() < 0.3,
            "sd {sd} (clipping shrinks it a bit)"
        );
    }

    #[test]
    #[should_panic(expected = "xmin")]
    fn rejects_bad_bounds() {
        BoundedPareto::new(1.0, 5.0, 5.0);
    }
}
