//! The synthetic population generator.
//!
//! Produces a person–location bipartite graph with the statistical structure
//! the paper's analysis depends on (§II-A, §III): near-constant person
//! out-degree (avg ≈ 5.5, σ ≈ 2.6), power-law location in-degree, location
//! kinds, and sublocations ("People only interact when they are present in
//! the same sublocation", §III-C).
//!
//! Generation is fully deterministic for a given seed: every draw is keyed
//! by `(seed, entity, purpose)` through [`ptts::CounterRng`].

use crate::alias::AliasTable;
use crate::powerlaw::{BoundedPareto, ClippedNormal};
use crate::state::ScaledCounts;
use crate::{LocationId, PersonId, SublocationId, MINUTES_PER_DAY};
use ptts::crng::{CounterRng, Purpose};

/// Location kinds. Discriminants match the `kind` byte used by
/// `ptts::intervention::Action::CloseKind`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(u8)]
pub enum LocationKind {
    /// Residences; small and numerous.
    Home = 0,
    /// Workplaces; heavy-tailed sizes.
    Work = 1,
    /// Schools; the heaviest locations relative to their count.
    School = 2,
    /// Retail; moderate heavy tail.
    Shop = 3,
    /// Everything else (transit hubs, venues, ...).
    Other = 4,
}

impl LocationKind {
    /// All kinds, in discriminant order.
    pub const ALL: [LocationKind; 5] = [
        LocationKind::Home,
        LocationKind::Work,
        LocationKind::School,
        LocationKind::Shop,
        LocationKind::Other,
    ];

    /// Fraction of all locations of this kind.
    pub fn fraction(self) -> f64 {
        match self {
            LocationKind::Home => 0.70,
            LocationKind::Work => 0.15,
            LocationKind::School => 0.02,
            LocationKind::Shop => 0.06,
            LocationKind::Other => 0.07,
        }
    }

    /// Nominal sublocation (room) capacity: how many daily visitors one
    /// sublocation comfortably holds. Used to derive sublocation counts
    /// from realized degrees.
    pub fn room_capacity(self) -> u32 {
        match self {
            LocationKind::Home => 8,
            LocationKind::Work => 15,
            LocationKind::School => 25,
            LocationKind::Shop => 40,
            LocationKind::Other => 30,
        }
    }
}

/// One location node.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Location {
    /// What kind of place this is.
    pub kind: LocationKind,
    /// Number of sublocations (rooms); ≥ 1.
    pub n_sublocations: u16,
    /// Sampling weight used during generation (∝ expected degree).
    pub weight: f32,
}

/// One person node.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Person {
    /// Home location.
    pub home: LocationId,
    /// Daily anchor activity (work or school), if any.
    pub anchor: Option<LocationId>,
}

/// One visit: an edge of the bipartite graph, with time attached.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Visit {
    /// Who visits.
    pub person: PersonId,
    /// Where.
    pub location: LocationId,
    /// Which room within the location.
    pub sublocation: SublocationId,
    /// Start minute within the day `[0, 1440)`.
    pub start_min: u16,
    /// Duration in minutes (start + duration ≤ 1440).
    pub duration_min: u16,
}

impl Visit {
    /// End minute (exclusive).
    #[inline]
    pub fn end_min(&self) -> u16 {
        self.start_min + self.duration_min
    }
}

/// Generator configuration.
#[derive(Debug, Clone)]
pub struct PopulationConfig {
    /// Region code label (for reports).
    pub code: String,
    /// Number of persons.
    pub n_people: u32,
    /// Number of locations.
    pub n_locations: u32,
    /// Mean visits per person (Table I US: ≈ 5.5).
    pub mean_visits: f64,
    /// Std dev of visits per person (paper: σ = 2.6).
    pub sd_visits: f64,
    /// Power-law degree exponent β for non-home location weights
    /// (weight density ∝ w^(−β); §III-B assumes β > 1).
    pub beta: f64,
    /// RNG seed.
    pub seed: u64,
}

impl PopulationConfig {
    /// Config from a scaled Table I row with default shape parameters.
    pub fn from_counts(c: ScaledCounts, seed: u64) -> Self {
        PopulationConfig {
            code: c.code.to_string(),
            n_people: c.people.min(u32::MAX as u64) as u32,
            n_locations: c.locations.min(u32::MAX as u64) as u32,
            mean_visits: c.visits as f64 / c.people.max(1) as f64,
            sd_visits: 2.6,
            beta: 2.0,
            seed,
        }
    }

    /// Small config for tests and examples.
    pub fn small(code: &str, n_people: u32, seed: u64) -> Self {
        PopulationConfig {
            code: code.to_string(),
            n_people,
            n_locations: (n_people / 4).max(8),
            mean_visits: 5.5,
            sd_visits: 2.6,
            beta: 2.0,
            seed,
        }
    }
}

/// How many persons one generation task handles (parallel path).
const GEN_CHUNK: u32 = 8192;

/// A complete synthetic population: the bipartite person–location graph with
/// visit times, kinds, and sublocations.
#[derive(Debug, Clone)]
pub struct Population {
    /// Region code label.
    pub code: String,
    /// Seed used for generation.
    pub seed: u64,
    /// Person nodes (index = `PersonId.0`).
    pub people: Vec<Person>,
    /// Location nodes (index = `LocationId.0`).
    pub locations: Vec<Location>,
    /// All visits, sorted by person id.
    pub visits: Vec<Visit>,
    /// CSR offsets: visits of person `p` are
    /// `visits[person_offsets[p] .. person_offsets[p+1]]`.
    pub person_offsets: Vec<u32>,
}

impl Population {
    /// Generate a population using `n_threads` worker threads. Produces a
    /// result bit-identical to [`Population::generate`] at any thread
    /// count: every stochastic draw is keyed by `(seed, person)`, so the
    /// person loop parallelizes by chunking with no shared stream.
    pub fn generate_parallel(cfg: &PopulationConfig, n_threads: u32) -> Population {
        if n_threads <= 1 || cfg.n_people <= GEN_CHUNK {
            return Self::generate(cfg);
        }
        // Phase 1 (parallel): per-chunk people + visits.
        let chunks: Vec<(u32, u32)> = (0..cfg.n_people)
            .step_by(GEN_CHUNK as usize)
            .map(|lo| (lo, (lo + GEN_CHUNK).min(cfg.n_people)))
            .collect();
        let shared = GenShared::prepare(cfg);
        let mut parts: Vec<Option<GenPart>> = (0..chunks.len()).map(|_| None).collect();
        std::thread::scope(|scope| {
            let shared = &shared;
            let mut handles = Vec::new();
            for (i, &(lo, hi)) in chunks.iter().enumerate() {
                handles.push((i, scope.spawn(move || shared.generate_range(lo, hi))));
            }
            for (i, h) in handles {
                parts[i] = Some(h.join().expect("generator worker panicked"));
            }
        });
        // Phase 2 (sequential): stitch chunks in order and finish.
        let mut people = Vec::with_capacity(cfg.n_people as usize);
        let mut visits = Vec::new();
        let mut person_offsets = Vec::with_capacity(cfg.n_people as usize + 1);
        person_offsets.push(0u32);
        for part in parts.into_iter().flatten() {
            let base = visits.len() as u32;
            people.extend(part.people);
            visits.extend(part.visits);
            person_offsets.extend(part.offsets.iter().skip(1).map(|&o| base + o));
        }
        shared.finish(cfg, people, visits, person_offsets)
    }

    /// Generate a population from a config.
    pub fn generate(cfg: &PopulationConfig) -> Population {
        let shared = GenShared::prepare(cfg);
        let part = shared.generate_range(0, cfg.n_people);
        shared.finish(cfg, part.people, part.visits, part.offsets)
    }

    /// Number of persons.
    pub fn n_people(&self) -> u32 {
        self.people.len() as u32
    }

    /// Number of locations.
    pub fn n_locations(&self) -> u32 {
        self.locations.len() as u32
    }

    /// Number of visits (bipartite edges).
    pub fn n_visits(&self) -> u64 {
        self.visits.len() as u64
    }

    /// The visits of one person.
    pub fn visits_of(&self, p: PersonId) -> &[Visit] {
        let lo = self.person_offsets[p.0 as usize] as usize;
        let hi = self.person_offsets[p.0 as usize + 1] as usize;
        &self.visits[lo..hi]
    }

    /// Iterate `(PersonId, &[Visit])`.
    pub fn iter_people(&self) -> impl Iterator<Item = (PersonId, &[Visit])> {
        (0..self.n_people()).map(move |p| (PersonId(p), self.visits_of(PersonId(p))))
    }

    /// Mean visits per person.
    pub fn mean_person_degree(&self) -> f64 {
        self.visits.len() as f64 / self.people.len() as f64
    }
}

/// Per-chunk output of the parallel generator.
struct GenPart {
    people: Vec<Person>,
    visits: Vec<Visit>,
    /// CSR offsets local to this chunk (starting at 0).
    offsets: Vec<u32>,
}

/// Location tables and samplers prepared once, shared read-only by every
/// generation worker.
struct GenShared {
    seed: u64,
    mean_visits: f64,
    sd_visits: f64,
    locations: Vec<Location>,
    home_range: (u32, u32),
    work_table: Option<(u32, AliasTable)>,
    school_table: Option<(u32, AliasTable)>,
    extras_table: Option<(u32, AliasTable)>,
}

impl GenShared {
    /// Build the location side: kinds in contiguous ranges, heavy-tailed
    /// weights, alias tables.
    fn prepare(cfg: &PopulationConfig) -> GenShared {
        assert!(cfg.n_people > 0 && cfg.n_locations > 0);
        let seed = cfg.seed;

        let mut kind_counts = [0u32; 5];
        let mut assigned = 0u32;
        for (i, k) in LocationKind::ALL.iter().enumerate() {
            let c = if i + 1 == LocationKind::ALL.len() {
                cfg.n_locations - assigned
            } else {
                ((cfg.n_locations as f64 * k.fraction()).round() as u32)
                    .min(cfg.n_locations - assigned)
            };
            kind_counts[i] = c.max(if i == 0 { 1 } else { 0 });
            assigned += kind_counts[i];
        }
        // Guarantee at least one school and one work so anchors exist.
        for i in [1usize, 2] {
            if kind_counts[i] == 0 && kind_counts[0] > 2 {
                kind_counts[i] = 1;
                kind_counts[0] -= 1;
            }
        }

        let mut kind_ranges = [(0u32, 0u32); 5];
        {
            let mut next = 0u32;
            for (i, &c) in kind_counts.iter().enumerate() {
                kind_ranges[i] = (next, next + c);
                next += c;
            }
        }
        // Weight distributions: homes are flat; the rest are bounded Pareto
        // with shape β, bounded at the natural order-statistic scale
        // xmin·n^(1/β) so that the heaviest location grows as D^(1/β) with
        // the data size — exactly the §III-B scaling (log dmax = log(cD)/β)
        // that makes Sub/D shrink as states grow (paper Figure 5a).
        let alpha = cfg.beta.max(1.1);
        let pareto_for = |kind: LocationKind, n: u32| -> Option<BoundedPareto> {
            if n == 0 {
                return None;
            }
            let xmin = match kind {
                LocationKind::Home => return None,
                LocationKind::Work => 2.0,
                LocationKind::School => 25.0,
                LocationKind::Shop => 2.0,
                LocationKind::Other => 1.0,
            };
            let tail = (n as f64).powf(1.0 / alpha) * 4.0;
            let xmax = (xmin * tail).min(0.1 * cfg.n_people as f64).max(xmin * 4.0);
            Some(BoundedPareto::new(alpha, xmin, xmax))
        };
        let mut wrng = CounterRng::from_key(&[seed, Purpose::Synthesis as u64, 1]);
        let mut locations = Vec::with_capacity(cfg.n_locations as usize);
        for (i, &kind) in LocationKind::ALL.iter().enumerate() {
            let n = kind_counts[i];
            let dist = pareto_for(kind, n);
            for _ in 0..n {
                let weight = match &dist {
                    None => 1.0,
                    Some(d) => d.sample(&mut wrng) as f32,
                };
                locations.push(Location {
                    kind,
                    n_sublocations: 1, // fixed up in finish()
                    weight,
                });
            }
        }

        let table_for = |range: (u32, u32)| -> Option<(u32, AliasTable)> {
            if range.1 <= range.0 {
                return None;
            }
            let w: Vec<f64> = locations[range.0 as usize..range.1 as usize]
                .iter()
                .map(|l| l.weight as f64)
                .collect();
            Some((range.0, AliasTable::new(&w)))
        };
        let extras_range = (
            kind_ranges[LocationKind::Shop as usize].0,
            kind_ranges[LocationKind::Other as usize].1,
        );
        GenShared {
            seed,
            mean_visits: cfg.mean_visits,
            sd_visits: cfg.sd_visits,
            work_table: table_for(kind_ranges[LocationKind::Work as usize]),
            school_table: table_for(kind_ranges[LocationKind::School as usize]),
            extras_table: table_for(extras_range),
            home_range: kind_ranges[LocationKind::Home as usize],
            locations,
        }
    }

    /// Generate persons `lo..hi` and their visits (independent of any other
    /// range — every draw is keyed by the person id).
    fn generate_range(&self, lo: u32, hi: u32) -> GenPart {
        let seed = self.seed;
        let visits_dist = ClippedNormal {
            mean: self.mean_visits,
            sd: self.sd_visits,
            lo: 2.0,
            hi: 15.0,
        };
        let n = (hi - lo) as usize;
        let n_homes = self.home_range.1 - self.home_range.0;
        let mut people = Vec::with_capacity(n);
        let mut visits: Vec<Visit> = Vec::with_capacity((n as f64 * self.mean_visits) as usize);
        let mut offsets = Vec::with_capacity(n + 1);
        offsets.push(0u32);

        for p in lo..hi {
            let mut rng = CounterRng::from_key(&[seed, Purpose::Synthesis as u64, 2, p as u64]);
            let home = LocationId(self.home_range.0 + rng.uniform_u64(n_homes as u64) as u32);
            // 22% children (school anchor), else 75% of adults work.
            let anchor = if rng.bernoulli(0.22) {
                self.school_table
                    .as_ref()
                    .map(|(base, t)| LocationId(base + t.sample(&mut rng)))
            } else if rng.bernoulli(0.75) {
                self.work_table
                    .as_ref()
                    .map(|(base, t)| LocationId(base + t.sample(&mut rng)))
            } else {
                None
            };
            people.push(Person { home, anchor });

            let k = visits_dist.sample(&mut rng).round().max(2.0) as u32;
            let pid = PersonId(p);
            // Morning at home: 00:00 – 08:00 (+jitter).
            let leave = 480 + rng.uniform_u64(60) as u16;
            visits.push(Visit {
                person: pid,
                location: home,
                sublocation: SublocationId(0),
                start_min: 0,
                duration_min: leave,
            });
            let mut cursor = leave;
            let mut used = 1u32;
            // Anchor activity: ~6–8 hours.
            if let Some(a) = anchor {
                let dur = (360 + rng.uniform_u64(120) as u16).min(MINUTES_PER_DAY - cursor - 120);
                visits.push(Visit {
                    person: pid,
                    location: a,
                    sublocation: SublocationId(0),
                    start_min: cursor,
                    duration_min: dur,
                });
                cursor += dur;
                used += 1;
            }
            // Extras: shops/other, 20–80 minutes each, until the count or
            // the evening is exhausted.
            let evening_start = MINUTES_PER_DAY - 120; // keep ≥ 2h at home
            while used + 1 < k && cursor < evening_start {
                let Some((base, t)) = self.extras_table.as_ref() else {
                    break;
                };
                let loc = LocationId(base + t.sample(&mut rng));
                let dur = (20 + rng.uniform_u64(61) as u16).min(evening_start - cursor);
                visits.push(Visit {
                    person: pid,
                    location: loc,
                    sublocation: SublocationId(0),
                    start_min: cursor,
                    duration_min: dur,
                });
                cursor += dur;
                used += 1;
            }
            // Evening at home.
            visits.push(Visit {
                person: pid,
                location: home,
                sublocation: SublocationId(0),
                start_min: cursor,
                duration_min: MINUTES_PER_DAY - cursor,
            });
            offsets.push(visits.len() as u32);
        }
        GenPart {
            people,
            visits,
            offsets,
        }
    }

    /// Final sequential pass: derive sublocation counts from realized
    /// degrees and assign each visit a room.
    fn finish(
        self,
        cfg: &PopulationConfig,
        people: Vec<Person>,
        mut visits: Vec<Visit>,
        person_offsets: Vec<u32>,
    ) -> Population {
        let mut locations = self.locations;
        let mut degree = vec![0u32; locations.len()];
        for v in &visits {
            degree[v.location.0 as usize] += 1;
        }
        for (l, loc) in locations.iter_mut().enumerate() {
            let cap = loc.kind.room_capacity();
            let rooms = degree[l].div_ceil(cap).max(1);
            loc.n_sublocations = rooms.min(u16::MAX as u32) as u16;
        }
        for (i, v) in visits.iter_mut().enumerate() {
            let rooms = locations[v.location.0 as usize].n_sublocations as u64;
            if rooms > 1 {
                let mut rng =
                    CounterRng::from_key(&[self.seed, Purpose::Synthesis as u64, 3, i as u64]);
                v.sublocation = SublocationId(rng.uniform_u64(rooms) as u16);
            }
        }
        Population {
            code: cfg.code.clone(),
            seed: self.seed,
            people,
            locations,
            visits,
            person_offsets,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::powerlaw::estimate_exponent;

    fn pop(n: u32, seed: u64) -> Population {
        Population::generate(&PopulationConfig::small("T", n, seed))
    }

    #[test]
    fn generation_is_deterministic() {
        let a = pop(2000, 7);
        let b = pop(2000, 7);
        assert_eq!(a.visits, b.visits);
        assert_eq!(a.people, b.people);
        let c = pop(2000, 8);
        assert_ne!(a.visits, c.visits);
    }

    #[test]
    fn parallel_generation_bit_identical() {
        let cfg = PopulationConfig::small("PAR", 20_000, 77);
        let seq = Population::generate(&cfg);
        for threads in [2u32, 3, 7] {
            let par = Population::generate_parallel(&cfg, threads);
            assert_eq!(seq.people, par.people, "{threads} threads");
            assert_eq!(seq.visits, par.visits, "{threads} threads");
            assert_eq!(seq.locations, par.locations, "{threads} threads");
            assert_eq!(seq.person_offsets, par.person_offsets);
        }
        // Small populations take the sequential shortcut.
        let tiny_cfg = PopulationConfig::small("PAR2", 100, 7);
        assert_eq!(
            Population::generate(&tiny_cfg).visits,
            Population::generate_parallel(&tiny_cfg, 4).visits
        );
    }

    #[test]
    fn person_degree_near_target() {
        let p = pop(5000, 1);
        let mean = p.mean_person_degree();
        assert!((mean - 5.5).abs() < 0.8, "mean visits/person = {mean}");
    }

    #[test]
    fn visits_are_nonoverlapping_and_cover_day() {
        let p = pop(1000, 3);
        for (pid, vs) in p.iter_people() {
            assert!(vs.len() >= 2, "person {pid:?} has too few visits");
            assert_eq!(vs[0].start_min, 0);
            let mut cursor = 0u16;
            for v in vs {
                assert_eq!(v.start_min, cursor, "gap/overlap for {pid:?}");
                assert!(v.duration_min > 0);
                cursor = v.end_min();
            }
            assert_eq!(cursor, MINUTES_PER_DAY, "day not covered for {pid:?}");
            // First and last visits are at home.
            let home = p.people[pid.0 as usize].home;
            assert_eq!(vs[0].location, home);
            assert_eq!(vs.last().unwrap().location, home);
        }
    }

    #[test]
    fn location_degree_is_heavy_tailed() {
        let p = pop(20_000, 5);
        let mut degree = vec![0u32; p.locations.len()];
        for v in &p.visits {
            degree[v.location.0 as usize] += 1;
        }
        // Non-home degrees should follow a power law with β ≈ 2 ± slack.
        let non_home: Vec<f64> = p
            .locations
            .iter()
            .zip(&degree)
            .filter(|(l, _)| l.kind != LocationKind::Home)
            .map(|(_, &d)| d as f64)
            .filter(|&d| d >= 1.0)
            .collect();
        let beta = estimate_exponent(non_home.iter().copied(), 4.0).unwrap();
        assert!(
            (1.4..3.2).contains(&beta),
            "estimated location-degree β = {beta}"
        );
        // Heavy tail: max degree far above the mean.
        let mean = non_home.iter().sum::<f64>() / non_home.len() as f64;
        let max = non_home.iter().cloned().fold(0.0, f64::max);
        assert!(max > 8.0 * mean, "max {max} vs mean {mean}");
    }

    #[test]
    fn sublocations_bound_room_loads() {
        let p = pop(10_000, 9);
        let mut degree = vec![0u32; p.locations.len()];
        for v in &p.visits {
            degree[v.location.0 as usize] += 1;
            assert!(
                v.sublocation.0 < p.locations[v.location.0 as usize].n_sublocations,
                "sublocation out of range"
            );
        }
        for (l, loc) in p.locations.iter().enumerate() {
            let cap = loc.kind.room_capacity();
            assert_eq!(
                loc.n_sublocations as u32,
                degree[l].div_ceil(cap).max(1),
                "room count mismatch at {l}"
            );
        }
    }

    #[test]
    fn kinds_have_expected_proportions() {
        let p = pop(20_000, 11);
        let count = |k: LocationKind| p.locations.iter().filter(|l| l.kind == k).count() as f64;
        let n = p.locations.len() as f64;
        assert!((count(LocationKind::Home) / n - 0.70).abs() < 0.02);
        assert!((count(LocationKind::Work) / n - 0.15).abs() < 0.02);
        assert!(count(LocationKind::School) >= 1.0);
    }

    #[test]
    fn children_attend_schools_adults_work() {
        let p = pop(5000, 13);
        let mut school_anchors = 0;
        let mut work_anchors = 0;
        for person in &p.people {
            if let Some(a) = person.anchor {
                match p.locations[a.0 as usize].kind {
                    LocationKind::School => school_anchors += 1,
                    LocationKind::Work => work_anchors += 1,
                    k => panic!("anchor of unexpected kind {k:?}"),
                }
            }
        }
        let n = p.people.len() as f64;
        assert!((school_anchors as f64 / n - 0.22).abs() < 0.03);
        assert!((work_anchors as f64 / n - 0.78 * 0.75).abs() < 0.04);
    }

    #[test]
    fn csr_offsets_consistent() {
        let p = pop(500, 17);
        assert_eq!(p.person_offsets.len(), p.people.len() + 1);
        assert_eq!(*p.person_offsets.last().unwrap() as usize, p.visits.len());
        for (pid, vs) in p.iter_people() {
            for v in vs {
                assert_eq!(v.person, pid);
            }
        }
    }

    #[test]
    fn tiny_population_works() {
        let p = Population::generate(&PopulationConfig::small("tiny", 3, 1));
        assert_eq!(p.n_people(), 3);
        assert!(p.n_visits() >= 6);
    }

    #[test]
    fn from_counts_matches_table_ratios() {
        let wy = crate::state::by_code("WY").unwrap().scaled(1e-3);
        let cfg = PopulationConfig::from_counts(wy, 1);
        assert_eq!(cfg.n_people, 500);
        assert!((cfg.mean_visits - 5.5).abs() < 0.2);
        let p = Population::generate(&cfg);
        assert_eq!(p.n_people(), 500);
    }
}
