//! Whole-simulation benchmarks: full simulated days under each data
//! distribution (the measured, laptop-scale counterpart of Figure 13) and
//! the sequential-oracle baseline.

use chare_rt::RuntimeConfig;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use episim_core::distribution::{DataDistribution, Strategy};
use episim_core::seq::run_sequential;
use episim_core::simulator::{SimConfig, Simulator};
use ptts::flu_model;
use std::hint::black_box;
use synthpop::{Population, PopulationConfig};

fn pop() -> Population {
    Population::generate(&PopulationConfig::small("sim", 5000, 11))
}

fn cfg() -> SimConfig {
    SimConfig {
        days: 3,
        r: 0.0012,
        seed: 11,
        initial_infections: 20,
        stop_when_extinct: false,
        ..Default::default()
    }
}

/// Three simulated days under each strategy — the per-strategy per-day cost
/// on real hardware (absolute values feed the scale-model calibration).
fn bench_by_strategy(c: &mut Criterion) {
    let pop = pop();
    let mut group = c.benchmark_group("three_days_5k_people");
    group.sample_size(10);
    for strategy in Strategy::ALL {
        let dist = DataDistribution::build(&pop, strategy, 4, 11);
        group.bench_with_input(
            BenchmarkId::from_parameter(strategy.label()),
            &dist,
            |b, dist| {
                b.iter(|| {
                    let sim =
                        Simulator::new(dist, flu_model(), cfg(), RuntimeConfig::sequential(4));
                    black_box(sim.run().curve.total_infections())
                });
            },
        );
    }
    group.finish();
}

fn bench_oracle(c: &mut Criterion) {
    let pop = pop();
    let mut group = c.benchmark_group("oracle");
    group.sample_size(10);
    group.bench_function("three_days_5k_people", |b| {
        b.iter(|| black_box(run_sequential(&pop, &flu_model(), &cfg()).total_infections()));
    });
    group.finish();
}

fn bench_generation(c: &mut Criterion) {
    let mut group = c.benchmark_group("population_generation");
    group.sample_size(10);
    for &n in &[5_000u32, 50_000] {
        group.bench_with_input(BenchmarkId::new("people", n), &n, |b, &n| {
            b.iter(|| black_box(Population::generate(&PopulationConfig::small("gen", n, 42))));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_by_strategy, bench_oracle, bench_generation);
criterion_main!(benches);
