//! Benchmarks of the §III machinery: multilevel k-way partitioning of the
//! real workload graph, the round-robin baseline, and the splitLoc
//! preprocessor.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use episim_core::splitloc::{split_heavy_locations, SplitConfig};
use episim_core::workload::build_workload_graph;
use graph_part::{kway_partition, round_robin, PartitionConfig};
use load_model::{LoadUnits, PiecewiseModel};
use std::hint::black_box;
use synthpop::{Population, PopulationConfig};

fn pop() -> Population {
    Population::generate(&PopulationConfig::small("bench", 10_000, 5))
}

fn bench_kway(c: &mut Criterion) {
    let p = pop();
    let (g, _) = build_workload_graph(&p, &PiecewiseModel::paper_constants(), LoadUnits::default());
    let mut group = c.benchmark_group("kway_partition");
    group.sample_size(10);
    for &k in &[8u32, 64, 512] {
        group.bench_with_input(BenchmarkId::new("k", k), &k, |b, &k| {
            b.iter(|| black_box(kway_partition(&g, &PartitionConfig::new(k))))
        });
    }
    group.finish();
}

fn bench_round_robin(c: &mut Criterion) {
    let p = pop();
    let n = p.n_people() + p.n_locations();
    c.bench_function("round_robin_12k", |b| {
        b.iter(|| black_box(round_robin(n, 64)))
    });
}

fn bench_workload_graph(c: &mut Criterion) {
    let p = pop();
    let mut group = c.benchmark_group("workload_graph_build");
    group.sample_size(10);
    group.bench_function("10k_people", |b| {
        b.iter(|| {
            black_box(build_workload_graph(
                &p,
                &PiecewiseModel::paper_constants(),
                LoadUnits::default(),
            ))
        })
    });
    group.finish();
}

fn bench_splitloc(c: &mut Criterion) {
    let p = pop();
    let cfg = SplitConfig {
        max_partitions: 1024,
        threshold_override: None,
    };
    let mut group = c.benchmark_group("splitloc");
    group.sample_size(10);
    group.bench_function("10k_people", |b| {
        b.iter(|| black_box(split_heavy_locations(&p, &cfg)))
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_kway,
    bench_round_robin,
    bench_workload_graph,
    bench_splitloc
);
criterion_main!(benches);
