//! Microbenchmarks of the computational kernels: the location DES (the
//! §III-A load model's subject — note the superlinear growth past the
//! crossover), the transmission function, and the counter-based RNG.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use episim_core::kernel::{simulate_location_day, InfectivityClasses, KernelScratch};
use episim_core::messages::VisitMsg;
use ptts::crng::{CounterRng, Purpose};
use ptts::transmission::{combined_infection_prob, infection_prob};
use ptts::{flu_model, Ptts};
use std::hint::black_box;

fn make_visits(ptts: &Ptts, n: usize, infectious_frac: f64, rooms: u16) -> Vec<VisitMsg> {
    let sus = ptts.state_by_name("susceptible").unwrap();
    let sym = ptts.state_by_name("symptomatic").unwrap();
    let mut rng = CounterRng::from_key(&[99]);
    (0..n)
        .map(|i| {
            let start = rng.uniform_u64(1200) as u16;
            let dur = 30 + rng.uniform_u64(300) as u16;
            VisitMsg {
                person: i as u32,
                location: 0,
                sublocation: (rng.uniform_u64(rooms as u64)) as u16,
                start_min: start,
                end_min: (start + dur).min(1439),
                state: if rng.bernoulli(infectious_frac) {
                    sym
                } else {
                    sus
                },
                sus_scale: 1.0,
            }
        })
        .collect()
}

fn bench_location_des(c: &mut Criterion) {
    let ptts = flu_model();
    let classes = InfectivityClasses::new(&ptts);
    let mut group = c.benchmark_group("location_des");
    for &n in &[16usize, 128, 1024, 8192] {
        let visits = make_visits(&ptts, n, 0.05, ((n / 25).max(1)) as u16);
        group.bench_with_input(BenchmarkId::new("visits", n), &visits, |b, v| {
            let mut out = Vec::new();
            let mut scratch = KernelScratch::new();
            b.iter(|| {
                let mut work = v.clone();
                out.clear();
                black_box(simulate_location_day(
                    &mut work,
                    &ptts,
                    &classes,
                    0.0008,
                    1,
                    0,
                    &mut scratch,
                    &mut out,
                ))
            });
        });
    }
    group.finish();
}

fn bench_transmission(c: &mut Criterion) {
    c.bench_function("infection_prob", |b| {
        b.iter(|| black_box(infection_prob(black_box(0.001), 0.9, 0.8, 120.0)))
    });
    let contacts: Vec<(f64, f64)> = (0..32)
        .map(|i| (0.5 + (i % 2) as f64 * 0.5, 60.0))
        .collect();
    c.bench_function("combined_infection_prob_32", |b| {
        b.iter(|| {
            black_box(combined_infection_prob(
                0.001,
                1.0,
                contacts.iter().copied(),
            ))
        })
    });
}

fn bench_crng(c: &mut Criterion) {
    c.bench_function("counter_rng_keyed_draw", |b| {
        let mut entity = 0u64;
        b.iter(|| {
            entity += 1;
            let mut rng = CounterRng::for_entity(7, entity, 3, Purpose::Infection);
            black_box(rng.uniform_f64())
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_location_des, bench_transmission, bench_crng
}
criterion_main!(benches);
