//! Benchmarks of the chare runtime and the §IV optimizations in isolation:
//! message throughput, aggregation on/off (the Figure 12 ablation at
//! library level), and phase/completion-detection overhead.

use chare_rt::{AggregationConfig, Chare, ChareId, Ctx, Message, Runtime, RuntimeConfig};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

#[derive(Debug)]
struct Burst(#[allow(dead_code)] u32);
impl Message for Burst {}

/// Sprays `n` messages at a remote sink when poked.
struct Sprayer {
    target: ChareId,
    n: u32,
}
impl Chare<Burst> for Sprayer {
    fn receive(&mut self, _m: Burst, ctx: &mut Ctx<'_, Burst>) {
        for _ in 0..self.n {
            ctx.send(self.target, Burst(0));
        }
    }

    fn into_any(self: Box<Self>) -> Box<dyn std::any::Any> {
        self
    }
}
struct Sink;
impl Chare<Burst> for Sink {
    fn receive(&mut self, _m: Burst, ctx: &mut Ctx<'_, Burst>) {
        ctx.contribute(0, 1);
    }

    fn into_any(self: Box<Self>) -> Box<dyn std::any::Any> {
        self
    }
}

fn spray_runtime(agg: AggregationConfig, n: u32) -> Runtime<Burst> {
    let mut cfg = RuntimeConfig::sequential(2);
    cfg.smp.pes_per_process = 1; // force the remote path
    cfg.aggregation = agg;
    let mut rt = Runtime::new(cfg);
    rt.add_chare(
        ChareId(0),
        0,
        Box::new(Sprayer {
            target: ChareId(1),
            n,
        }),
    );
    rt.add_chare(ChareId(1), 1, Box::new(Sink));
    rt
}

fn bench_aggregation(c: &mut Criterion) {
    let mut group = c.benchmark_group("message_spray_10k");
    group.sample_size(20);
    for (label, agg) in [
        (
            "aggregated_64",
            AggregationConfig {
                enabled: true,
                max_batch: 64,
                tram_2d: false,
                adaptive: false,
            },
        ),
        (
            "no_aggregation",
            AggregationConfig {
                enabled: false,
                max_batch: 1,
                tram_2d: false,
                adaptive: false,
            },
        ),
    ] {
        group.bench_with_input(BenchmarkId::from_parameter(label), &agg, |b, &agg| {
            let mut rt = spray_runtime(agg, 10_000);
            b.iter(|| black_box(rt.run_phase(vec![(ChareId(0), Burst(1))]).reduction(0)));
        });
    }
    group.finish();
}

fn bench_phase_overhead(c: &mut Criterion) {
    // An empty phase is pure completion-detection + scheduling overhead.
    let mut group = c.benchmark_group("phase_overhead");
    group.sample_size(20);
    for &pes in &[1u32, 8, 64] {
        group.bench_with_input(BenchmarkId::new("seq_pes", pes), &pes, |b, &pes| {
            let mut rt: Runtime<Burst> = Runtime::new(RuntimeConfig::sequential(pes));
            rt.add_chare(ChareId(0), 0, Box::new(Sink));
            b.iter(|| black_box(rt.run_phase(vec![]).totals().processed));
        });
    }
    group.finish();
}

fn bench_threaded_ping(c: &mut Criterion) {
    let mut group = c.benchmark_group("threaded_phase");
    group.sample_size(10);
    group.bench_function("spray_2threads_10k", |b| {
        let mut cfg = RuntimeConfig::threaded(2);
        cfg.smp.pes_per_process = 1;
        let mut rt = Runtime::new(cfg);
        rt.add_chare(
            ChareId(0),
            0,
            Box::new(Sprayer {
                target: ChareId(1),
                n: 10_000,
            }),
        );
        rt.add_chare(ChareId(1), 1, Box::new(Sink));
        b.iter(|| black_box(rt.run_phase(vec![(ChareId(0), Burst(1))]).reduction(0)));
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_aggregation,
    bench_phase_overhead,
    bench_threaded_ping
);
criterion_main!(benches);
