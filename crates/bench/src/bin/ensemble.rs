//! Ensemble-engine throughput benchmark: aggregate runs/sec of whole-run
//! parallelism (the copy-on-write ensemble scheduler) versus intra-run
//! parallelism (`ExecMode::Threads` inside one simulation, members run
//! back-to-back) versus the sequential chare-runtime baseline, across a
//! worker-count ladder. Writes a machine-readable `BENCH_ensemble.json`
//! (schema "ensemble-v1", documented in EXPERIMENTS.md).
//!
//! The crossover point — the smallest worker count at which whole-run
//! parallelism beats handing the same workers to one member at a time —
//! is measured, not assumed; it is the number DESIGN.md §11 tells users
//! to consult before choosing a mode.
//!
//! Every timed configuration must agree bit-for-bit on the result store
//! hash; the binary aborts if whole-run scheduling perturbs the epidemic.
//!
//! The member set is the engine's target workload: a transmissibility
//! grid spanning the epidemic threshold (attack rates from a few percent
//! to about half the population) × replicate seeds — what a sweep
//! hunting the critical R0 actually runs, not N copies of one saturated
//! epidemic.
//!
//! Environment knobs (all optional):
//!   ENSEMBLE_PEOPLE   synthetic population size        (default 4000)
//!   ENSEMBLE_DAYS     simulated days per member        (default 20)
//!   ENSEMBLE_RS       transmissibility grid, comma-sep (default 0.0001,0.00015,0.0002,0.00025,0.0003)
//!   ENSEMBLE_SEEDS    replicate seeds per grid point   (default 3)
//!   ENSEMBLE_SEED     base simulation seed             (default 42)
//!   ENSEMBLE_REPS     timing repetitions (min taken)   (default 3)
//!   ENSEMBLE_WORKERS  worker ladder, comma-separated   (default 1,2,4,8)
//!   ENSEMBLE_OUT      output JSON path                 (default BENCH_ensemble.json)
//!   ENSEMBLE_COMPARE  baseline JSON; exit 2 if a headline runs/sec
//!                     falls more than 20% below it

use episim_core::ensemble::{run_sweep, surrogate, CowWorld, EnsembleSpec};
use episim_core::{SimConfig, Simulator};

use chare_rt::RuntimeConfig;
use ptts::flu_model;
use std::fmt::Write as _;
use std::time::Instant;
use synthpop::{Population, PopulationConfig};

fn env_or<T: std::str::FromStr>(key: &str, default: T) -> T {
    std::env::var(key)
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(default)
}

/// Pull `"key": <number>` out of a flat JSON string (the baselines this
/// binary writes itself — no nesting ambiguity for the summary keys).
fn extract_f64(json: &str, key: &str) -> Option<f64> {
    let needle = format!("\"{key}\": ");
    let at = json.find(&needle)? + needle.len();
    let rest = &json[at..];
    let end = rest
        .find(|c: char| c != '-' && c != '.' && !c.is_ascii_digit())
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

fn main() {
    let people: u32 = env_or("ENSEMBLE_PEOPLE", 4000);
    let days: u32 = env_or("ENSEMBLE_DAYS", 20);
    let rs_raw: String = env_or(
        "ENSEMBLE_RS",
        "0.0001,0.00015,0.0002,0.00025,0.0003".to_string(),
    );
    let n_seeds: u32 = env_or("ENSEMBLE_SEEDS", 3);
    let seed: u64 = env_or("ENSEMBLE_SEED", 42);
    let reps: u32 = env_or("ENSEMBLE_REPS", 3).max(1);
    let ladder_raw: String = env_or("ENSEMBLE_WORKERS", "1,2,4,8".to_string());
    let out_path: String = env_or("ENSEMBLE_OUT", "BENCH_ensemble.json".to_string());
    let rs: Vec<f64> = rs_raw
        .split(',')
        .filter_map(|s| s.trim().parse().ok())
        .collect();
    assert!(!rs.is_empty(), "ENSEMBLE_RS parsed to nothing");
    let ladder: Vec<u32> = ladder_raw
        .split(',')
        .filter_map(|s| s.trim().parse().ok())
        .filter(|&w| w > 0)
        .collect();
    assert!(!ladder.is_empty(), "ENSEMBLE_WORKERS parsed to nothing");

    eprintln!(
        "ensemble: {} points × {n_seeds} seeds × {days} days over {people} people, workers {ladder:?}",
        rs.len()
    );

    let pop = Population::generate(&PopulationConfig::small("ENS", people, seed));
    let dist =
        episim_core::DataDistribution::build(&pop, episim_core::Strategy::GraphPartition, 4, seed);
    let base = SimConfig {
        days,
        r: rs[0],
        seed,
        initial_infections: 6,
        ..Default::default()
    };
    let world = CowWorld::build(&dist, flu_model());
    let spec = EnsembleSpec::grid(&base, &rs, n_seeds);
    let n = spec.n_members() as f64;

    // Every timed section takes the minimum wall over `reps` repetitions.
    // Repetitions are INTERLEAVED across sections (rep 0 of everything,
    // then rep 1, ...) so slow host windows — frequency scaling, noisy
    // neighbours — degrade all sections alike instead of whichever one
    // they landed on; the per-section min then approximates the true cost
    // for baseline and engine symmetrically.
    struct Row {
        workers: u32,
        ens_wall: f64,
        ens_rps: f64,
        thr_wall: f64,
        thr_rps: f64,
    }
    let mut seq_wall = f64::INFINITY;
    let mut rows: Vec<Row> = ladder
        .iter()
        .map(|&w| Row {
            workers: w,
            ens_wall: f64::INFINITY,
            ens_rps: 0.0,
            thr_wall: f64::INFINITY,
            thr_rps: 0.0,
        })
        .collect();
    let mut ref_hash: Option<u64> = None;
    for _rep in 0..reps {
        // Sequential baseline: each member through the full chare-runtime
        // simulator, back-to-back — a sweep's cost without the engine.
        let t0 = Instant::now();
        for idx in 0..spec.n_members() {
            Simulator::run_curve(
                &dist,
                flu_model(),
                spec.config_for(idx),
                RuntimeConfig::sequential(4),
            );
        }
        seq_wall = seq_wall.min(t0.elapsed().as_secs_f64());

        // The ladder: at each worker count, whole-run parallelism (the
        // ensemble scheduler) vs intra-run parallelism (the same workers
        // handed to one member at a time as PE threads).
        for row in rows.iter_mut() {
            let t0 = Instant::now();
            let store = run_sweep(&world, &spec, row.workers);
            row.ens_wall = row.ens_wall.min(t0.elapsed().as_secs_f64());
            let hash = store.hash();
            match ref_hash {
                None => ref_hash = Some(hash),
                Some(h) => assert_eq!(
                    hash, h,
                    "ensemble result hash diverged at {} workers — determinism break",
                    row.workers
                ),
            }

            let t0 = Instant::now();
            for idx in 0..spec.n_members() {
                Simulator::run_curve(
                    &dist,
                    flu_model(),
                    spec.config_for(idx),
                    RuntimeConfig::threaded(row.workers),
                );
            }
            row.thr_wall = row.thr_wall.min(t0.elapsed().as_secs_f64());
        }
    }
    let seq_rps = n / seq_wall;
    for row in rows.iter_mut() {
        row.ens_rps = n / row.ens_wall;
        row.thr_rps = n / row.thr_wall;
    }

    // Crossover: smallest worker count where whole-run wins.
    let crossover = rows
        .iter()
        .find(|r| r.ens_rps > r.thr_rps)
        .map(|r| r.workers);
    let max_row = rows.last().expect("ladder is non-empty");
    let speedup = max_row.ens_rps / seq_rps;

    // Surrogate screen cost on the same spec — the point of the screen is
    // that it is orders of magnitude cheaper than one full member run.
    let t0 = Instant::now();
    let graph = surrogate::ContactGraph::build(&world.pop);
    let graph_wall = t0.elapsed().as_secs_f64();
    let t0 = Instant::now();
    let scores = surrogate::screen(&graph, &world, &spec);
    let screen_wall = t0.elapsed().as_secs_f64();

    let mut j = String::new();
    j.push_str("{\n  \"schema\": \"ensemble-v1\",\n");
    let _ = writeln!(
        j,
        "  \"config\": {{\"people\": {people}, \"days\": {days}, \"rs\": [{rs_raw}], \"seeds_per_point\": {n_seeds}, \"members\": {}, \"seed\": {seed}}},",
        spec.n_members()
    );
    let _ = writeln!(
        j,
        "  \"summary\": {{\"seq_runs_per_s\": {:.4}, \"ensemble_max_runs_per_s\": {:.4}, \
         \"speedup_over_seq\": {:.2}, \"crossover_workers\": {}, \"store_hash\": \"{:#018x}\"}},",
        seq_rps,
        max_row.ens_rps,
        speedup,
        crossover.map_or_else(|| "null".to_string(), |w| w.to_string()),
        ref_hash.unwrap_or(0),
    );
    let _ = writeln!(
        j,
        "  \"sequential\": {{\"wall_s\": {seq_wall:.4}, \"runs_per_s\": {seq_rps:.4}}},"
    );
    j.push_str("  \"ladder\": [\n");
    for (i, r) in rows.iter().enumerate() {
        let _ = writeln!(
            j,
            "    {{\"workers\": {}, \"ensemble_wall_s\": {:.4}, \"ensemble_runs_per_s\": {:.4}, \
             \"threads_wall_s\": {:.4}, \"threads_runs_per_s\": {:.4}}}{}",
            r.workers,
            r.ens_wall,
            r.ens_rps,
            r.thr_wall,
            r.thr_rps,
            if i + 1 < rows.len() { "," } else { "" }
        );
    }
    j.push_str("  ],\n");
    let _ = writeln!(
        j,
        "  \"surrogate\": {{\"graph_build_s\": {:.4}, \"screen_s\": {:.4}, \"edges\": {}, \"points\": {}}}",
        graph_wall,
        screen_wall,
        graph.n_edges(),
        scores.len()
    );
    j.push_str("}\n");
    std::fs::write(&out_path, &j).expect("write output json");

    println!(
        "ensemble: sequential {:.2} runs/s | ensemble@{} {:.2} runs/s ({:.1}x) | crossover at {} workers",
        seq_rps,
        max_row.workers,
        max_row.ens_rps,
        speedup,
        crossover.map_or_else(|| "none".to_string(), |w| w.to_string()),
    );
    for r in &rows {
        println!(
            "ensemble: {} workers → whole-run {:>6.2} runs/s | intra-run threads {:>6.2} runs/s",
            r.workers, r.ens_rps, r.thr_rps
        );
    }
    println!(
        "ensemble: surrogate screen {:.1} ms for {} points ({} edges) vs {:.1} ms per full run",
        screen_wall * 1e3,
        scores.len(),
        graph.n_edges(),
        1e3 / seq_rps
    );
    println!("ensemble: wrote {out_path}");

    // Optional regression gate against a committed baseline: throughput
    // must not fall more than 20% below it.
    if let Ok(base_path) = std::env::var("ENSEMBLE_COMPARE") {
        if base_path.is_empty() {
            return;
        }
        let base = std::fs::read_to_string(&base_path).expect("read baseline json");
        let mut failed = false;
        for (key, new_rps) in [
            ("seq_runs_per_s", seq_rps),
            ("ensemble_max_runs_per_s", max_row.ens_rps),
        ] {
            let Some(old_rps) = extract_f64(&base, key) else {
                eprintln!("ensemble: baseline {base_path} lacks \"{key}\" — skipping");
                continue;
            };
            let limit = old_rps / 1.2;
            let verdict = if new_rps < limit { "REGRESSED" } else { "ok" };
            println!(
                "ensemble: compare {key}: {new_rps:.2} runs/s vs baseline {old_rps:.2} (limit {limit:.2}) {verdict}"
            );
            failed |= new_rps < limit;
        }
        if failed {
            eprintln!("ensemble: runs/sec regression >20% against {base_path}");
            std::process::exit(2);
        }
    }
}
