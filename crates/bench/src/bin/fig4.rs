//! Figure 4: the upper bound on the estimated speedup of the location
//! computation, per state, over partition counts (GP — graph partitioning
//! without splitLoc).
//!
//! `Sub = Ltot / Lmax` computed from the real partitioner's assignment of
//! the real static loads. The paper's curves rise with K and then flatten
//! hard against the `Ltot/lmax` ceiling (a few hundred to ~2000 at full
//! scale); the flattening — caused by single heavy locations — is the
//! phenomenon being demonstrated.

use bench::speedup_bound_report;
use episim_core::distribution::Strategy;

fn main() {
    speedup_bound_report(Strategy::GraphPartition, "Figure 4 (GP)");
    println!("each row flattens against its Ltot/lmax ceiling as K grows —");
    println!("the heavy-tail effect of §III-B (paper Fig. 4 tops out ≈ 2,300 for CA).");
}
