//! Figure 8: the Figure-4 speedup upper bound evaluated after the §III-C
//! application-specific decomposition (GP-splitLoc).
//!
//! The paper's curves jump from the low thousands to ~150,000 once heavy
//! locations are split; at the reproduction scale the same qualitative leap
//! shows as the ceiling rising by the Table II improvement factor and the
//! curves following K much further before flattening.

use bench::speedup_bound_report;
use episim_core::distribution::Strategy;

fn main() {
    speedup_bound_report(Strategy::GraphPartitionSplit, "Figure 8 (GP-splitLoc)");
    println!("compare with fig4: the ceilings (Ltot/lmax) rise by the Table II");
    println!("factors, and Sub keeps tracking K far beyond fig4's flattening point.");
}
