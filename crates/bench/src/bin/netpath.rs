//! Net-engine message-path microbenchmark: per-message cost of the
//! intra-process path (in-memory queues, zero serialization) versus the
//! inter-process path (batch serialization + loopback TCP + comm thread),
//! plus a sweep over the aggregation batch size to show where the wire
//! cost goes. Writes a machine-readable `BENCH_netpath.json` next to
//! `BENCH_hotpath.json` (schema "netpath-v1", documented in
//! EXPERIMENTS.md).
//!
//! SPMD note: the inter-process runs re-execute this very binary as their
//! worker processes. Earlier net-runtime constructions replay standalone
//! inside the workers (they are deliberately tiny), and each worker exits
//! inside its target run's teardown — only the root reaches the report.
//!
//! Environment knobs (all optional):
//!   NETPATH_HOPS    hops per injected message       (default 400)
//!   NETPATH_INJECT  messages injected per phase     (default 8)
//!   NETPATH_PHASES  timed phases per configuration  (default 3)
//!   NETPATH_OUT     output JSON path                (default BENCH_netpath.json)

use bytes::{Buf, BufMut, BytesMut};
use chare_rt::{worker_target, Chare, ChareId, Ctx, Message, Runtime, RuntimeConfig};
use std::fmt::Write as _;
use std::time::Instant;

#[derive(Debug, Clone, Copy)]
struct Hop {
    remaining: u32,
    payload: u64,
}

impl Message for Hop {
    fn wire_encode(&self, out: &mut BytesMut) {
        out.put_u32_le(self.remaining);
        out.put_u64_le(self.payload);
    }

    fn wire_decode(buf: &mut &[u8]) -> Option<Self> {
        if buf.remaining() < 12 {
            return None;
        }
        Some(Hop {
            remaining: buf.get_u32_le(),
            payload: buf.get_u64_le(),
        })
    }
}

struct Acc {
    next: ChareId,
    sum: u64,
}

impl Chare<Hop> for Acc {
    fn receive(&mut self, msg: Hop, ctx: &mut Ctx<'_, Hop>) {
        self.sum += msg.payload;
        ctx.contribute(0, 1);
        if msg.remaining > 0 {
            ctx.send(
                self.next,
                Hop {
                    remaining: msg.remaining - 1,
                    payload: msg.payload.wrapping_add(1),
                },
            );
        }
    }

    fn into_any(self: Box<Self>) -> Box<dyn std::any::Any> {
        self
    }
}

const N_CHARES: u32 = 8;

fn env_or<T: std::str::FromStr>(key: &str, default: T) -> T {
    std::env::var(key)
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(default)
}

#[derive(Clone, Copy, Default)]
struct RunResult {
    wall_s: f64,
    processed: u64,
    ns_per_msg: f64,
    remote_msgs: u64,
    wire_frames_sent: u64,
    wire_bytes_sent: u64,
}

/// Run `phases` timed phases of ring traffic on 2 PEs. Chares are placed
/// alternating PE 0 / PE 1, so with one process every hop is an
/// intra-process cross-PE send, and with two single-PE processes every hop
/// crosses the wire — the two configurations differ *only* in the path a
/// message takes.
fn run_ring(cfg: RuntimeConfig, phases: u32, inject: u32, hops: u32) -> RunResult {
    let mut rt: Runtime<Hop> = Runtime::new(cfg);
    for i in 0..N_CHARES {
        rt.add_chare(
            ChareId(i),
            i % 2,
            Box::new(Acc {
                next: ChareId((i + 1) % N_CHARES),
                sum: 0,
            }),
        );
    }
    let injections = |phase: u32| -> Vec<(ChareId, Hop)> {
        (0..inject)
            .map(|m| {
                (
                    ChareId((phase + m) % N_CHARES),
                    Hop {
                        remaining: hops,
                        payload: u64::from(m) + 1,
                    },
                )
            })
            .collect()
    };
    // One warmup phase: pays socket buffer growth and allocator warm-up.
    rt.run_phase(injections(0));
    let mut out = RunResult::default();
    let t0 = Instant::now();
    for phase in 1..=phases {
        let stats = rt.run_phase(injections(phase));
        let t = stats.totals();
        out.processed += t.processed;
        out.remote_msgs += t.sent_remote;
        out.wire_frames_sent += t.wire_frames_sent;
        out.wire_bytes_sent += t.wire_bytes_sent;
    }
    out.wall_s = t0.elapsed().as_secs_f64();
    out.ns_per_msg = if out.processed > 0 {
        out.wall_s * 1e9 / out.processed as f64
    } else {
        0.0
    };
    out
}

fn main() {
    let hops: u32 = env_or("NETPATH_HOPS", 400);
    let inject: u32 = env_or("NETPATH_INJECT", 8);
    let phases: u32 = env_or("NETPATH_PHASES", 3);
    let out_path: String = env_or("NETPATH_OUT", "BENCH_netpath.json".to_string());
    let is_root = worker_target().is_none();

    if is_root {
        eprintln!(
            "netpath: ring of {N_CHARES} chares on 2 PEs, {inject} injections × {hops} hops × {phases} phases"
        );
    }

    // Intra-process: the standalone net engine, in-memory queues only.
    let intra = run_ring(RuntimeConfig::net(2, 1), phases, inject, hops);
    // Inter-process: identical topology, every hop serialized over loopback.
    let inter = run_ring(RuntimeConfig::net(2, 2), phases, inject, hops);

    // Aggregation sweep on the inter-process path: batch size trades
    // per-frame overhead against latency.
    let batches = [1u32, 8, 64, 256];
    let mut sweep = Vec::new();
    for &b in &batches {
        let mut cfg = RuntimeConfig::net(2, 2);
        cfg.aggregation.max_batch = b;
        sweep.push((b, run_ring(cfg, phases, inject, hops)));
    }

    // Workers exited inside their runs; only the root reports.
    if !is_root {
        return;
    }

    let ratio = if intra.ns_per_msg > 0.0 {
        inter.ns_per_msg / intra.ns_per_msg
    } else {
        0.0
    };
    let run_json = |r: &RunResult| {
        format!(
            "{{\"wall_s\": {:.6}, \"messages\": {}, \"ns_per_msg\": {:.1}, \"remote_msgs\": {}, \"wire_frames_sent\": {}, \"wire_bytes_sent\": {}}}",
            r.wall_s, r.processed, r.ns_per_msg, r.remote_msgs, r.wire_frames_sent, r.wire_bytes_sent
        )
    };
    let mut j = String::new();
    j.push_str("{\n  \"schema\": \"netpath-v1\",\n");
    let _ = writeln!(
        j,
        "  \"config\": {{\"chares\": {N_CHARES}, \"pes\": 2, \"hops\": {hops}, \"inject\": {inject}, \"phases\": {phases}}},"
    );
    let _ = writeln!(j, "  \"intra_process\": {},", run_json(&intra));
    let _ = writeln!(j, "  \"inter_process\": {},", run_json(&inter));
    let _ = writeln!(j, "  \"inter_over_intra\": {ratio:.2},");
    j.push_str("  \"batch_sweep\": [\n");
    for (i, (b, r)) in sweep.iter().enumerate() {
        let msgs_per_frame = if r.wire_frames_sent > 0 {
            r.remote_msgs as f64 / r.wire_frames_sent as f64
        } else {
            0.0
        };
        let _ = writeln!(
            j,
            "    {{\"max_batch\": {b}, \"ns_per_msg\": {:.1}, \"wire_frames_sent\": {}, \"msgs_per_frame\": {msgs_per_frame:.1}}}{}",
            r.ns_per_msg,
            r.wire_frames_sent,
            if i + 1 < sweep.len() { "," } else { "" }
        );
    }
    j.push_str("  ]\n}\n");
    std::fs::write(&out_path, &j).expect("write output json");

    println!(
        "netpath: intra {:.0} ns/msg | inter {:.0} ns/msg ({ratio:.1}x) | {} wire frames for {} remote msgs",
        intra.ns_per_msg, inter.ns_per_msg, inter.wire_frames_sent, inter.remote_msgs
    );
    for (b, r) in &sweep {
        println!(
            "netpath: batch {b:>3} → {:>6.0} ns/msg, {} frames",
            r.ns_per_msg, r.wire_frames_sent
        );
    }
    println!("netpath: wrote {out_path}");
}
