//! Net-engine message-path microbenchmark: per-message cost of the
//! intra-process path (in-memory queues, zero serialization) versus the
//! inter-process path over **both** data planes — loopback TCP (batch
//! serialization + comm thread + socket) and the shared-memory ring
//! transport (compute-thread-to-compute-thread SPSC rings + futex
//! doorbells) — plus an aggregation batch-size sweep per transport and
//! the adaptive controller's operating point. Writes a machine-readable
//! `BENCH_netpath.json` (schema "netpath-v2", documented in
//! EXPERIMENTS.md).
//!
//! SPMD note: the inter-process runs re-execute this very binary as their
//! worker processes. Earlier net-runtime constructions replay standalone
//! inside the workers, and each worker exits inside its target run's
//! teardown — only the root reaches the report. Transports are selected
//! through `RuntimeConfig` (never the `ChareNetTransport` env override,
//! which is scrubbed at startup) so root and replayed workers can't
//! disagree.
//!
//! Environment knobs (all optional):
//!   NETPATH_HOPS     hops per injected message       (default 400)
//!   NETPATH_INJECT   messages injected per phase     (default 8)
//!   NETPATH_PHASES   timed phases per configuration  (default 3)
//!   NETPATH_OUT      output JSON path                (default BENCH_netpath.json)
//!   NETPATH_COMPARE  baseline JSON; exit 2 if any headline ns/msg
//!                    regresses by more than 20% against it

use bytes::{Buf, BufMut, BytesMut};
use chare_rt::{worker_target, Chare, ChareId, Ctx, Message, NetTransport, Runtime, RuntimeConfig};
use std::fmt::Write as _;
use std::time::Instant;

#[derive(Debug, Clone, Copy)]
struct Hop {
    remaining: u32,
    payload: u64,
}

impl Message for Hop {
    fn wire_encode(&self, out: &mut BytesMut) {
        out.put_u32_le(self.remaining);
        out.put_u64_le(self.payload);
    }

    fn wire_decode(buf: &mut &[u8]) -> Option<Self> {
        if buf.remaining() < 12 {
            return None;
        }
        Some(Hop {
            remaining: buf.get_u32_le(),
            payload: buf.get_u64_le(),
        })
    }
}

struct Acc {
    next: ChareId,
    sum: u64,
}

impl Chare<Hop> for Acc {
    fn receive(&mut self, msg: Hop, ctx: &mut Ctx<'_, Hop>) {
        self.sum += msg.payload;
        ctx.contribute(0, 1);
        if msg.remaining > 0 {
            ctx.send(
                self.next,
                Hop {
                    remaining: msg.remaining - 1,
                    payload: msg.payload.wrapping_add(1),
                },
            );
        }
    }

    fn into_any(self: Box<Self>) -> Box<dyn std::any::Any> {
        self
    }
}

const N_CHARES: u32 = 8;

fn env_or<T: std::str::FromStr>(key: &str, default: T) -> T {
    std::env::var(key)
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(default)
}

#[derive(Clone, Copy, Default)]
struct RunResult {
    wall_s: f64,
    processed: u64,
    ns_per_msg: f64,
    remote_msgs: u64,
    network_packets: u64,
    wire_frames_sent: u64,
    wire_bytes_sent: u64,
    shm_frames_sent: u64,
    shm_parks: u64,
    coalesced_flushes: u64,
    flush_batch: u64,
    flush_idle: u64,
    msgs_batch: u64,
    msgs_idle: u64,
    agg_batch: u64,
}

impl RunResult {
    /// Envelopes per emitted batch frame, over both planes.
    fn msgs_per_frame(&self) -> f64 {
        if self.network_packets > 0 {
            self.remote_msgs as f64 / self.network_packets as f64
        } else {
            0.0
        }
    }
}

/// Run `phases` timed phases of ring traffic on 2 PEs. Chares are placed
/// alternating PE 0 / PE 1, so with one process every hop is an
/// intra-process cross-PE send, and with two single-PE processes every hop
/// crosses the process boundary — the configurations differ *only* in the
/// path a message takes.
fn run_ring(cfg: RuntimeConfig, phases: u32, inject: u32, hops: u32) -> RunResult {
    let mut rt: Runtime<Hop> = Runtime::new(cfg);
    for i in 0..N_CHARES {
        rt.add_chare(
            ChareId(i),
            i % 2,
            Box::new(Acc {
                next: ChareId((i + 1) % N_CHARES),
                sum: 0,
            }),
        );
    }
    let injections = |phase: u32| -> Vec<(ChareId, Hop)> {
        (0..inject)
            .map(|m| {
                (
                    ChareId((phase + m) % N_CHARES),
                    Hop {
                        remaining: hops,
                        payload: u64::from(m) + 1,
                    },
                )
            })
            .collect()
    };
    // One warmup phase: pays socket buffer growth and allocator warm-up.
    rt.run_phase(injections(0));
    let mut out = RunResult::default();
    let t0 = Instant::now();
    for phase in 1..=phases {
        let stats = rt.run_phase(injections(phase));
        let t = stats.totals();
        out.processed += t.processed;
        out.remote_msgs += t.sent_remote;
        out.network_packets += t.network_packets;
        out.wire_frames_sent += t.wire_frames_sent;
        out.wire_bytes_sent += t.wire_bytes_sent;
        out.shm_frames_sent += t.shm_frames_sent;
        out.shm_parks += t.shm_parks;
        out.coalesced_flushes += t.wire_coalesced_flushes;
        out.flush_batch += t.wire_flush_batch;
        out.flush_idle += t.wire_flush_idle;
        out.msgs_batch += t.wire_msgs_batch;
        out.msgs_idle += t.wire_msgs_idle;
        out.agg_batch = out.agg_batch.max(t.agg_batch);
    }
    out.wall_s = t0.elapsed().as_secs_f64();
    out.ns_per_msg = if out.processed > 0 {
        out.wall_s * 1e9 / out.processed as f64
    } else {
        0.0
    };
    out
}

fn inter_cfg(transport: NetTransport) -> RuntimeConfig {
    let mut cfg = RuntimeConfig::net(2, 2);
    cfg.net.transport = transport;
    cfg
}

fn run_json(label: &str, max_batch: &str, r: &RunResult) -> String {
    format!(
        "{{\"transport\": \"{label}\", \"max_batch\": {max_batch}, \"wall_s\": {:.6}, \
         \"messages\": {}, \"ns_per_msg\": {:.1}, \"remote_msgs\": {}, \
         \"msgs_per_frame\": {:.1}, \"wire_frames_sent\": {}, \"wire_bytes_sent\": {}, \
         \"shm_frames_sent\": {}, \"parks\": {}, \"coalesced_flushes\": {}, \
         \"flush_batch\": {}, \"flush_idle\": {}, \"msgs_batch\": {}, \"msgs_idle\": {}, \
         \"agg_batch\": {}}}",
        r.wall_s,
        r.processed,
        r.ns_per_msg,
        r.remote_msgs,
        r.msgs_per_frame(),
        r.wire_frames_sent,
        r.wire_bytes_sent,
        r.shm_frames_sent,
        r.shm_parks,
        r.coalesced_flushes,
        r.flush_batch,
        r.flush_idle,
        r.msgs_batch,
        r.msgs_idle,
        r.agg_batch,
    )
}

/// Pull `"key": <number>` out of a flat JSON string (the baselines this
/// binary writes itself — no nesting ambiguity for the summary keys).
fn extract_f64(json: &str, key: &str) -> Option<f64> {
    let needle = format!("\"{key}\": ");
    let at = json.find(&needle)? + needle.len();
    let rest = &json[at..];
    let end = rest
        .find(|c: char| c != '-' && c != '.' && !c.is_ascii_digit())
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

fn main() {
    // Scrub the transport override so every run's transport comes from its
    // RuntimeConfig and replayed workers can't diverge from the root.
    std::env::remove_var("ChareNetTransport");
    std::env::remove_var("CHARE_NET_TRANSPORT");

    let hops: u32 = env_or("NETPATH_HOPS", 400);
    let inject: u32 = env_or("NETPATH_INJECT", 8);
    let phases: u32 = env_or("NETPATH_PHASES", 3);
    let out_path: String = env_or("NETPATH_OUT", "BENCH_netpath.json".to_string());
    let is_root = worker_target().is_none();

    if is_root {
        eprintln!(
            "netpath: ring of {N_CHARES} chares on 2 PEs, {inject} injections × {hops} hops × {phases} phases"
        );
    }

    // Intra-process: the standalone net engine, in-memory queues only.
    let intra = run_ring(RuntimeConfig::net(2, 1), phases, inject, hops);
    // Inter-process, per data plane. Static batch size (adaptive off) so
    // the headline numbers compare the transports, not the controller.
    let mut tcp_cfg = inter_cfg(NetTransport::Tcp);
    tcp_cfg.aggregation.adaptive = false;
    let inter_tcp = run_ring(tcp_cfg, phases, inject, hops);
    let mut shm_cfg = inter_cfg(NetTransport::Shm);
    shm_cfg.aggregation.adaptive = false;
    let inter_shm = run_ring(shm_cfg, phases, inject, hops);

    // Aggregation sweep per transport. The injection count scales with the
    // batch size (≥ 4 full frames in flight) — the v1 sweep injected a
    // constant 8 messages, so idle flushes capped every row near 3
    // msgs/frame and the batch knob appeared dead (EXPERIMENTS.md).
    let batches = [1u32, 8, 64, 256];
    let transports = [(NetTransport::Tcp, "tcp"), (NetTransport::Shm, "shm")];
    let mut sweep = Vec::new();
    for &(t, label) in &transports {
        for &b in &batches {
            let mut cfg = inter_cfg(t);
            cfg.aggregation.adaptive = false;
            cfg.aggregation.max_batch = b;
            let inj = inject.max(4 * b);
            sweep.push((label, b, run_ring(cfg, phases, inj, hops)));
        }
    }

    // The adaptive controller's operating point on each transport, under
    // the same load as the batch-64 sweep row so there is throughput for
    // the controller to optimize (at 8 in-flight messages the ring is
    // latency-bound and any batch size looks the same).
    let mut adaptive = Vec::new();
    for &(t, label) in &transports {
        let mut cfg = inter_cfg(t);
        cfg.aggregation.adaptive = true;
        adaptive.push((label, run_ring(cfg, phases, inject.max(256), hops)));
    }

    // Workers exited inside their runs; only the root reports.
    if !is_root {
        return;
    }

    let ratio = |num: &RunResult, den: &RunResult| {
        if den.ns_per_msg > 0.0 {
            num.ns_per_msg / den.ns_per_msg
        } else {
            0.0
        }
    };
    let mut j = String::new();
    j.push_str("{\n  \"schema\": \"netpath-v2\",\n");
    let _ = writeln!(
        j,
        "  \"config\": {{\"chares\": {N_CHARES}, \"pes\": 2, \"hops\": {hops}, \"inject\": {inject}, \"phases\": {phases}}},"
    );
    // The loaded shm number (batch-64 sweep row) is the ROADMAP "<2µs/msg
    // same-host" acceptance metric: per-message cost when frames actually
    // fill, as opposed to the latency-bound headline rows above.
    let shm_loaded_ns = sweep
        .iter()
        .find(|(label, b, _)| *label == "shm" && *b == 64)
        .map(|(_, _, r)| r.ns_per_msg)
        .unwrap_or(0.0);
    let _ = writeln!(
        j,
        "  \"summary\": {{\"intra_ns\": {:.1}, \"inter_tcp_ns\": {:.1}, \"inter_shm_ns\": {:.1}, \"inter_shm_loaded_ns\": {:.1}}},",
        intra.ns_per_msg, inter_tcp.ns_per_msg, inter_shm.ns_per_msg, shm_loaded_ns
    );
    let _ = writeln!(
        j,
        "  \"intra_process\": {},",
        run_json("local", "64", &intra)
    );
    let _ = writeln!(j, "  \"inter_tcp\": {},", run_json("tcp", "64", &inter_tcp));
    let _ = writeln!(j, "  \"inter_shm\": {},", run_json("shm", "64", &inter_shm));
    let _ = writeln!(
        j,
        "  \"tcp_over_intra\": {:.2},\n  \"shm_over_intra\": {:.2},\n  \"tcp_over_shm\": {:.2},",
        ratio(&inter_tcp, &intra),
        ratio(&inter_shm, &intra),
        ratio(&inter_tcp, &inter_shm)
    );
    j.push_str("  \"batch_sweep\": [\n");
    for (i, (label, b, r)) in sweep.iter().enumerate() {
        let _ = writeln!(
            j,
            "    {}{}",
            run_json(label, &b.to_string(), r),
            if i + 1 < sweep.len() { "," } else { "" }
        );
    }
    j.push_str("  ],\n  \"adaptive\": [\n");
    for (i, (label, r)) in adaptive.iter().enumerate() {
        let _ = writeln!(
            j,
            "    {}{}",
            run_json(label, "\"adaptive\"", r),
            if i + 1 < adaptive.len() { "," } else { "" }
        );
    }
    j.push_str("  ]\n}\n");
    std::fs::write(&out_path, &j).expect("write output json");

    println!(
        "netpath: intra {:.0} ns/msg | tcp {:.0} ns/msg ({:.1}x) | shm {:.0} ns/msg ({:.1}x, {} parks)",
        intra.ns_per_msg,
        inter_tcp.ns_per_msg,
        ratio(&inter_tcp, &intra),
        inter_shm.ns_per_msg,
        ratio(&inter_shm, &intra),
        inter_shm.shm_parks
    );
    for (label, b, r) in &sweep {
        println!(
            "netpath: {label} batch {b:>3} → {:>7.0} ns/msg, {:>5.1} msgs/frame ({} full, {} idle)",
            r.ns_per_msg,
            r.msgs_per_frame(),
            r.flush_batch,
            r.flush_idle
        );
    }
    for (label, r) in &adaptive {
        println!(
            "netpath: {label} adaptive  → {:>7.0} ns/msg, settled at batch {}",
            r.ns_per_msg, r.agg_batch
        );
    }
    println!("netpath: wrote {out_path}");

    // Optional regression gate against a committed baseline.
    if let Ok(base_path) = std::env::var("NETPATH_COMPARE") {
        let base = std::fs::read_to_string(&base_path).expect("read baseline json");
        let mut failed = false;
        for (key, new_ns) in [
            ("intra_ns", intra.ns_per_msg),
            ("inter_tcp_ns", inter_tcp.ns_per_msg),
            ("inter_shm_ns", inter_shm.ns_per_msg),
            ("inter_shm_loaded_ns", shm_loaded_ns),
        ] {
            let Some(old_ns) = extract_f64(&base, key) else {
                eprintln!("netpath: baseline {base_path} lacks \"{key}\" — skipping");
                continue;
            };
            let limit = old_ns * 1.2;
            let verdict = if new_ns > limit { "REGRESSED" } else { "ok" };
            println!(
                "netpath: compare {key}: {new_ns:.0} ns/msg vs baseline {old_ns:.0} (limit {limit:.0}) {verdict}"
            );
            failed |= new_ns > limit;
        }
        if failed {
            eprintln!("netpath: ns/msg regression >20% against {base_path}");
            std::process::exit(2);
        }
    }
}
