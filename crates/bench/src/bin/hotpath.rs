//! Hot-path perf-regression harness: runs the real threaded simulator on a
//! fixed workload, measures wall time per day, ns per DES event, and (with
//! the `alloc-count` feature) allocator traffic per day, then writes a
//! machine-readable `BENCH_hotpath.json` next to the repo root.
//!
//! Environment knobs (all optional):
//!   HOTPATH_STATE    state code for the workload        (default "CA")
//!   HOTPATH_DAYS     days to simulate                   (default 20)
//!   HOTPATH_PES      PEs for the threaded runtime       (default 4)
//!   HOTPATH_SEED     master simulation seed             (default 42)
//!   HOTPATH_OUT      output JSON path                   (default BENCH_hotpath.json)
//!   HOTPATH_COMPARE  path to a previous output; embeds its summary as
//!                    "baseline" and adds a "comparison" section
//!   EPISIM_SCALE     population scale                   (default 1e-3)
//!
//! The JSON schema ("hotpath-v1") is documented in EXPERIMENTS.md under
//! "Performance methodology".

use bench::{gen_state, scale, state_seed};
use chare_rt::RuntimeConfig;
use episim_core::distribution::{DataDistribution, Strategy};
use episim_core::simulator::{Carry, SimConfig, Simulator};
use ptts::flu_model;
use std::fmt::Write as _;
use std::time::Instant;

/// Counting wrapper around the system allocator. Only the allocation count
/// and requested bytes are tracked (relaxed atomics), so the measurement
/// overhead is a few nanoseconds per call — negligible against the malloc
/// it wraps.
#[cfg(feature = "alloc-count")]
mod alloc_count {
    use std::alloc::{GlobalAlloc, Layout, System};
    use std::sync::atomic::{AtomicU64, Ordering};

    pub static ALLOCS: AtomicU64 = AtomicU64::new(0);
    pub static BYTES: AtomicU64 = AtomicU64::new(0);

    pub struct CountingAlloc;

    // SAFETY: delegates every operation to `System`, only bumping counters.
    unsafe impl GlobalAlloc for CountingAlloc {
        unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
            ALLOCS.fetch_add(1, Ordering::Relaxed);
            BYTES.fetch_add(layout.size() as u64, Ordering::Relaxed);
            System.alloc(layout)
        }

        // SAFETY: the alloc_zeroed contract is forwarded to `System` unchanged.
        unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
            ALLOCS.fetch_add(1, Ordering::Relaxed);
            BYTES.fetch_add(layout.size() as u64, Ordering::Relaxed);
            System.alloc_zeroed(layout)
        }

        // SAFETY: the realloc contract is forwarded to `System` unchanged.
        unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
            ALLOCS.fetch_add(1, Ordering::Relaxed);
            BYTES.fetch_add(new_size as u64, Ordering::Relaxed);
            System.realloc(ptr, layout, new_size)
        }

        // SAFETY: the dealloc contract is forwarded to `System` unchanged.
        unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
            System.dealloc(ptr, layout)
        }
    }

    #[global_allocator]
    static GLOBAL: CountingAlloc = CountingAlloc;

    pub fn snapshot() -> (u64, u64) {
        (
            ALLOCS.load(Ordering::Relaxed),
            BYTES.load(Ordering::Relaxed),
        )
    }
}

#[cfg(not(feature = "alloc-count"))]
mod alloc_count {
    pub fn snapshot() -> (u64, u64) {
        (0, 0)
    }
}

fn env_or<T: std::str::FromStr>(key: &str, default: T) -> T {
    std::env::var(key)
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(default)
}

#[derive(Clone, Default)]
struct DayRow {
    day: u32,
    wall_s: f64,
    events: u64,
    visits: u64,
    infects: u64,
    allocs: u64,
    alloc_bytes: u64,
    person_busy_ns: u64,
    location_busy_ns: u64,
    apply_busy_ns: u64,
}

#[derive(Clone, Default)]
struct Summary {
    wall_s_total: f64,
    s_per_day_mean: f64,
    s_per_day_median: f64,
    events_total: u64,
    ns_per_event: f64,
    allocs_total: u64,
    allocs_per_day_mean: f64,
    alloc_bytes_per_day_mean: f64,
}

// Bit-identical output across kernel versions is the determinism contract
// of record; the hash itself lives with the curve type.
use episim_core::output::curve_hash;

/// Pull `"key": <number>` out of a flat JSON document by string search —
/// enough to read our own output back without a JSON parser in-tree.
fn json_number(doc: &str, key: &str) -> Option<f64> {
    let pat = format!("\"{key}\":");
    let at = doc.find(&pat)? + pat.len();
    let rest = doc[at..].trim_start();
    let end = rest
        .find(|c: char| !(c.is_ascii_digit() || c == '.' || c == '-' || c == 'e' || c == '+'))
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

fn json_string(doc: &str, key: &str) -> Option<String> {
    let pat = format!("\"{key}\": \"");
    let at = doc.find(&pat)? + pat.len();
    let end = doc[at..].find('"')?;
    Some(doc[at..at + end].to_string())
}

fn main() {
    let state: String = env_or("HOTPATH_STATE", "CA".to_string());
    let days: u32 = env_or("HOTPATH_DAYS", 20);
    let pes: u32 = env_or("HOTPATH_PES", 4);
    let seed: u64 = env_or("HOTPATH_SEED", 42);
    let out_path: String = env_or("HOTPATH_OUT", "BENCH_hotpath.json".to_string());
    let compare: Option<String> = std::env::var("HOTPATH_COMPARE")
        .ok()
        .filter(|s| !s.is_empty());
    let alloc_counted = cfg!(feature = "alloc-count");

    eprintln!("hotpath: generating {state} at scale {} ...", scale());
    let pop = gen_state(&state);
    let dist =
        DataDistribution::build(&pop, Strategy::GraphPartitionSplit, pes, state_seed(&state));
    let cfg = SimConfig {
        days,
        seed,
        stop_when_extinct: false,
        ..SimConfig::default()
    };
    let seeds = cfg.initial_infections.min(pop.n_people()) as u64;
    let mut carry = Carry::new(cfg.interventions.clone(), seeds);
    let mut sim = Simulator::new(&dist, flu_model(), cfg, RuntimeConfig::threaded(pes));

    eprintln!(
        "hotpath: {} people, {} locations, {} visits/day; {} days on {} PEs (alloc-count: {})",
        pop.n_people(),
        pop.n_locations(),
        pop.n_visits(),
        days,
        pes,
        alloc_counted
    );

    // Drive the simulator one day at a time so wall time and allocator
    // deltas attribute to individual days.
    let mut rows: Vec<DayRow> = Vec::with_capacity(days as usize);
    let mut curve_days = Vec::with_capacity(days as usize);
    let t_run = Instant::now();
    for day in 0..days {
        let (a0, b0) = alloc_count::snapshot();
        let t0 = Instant::now();
        let (stats, perf, _extinct) = sim.run_days(day, day + 1, &mut carry);
        let wall = t0.elapsed().as_secs_f64();
        let (a1, b1) = alloc_count::snapshot();
        let st = &stats[0];
        let pf = &perf[0];
        rows.push(DayRow {
            day,
            wall_s: wall,
            events: st.events,
            visits: st.visits,
            infects: st.infects_sent,
            allocs: a1 - a0,
            alloc_bytes: b1 - b0,
            person_busy_ns: pf.person_phase.totals().busy_ns,
            location_busy_ns: pf.location_phase.totals().busy_ns,
            apply_busy_ns: pf.apply_phase.totals().busy_ns,
        });
        curve_days.extend(stats);
    }
    let wall_total = t_run.elapsed().as_secs_f64();
    let hash = curve_hash(&curve_days);
    let total_infections: u64 = seeds + curve_days.iter().map(|d| d.new_infections).sum::<u64>();

    // Skip day 0 in the summary: it pays one-time warmup (buffer growth,
    // thread spin-up) that steady-state days do not.
    let measured: &[DayRow] = if rows.len() > 1 { &rows[1..] } else { &rows };
    let mut walls: Vec<f64> = measured.iter().map(|r| r.wall_s).collect();
    walls.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let events_total: u64 = measured.iter().map(|r| r.events).sum();
    let allocs_total: u64 = measured.iter().map(|r| r.allocs).sum();
    let bytes_total: u64 = measured.iter().map(|r| r.alloc_bytes).sum();
    let n = measured.len().max(1) as f64;
    let summary = Summary {
        wall_s_total: wall_total,
        s_per_day_mean: measured.iter().map(|r| r.wall_s).sum::<f64>() / n,
        s_per_day_median: walls[walls.len() / 2],
        events_total,
        ns_per_event: if events_total > 0 {
            measured.iter().map(|r| r.wall_s).sum::<f64>() * 1e9 / events_total as f64
        } else {
            0.0
        },
        allocs_total,
        allocs_per_day_mean: allocs_total as f64 / n,
        alloc_bytes_per_day_mean: bytes_total as f64 / n,
    };

    // Assemble the JSON by hand (no JSON serializer in-tree).
    let mut j = String::new();
    j.push_str("{\n  \"schema\": \"hotpath-v1\",\n");
    let _ = writeln!(
        j,
        "  \"config\": {{\"state\": \"{state}\", \"scale\": {}, \"days\": {days}, \"pes\": {pes}, \"seed\": {seed}, \"people\": {}, \"locations\": {}, \"visits_per_day\": {}, \"alloc_count\": {alloc_counted}}},",
        scale(),
        pop.n_people(),
        pop.n_locations(),
        pop.n_visits()
    );
    let _ = writeln!(
        j,
        "  \"determinism\": {{\"curve_hash\": \"{hash:016x}\", \"total_infections\": {total_infections}}},"
    );
    j.push_str("  \"days\": [\n");
    for (i, r) in rows.iter().enumerate() {
        let _ = writeln!(
            j,
            "    {{\"day\": {}, \"wall_s\": {:.6}, \"events\": {}, \"visits\": {}, \"infects\": {}, \"allocs\": {}, \"alloc_bytes\": {}, \"person_busy_ns\": {}, \"location_busy_ns\": {}, \"apply_busy_ns\": {}}}{}",
            r.day,
            r.wall_s,
            r.events,
            r.visits,
            r.infects,
            r.allocs,
            r.alloc_bytes,
            r.person_busy_ns,
            r.location_busy_ns,
            r.apply_busy_ns,
            if i + 1 < rows.len() { "," } else { "" }
        );
    }
    j.push_str("  ],\n");
    let summary_json = |s: &Summary| {
        format!(
            "{{\"wall_s_total\": {:.6}, \"s_per_day_mean\": {:.6}, \"s_per_day_median\": {:.6}, \"events_total\": {}, \"ns_per_event\": {:.2}, \"allocs_total\": {}, \"allocs_per_day_mean\": {:.1}, \"alloc_bytes_per_day_mean\": {:.1}}}",
            s.wall_s_total,
            s.s_per_day_mean,
            s.s_per_day_median,
            s.events_total,
            s.ns_per_event,
            s.allocs_total,
            s.allocs_per_day_mean,
            s.alloc_bytes_per_day_mean
        )
    };
    let _ = write!(j, "  \"summary\": {}", summary_json(&summary));

    if let Some(path) = compare {
        match std::fs::read_to_string(&path) {
            Ok(doc) => {
                let base_mean = json_number(&doc, "s_per_day_mean").unwrap_or(0.0);
                let base_median = json_number(&doc, "s_per_day_median").unwrap_or(0.0);
                let base_nspe = json_number(&doc, "ns_per_event").unwrap_or(0.0);
                let base_allocs = json_number(&doc, "allocs_per_day_mean").unwrap_or(0.0);
                let base_hash = json_string(&doc, "curve_hash").unwrap_or_default();
                let speedup_mean = if summary.s_per_day_mean > 0.0 {
                    base_mean / summary.s_per_day_mean
                } else {
                    0.0
                };
                let speedup_median = if summary.s_per_day_median > 0.0 {
                    base_median / summary.s_per_day_median
                } else {
                    0.0
                };
                let alloc_reduction = if summary.allocs_per_day_mean > 0.0 {
                    base_allocs / summary.allocs_per_day_mean
                } else {
                    0.0
                };
                let identical = base_hash == format!("{hash:016x}");
                let _ = write!(
                    j,
                    ",\n  \"baseline\": {{\"path\": \"{path}\", \"s_per_day_mean\": {base_mean:.6}, \"s_per_day_median\": {base_median:.6}, \"ns_per_event\": {base_nspe:.2}, \"allocs_per_day_mean\": {base_allocs:.1}, \"curve_hash\": \"{base_hash}\"}},\n  \"comparison\": {{\"s_per_day_speedup_mean\": {speedup_mean:.3}, \"s_per_day_speedup_median\": {speedup_median:.3}, \"alloc_reduction_factor\": {alloc_reduction:.1}, \"curve_identical\": {identical}}}"
                );
                eprintln!(
                    "hotpath: vs baseline — speedup {speedup_mean:.3}x (median {speedup_median:.3}x), alloc reduction {alloc_reduction:.1}x, curve identical: {identical}"
                );
            }
            Err(e) => eprintln!("hotpath: cannot read baseline {path}: {e}"),
        }
    }
    j.push_str("\n}\n");
    std::fs::write(&out_path, &j).expect("write output json");

    println!(
        "hotpath: {} | {:.3} s/day mean ({:.3} median) | {:.1} ns/event | {} allocs/day | curve {hash:016x}",
        state,
        summary.s_per_day_mean,
        summary.s_per_day_median,
        summary.ns_per_event,
        summary.allocs_per_day_mean as u64
    );
    println!("hotpath: wrote {out_path}");
}
