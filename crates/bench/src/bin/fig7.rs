//! Figure 7: degree and static-load distributions after graph modification
//! (GP-splitLoc) — the post-split counterpart of Figures 3(c)/3(d).
//!
//! The visible effect to reproduce: the heavy tail is truncated — the
//! largest degree/load bins of fig3 disappear, with their mass moved into
//! the mid-range bins.

use bench::{gen_state, FIGURE_STATES};
use episim_core::splitloc::{split_heavy_locations, SplitConfig};
use episim_core::workload::location_static_loads;
use load_model::{LoadUnits, PiecewiseModel};
use synthpop::{BipartiteGraph, LocationId, LogHistogram};

fn main() {
    println!("== Figure 7: distributions after splitLoc ==\n");
    let model = PiecewiseModel::paper_constants();
    let split_cfg = SplitConfig {
        max_partitions: 4096,
        threshold_override: None,
    };
    for code in FIGURE_STATES {
        let pop = gen_state(code);
        let split = split_heavy_locations(&pop, &split_cfg);
        let g0 = BipartiteGraph::build(&pop);
        let g1 = BipartiteGraph::build(&split.pop);
        let dmax_before = g0.location_degree_stats().max;
        let dmax_after = g1.location_degree_stats().max;

        let mut deg_hist = LogHistogram::new(1);
        for l in 0..g1.n_locations() {
            deg_hist.add(g1.unique_visitors(&split.pop, LocationId(l)) as f64);
        }
        let mut load_hist = LogHistogram::new(1);
        for &l in &location_static_loads(&split.pop, &model, LoadUnits::default()) {
            load_hist.add(l as f64 / 1000.0); // µs
        }
        println!(
            "{code}: dmax {dmax_before} → {dmax_after} ({}× reduction), {} locations split",
            if dmax_after > 0 {
                dmax_before / dmax_after.max(1)
            } else {
                0
            },
            split.n_split
        );
        println!(
            "{}",
            deg_hist.render(&format!("(a) {code} degree after split"))
        );
        println!(
            "{}",
            load_hist.render(&format!("(b) {code} load (µs) after split"))
        );
    }
    println!("paper: dmax falls by avg 54× (min 12×, max 341×) at full scale,");
    println!("while D grows by at most 5.25%.");
}
