//! Figure 3: the load estimation model.
//!
//! (a) static model — measure the real location DES kernel's per-location
//!     processing time on this host, fit the paper's piecewise-sigmoid
//!     form, and report the mean absolute percentage error (paper: ≈ 5%).
//! (b) dynamic model — regress measured time on the three run-time state
//!     variables (events, Σ interactions, Σ 1/interactions); report R².
//! (c) in-degree (unique visitors) distribution per location, log-binned.
//! (d) static load distribution per location, log-binned.

use bench::{fnum, gen_state, print_table, FIGURE_STATES};
use episim_core::kernel::{simulate_location_day, InfectivityClasses, KernelScratch};
use episim_core::messages::VisitMsg;
use load_model::fit::{fit_multilinear, fit_piecewise, mape, r_squared};
use load_model::{LoadUnits, PiecewiseModel};
use ptts::crng::{CounterRng, Purpose};
use ptts::flu_model;
use std::time::Instant;
use synthpop::{BipartiteGraph, LocationId, LogHistogram, Population};

/// Build day-0 visit buffers per location, seeding a fraction of the
/// population infectious so the kernel's interaction paths execute.
fn location_buffers(pop: &Population, infectious_frac: f64) -> Vec<Vec<VisitMsg>> {
    let ptts = flu_model();
    let sym = ptts.state_by_name("symptomatic").unwrap();
    let start = ptts.start_state();
    let mut buffers: Vec<Vec<VisitMsg>> = vec![Vec::new(); pop.locations.len()];
    for v in &pop.visits {
        let mut rng = CounterRng::for_entity(7, v.person.0 as u64, 0, Purpose::Synthesis);
        let state = if rng.bernoulli(infectious_frac) {
            sym
        } else {
            start
        };
        buffers[v.location.0 as usize].push(VisitMsg {
            person: v.person.0,
            location: v.location.0,
            sublocation: v.sublocation.0,
            start_min: v.start_min,
            end_min: v.end_min(),
            state,
            sus_scale: 1.0,
        });
    }
    buffers
}

fn main() {
    println!("== Figure 3: load estimation model ==\n");
    let ptts = flu_model();
    let classes = InfectivityClasses::new(&ptts);
    let pop = gen_state("CA");

    // ---- (a) measure the kernel per location.
    let buffers = location_buffers(&pop, 0.02);
    let mut samples: Vec<(f64, f64)> = Vec::new(); // (events, min-of-3 ns)
    let mut dyn_rows: Vec<Vec<f64>> = Vec::new();
    let mut dyn_ys: Vec<f64> = Vec::new();
    let mut out = Vec::new();
    let mut scratch = KernelScratch::new();
    for (l, buf) in buffers.iter().enumerate() {
        if buf.is_empty() {
            continue;
        }
        // Skip the tiniest locations: timer noise swamps sub-µs kernels.
        if buf.len() < 12 {
            continue;
        }
        let mut best = f64::INFINITY;
        let mut features = Default::default();
        for _ in 0..5 {
            let mut work = buf.clone();
            out.clear();
            let t0 = Instant::now();
            features = simulate_location_day(
                &mut work,
                &ptts,
                &classes,
                0.0008,
                3,
                0,
                &mut scratch,
                &mut out,
            );
            best = best.min(t0.elapsed().as_nanos() as f64);
        }
        let _ = l;
        samples.push((features.events as f64, best));
        dyn_rows.push(vec![
            features.events as f64,
            features.interactions as f64,
            features.sum_reciprocal_interactions,
        ]);
        dyn_ys.push(best);
    }
    println!("measured {} locations (≥12 visits) on CA\n", samples.len());

    let model = fit_piecewise(&samples, 50.0).expect("piecewise fit");
    let pred: Vec<f64> = samples.iter().map(|&(x, _)| model.eval(x)).collect();
    let obs: Vec<f64> = samples.iter().map(|&(_, y)| y).collect();
    println!("(a) static model fit  Y = Ya·S(ϕ−X′) + Yb·S(X′−ϕ):");
    println!(
        "    Ya = {} + {}·X    Yb = {} + {}·X    ϕ = {}",
        fnum(model.a1),
        fnum(model.b1),
        fnum(model.a2),
        fnum(model.b2),
        fnum(model.phi)
    );
    println!(
        "    MAPE = {:.1}%   R² = {:.3}   (paper: ≈5% error on average)",
        100.0 * mape(&pred, &obs),
        r_squared(&pred, &obs)
    );
    // Predicted-vs-observed sample rows across the range.
    let mut sorted = samples.clone();
    sorted.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap());
    let mut rows = Vec::new();
    for q in [0.05, 0.25, 0.5, 0.75, 0.95, 0.999] {
        let idx = ((sorted.len() - 1) as f64 * q) as usize;
        let (x, y) = sorted[idx];
        rows.push(vec![fnum(x), fnum(y), fnum(model.eval(x))]);
    }
    print_table(
        "predicted vs observed (ns)",
        &["events", "observed", "predicted"],
        &rows,
    );

    // ---- (b) dynamic model.
    if let Some(w) = fit_multilinear(&dyn_rows, &dyn_ys) {
        let pred_dyn: Vec<f64> = dyn_rows
            .iter()
            .map(|r| w[0] + w[1] * r[0] + w[2] * r[1] + w[3] * r[2])
            .collect();
        println!("(b) dynamic model  Y = w0 + w1·events + w2·Σint + w3·Σ(1/int):");
        println!(
            "    w = [{}, {}, {}, {}]   R² = {:.3} (static-only R² above)",
            fnum(w[0]),
            fnum(w[1]),
            fnum(w[2]),
            fnum(w[3]),
            r_squared(&pred_dyn, &dyn_ys)
        );
        println!("    (run-time features; used for future dynamic LB, not partitioning)\n");
    }

    // ---- (c) + (d): distributions per state.
    let load_model = PiecewiseModel::paper_constants();
    for code in FIGURE_STATES {
        let pop = gen_state(code);
        let g = BipartiteGraph::build(&pop);
        let mut deg_hist = LogHistogram::new(1);
        for l in 0..g.n_locations() {
            deg_hist.add(g.unique_visitors(&pop, LocationId(l)) as f64);
        }
        let mut load_hist = LogHistogram::new(1);
        let loads =
            episim_core::workload::location_static_loads(&pop, &load_model, LoadUnits::default());
        for &l in &loads {
            load_hist.add(l as f64 / 1000.0); // µs bins
        }
        println!(
            "{}",
            deg_hist.render(&format!("(c) {code} in-degree (unique visitors)"))
        );
        println!(
            "{}",
            load_hist.render(&format!("(d) {code} static load (µs)"))
        );
    }
}
