//! Table I: population data of various sizes.
//!
//! Prints the paper's full-scale rows next to the synthetic populations
//! generated at the reproduction scale, and verifies the two degree
//! statistics the paper quotes in §II-A (person average degree ≈ 5.5,
//! location average degree ≈ 21.5).

use bench::{fnum, gen_state, print_table, scale, FIGURE_STATES};
use synthpop::state::by_code;
use synthpop::BipartiteGraph;

fn main() {
    println!(
        "== Table I: population data (reproduction scale {}) ==\n",
        scale()
    );
    let mut rows = Vec::new();
    let mut codes = vec!["US"];
    codes.extend(FIGURE_STATES);
    for code in codes {
        let full = by_code(code).unwrap();
        let pop = gen_state(code);
        let g = BipartiteGraph::build(&pop);
        let pstats = g.person_degree_stats(&pop);
        let lstats = g.location_degree_stats();
        rows.push(vec![
            code.to_string(),
            full.visits.to_string(),
            full.people.to_string(),
            full.locations.to_string(),
            pop.n_visits().to_string(),
            pop.n_people().to_string(),
            pop.n_locations().to_string(),
            fnum(pstats.avg),
            fnum(pstats.sd),
            fnum(lstats.avg),
        ]);
    }
    print_table(
        "paper (full scale) vs generated (scaled)",
        &[
            "state",
            "paper_visits",
            "paper_people",
            "paper_locs",
            "gen_visits",
            "gen_people",
            "gen_locs",
            "p_deg_avg",
            "p_deg_sd",
            "l_deg_avg",
        ],
        &rows,
    );
    println!("paper §II-A: person avg degree 5.5 (σ 2.6), location avg degree 21.5");
    println!("note: generated visit totals track people × 5.5; the paper's location");
    println!("      degree of 21.5 emerges at full scale (visits/locations ratio).");
}
