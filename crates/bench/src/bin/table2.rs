//! Table II: the total load `Ltot` and the maximum load per location
//! before (`lmax`) and after (`ℓmax`) graph modification, for the seven
//! figure states.
//!
//! The paper's loads are seconds on Blue Waters ×10³; ours are the same
//! static model evaluated on the scaled synthetic states, reported in
//! model-milliseconds. What must reproduce is the *structure*: `lmax`
//! dwarfs the average before splitLoc and collapses after, raising the
//! `Ltot/lmax` speedup ceiling by a large factor (paper: avg 89× across
//! all states).

use bench::{fnum, gen_state, print_table, FIGURE_STATES};
use episim_core::splitloc::{split_heavy_locations, SplitConfig};
use episim_core::workload::location_static_loads;
use load_model::speedup::sub_ceiling;
use load_model::{LoadUnits, PiecewiseModel};

fn main() {
    println!("== Table II: Ltot and per-location load before/after splitLoc ==\n");
    let model = PiecewiseModel::paper_constants();
    let units = LoadUnits::default();
    let split_cfg = SplitConfig {
        max_partitions: 4096,
        threshold_override: None,
    };
    let to_ms = 1e-6; // units are ns at LoadUnits::default
    let mut rows = Vec::new();
    let mut factors = Vec::new();
    for code in FIGURE_STATES {
        let pop = gen_state(code);
        let before = location_static_loads(&pop, &model, units);
        let split = split_heavy_locations(&pop, &split_cfg);
        let after = location_static_loads(&split.pop, &model, units);
        let ltot: u64 = before.iter().sum();
        let lmax = *before.iter().max().unwrap_or(&0);
        let lmax_after = *after.iter().max().unwrap_or(&0);
        let factor = sub_ceiling(&after) / sub_ceiling(&before).max(1e-12);
        factors.push(factor);
        rows.push(vec![
            code.to_string(),
            fnum(ltot as f64 * to_ms),
            fnum(lmax as f64 * to_ms),
            fnum(lmax_after as f64 * to_ms),
            fnum(sub_ceiling(&before)),
            fnum(sub_ceiling(&after)),
            fnum(factor),
            split.n_split.to_string(),
        ]);
    }
    print_table(
        "loads in model-milliseconds",
        &[
            "state",
            "Ltot_ms",
            "lmax_ms",
            "lmax_after_ms",
            "Ltot/lmax",
            "Ltot/lmax_after",
            "ceiling_gain",
            "locs_split",
        ],
        &rows,
    );
    let avg = factors.iter().sum::<f64>() / factors.len() as f64;
    let max = factors.iter().cloned().fold(0.0, f64::max);
    let min = factors.iter().cloned().fold(f64::INFINITY, f64::min);
    println!(
        "ceiling improvement Ltot/lmax: avg {:.1}× (min {:.1}×, max {:.1}×)",
        avg, min, max
    );
    println!("paper: avg 89× (min 11×, max 290×) over 48 states + DC at full scale");
    println!("       (smaller factors are expected at reduced scale: lmax shrinks with D)");
}
