//! Figure 5: the maximum of the estimated per-location speedup `Sub/D`
//! over all partition counts — i.e. `(Ltot/lmax)/D` — for each of the 48
//! contiguous states and DC, before (a) and after (b) decomposition.
//!
//! Figure 5(a)'s message is the §III-B bound: on log–log axes `Sub/D`
//! *decreases* with data size D with slope ≈ −1/β. After splitLoc (b) the
//! dependence flattens because `lmax` no longer grows with D.

use bench::{fnum, print_table, scale, state_seed};
use episim_core::splitloc::{split_heavy_locations, SplitConfig};
use episim_core::workload::location_static_loads;
use load_model::fit::fit_linear;
use load_model::speedup::sub_ceiling;
use load_model::{LoadUnits, PiecewiseModel};
use synthpop::state::all_states;
use synthpop::{Population, PopulationConfig};

fn main() {
    println!("== Figure 5: max(Sub/D) vs number of locations, 49 regions ==\n");
    let model = PiecewiseModel::paper_constants();
    let units = LoadUnits::default();
    let split_cfg = SplitConfig {
        max_partitions: 4096,
        threshold_override: None,
    };
    let mut rows = Vec::new();
    let mut before_pts = Vec::new();
    let mut after_pts = Vec::new();
    for st in all_states() {
        let counts = st.scaled(scale());
        let pop = Population::generate(&PopulationConfig::from_counts(counts, state_seed(st.code)));
        let d = pop.n_locations() as f64;
        let loads = location_static_loads(&pop, &model, units);
        let split = split_heavy_locations(&pop, &split_cfg);
        let d_after = split.pop.n_locations() as f64;
        let loads_after = location_static_loads(&split.pop, &model, units);
        let before = sub_ceiling(&loads) / d;
        let after = sub_ceiling(&loads_after) / d_after;
        before_pts.push((d.log10(), before.log10()));
        after_pts.push((d_after.log10(), after.log10()));
        rows.push(vec![
            st.code.to_string(),
            fnum(d),
            fnum(before),
            fnum(after),
            fnum(d_after / d),
        ]);
    }
    rows.sort_by(|a, b| {
        b[1].parse::<f64>()
            .unwrap_or(0.0)
            .partial_cmp(&a[1].parse::<f64>().unwrap_or(0.0))
            .unwrap()
    });
    print_table(
        "max(Sub/D) = (Ltot/lmax)/D per region",
        &["state", "locations", "before(a)", "after(b)", "D_growth"],
        &rows,
    );
    if let (Some(fb), Some(fa)) = (fit_linear(&before_pts), fit_linear(&after_pts)) {
        println!(
            "log-log slope before split: {:.2}  (paper's bound: −1/β ≈ −0.5 for β = 2)",
            fb.b
        );
        println!(
            "log-log slope after split:  {:.2}  (flattens toward 0 once lmax is bounded)",
            fa.b
        );
    }
    println!("D growth after split stays small (paper: ≤ 5.25%).");
}
