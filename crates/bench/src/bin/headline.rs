//! The paper's headline result (§I): strong scaling of the US population
//! under GP-splitLoc — "a speedup of 14,357 (22% efficiency) on [64K cores]
//! … scale up to 360,448 cores and achieve a speedup 58,649 (16.3%
//! efficiency)".
//!
//! We project the same configuration over the same core counts, driven by
//! the real partitioner on the scaled US graph. At 1/1000 scale the
//! absolute speedups are smaller (there is 1000× less work to spread), so
//! the comparison of record is: speedup still *growing* past 64K
//! core-modules, with efficiency declining gently rather than collapsing —
//! and GP-splitLoc beating every other configuration at every scale.

use bench::{calibrated_machine, clamp_k, fnum, gen_state, print_table};
use chare_rt::{PeStats, RuntimeConfig};
use episim_core::distribution::{DataDistribution, Strategy};
use episim_core::simulator::{SimConfig, Simulator};
use load_model::{LoadUnits, PiecewiseModel};
use ptts::flu_model;
use scale_model::{inputs_from_distribution, project_day, strong_scaling_point, RuntimeOptions};
use synthpop::{Population, PopulationConfig};

/// Measured (not projected): drive a small scenario through the
/// two-process net engine and report the wire-level counters the runtime
/// collects per PE — frames and bytes in both directions, and why each
/// packet left (batch full vs idle flush). This run re-executes the
/// binary to create its worker process; the worker exits inside the
/// runtime teardown and never reaches the projection below.
fn wire_counters() {
    println!("== Measured: net-engine wire counters (2 processes) ==\n");
    let pop = Population::generate(&PopulationConfig::small("WIRE", 1000, 19));
    let dist = DataDistribution::build(&pop, Strategy::GraphPartition, 4, 19);
    let cfg = SimConfig {
        days: 6,
        r: 0.0015,
        seed: 7,
        initial_infections: 6,
        stop_when_extinct: false,
        ..SimConfig::default()
    };
    let run = Simulator::new(&dist, flu_model(), cfg, RuntimeConfig::net(4, 2)).run();
    let mut t = PeStats::default();
    for day in &run.perf {
        for phase in [&day.person_phase, &day.location_phase, &day.apply_phase] {
            let p = phase.totals();
            t.sent_remote += p.sent_remote;
            t.network_packets += p.network_packets;
            t.wire_frames_sent += p.wire_frames_sent;
            t.wire_frames_recv += p.wire_frames_recv;
            t.wire_bytes_sent += p.wire_bytes_sent;
            t.wire_bytes_recv += p.wire_bytes_recv;
            t.wire_flush_batch += p.wire_flush_batch;
            t.wire_flush_idle += p.wire_flush_idle;
        }
    }
    print_table(
        "wire counters, 1000 people × 6 days on 4 PEs / 2 processes",
        &["counter", "value"],
        &[
            vec!["remote msgs".into(), fnum(t.sent_remote as f64)],
            vec!["wire frames sent".into(), fnum(t.wire_frames_sent as f64)],
            vec!["wire frames recv".into(), fnum(t.wire_frames_recv as f64)],
            vec!["wire bytes sent".into(), fnum(t.wire_bytes_sent as f64)],
            vec!["wire bytes recv".into(), fnum(t.wire_bytes_recv as f64)],
            vec![
                "flushes (batch full)".into(),
                fnum(t.wire_flush_batch as f64),
            ],
            vec!["flushes (idle)".into(), fnum(t.wire_flush_idle as f64)],
        ],
    );
    let per_msg = if t.sent_remote > 0 {
        t.wire_bytes_sent as f64 / t.sent_remote as f64
    } else {
        0.0
    };
    println!(
        "{:.1} wire bytes per remote message (framing amortized by aggregation)\n",
        per_msg
    );
}

fn main() {
    wire_counters();
    println!("== Headline: US strong scaling, GP-splitLoc ==\n");
    let machine = calibrated_machine();
    let model = PiecewiseModel::paper_constants();
    let opts = RuntimeOptions::optimized();
    let pop = gen_state("US");
    println!(
        "US at reproduction scale: {} people, {} locations, {} visits/day\n",
        pop.n_people(),
        pop.n_locations(),
        pop.n_visits()
    );

    // Single-core baseline.
    let base_dist = DataDistribution::build(&pop, Strategy::GraphPartitionSplit, 1, 1);
    let base_inputs = inputs_from_distribution(&base_dist, &model, LoadUnits::default());
    let baseline = project_day(&base_inputs, &machine, &opts).seconds;
    println!("1 core-module baseline: {} s/day\n", fnum(baseline));

    let mut rows = Vec::new();
    for &k in &[1024u32, 8192, 65_536, 360_448] {
        let kc = clamp_k(k, &pop);
        let dist = DataDistribution::build(&pop, Strategy::GraphPartitionSplit, kc, 1);
        let inputs = inputs_from_distribution(&dist, &model, LoadUnits::default());
        let proj = project_day(&inputs, &machine, &opts);
        let pt = strong_scaling_point(kc, &proj, baseline);
        rows.push(vec![
            k.to_string(),
            kc.to_string(),
            fnum(pt.seconds),
            fnum(pt.speedup),
            format!("{:.1}%", 100.0 * pt.efficiency),
        ]);
    }
    print_table(
        "projected strong scaling (US, GP-splitLoc, all §IV optimizations)",
        &[
            "requested_P",
            "effective_P",
            "s/day",
            "speedup",
            "efficiency",
        ],
        &rows,
    );
    println!("paper (full-scale data, Blue Waters):");
    println!("  64K cores  → speedup 14,357 (22.0% efficiency)");
    println!("  360,448    → speedup 58,649 (16.3% efficiency)  — still growing");
    println!("shape of record: speedup keeps rising past 64K while efficiency");
    println!("declines gently; at 1/1000 data the curves saturate ~1000× earlier.");
}
