//! The paper's headline result (§I): strong scaling of the US population
//! under GP-splitLoc — "a speedup of 14,357 (22% efficiency) on [64K cores]
//! … scale up to 360,448 cores and achieve a speedup 58,649 (16.3%
//! efficiency)".
//!
//! We project the same configuration over the same core counts, driven by
//! the real partitioner on the scaled US graph. At 1/1000 scale the
//! absolute speedups are smaller (there is 1000× less work to spread), so
//! the comparison of record is: speedup still *growing* past 64K
//! core-modules, with efficiency declining gently rather than collapsing —
//! and GP-splitLoc beating every other configuration at every scale.

use bench::{calibrated_machine, clamp_k, fnum, gen_state, print_table};
use episim_core::distribution::{DataDistribution, Strategy};
use load_model::{LoadUnits, PiecewiseModel};
use scale_model::{inputs_from_distribution, project_day, strong_scaling_point, RuntimeOptions};

fn main() {
    println!("== Headline: US strong scaling, GP-splitLoc ==\n");
    let machine = calibrated_machine();
    let model = PiecewiseModel::paper_constants();
    let opts = RuntimeOptions::optimized();
    let pop = gen_state("US");
    println!(
        "US at reproduction scale: {} people, {} locations, {} visits/day\n",
        pop.n_people(),
        pop.n_locations(),
        pop.n_visits()
    );

    // Single-core baseline.
    let base_dist = DataDistribution::build(&pop, Strategy::GraphPartitionSplit, 1, 1);
    let base_inputs = inputs_from_distribution(&base_dist, &model, LoadUnits::default());
    let baseline = project_day(&base_inputs, &machine, &opts).seconds;
    println!("1 core-module baseline: {} s/day\n", fnum(baseline));

    let mut rows = Vec::new();
    for &k in &[1024u32, 8192, 65_536, 360_448] {
        let kc = clamp_k(k, &pop);
        let dist = DataDistribution::build(&pop, Strategy::GraphPartitionSplit, kc, 1);
        let inputs = inputs_from_distribution(&dist, &model, LoadUnits::default());
        let proj = project_day(&inputs, &machine, &opts);
        let pt = strong_scaling_point(kc, &proj, baseline);
        rows.push(vec![
            k.to_string(),
            kc.to_string(),
            fnum(pt.seconds),
            fnum(pt.speedup),
            format!("{:.1}%", 100.0 * pt.efficiency),
        ]);
    }
    print_table(
        "projected strong scaling (US, GP-splitLoc, all §IV optimizations)",
        &[
            "requested_P",
            "effective_P",
            "s/day",
            "speedup",
            "efficiency",
        ],
        &rows,
    );
    println!("paper (full-scale data, Blue Waters):");
    println!("  64K cores  → speedup 14,357 (22.0% efficiency)");
    println!("  360,448    → speedup 58,649 (16.3% efficiency)  — still growing");
    println!("shape of record: speedup keeps rising past 64K while efficiency");
    println!("declines gently; at 1/1000 data the curves saturate ~1000× earlier.");
}
