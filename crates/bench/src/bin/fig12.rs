//! Figure 12: the effect of the §IV communication optimizations.
//!
//! The provided paper text describes Figure 12 through its key datum:
//! "Combined, these optimizations provide an additional 40% reduction in
//! execution time, shown as the difference between RR no-opt and RR in
//! Figure 12." We regenerate the two curves — RR with no aggregation, no
//! SMP comm threads and QD sync, vs RR with everything on — over the
//! core-module grid on California.

use bench::{calibrated_machine, core_module_grid, fnum, gen_state, print_table};
use episim_core::distribution::{DataDistribution, Strategy};
use load_model::{LoadUnits, PiecewiseModel};
use scale_model::{inputs_from_distribution, project_day, RuntimeOptions};

fn main() {
    println!("== Figure 12: RR no-opt vs RR (communication optimizations), CA ==\n");
    let machine = calibrated_machine();
    let pop = gen_state("CA");
    let model = PiecewiseModel::paper_constants();
    let opt = RuntimeOptions::optimized();
    let noopt = RuntimeOptions::no_opt();

    let mut rows = Vec::new();
    let mut reductions = Vec::new();
    let mut seen = std::collections::BTreeSet::new();
    for &k in &core_module_grid() {
        let k = bench::clamp_k(k, &pop);
        if !seen.insert(k) {
            continue; // clamped duplicates
        }
        let dist = DataDistribution::build(&pop, Strategy::RoundRobin, k, 1);
        let inputs = inputs_from_distribution(&dist, &model, LoadUnits::default());
        let t_opt = project_day(&inputs, &machine, &opt).seconds;
        let t_noopt = project_day(&inputs, &machine, &noopt).seconds;
        let reduction = 100.0 * (1.0 - t_opt / t_noopt);
        if k > 1 {
            reductions.push(reduction);
        }
        rows.push(vec![
            k.to_string(),
            fnum(t_noopt),
            fnum(t_opt),
            format!("{reduction:.0}%"),
        ]);
    }
    print_table(
        "seconds per simulated day",
        &["core_modules", "RR_no-opt", "RR", "reduction"],
        &rows,
    );
    let avg = reductions.iter().sum::<f64>() / reductions.len().max(1) as f64;
    println!("average reduction across scaling range: {avg:.0}%");
    println!("paper: the combined §IV optimizations give ≈ 40% reduction (RR, CA).");
}
