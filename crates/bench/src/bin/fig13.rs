//! Figure 13: strong scaling of EpiSimdemics for CA, MI, IA and AR —
//! simulation time per day vs core-modules, under the four data
//! distributions RR / GP / RR-splitLoc / GP-splitLoc.
//!
//! The shapes to reproduce (paper Fig. 13):
//! * all four configurations scale together at small core counts;
//! * RR flattens first (no locality, Lmax bound from the heavy tail);
//! * GP without splitLoc flattens against the `Ltot/lmax` ceiling;
//! * GP-splitLoc keeps descending furthest — the winning configuration;
//! * smaller states (IA, AR) saturate at fewer core-modules than CA/MI.

use bench::{calibrated_machine, clamp_k, core_module_grid, fnum, gen_state, print_table};
use episim_core::distribution::{DataDistribution, Strategy};
use load_model::{LoadUnits, PiecewiseModel};
use scale_model::{inputs_from_distribution, project_day, RuntimeOptions};

fn main() {
    println!("== Figure 13: strong scaling, seconds per simulated day ==\n");
    let machine = calibrated_machine();
    let model = PiecewiseModel::paper_constants();
    let opts = RuntimeOptions::optimized();
    let grid = core_module_grid();

    for code in ["CA", "MI", "IA", "AR"] {
        let pop = gen_state(code);
        let mut header: Vec<String> = vec!["strategy".into()];
        header.extend(grid.iter().map(|k| format!("P={k}")));
        let header_refs: Vec<&str> = header.iter().map(String::as_str).collect();
        let mut rows = Vec::new();
        for strategy in Strategy::ALL {
            let mut row = vec![strategy.label().to_string()];
            for &k in &grid {
                let k = clamp_k(k, &pop);
                let dist = DataDistribution::build(&pop, strategy, k, 1);
                let inputs = inputs_from_distribution(&dist, &model, LoadUnits::default());
                row.push(fnum(project_day(&inputs, &machine, &opts).seconds));
            }
            rows.push(row);
        }
        print_table(code, &header_refs, &rows);
    }
    println!("expected shape: GP-splitLoc lowest at scale; RR flattens first;");
    println!("IA/AR saturate earlier than CA/MI (less data per core-module).");
}
