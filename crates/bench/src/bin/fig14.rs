//! Figure 14: the maximum per-partition edge cut (GP-splitLoc) vs the
//! number of partitions, and its ratio to the hypothetical
//! all-remote-communication case (total edges / partitions).
//!
//! Paper: "With WY, the maximum per-partition edge cut is 19 times larger
//! than the all-remote-communication case with 98,304 data partitions. On
//! the other hand, with NY data, the ratio is 2.7. The average ratio across
//! all seven states is 7.83." — i.e. minimizing *total* cut does not bound
//! the *maximum per-partition* cut, the motivation for balancing
//! communication too.

use bench::{clamp_k, fnum, gen_state, partition_grid, print_table, FIGURE_STATES};
use episim_core::distribution::{DataDistribution, Strategy};
use episim_core::workload::build_workload_graph;
use graph_part::metrics::max_partition_cut;
use graph_part::Partition;
use load_model::{LoadUnits, PiecewiseModel};

fn main() {
    println!("== Figure 14: max per-partition edge cut (GP-splitLoc) ==\n");
    let model = PiecewiseModel::paper_constants();
    let grid = partition_grid();
    let mut header: Vec<String> = vec!["state".into()];
    header.extend(grid.iter().map(|k| format!("K={k}")));
    header.push("ratio@maxK".into());
    let header_refs: Vec<&str> = header.iter().map(String::as_str).collect();

    let mut rows = Vec::new();
    let mut final_ratios = Vec::new();
    for code in FIGURE_STATES {
        let pop = gen_state(code);
        let mut row = vec![code.to_string()];
        let mut last_ratio = 0.0;
        for &k in &grid {
            let k = clamp_k(k, &pop);
            let dist = DataDistribution::build(&pop, Strategy::GraphPartitionSplit, k, 1);
            let (graph, _) = build_workload_graph(&dist.pop, &model, LoadUnits::default());
            let part = Partition {
                k,
                assignment: dist
                    .person_part
                    .iter()
                    .chain(dist.location_part.iter())
                    .copied()
                    .collect(),
            };
            let max_cut = max_partition_cut(&graph, &part);
            // All-remote baseline: every edge cut, spread evenly.
            let all_remote = 2.0 * graph.total_edge_weight() as f64 / k as f64;
            last_ratio = max_cut as f64 / all_remote.max(1e-9);
            row.push(fnum(max_cut as f64));
        }
        row.push(fnum(last_ratio));
        final_ratios.push(last_ratio);
        rows.push(row);
    }
    print_table("max per-partition cut (edge weight)", &header_refs, &rows);
    let avg = final_ratios.iter().sum::<f64>() / final_ratios.len() as f64;
    println!("average max-cut / all-remote ratio at the largest K: {avg:.2}");
    println!("paper: WY 19×, NY 2.7×, average 7.83× at 98,304 partitions —");
    println!("small states concentrate their cut on few partitions; big states spread it.");
}
