//! Ablations of the design choices DESIGN.md calls out, beyond the paper's
//! own figures:
//!
//! 1. aggregation batch size (§IV-C) — projected day time vs batch;
//! 2. TRAM 2D routing (§IV-C footnote) — vs plain aggregation over P;
//! 3. partitioner balance tolerance (ubfactor, §III-A's METIS constraint);
//! 4. splitLoc threshold (§III-C) — ceiling gain vs graph growth;
//! 5. the §VII dynamic-LB epoch length — measured imbalance trajectory;
//! 6. over-decomposition granularity (§II-C) — chares per PE vs measured
//!    runtime overhead ("a large number of chares, each with little work
//!    increases flexibility, but also results in higher overhead").

use bench::{calibrated_machine, clamp_k, fnum, gen_state, print_table};
use chare_rt::RuntimeConfig;
use episim_core::distribution::{DataDistribution, Strategy};
use episim_core::rebalance::{run_with_rebalancing, RebalanceConfig};
use episim_core::simulator::SimConfig;
use episim_core::splitloc::{split_heavy_locations, SplitConfig};
use episim_core::workload::{build_workload_graph, location_static_loads};
use graph_part::{kway_partition, recursive_bisection, PartitionConfig, PartitionQuality};
use load_model::speedup::sub_ceiling;
use load_model::{LoadUnits, PiecewiseModel};
use ptts::flu_model;
use scale_model::{inputs_from_distribution, project_day, RuntimeOptions};

fn main() {
    let machine = calibrated_machine();
    let model = PiecewiseModel::paper_constants();
    let pop = gen_state("IA");
    println!("== Ablations (state IA at reproduction scale) ==\n");

    // ---- 1. aggregation batch size.
    {
        let dist = DataDistribution::build(&pop, Strategy::RoundRobin, 256, 1);
        let inputs = inputs_from_distribution(&dist, &model, LoadUnits::default());
        let mut rows = Vec::new();
        for batch in [1u32, 4, 16, 64, 256, 1024] {
            let opts = RuntimeOptions {
                aggregation_batch: batch,
                ..RuntimeOptions::optimized()
            };
            rows.push(vec![
                batch.to_string(),
                fnum(project_day(&inputs, &machine, &opts).seconds),
            ]);
        }
        print_table(
            "1. aggregation batch (RR, P=256): s/day",
            &["batch", "s/day"],
            &rows,
        );
    }

    // ---- 2. TRAM vs plain over P.
    {
        let mut rows = Vec::new();
        for &p in &[16u32, 64, 256, 1024, 4096] {
            let p = clamp_k(p, &pop);
            let dist = DataDistribution::build(&pop, Strategy::RoundRobin, p, 1);
            let inputs = inputs_from_distribution(&dist, &model, LoadUnits::default());
            let plain = project_day(&inputs, &machine, &RuntimeOptions::optimized());
            let tram = project_day(&inputs, &machine, &RuntimeOptions::optimized_tram());
            rows.push(vec![
                p.to_string(),
                fnum(plain.network_s),
                fnum(tram.network_s),
                format!("{:.2}×", plain.network_s / tram.network_s.max(1e-12)),
            ]);
        }
        print_table(
            "2. TRAM 2D routing (RR): network component, s",
            &["P", "plain", "tram", "gain"],
            &rows,
        );
        println!("TRAM wins once fanout ≫ 2√P (high P, low locality).\n");
    }

    // ---- 3. partitioner ubfactor.
    {
        let (graph, _) = build_workload_graph(&pop, &model, LoadUnits::default());
        let mut rows = Vec::new();
        for ub in [1.01f64, 1.05, 1.2, 1.5, 2.0] {
            let part = kway_partition(&graph, &PartitionConfig::new(64).with_ubfactor(ub));
            let q = PartitionQuality::compute(&graph, &part);
            rows.push(vec![
                format!("{ub:.2}"),
                q.edge_cut.to_string(),
                format!("{:.3}", q.imbalance[0]),
                format!("{:.3}", q.imbalance[1]),
            ]);
        }
        print_table(
            "3. balance tolerance (k=64): cut vs imbalance",
            &["ubfactor", "edge_cut", "imb_person", "imb_location"],
            &rows,
        );
        println!("looser balance buys a smaller cut — the paper's Figure 2 tradeoff.\n");
    }

    // ---- 3b. partitioner driver: direct k-way vs recursive bisection vs RR.
    {
        let (graph, _) = build_workload_graph(&pop, &model, LoadUnits::default());
        let mut rows = Vec::new();
        for k in [8u32, 64, 256] {
            let t0 = std::time::Instant::now();
            let kw = kway_partition(&graph, &PartitionConfig::new(k));
            let t_kw = t0.elapsed().as_secs_f64() * 1e3;
            let q_kw = PartitionQuality::compute(&graph, &kw);
            let t1 = std::time::Instant::now();
            let rb = recursive_bisection(&graph, &PartitionConfig::new(k));
            let t_rb = t1.elapsed().as_secs_f64() * 1e3;
            let q_rb = PartitionQuality::compute(&graph, &rb);
            let rr = graph_part::round_robin(graph.n(), k);
            let q_rr = PartitionQuality::compute(&graph, &rr);
            rows.push(vec![
                k.to_string(),
                q_kw.edge_cut.to_string(),
                q_rb.edge_cut.to_string(),
                q_rr.edge_cut.to_string(),
                fnum(t_kw),
                fnum(t_rb),
            ]);
        }
        print_table(
            "3b. partitioner drivers: edge cut (and ms to partition)",
            &["k", "kway_cut", "rb_cut", "rr_cut", "kway_ms", "rb_ms"],
            &rows,
        );
        println!("both METIS-family drivers crush RR; their relative cut order\nvaries with k — the classic kway-vs-RB tradeoff.\n");
    }

    // ---- 4. splitLoc threshold.
    {
        let base_loads = location_static_loads(&pop, &model, LoadUnits::default());
        let base_ceiling = sub_ceiling(&base_loads);
        let mut rows = Vec::new();
        for threshold in [2000u32, 500, 120, 60, 30] {
            let res = split_heavy_locations(
                &pop,
                &SplitConfig {
                    max_partitions: 4096,
                    threshold_override: Some(threshold),
                },
            );
            let loads = location_static_loads(&res.pop, &model, LoadUnits::default());
            rows.push(vec![
                threshold.to_string(),
                res.n_split.to_string(),
                format!(
                    "{:.2}%",
                    100.0 * (res.pop.n_locations() as f64 / pop.n_locations() as f64 - 1.0)
                ),
                format!("{:.1}×", sub_ceiling(&loads) / base_ceiling),
            ]);
        }
        print_table(
            "4. splitLoc threshold: graph growth vs ceiling gain",
            &["threshold", "locs_split", "D_growth", "ceiling_gain"],
            &rows,
        );
    }

    // ---- 5. dynamic-LB epoch length.
    {
        let dist = DataDistribution::build(&pop, Strategy::GraphPartition, 8, 1);
        let cfg = SimConfig {
            days: 30,
            r: 0.0012,
            seed: 5,
            initial_infections: 20,
            stop_when_extinct: false,
            ..Default::default()
        };
        let mut rows = Vec::new();
        for epoch_days in [5u32, 10, 30] {
            let rb = run_with_rebalancing(
                &dist,
                flu_model(),
                cfg.clone(),
                RuntimeConfig::sequential(4),
                RebalanceConfig {
                    epoch_days,
                    imbalance_threshold: 1.10,
                },
            );
            let lbs = rb.epochs.iter().filter(|e| e.repartitioned).count();
            let first = rb.epochs.first().map(|e| e.imbalance).unwrap_or(1.0);
            let last = rb.epochs.last().map(|e| e.imbalance).unwrap_or(1.0);
            rows.push(vec![
                epoch_days.to_string(),
                lbs.to_string(),
                format!("{first:.3}"),
                format!("{last:.3}"),
            ]);
        }
        print_table(
            "5. §VII dynamic LB: measured location-load imbalance",
            &["epoch_days", "lb_phases", "imb_first", "imb_last"],
            &rows,
        );
        println!("(the epidemic itself is bit-identical in every row — see tests)\n");
    }

    // ---- 6. over-decomposition granularity (§II-C): k chare-pairs on a
    // fixed 4 PEs, measured with the real sequential engine.
    {
        use episim_core::simulator::Simulator;
        let cfg = SimConfig {
            days: 3,
            r: 0.0012,
            seed: 9,
            initial_infections: 20,
            stop_when_extinct: false,
            ..Default::default()
        };
        let mut rows = Vec::new();
        for k in [4u32, 16, 64, 256, 1024] {
            let dist = DataDistribution::build(&pop, Strategy::GraphPartition, k, 9);
            let t0 = std::time::Instant::now();
            let run = Simulator::new(
                &dist,
                flu_model(),
                cfg.clone(),
                RuntimeConfig::sequential(4),
            )
            .run();
            let wall_ms = t0.elapsed().as_secs_f64() * 1e3;
            let msgs: u64 = run
                .perf
                .iter()
                .map(|p| p.person_phase.totals().sent_total())
                .sum();
            let busy_ms: u64 = run
                .perf
                .iter()
                .map(|p| {
                    (p.person_phase.totals().busy_ns + p.location_phase.totals().busy_ns)
                        / 1_000_000
                })
                .sum();
            rows.push(vec![
                k.to_string(),
                (2 * k).to_string(),
                msgs.to_string(),
                fnum(busy_ms as f64),
                fnum(wall_ms),
            ]);
        }
        print_table(
            "6. over-decomposition (4 PEs, 3 days): chares vs overhead",
            &["partitions", "chares", "messages", "busy_ms", "wall_ms"],
            &rows,
        );
        println!("results identical at every granularity; overhead grows past the");
        println!("§II-C sweet spot as per-chare work shrinks.");
    }
}
