//! Shared helpers for the experiment binaries.

use chare_rt::RuntimeConfig;
use episim_core::distribution::{DataDistribution, Strategy};
use episim_core::simulator::{SimConfig, Simulator};
use load_model::{LoadUnits, PiecewiseModel};
use ptts::flu_model;
use scale_model::{
    calibrate_from_run, inputs_from_distribution, project_day, MachineModel, RuntimeOptions,
};
use synthpop::state::by_code;
use synthpop::{Population, PopulationConfig};

/// Population scale relative to Table I's full-size data. Overridable with
/// the `EPISIM_SCALE` environment variable (e.g. `EPISIM_SCALE=0.01` for a
/// 10× larger reproduction).
pub fn scale() -> f64 {
    std::env::var("EPISIM_SCALE")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(1e-3)
}

/// The seven individually-plotted states of the paper's figures.
pub const FIGURE_STATES: [&str; 7] = ["CA", "NY", "MI", "NC", "IA", "AR", "WY"];

/// Deterministic per-state generation seed.
pub fn state_seed(code: &str) -> u64 {
    code.bytes().fold(0xE915u64, |acc, b| {
        acc.wrapping_mul(131).wrapping_add(b as u64)
    })
}

/// Generate a state's population at the current scale.
pub fn gen_state(code: &str) -> Population {
    let st = by_code(code).unwrap_or_else(|| panic!("unknown state {code}"));
    let counts = st.scaled(scale());
    Population::generate(&PopulationConfig::from_counts(counts, state_seed(code)))
}

/// The partition-count grid of Figures 4/8/14 ("between 12 and 196,608"),
/// geometric in steps of 4 like the paper's log-scale axis.
pub fn partition_grid() -> Vec<u32> {
    vec![12, 48, 192, 768, 3072, 12288, 49152, 196_608]
}

/// The core-module grid of Figures 12/13 (1 … 128K).
pub fn core_module_grid() -> Vec<u32> {
    vec![1, 4, 16, 64, 256, 1024, 4096, 16384, 65536, 131_072]
}

/// Clamp a partition count to the number of partitionable objects, the way
/// any real run would (more partitions than objects is pure waste).
pub fn clamp_k(k: u32, pop: &Population) -> u32 {
    k.min(pop.n_people() + pop.n_locations()).max(1)
}

/// A machine model whose compute constants were calibrated against a real
/// measured run of the simulator on this host (§III-A's methodology).
/// Falls back to defaults if the measurement degenerates.
pub fn calibrated_machine() -> MachineModel {
    let pop = Population::generate(&PopulationConfig::small("CAL", 2000, 99));
    let dist = DataDistribution::build(&pop, Strategy::RoundRobin, 2, 1);
    let units: u64 = episim_core::workload::location_static_loads(
        &dist.pop,
        &PiecewiseModel::paper_constants(),
        LoadUnits::default(),
    )
    .iter()
    .sum();
    let cfg = SimConfig {
        days: 3,
        r: 0.001,
        seed: 7,
        initial_infections: 10,
        stop_when_extinct: false,
        ..Default::default()
    };
    let run = Simulator::new(&dist, flu_model(), cfg, RuntimeConfig::sequential(2)).run();
    match calibrate_from_run(&run, units) {
        Some(cal) => cal.apply_to(MachineModel::default()),
        None => MachineModel::default(),
    }
}

/// Project seconds-per-day for `(population, strategy, k)` under the given
/// machine and runtime options.
pub fn project_state_day(
    pop: &Population,
    strategy: Strategy,
    k: u32,
    machine: &MachineModel,
    opts: &RuntimeOptions,
) -> f64 {
    let k = clamp_k(k, pop);
    let dist = DataDistribution::build(pop, strategy, k, 1);
    let inputs = inputs_from_distribution(
        &dist,
        &PiecewiseModel::paper_constants(),
        LoadUnits::default(),
    );
    project_day(&inputs, machine, opts).seconds
}

/// The Figure 4/8 report: per-state speedup upper bounds `Sub = Ltot/Lmax`
/// of the location phase over the partition grid, under one strategy.
pub fn speedup_bound_report(strategy: Strategy, title: &str) {
    use load_model::speedup::{speedup_upper_bound, sub_ceiling};
    println!("== {title}: speedup upper bound vs #partitions ==\n");
    let model = PiecewiseModel::paper_constants();
    let grid = partition_grid();
    let mut header: Vec<String> = vec!["state".into(), "ceiling".into()];
    header.extend(grid.iter().map(|k| format!("K={k}")));
    let header_refs: Vec<&str> = header.iter().map(String::as_str).collect();

    let mut rows = Vec::new();
    for code in FIGURE_STATES {
        let pop = gen_state(code);
        let mut row = vec![code.to_string()];
        let mut ceiling_cell = String::new();
        for (i, &k) in grid.iter().enumerate() {
            let dist = DataDistribution::build(&pop, strategy, clamp_k(k, &pop), 1);
            let loads = episim_core::workload::location_static_loads(
                &dist.pop,
                &model,
                LoadUnits::default(),
            );
            if i + 1 == grid.len() {
                // Splitting depends on the target partition count, so the
                // binding Ltot/lmax ceiling is the largest-K one.
                ceiling_cell = fnum(sub_ceiling(&loads));
            }
            let sub = speedup_upper_bound(&loads, &dist.location_part, dist.k);
            row.push(fnum(sub));
        }
        row.insert(1, ceiling_cell);
        rows.push(row);
    }
    print_table("Sub = Ltot/Lmax of the location phase", &header_refs, &rows);
}

/// Render an aligned table to stdout.
pub fn print_table(title: &str, header: &[&str], rows: &[Vec<String>]) {
    println!("# {title}");
    let mut widths: Vec<usize> = header.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let fmt_row = |cells: &[String]| {
        cells
            .iter()
            .enumerate()
            .map(|(i, c)| format!("{:>w$}", c, w = widths.get(i).copied().unwrap_or(8)))
            .collect::<Vec<_>>()
            .join("  ")
    };
    let head: Vec<String> = header.iter().map(|s| s.to_string()).collect();
    println!("{}", fmt_row(&head));
    for row in rows {
        println!("{}", fmt_row(row));
    }
    println!();
}

/// Format a float compactly for tables.
pub fn fnum(x: f64) -> String {
    if x == 0.0 {
        "0".into()
    } else if x.abs() >= 1000.0 {
        format!("{x:.0}")
    } else if x.abs() >= 10.0 {
        format!("{x:.1}")
    } else if x.abs() >= 0.01 {
        format!("{x:.3}")
    } else {
        format!("{x:.3e}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn state_seeds_differ() {
        assert_ne!(state_seed("CA"), state_seed("NY"));
        assert_eq!(state_seed("CA"), state_seed("CA"));
    }

    #[test]
    fn gen_state_matches_scaled_counts() {
        let p = gen_state("WY");
        let expect = by_code("WY").unwrap().scaled(scale());
        assert_eq!(p.n_people() as u64, expect.people);
    }

    #[test]
    fn clamp_caps_at_object_count() {
        let p = gen_state("WY");
        let total = p.n_people() + p.n_locations();
        assert_eq!(clamp_k(10_000_000, &p), total);
        assert_eq!(clamp_k(0, &p), 1);
        assert_eq!(clamp_k(5, &p), 5);
    }

    #[test]
    fn fnum_ranges() {
        assert_eq!(fnum(0.0), "0");
        assert_eq!(fnum(12345.6), "12346");
        assert_eq!(fnum(42.42), "42.4");
        assert_eq!(fnum(0.5), "0.500");
        assert!(fnum(1e-6).contains('e'));
    }
}
