//! Shared plumbing for the experiment regeneration binaries.
//!
//! Every table and figure of the paper's evaluation has a binary under
//! `src/bin/` (see DESIGN.md's experiment index); this library holds the
//! pieces they share: scaled state populations, the calibrated machine
//! model, and table rendering.

pub mod common;

pub use common::*;
