//! # load-model — estimating EpiSimdemics' workload (paper §III-A/III-B)
//!
//! The paper's central tooling contribution is "a workload model that allows
//! state-of-the-art graph partitioners to use custom, application-specific
//! load balancing constraints". This crate implements it:
//!
//! * [`piecewise`] — the static load model
//!   `Y = Ya·S(ϕ−X′) + Yb·S(X′−ϕ)` with `X′ = µ·X` and
//!   `S(t) = 1/(1+ρ·e^(−t))`: two linear regimes (small vs large
//!   locations) blended by a sigmoid at the crossover ϕ. The paper's Blue
//!   Waters constants are provided; [`fit`] recalibrates them for this
//!   machine.
//! * [`fit`] — two-segment piecewise least squares with breakpoint search,
//!   plus the multi-feature linear regression used by the *dynamic* model
//!   of Figure 3(b) (events, Σ interactions, Σ 1/interactions).
//! * [`static_load`] — per-vertex loads: persons ≈ message count, locations
//!   ≈ model(events).
//! * [`speedup`] — `Sub = Ltot/Lmax`, the `Ltot/lmax` ceiling, and the
//!   closed-form power-law bound of §III-B.

pub mod fit;
pub mod piecewise;
pub mod speedup;
pub mod static_load;

pub use fit::{fit_linear, fit_piecewise, LinearFit};
pub use piecewise::PiecewiseModel;
pub use speedup::{analytic_sub_over_d, speedup_upper_bound, sub_ceiling};
pub use static_load::{location_loads, person_loads, LoadUnits};
