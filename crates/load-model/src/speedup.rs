//! Speedup upper bounds — the analysis of §III-B.
//!
//! With a K-way partition P of the location vertices, the paper defines the
//! load of a partition `L_p = Σ_{v∈p} l_v`, the estimated speedup upper
//! bound `Sub = Ltot / Lmax`, and observes `Sub ≤ Ltot / lmax` since
//! `lmax ≤ Lmax`. It then derives, for a power-law degree distribution with
//! exponent β,
//!
//! ```text
//! log(Sub/D) ≲ log(davg) − (1/β)·log(D) − (1/β)·log(c)
//! ```
//!
//! — the scalability *per location* shrinks as the data grows (Figure 5a),
//! which is the motivation for splitLoc.

/// `Sub = Ltot / Lmax` for a concrete assignment of loads to partitions.
///
/// `loads[v]` is vertex v's load; `assignment[v] < k` its partition.
pub fn speedup_upper_bound(loads: &[u64], assignment: &[u32], k: u32) -> f64 {
    assert_eq!(loads.len(), assignment.len());
    let mut per_part = vec![0u64; k as usize];
    let mut total = 0u64;
    for (&l, &p) in loads.iter().zip(assignment) {
        per_part[p as usize] += l;
        total += l;
    }
    let lmax = per_part.into_iter().max().unwrap_or(0);
    if lmax == 0 {
        0.0
    } else {
        total as f64 / lmax as f64
    }
}

/// The ceiling `Ltot / lmax` — the best any partitioning can do, reached
/// when the heaviest single vertex sits alone (Table II's ratio).
pub fn sub_ceiling(loads: &[u64]) -> f64 {
    let total: u64 = loads.iter().sum();
    let lmax = loads.iter().copied().max().unwrap_or(0);
    if lmax == 0 {
        0.0
    } else {
        total as f64 / lmax as f64
    }
}

/// The closed-form §III-B bound on `Sub/D` for a power-law degree
/// distribution: `log(Sub/D) ≲ log(davg) − (1/β)(log D + log c)`, i.e.
/// `Sub/D ≤ davg · (c·D)^(−1/β)`, where `c` normalizes
/// `c · Σ_{d≥1} d^(−β) = 1`.
pub fn analytic_sub_over_d(davg: f64, beta: f64, d: f64) -> f64 {
    assert!(beta > 1.0, "power law needs β > 1");
    assert!(d >= 1.0);
    let c = 1.0 / truncated_zeta(beta, 1_000_000);
    davg * (c * d).powf(-1.0 / beta)
}

/// Truncated Riemann zeta `Σ_{d=1}^{n} d^(−β)` (converges fast for β > 1;
/// the tail is folded in via the integral bound).
pub fn truncated_zeta(beta: f64, n: u64) -> f64 {
    let mut sum = 0.0;
    for d in 1..=n.min(100_000) {
        sum += (d as f64).powf(-beta);
    }
    // Integral tail bound: ∫_n^∞ x^(−β) dx = n^(1−β)/(β−1).
    let n0 = n.min(100_000) as f64;
    sum + n0.powf(1.0 - beta) / (beta - 1.0)
}

/// Given per-vertex loads before and after a graph modification, the
/// improvement factor of the `Ltot/lmax` ceiling — Table II reports this
/// rising by "a factor of, on average 89" across the states.
pub fn ceiling_improvement(loads_before: &[u64], loads_after: &[u64]) -> f64 {
    let before = sub_ceiling(loads_before);
    let after = sub_ceiling(loads_after);
    if before == 0.0 {
        0.0
    } else {
        after / before
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sub_equals_total_over_max_partition() {
        let loads = [4u64, 4, 4, 8];
        let assignment = [0u32, 0, 1, 2];
        // parts: 8, 4, 8 → total 20, Lmax 8.
        let s = speedup_upper_bound(&loads, &assignment, 3);
        assert!((s - 20.0 / 8.0).abs() < 1e-12);
    }

    #[test]
    fn ceiling_reached_when_heaviest_isolated() {
        let loads = [1u64, 1, 1, 1, 16];
        let ceiling = sub_ceiling(&loads);
        assert!((ceiling - 20.0 / 16.0).abs() < 1e-12);
        // Isolating the heavy vertex attains the ceiling.
        let assignment = [0u32, 0, 0, 0, 1];
        let s = speedup_upper_bound(&loads, &assignment, 2);
        assert!((s - ceiling).abs() < 1e-12);
    }

    #[test]
    fn sub_never_exceeds_ceiling() {
        let loads: Vec<u64> = (1..=50).map(|i| (i * i) as u64).collect();
        let ceiling = sub_ceiling(&loads);
        for k in [2u32, 5, 10, 50] {
            let assignment: Vec<u32> = (0..50).map(|v| v % k).collect();
            let s = speedup_upper_bound(&loads, &assignment, k);
            assert!(s <= ceiling + 1e-9, "k={k}: {s} > {ceiling}");
        }
    }

    #[test]
    fn zero_loads() {
        assert_eq!(sub_ceiling(&[]), 0.0);
        assert_eq!(sub_ceiling(&[0, 0]), 0.0);
        assert_eq!(speedup_upper_bound(&[0, 0], &[0, 1], 2), 0.0);
    }

    #[test]
    fn analytic_bound_decreases_with_d() {
        // The Figure 5(a) phenomenon: larger data ⇒ smaller Sub/D.
        let b_small = analytic_sub_over_d(14.35, 2.0, 1e5);
        let b_large = analytic_sub_over_d(14.35, 2.0, 1e7);
        assert!(b_large < b_small);
        // Slope on log–log axes should be −1/β = −0.5.
        let slope = (b_large.ln() - b_small.ln()) / ((1e7f64).ln() - (1e5f64).ln());
        assert!((slope + 0.5).abs() < 1e-9, "slope {slope}");
    }

    #[test]
    fn heavier_tail_hurts_more() {
        // Smaller β (heavier tail) ⇒ worse (smaller) Sub/D at large D.
        let heavy = analytic_sub_over_d(14.35, 1.5, 1e7);
        let light = analytic_sub_over_d(14.35, 3.0, 1e7);
        assert!(heavy < light);
    }

    #[test]
    fn zeta_matches_known_values() {
        // ζ(2) = π²/6 ≈ 1.6449.
        let z2 = truncated_zeta(2.0, 1_000_000);
        assert!(
            (z2 - std::f64::consts::PI.powi(2) / 6.0).abs() < 1e-4,
            "{z2}"
        );
        // ζ(3) ≈ 1.2021.
        let z3 = truncated_zeta(3.0, 1_000_000);
        assert!((z3 - 1.2020569).abs() < 1e-4, "{z3}");
    }

    #[test]
    fn improvement_factor() {
        // Splitting a 100-heavy vertex into 10×10 raises the ceiling 10×.
        let before = vec![100u64, 1, 1];
        let mut after = vec![1u64, 1];
        after.extend(std::iter::repeat_n(10, 10));
        let f = ceiling_improvement(&before, &after);
        assert!((f - (102.0 / 10.0) / (102.0 / 100.0)).abs() < 1e-9);
    }
}
