//! The paper's piecewise-linear-with-sigmoid-blend static load model.
//!
//! §III-A: "We use a piecewise linear regression to approximate the
//! non-linear dependence that exists between the location computational
//! load and events as follows:
//!
//! ```text
//! X′ = µ·X
//! Ya = 6.09×10⁻⁶ + 7.72×10⁻⁷ X′
//! Yb = −1.25×10⁻⁴ + 8.67×10⁻⁷ X′
//! Y  = Ya·S(ϕ−X′) + Yb·S(X′−ϕ)      where S(t) = 1/(1+ρ·e⁻ᵗ)
//! ```
//!
//! X is the number of events, Y the load (relative processing time, in
//! seconds on Blue Waters), ϕ the crossover between the two linear models
//! (determined experimentally) and ρ adjusts the smoothness of the
//! transition."

use serde::{Deserialize, Serialize};

/// The two-piece sigmoid-blended linear model.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PiecewiseModel {
    /// Input scaling µ (the paper measures LocationManagers and scales the
    /// input to apply the model to single locations).
    pub mu: f64,
    /// Intercept of the small-X regime (`Ya`).
    pub a1: f64,
    /// Slope of the small-X regime.
    pub b1: f64,
    /// Intercept of the large-X regime (`Yb`).
    pub a2: f64,
    /// Slope of the large-X regime.
    pub b2: f64,
    /// Crossover point ϕ (in X′ units).
    pub phi: f64,
    /// Sigmoid shape ρ.
    pub rho: f64,
    /// Sigmoid width: `t` is divided by this before the logistic, so the
    /// blend happens over a scale-appropriate window. The paper's raw
    /// formula corresponds to `width = 1`.
    pub width: f64,
}

impl PiecewiseModel {
    /// The constants printed in the paper (loads in seconds on Blue
    /// Waters). ϕ is the intersection of the two lines
    /// (`(a1−a2)/(b2−b1) ≈ 1380` events).
    pub fn paper_constants() -> Self {
        let (a1, b1) = (6.09e-6, 7.72e-7);
        let (a2, b2) = (-1.25e-4, 8.67e-7);
        PiecewiseModel {
            mu: 1.0,
            a1,
            b1,
            a2,
            b2,
            phi: (a1 - a2) / (b2 - b1),
            rho: 1.0,
            width: 100.0,
        }
    }

    /// The logistic blend `S(t) = 1/(1+ρ·e^(−t/width))`.
    #[inline]
    fn s(&self, t: f64) -> f64 {
        1.0 / (1.0 + self.rho * (-t / self.width).exp())
    }

    /// Evaluate the model at `x` events. Never returns a negative load.
    #[inline]
    pub fn eval(&self, x: f64) -> f64 {
        let xp = self.mu * x;
        let ya = self.a1 + self.b1 * xp;
        let yb = self.a2 + self.b2 * xp;
        let y = ya * self.s(self.phi - xp) + yb * self.s(xp - self.phi);
        y.max(0.0)
    }

    /// Evaluate and quantize to integer load units (`scale` units per
    /// second); partitioners need integer weights. Always at least 1 for
    /// x > 0 so no active vertex is weightless.
    #[inline]
    pub fn eval_units(&self, x: f64, scale: f64) -> u64 {
        if x <= 0.0 {
            return 0;
        }
        ((self.eval(x) * scale).round() as u64).max(1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_crossover_near_1380() {
        let m = PiecewiseModel::paper_constants();
        assert!((m.phi - 1380.0).abs() < 5.0, "phi = {}", m.phi);
    }

    #[test]
    fn small_regime_follows_ya() {
        let m = PiecewiseModel::paper_constants();
        // Far below ϕ the blend saturates to Ya.
        let x = 100.0;
        let expected = 6.09e-6 + 7.72e-7 * x;
        assert!((m.eval(x) - expected).abs() / expected < 0.01);
    }

    #[test]
    fn large_regime_follows_yb() {
        let m = PiecewiseModel::paper_constants();
        let x = 50_000.0;
        let expected = -1.25e-4 + 8.67e-7 * x;
        assert!((m.eval(x) - expected).abs() / expected < 0.01);
    }

    #[test]
    fn continuous_at_crossover() {
        let m = PiecewiseModel::paper_constants();
        // At ϕ the two lines intersect, so the blend is continuous and
        // equal to either line's value.
        let at_phi = m.eval(m.phi);
        let line = 6.09e-6 + 7.72e-7 * m.phi;
        assert!((at_phi - line).abs() / line < 0.01);
        // And locally smooth.
        let eps = 10.0;
        let lo = m.eval(m.phi - eps);
        let hi = m.eval(m.phi + eps);
        assert!(lo < at_phi && at_phi < hi);
    }

    #[test]
    fn monotone_nonnegative() {
        let m = PiecewiseModel::paper_constants();
        let mut prev = -1.0;
        for i in 0..2000 {
            let y = m.eval(i as f64 * 50.0);
            assert!(y >= 0.0);
            assert!(y >= prev, "non-monotone at {i}");
            prev = y;
        }
    }

    #[test]
    fn superlinear_beyond_crossover() {
        // The paper's large-location regime has a steeper slope: the cost
        // per event grows once locations get big.
        let m = PiecewiseModel::paper_constants();
        let r_small = m.eval(1_000.0) / 1_000.0;
        let r_large = m.eval(100_000.0) / 100_000.0;
        assert!(r_large > r_small);
    }

    #[test]
    fn mu_scales_input() {
        let mut m = PiecewiseModel::paper_constants();
        let base = m.eval(2000.0);
        m.mu = 2.0;
        let scaled = m.eval(1000.0);
        assert!((base - scaled).abs() / base < 1e-9);
    }

    #[test]
    fn units_quantization() {
        let m = PiecewiseModel::paper_constants();
        assert_eq!(m.eval_units(0.0, 1e9), 0);
        assert!(m.eval_units(1.0, 1e9) >= 1);
        // 1000 events ≈ 778 µs ≈ 778_000 units at 1e9 (ns).
        let u = m.eval_units(1000.0, 1e9);
        assert!((700_000..900_000).contains(&u), "{u}");
    }
}
