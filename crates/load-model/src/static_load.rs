//! Per-vertex static loads for partitioning.
//!
//! §III-A: "the amount of computation per person is roughly proportional to
//! the number of messages that each person generates … Thus, we approximate
//! the load of a person vertex as the number of messages the person
//! generates. On the other hand, the computation per location varies
//! significantly and requires a more detailed estimation" — the piecewise
//! model.
//!
//! This module turns raw inputs (visit counts / event counts) into the
//! integer load units graph partitioners consume.

use crate::piecewise::PiecewiseModel;

/// Integer quantization scale: load units per model second.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LoadUnits {
    /// Units per second (e.g. `1e9` for nanosecond-granular weights).
    pub per_second: f64,
}

impl Default for LoadUnits {
    fn default() -> Self {
        LoadUnits { per_second: 1e9 }
    }
}

/// Person loads: the number of visit messages each person generates.
///
/// `visit_counts[p]` is person `p`'s daily visit count.
pub fn person_loads(visit_counts: &[u32]) -> Vec<u64> {
    visit_counts.iter().map(|&c| c.max(1) as u64).collect()
}

/// Location loads: the static model evaluated on each location's event
/// count (2 events — arrive and depart — per visit), quantized to units.
pub fn location_loads(events: &[u64], model: &PiecewiseModel, units: LoadUnits) -> Vec<u64> {
    events
        .iter()
        .map(|&e| model.eval_units(e as f64, units.per_second))
        .collect()
}

/// §III-B assumption 3: `l_v = α·d_v + γ ≈ α·d_v` — the simple linear
/// degree-proportional load used in the closed-form analysis (as opposed to
/// the fitted piecewise model used for actual partitioning).
pub fn linear_loads(degrees: &[u32], alpha: f64) -> Vec<u64> {
    degrees
        .iter()
        .map(|&d| ((alpha * d as f64).round() as u64).max(u64::from(d > 0)))
        .collect()
}

/// The dynamic-model feature vector of one location for one day
/// (Figure 3b): the quantities "only available at run time".
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct DynamicFeatures {
    /// Number of arrive/depart events processed.
    pub events: f64,
    /// Sum of interactions (susceptible × infectious pair-durations).
    pub sum_interactions: f64,
    /// Sum of reciprocals of interactions per event block (captures
    /// fragmentation of occupancy; the paper's third state variable).
    pub sum_reciprocal_interactions: f64,
}

impl DynamicFeatures {
    /// As a regression feature row.
    pub fn as_row(&self) -> Vec<f64> {
        vec![
            self.events,
            self.sum_interactions,
            self.sum_reciprocal_interactions,
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn person_loads_are_message_counts() {
        assert_eq!(person_loads(&[3, 5, 0]), vec![3, 5, 1]);
    }

    #[test]
    fn location_loads_monotone_in_events() {
        let m = PiecewiseModel::paper_constants();
        let loads = location_loads(&[0, 10, 100, 10_000], &m, LoadUnits::default());
        assert_eq!(loads[0], 0);
        assert!(loads[1] < loads[2]);
        assert!(loads[2] < loads[3]);
    }

    #[test]
    fn linear_loads_scale_with_alpha() {
        let l = linear_loads(&[0, 1, 10], 2.5);
        assert_eq!(l, vec![0, 3, 25]);
    }

    #[test]
    fn linear_loads_floor_at_one_for_active() {
        let l = linear_loads(&[1, 2], 0.1);
        assert_eq!(l, vec![1, 1]);
    }

    #[test]
    fn dynamic_feature_row_shape() {
        let f = DynamicFeatures {
            events: 10.0,
            sum_interactions: 55.0,
            sum_reciprocal_interactions: 0.5,
        };
        assert_eq!(f.as_row(), vec![10.0, 55.0, 0.5]);
    }
}
