//! Regression machinery: ordinary least squares, two-segment piecewise
//! fitting with breakpoint search, and the small multi-feature regression
//! behind the paper's *dynamic* load model (Figure 3b).

use crate::piecewise::PiecewiseModel;

/// An ordinary-least-squares line `y = a + b·x`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LinearFit {
    /// Intercept.
    pub a: f64,
    /// Slope.
    pub b: f64,
    /// Sum of squared residuals.
    pub sse: f64,
    /// Number of points fitted.
    pub n: usize,
}

/// OLS over `(x, y)` pairs. Returns `None` for fewer than 2 points or a
/// degenerate (constant-x) design.
pub fn fit_linear(points: &[(f64, f64)]) -> Option<LinearFit> {
    let n = points.len();
    if n < 2 {
        return None;
    }
    let nf = n as f64;
    let (mut sx, mut sy, mut sxx, mut sxy) = (0.0, 0.0, 0.0, 0.0);
    for &(x, y) in points {
        sx += x;
        sy += y;
        sxx += x * x;
        sxy += x * y;
    }
    let denom = nf * sxx - sx * sx;
    if denom.abs() < 1e-12 {
        return None;
    }
    let b = (nf * sxy - sx * sy) / denom;
    let a = (sy - b * sx) / nf;
    let sse = points
        .iter()
        .map(|&(x, y)| {
            let r = y - (a + b * x);
            r * r
        })
        .sum();
    Some(LinearFit { a, b, sse, n })
}

/// Fit the paper's two-segment model: search candidate breakpoints over the
/// x-quantiles, fit OLS lines to each side, and pick the split minimizing
/// total SSE. `width` controls the sigmoid blend of the returned model.
///
/// Returns `None` if there are not enough points for two segments.
pub fn fit_piecewise(points: &[(f64, f64)], width: f64) -> Option<PiecewiseModel> {
    // Degenerate fallback: one line on both sides (used when there are too
    // few points for a split, or no split point separates distinct x).
    let single_line = |points: &[(f64, f64)]| -> Option<PiecewiseModel> {
        let l = fit_linear(points)?;
        Some(PiecewiseModel {
            mu: 1.0,
            a1: l.a,
            b1: l.b,
            a2: l.a,
            b2: l.b,
            phi: points.iter().map(|p| p.0).fold(0.0, f64::max),
            rho: 1.0,
            width: width.max(1e-9),
        })
    };
    if points.len() < 7 {
        return single_line(points);
    }
    let mut sorted: Vec<(f64, f64)> = points.to_vec();
    sorted.sort_by(|p, q| p.0.partial_cmp(&q.0).unwrap());

    let mut best: Option<(f64, LinearFit, LinearFit)> = None;
    // Candidate splits keep at least 3 points per side.
    for i in 3..sorted.len() - 3 {
        // Skip ties in x (breakpoint must separate distinct x values).
        if sorted[i].0 == sorted[i - 1].0 {
            continue;
        }
        let (lo, hi) = sorted.split_at(i);
        let (Some(fl), Some(fh)) = (fit_linear(lo), fit_linear(hi)) else {
            continue;
        };
        let sse = fl.sse + fh.sse;
        let phi = (sorted[i - 1].0 + sorted[i].0) / 2.0;
        match &best {
            Some((_, bl, bh)) if bl.sse + bh.sse <= sse => {}
            _ => best = Some((phi, fl, fh)),
        }
    }
    let Some((phi, lo, hi)) = best else {
        return single_line(points);
    };
    Some(PiecewiseModel {
        mu: 1.0,
        a1: lo.a,
        b1: lo.b,
        a2: hi.a,
        b2: hi.b,
        phi,
        rho: 1.0,
        width: width.max(1e-9),
    })
}

/// Multi-feature linear regression `y = w₀ + w·x` solved by normal
/// equations with Gaussian elimination. Used for the dynamic load model,
/// whose features are (events, Σ interactions, Σ 1/interactions).
///
/// Returns the weight vector `[w₀, w₁, …, w_d]` or `None` if the system is
/// singular or underdetermined.
pub fn fit_multilinear(xs: &[Vec<f64>], ys: &[f64]) -> Option<Vec<f64>> {
    let n = xs.len();
    if n == 0 || n != ys.len() {
        return None;
    }
    let d = xs[0].len() + 1; // +1 for intercept
    if n < d {
        return None;
    }
    // Normal equations: (XᵀX) w = Xᵀy, with X rows [1, x...].
    let mut ata = vec![vec![0.0f64; d]; d];
    let mut aty = vec![0.0f64; d];
    for (row, &y) in xs.iter().zip(ys) {
        debug_assert_eq!(row.len() + 1, d);
        let mut xrow = Vec::with_capacity(d);
        xrow.push(1.0);
        xrow.extend_from_slice(row);
        for i in 0..d {
            aty[i] += xrow[i] * y;
            for j in 0..d {
                ata[i][j] += xrow[i] * xrow[j];
            }
        }
    }
    solve(ata, aty)
}

/// Gaussian elimination with partial pivoting.
#[allow(clippy::needless_range_loop)] // index form mirrors the math
fn solve(mut a: Vec<Vec<f64>>, mut b: Vec<f64>) -> Option<Vec<f64>> {
    let n = b.len();
    for col in 0..n {
        // Pivot.
        let pivot =
            (col..n).max_by(|&i, &j| a[i][col].abs().partial_cmp(&a[j][col].abs()).unwrap())?;
        if a[pivot][col].abs() < 1e-12 {
            return None;
        }
        a.swap(col, pivot);
        b.swap(col, pivot);
        for row in col + 1..n {
            let f = a[row][col] / a[col][col];
            for k in col..n {
                a[row][k] -= f * a[col][k];
            }
            b[row] -= f * b[col];
        }
    }
    let mut x = vec![0.0; n];
    for row in (0..n).rev() {
        let mut acc = b[row];
        for (k, &xk) in x.iter().enumerate().skip(row + 1) {
            acc -= a[row][k] * xk;
        }
        x[row] = acc / a[row][row];
    }
    Some(x)
}

/// Coefficient of determination (R²) of predictions vs observations.
pub fn r_squared(predicted: &[f64], observed: &[f64]) -> f64 {
    assert_eq!(predicted.len(), observed.len());
    let n = observed.len() as f64;
    if n == 0.0 {
        return 0.0;
    }
    let mean = observed.iter().sum::<f64>() / n;
    let ss_tot: f64 = observed.iter().map(|&y| (y - mean) * (y - mean)).sum();
    let ss_res: f64 = predicted
        .iter()
        .zip(observed)
        .map(|(&p, &y)| (y - p) * (y - p))
        .sum();
    if ss_tot <= 0.0 {
        return if ss_res <= 1e-12 { 1.0 } else { 0.0 };
    }
    1.0 - ss_res / ss_tot
}

/// Mean absolute percentage error — the paper validates its static model at
/// "5% error on average" (Figure 3a).
pub fn mape(predicted: &[f64], observed: &[f64]) -> f64 {
    assert_eq!(predicted.len(), observed.len());
    let mut total = 0.0;
    let mut n = 0usize;
    for (&p, &y) in predicted.iter().zip(observed) {
        if y.abs() > 1e-12 {
            total += ((y - p) / y).abs();
            n += 1;
        }
    }
    if n == 0 {
        0.0
    } else {
        total / n as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ptts::CounterRng;

    #[test]
    fn linear_fit_recovers_exact_line() {
        let pts: Vec<(f64, f64)> = (0..20).map(|i| (i as f64, 3.0 + 2.0 * i as f64)).collect();
        let f = fit_linear(&pts).unwrap();
        assert!((f.a - 3.0).abs() < 1e-9);
        assert!((f.b - 2.0).abs() < 1e-9);
        assert!(f.sse < 1e-12);
    }

    #[test]
    fn linear_fit_degenerate_cases() {
        assert!(fit_linear(&[]).is_none());
        assert!(fit_linear(&[(1.0, 2.0)]).is_none());
        assert!(fit_linear(&[(1.0, 2.0), (1.0, 3.0)]).is_none()); // vertical
    }

    #[test]
    fn piecewise_recovers_two_regimes() {
        // y = 1 + x below 100; y = -99 + 2x above (continuous at 100).
        let mut pts = Vec::new();
        for i in 0..100 {
            let x = i as f64;
            pts.push((x, 1.0 + x));
        }
        for i in 100..200 {
            let x = i as f64;
            pts.push((x, -99.0 + 2.0 * x));
        }
        let m = fit_piecewise(&pts, 1.0).unwrap();
        assert!((m.phi - 100.0).abs() < 5.0, "phi {}", m.phi);
        assert!((m.b1 - 1.0).abs() < 0.05, "b1 {}", m.b1);
        assert!((m.b2 - 2.0).abs() < 0.05, "b2 {}", m.b2);
        // Predictions near either end match the true lines.
        assert!((m.eval(10.0) - 11.0).abs() < 1.0);
        assert!((m.eval(190.0) - 281.0).abs() < 3.0);
    }

    #[test]
    fn piecewise_with_noise_low_mape() {
        let mut rng = CounterRng::from_key(&[1]);
        let truth = |x: f64| {
            if x < 500.0 {
                10.0 + 0.5 * x
            } else {
                -140.0 + 0.8 * x
            }
        };
        let pts: Vec<(f64, f64)> = (0..300)
            .map(|i| {
                let x = i as f64 * 4.0;
                let noise = 1.0 + 0.04 * (rng.uniform_f64() - 0.5);
                (x, truth(x) * noise)
            })
            .collect();
        let m = fit_piecewise(&pts, 10.0).unwrap();
        let pred: Vec<f64> = pts.iter().map(|&(x, _)| m.eval(x)).collect();
        let obs: Vec<f64> = pts.iter().map(|&(_, y)| y).collect();
        let err = mape(&pred, &obs);
        assert!(err < 0.05, "MAPE {err} — paper reports ≈ 5%");
    }

    #[test]
    fn piecewise_few_points_falls_back_to_line() {
        let pts = [(0.0, 0.0), (1.0, 1.0), (2.0, 2.0)];
        let m = fit_piecewise(&pts, 1.0).unwrap();
        assert!((m.b1 - 1.0).abs() < 1e-9);
        assert_eq!(m.b1, m.b2);
    }

    #[test]
    fn multilinear_recovers_weights() {
        let mut rng = CounterRng::from_key(&[2]);
        let mut xs = Vec::new();
        let mut ys = Vec::new();
        for _ in 0..200 {
            let f1 = rng.uniform_f64() * 10.0;
            let f2 = rng.uniform_f64() * 5.0;
            let f3 = rng.uniform_f64();
            xs.push(vec![f1, f2, f3]);
            ys.push(2.0 + 3.0 * f1 - 1.5 * f2 + 7.0 * f3);
        }
        let w = fit_multilinear(&xs, &ys).unwrap();
        assert!((w[0] - 2.0).abs() < 1e-6);
        assert!((w[1] - 3.0).abs() < 1e-6);
        assert!((w[2] + 1.5).abs() < 1e-6);
        assert!((w[3] - 7.0).abs() < 1e-6);
    }

    #[test]
    fn multilinear_rejects_underdetermined() {
        assert!(fit_multilinear(&[vec![1.0, 2.0]], &[3.0]).is_none());
        assert!(fit_multilinear(&[], &[]).is_none());
    }

    #[test]
    fn r_squared_perfect_and_mean() {
        let obs = [1.0, 2.0, 3.0, 4.0];
        assert!((r_squared(&obs, &obs) - 1.0).abs() < 1e-12);
        let mean_pred = [2.5; 4];
        assert!(r_squared(&mean_pred, &obs).abs() < 1e-12);
    }

    #[test]
    fn mape_basics() {
        assert_eq!(mape(&[], &[]), 0.0);
        let e = mape(&[110.0, 95.0], &[100.0, 100.0]);
        assert!((e - 0.075).abs() < 1e-12);
    }
}
