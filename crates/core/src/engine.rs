//! Engine selection and distribution-aware chare placement.
//!
//! The binaries and examples take `--engine {seq,threads,vt,net}`; this
//! module turns that flag into a [`RuntimeConfig`] and centralizes the
//! partition→PE mapping the simulator uses.

use chare_rt::{FaultPlan, RuntimeConfig};
use std::str::FromStr;

/// Which of the four `chare-rt` engines to run on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EngineChoice {
    /// Deterministic single-thread engine simulating `n_pes` PEs.
    Seq,
    /// Real OS threads, one per PE.
    Threads,
    /// Virtual-time deterministic-simulation-testing engine.
    Vt,
    /// Networked multi-process engine (loopback TCP, SPMD workers).
    Net,
}

impl FromStr for EngineChoice {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.to_ascii_lowercase().as_str() {
            "seq" | "sequential" => Ok(EngineChoice::Seq),
            "threads" | "thr" | "threaded" => Ok(EngineChoice::Threads),
            "vt" | "dst" => Ok(EngineChoice::Vt),
            "net" => Ok(EngineChoice::Net),
            other => Err(format!(
                "unknown engine {other:?} (expected seq, threads, vt, or net)"
            )),
        }
    }
}

impl EngineChoice {
    /// Build the runtime configuration for this engine. `n_procs` only
    /// matters for [`EngineChoice::Net`] (must divide `n_pes`); the
    /// in-process engines ignore it.
    pub fn runtime_config(self, n_pes: u32, n_procs: u32) -> RuntimeConfig {
        match self {
            EngineChoice::Seq => RuntimeConfig::sequential(n_pes),
            EngineChoice::Threads => RuntimeConfig::threaded(n_pes),
            EngineChoice::Vt => RuntimeConfig::dst(n_pes, FaultPlan::none(0)),
            EngineChoice::Net => RuntimeConfig::net(n_pes, n_procs),
        }
    }
}

/// Map partition `part` of `k` onto one of `n_pes` PEs in contiguous
/// blocks: `⌊part · n_pes / k⌋`.
///
/// The graph partitioner numbers partitions so that communicating
/// partitions tend to be numerically close; block placement keeps those
/// neighbours on the same PE — and, under the net engine's contiguous
/// PE→process ranges, inside the same OS process — where a round-robin
/// `part % n_pes` would deliberately scatter them across the machine.
/// This is the distribution-aware mapping the paper's two-level scheme
/// (§II-C) implies: data distribution decides *which* partition, placement
/// decides *where*, and both must pull in the same direction.
pub fn pe_for_partition(part: u32, k: u32, n_pes: u32) -> u32 {
    debug_assert!(part < k, "partition {part} out of range (k = {k})");
    ((u64::from(part) * u64::from(n_pes)) / u64::from(k.max(1))) as u32
}

#[cfg(test)]
mod tests {
    use super::*;
    use chare_rt::ExecMode;

    #[test]
    fn engine_names_parse() {
        assert_eq!("seq".parse::<EngineChoice>().unwrap(), EngineChoice::Seq);
        assert_eq!("SEQ".parse::<EngineChoice>().unwrap(), EngineChoice::Seq);
        assert_eq!(
            "threads".parse::<EngineChoice>().unwrap(),
            EngineChoice::Threads
        );
        assert_eq!("vt".parse::<EngineChoice>().unwrap(), EngineChoice::Vt);
        assert_eq!("net".parse::<EngineChoice>().unwrap(), EngineChoice::Net);
        assert!("mpi".parse::<EngineChoice>().is_err());
    }

    #[test]
    fn runtime_configs_have_the_right_mode() {
        assert_eq!(
            EngineChoice::Seq.runtime_config(4, 1).mode,
            ExecMode::Sequential
        );
        assert_eq!(
            EngineChoice::Threads.runtime_config(4, 1).mode,
            ExecMode::Threads
        );
        assert_eq!(
            EngineChoice::Vt.runtime_config(4, 1).mode,
            ExecMode::VirtualTime
        );
        let net = EngineChoice::Net.runtime_config(8, 2);
        assert_eq!(net.mode, ExecMode::Net);
        assert_eq!(net.net.n_procs, 2);
        assert_eq!(net.smp.pes_per_process, 4);
    }

    #[test]
    fn block_placement_is_contiguous_and_balanced() {
        // 8 partitions over 4 PEs: two consecutive partitions per PE.
        let pes: Vec<u32> = (0..8).map(|p| pe_for_partition(p, 8, 4)).collect();
        assert_eq!(pes, vec![0, 0, 1, 1, 2, 2, 3, 3]);
        // Non-divisible: monotone, covers every PE, never out of range.
        let pes: Vec<u32> = (0..7).map(|p| pe_for_partition(p, 7, 3)).collect();
        assert!(pes.windows(2).all(|w| w[0] <= w[1]), "monotone: {pes:?}");
        assert!(pes.iter().all(|&pe| pe < 3));
        assert_eq!(
            pes.iter().collect::<std::collections::BTreeSet<_>>().len(),
            3,
            "every PE used: {pes:?}"
        );
        // Fewer partitions than PEs: injective.
        let pes: Vec<u32> = (0..3).map(|p| pe_for_partition(p, 3, 8)).collect();
        assert_eq!(
            pes.iter().collect::<std::collections::BTreeSet<_>>().len(),
            3
        );
    }
}
