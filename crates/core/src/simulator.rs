//! The parallel simulation driver: the per-day phase loop of §II-B run on
//! the chare runtime.

use crate::checkpoint::{Checkpoint, CheckpointError};
use crate::distribution::DataDistribution;
use crate::ensemble::CowWorld;
use crate::kernel::LocationDayFeatures;
use crate::managers::{LocationManager, PersonManager};
use crate::messages::{slots, DayEffects, Shared, SharedRef, SimMsg};
use crate::output::{DayStats, EpiCurve};
use chare_rt::{ChareId, PhaseStats, Runtime, RuntimeConfig};
use ptts::crng::{CounterRng, Purpose};
use ptts::intervention::{DayObservables, InterventionSet};
use ptts::Ptts;
use std::fmt;
use std::sync::Arc;

/// Simulation parameters.
#[derive(Debug, Clone)]
pub struct SimConfig {
    /// Days to simulate (the paper runs 120–180).
    pub days: u32,
    /// Base transmissibility per minute of contact.
    pub r: f64,
    /// Master seed (drives every stochastic decision).
    pub seed: u64,
    /// Number of initially infected persons.
    pub initial_infections: u32,
    /// Public-policy interventions.
    pub interventions: InterventionSet,
    /// Stop early once no one is infected and nothing is pending.
    pub stop_when_extinct: bool,
}

impl Default for SimConfig {
    fn default() -> Self {
        SimConfig {
            days: 120,
            r: 0.0001,
            seed: 42,
            initial_infections: 5,
            interventions: InterventionSet::none(),
            stop_when_extinct: true,
        }
    }
}

/// Per-day runtime counters: one [`PhaseStats`] per §II-B phase.
#[derive(Debug, Clone, Default)]
pub struct DayPerf {
    /// Phase 1+2: person updates and visit messages (ends at the first
    /// completion detection).
    pub person_phase: PhaseStats,
    /// Phase 3+4: location DES and infect messages.
    pub location_phase: PhaseStats,
    /// Phase 5+6: infection application and global reduction.
    pub apply_phase: PhaseStats,
}

/// Result of a run: the epidemic curve plus per-day runtime counters.
#[derive(Debug, Clone, Default)]
pub struct SimRun {
    /// Day-by-day epidemic statistics.
    pub curve: EpiCurve,
    /// Day-by-day runtime counters (message/packet/busy-time), used by the
    /// performance model.
    pub perf: Vec<DayPerf>,
}

/// Epidemic bookkeeping that persists across epochs when the simulation is
/// driven in spans (the §VII rebalancing path): intervention activation
/// state and the running global counts.
#[derive(Debug, Clone)]
pub struct Carry {
    /// Intervention activation state.
    pub interventions: InterventionSet,
    /// Cumulative infections so far (seeds included).
    pub cumulative: u64,
    /// New infections on the previous day.
    pub yesterday_new: u64,
    /// Infected count at the start of the previous day.
    pub yesterday_infected: u64,
}

impl Carry {
    /// Fresh bookkeeping for a run with `seeds` initial infections.
    pub fn new(interventions: InterventionSet, seeds: u64) -> Self {
        Carry {
            interventions,
            cumulative: seeds,
            yesterday_new: 0,
            yesterday_infected: seeds,
        }
    }
}

/// A day-boundary decision for externally driven runs (the episerve
/// worker pool): keep going, pause here (checkpointable — the runtime is
/// quiescent), or stop for good (cooperative cancel).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DayControl {
    /// Simulate the next day.
    Continue,
    /// Stop after this day; the caller intends to checkpoint and resume.
    Pause,
    /// Stop after this day; the run is abandoned (cancel).
    Stop,
}

/// How an observed span of days ended (see [`Simulator::run_days_observed`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RunHalt {
    /// Reached `end` (or the epidemic went extinct first — the same
    /// "nothing left to do" outcome [`Simulator::run_days`] reports).
    Finished {
        /// Whether extinction cut the span short.
        extinct: bool,
    },
    /// The observer requested a pause; `next_day` is the first day *not*
    /// simulated (feed it to [`crate::checkpoint::capture`]).
    Paused {
        /// The day a resumed run must start from.
        next_day: u32,
    },
    /// The observer requested a cooperative stop (cancel).
    Stopped {
        /// The first day not simulated.
        next_day: u32,
    },
}

/// Why [`Simulator::resume_from`] refused a checkpoint file.
#[derive(Debug)]
pub enum ResumeError {
    /// The file could not be read.
    Io(std::io::Error),
    /// The bytes failed structural or CRC validation
    /// ([`CheckpointError::BadCrc`] et al.).
    Corrupt(CheckpointError),
    /// The checkpoint decodes but does not belong to this invocation:
    /// wrong population size or a resume day beyond the configured run.
    Mismatch(String),
}

impl fmt::Display for ResumeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ResumeError::Io(e) => write!(f, "checkpoint read failed: {e}"),
            ResumeError::Corrupt(e) => write!(f, "checkpoint invalid: {e}"),
            ResumeError::Mismatch(why) => write!(f, "checkpoint mismatch: {why}"),
        }
    }
}

impl std::error::Error for ResumeError {}

/// A simulator rebuilt from a checkpoint by [`Simulator::resume_from`],
/// ready to continue at `next_day` with `carry` — no manual
/// load→`to_carry`→`with_states` wiring.
pub struct Resumed {
    /// The rebuilt simulator (person states restored).
    pub sim: Simulator,
    /// Epidemic bookkeeping as of the checkpoint.
    pub carry: Carry,
    /// First day to simulate.
    pub next_day: u32,
    /// Initial seeded infections (for `EpiCurve` bookkeeping).
    pub seeds: u64,
}

// Manual impl: `Simulator` holds a live runtime and has no useful Debug
// form; the resume bookkeeping is what matters in assertions.
impl std::fmt::Debug for Resumed {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Resumed")
            .field("next_day", &self.next_day)
            .field("seeds", &self.seeds)
            .finish_non_exhaustive()
    }
}

/// The parallel simulator.
pub struct Simulator {
    runtime: Runtime<SimMsg>,
    shared: SharedRef,
    cfg: SimConfig,
    n_pm: u32,
    n_lm: u32,
}

impl Simulator {
    /// Assemble a simulator: one PersonManager and one LocationManager
    /// chare per partition of `dist`, placed in contiguous blocks by
    /// [`crate::engine::pe_for_partition`] (placement never affects the
    /// epidemic — see the distribution tests). Persons start in the
    /// disease's start state with `initial_infections` seeded
    /// deterministically.
    pub fn new(
        dist: &DataDistribution,
        ptts: Ptts,
        cfg: SimConfig,
        rt_cfg: RuntimeConfig,
    ) -> Simulator {
        Self::with_states(dist, ptts, cfg, rt_cfg, None)
    }

    /// Like [`Simulator::new`] but resuming from pre-existing person states
    /// (indexed by person id) — the chare-migration path used between
    /// rebalancing epochs. When `states` is `None`, fresh persons are
    /// created and initial infections are seeded.
    pub fn with_states(
        dist: &DataDistribution,
        ptts: Ptts,
        cfg: SimConfig,
        rt_cfg: RuntimeConfig,
        states: Option<Vec<crate::person::PersonSlot>>,
    ) -> Simulator {
        Self::from_world(&CowWorld::build(dist, ptts), cfg, rt_cfg, states)
    }

    /// Build a simulator over a pre-built copy-on-write world: the
    /// population, disease model, and layout maps are aliased (`Arc`
    /// clones), never deep-copied. This is the entry point the ensemble
    /// scheduler uses to stamp out many members from one world.
    pub fn from_world(
        world: &CowWorld,
        cfg: SimConfig,
        rt_cfg: RuntimeConfig,
        states: Option<Vec<crate::person::PersonSlot>>,
    ) -> Simulator {
        let k = world.layout.k;
        let n_people = world.pop.n_people() as usize;
        if let Some(st) = &states {
            assert_eq!(st.len(), n_people, "states must cover every person");
        }

        let shared: SharedRef = Arc::new(Shared {
            pop: world.pop.clone(),
            ptts: world.ptts.clone(),
            layout: world.layout.clone(),
            r: cfg.r,
            seed: cfg.seed,
        });

        // Choose initial infections deterministically (fresh runs only).
        let seeds = if states.is_none() {
            let mut set = std::collections::BTreeSet::new();
            let mut rng = CounterRng::for_entity(cfg.seed, 0, 0, Purpose::Synthesis);
            let want = (cfg.initial_infections as usize).min(n_people);
            while set.len() < want {
                set.insert(rng.uniform_u64(n_people as u64) as u32);
            }
            set
        } else {
            std::collections::BTreeSet::new()
        };

        let mut runtime = Runtime::new(rt_cfg);
        let n_pes = rt_cfg.n_pes;
        for part in 0..k {
            let ids = &world.layout.persons_per_part[part as usize];
            let mut pm = match &states {
                Some(st) => PersonManager::with_states(
                    shared.clone(),
                    ids.iter().map(|&pid| st[pid as usize]).collect(),
                ),
                None => PersonManager::new(shared.clone(), ids.clone()),
            };
            for (local, &pid) in ids.iter().enumerate() {
                if seeds.contains(&pid) {
                    pm.seed_infection(local as u32);
                }
            }
            let pe = crate::engine::pe_for_partition(part, k, n_pes);
            runtime.add_chare(ChareId(part), pe, Box::new(pm));
            let lm = LocationManager::new(
                shared.clone(),
                world.layout.locations_per_part[part as usize].clone(),
            );
            runtime.add_chare(ChareId(k + part), pe, Box::new(lm));
        }

        Simulator {
            runtime,
            shared,
            cfg,
            n_pm: k,
            n_lm: k,
        }
    }

    /// Run days `start..end`, updating `carry`. Returns the day statistics,
    /// the per-day runtime counters, and whether the epidemic went extinct.
    pub fn run_days(
        &mut self,
        start: u32,
        end: u32,
        carry: &mut Carry,
    ) -> (Vec<DayStats>, Vec<DayPerf>, bool) {
        let (days, perf, halt) =
            self.run_days_observed(start, end, carry, &mut |_| DayControl::Continue);
        let extinct = matches!(halt, RunHalt::Finished { extinct: true });
        (days, perf, extinct)
    }

    /// Like [`Simulator::run_days`], but `observe` sees every finished
    /// day's [`DayStats`] *at the day boundary* — a global quiescence
    /// point — and decides whether to continue, pause (checkpoint next),
    /// or stop (cooperative cancel). This is the lifecycle hook the
    /// episerve worker pool drives: per-day curve streaming, pause, and
    /// cancel all ride on the returned [`DayControl`].
    pub fn run_days_observed(
        &mut self,
        start: u32,
        end: u32,
        carry: &mut Carry,
        observe: &mut dyn FnMut(&DayStats) -> DayControl,
    ) -> (Vec<DayStats>, Vec<DayPerf>, RunHalt) {
        let population = self.shared.pop.n_people() as u64;
        let mut days = Vec::new();
        let mut perf = Vec::new();
        let mut halt = RunHalt::Finished { extinct: false };

        for day in start..end {
            // Step 0: interventions react to yesterday's global state.
            let obs = DayObservables {
                day,
                infected_now: carry.yesterday_infected,
                new_cases: carry.yesterday_new,
                cumulative: carry.cumulative,
                population,
            };
            let fx = carry.interventions.evaluate(&obs);
            let effects = DayEffects {
                closed_kinds: DayEffects::from_flags(&fx.closed_kinds),
                r_scale: fx.r_scale,
                vaccinations: fx.vaccinations,
            };
            let r_eff = self.shared.r * effects.r_scale;

            // Phase 1+2: person phase.
            let injections: Vec<(ChareId, SimMsg)> = (0..self.n_pm)
                .map(|pm| {
                    (
                        ChareId(pm),
                        SimMsg::BeginDay {
                            day,
                            effects: effects.clone(),
                        },
                    )
                })
                .collect();
            let person_phase = self.runtime.run_phase(injections);

            // Phase 3+4: location phase.
            let injections: Vec<(ChareId, SimMsg)> = (0..self.n_lm)
                .map(|lm| (ChareId(self.n_pm + lm), SimMsg::ComputeDay { day, r_eff }))
                .collect();
            let location_phase = self.runtime.run_phase(injections);

            // Phase 5+6: apply infections, reduce.
            let injections: Vec<(ChareId, SimMsg)> = (0..self.n_pm)
                .map(|pm| (ChareId(pm), SimMsg::ApplyDay { day }))
                .collect();
            let apply_phase = self.runtime.run_phase(injections);

            let new_infections = apply_phase.reduction(slots::NEW_INFECTIONS);
            carry.cumulative += new_infections;
            let stats = DayStats {
                day,
                new_infections,
                infected_now: person_phase.reduction(slots::INFECTED_NOW),
                susceptible: person_phase.reduction(slots::SUSCEPTIBLE),
                symptomatic: person_phase.reduction(slots::SYMPTOMATIC),
                cumulative: carry.cumulative,
                visits: person_phase.reduction(slots::VISITS_SENT),
                events: location_phase.reduction(slots::EVENTS),
                interactions: location_phase.reduction(slots::INTERACTIONS),
                infects_sent: location_phase.reduction(slots::INFECTS_SENT),
                infections_by_kind: std::array::from_fn(|k| {
                    location_phase.reduction(slots::BY_KIND_BASE + k)
                }),
            };
            carry.yesterday_new = new_infections;
            carry.yesterday_infected = stats.infected_now;
            let control = observe(&stats);
            let infected_now = stats.infected_now;
            days.push(stats);
            perf.push(DayPerf {
                person_phase,
                location_phase,
                apply_phase,
            });
            if self.cfg.stop_when_extinct && infected_now == 0 && new_infections == 0 && day > 0 {
                halt = RunHalt::Finished { extinct: true };
                break;
            }
            match control {
                DayControl::Continue => {}
                DayControl::Pause => {
                    halt = RunHalt::Paused { next_day: day + 1 };
                    break;
                }
                DayControl::Stop => {
                    halt = RunHalt::Stopped { next_day: day + 1 };
                    break;
                }
            }
        }
        (days, perf, halt)
    }

    /// Rebuild a paused run from a checkpoint file in one step: read,
    /// CRC-validate ([`Checkpoint::decode`]), check the checkpoint against
    /// this invocation (person count must match the population, the resume
    /// day must lie inside `cfg.days`), and wire the restored person
    /// states and [`Carry`] into a fresh simulator. Replaces the manual
    /// `load` → `to_carry` → `with_states` → `run_days(next_day, …)`
    /// dance; continuing from the result is bit-exact (the checkpoint
    /// tests pin this).
    pub fn resume_from(
        path: &std::path::Path,
        dist: &DataDistribution,
        ptts: Ptts,
        cfg: SimConfig,
        rt_cfg: RuntimeConfig,
    ) -> Result<Resumed, ResumeError> {
        let data = std::fs::read(path).map_err(ResumeError::Io)?;
        let ckpt = Checkpoint::decode(&data).map_err(ResumeError::Corrupt)?;
        let n_people = dist.pop.n_people() as usize;
        if ckpt.states.len() != n_people {
            return Err(ResumeError::Mismatch(format!(
                "checkpoint holds {} persons but the population has {n_people}",
                ckpt.states.len()
            )));
        }
        if ckpt.next_day > cfg.days {
            return Err(ResumeError::Mismatch(format!(
                "checkpoint resumes at day {} but the run is only {} days",
                ckpt.next_day, cfg.days
            )));
        }
        let carry = ckpt.to_carry(&cfg.interventions);
        let next_day = ckpt.next_day;
        let seeds = ckpt.seeds;
        let sim = Simulator::with_states(dist, ptts, cfg, rt_cfg, Some(ckpt.states));
        Ok(Resumed {
            sim,
            carry,
            next_day,
            seeds,
        })
    }

    /// SPMD rank of the underlying runtime (0 outside `ExecMode::Net`).
    pub fn net_rank(&self) -> u32 {
        self.runtime.net_rank()
    }

    /// Snapshot every locally-hosted chare that carries persistent state
    /// (see [`chare_rt::Chare::snapshot`]) as `(chare id, blob)` pairs.
    /// At a day boundary the runtime is quiescent, so the blobs form this
    /// rank's shard of a consistent global checkpoint.
    pub fn snapshot_chares(&self) -> Vec<(u32, Vec<u8>)> {
        self.runtime.snapshot_local()
    }

    /// Count a committed recovery checkpoint in the runtime stats.
    pub fn note_checkpoint(&mut self) {
        self.runtime.note_checkpoint();
    }

    /// Count a rollback restore in the runtime stats.
    pub fn note_restore(&mut self) {
        self.runtime.note_restore();
    }

    /// Tear down, reclaiming per-person states (indexed by person id) and
    /// each location's accumulated dynamic features (indexed by global
    /// location id).
    pub fn dismantle(self) -> (Vec<crate::person::PersonSlot>, Vec<LocationDayFeatures>) {
        let n_people = self.shared.pop.n_people() as usize;
        let n_locations = self.shared.pop.n_locations() as usize;
        let ptts = &self.shared.ptts;
        let mut states: Vec<crate::person::PersonSlot> = (0..n_people)
            .map(|p| crate::person::PersonSlot::new(p as u32, ptts))
            .collect();
        let mut features = vec![LocationDayFeatures::default(); n_locations];
        let n_pm = self.n_pm;
        for (id, chare) in self.runtime.into_chares() {
            let any = chare.into_any();
            if id.0 < n_pm {
                let pm = any
                    .downcast::<PersonManager>()
                    .expect("PM chare ids hold PersonManagers");
                for slot in pm.into_persons() {
                    states[slot.id as usize] = slot;
                }
            } else {
                let lm = any
                    .downcast::<LocationManager>()
                    .expect("LM chare ids hold LocationManagers");
                for (li, &loc) in lm.locations().iter().enumerate() {
                    features[loc as usize] = lm.feature_totals[li];
                }
            }
        }
        (states, features)
    }

    /// Run the full simulation and also return the final person states
    /// (carrying the transmission tree) and per-location accumulated
    /// dynamic features.
    pub fn run_collecting(
        mut self,
    ) -> (
        SimRun,
        Vec<crate::person::PersonSlot>,
        Vec<LocationDayFeatures>,
    ) {
        let population = self.shared.pop.n_people() as u64;
        let seeds = self.cfg.initial_infections.min(self.shared.pop.n_people()) as u64;
        let mut carry = Carry::new(self.cfg.interventions.clone(), seeds);
        let days = self.cfg.days;
        let (day_stats, perf, _extinct) = self.run_days(0, days, &mut carry);
        let run = SimRun {
            curve: EpiCurve {
                population,
                seeds,
                days: day_stats,
            },
            perf,
        };
        let (states, features) = self.dismantle();
        (run, states, features)
    }

    /// Engine-agnostic entry point: build a simulator and run it to the
    /// epidemic curve under any [`RuntimeConfig`] — sequential, threaded,
    /// or the virtual-time DST engine with a fault plan. The conformance
    /// suites call this once per (engine, fault plan, seed) cell and
    /// compare [`EpiCurve::hash`] values; DESIGN.md §7 requires them to be
    /// identical for every engine and every benign plan.
    pub fn run_curve(
        dist: &DataDistribution,
        ptts: Ptts,
        cfg: SimConfig,
        rt_cfg: RuntimeConfig,
    ) -> EpiCurve {
        Simulator::new(dist, ptts, cfg, rt_cfg).run().curve
    }

    /// Run the full simulation.
    pub fn run(mut self) -> SimRun {
        let population = self.shared.pop.n_people() as u64;
        let seeds = self.cfg.initial_infections.min(self.shared.pop.n_people()) as u64;
        let mut carry = Carry::new(self.cfg.interventions.clone(), seeds);
        let days = self.cfg.days;
        let (day_stats, perf, _extinct) = self.run_days(0, days, &mut carry);
        SimRun {
            curve: EpiCurve {
                population,
                seeds,
                days: day_stats,
            },
            perf,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::distribution::Strategy;
    use ptts::flu_model;
    use synthpop::{Population, PopulationConfig};

    fn small_pop() -> Population {
        Population::generate(&PopulationConfig::small("T", 1500, 11))
    }

    fn run(strategy: Strategy, k: u32, rt: RuntimeConfig, seed: u64) -> SimRun {
        let pop = small_pop();
        let dist = DataDistribution::build(&pop, strategy, k, seed);
        let cfg = SimConfig {
            days: 40,
            r: 0.0012,
            seed,
            initial_infections: 8,
            ..Default::default()
        };
        Simulator::new(&dist, flu_model(), cfg, rt).run()
    }

    #[test]
    fn epidemic_spreads_and_ends() {
        let run = run(Strategy::RoundRobin, 4, RuntimeConfig::sequential(4), 7);
        let total = run.curve.total_infections();
        assert!(total > 50, "epidemic should take off (total {total})");
        assert!(run.curve.attack_rate() <= 1.0);
        // Daily visits roughly population × 5.5.
        let d0 = &run.curve.days[0];
        assert!(
            d0.visits > 1500 * 4 && d0.visits < 1500 * 9,
            "{}",
            d0.visits
        );
        assert_eq!(d0.events, 2 * d0.visits);
    }

    #[test]
    fn distributions_do_not_change_results() {
        // The epidemic trajectory must be identical under every data
        // distribution (including splitLoc — Figure 6a's no-added-
        // communication split is correctness-preserving).
        let base = run(Strategy::RoundRobin, 3, RuntimeConfig::sequential(3), 5);
        for strategy in [
            Strategy::GraphPartition,
            Strategy::RoundRobinSplit,
            Strategy::GraphPartitionSplit,
        ] {
            let other = run(strategy, 3, RuntimeConfig::sequential(3), 5);
            assert_eq!(
                base.curve.new_infection_series(),
                other.curve.new_infection_series(),
                "strategy {strategy:?} changed the epidemic"
            );
        }
    }

    #[test]
    fn pe_count_does_not_change_results() {
        let one = run(Strategy::GraphPartition, 4, RuntimeConfig::sequential(1), 9);
        let four = run(Strategy::GraphPartition, 4, RuntimeConfig::sequential(4), 9);
        assert_eq!(
            one.curve.new_infection_series(),
            four.curve.new_infection_series()
        );
    }

    #[test]
    fn threaded_matches_sequential() {
        let seq = run(Strategy::GraphPartition, 4, RuntimeConfig::sequential(2), 3);
        let thr = run(Strategy::GraphPartition, 4, RuntimeConfig::threaded(2), 3);
        assert_eq!(
            seq.curve.new_infection_series(),
            thr.curve.new_infection_series()
        );
        assert_eq!(seq.curve.days.len(), thr.curve.days.len());
    }

    #[test]
    fn seeds_counted_in_cumulative() {
        let r = run(Strategy::RoundRobin, 2, RuntimeConfig::sequential(2), 1);
        assert!(r.curve.total_infections() >= 8);
        assert_eq!(r.curve.seeds, 8);
    }

    #[test]
    fn perf_counters_present() {
        let r = run(Strategy::RoundRobin, 4, RuntimeConfig::sequential(4), 7);
        assert_eq!(r.perf.len(), r.curve.days.len());
        let day0 = &r.perf[0];
        assert_eq!(day0.person_phase.per_pe.len(), 4);
        // The person phase carries the visit traffic.
        assert!(day0.person_phase.totals().sent_total() > 0);
        assert!(day0.person_phase.totals().busy_ns > 0);
    }

    #[test]
    fn observed_run_matches_plain_run_and_pauses_at_boundary() {
        let pop = small_pop();
        let dist = DataDistribution::build(&pop, Strategy::GraphPartition, 3, 5);
        let cfg = SimConfig {
            days: 20,
            r: 0.0012,
            seed: 5,
            initial_infections: 8,
            stop_when_extinct: false,
            ..Default::default()
        };
        let plain = Simulator::new(
            &dist,
            flu_model(),
            cfg.clone(),
            RuntimeConfig::sequential(3),
        )
        .run()
        .curve;

        // Observe every day, pause at day 7: the prefix must be identical
        // and the halt must name day 8 as the resume point.
        let mut sim = Simulator::new(
            &dist,
            flu_model(),
            cfg.clone(),
            RuntimeConfig::sequential(3),
        );
        let mut carry = Carry::new(cfg.interventions.clone(), 8);
        let mut seen = Vec::new();
        let (days, _, halt) = sim.run_days_observed(0, 20, &mut carry, &mut |d| {
            seen.push(d.day);
            if d.day == 7 {
                DayControl::Pause
            } else {
                DayControl::Continue
            }
        });
        assert_eq!(halt, RunHalt::Paused { next_day: 8 });
        assert_eq!(days.len(), 8);
        assert_eq!(seen, (0..8).collect::<Vec<_>>());
        assert_eq!(days.as_slice(), &plain.days[..8]);

        // Stop is the cooperative cancel: same boundary semantics.
        let mut sim = Simulator::new(
            &dist,
            flu_model(),
            cfg.clone(),
            RuntimeConfig::sequential(3),
        );
        let mut carry = Carry::new(cfg.interventions.clone(), 8);
        let (days, _, halt) = sim.run_days_observed(0, 20, &mut carry, &mut |d| {
            if d.day >= 3 {
                DayControl::Stop
            } else {
                DayControl::Continue
            }
        });
        assert_eq!(halt, RunHalt::Stopped { next_day: 4 });
        assert_eq!(days.len(), 4);
    }

    #[test]
    fn resume_from_is_bit_exact_and_typed_errors() {
        use crate::checkpoint::capture;
        let pop = small_pop();
        let dist = DataDistribution::build(&pop, Strategy::GraphPartition, 3, 9);
        let cfg = SimConfig {
            days: 24,
            r: 0.0012,
            seed: 9,
            initial_infections: 8,
            stop_when_extinct: false,
            ..Default::default()
        };
        let straight = Simulator::new(
            &dist,
            flu_model(),
            cfg.clone(),
            RuntimeConfig::sequential(3),
        )
        .run()
        .curve;

        let mut sim = Simulator::new(
            &dist,
            flu_model(),
            cfg.clone(),
            RuntimeConfig::sequential(3),
        );
        let mut carry = Carry::new(cfg.interventions.clone(), 8);
        let (mut days, _, _) = sim.run_days(0, 12, &mut carry);
        let (states, _) = sim.dismantle();
        let ckpt = capture(12, 8, &carry, states);
        let dir = std::env::temp_dir().join(format!("episim-resume-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("job.epck");
        ckpt.save(&path).unwrap();

        let resumed = Simulator::resume_from(
            &path,
            &dist,
            flu_model(),
            cfg.clone(),
            RuntimeConfig::sequential(3),
        )
        .expect("valid checkpoint resumes");
        assert_eq!(resumed.next_day, 12);
        assert_eq!(resumed.seeds, 8);
        let mut carry2 = resumed.carry;
        let mut sim2 = resumed.sim;
        let (tail, _, _) = sim2.run_days(12, 24, &mut carry2);
        days.extend(tail);
        assert_eq!(days, straight.days, "resume_from must be bit-exact");

        // Missing file → Io.
        let err = Simulator::resume_from(
            &dir.join("absent.epck"),
            &dist,
            flu_model(),
            cfg.clone(),
            RuntimeConfig::sequential(3),
        )
        .unwrap_err();
        assert!(matches!(err, ResumeError::Io(_)), "{err}");

        // Bit-flipped body → Corrupt (CRC).
        let mut bad = std::fs::read(&path).unwrap();
        let mid = bad.len() / 2;
        bad[mid] ^= 0x40;
        let bad_path = dir.join("bad.epck");
        std::fs::write(&bad_path, &bad).unwrap();
        let err = Simulator::resume_from(
            &bad_path,
            &dist,
            flu_model(),
            cfg.clone(),
            RuntimeConfig::sequential(3),
        )
        .unwrap_err();
        assert!(matches!(err, ResumeError::Corrupt(_)), "{err}");

        // Wrong population → Mismatch.
        let other_pop = Population::generate(&PopulationConfig::small("XL", 2500, 12));
        let other_dist = DataDistribution::build(&other_pop, Strategy::RoundRobin, 3, 9);
        let err = Simulator::resume_from(
            &path,
            &other_dist,
            flu_model(),
            cfg.clone(),
            RuntimeConfig::sequential(3),
        )
        .unwrap_err();
        assert!(matches!(err, ResumeError::Mismatch(_)), "{err}");

        // Resume day beyond the configured run → Mismatch.
        let short_cfg = SimConfig { days: 5, ..cfg };
        let err = Simulator::resume_from(
            &path,
            &dist,
            flu_model(),
            short_cfg,
            RuntimeConfig::sequential(3),
        )
        .unwrap_err();
        assert!(matches!(err, ResumeError::Mismatch(_)), "{err}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn zero_r_means_no_spread() {
        let pop = small_pop();
        let dist = DataDistribution::build(&pop, Strategy::RoundRobin, 2, 1);
        let cfg = SimConfig {
            days: 30,
            r: 0.0,
            seed: 1,
            initial_infections: 5,
            ..Default::default()
        };
        let run = Simulator::new(&dist, flu_model(), cfg, RuntimeConfig::sequential(2)).run();
        assert_eq!(run.curve.total_infections(), 5);
        // Early exit once the seeds recover.
        assert!(run.curve.days.len() < 30);
    }
}
