//! Checkpoint/restart for long simulations.
//!
//! A checkpoint captures everything a resumed run needs to continue
//! *bit-exactly*: the next day to simulate, the global epidemic counters,
//! the intervention activation state, and every person's health state with
//! transmission provenance. Location state needs no capture — visit buffers
//! are empty at day boundaries and the DES is stateless across days.
//!
//! Binary layout (little-endian):
//!
//! ```text
//! magic "EPCK" | version u32
//! next_day u32 | seeds u64 | cumulative u64 | yd_new u64 | yd_infected u64
//! fired: n u32 + u8 × n
//! active windows: n u32 + (source u32, end_day u32) × n
//! persons: n u32 + (state u16, days_remaining u32, treatment u16,
//!                   sus_scale f32, infected_on u32, infected_by u32) × n
//!          (u32::MAX encodes "none"; pending infections are always empty
//!           at day boundaries and are not stored)
//! crc32 u32 over every preceding byte (v2; torn-write detection)
//! ```
//!
//! [`Checkpoint::save`] is torn-write-safe: it writes to a temp file in
//! the target directory, fsyncs, and atomically renames — a crash during
//! save leaves either the old file or the new one, never a hybrid, and a
//! partial temp file can never be mistaken for a checkpoint because the
//! CRC trailer will not validate.

use crate::person::PersonSlot;
use crate::simulator::Carry;
use bytes::{Buf, BufMut, Bytes, BytesMut};
use chare_rt::crc32;
use ptts::intervention::{InterventionSet, InterventionSnapshot};
use ptts::model::{HealthTracker, StateId, TreatmentId};
use std::fmt;
use std::io::Write;

const MAGIC: &[u8; 4] = b"EPCK";
const VERSION: u32 = 2;

/// A captured simulation state.
#[derive(Debug, Clone, PartialEq)]
pub struct Checkpoint {
    /// The next day to simulate.
    pub next_day: u32,
    /// Initial seeded infections (for `EpiCurve` bookkeeping).
    pub seeds: u64,
    /// Cumulative infections through `next_day − 1`.
    pub cumulative: u64,
    /// New infections on day `next_day − 1`.
    pub yesterday_new: u64,
    /// Infected count at the start of day `next_day − 1`.
    pub yesterday_infected: u64,
    /// Intervention activation state.
    pub interventions: InterventionSnapshot,
    /// Every person's state, indexed by person id.
    pub states: Vec<PersonSlot>,
}

/// Decoding failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CheckpointError {
    /// Wrong magic bytes.
    BadMagic,
    /// Unsupported version.
    BadVersion(u32),
    /// Buffer ended early.
    Truncated,
    /// CRC trailer mismatch: the body was corrupted (bit rot, torn write).
    BadCrc {
        /// CRC stored in the trailer.
        stored: u32,
        /// CRC computed over the body.
        computed: u32,
    },
}

impl fmt::Display for CheckpointError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CheckpointError::BadMagic => write!(f, "not an EPCK checkpoint"),
            CheckpointError::BadVersion(v) => write!(f, "unsupported checkpoint version {v}"),
            CheckpointError::Truncated => write!(f, "checkpoint truncated"),
            CheckpointError::BadCrc { stored, computed } => write!(
                f,
                "checkpoint CRC mismatch (stored {stored:#010x}, computed {computed:#010x})"
            ),
        }
    }
}

impl std::error::Error for CheckpointError {}

/// Capture a checkpoint from epoch state (person states from
/// [`crate::simulator::Simulator::dismantle`], counters from [`Carry`]).
pub fn capture(next_day: u32, seeds: u64, carry: &Carry, states: Vec<PersonSlot>) -> Checkpoint {
    debug_assert!(
        states.iter().all(|s| s.pending.is_none()),
        "pending infections must be applied before checkpointing"
    );
    Checkpoint {
        next_day,
        seeds,
        cumulative: carry.cumulative,
        yesterday_new: carry.yesterday_new,
        yesterday_infected: carry.yesterday_infected,
        interventions: carry.interventions.snapshot(),
        states,
    }
}

impl Checkpoint {
    /// Rebuild the [`Carry`] for resumption, given the intervention
    /// configuration (which is part of `SimConfig`, not the checkpoint).
    pub fn to_carry(&self, interventions: &InterventionSet) -> Carry {
        Carry {
            interventions: InterventionSet::restore(
                interventions.interventions().to_vec(),
                &self.interventions,
            ),
            cumulative: self.cumulative,
            yesterday_new: self.yesterday_new,
            yesterday_infected: self.yesterday_infected,
        }
    }

    /// Serialize.
    pub fn encode(&self) -> Bytes {
        let mut buf = BytesMut::with_capacity(64 + self.states.len() * 20);
        buf.put_slice(MAGIC);
        buf.put_u32_le(VERSION);
        buf.put_u32_le(self.next_day);
        buf.put_u64_le(self.seeds);
        buf.put_u64_le(self.cumulative);
        buf.put_u64_le(self.yesterday_new);
        buf.put_u64_le(self.yesterday_infected);
        buf.put_u32_le(self.interventions.fired.len() as u32);
        for &f in &self.interventions.fired {
            buf.put_u8(f as u8);
        }
        buf.put_u32_le(self.interventions.active.len() as u32);
        for &(source, end_day) in &self.interventions.active {
            buf.put_u32_le(source);
            buf.put_u32_le(end_day);
        }
        buf.put_u32_le(self.states.len() as u32);
        for s in &self.states {
            buf.put_u16_le(s.health.state.0);
            buf.put_u32_le(s.health.days_remaining);
            buf.put_u16_le(s.health.treatment.0);
            buf.put_f32_le(s.sus_scale);
            buf.put_u32_le(s.infected_on.unwrap_or(u32::MAX));
            buf.put_u32_le(s.infected_by.unwrap_or(u32::MAX));
        }
        let crc = crc32(buf.as_slice());
        buf.put_u32_le(crc);
        buf.freeze()
    }

    /// Deserialize, verifying the structure and the CRC trailer. Header
    /// corruption is reported as `BadMagic`/`BadVersion`, short buffers as
    /// `Truncated`, and any surviving body corruption as `BadCrc`.
    pub fn decode(data: &[u8]) -> Result<Checkpoint, CheckpointError> {
        let mut buf = data;
        let need = |buf: &&[u8], n: usize| -> Result<(), CheckpointError> {
            if buf.remaining() < n {
                Err(CheckpointError::Truncated)
            } else {
                Ok(())
            }
        };
        need(&buf, 8)?;
        let mut magic = [0u8; 4];
        buf.copy_to_slice(&mut magic);
        if &magic != MAGIC {
            return Err(CheckpointError::BadMagic);
        }
        let version = buf.get_u32_le();
        if version != VERSION {
            return Err(CheckpointError::BadVersion(version));
        }
        need(&buf, 4 + 8 * 4 + 4)?;
        let next_day = buf.get_u32_le();
        let seeds = buf.get_u64_le();
        let cumulative = buf.get_u64_le();
        let yesterday_new = buf.get_u64_le();
        let yesterday_infected = buf.get_u64_le();
        let n_fired = buf.get_u32_le() as usize;
        need(&buf, n_fired)?;
        let fired = (0..n_fired).map(|_| buf.get_u8() != 0).collect();
        need(&buf, 4)?;
        let n_active = buf.get_u32_le() as usize;
        need(&buf, n_active * 8 + 4)?;
        let active = (0..n_active)
            .map(|_| (buf.get_u32_le(), buf.get_u32_le()))
            .collect();
        let n_states = buf.get_u32_le() as usize;
        need(&buf, n_states * 20)?;
        let mut states = Vec::with_capacity(n_states);
        for id in 0..n_states {
            let state = StateId(buf.get_u16_le());
            let days_remaining = buf.get_u32_le();
            let treatment = TreatmentId(buf.get_u16_le());
            let sus_scale = buf.get_f32_le();
            let infected_on = buf.get_u32_le();
            let infected_by = buf.get_u32_le();
            states.push(PersonSlot {
                id: id as u32,
                health: HealthTracker {
                    state,
                    days_remaining,
                    treatment,
                },
                sus_scale,
                pending: None,
                infected_on: (infected_on != u32::MAX).then_some(infected_on),
                infected_by: (infected_by != u32::MAX).then_some(infected_by),
            });
        }
        need(&buf, 4)?;
        let stored = buf.get_u32_le();
        let body_len = data.len() - buf.remaining() - 4;
        let computed = crc32(&data[..body_len]);
        if stored != computed {
            return Err(CheckpointError::BadCrc { stored, computed });
        }
        Ok(Checkpoint {
            next_day,
            seeds,
            cumulative,
            yesterday_new,
            yesterday_infected,
            interventions: InterventionSnapshot { fired, active },
            states,
        })
    }

    /// Write to a file, torn-write-safe: temp file in the same directory,
    /// fsync, atomic rename, then best-effort directory fsync so the
    /// rename itself is durable.
    pub fn save(&self, path: &std::path::Path) -> std::io::Result<()> {
        let dir = path.parent().filter(|d| !d.as_os_str().is_empty());
        let tmp = path.with_extension("epck.tmp");
        {
            let mut f = std::fs::File::create(&tmp)?;
            f.write_all(&self.encode())?;
            f.sync_all()?;
        }
        std::fs::rename(&tmp, path)?;
        if let Some(dir) = dir {
            if let Ok(d) = std::fs::File::open(dir) {
                let _ = d.sync_all();
            }
        }
        Ok(())
    }

    /// Read from a file.
    pub fn load(path: &std::path::Path) -> std::io::Result<Checkpoint> {
        let data = std::fs::read(path)?;
        Self::decode(&data).map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e))
    }
}

/// Serialize a *subset* of persons with explicit ids — the per-chare blob
/// of a recovery shard ([`chare_rt::RecoverySnapshot`]). Unlike the full
/// [`Checkpoint`] person table, which stores persons densely by id, a
/// shard holds only the persons a PersonManager owns, so each record
/// carries its global person id. Pending infections are always empty at
/// the day-boundary barrier and are not stored.
///
/// Layout: `n u32 + (id u32, state u16, days_remaining u32, treatment u16,
/// sus_scale f32, infected_on u32, infected_by u32) × n`. Integrity is the
/// enclosing snapshot frame's CRC, not repeated here.
pub fn encode_person_shard(slots: &[PersonSlot]) -> Bytes {
    debug_assert!(
        slots.iter().all(|s| s.pending.is_none()),
        "pending infections must be applied before snapshotting"
    );
    let mut buf = BytesMut::with_capacity(4 + slots.len() * 24);
    buf.put_u32_le(slots.len() as u32);
    for s in slots {
        buf.put_u32_le(s.id);
        buf.put_u16_le(s.health.state.0);
        buf.put_u32_le(s.health.days_remaining);
        buf.put_u16_le(s.health.treatment.0);
        buf.put_f32_le(s.sus_scale);
        buf.put_u32_le(s.infected_on.unwrap_or(u32::MAX));
        buf.put_u32_le(s.infected_by.unwrap_or(u32::MAX));
    }
    buf.freeze()
}

/// Inverse of [`encode_person_shard`].
pub fn decode_person_shard(data: &[u8]) -> Result<Vec<PersonSlot>, CheckpointError> {
    let mut buf = data;
    if buf.remaining() < 4 {
        return Err(CheckpointError::Truncated);
    }
    let n = buf.get_u32_le() as usize;
    if buf.remaining() < n * 24 {
        return Err(CheckpointError::Truncated);
    }
    let mut slots = Vec::with_capacity(n);
    for _ in 0..n {
        let id = buf.get_u32_le();
        let state = StateId(buf.get_u16_le());
        let days_remaining = buf.get_u32_le();
        let treatment = TreatmentId(buf.get_u16_le());
        let sus_scale = buf.get_f32_le();
        let infected_on = buf.get_u32_le();
        let infected_by = buf.get_u32_le();
        slots.push(PersonSlot {
            id,
            health: HealthTracker {
                state,
                days_remaining,
                treatment,
            },
            sus_scale,
            pending: None,
            infected_on: (infected_on != u32::MAX).then_some(infected_on),
            infected_by: (infected_by != u32::MAX).then_some(infected_by),
        });
    }
    Ok(slots)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::distribution::{DataDistribution, Strategy};
    use crate::simulator::{SimConfig, Simulator};
    use chare_rt::RuntimeConfig;
    use proptest::prelude::*;
    use ptts::flu_model;
    use ptts::intervention::{Action, Intervention, Trigger};
    use synthpop::{Population, PopulationConfig};

    fn pop() -> Population {
        Population::generate(&PopulationConfig::small("CK", 2000, 55))
    }

    fn cfg() -> SimConfig {
        SimConfig {
            days: 30,
            r: 0.0013,
            seed: 55,
            initial_infections: 8,
            stop_when_extinct: false,
            interventions: ptts::intervention::InterventionSet::new(vec![Intervention {
                trigger: Trigger::PrevalenceAbove(0.05),
                action: Action::CloseKind {
                    kind: synthpop::LocationKind::School as u8,
                    duration: 10,
                },
            }]),
        }
    }

    #[test]
    fn restart_is_bit_exact() {
        let pop = pop();
        let dist = DataDistribution::build(&pop, Strategy::GraphPartition, 4, 55);
        // Straight 30-day run.
        let straight =
            Simulator::new(&dist, flu_model(), cfg(), RuntimeConfig::sequential(2)).run();

        // 15 days, checkpoint (through an encode/decode round trip), resume.
        let mut carry = Carry::new(cfg().interventions.clone(), 8);
        let mut sim = Simulator::new(&dist, flu_model(), cfg(), RuntimeConfig::sequential(2));
        let (mut days, _, _) = sim.run_days(0, 15, &mut carry);
        let (states, _) = sim.dismantle();
        let ckpt = capture(15, 8, &carry, states);
        let ckpt = Checkpoint::decode(&ckpt.encode()).expect("round trip");

        let mut carry2 = ckpt.to_carry(&cfg().interventions);
        let mut sim2 = Simulator::with_states(
            &dist,
            flu_model(),
            cfg(),
            RuntimeConfig::sequential(2),
            Some(ckpt.states.clone()),
        );
        let (tail, _, _) = sim2.run_days(ckpt.next_day, 30, &mut carry2);
        days.extend(tail);
        assert_eq!(days, straight.curve.days, "restart must be bit-exact");
    }

    #[test]
    fn file_round_trip() {
        let pop = pop();
        let dist = DataDistribution::build(&pop, Strategy::RoundRobin, 2, 55);
        let mut carry = Carry::new(cfg().interventions.clone(), 8);
        let mut sim = Simulator::new(&dist, flu_model(), cfg(), RuntimeConfig::sequential(2));
        sim.run_days(0, 5, &mut carry);
        let (states, _) = sim.dismantle();
        let ckpt = capture(5, 8, &carry, states);
        let dir = std::env::temp_dir().join("episim-ckpt-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("run.epck");
        ckpt.save(&path).unwrap();
        let loaded = Checkpoint::load(&path).unwrap();
        assert_eq!(ckpt, loaded);
        std::fs::remove_file(&path).ok();
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(48))]

        /// Encode→decode is the identity on arbitrary person and
        /// intervention state — every field survives, including the
        /// `u32::MAX` "none" sentinels and f32 susceptibility bits.
        #[test]
        fn roundtrip_is_identity_on_arbitrary_state(
            next_day in 0u32..20_000,
            counters in (0u64..1_000_000, 0u64..1_000_000, 0u64..100_000, 0u64..100_000),
            fired in collection::vec(any::<bool>(), 0..8),
            active in collection::vec((0u32..50, 0u32..2_000), 0..8),
            persons in collection::vec(
                (any::<u32>(), 0u32..400, (0.0f32..2.0, 0u32..600, 0u32..5_000)),
                0..64
            ),
        ) {
            let states: Vec<PersonSlot> = persons
                .iter()
                .enumerate()
                .map(|(id, &(packed, days, (sus, on, by)))| PersonSlot {
                    id: id as u32,
                    health: HealthTracker {
                        state: StateId(packed as u16),
                        days_remaining: days,
                        treatment: TreatmentId((packed >> 16) as u16),
                    },
                    sus_scale: sus,
                    pending: None,
                    infected_on: (on % 3 != 0).then_some(on),
                    infected_by: (by % 5 != 0).then_some(by),
                })
                .collect();
            let ckpt = Checkpoint {
                next_day,
                seeds: counters.0,
                cumulative: counters.1,
                yesterday_new: counters.2,
                yesterday_infected: counters.3,
                interventions: InterventionSnapshot { fired, active },
                states,
            };
            let decoded = Checkpoint::decode(&ckpt.encode()).expect("round trip");
            prop_assert_eq!(decoded, ckpt);
        }

        /// Any corruption of the magic or version header is rejected with
        /// the matching error — never a panic, never a silent
        /// misinterpretation — and every strict prefix is `Truncated`.
        #[test]
        fn corrupted_header_and_truncation_rejected(
            flip in any::<u8>(),
            pos in 0usize..8,
            cut_seed in any::<u32>(),
        ) {
            let ckpt = Checkpoint {
                next_day: 3,
                seeds: 8,
                cumulative: 21,
                yesterday_new: 2,
                yesterday_infected: 5,
                interventions: InterventionSnapshot {
                    fired: vec![true, false],
                    active: vec![(0, 9)],
                },
                states: vec![PersonSlot {
                    id: 0,
                    health: HealthTracker {
                        state: StateId(1),
                        days_remaining: 4,
                        treatment: TreatmentId(0),
                    },
                    sus_scale: 1.0,
                    pending: None,
                    infected_on: Some(1),
                    infected_by: None,
                }],
            };
            let data = ckpt.encode();
            let mut bad = data.to_vec();
            bad[pos] ^= flip | 1; // guarantee at least one bit changes
            match Checkpoint::decode(&bad) {
                Err(CheckpointError::BadMagic) => prop_assert!(pos < 4),
                Err(CheckpointError::BadVersion(v)) => {
                    prop_assert!(pos >= 4);
                    prop_assert_ne!(v, VERSION);
                }
                other => prop_assert!(false, "corrupt header accepted: {:?}", other),
            }
            let cut = cut_seed as usize % data.len();
            prop_assert_eq!(
                Checkpoint::decode(&data[..cut]).err(),
                Some(CheckpointError::Truncated)
            );
        }
    }

    #[test]
    fn decode_rejects_garbage() {
        assert_eq!(
            Checkpoint::decode(b"XXXXYYYY").err(),
            Some(CheckpointError::BadMagic)
        );
        assert_eq!(
            Checkpoint::decode(b"EP").err(),
            Some(CheckpointError::Truncated)
        );
        let pop = pop();
        let dist = DataDistribution::build(&pop, Strategy::RoundRobin, 2, 55);
        let mut carry = Carry::new(cfg().interventions.clone(), 8);
        let mut sim = Simulator::new(&dist, flu_model(), cfg(), RuntimeConfig::sequential(2));
        sim.run_days(0, 2, &mut carry);
        let (states, _) = sim.dismantle();
        let data = capture(2, 8, &carry, states).encode();
        for cut in [5usize, 20, data.len() / 2, data.len() - 1] {
            assert!(
                Checkpoint::decode(&data[..cut]).is_err(),
                "cut {cut} decoded"
            );
        }
        let mut bad_version = data.to_vec();
        bad_version[4] = 77;
        assert!(matches!(
            Checkpoint::decode(&bad_version),
            Err(CheckpointError::BadVersion(77))
        ));
    }

    /// The torn-write satellite: a byte-chopped checkpoint file (a crash
    /// mid-write) must load as a typed error, never decode to a plausible
    /// but wrong state, and a body bit-flip must be caught by the CRC.
    #[test]
    fn chopped_or_flipped_file_is_rejected() {
        let pop = pop();
        let dist = DataDistribution::build(&pop, Strategy::RoundRobin, 2, 55);
        let mut carry = Carry::new(cfg().interventions.clone(), 8);
        let mut sim = Simulator::new(&dist, flu_model(), cfg(), RuntimeConfig::sequential(2));
        sim.run_days(0, 3, &mut carry);
        let (states, _) = sim.dismantle();
        let ckpt = capture(3, 8, &carry, states);
        let dir = std::env::temp_dir().join(format!("episim-ckpt-chop-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("run.epck");
        ckpt.save(&path).unwrap();
        let full = std::fs::read(&path).unwrap();

        // Chop the file as a torn write would, at several depths.
        for frac in [1usize, 3, 9, 10] {
            let cut = full.len() * frac / 10;
            std::fs::write(&path, &full[..cut.min(full.len() - 1)]).unwrap();
            let err = Checkpoint::load(&path).expect_err("chopped file loaded");
            assert_eq!(err.kind(), std::io::ErrorKind::InvalidData, "cut {cut}");
        }

        // A single body bit-flip past the header is a CRC failure.
        let mut flipped = full.clone();
        let mid = 8 + (full.len() - 12) / 2;
        flipped[mid] ^= 0x10;
        std::fs::write(&path, &flipped).unwrap();
        assert!(Checkpoint::load(&path).is_err(), "bit-flipped file loaded");
        assert!(matches!(
            Checkpoint::decode(&flipped),
            Err(CheckpointError::BadCrc { .. }) | Err(CheckpointError::Truncated)
        ));

        // And the pristine file still loads after all that.
        std::fs::write(&path, &full).unwrap();
        assert_eq!(Checkpoint::load(&path).unwrap(), ckpt);
        std::fs::remove_dir_all(&dir).ok();
    }

    /// Atomic save: the temp file never lingers, and saving over an
    /// existing checkpoint replaces it in one step.
    #[test]
    fn save_is_atomic_and_cleans_temp() {
        let pop = pop();
        let dist = DataDistribution::build(&pop, Strategy::RoundRobin, 2, 55);
        let mut carry = Carry::new(cfg().interventions.clone(), 8);
        let mut sim = Simulator::new(&dist, flu_model(), cfg(), RuntimeConfig::sequential(2));
        sim.run_days(0, 2, &mut carry);
        let (states, _) = sim.dismantle();
        let ckpt = capture(2, 8, &carry, states);
        let dir = std::env::temp_dir().join(format!("episim-ckpt-atomic-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("run.epck");
        ckpt.save(&path).unwrap();
        ckpt.save(&path).unwrap(); // overwrite path
        assert!(!path.with_extension("epck.tmp").exists(), "temp lingered");
        assert_eq!(Checkpoint::load(&path).unwrap(), ckpt);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn person_shard_roundtrip_with_explicit_ids() {
        let slots = vec![
            PersonSlot {
                id: 17,
                health: HealthTracker {
                    state: StateId(2),
                    days_remaining: 3,
                    treatment: TreatmentId(1),
                },
                sus_scale: 0.75,
                pending: None,
                infected_on: Some(4),
                infected_by: None,
            },
            PersonSlot {
                id: 1031,
                health: HealthTracker {
                    state: StateId(0),
                    days_remaining: 0,
                    treatment: TreatmentId(0),
                },
                sus_scale: 1.0,
                pending: None,
                infected_on: None,
                infected_by: Some(17),
            },
        ];
        let data = encode_person_shard(&slots);
        assert_eq!(decode_person_shard(&data).unwrap(), slots);
        for cut in [0usize, 3, 10, data.len() - 1] {
            assert_eq!(
                decode_person_shard(&data[..cut]).err(),
                Some(CheckpointError::Truncated),
                "cut {cut}"
            );
        }
    }
}
