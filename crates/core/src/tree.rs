//! Transmission-tree analytics.
//!
//! Every applied infection records who transmitted and on which day
//! ([`crate::person::PersonSlot::infected_by`]/`infected_on`), so a finished
//! run carries its full transmission forest. This module computes the
//! epidemiological summaries analysts read off such trees — the case
//! reproduction number `R_t`, the generation-interval distribution, and the
//! secondary-case (offspring) distribution — the outputs EpiSimdemics-style
//! course-of-action studies report alongside attack rates.

use crate::person::PersonSlot;

/// Summary statistics of a run's transmission forest.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct TransmissionStats {
    /// Number of infected persons (tree nodes), seeds included.
    pub cases: u64,
    /// Number of attributed transmissions (tree edges).
    pub edges: u64,
    /// Case reproduction number by infection day: `rt_by_day[d]` = mean
    /// secondary cases caused by persons infected on day `d` (entries with
    /// zero cohort size are 0).
    pub rt_by_day: Vec<f64>,
    /// Cohort size per infection day.
    pub cohort_by_day: Vec<u64>,
    /// Mean generation interval (days between an infector's own infection
    /// and their victims'), over attributed edges.
    pub mean_generation_interval: f64,
    /// Offspring distribution: `offspring[n]` = number of cases that caused
    /// exactly `n` attributed secondary cases (truncated at the max seen).
    pub offspring: Vec<u64>,
}

impl TransmissionStats {
    /// Dispersion check: the fraction of all transmissions caused by the
    /// top `fraction` of infectors (the "80/20" superspreading measure).
    pub fn top_infector_share(&self, states: &[PersonSlot], fraction: f64) -> f64 {
        let mut secondary = secondary_counts(states);
        secondary.sort_unstable_by(|a, b| b.cmp(a));
        let total: u64 = secondary.iter().sum();
        if total == 0 {
            return 0.0;
        }
        let take = ((secondary.len() as f64 * fraction).ceil() as usize).max(1);
        let top: u64 = secondary.iter().take(take).sum();
        top as f64 / total as f64
    }
}

fn secondary_counts(states: &[PersonSlot]) -> Vec<u64> {
    let mut counts = vec![0u64; states.len()];
    for s in states {
        if let Some(infector) = s.infected_by {
            counts[infector as usize] += 1;
        }
    }
    // Only infected persons can be infectors; report their counts.
    states
        .iter()
        .filter(|s| s.infected_on.is_some())
        .map(|s| counts[s.id as usize])
        .collect()
}

/// Compute transmission statistics from final person states.
pub fn transmission_stats(states: &[PersonSlot]) -> TransmissionStats {
    let mut stats = TransmissionStats::default();
    let max_day = states
        .iter()
        .filter_map(|s| s.infected_on)
        .max()
        .unwrap_or(0) as usize;
    let mut secondary = vec![0u64; states.len()];
    let mut gi_sum = 0f64;
    let mut cohort = vec![0u64; max_day + 1];

    for s in states {
        if let Some(day) = s.infected_on {
            stats.cases += 1;
            cohort[day as usize] += 1;
        }
        if let Some(infector) = s.infected_by {
            stats.edges += 1;
            secondary[infector as usize] += 1;
            let victim_day = s.infected_on.expect("infected_by implies infected_on");
            if let Some(infector_day) = states[infector as usize].infected_on {
                gi_sum += (victim_day.saturating_sub(infector_day)) as f64;
            }
        }
    }
    stats.mean_generation_interval = if stats.edges > 0 {
        gi_sum / stats.edges as f64
    } else {
        0.0
    };

    // Rt by infection day of the infector.
    let mut rt_sum = vec![0f64; max_day + 1];
    for s in states {
        if let Some(day) = s.infected_on {
            rt_sum[day as usize] += secondary[s.id as usize] as f64;
        }
    }
    stats.rt_by_day = rt_sum
        .iter()
        .zip(&cohort)
        .map(|(&sum, &n)| if n > 0 { sum / n as f64 } else { 0.0 })
        .collect();
    stats.cohort_by_day = cohort;

    // Offspring distribution.
    let per_case = secondary_counts(states);
    let max_offspring = per_case.iter().copied().max().unwrap_or(0) as usize;
    let mut offspring = vec![0u64; max_offspring + 1];
    for c in per_case {
        offspring[c as usize] += 1;
    }
    stats.offspring = offspring;
    stats
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::seq::run_sequential_with_states;
    use crate::simulator::SimConfig;
    use ptts::flu_model;
    use ptts::Ptts;
    use synthpop::{Population, PopulationConfig};

    fn slot(id: u32, ptts: &Ptts, on: Option<u32>, by: Option<u32>) -> PersonSlot {
        let mut s = PersonSlot::new(id, ptts);
        s.infected_on = on;
        s.infected_by = by;
        s
    }

    #[test]
    fn hand_built_chain() {
        // 0 (seed, day 0) → 1 (day 3) → 2 (day 7); 3 never infected.
        let ptts = flu_model();
        let states = vec![
            slot(0, &ptts, Some(0), None),
            slot(1, &ptts, Some(3), Some(0)),
            slot(2, &ptts, Some(7), Some(1)),
            slot(3, &ptts, None, None),
        ];
        let t = transmission_stats(&states);
        assert_eq!(t.cases, 3);
        assert_eq!(t.edges, 2);
        assert!((t.mean_generation_interval - 3.5).abs() < 1e-12); // (3 + 4)/2
        assert_eq!(t.rt_by_day[0], 1.0);
        assert_eq!(t.rt_by_day[3], 1.0);
        assert_eq!(t.rt_by_day[7], 0.0);
        assert_eq!(t.cohort_by_day, vec![1, 0, 0, 1, 0, 0, 0, 1]);
        // Offspring: two cases with 1 child, one with 0.
        assert_eq!(t.offspring, vec![1, 2]);
    }

    #[test]
    fn empty_states() {
        let t = transmission_stats(&[]);
        assert_eq!(t.cases, 0);
        assert_eq!(t.mean_generation_interval, 0.0);
    }

    #[test]
    fn real_run_tree_is_consistent() {
        let pop = Population::generate(&PopulationConfig::small("TR", 3000, 3));
        let cfg = SimConfig {
            days: 60,
            r: 0.0012,
            seed: 3,
            initial_infections: 5,
            ..Default::default()
        };
        let (curve, states) = run_sequential_with_states(&pop, &flu_model(), &cfg);
        let t = transmission_stats(&states);
        // Every infection is a tree node.
        assert_eq!(t.cases, curve.total_infections());
        // Edges ≤ cases − seeds (some infectors are u32::MAX-unattributed).
        assert!(t.edges <= t.cases - curve.seeds);
        assert!(t.edges > 0, "a real outbreak has attributed transmissions");
        // Generation interval sits in the flu model's latent+infectious
        // window.
        assert!(
            (1.0..12.0).contains(&t.mean_generation_interval),
            "GI {}",
            t.mean_generation_interval
        );
        // Early Rt above 1 while the epidemic grows, below 1 near the end.
        let early: f64 = t.rt_by_day[0];
        assert!(early > 1.0, "seed-cohort Rt {early}");
        let last_day = t.rt_by_day.len() - 1;
        assert!(t.rt_by_day[last_day] < 1.0, "final-cohort Rt");
        // Offspring distribution sums to the case count.
        assert_eq!(t.offspring.iter().sum::<u64>(), t.cases);
        // Superspreading: the top 20% of infectors cause well over 20%.
        let share = t.top_infector_share(&states, 0.2);
        assert!(share > 0.4, "top-20% share {share}");
    }

    #[test]
    fn parallel_and_oracle_agree_on_tree() {
        use crate::distribution::{DataDistribution, Strategy};
        use crate::simulator::Simulator;
        use chare_rt::RuntimeConfig;
        let pop = Population::generate(&PopulationConfig::small("TR2", 1500, 9));
        let cfg = SimConfig {
            days: 25,
            r: 0.0015,
            seed: 9,
            initial_infections: 5,
            ..Default::default()
        };
        let (_, oracle_states) = run_sequential_with_states(&pop, &flu_model(), &cfg);
        let dist = DataDistribution::build(&pop, Strategy::GraphPartitionSplit, 4, 9);
        let mut carry = crate::simulator::Carry::new(cfg.interventions.clone(), 5);
        let mut sim = Simulator::with_states(
            &dist,
            flu_model(),
            cfg.clone(),
            RuntimeConfig::sequential(4),
            None,
        );
        sim.run_days(0, cfg.days, &mut carry);
        let (par_states, _) = sim.dismantle();
        assert_eq!(
            transmission_stats(&oracle_states),
            transmission_stats(&par_states),
            "transmission trees must match across implementations"
        );
    }
}
