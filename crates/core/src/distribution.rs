//! The four data distributions of the evaluation (§III-B labels):
//! `RR`, `GP`, `RR-splitLoc`, `GP-splitLoc`.

use crate::splitloc::{split_heavy_locations, SplitConfig};
use crate::workload::{build_workload_graph, WorkloadLayout};
use graph_part::{kway_partition, round_robin, PartitionConfig, PartitionQuality};
use load_model::{LoadUnits, PiecewiseModel};
use std::sync::Arc;
use synthpop::Population;

/// Distribution strategy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Strategy {
    /// Round-robin object → chare assignment (the original EpiSimdemics
    /// default).
    RoundRobin,
    /// Multi-constraint graph partitioning on the workload graph.
    GraphPartition,
    /// splitLoc preprocessing, then round-robin.
    RoundRobinSplit,
    /// splitLoc preprocessing, then graph partitioning — the paper's best
    /// configuration.
    GraphPartitionSplit,
}

impl Strategy {
    /// The four strategies in the order the paper's figures list them.
    pub const ALL: [Strategy; 4] = [
        Strategy::RoundRobin,
        Strategy::GraphPartition,
        Strategy::RoundRobinSplit,
        Strategy::GraphPartitionSplit,
    ];

    /// The paper's label.
    pub fn label(&self) -> &'static str {
        match self {
            Strategy::RoundRobin => "RR",
            Strategy::GraphPartition => "GP",
            Strategy::RoundRobinSplit => "RR-splitLoc",
            Strategy::GraphPartitionSplit => "GP-splitLoc",
        }
    }

    /// Does this strategy run splitLoc first?
    pub fn splits(&self) -> bool {
        matches!(
            self,
            Strategy::RoundRobinSplit | Strategy::GraphPartitionSplit
        )
    }

    /// Does this strategy use the graph partitioner?
    pub fn partitions(&self) -> bool {
        matches!(
            self,
            Strategy::GraphPartition | Strategy::GraphPartitionSplit
        )
    }
}

/// A complete data distribution: the (possibly split) population plus the
/// person/location → partition assignments.
#[derive(Debug, Clone)]
pub struct DataDistribution {
    /// Strategy used.
    pub strategy: Strategy,
    /// Number of partitions.
    pub k: u32,
    /// The population objects are drawn from (split if the strategy splits).
    ///
    /// Held behind an `Arc` so simulators and ensemble members share one
    /// immutable copy — cloning a distribution (or building many worlds from
    /// it) never deep-copies the synthetic population.
    pub pop: Arc<Population>,
    /// Partition per person.
    pub person_part: Vec<u32>,
    /// Partition per location.
    pub location_part: Vec<u32>,
    /// location id → original location id (identity when not split).
    pub orig_of_location: Vec<u32>,
    /// Partition quality of the workload graph (GP strategies only).
    pub quality: Option<PartitionQuality>,
}

impl DataDistribution {
    /// Build a distribution of `pop` over `k` partitions.
    ///
    /// The split threshold targets 8× the requested partition count (at
    /// least 256), mirroring the paper's practice of preprocessing once for
    /// "the maximum number of partitions to use" rather than re-splitting
    /// per run.
    pub fn build(pop: &Population, strategy: Strategy, k: u32, seed: u64) -> DataDistribution {
        Self::build_with(
            pop,
            strategy,
            k,
            seed,
            &SplitConfig {
                max_partitions: k.saturating_mul(8).max(256),
                threshold_override: None,
            },
            &PiecewiseModel::paper_constants(),
        )
    }

    /// Build with explicit split and load-model parameters.
    pub fn build_with(
        pop: &Population,
        strategy: Strategy,
        k: u32,
        seed: u64,
        split_cfg: &SplitConfig,
        model: &PiecewiseModel,
    ) -> DataDistribution {
        let (pop, orig_of_location) = if strategy.splits() {
            let res = split_heavy_locations(pop, split_cfg);
            (Arc::new(res.pop), res.orig_of_location)
        } else {
            (Arc::new(pop.clone()), (0..pop.n_locations()).collect())
        };

        let (person_part, location_part, quality) = if strategy.partitions() {
            let (graph, layout) = build_workload_graph(&pop, model, LoadUnits::default());
            let cfg = PartitionConfig::new(k).with_seed(seed).with_ubfactor(1.10);
            let part = kway_partition(&graph, &cfg);
            let quality = PartitionQuality::compute(&graph, &part);
            let (pp, lp) = split_assignment(&part.assignment, &layout);
            (pp, lp, Some(quality))
        } else {
            let pp = round_robin(pop.n_people(), k).assignment;
            let lp = round_robin(pop.n_locations(), k).assignment;
            (pp, lp, None)
        };

        DataDistribution {
            strategy,
            k,
            pop,
            person_part,
            location_part,
            orig_of_location,
            quality,
        }
    }

    /// Persons assigned to partition `p`, ascending.
    pub fn persons_of(&self, p: u32) -> Vec<u32> {
        (0..self.pop.n_people())
            .filter(|&i| self.person_part[i as usize] == p)
            .collect()
    }

    /// Locations assigned to partition `p`, ascending.
    pub fn locations_of(&self, p: u32) -> Vec<u32> {
        (0..self.pop.n_locations())
            .filter(|&i| self.location_part[i as usize] == p)
            .collect()
    }

    /// Per-partition location-phase load (visit-count proxy), for quick
    /// balance checks.
    pub fn location_loads(&self) -> Vec<u64> {
        let mut loads = vec![0u64; self.k as usize];
        for v in &self.pop.visits {
            loads[self.location_part[v.location.0 as usize] as usize] += 1;
        }
        loads
    }

    /// Fraction of visits whose person and location live on different
    /// partitions (remote visit messages — the communication the paper's
    /// GP strategies minimize).
    pub fn remote_visit_fraction(&self) -> f64 {
        if self.pop.visits.is_empty() {
            return 0.0;
        }
        let remote = self
            .pop
            .visits
            .iter()
            .filter(|v| {
                self.person_part[v.person.0 as usize] != self.location_part[v.location.0 as usize]
            })
            .count();
        remote as f64 / self.pop.visits.len() as f64
    }
}

fn split_assignment(assignment: &[u32], layout: &WorkloadLayout) -> (Vec<u32>, Vec<u32>) {
    let pp = assignment[..layout.n_people as usize].to_vec();
    let lp = assignment[layout.n_people as usize..].to_vec();
    (pp, lp)
}

#[cfg(test)]
mod tests {
    use super::*;
    use synthpop::PopulationConfig;

    fn pop() -> Population {
        Population::generate(&PopulationConfig::small("T", 4000, 17))
    }

    #[test]
    fn labels_match_paper() {
        assert_eq!(Strategy::RoundRobin.label(), "RR");
        assert_eq!(Strategy::GraphPartitionSplit.label(), "GP-splitLoc");
    }

    #[test]
    fn rr_assigns_everything_mod_k() {
        let p = pop();
        let d = DataDistribution::build(&p, Strategy::RoundRobin, 8, 1);
        assert_eq!(d.person_part[9], 1);
        assert_eq!(d.location_part[10], 2);
        assert_eq!(d.person_part.len(), p.n_people() as usize);
        assert!(d.quality.is_none());
    }

    #[test]
    fn gp_reduces_remote_visits_vs_rr() {
        let p = pop();
        let rr = DataDistribution::build(&p, Strategy::RoundRobin, 8, 1);
        let gp = DataDistribution::build(&p, Strategy::GraphPartition, 8, 1);
        let f_rr = rr.remote_visit_fraction();
        let f_gp = gp.remote_visit_fraction();
        // RR has essentially no locality: ~ (k−1)/k remote.
        assert!(f_rr > 0.8, "RR remote fraction {f_rr}");
        assert!(f_gp < 0.75 * f_rr, "GP {f_gp} vs RR {f_rr}");
    }

    #[test]
    fn split_strategies_extend_locations() {
        let p = pop();
        let d = DataDistribution::build(&p, Strategy::GraphPartitionSplit, 64, 1);
        assert!(d.pop.n_locations() >= p.n_locations());
        assert_eq!(d.orig_of_location.len(), d.pop.n_locations() as usize);
        assert_eq!(d.location_part.len(), d.pop.n_locations() as usize);
    }

    #[test]
    fn split_improves_location_balance_at_scale() {
        let p = pop();
        let k = 64;
        let plain = DataDistribution::build(&p, Strategy::GraphPartition, k, 1);
        let split = DataDistribution::build(&p, Strategy::GraphPartitionSplit, k, 1);
        let max_plain = *plain.location_loads().iter().max().unwrap();
        let max_split = *split.location_loads().iter().max().unwrap();
        assert!(
            max_split <= max_plain,
            "split Lmax {max_split} vs plain {max_plain}"
        );
    }

    #[test]
    fn partitions_cover_all_objects() {
        let p = pop();
        for strategy in Strategy::ALL {
            let d = DataDistribution::build(&p, strategy, 5, 3);
            assert!(d.person_part.iter().all(|&x| x < 5), "{strategy:?}");
            assert!(d.location_part.iter().all(|&x| x < 5), "{strategy:?}");
            let total: usize = (0..5).map(|q| d.persons_of(q).len()).sum();
            assert_eq!(total, d.pop.n_people() as usize);
        }
    }

    #[test]
    fn persons_of_is_sorted_and_disjoint() {
        let p = pop();
        let d = DataDistribution::build(&p, Strategy::GraphPartition, 4, 1);
        let mut seen = vec![false; d.pop.n_people() as usize];
        for q in 0..4 {
            let ps = d.persons_of(q);
            assert!(ps.windows(2).all(|w| w[0] < w[1]));
            for id in ps {
                assert!(!seen[id as usize]);
                seen[id as usize] = true;
            }
        }
        assert!(seen.iter().all(|&s| s));
    }
}
