//! Simulation outputs: per-day statistics and epidemic curves.

/// One day's global statistics (§II-B step 6, "global system state").
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DayStats {
    /// Simulation day (0-based).
    pub day: u32,
    /// Infections applied at the end of this day.
    pub new_infections: u64,
    /// Persons in a non-absorbing health state at the start of this day.
    pub infected_now: u64,
    /// Still-susceptible persons at the start of this day.
    pub susceptible: u64,
    /// Symptomatic persons today.
    pub symptomatic: u64,
    /// Cumulative infections through this day (seeds included).
    pub cumulative: u64,
    /// Visit messages sent today.
    pub visits: u64,
    /// Location DES events processed today.
    pub events: u64,
    /// Susceptible×infectious interactions today.
    pub interactions: u64,
    /// Infect messages sent today.
    pub infects_sent: u64,
    /// Infect messages by the kind of location where the transmission was
    /// computed (index = `synthpop::LocationKind` discriminant; venue
    /// attribution before per-person dedup, so the sum equals
    /// `infects_sent`).
    pub infections_by_kind: [u64; 5],
}

/// FNV-1a over every field of the epidemic curve, in declaration order;
/// bit-identical output across kernel versions, runtime engines, and fault
/// schedules is the determinism contract of record (DESIGN.md §7). The
/// pinned baseline value lives in `results/hotpath_baseline.json`.
pub fn curve_hash(days: &[DayStats]) -> u64 {
    let mut h: u64 = 0xcbf29ce484222325;
    let mut mix = |v: u64| {
        for b in v.to_le_bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x100000001b3);
        }
    };
    for d in days {
        mix(d.day as u64);
        mix(d.new_infections);
        mix(d.infected_now);
        mix(d.susceptible);
        mix(d.symptomatic);
        mix(d.cumulative);
        mix(d.visits);
        mix(d.events);
        mix(d.interactions);
        mix(d.infects_sent);
        for &k in &d.infections_by_kind {
            mix(k);
        }
    }
    h
}

/// A full run's day-by-day curve.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct EpiCurve {
    /// Population size.
    pub population: u64,
    /// Initial seeded infections.
    pub seeds: u64,
    /// One entry per simulated day.
    pub days: Vec<DayStats>,
}

impl EpiCurve {
    /// Total infections over the run (including seeds).
    pub fn total_infections(&self) -> u64 {
        self.seeds + self.days.iter().map(|d| d.new_infections).sum::<u64>()
    }

    /// Attack rate: fraction of the population ever infected.
    pub fn attack_rate(&self) -> f64 {
        if self.population == 0 {
            return 0.0;
        }
        self.total_infections() as f64 / self.population as f64
    }

    /// Day with the most new infections, if any day had one.
    pub fn peak_day(&self) -> Option<u32> {
        self.days
            .iter()
            .max_by_key(|d| (d.new_infections, std::cmp::Reverse(d.day)))
            .filter(|d| d.new_infections > 0)
            .map(|d| d.day)
    }

    /// New-infection series (for quick comparisons in tests).
    pub fn new_infection_series(&self) -> Vec<u64> {
        self.days.iter().map(|d| d.new_infections).collect()
    }

    /// The curve's FNV-1a determinism hash (see [`curve_hash`]).
    pub fn hash(&self) -> u64 {
        curve_hash(&self.days)
    }

    /// Render as a TSV table, one row per day.
    pub fn to_tsv(&self) -> String {
        let mut out = String::from(
            "day\tnew_infections\tinfected_now\tsusceptible\tsymptomatic\tcumulative\tvisits\tevents\tinteractions\n",
        );
        for d in &self.days {
            out.push_str(&format!(
                "{}\t{}\t{}\t{}\t{}\t{}\t{}\t{}\t{}\n",
                d.day,
                d.new_infections,
                d.infected_now,
                d.susceptible,
                d.symptomatic,
                d.cumulative,
                d.visits,
                d.events,
                d.interactions
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn curve() -> EpiCurve {
        EpiCurve {
            population: 1000,
            seeds: 5,
            days: vec![
                DayStats {
                    day: 0,
                    new_infections: 10,
                    cumulative: 15,
                    ..Default::default()
                },
                DayStats {
                    day: 1,
                    new_infections: 30,
                    cumulative: 45,
                    ..Default::default()
                },
                DayStats {
                    day: 2,
                    new_infections: 30,
                    cumulative: 75,
                    ..Default::default()
                },
                DayStats {
                    day: 3,
                    new_infections: 5,
                    cumulative: 80,
                    ..Default::default()
                },
            ],
        }
    }

    #[test]
    fn totals_and_attack_rate() {
        let c = curve();
        assert_eq!(c.total_infections(), 80);
        assert!((c.attack_rate() - 0.08).abs() < 1e-12);
    }

    #[test]
    fn peak_day_earliest_tie() {
        assert_eq!(curve().peak_day(), Some(1));
        let empty = EpiCurve::default();
        assert_eq!(empty.peak_day(), None);
    }

    #[test]
    fn tsv_has_header_and_rows() {
        let t = curve().to_tsv();
        assert!(t.starts_with("day\t"));
        assert_eq!(t.lines().count(), 5);
    }

    #[test]
    fn curve_hash_is_stable_and_sensitive() {
        let c = curve();
        assert_eq!(c.hash(), curve_hash(&c.days));
        assert_eq!(curve_hash(&[]), 0xcbf29ce484222325, "FNV offset basis");
        let mut later = c.clone();
        later.days[2].interactions += 1;
        assert_ne!(c.hash(), later.hash(), "every field is hashed");
        let mut reordered = c.clone();
        reordered.days.swap(0, 1);
        assert_ne!(c.hash(), reordered.hash(), "day order is hashed");
    }
}
