//! Simulation outputs: per-day statistics and epidemic curves.

/// One day's global statistics (§II-B step 6, "global system state").
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DayStats {
    /// Simulation day (0-based).
    pub day: u32,
    /// Infections applied at the end of this day.
    pub new_infections: u64,
    /// Persons in a non-absorbing health state at the start of this day.
    pub infected_now: u64,
    /// Still-susceptible persons at the start of this day.
    pub susceptible: u64,
    /// Symptomatic persons today.
    pub symptomatic: u64,
    /// Cumulative infections through this day (seeds included).
    pub cumulative: u64,
    /// Visit messages sent today.
    pub visits: u64,
    /// Location DES events processed today.
    pub events: u64,
    /// Susceptible×infectious interactions today.
    pub interactions: u64,
    /// Infect messages sent today.
    pub infects_sent: u64,
    /// Infect messages by the kind of location where the transmission was
    /// computed (index = `synthpop::LocationKind` discriminant; venue
    /// attribution before per-person dedup, so the sum equals
    /// `infects_sent`).
    pub infections_by_kind: [u64; 5],
}

/// A full run's day-by-day curve.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct EpiCurve {
    /// Population size.
    pub population: u64,
    /// Initial seeded infections.
    pub seeds: u64,
    /// One entry per simulated day.
    pub days: Vec<DayStats>,
}

impl EpiCurve {
    /// Total infections over the run (including seeds).
    pub fn total_infections(&self) -> u64 {
        self.seeds + self.days.iter().map(|d| d.new_infections).sum::<u64>()
    }

    /// Attack rate: fraction of the population ever infected.
    pub fn attack_rate(&self) -> f64 {
        if self.population == 0 {
            return 0.0;
        }
        self.total_infections() as f64 / self.population as f64
    }

    /// Day with the most new infections, if any day had one.
    pub fn peak_day(&self) -> Option<u32> {
        self.days
            .iter()
            .max_by_key(|d| (d.new_infections, std::cmp::Reverse(d.day)))
            .filter(|d| d.new_infections > 0)
            .map(|d| d.day)
    }

    /// New-infection series (for quick comparisons in tests).
    pub fn new_infection_series(&self) -> Vec<u64> {
        self.days.iter().map(|d| d.new_infections).collect()
    }

    /// Render as a TSV table, one row per day.
    pub fn to_tsv(&self) -> String {
        let mut out = String::from(
            "day\tnew_infections\tinfected_now\tsusceptible\tsymptomatic\tcumulative\tvisits\tevents\tinteractions\n",
        );
        for d in &self.days {
            out.push_str(&format!(
                "{}\t{}\t{}\t{}\t{}\t{}\t{}\t{}\t{}\n",
                d.day,
                d.new_infections,
                d.infected_now,
                d.susceptible,
                d.symptomatic,
                d.cumulative,
                d.visits,
                d.events,
                d.interactions
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn curve() -> EpiCurve {
        EpiCurve {
            population: 1000,
            seeds: 5,
            days: vec![
                DayStats {
                    day: 0,
                    new_infections: 10,
                    cumulative: 15,
                    ..Default::default()
                },
                DayStats {
                    day: 1,
                    new_infections: 30,
                    cumulative: 45,
                    ..Default::default()
                },
                DayStats {
                    day: 2,
                    new_infections: 30,
                    cumulative: 75,
                    ..Default::default()
                },
                DayStats {
                    day: 3,
                    new_infections: 5,
                    cumulative: 80,
                    ..Default::default()
                },
            ],
        }
    }

    #[test]
    fn totals_and_attack_rate() {
        let c = curve();
        assert_eq!(c.total_infections(), 80);
        assert!((c.attack_rate() - 0.08).abs() < 1e-12);
    }

    #[test]
    fn peak_day_earliest_tie() {
        assert_eq!(curve().peak_day(), Some(1));
        let empty = EpiCurve::default();
        assert_eq!(empty.peak_day(), None);
    }

    #[test]
    fn tsv_has_header_and_rows() {
        let t = curve().to_tsv();
        assert!(t.starts_with("day\t"));
        assert_eq!(t.lines().count(), 5);
    }
}
