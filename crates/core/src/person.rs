//! Person-side logic (§II-B steps 1 and 5): daily health update, reaction
//! to interventions, schedule realization, and infection application.
//!
//! All of it is pure functions over [`PersonSlot`] so the PersonManager
//! chare and the sequential oracle share one implementation.

use crate::messages::{DayEffects, InfectMsg, VisitMsg};
use ptts::crng::{CounterRng, Purpose};
use ptts::model::{HealthTracker, StateId};
use ptts::Ptts;
use synthpop::{LocationKind, PersonId, Population, Visit};

/// Probability a symptomatic person abandons their non-home schedule for
/// the day (self-isolation behaviour; part of the "decides on the locations
/// to visit, based on their … health state" step).
pub const SYMPTOMATIC_STAY_HOME_PROB: f64 = 0.5;

/// Mutable per-person simulation state.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PersonSlot {
    /// Global person id.
    pub id: u32,
    /// PTTS tracker.
    pub health: HealthTracker,
    /// Personal susceptibility multiplier (1.0 = unmodified; lowered by
    /// vaccination).
    pub sus_scale: f32,
    /// Best pending infection for today, if any: `(time, infector)` —
    /// deterministic dedup keeps the minimum.
    pub pending: Option<(u16, u32)>,
    /// Day this person was infected (`Some(0)` for seeds).
    pub infected_on: Option<u32>,
    /// Who infected this person (`None` for seeds and environment-only
    /// attributions) — the edge of the transmission tree.
    pub infected_by: Option<u32>,
}

impl PersonSlot {
    /// Fresh slot in the disease's start state.
    pub fn new(id: u32, ptts: &Ptts) -> Self {
        PersonSlot {
            id,
            health: HealthTracker::new(ptts),
            sus_scale: 1.0,
            pending: None,
            infected_on: None,
            infected_by: None,
        }
    }

    /// Seed this person as infected before day 0.
    pub fn seed(&mut self, ptts: &Ptts, seed: u64) {
        self.health.infect(ptts, seed, self.id as u64, 0);
        self.infected_on = Some(0);
        self.infected_by = None;
    }

    /// Whether this person currently counts as infected (dwelling in a
    /// non-absorbing state).
    #[inline]
    pub fn is_infected(&self) -> bool {
        self.health.days_remaining != u32::MAX
    }

    /// Record an infect message, keeping the deterministic minimum.
    pub fn record_infection(&mut self, msg: &InfectMsg) {
        let cand = (msg.time_min, msg.infector);
        match self.pending {
            Some(best) if best <= cand => {}
            _ => self.pending = Some(cand),
        }
    }

    /// Phase 5: apply the pending infection, if the person is still
    /// susceptible. Returns `true` on a new infection.
    pub fn apply_pending(&mut self, ptts: &Ptts, seed: u64, day: u32) -> bool {
        if let Some((_, infector)) = self.pending.take() {
            if self.health.infect(ptts, seed, self.id as u64, day as u64) {
                self.infected_on = Some(day);
                self.infected_by = (infector != u32::MAX).then_some(infector);
                return true;
            }
        }
        false
    }
}

/// Phase 1 for one person: advance health, apply interventions, and emit
/// today's visit messages into `out`. Returns the symptomatic flag used for
/// reporting.
///
/// `orig_of_location` maps (possibly splitLoc-rewritten) location ids back
/// to original ids so the stay-home filter recognises every piece of a
/// split home as "home"; `None` means the population was never split.
/// Without the mapping an aggressive split threshold silently drops the
/// *home* visits of self-isolating people, changing the epidemic.
#[allow(clippy::too_many_arguments)]
pub fn person_day(
    slot: &mut PersonSlot,
    pop: &Population,
    ptts: &Ptts,
    effects: &DayEffects,
    symptomatic_state: Option<StateId>,
    orig_of_location: Option<&[u32]>,
    seed: u64,
    day: u32,
    out: &mut Vec<VisitMsg>,
) -> bool {
    // 1. Health-state recalculation.
    slot.health.advance(ptts, seed, slot.id as u64, day as u64);

    // 2. Interventions: vaccination orders (one compliance draw per order).
    for order in &effects.vaccinations {
        if ptts.is_susceptible(slot.health.state)
            && order.applies_to(seed, slot.id as u64, day as u64)
        {
            slot.health.treatment = order.treatment;
            slot.sus_scale = (slot.sus_scale as f64 * order.efficacy_factor) as f32;
        }
    }

    // 3. Schedule: normative visits filtered by policy and health.
    let symptomatic = Some(slot.health.state) == symptomatic_state;
    let stay_home = symptomatic
        && CounterRng::for_entity(seed, slot.id as u64, day as u64, Purpose::Schedule)
            .bernoulli(SYMPTOMATIC_STAY_HOME_PROB);

    let home = pop.people[slot.id as usize].home;
    for v in pop.visits_of(PersonId(slot.id)) {
        let kind = pop.locations[v.location.0 as usize].kind;
        if effects.is_closed(kind as u8) && kind != LocationKind::Home {
            continue;
        }
        let at_home = match orig_of_location {
            // `home` predates any split, so it maps to itself; a visit is
            // "home" when its (possibly split-piece) location maps back to
            // the same original.
            Some(map) => map[v.location.0 as usize] == home.0,
            None => v.location == home,
        };
        if stay_home && !at_home {
            continue;
        }
        out.push(visit_to_msg(v, slot));
    }
    symptomatic
}

/// Convert a schedule visit into today's visit message with the person's
/// current health attached.
#[inline]
pub fn visit_to_msg(v: &Visit, slot: &PersonSlot) -> VisitMsg {
    VisitMsg {
        person: slot.id,
        location: v.location.0,
        sublocation: v.sublocation.0,
        start_min: v.start_min,
        end_min: v.end_min(),
        state: slot.health.state,
        sus_scale: slot.sus_scale,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ptts::flu_model;
    use ptts::intervention::VaccinationOrder;
    use ptts::model::TreatmentId;
    use synthpop::PopulationConfig;

    fn setup() -> (Population, Ptts) {
        let pop = Population::generate(&PopulationConfig::small("T", 200, 3));
        (pop, flu_model())
    }

    #[test]
    fn healthy_person_emits_full_schedule() {
        let (pop, ptts) = setup();
        let mut slot = PersonSlot::new(0, &ptts);
        let mut out = Vec::new();
        person_day(
            &mut slot,
            &pop,
            &ptts,
            &DayEffects::none(),
            ptts.state_by_name("symptomatic"),
            None,
            1,
            0,
            &mut out,
        );
        assert_eq!(out.len(), pop.visits_of(PersonId(0)).len());
        assert!(out.iter().all(|m| m.state == ptts.start_state()));
    }

    #[test]
    fn school_closure_drops_school_visits() {
        let (pop, ptts) = setup();
        // Find a person anchored at a school.
        let pid = (0..pop.n_people())
            .find(|&p| {
                pop.people[p as usize]
                    .anchor
                    .map(|a| pop.locations[a.0 as usize].kind == LocationKind::School)
                    .unwrap_or(false)
            })
            .expect("some child in population");
        let mut slot = PersonSlot::new(pid, &ptts);
        let effects = DayEffects {
            closed_kinds: 1 << (LocationKind::School as u8),
            r_scale: 1.0,
            vaccinations: Vec::new(),
        };
        let mut out = Vec::new();
        person_day(&mut slot, &pop, &ptts, &effects, None, None, 1, 0, &mut out);
        assert!(out
            .iter()
            .all(|m| pop.locations[m.location as usize].kind != LocationKind::School));
        assert!(out.len() < pop.visits_of(PersonId(pid)).len());
    }

    #[test]
    fn vaccination_order_lowers_susceptibility() {
        let (pop, ptts) = setup();
        let order = VaccinationOrder {
            fraction: 1.0,
            treatment: TreatmentId(1),
            efficacy_factor: 0.3,
        };
        let effects = DayEffects {
            closed_kinds: 0,
            r_scale: 1.0,
            vaccinations: vec![order],
        };
        let mut slot = PersonSlot::new(5, &ptts);
        let mut out = Vec::new();
        person_day(&mut slot, &pop, &ptts, &effects, None, None, 1, 0, &mut out);
        assert!((slot.sus_scale - 0.3).abs() < 1e-6);
        assert_eq!(slot.health.treatment, TreatmentId(1));
        assert!(out.iter().all(|m| (m.sus_scale - 0.3).abs() < 1e-6));
    }

    #[test]
    fn infection_dedup_keeps_minimum() {
        let (_, ptts) = setup();
        let mut slot = PersonSlot::new(1, &ptts);
        slot.record_infection(&InfectMsg {
            person: 1,
            time_min: 500,
            infector: 9,
        });
        slot.record_infection(&InfectMsg {
            person: 1,
            time_min: 200,
            infector: 42,
        });
        slot.record_infection(&InfectMsg {
            person: 1,
            time_min: 200,
            infector: 50,
        });
        assert_eq!(slot.pending, Some((200, 42)));
    }

    #[test]
    fn apply_pending_infects_once() {
        let (_, ptts) = setup();
        let mut slot = PersonSlot::new(1, &ptts);
        slot.record_infection(&InfectMsg {
            person: 1,
            time_min: 100,
            infector: 2,
        });
        assert!(slot.apply_pending(&ptts, 1, 0));
        assert!(slot.is_infected());
        assert_eq!(slot.health.state, ptts.exposed_state());
        // No pending left; re-applying does nothing.
        assert!(!slot.apply_pending(&ptts, 1, 1));
    }

    #[test]
    fn apply_pending_noop_when_already_infected() {
        let (_, ptts) = setup();
        let mut slot = PersonSlot::new(1, &ptts);
        slot.record_infection(&InfectMsg {
            person: 1,
            time_min: 100,
            infector: 2,
        });
        slot.apply_pending(&ptts, 1, 0);
        slot.record_infection(&InfectMsg {
            person: 1,
            time_min: 50,
            infector: 3,
        });
        assert!(!slot.apply_pending(&ptts, 1, 1), "already latent");
    }

    #[test]
    fn symptomatic_stay_home_rate() {
        let (pop, ptts) = setup();
        let sym = ptts.state_by_name("symptomatic").unwrap();
        let mut stayed = 0;
        let mut total = 0;
        for pid in 0..pop.n_people() {
            let mut slot = PersonSlot::new(pid, &ptts);
            slot.health.state = sym;
            slot.health.days_remaining = 3;
            let mut out = Vec::new();
            let symptomatic = person_day(
                &mut slot,
                &pop,
                &ptts,
                &DayEffects::none(),
                Some(sym),
                None,
                7,
                0,
                &mut out,
            );
            assert!(symptomatic);
            let home = pop.people[pid as usize].home;
            let full = pop.visits_of(PersonId(pid)).len();
            if out.len() < full || out.iter().all(|m| m.location == home.0) {
                stayed += 1;
            }
            total += 1;
        }
        let frac = stayed as f64 / total as f64;
        // Some persons have home-only schedules, so observed rate can sit
        // slightly above the 50% coin.
        assert!(frac > 0.35 && frac < 0.75, "stay-home fraction {frac}");
    }
}
