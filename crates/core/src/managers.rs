//! PersonManager and LocationManager chares (§II-C).
//!
//! "We follow a two-level hierarchical data distribution technique … we
//! create two types of chares, LocationManagers (LM) and PersonManagers
//! (PM), each able to manage multiple second level objects representing
//! individual locations and persons … The individual chares in both arrays
//! handle the computation and communication of all location or person
//! objects assigned to them."

use crate::kernel::{
    simulate_location_day, InfectivityClasses, KernelScratch, LocationDayFeatures,
};
use crate::messages::{slots, SharedRef, SimMsg, VisitMsg};
use crate::person::{person_day, PersonSlot};
use chare_rt::{Chare, ChareId, Ctx};
use ptts::model::StateId;

/// A PersonManager: owns a set of persons, drives phases 1 and 5.
pub struct PersonManager {
    shared: SharedRef,
    persons: Vec<PersonSlot>,
    symptomatic_state: Option<StateId>,
    /// Scratch buffer reused across days.
    visit_buf: Vec<VisitMsg>,
}

impl PersonManager {
    /// Build a PM owning `person_ids` (ascending order expected; local slot
    /// index must match `Shared::local_of_person`).
    pub fn new(shared: SharedRef, person_ids: Vec<u32>) -> Self {
        let persons = person_ids
            .iter()
            .map(|&id| PersonSlot::new(id, &shared.ptts))
            .collect();
        Self::with_states(shared, persons)
    }

    /// Build a PM from pre-existing person states (chare migration: the
    /// §VII load-rebalancing path re-homes persons between epochs).
    pub fn with_states(shared: SharedRef, persons: Vec<PersonSlot>) -> Self {
        let symptomatic_state = shared.ptts.state_by_name("symptomatic");
        PersonManager {
            shared,
            persons,
            symptomatic_state,
            visit_buf: Vec::new(),
        }
    }

    /// Take the person states out (after `Runtime::into_chares`).
    pub fn into_persons(self) -> Vec<PersonSlot> {
        self.persons
    }

    /// Seed an initial infection (before day 0).
    pub fn seed_infection(&mut self, local_idx: u32) {
        let shared = self.shared.clone();
        self.persons[local_idx as usize].seed(&shared.ptts, shared.seed);
    }

    /// The owned persons (read access for tests and result extraction).
    pub fn persons(&self) -> &[PersonSlot] {
        &self.persons
    }

    fn begin_day(
        &mut self,
        day: u32,
        effects: &crate::messages::DayEffects,
        ctx: &mut Ctx<'_, SimMsg>,
    ) {
        let shared = self.shared.clone();
        let mut symptomatic = 0u64;
        let mut infected_now = 0u64;
        let mut susceptible = 0u64;
        let mut visits_sent = 0u64;
        for slot in &mut self.persons {
            self.visit_buf.clear();
            let sym = person_day(
                slot,
                &shared.pop,
                &shared.ptts,
                effects,
                self.symptomatic_state,
                Some(&shared.layout.orig_of_location),
                shared.seed,
                day,
                &mut self.visit_buf,
            );
            symptomatic += sym as u64;
            infected_now += slot.is_infected() as u64;
            susceptible += shared.ptts.is_susceptible(slot.health.state) as u64;
            visits_sent += self.visit_buf.len() as u64;
            for msg in self.visit_buf.drain(..) {
                let lm = shared.layout.lm_of_location[msg.location as usize];
                ctx.send(ChareId(lm), SimMsg::Visit(msg));
            }
        }
        ctx.contribute(slots::SYMPTOMATIC, symptomatic);
        ctx.contribute(slots::INFECTED_NOW, infected_now);
        ctx.contribute(slots::SUSCEPTIBLE, susceptible);
        ctx.contribute(slots::VISITS_SENT, visits_sent);
    }

    fn apply_day(&mut self, day: u32, ctx: &mut Ctx<'_, SimMsg>) {
        let shared = self.shared.clone();
        let mut new_infections = 0u64;
        for slot in &mut self.persons {
            new_infections += slot.apply_pending(&shared.ptts, shared.seed, day) as u64;
        }
        ctx.contribute(slots::NEW_INFECTIONS, new_infections);
    }
}

impl Chare<SimMsg> for PersonManager {
    fn receive(&mut self, msg: SimMsg, ctx: &mut Ctx<'_, SimMsg>) {
        match msg {
            SimMsg::BeginDay { day, effects } => self.begin_day(day, &effects, ctx),
            SimMsg::Infect(infect) => {
                let local = self.shared.layout.local_of_person[infect.person as usize] as usize;
                self.persons[local].record_infection(&infect);
            }
            SimMsg::ApplyDay { day } => self.apply_day(day, ctx),
            other => panic!("PersonManager got unexpected message {other:?}"),
        }
    }

    fn snapshot(&self) -> Option<Vec<u8>> {
        // Person state is the only chare state that cannot be rebuilt from
        // deterministic construction; LocationManagers keep the default
        // `None` (visit buffers are empty at day boundaries and feature
        // totals are analysis-only).
        Some(crate::checkpoint::encode_person_shard(&self.persons).to_vec())
    }

    fn into_any(self: Box<Self>) -> Box<dyn std::any::Any> {
        self
    }
}

/// A LocationManager: owns a set of locations, buffers the day's visit
/// messages, and runs the DES in phase 3.
pub struct LocationManager {
    shared: SharedRef,
    /// Global location ids owned, ordered by local slot.
    locations: Vec<u32>,
    /// Per-location visit buffer for the current day. Kept flat (the kernel
    /// sorts by a packed sublocation/start/person key): insert-time grouping
    /// via [`crate::kernel::VisitBuffer`] was measured slower end-to-end,
    /// because it adds a binary search per received visit on the
    /// message-receive path — see EXPERIMENTS.md "Performance methodology".
    buffers: Vec<Vec<VisitMsg>>,
    classes: InfectivityClasses,
    /// DES working memory reused across locations and days.
    scratch: KernelScratch,
    /// Accumulated per-location features of the most recent day (exposed
    /// for load-model calibration).
    pub last_features: Vec<LocationDayFeatures>,
    /// Per-location features summed over every day this LM has computed —
    /// the measured dynamic load the §VII rebalancer feeds on.
    pub feature_totals: Vec<LocationDayFeatures>,
    infect_buf: Vec<crate::messages::InfectMsg>,
}

impl LocationManager {
    /// Build an LM owning `location_ids` (local slot order must match
    /// `Shared::local_of_location`).
    pub fn new(shared: SharedRef, location_ids: Vec<u32>) -> Self {
        let n = location_ids.len();
        let classes = InfectivityClasses::new(&shared.ptts);
        LocationManager {
            shared,
            locations: location_ids,
            buffers: vec![Vec::new(); n],
            classes,
            scratch: KernelScratch::new(),
            last_features: vec![LocationDayFeatures::default(); n],
            feature_totals: vec![LocationDayFeatures::default(); n],
            infect_buf: Vec::new(),
        }
    }

    /// The owned location ids.
    pub fn locations(&self) -> &[u32] {
        &self.locations
    }

    fn compute_day(&mut self, day: u32, r_eff: f64, ctx: &mut Ctx<'_, SimMsg>) {
        let shared = self.shared.clone();
        let mut events = 0u64;
        let mut interactions = 0u64;
        let mut infects_sent = 0u64;
        let mut by_kind = [0u64; 5];
        for li in 0..self.locations.len() {
            self.infect_buf.clear();
            let features = simulate_location_day(
                &mut self.buffers[li],
                &shared.ptts,
                &self.classes,
                r_eff,
                shared.seed,
                day,
                &mut self.scratch,
                &mut self.infect_buf,
            );
            self.buffers[li].clear();
            events += features.events;
            interactions += features.interactions;
            infects_sent += self.infect_buf.len() as u64;
            let kind = shared.pop.locations[self.locations[li] as usize].kind as usize;
            by_kind[kind] += self.infect_buf.len() as u64;
            self.last_features[li] = features;
            let tot = &mut self.feature_totals[li];
            tot.events += features.events;
            tot.interactions += features.interactions;
            tot.sum_reciprocal_interactions += features.sum_reciprocal_interactions;
            for infect in self.infect_buf.drain(..) {
                let pm = shared.layout.pm_of_person[infect.person as usize];
                ctx.send(ChareId(pm), SimMsg::Infect(infect));
            }
        }
        ctx.contribute(slots::EVENTS, events);
        ctx.contribute(slots::INTERACTIONS, interactions);
        ctx.contribute(slots::INFECTS_SENT, infects_sent);
        for (k, &n) in by_kind.iter().enumerate() {
            if n > 0 {
                ctx.contribute(slots::BY_KIND_BASE + k, n);
            }
        }
    }
}

impl Chare<SimMsg> for LocationManager {
    fn receive(&mut self, msg: SimMsg, ctx: &mut Ctx<'_, SimMsg>) {
        match msg {
            SimMsg::Visit(v) => {
                let local = self.shared.layout.local_of_location[v.location as usize] as usize;
                self.buffers[local].push(v);
            }
            SimMsg::ComputeDay { day, r_eff } => self.compute_day(day, r_eff, ctx),
            other => panic!("LocationManager got unexpected message {other:?}"),
        }
    }

    fn into_any(self: Box<Self>) -> Box<dyn std::any::Any> {
        self
    }
}
