//! The copy-on-write ensemble engine: whole-run parallelism over one
//! immutable world.
//!
//! A single stochastic trajectory is an anecdote; course-of-action studies
//! of the kind EpiSimdemics supported during H1N1 report medians and
//! uncertainty bands over thousands of replicates and parameter points.
//! Those members are embarrassingly parallel, so the scalable axis is
//! *whole runs*, not PEs within a run:
//!
//! * [`CowWorld`] — synthpop, disease model, and the §II-C layout maps are
//!   computed once and shared immutably (`Arc`) by every member. Building a
//!   member aliases three pointers; nothing is deep-copied.
//! * [`MemberArena`] — all per-run mutable state (person slots, visit
//!   buffers, DES scratch) packed into one reusable arena. A worker runs
//!   its members back-to-back out of the same arena, so steady-state
//!   ensemble throughput allocates almost nothing per run.
//! * [`run_sweep`] — an ensemble scheduler that fans whole runs across a
//!   worker pool (atomic work counter; workers race, results don't:
//!   placement into the [`ResultStore`] is by `(param point, seed)` index,
//!   and each member's epidemic is keyed only by its own seed, so worker
//!   count and interleaving can never change a bit of output).
//! * [`EnsembleSpec`] — the sweep front-end: parameter grids over
//!   transmissibility and intervention variants, driven either
//!   programmatically or from the ptts DSL's `sweep` directive.
//! * [`surrogate`] — a FastSIR-style percolation screen that ranks
//!   parameter points on a static contact graph before promoting survivors
//!   to full EpiSimdemics runs.
//!
//! Whole-run parallelism versus intra-run `ExecMode::Threads` is a measured
//! crossover, not an assumption: `BENCH_ensemble.json` (emitted by the
//! `ensemble` bench) reports both, per worker count.

use crate::distribution::DataDistribution;
use crate::kernel::KernelScratch;
use crate::messages::{InfectMsg, VisitMsg, WorldLayout};
use crate::output::{curve_hash, EpiCurve};
use crate::person::PersonSlot;
use crate::seq::run_sequential_into;
use crate::simulator::SimConfig;
use ptts::intervention::InterventionSet;
use ptts::Ptts;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use synthpop::Population;

/// The immutable world every ensemble member aliases: population, disease
/// model, and the object→chare layout, each behind its own `Arc`.
///
/// Cloning a `CowWorld` (or building a [`crate::Simulator`] from one via
/// [`crate::Simulator::from_world`]) bumps three reference counts and copies
/// nothing — the aliasing tests pin this with `Arc::strong_count`.
#[derive(Debug, Clone)]
pub struct CowWorld {
    /// The (possibly split) population.
    pub pop: Arc<Population>,
    /// The disease model.
    pub ptts: Arc<Ptts>,
    /// The §II-C index maps.
    pub layout: Arc<WorldLayout>,
}

impl CowWorld {
    /// Build the world once from a distribution; everything downstream
    /// shares it.
    pub fn build(dist: &DataDistribution, ptts: Ptts) -> CowWorld {
        CowWorld {
            pop: dist.pop.clone(),
            ptts: Arc::new(ptts),
            layout: Arc::new(WorldLayout::build(dist)),
        }
    }
}

/// All mutable state of one ensemble member, packed together so a worker
/// can reuse it across runs: person slots, the per-location visit buffers,
/// the day's infect list, and the DES kernel scratch.
///
/// [`crate::seq::run_sequential_into`] resets the arena at the start of
/// every run, so results are bit-identical whether an arena is fresh or has
/// already hosted a thousand members — only the allocations are amortised.
#[derive(Debug, Default)]
pub struct MemberArena {
    /// Per-person disease state.
    pub(crate) slots: Vec<PersonSlot>,
    /// Per-location visit buffers for the current day.
    pub(crate) buffers: Vec<Vec<VisitMsg>>,
    /// One person's visits being routed (cleared per person).
    pub(crate) visit_buf: Vec<VisitMsg>,
    /// The day's infect messages.
    pub(crate) infects: Vec<InfectMsg>,
    /// DES kernel working memory.
    pub(crate) scratch: KernelScratch,
}

impl MemberArena {
    /// An empty arena; first use sizes it to the world.
    pub fn new() -> MemberArena {
        MemberArena::default()
    }

    /// Reset to the initial state for a fresh run over `n_people` persons
    /// and `n_locations` locations, reusing capacity.
    pub(crate) fn reset(&mut self, n_people: usize, n_locations: usize, ptts: &Ptts) {
        self.slots.clear();
        self.slots
            .extend((0..n_people).map(|p| PersonSlot::new(p as u32, ptts)));
        if self.buffers.len() < n_locations {
            self.buffers.resize_with(n_locations, Vec::new);
        }
        for b in &mut self.buffers {
            b.clear();
        }
        self.visit_buf.clear();
        self.infects.clear();
    }

    /// The person states left by the most recent run (the transmission tree
    /// lives in their provenance fields).
    pub fn person_states(&self) -> &[PersonSlot] {
        &self.slots
    }

    /// Take the person states out of the arena.
    pub fn into_person_states(self) -> Vec<PersonSlot> {
        self.slots
    }
}

/// One point of a parameter sweep: a transmissibility and an intervention
/// package. Everything else comes from the spec's base [`SimConfig`].
#[derive(Debug, Clone)]
pub struct ParamPoint {
    /// Display label (grid coordinates, for reports).
    pub label: String,
    /// Base transmissibility per minute of contact.
    pub r: f64,
    /// Interventions in force at this point.
    pub interventions: InterventionSet,
}

impl ParamPoint {
    /// A point varying only transmissibility.
    pub fn bare(r: f64) -> ParamPoint {
        ParamPoint {
            label: format!("r={r}"),
            r,
            interventions: InterventionSet::none(),
        }
    }

    /// The full-run configuration for this point under `seed`.
    pub fn config(&self, base: &SimConfig, seed: u64) -> SimConfig {
        SimConfig {
            r: self.r,
            seed,
            interventions: self.interventions.clone(),
            ..base.clone()
        }
    }
}

/// A full ensemble specification: the member set is the cross product
/// `points × seeds`, enumerated point-major.
#[derive(Debug, Clone)]
pub struct EnsembleSpec {
    /// Parameters shared by every member (days, initial infections, …).
    pub base: SimConfig,
    /// The parameter grid.
    pub points: Vec<ParamPoint>,
    /// Replicate seeds, applied to every point.
    pub seeds: Vec<u64>,
}

impl EnsembleSpec {
    /// Plain replicates of one scenario: a single point taken verbatim from
    /// `base` (its `r` and interventions), seeds `base.seed + i`.
    pub fn replicates(base: &SimConfig, n: u32) -> EnsembleSpec {
        let point = ParamPoint {
            label: format!("r={}", base.r),
            r: base.r,
            interventions: base.interventions.clone(),
        };
        EnsembleSpec {
            base: base.clone(),
            points: vec![point],
            seeds: (0..n).map(|i| base.seed.wrapping_add(i as u64)).collect(),
        }
    }

    /// A transmissibility grid with `n_seeds` replicates per point.
    pub fn grid(base: &SimConfig, rs: &[f64], n_seeds: u32) -> EnsembleSpec {
        EnsembleSpec {
            base: base.clone(),
            points: rs.iter().map(|&r| ParamPoint::bare(r)).collect(),
            seeds: (0..n_seeds)
                .map(|i| base.seed.wrapping_add(i as u64))
                .collect(),
        }
    }

    /// The cross product of transmissibilities and intervention variants
    /// (`variants` are `(label, interventions)` pairs).
    pub fn grid_over(
        base: &SimConfig,
        rs: &[f64],
        variants: &[(&str, InterventionSet)],
        n_seeds: u32,
    ) -> EnsembleSpec {
        let mut points = Vec::with_capacity(rs.len() * variants.len());
        for &r in rs {
            for (name, iv) in variants {
                points.push(ParamPoint {
                    label: format!("r={r} {name}"),
                    r,
                    interventions: iv.clone(),
                });
            }
        }
        EnsembleSpec {
            base: base.clone(),
            points,
            seeds: (0..n_seeds)
                .map(|i| base.seed.wrapping_add(i as u64))
                .collect(),
        }
    }

    /// Total member count (`points × seeds`).
    pub fn n_members(&self) -> usize {
        self.points.len() * self.seeds.len()
    }

    /// Decompose a member index into `(point index, seed index)`.
    pub fn member(&self, idx: usize) -> (usize, usize) {
        (idx / self.seeds.len(), idx % self.seeds.len())
    }

    /// The full-run configuration of member `idx`.
    pub fn config_for(&self, idx: usize) -> SimConfig {
        let (pi, si) = self.member(idx);
        self.points[pi].config(&self.base, self.seeds[si])
    }
}

/// Deterministic store of sweep results, keyed by `(param point, seed)`.
/// Placement is by member index, so the worker interleaving that produced a
/// curve is unobservable.
#[derive(Debug, Clone)]
pub struct ResultStore {
    n_points: usize,
    n_seeds: usize,
    curves: Vec<EpiCurve>,
}

impl ResultStore {
    /// Number of parameter points.
    pub fn n_points(&self) -> usize {
        self.n_points
    }

    /// Number of replicate seeds per point.
    pub fn n_seeds(&self) -> usize {
        self.n_seeds
    }

    /// The curve of one member.
    pub fn curve(&self, point: usize, seed: usize) -> &EpiCurve {
        &self.curves[point * self.n_seeds + seed]
    }

    /// All curves of one point, in seed order.
    pub fn curves_for_point(&self, point: usize) -> &[EpiCurve] {
        &self.curves[point * self.n_seeds..(point + 1) * self.n_seeds]
    }

    /// Every curve, point-major.
    pub fn all_curves(&self) -> &[EpiCurve] {
        &self.curves
    }

    /// Replicate summary (quantile bands etc.) of one point.
    pub fn point_ensemble(&self, point: usize) -> Ensemble {
        let runs = self.curves_for_point(point).to_vec();
        let bands = bands_of(&runs);
        Ensemble { runs, bands }
    }

    /// Mean attack rate across a point's replicates.
    pub fn mean_attack_rate(&self, point: usize) -> f64 {
        let cs = self.curves_for_point(point);
        if cs.is_empty() {
            return 0.0;
        }
        cs.iter().map(|c| c.attack_rate()).sum::<f64>() / cs.len() as f64
    }

    /// FNV-1a fold over every member's curve hash, in `(point, seed)`
    /// order — one number that pins the entire sweep bit-for-bit (the
    /// conformance grid asserts it against a constant).
    pub fn hash(&self) -> u64 {
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        for c in &self.curves {
            h = (h ^ curve_hash(&c.days)).wrapping_mul(0x0000_0100_0000_01b3);
        }
        h
    }
}

/// Run every member of `spec` over the shared `world`, fanning whole runs
/// across `workers` OS threads.
///
/// Each worker owns one [`MemberArena`] and pulls member indices from an
/// atomic counter until the sweep is drained. Determinism is structural:
/// members draw only from counter-based streams keyed by their own seed,
/// and results land in the store by index — so any worker count, including
/// 1, yields bit-identical output (the determinism proptest varies it).
///
/// `workers` is a *logical* parallelism cap: the OS thread count is
/// additionally clamped to the member count and the machine's available
/// parallelism, because oversubscribing CPU-bound whole runs only buys
/// context-switch and cache pressure. The clamp is unobservable in the
/// results, by the determinism argument above.
pub fn run_sweep(world: &CowWorld, spec: &EnsembleSpec, workers: u32) -> ResultStore {
    let total = spec.n_members();
    let hw = std::thread::available_parallelism().map_or(usize::MAX, usize::from);
    let workers = (workers.max(1) as usize).min(total.max(1)).min(hw);
    let next = AtomicUsize::new(0);
    let mut placed: Vec<Option<EpiCurve>> = (0..total).map(|_| None).collect();
    std::thread::scope(|scope| {
        let mut handles = Vec::new();
        for _ in 0..workers {
            let next = &next;
            handles.push(scope.spawn(move || {
                let mut arena = MemberArena::new();
                let mut out = Vec::new();
                loop {
                    let idx = next.fetch_add(1, Ordering::Relaxed);
                    if idx >= total {
                        break;
                    }
                    let cfg = spec.config_for(idx);
                    let curve = run_sequential_into(&world.pop, &world.ptts, &cfg, &mut arena);
                    out.push((idx, curve));
                }
                out
            }));
        }
        for h in handles {
            for (idx, curve) in h.join().expect("ensemble worker panicked") {
                placed[idx] = Some(curve);
            }
        }
    });
    ResultStore {
        n_points: spec.points.len(),
        n_seeds: spec.seeds.len(),
        curves: placed
            .into_iter()
            .map(|c| c.expect("every member index was claimed by a worker"))
            .collect(),
    }
}

/// Summary of one day across an ensemble's replicates.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct DayBand {
    /// Simulation day.
    pub day: u32,
    /// Quantiles of the day's *new infections* across replicates:
    /// (10th percentile, median, 90th percentile).
    pub new_infections: (u64, u64, u64),
    /// Quantiles of the day's currently-infected count.
    pub infected_now: (u64, u64, u64),
}

/// Result of an ensemble: per-replicate curves plus day-wise bands.
#[derive(Debug, Clone, Default)]
pub struct Ensemble {
    /// One epidemic curve per replicate (ordered by seed).
    pub runs: Vec<EpiCurve>,
    /// Day-wise quantile bands (length = the longest replicate).
    pub bands: Vec<DayBand>,
}

impl Ensemble {
    /// Attack rates across replicates, sorted ascending.
    pub fn attack_rates(&self) -> Vec<f64> {
        let mut v: Vec<f64> = self.runs.iter().map(|r| r.attack_rate()).collect();
        v.sort_by(|a, b| a.partial_cmp(b).unwrap());
        v
    }

    /// Quantile of the attack-rate distribution (`q ∈ [0,1]`).
    pub fn attack_rate_quantile(&self, q: f64) -> f64 {
        quantile_f64(&self.attack_rates(), q)
    }

    /// Fraction of replicates where the outbreak took off (attack rate
    /// above `threshold`) — small seeds fizzle stochastically.
    pub fn takeoff_probability(&self, threshold: f64) -> f64 {
        if self.runs.is_empty() {
            return 0.0;
        }
        self.runs
            .iter()
            .filter(|r| r.attack_rate() > threshold)
            .count() as f64
            / self.runs.len() as f64
    }
}

/// Day-wise quantile bands over a set of replicate curves (replicates that
/// ended early contribute zeros, which is the true epidemic state after
/// extinction).
pub fn bands_of(runs: &[EpiCurve]) -> Vec<DayBand> {
    let horizon = runs.iter().map(|r| r.days.len()).max().unwrap_or(0);
    let mut bands = Vec::with_capacity(horizon);
    for d in 0..horizon {
        let mut new_inf: Vec<u64> = runs
            .iter()
            .map(|r| r.days.get(d).map(|x| x.new_infections).unwrap_or(0))
            .collect();
        let mut inf_now: Vec<u64> = runs
            .iter()
            .map(|r| r.days.get(d).map(|x| x.infected_now).unwrap_or(0))
            .collect();
        new_inf.sort_unstable();
        inf_now.sort_unstable();
        bands.push(DayBand {
            day: d as u32,
            new_infections: (
                quantile_u64(&new_inf, 0.1),
                quantile_u64(&new_inf, 0.5),
                quantile_u64(&new_inf, 0.9),
            ),
            infected_now: (
                quantile_u64(&inf_now, 0.1),
                quantile_u64(&inf_now, 0.5),
                quantile_u64(&inf_now, 0.9),
            ),
        });
    }
    bands
}

fn quantile_u64(sorted: &[u64], q: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let idx = ((sorted.len() - 1) as f64 * q.clamp(0.0, 1.0)).round() as usize;
    sorted[idx]
}

fn quantile_f64(sorted: &[f64], q: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let idx = ((sorted.len() - 1) as f64 * q.clamp(0.0, 1.0)).round() as usize;
    sorted[idx]
}

/// Run `replicates` copies of the scenario with seeds `base_seed + i`,
/// spread over `n_threads` worker threads — the replicate-band front door,
/// now a thin wrapper over [`run_sweep`] with a single parameter point.
pub fn run_ensemble(
    dist: &DataDistribution,
    ptts: &Ptts,
    cfg: &SimConfig,
    replicates: u32,
    n_threads: u32,
) -> Ensemble {
    let world = CowWorld::build(dist, ptts.clone());
    let spec = EnsembleSpec::replicates(cfg, replicates);
    let store = run_sweep(&world, &spec, n_threads);
    store.point_ensemble(0)
}

pub mod surrogate {
    //! FastSIR-style surrogate screen: rank parameter points on a static
    //! contact graph before paying for full EpiSimdemics runs.
    //!
    //! The full simulator replays every visit of every person every day.
    //! The surrogate collapses that to a one-shot bond percolation: build a
    //! static person–person contact graph from per-location visit overlaps
    //! (degree-capped at heavy locations), open each edge with the
    //! transmission function's probability for the whole infectious period,
    //! and measure the component reachable from the seed set. Percolation
    //! draws share one keyed uniform per edge across every parameter point
    //! (`Purpose::Surrogate`), which *couples* the samples: the open-edge
    //! set can only grow with transmissibility, so scores are monotone in
    //! `r` by construction — the surrogate sanity suite pins this, along
    //! with top-k retention against exhaustive full runs (tolerances in
    //! EXPERIMENTS.md).

    use super::{CowWorld, EnsembleSpec, ParamPoint};
    use ptts::crng::{CounterRng, Purpose};
    use ptts::model::TreatmentId;
    use ptts::transmission::infection_prob;
    use ptts::Ptts;
    use synthpop::{LocationId, Population};

    /// Per-location visitor cap when building the contact graph. Heavy
    /// locations (malls in the paper's degree plots) would otherwise
    /// contribute O(degree²) edges; the screen only needs connectivity.
    pub const MAX_VISITORS_PER_LOCATION: usize = 24;

    /// A static undirected person–person contact graph in CSR form. Each
    /// directed half-edge carries the contact minutes and the undirected
    /// edge id its percolation draw is keyed by.
    #[derive(Debug, Clone)]
    pub struct ContactGraph {
        offsets: Vec<u32>,
        targets: Vec<u32>,
        minutes: Vec<f32>,
        edge_ids: Vec<u32>,
        n_edges: u32,
    }

    impl ContactGraph {
        /// Build from per-location visit overlaps: two people who overlap
        /// at a location for `m` minutes get an edge of weight `m`
        /// (summed over co-visits). Deterministic — locations and visits
        /// are walked in id order.
        pub fn build(pop: &Population) -> ContactGraph {
            let n_people = pop.n_people() as usize;
            let graph = synthpop::BipartiteGraph::build(pop);
            let mut adj: Vec<Vec<(u32, f32, u32)>> = vec![Vec::new(); n_people];
            let mut n_edges = 0u32;
            for l in 0..pop.n_locations() {
                let vis = graph.visits_at(LocationId(l));
                let take = vis.len().min(MAX_VISITORS_PER_LOCATION);
                for a in 0..take {
                    let va = &pop.visits[vis[a] as usize];
                    for &vbi in vis.iter().take(take).skip(a + 1) {
                        let vb = &pop.visits[vbi as usize];
                        if va.person == vb.person {
                            continue;
                        }
                        let overlap = va
                            .end_min()
                            .min(vb.end_min())
                            .saturating_sub(va.start_min.max(vb.start_min));
                        if overlap == 0 {
                            continue;
                        }
                        let id = n_edges;
                        n_edges += 1;
                        adj[va.person.0 as usize].push((vb.person.0, overlap as f32, id));
                        adj[vb.person.0 as usize].push((va.person.0, overlap as f32, id));
                    }
                }
            }
            let mut offsets = Vec::with_capacity(n_people + 1);
            let mut targets = Vec::new();
            let mut minutes = Vec::new();
            let mut edge_ids = Vec::new();
            offsets.push(0u32);
            for list in &adj {
                for &(t, m, id) in list {
                    targets.push(t);
                    minutes.push(m);
                    edge_ids.push(id);
                }
                offsets.push(targets.len() as u32);
            }
            ContactGraph {
                offsets,
                targets,
                minutes,
                edge_ids,
                n_edges,
            }
        }

        /// Number of undirected edges.
        pub fn n_edges(&self) -> u32 {
            self.n_edges
        }

        /// Number of person nodes.
        pub fn n_people(&self) -> usize {
            self.offsets.len() - 1
        }

        fn neighbors(&self, p: u32) -> impl Iterator<Item = (u32, f32, u32)> + '_ {
            let lo = self.offsets[p as usize] as usize;
            let hi = self.offsets[p as usize + 1] as usize;
            (lo..hi).map(move |i| (self.targets[i], self.minutes[i], self.edge_ids[i]))
        }
    }

    /// Expected infectivity-weighted days of one infection episode under
    /// the default treatment: `Σ_s ι(s) · E[dwell(s)] · P(visit s)`,
    /// following the exposed-onset chain. This converts the contact graph's
    /// per-day minutes into whole-episode contact time for the percolation
    /// probability.
    pub fn expected_infectivity_days(ptts: &Ptts) -> f64 {
        let n = ptts.n_states();
        let mut mass = vec![0.0f64; n];
        mass[ptts.exposed_state().0 as usize] = 1.0;
        let mut total = 0.0;
        // The PTTS graphs we run are shallow DAGs; 32 propagation rounds is
        // plenty, and the residual-mass exit catches convergence early.
        for _ in 0..32 {
            let mut next = vec![0.0f64; n];
            let mut moved = 0.0;
            for (s, &m) in mass.iter().enumerate() {
                if m <= 0.0 {
                    continue;
                }
                let sid = ptts::model::StateId(s as u16);
                if let Some(d) = ptts.state(sid).dwell.mean() {
                    total += ptts.infectivity(sid) * d * m;
                    if let Some(table) = ptts.table(sid, TreatmentId::DEFAULT) {
                        for &(t, p) in table.edges() {
                            next[t.0 as usize] += m * p;
                            moved += m * p;
                        }
                    }
                }
                // Absorbing states (dwell Forever) retain their mass and
                // shed nothing further.
            }
            mass = next;
            if moved < 1e-9 {
                break;
            }
        }
        total
    }

    /// One parameter point's surrogate score.
    #[derive(Debug, Clone, Copy, PartialEq)]
    pub struct SurrogateScore {
        /// Index into the screened point list.
        pub point: usize,
        /// Mean fraction of the population reachable from the seed set
        /// across percolation samples.
        pub mean_attack: f64,
    }

    /// Score every point of `spec` by percolation on `graph`.
    ///
    /// Sample `s` uses seed `spec.seeds[s]`: the seed set is drawn by the
    /// exact code the full simulator uses, and each edge's uniform is keyed
    /// `(seed, edge, 0, Surrogate)` — shared across points, so scores are
    /// monotone in transmissibility by coupling.
    pub fn screen(
        graph: &ContactGraph,
        world: &CowWorld,
        spec: &EnsembleSpec,
    ) -> Vec<SurrogateScore> {
        let n_people = graph.n_people();
        let d_inf = expected_infectivity_days(&world.ptts);
        let mut scores: Vec<SurrogateScore> = (0..spec.points.len())
            .map(|point| SurrogateScore {
                point,
                mean_attack: 0.0,
            })
            .collect();
        if n_people == 0 || spec.seeds.is_empty() {
            return scores;
        }
        let mut visited = vec![false; n_people];
        let mut stack: Vec<u32> = Vec::new();
        for &seed in &spec.seeds {
            // Seed set: identical draw to `Simulator::new`.
            let mut seeds = std::collections::BTreeSet::new();
            let mut rng = CounterRng::for_entity(seed, 0, 0, Purpose::Synthesis);
            let want = (spec.base.initial_infections as usize).min(n_people);
            while seeds.len() < want {
                seeds.insert(rng.uniform_u64(n_people as u64) as u32);
            }
            for (pi, point) in spec.points.iter().enumerate() {
                let reached =
                    percolate(graph, seed, point, d_inf, &seeds, &mut visited, &mut stack);
                scores[pi].mean_attack += reached as f64 / n_people as f64;
            }
        }
        for s in &mut scores {
            s.mean_attack /= spec.seeds.len() as f64;
        }
        scores
    }

    fn percolate(
        graph: &ContactGraph,
        seed: u64,
        point: &ParamPoint,
        d_inf: f64,
        seeds: &std::collections::BTreeSet<u32>,
        visited: &mut [bool],
        stack: &mut Vec<u32>,
    ) -> usize {
        visited.iter_mut().for_each(|v| *v = false);
        stack.clear();
        let mut reached = 0usize;
        for &p in seeds {
            if !visited[p as usize] {
                visited[p as usize] = true;
                reached += 1;
                stack.push(p);
            }
        }
        while let Some(p) = stack.pop() {
            for (q, mins, edge) in graph.neighbors(p) {
                if visited[q as usize] {
                    continue;
                }
                // Whole-episode transmission probability for this contact.
                let prob = infection_prob(point.r, 1.0, 1.0, mins as f64 * d_inf);
                let u =
                    CounterRng::for_entity(seed, edge as u64, 0, Purpose::Surrogate).uniform_f64();
                if u < prob {
                    visited[q as usize] = true;
                    reached += 1;
                    stack.push(q);
                }
            }
        }
        reached
    }

    /// Indices of the `k` best-scoring points (score descending, index
    /// ascending on ties) — the survivors to promote to full runs.
    pub fn promote_top_k(scores: &[SurrogateScore], k: usize) -> Vec<usize> {
        let mut order: Vec<usize> = (0..scores.len()).collect();
        order.sort_by(|&a, &b| {
            scores[b]
                .mean_attack
                .partial_cmp(&scores[a].mean_attack)
                .unwrap()
                .then(a.cmp(&b))
        });
        order.truncate(k);
        order
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::distribution::Strategy;
    use ptts::flu_model;
    use synthpop::{Population, PopulationConfig};

    fn setup() -> (DataDistribution, SimConfig) {
        let pop = Population::generate(&PopulationConfig::small("ENS", 1500, 5));
        let dist = DataDistribution::build(&pop, Strategy::RoundRobin, 1, 5);
        let cfg = SimConfig {
            days: 25,
            r: 0.0012,
            seed: 100,
            initial_infections: 3,
            ..Default::default()
        };
        (dist, cfg)
    }

    #[test]
    fn thread_count_does_not_change_results() {
        let (dist, cfg) = setup();
        let ptts = flu_model();
        let a = run_ensemble(&dist, &ptts, &cfg, 8, 1);
        let b = run_ensemble(&dist, &ptts, &cfg, 8, 4);
        assert_eq!(a.runs, b.runs);
        assert_eq!(a.bands, b.bands);
    }

    #[test]
    fn replicates_differ_but_share_structure() {
        let (dist, cfg) = setup();
        let ensemble = run_ensemble(&dist, &flu_model(), &cfg, 6, 2);
        assert_eq!(ensemble.runs.len(), 6);
        // Different seeds → (generically) different totals.
        let totals: std::collections::BTreeSet<u64> =
            ensemble.runs.iter().map(|r| r.total_infections()).collect();
        assert!(totals.len() > 1, "all replicates identical");
        // Bands are ordered quantiles.
        for b in &ensemble.bands {
            assert!(b.new_infections.0 <= b.new_infections.1);
            assert!(b.new_infections.1 <= b.new_infections.2);
        }
    }

    #[test]
    fn quantile_helpers() {
        assert_eq!(quantile_u64(&[], 0.5), 0);
        assert_eq!(quantile_u64(&[7], 0.0), 7);
        assert_eq!(quantile_u64(&[1, 2, 3, 4, 5], 0.5), 3);
        assert_eq!(quantile_u64(&[1, 2, 3, 4, 5], 1.0), 5);
        assert_eq!(quantile_f64(&[0.1, 0.9], 0.0), 0.1);
    }

    #[test]
    fn takeoff_probability_sane() {
        let (dist, cfg) = setup();
        let ensemble = run_ensemble(&dist, &flu_model(), &cfg, 10, 3);
        let p = ensemble.takeoff_probability(0.02);
        assert!((0.0..=1.0).contains(&p));
        // With r = 0.0012 on this town most replicates take off.
        assert!(p >= 0.5, "takeoff probability {p}");
        // Attack-rate quantiles are monotone.
        assert!(ensemble.attack_rate_quantile(0.1) <= ensemble.attack_rate_quantile(0.9));
    }

    #[test]
    fn sweep_store_is_worker_count_invariant_and_indexed() {
        let (dist, cfg) = setup();
        let world = CowWorld::build(&dist, flu_model());
        let spec = EnsembleSpec::grid(&cfg, &[0.0004, 0.0012, 0.002], 3);
        let one = run_sweep(&world, &spec, 1);
        let many = run_sweep(&world, &spec, 5);
        assert_eq!(one.hash(), many.hash());
        assert_eq!(one.n_points(), 3);
        assert_eq!(one.n_seeds(), 3);
        // Index placement: member (point, seed) equals a standalone run of
        // that member's config.
        let cfg12 = spec.config_for(1 * spec.seeds.len() + 2);
        let standalone = crate::seq::run_sequential(&dist.pop, &world.ptts, &cfg12);
        assert_eq!(one.curve(1, 2), &standalone);
        // More transmissible points infect more on average.
        assert!(one.mean_attack_rate(0) <= one.mean_attack_rate(2));
    }

    #[test]
    fn cow_world_shares_not_copies() {
        let (dist, cfg) = setup();
        let world = CowWorld::build(&dist, flu_model());
        // The world aliases the distribution's population…
        assert!(Arc::ptr_eq(&world.pop, &dist.pop));
        let before = Arc::strong_count(&world.pop);
        // …and simulators stamped from the world alias all three Arcs.
        let sims: Vec<_> = (0..4)
            .map(|i| {
                let mut c = cfg.clone();
                c.seed = cfg.seed + i;
                crate::Simulator::from_world(
                    &world,
                    c,
                    chare_rt::RuntimeConfig::sequential(1),
                    None,
                )
            })
            .collect();
        assert_eq!(Arc::strong_count(&world.pop), before + 4);
        drop(sims);
        assert_eq!(Arc::strong_count(&world.pop), before);
    }

    #[test]
    fn arena_reuse_is_bit_identical() {
        let (dist, cfg) = setup();
        let world = CowWorld::build(&dist, flu_model());
        let mut arena = MemberArena::new();
        // Dirty the arena with a different run first.
        let mut other = cfg.clone();
        other.seed = 7777;
        let _ = run_sequential_into(&world.pop, &world.ptts, &other, &mut arena);
        let reused = run_sequential_into(&world.pop, &world.ptts, &cfg, &mut arena);
        let fresh = crate::seq::run_sequential(&dist.pop, &world.ptts, &cfg);
        assert_eq!(reused, fresh);
    }

    #[test]
    fn surrogate_monotone_in_transmissibility() {
        let (dist, cfg) = setup();
        let world = CowWorld::build(&dist, flu_model());
        let graph = surrogate::ContactGraph::build(&world.pop);
        assert!(graph.n_edges() > 0);
        let rs = [0.0001, 0.0004, 0.0012, 0.003, 0.008];
        let spec = EnsembleSpec::grid(&cfg, &rs, 4);
        let scores = surrogate::screen(&graph, &world, &spec);
        for w in scores.windows(2) {
            assert!(
                w[0].mean_attack <= w[1].mean_attack,
                "surrogate not monotone: {w:?}"
            );
        }
    }

    #[test]
    fn surrogate_expected_infectivity_days_flu() {
        // flu: incubating ι=0.25 for 1 day, then symptomatic ι=1.0 or
        // asymptomatic ι=0.5 for E[uniform(3,6)]=4.5 days.
        let d = surrogate::expected_infectivity_days(&flu_model());
        assert!(d > 2.5 && d < 5.5, "d_inf {d}");
    }
}
