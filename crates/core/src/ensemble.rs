//! Ensemble runs: the same scenario under many seeds, with quantile bands.
//!
//! A single stochastic trajectory is an anecdote; course-of-action studies
//! of the kind EpiSimdemics supported during H1N1 report medians and
//! uncertainty bands over replicates. Replicates are embarrassingly
//! parallel and fully deterministic per seed, so the runner fans them out
//! over OS threads and the result is independent of the thread count.

use crate::distribution::DataDistribution;
use crate::output::EpiCurve;
use crate::seq::run_sequential;
use crate::simulator::SimConfig;
use ptts::Ptts;

/// Summary of one day across the ensemble.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct DayBand {
    /// Simulation day.
    pub day: u32,
    /// Quantiles of the day's *new infections* across replicates:
    /// (10th percentile, median, 90th percentile).
    pub new_infections: (u64, u64, u64),
    /// Quantiles of the day's currently-infected count.
    pub infected_now: (u64, u64, u64),
}

/// Result of an ensemble: per-replicate curves plus day-wise bands.
#[derive(Debug, Clone, Default)]
pub struct Ensemble {
    /// One epidemic curve per replicate (ordered by seed).
    pub runs: Vec<EpiCurve>,
    /// Day-wise quantile bands (length = the longest replicate).
    pub bands: Vec<DayBand>,
}

impl Ensemble {
    /// Attack rates across replicates, sorted ascending.
    pub fn attack_rates(&self) -> Vec<f64> {
        let mut v: Vec<f64> = self.runs.iter().map(|r| r.attack_rate()).collect();
        v.sort_by(|a, b| a.partial_cmp(b).unwrap());
        v
    }

    /// Quantile of the attack-rate distribution (`q ∈ [0,1]`).
    pub fn attack_rate_quantile(&self, q: f64) -> f64 {
        quantile_f64(&self.attack_rates(), q)
    }

    /// Fraction of replicates where the outbreak took off (attack rate
    /// above `threshold`) — small seeds fizzle stochastically.
    pub fn takeoff_probability(&self, threshold: f64) -> f64 {
        if self.runs.is_empty() {
            return 0.0;
        }
        self.runs
            .iter()
            .filter(|r| r.attack_rate() > threshold)
            .count() as f64
            / self.runs.len() as f64
    }
}

fn quantile_u64(sorted: &[u64], q: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let idx = ((sorted.len() - 1) as f64 * q.clamp(0.0, 1.0)).round() as usize;
    sorted[idx]
}

fn quantile_f64(sorted: &[f64], q: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let idx = ((sorted.len() - 1) as f64 * q.clamp(0.0, 1.0)).round() as usize;
    sorted[idx]
}

/// Run `replicates` copies of the scenario with seeds `base_seed + i`,
/// spread over `n_threads` OS threads. Uses the sequential oracle per
/// replicate (replicate-level parallelism beats PE-level parallelism when
/// there are many replicates).
pub fn run_ensemble(
    dist: &DataDistribution,
    ptts: &Ptts,
    cfg: &SimConfig,
    replicates: u32,
    n_threads: u32,
) -> Ensemble {
    let n_threads = n_threads.clamp(1, replicates.max(1));
    let mut runs: Vec<Option<EpiCurve>> = (0..replicates).map(|_| None).collect();
    std::thread::scope(|scope| {
        let mut handles = Vec::new();
        for t in 0..n_threads {
            let pop = &dist.pop;
            let cfg = cfg.clone();
            let ptts = ptts.clone();
            handles.push((
                t,
                scope.spawn(move || {
                    let mut out = Vec::new();
                    let mut rep = t;
                    while rep < replicates {
                        let mut c = cfg.clone();
                        c.seed = cfg.seed.wrapping_add(rep as u64);
                        out.push((rep, run_sequential(pop, &ptts, &c)));
                        rep += n_threads;
                    }
                    out
                }),
            ));
        }
        for (_, h) in handles {
            for (rep, curve) in h.join().expect("ensemble worker panicked") {
                runs[rep as usize] = Some(curve);
            }
        }
    });
    let runs: Vec<EpiCurve> = runs.into_iter().flatten().collect();

    // Day-wise bands (replicates that ended early contribute zeros, which
    // is the true epidemic state after extinction).
    let horizon = runs.iter().map(|r| r.days.len()).max().unwrap_or(0);
    let mut bands = Vec::with_capacity(horizon);
    for d in 0..horizon {
        let mut new_inf: Vec<u64> = runs
            .iter()
            .map(|r| r.days.get(d).map(|x| x.new_infections).unwrap_or(0))
            .collect();
        let mut inf_now: Vec<u64> = runs
            .iter()
            .map(|r| r.days.get(d).map(|x| x.infected_now).unwrap_or(0))
            .collect();
        new_inf.sort_unstable();
        inf_now.sort_unstable();
        bands.push(DayBand {
            day: d as u32,
            new_infections: (
                quantile_u64(&new_inf, 0.1),
                quantile_u64(&new_inf, 0.5),
                quantile_u64(&new_inf, 0.9),
            ),
            infected_now: (
                quantile_u64(&inf_now, 0.1),
                quantile_u64(&inf_now, 0.5),
                quantile_u64(&inf_now, 0.9),
            ),
        });
    }
    Ensemble { runs, bands }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::distribution::Strategy;
    use ptts::flu_model;
    use synthpop::{Population, PopulationConfig};

    fn setup() -> (DataDistribution, SimConfig) {
        let pop = Population::generate(&PopulationConfig::small("ENS", 1500, 5));
        let dist = DataDistribution::build(&pop, Strategy::RoundRobin, 1, 5);
        let cfg = SimConfig {
            days: 25,
            r: 0.0012,
            seed: 100,
            initial_infections: 3,
            ..Default::default()
        };
        (dist, cfg)
    }

    #[test]
    fn thread_count_does_not_change_results() {
        let (dist, cfg) = setup();
        let ptts = flu_model();
        let a = run_ensemble(&dist, &ptts, &cfg, 8, 1);
        let b = run_ensemble(&dist, &ptts, &cfg, 8, 4);
        assert_eq!(a.runs, b.runs);
        assert_eq!(a.bands, b.bands);
    }

    #[test]
    fn replicates_differ_but_share_structure() {
        let (dist, cfg) = setup();
        let ensemble = run_ensemble(&dist, &flu_model(), &cfg, 6, 2);
        assert_eq!(ensemble.runs.len(), 6);
        // Different seeds → (generically) different totals.
        let totals: std::collections::BTreeSet<u64> =
            ensemble.runs.iter().map(|r| r.total_infections()).collect();
        assert!(totals.len() > 1, "all replicates identical");
        // Bands are ordered quantiles.
        for b in &ensemble.bands {
            assert!(b.new_infections.0 <= b.new_infections.1);
            assert!(b.new_infections.1 <= b.new_infections.2);
        }
    }

    #[test]
    fn quantile_helpers() {
        assert_eq!(quantile_u64(&[], 0.5), 0);
        assert_eq!(quantile_u64(&[7], 0.0), 7);
        assert_eq!(quantile_u64(&[1, 2, 3, 4, 5], 0.5), 3);
        assert_eq!(quantile_u64(&[1, 2, 3, 4, 5], 1.0), 5);
        assert_eq!(quantile_f64(&[0.1, 0.9], 0.0), 0.1);
    }

    #[test]
    fn takeoff_probability_sane() {
        let (dist, cfg) = setup();
        let ensemble = run_ensemble(&dist, &flu_model(), &cfg, 10, 3);
        let p = ensemble.takeoff_probability(0.02);
        assert!((0.0..=1.0).contains(&p));
        // With r = 0.0012 on this town most replicates take off.
        assert!(p >= 0.5, "takeoff probability {p}");
        // Attack-rate quantiles are monotone.
        assert!(ensemble.attack_rate_quantile(0.1) <= ensemble.attack_rate_quantile(0.9));
    }
}
