//! The location DES kernel (§II-B step 3).
//!
//! "Each location constructs a sequential and local DES by converting each
//! visit message into an arrive event and depart event. The DES is
//! executed, computing the interactions between each pair of susceptible
//! and infectious people who are at the location at the same time."
//!
//! People only interact within the same *sublocation* (§III-C), so the
//! sweep runs per sublocation. Exposure is accumulated exactly but in
//! O(E log E) rather than O(pairs): infectivity values are drawn from the
//! finite PTTS state set, so we maintain one cumulative occupancy-time
//! integral per distinct infectivity class; a susceptible's pairwise
//! exposure `Σ_j τ_ij · ln(1 − r·s_i·ι_j)` factors through those class
//! integrals. Infector attribution (rare) falls back to a pairwise pass.

use crate::messages::{InfectMsg, VisitMsg};
use ptts::crng::{CounterRng, Purpose};
use ptts::transmission::select_infector;
use ptts::Ptts;

/// Reusable working memory for [`simulate_location_day`]. One instance per
/// owner (LocationManager chare or sequential driver) serves every location
/// and every day: all buffers grow to the high-water mark once and are then
/// recycled, so the steady-state DES sweep performs no heap allocation.
#[derive(Debug, Default)]
pub struct KernelScratch {
    /// Event list: `(key, visit index)` with `key = t << 1 | is_arrive`,
    /// so departs order before arrives at equal times.
    events: Vec<(u32, u32)>,
    /// Counting-sort output buffer (same layout as `events`).
    sorted: Vec<(u32, u32)>,
    /// Counting-sort bucket offsets, indexed by event key.
    buckets: Vec<u32>,
    /// ∫ count_c dt per infectivity class.
    cit: Vec<f64>,
    /// Infectious currently present, per class.
    present: Vec<u32>,
    /// Per-visit susceptible sweep state for the current sublocation.
    sus_meta: Vec<SusMeta>,
    /// Snapshot arena: `cit` captured at each susceptible arrival, stored
    /// flat with stride `classes.n()` (replaces a per-arrival `Vec` clone).
    snap_arena: Vec<f64>,
    /// Infector-attribution candidates `(visit index, p_j)`.
    cands: Vec<(u32, f64)>,
    /// Candidate probabilities, parallel to `cands`.
    probs: Vec<f64>,
    /// Memo of `(-q_c).ln_1p()` per class for the last `(r_eff, s_i)`
    /// pair; susceptibility is monomorphic in practice, so the transcend
    /// calls amortise to one rebuild per kernel invocation.
    lnq: Vec<f64>,
    /// The `(r_eff, s_i)` key the `lnq` memo was built for.
    lnq_key: (f64, f64),
}

impl KernelScratch {
    /// Fresh scratch; buffers are grown lazily on first use.
    pub fn new() -> Self {
        Self::default()
    }
}

/// Per-visit sweep state of a susceptible currently inside the sublocation.
#[derive(Debug, Clone, Copy)]
struct SusMeta {
    /// Offset of the arrival `cit` snapshot in `snap_arena`
    /// (`u32::MAX` = not a tracked susceptible).
    snap_off: u32,
    /// Infectious present at the moment of arrival.
    present_at_arrive: u32,
    /// Cumulative infectious arrivals seen before this arrival.
    arrivals_at_arrive: u64,
}

impl SusMeta {
    const NONE: SusMeta = SusMeta {
        snap_off: u32::MAX,
        present_at_arrive: 0,
        arrivals_at_arrive: 0,
    };
}

/// A location's day buffer with visits grouped by sublocation at insert
/// time. Groups are kept sorted by sublocation id, so the per-day kernel
/// only has to order *within* each group (by start then person) instead of
/// sorting the whole buffer on a three-field key. Group vectors persist
/// across days ([`VisitBuffer::clear`] keeps capacity), so steady-state
/// inserts never allocate.
#[derive(Debug, Clone, Default)]
pub struct VisitBuffer {
    /// `(sublocation, visits)`, ordered by sublocation id.
    groups: Vec<(u16, Vec<VisitMsg>)>,
    /// Total visits across groups.
    len: usize,
}

impl VisitBuffer {
    /// Empty buffer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Insert one visit into its sublocation's group.
    pub fn push(&mut self, v: VisitMsg) {
        self.len += 1;
        match self.groups.binary_search_by_key(&v.sublocation, |g| g.0) {
            Ok(i) => self.groups[i].1.push(v),
            Err(i) => self.groups.insert(i, (v.sublocation, vec![v])),
        }
    }

    /// Total buffered visits.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the buffer holds no visits.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Drop all visits but keep every group's allocation for the next day.
    pub fn clear(&mut self) {
        for (_, g) in &mut self.groups {
            g.clear();
        }
        self.len = 0;
    }
}

/// Features the dynamic load model consumes (Figure 3b), accumulated per
/// location per day.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct LocationDayFeatures {
    /// Arrive + depart events processed (2 × visits).
    pub events: u64,
    /// Total susceptible×infectious interaction pairs.
    pub interactions: u64,
    /// Σ 1/interactions over occupants with ≥ 1 interaction.
    pub sum_reciprocal_interactions: f64,
}

/// Map PTTS states to dense infectivity classes.
#[derive(Debug, Clone)]
pub struct InfectivityClasses {
    /// Class index per state (`u8::MAX` = not infectious).
    class_of_state: Vec<u8>,
    /// Infectivity per class.
    iota: Vec<f64>,
}

impl InfectivityClasses {
    /// Build from a PTTS.
    pub fn new(ptts: &Ptts) -> Self {
        let mut class_of_state = vec![u8::MAX; ptts.n_states()];
        let mut iota = Vec::new();
        for (s, slot) in class_of_state.iter_mut().enumerate() {
            let inf = ptts.infectivity(ptts::model::StateId(s as u16));
            if inf > 0.0 {
                let class = iota
                    .iter()
                    .position(|&x: &f64| (x - inf).abs() < 1e-12)
                    .unwrap_or_else(|| {
                        iota.push(inf);
                        iota.len() - 1
                    });
                *slot = class as u8;
            }
        }
        InfectivityClasses {
            class_of_state,
            iota,
        }
    }

    /// Number of classes.
    pub fn n(&self) -> usize {
        self.iota.len()
    }

    #[inline]
    fn class(&self, state: ptts::model::StateId) -> Option<usize> {
        let c = self.class_of_state[state.0 as usize];
        (c != u8::MAX).then_some(c as usize)
    }
}

/// Run one location's DES for one day over a flat visit slice.
///
/// `visits` is the day's buffer (any order — it is sorted internally, so
/// results are independent of message arrival order). Returns the infect
/// messages and the load-model features. `r_eff` is the effective
/// per-minute transmissibility. `scratch` supplies all working memory; a
/// reused instance makes the sweep allocation-free in steady state.
#[allow(clippy::too_many_arguments)]
#[simlint_macros::hot_path]
pub fn simulate_location_day(
    visits: &mut [VisitMsg],
    ptts: &Ptts,
    classes: &InfectivityClasses,
    r_eff: f64,
    seed: u64,
    day: u32,
    scratch: &mut KernelScratch,
    out: &mut Vec<InfectMsg>,
) -> LocationDayFeatures {
    let mut features = LocationDayFeatures {
        events: 2 * visits.len() as u64,
        ..Default::default()
    };
    if visits.is_empty() {
        return features;
    }
    // Fast path: with no infectious visitor the sweep provably produces
    // no interactions and no infections — `features` already holds its
    // final value. One O(n) scan replaces the sort + event sweep, and
    // over a whole epidemic most location-days take this exit.
    if !visits.iter().any(|v| classes.class(v.state).is_some()) {
        return features;
    }
    // Deterministic order: by sublocation, then start, then person — one
    // u64 key (16+16+32 bits) so the sort compares single integers.
    visits.sort_unstable_by_key(visit_key);

    let mut lo = 0usize;
    while lo < visits.len() {
        let subloc = visits[lo].sublocation;
        let mut hi = lo + 1;
        while hi < visits.len() && visits[hi].sublocation == subloc {
            hi += 1;
        }
        let range = &visits[lo..hi];
        if !range.iter().any(|v| classes.class(v.state).is_some()) {
            lo = hi;
            continue;
        }
        simulate_sublocation(
            range,
            ptts,
            classes,
            r_eff,
            seed,
            day,
            scratch,
            out,
            &mut features,
        );
        lo = hi;
    }
    features
}

/// Run one location's DES for one day over a pre-grouped [`VisitBuffer`].
///
/// Semantically identical to [`simulate_location_day`] on the same visits:
/// the buffer already holds groups in ascending sublocation order, so only
/// the (start, person) order within each group remains to be established.
#[allow(clippy::too_many_arguments)]
#[simlint_macros::hot_path]
pub fn simulate_location_day_grouped(
    buf: &mut VisitBuffer,
    ptts: &Ptts,
    classes: &InfectivityClasses,
    r_eff: f64,
    seed: u64,
    day: u32,
    scratch: &mut KernelScratch,
    out: &mut Vec<InfectMsg>,
) -> LocationDayFeatures {
    let mut features = LocationDayFeatures {
        events: 2 * buf.len as u64,
        ..Default::default()
    };
    for (_, group) in &mut buf.groups {
        if group.is_empty() {
            continue;
        }
        // Same fast path as the flat entry point: a group without an
        // infectious visitor contributes nothing beyond its (already
        // counted) events.
        if !group.iter().any(|v| classes.class(v.state).is_some()) {
            continue;
        }
        group.sort_unstable_by_key(|v| ((v.start_min as u64) << 32) | v.person as u64);
        simulate_sublocation(
            group,
            ptts,
            classes,
            r_eff,
            seed,
            day,
            scratch,
            out,
            &mut features,
        );
    }
    features
}

#[inline]
fn visit_key(v: &VisitMsg) -> u64 {
    ((v.sublocation as u64) << 48) | ((v.start_min as u64) << 32) | v.person as u64
}

/// Sweep events of one sublocation (visits already in canonical order).
#[allow(clippy::too_many_arguments)]
#[simlint_macros::hot_path]
fn simulate_sublocation(
    visits: &[VisitMsg],
    ptts: &Ptts,
    classes: &InfectivityClasses,
    r_eff: f64,
    seed: u64,
    day: u32,
    scratch: &mut KernelScratch,
    out: &mut Vec<InfectMsg>,
    features: &mut LocationDayFeatures,
) {
    let ncls = classes.n();
    let KernelScratch {
        events,
        sorted,
        buckets,
        cit,
        present,
        sus_meta,
        snap_arena,
        cands,
        probs,
        lnq,
        lnq_key,
    } = scratch;

    // Event list: key = t << 1 | is_arrive, so at equal times departs sort
    // before arrives and zero-overlap pairs don't interact. Pushed in visit
    // order, which is the tie-break the sorts below preserve.
    events.clear();
    let mut max_key = 0u32;
    let mut total_inf_arrivals = 0u64;
    for (i, v) in visits.iter().enumerate() {
        if v.end_min <= v.start_min {
            continue;
        }
        if classes.class(v.state).is_some() {
            total_inf_arrivals += 1;
        }
        let arrive = ((v.start_min as u32) << 1) | 1;
        let depart = (v.end_min as u32) << 1;
        events.push((arrive, i as u32)); // simlint: allow(R6) -- reused scratch: events reaches steady-state capacity after the first day; allocs/day gated by BENCH_hotpath
        events.push((depart, i as u32)); // simlint: allow(R6) -- reused scratch: events reaches steady-state capacity after the first day; allocs/day gated by BENCH_hotpath
        max_key = max_key.max(depart).max(arrive);
    }
    // Order events by key with push-order tie-break. Counting sort is O(n +
    // buckets) and branch-free, but zeroing the bucket array dominates for
    // sparse sublocations — fall back to a comparison sort on the identical
    // total order (key, then push index = visit index) when buckets would
    // outnumber events 4:1.
    let nbuckets = max_key as usize + 1;
    let ordered: &[(u32, u32)] = if events.is_empty() {
        events
    } else if nbuckets <= 4 * events.len() {
        buckets.clear();
        buckets.resize(nbuckets, 0); // simlint: allow(R6) -- reused scratch: counting-sort buckets sized to the day's max key, capacity reused across invocations
        for &(k, _) in events.iter() {
            buckets[k as usize] += 1;
        }
        let mut acc = 0u32;
        for b in buckets.iter_mut() {
            let c = *b;
            *b = acc;
            acc += c;
        }
        sorted.clear();
        sorted.resize(events.len(), (0, 0)); // simlint: allow(R6) -- reused scratch: sorted buffer tracks events.len(), capacity reused across invocations
        for &(k, vi) in events.iter() {
            let slot = &mut buckets[k as usize];
            sorted[*slot as usize] = (k, vi);
            *slot += 1;
        }
        sorted
    } else {
        // Arrive and depart keys of one visit differ, and within one key
        // class visit indices are unique, so (key, vi) reproduces the
        // stable counting order exactly.
        events.sort_unstable_by_key(|&(k, vi)| ((k as u64) << 32) | vi as u64);
        events
    };

    // Sweep state.
    cit.clear();
    cit.resize(ncls, 0.0); // simlint: allow(R6) -- reused scratch: per-class intensity table, ncls is fixed for a run
    present.clear();
    present.resize(ncls, 0); // simlint: allow(R6) -- reused scratch: per-class presence counters, ncls is fixed for a run
    sus_meta.clear();
    sus_meta.resize(visits.len(), SusMeta::NONE); // simlint: allow(R6) -- reused scratch: per-visit metadata tracks visits.len(), capacity reused across invocations
    snap_arena.clear();
    let mut arrivals = 0u64; // cumulative infectious arrivals (all classes)
    let mut last_t = 0u16;

    for &(key, vi) in ordered {
        let t = (key >> 1) as u16;
        let is_arrive = key & 1 == 1;
        // Advance integrals to t.
        let dt = (t - last_t) as f64;
        if dt > 0.0 {
            for (citc, &pres) in cit.iter_mut().zip(present.iter()) {
                *citc += pres as f64 * dt;
            }
            last_t = t;
        }
        let v = &visits[vi as usize];
        let v_class = classes.class(v.state);
        if is_arrive {
            // Skip the snapshot when no infectious is present and none will
            // ever arrive again: encounters and every class integral delta
            // are provably zero, so the departure-side resolve is a no-op.
            if ptts.is_susceptible(v.state)
                && v.sus_scale > 0.0
                && !(arrivals == total_inf_arrivals && present.iter().all(|&p| p == 0))
            {
                sus_meta[vi as usize] = SusMeta {
                    snap_off: snap_arena.len() as u32,
                    present_at_arrive: present.iter().sum(),
                    arrivals_at_arrive: arrivals,
                };
                snap_arena.extend_from_slice(cit); // simlint: allow(R6) -- reused scratch: snapshot arena grows to the worst sublocation-day once, then recycles
            }
            if let Some(c) = v_class {
                present[c] += 1;
                arrivals += 1;
            }
        } else {
            if let Some(c) = v_class {
                present[c] -= 1;
            }
            let meta = std::mem::replace(&mut sus_meta[vi as usize], SusMeta::NONE);
            if meta.snap_off != u32::MAX {
                let off = meta.snap_off as usize;
                resolve_susceptible(
                    v,
                    &meta,
                    &snap_arena[off..off + ncls],
                    cit,
                    arrivals,
                    visits,
                    ptts,
                    classes,
                    r_eff,
                    seed,
                    day,
                    cands,
                    probs,
                    lnq,
                    lnq_key,
                    out,
                    features,
                );
            }
        }
    }
}

/// At a susceptible's departure: compute exposure, draw infection, and if
/// infected, attribute an infector. `cit_at_arrive` is the arena slice
/// captured at arrival; `cands`/`probs` are reused scratch vectors.
#[allow(clippy::too_many_arguments)]
#[simlint_macros::hot_path]
fn resolve_susceptible(
    v: &VisitMsg,
    meta: &SusMeta,
    cit_at_arrive: &[f64],
    cit: &[f64],
    arrivals_now: u64,
    visits: &[VisitMsg],
    ptts: &Ptts,
    classes: &InfectivityClasses,
    r_eff: f64,
    seed: u64,
    day: u32,
    cands: &mut Vec<(u32, f64)>,
    probs: &mut Vec<f64>,
    lnq: &mut Vec<f64>,
    lnq_key: &mut (f64, f64),
    out: &mut Vec<InfectMsg>,
    features: &mut LocationDayFeatures,
) {
    let s_i = ptts.susceptibility(v.state) * v.sus_scale as f64;
    // Interaction count: infectious present at arrival + infectious
    // arrivals during the stay (exact count of overlapping intervals,
    // minus self if this visit is also infectious).
    let mut encounters = meta.present_at_arrive as u64 + (arrivals_now - meta.arrivals_at_arrive);
    let self_class = classes.class(v.state);
    if self_class.is_some() {
        encounters = encounters.saturating_sub(1);
    }
    features.interactions += encounters;
    if encounters > 0 {
        features.sum_reciprocal_interactions += 1.0 / encounters as f64;
    }

    // Exposure: log-escape via class integrals. The `(-q).ln_1p()` factors
    // depend only on `(r_eff, s_i, class)`; susceptibility is monomorphic
    // in practice, so the memo reduces the transcendental calls to one
    // rebuild per kernel invocation. `lnq[c]` is exactly the value the
    // un-memoised expression produces, so results are bit-identical.
    if lnq.len() != classes.n() || *lnq_key != (r_eff, s_i) {
        lnq.clear();
        // simlint: allow(R6) -- reused scratch: memoised log-q table, rebuilt only when (r_eff, s_i) changes
        lnq.extend(classes.iota.iter().map(|&iota| {
            let q = (r_eff * s_i * iota).clamp(0.0, 1.0 - 1e-12);
            if q > 0.0 {
                (-q).ln_1p()
            } else {
                0.0
            }
        }));
        *lnq_key = (r_eff, s_i);
    }
    let mut log_escape = 0.0f64;
    #[allow(clippy::needless_range_loop)] // c indexes three parallel arrays
    for c in 0..classes.n() {
        let mut tau = cit[c] - cit_at_arrive[c];
        if Some(c) == self_class {
            // Exclude self-exposure.
            tau -= (v.end_min - v.start_min) as f64;
        }
        if tau <= 0.0 {
            continue;
        }
        // Adding `tau * 0.0` for a zero-q class leaves the sum unchanged,
        // matching the original `if q > 0.0` guard exactly.
        log_escape += tau * lnq[c];
    }
    if log_escape == 0.0 {
        // exp(0) = 1 exactly, so p would be 0 — skip the exp.
        return;
    }
    let p = 1.0 - log_escape.exp();
    if p <= 0.0 {
        return;
    }
    let mut rng = CounterRng::from_key(&[
        seed,
        v.person as u64,
        day as u64,
        Purpose::Infection as u64,
        v.start_min as u64,
    ]);
    if !rng.bernoulli(p) {
        return;
    }
    // Attribute an infector: pairwise pass over overlapping infectious
    // visits in this sublocation (visits slice is the sublocation group).
    cands.clear();
    for (j, w) in visits.iter().enumerate() {
        if w.person == v.person && w.start_min == v.start_min {
            continue;
        }
        let Some(c) = classes.class(w.state) else {
            continue;
        };
        let overlap =
            (v.end_min.min(w.end_min) as i32 - v.start_min.max(w.start_min) as i32).max(0) as f64;
        if overlap > 0.0 {
            let q = (r_eff * s_i * classes.iota[c]).clamp(0.0, 1.0 - 1e-12);
            let p_j = 1.0 - (overlap * (-q).ln_1p()).exp();
            cands.push((j as u32, p_j)); // simlint: allow(R6) -- reused scratch: candidate list reaches the worst overlap count once, then recycles
        }
    }
    let infector = if cands.is_empty() {
        u32::MAX
    } else {
        probs.clear();
        probs.extend(cands.iter().map(|&(_, p)| p)); // simlint: allow(R6) -- reused scratch: probability buffer mirrors cands, capacity reused
        match select_infector(probs, rng.uniform_f64()) {
            Some(i) => visits[cands[i].0 as usize].person,
            None => u32::MAX,
        }
    };
    // simlint: allow(R6) -- reused scratch: output queue drained by the caller each step, capacity reused
    out.push(InfectMsg {
        person: v.person,
        time_min: v.start_min,
        infector,
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use ptts::flu_model;
    use ptts::model::StateId;

    fn visit(person: u32, state: StateId, start: u16, end: u16, subloc: u16) -> VisitMsg {
        VisitMsg {
            person,
            location: 0,
            sublocation: subloc,
            start_min: start,
            end_min: end,
            state,
            sus_scale: 1.0,
        }
    }

    fn run(visits: &mut [VisitMsg], r: f64) -> (Vec<InfectMsg>, LocationDayFeatures) {
        let ptts = flu_model();
        let classes = InfectivityClasses::new(&ptts);
        let mut out = Vec::new();
        let mut scratch = KernelScratch::new();
        let f = simulate_location_day(visits, &ptts, &classes, r, 42, 0, &mut scratch, &mut out);
        (out, f)
    }

    fn sus(ptts: &Ptts) -> StateId {
        ptts.state_by_name("susceptible").unwrap()
    }
    fn sym(ptts: &Ptts) -> StateId {
        ptts.state_by_name("symptomatic").unwrap()
    }

    #[test]
    fn classes_built_from_flu() {
        let ptts = flu_model();
        let c = InfectivityClasses::new(&ptts);
        // incubating 0.25, symptomatic 1.0, asymptomatic 0.5.
        assert_eq!(c.n(), 3);
    }

    #[test]
    fn empty_location_no_events() {
        let (out, f) = run(&mut Vec::new(), 0.01);
        assert!(out.is_empty());
        assert_eq!(f.events, 0);
    }

    #[test]
    fn no_transmission_without_infectious() {
        let p = flu_model();
        let mut vs = vec![visit(1, sus(&p), 0, 100, 0), visit(2, sus(&p), 50, 150, 0)];
        let (out, f) = run(&mut vs, 1.0);
        assert!(out.is_empty());
        assert_eq!(f.events, 4);
        assert_eq!(f.interactions, 0);
    }

    #[test]
    fn certain_transmission_with_r_one() {
        let p = flu_model();
        let mut vs = vec![visit(1, sus(&p), 0, 600, 0), visit(2, sym(&p), 0, 600, 0)];
        let (out, f) = run(&mut vs, 1.0);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].person, 1);
        assert_eq!(out[0].infector, 2);
        assert_eq!(f.interactions, 1);
    }

    #[test]
    fn no_interaction_across_sublocations() {
        let p = flu_model();
        let mut vs = vec![
            visit(1, sus(&p), 0, 600, 0),
            visit(2, sym(&p), 0, 600, 1), // different room
        ];
        let (out, f) = run(&mut vs, 1.0);
        assert!(out.is_empty());
        assert_eq!(f.interactions, 0);
    }

    #[test]
    fn no_interaction_without_time_overlap() {
        let p = flu_model();
        let mut vs = vec![
            visit(1, sus(&p), 0, 100, 0),
            visit(2, sym(&p), 100, 400, 0), // back-to-back, zero overlap
        ];
        let (out, f) = run(&mut vs, 1.0);
        assert!(out.is_empty());
        assert_eq!(f.interactions, 0);
    }

    #[test]
    fn interaction_counts_are_pairwise_exact() {
        let p = flu_model();
        // Two infectious overlap one susceptible; one infectious arrives
        // during the stay, one is present beforehand.
        let mut vs = vec![
            visit(1, sus(&p), 100, 300, 0),
            visit(2, sym(&p), 0, 200, 0),   // present at arrival
            visit(3, sym(&p), 150, 400, 0), // arrives during stay
            visit(4, sym(&p), 350, 500, 0), // after departure — no overlap
        ];
        let (_, f) = run(&mut vs, 0.0001);
        assert_eq!(f.interactions, 2);
        assert!((f.sum_reciprocal_interactions - 0.5).abs() < 1e-12);
    }

    #[test]
    fn probability_matches_closed_form() {
        // Single pair, moderate r: empirical infection rate over many
        // persons ≈ 1 − (1−r·s·ι)^τ.
        let p = flu_model();
        let classes = InfectivityClasses::new(&p);
        let r = 0.002;
        let tau = 120u16;
        let n = 4000u32;
        let mut infected = 0;
        for person in 0..n {
            let mut vs = vec![
                visit(person, sus(&p), 0, tau, 0),
                visit(1_000_000, sym(&p), 0, tau, 0),
            ];
            let mut out = Vec::new();
            let mut scratch = KernelScratch::new();
            simulate_location_day(&mut vs, &p, &classes, r, 7, 3, &mut scratch, &mut out);
            infected += out.len();
        }
        let expected = 1.0 - (1.0f64 - r).powf(tau as f64);
        let got = infected as f64 / n as f64;
        assert!(
            (got - expected).abs() < 0.02,
            "empirical {got} vs closed form {expected}"
        );
    }

    #[test]
    fn exposure_independent_of_visit_order() {
        let p = flu_model();
        let mut a = vec![
            visit(1, sus(&p), 0, 300, 0),
            visit(2, sym(&p), 100, 200, 0),
            visit(3, sym(&p), 50, 250, 0),
        ];
        let mut b = a.clone();
        b.reverse();
        let (out_a, fa) = run(&mut a, 0.01);
        let (out_b, fb) = run(&mut b, 0.01);
        assert_eq!(out_a, out_b);
        assert_eq!(fa, fb);
    }

    #[test]
    fn vaccinated_scale_reduces_probability() {
        let p = flu_model();
        let classes = InfectivityClasses::new(&p);
        let count = |scale: f32| {
            let mut infected = 0;
            for person in 0..3000u32 {
                let mut vs = vec![
                    VisitMsg {
                        sus_scale: scale,
                        ..visit(person, sus(&p), 0, 200, 0)
                    },
                    visit(9_999_999, sym(&p), 0, 200, 0),
                ];
                let mut out = Vec::new();
                let mut scratch = KernelScratch::new();
                simulate_location_day(&mut vs, &p, &classes, 0.003, 11, 1, &mut scratch, &mut out);
                infected += out.len();
            }
            infected
        };
        let unvaxed = count(1.0);
        let vaxed = count(0.2);
        assert!(
            (vaxed as f64) < 0.55 * unvaxed as f64,
            "vaxed {vaxed} vs unvaxed {unvaxed}"
        );
        assert_eq!(count(0.0), 0, "perfect vaccine blocks everything");
    }

    #[test]
    fn multiple_infectious_raise_risk() {
        let p = flu_model();
        let classes = InfectivityClasses::new(&p);
        let count = |n_inf: u32| {
            let mut infected = 0;
            for person in 0..3000u32 {
                let mut vs = vec![visit(person, sus(&p), 0, 100, 0)];
                for j in 0..n_inf {
                    vs.push(visit(1_000_000 + j, sym(&p), 0, 100, 0));
                }
                let mut out = Vec::new();
                let mut scratch = KernelScratch::new();
                simulate_location_day(&mut vs, &p, &classes, 0.002, 13, 2, &mut scratch, &mut out);
                infected += out.len();
            }
            infected
        };
        let one = count(1);
        let four = count(4);
        assert!(four > one, "4 infectious {four} vs 1 infectious {one}");
    }

    #[test]
    fn infector_attribution_prefers_longer_overlap() {
        let p = flu_model();
        let classes = InfectivityClasses::new(&p);
        let mut by_infector = std::collections::BTreeMap::new();
        for person in 0..4000u32 {
            let mut vs = vec![
                visit(person, sus(&p), 0, 400, 0),
                visit(77, sym(&p), 0, 400, 0),   // full overlap
                visit(88, sym(&p), 380, 400, 0), // 20 minutes
            ];
            let mut out = Vec::new();
            let mut scratch = KernelScratch::new();
            simulate_location_day(&mut vs, &p, &classes, 0.01, 17, 5, &mut scratch, &mut out);
            for i in out {
                *by_infector.entry(i.infector).or_insert(0u32) += 1;
            }
        }
        let c77 = by_infector.get(&77).copied().unwrap_or(0);
        let c88 = by_infector.get(&88).copied().unwrap_or(0);
        assert!(c77 > 10 * c88.max(1), "77:{c77} 88:{c88}");
    }

    #[test]
    fn deterministic_given_seed() {
        let p = flu_model();
        let mk = || {
            vec![
                visit(1, sus(&p), 0, 300, 0),
                visit(2, sym(&p), 0, 300, 0),
                visit(3, sus(&p), 100, 250, 0),
                visit(4, sym(&p), 120, 260, 0),
            ]
        };
        let (a, _) = run(&mut mk(), 0.004);
        let (b, _) = run(&mut mk(), 0.004);
        assert_eq!(a, b);
    }
}
