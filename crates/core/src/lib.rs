//! # episim-core — the EpiSimdemics contagion simulator
//!
//! The paper's primary contribution (Yeom et al., IPDPS 2014): an
//! agent-based contagion simulator over person–location bipartite graphs,
//! implemented message-driven on the `chare-rt` runtime, with the §III
//! scalability machinery — application-specific workload modeling,
//! multi-constraint graph partitioning, and heavy-location splitting
//! (splitLoc).
//!
//! The per-day algorithm (§II-B):
//!
//! 1. **Person phase** — every person recalculates their health state (a
//!    PTTS step), reacts to interventions, and sends a *visit* message to
//!    every location they will visit today.
//! 2. Completion detection (receivers don't know how many messages to
//!    expect).
//! 3. **Location phase** — every location builds a local DES from the
//!    arrive/depart events, computes susceptible×infectious interactions,
//!    and sends *infect* messages.
//! 4. Completion detection again.
//! 5. **Apply phase** — infected persons update their health state; global
//!    counts reduce to the driver.
//!
//! Modules:
//! * [`messages`] — the visit/infect message types and phase controls.
//! * [`kernel`] — the location DES: class-binned exposure integrals, the
//!   Barrett transmission function, infector attribution.
//! * [`person`] — person-side scheduling (health + interventions).
//! * [`managers`] — PersonManager / LocationManager chares (§II-C's
//!   two-level hierarchical data distribution).
//! * [`splitloc`] — §III-C's heavy-location splitting preprocessor.
//! * [`workload`] — the 2-constraint partitioner input graph (§III-A).
//! * [`distribution`] — the four data distributions of the evaluation:
//!   `RR`, `GP`, `RR-splitLoc`, `GP-splitLoc`.
//! * [`simulator`] — the parallel driver (day loop over runtime phases).
//! * [`engine`] — engine selection (`--engine seq|threads|vt|net`) and the
//!   block partition→PE placement.
//! * [`rebalance`] — measurement-based dynamic load balancing between
//!   epochs (the paper's §VII future work, implemented).
//! * [`seq`] — a direct sequential implementation used as the correctness
//!   oracle for the parallel one.
//! * [`checkpoint`] — save/restore a simulation mid-run (restart is
//!   bit-exact).
//! * [`ensemble`] — the copy-on-write ensemble engine: whole-run
//!   parallelism over one `Arc`-shared world, parameter sweeps, quantile
//!   bands, and the FastSIR-style surrogate screen (DESIGN.md §11).
//! * [`tree`] — transmission-tree analytics (R_t, generation intervals,
//!   offspring distribution).
//! * [`output`] — epidemic curves and TSV rendering.

pub mod checkpoint;
pub mod distribution;
pub mod engine;
pub mod ensemble;
pub mod kernel;
pub mod managers;
pub mod messages;
pub mod output;
pub mod person;
pub mod rebalance;
pub mod resilient;
pub mod seq;
pub mod simulator;
pub mod splitloc;
pub mod tree;
pub mod workload;

pub use distribution::{DataDistribution, Strategy};
pub use engine::{pe_for_partition, EngineChoice};
pub use ensemble::{
    run_ensemble, run_sweep, CowWorld, Ensemble, EnsembleSpec, MemberArena, ParamPoint, ResultStore,
};
pub use output::{DayStats, EpiCurve};
pub use rebalance::{run_with_rebalancing, RebalanceConfig, RebalanceRun};
pub use resilient::{run_resilient, RecoveryConfig, ResilientRun};
pub use simulator::{DayControl, ResumeError, Resumed, RunHalt, SimConfig, Simulator};
pub use splitloc::{split_heavy_locations, SplitConfig, SplitResult};
pub use tree::{transmission_stats, TransmissionStats};
pub use workload::build_workload_graph;

/// The names most programs need.
pub mod prelude {
    pub use crate::distribution::{DataDistribution, Strategy};
    pub use crate::output::{DayStats, EpiCurve};
    pub use crate::simulator::{SimConfig, Simulator};
    pub use crate::splitloc::{split_heavy_locations, SplitConfig};
}
