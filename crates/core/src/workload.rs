//! Building the partitioner input graph (§III-A).
//!
//! Vertices are persons followed by locations; each vertex carries a
//! 2-element weight vector — one balance constraint per computation phase:
//!
//! * constraint 0 (person phase): person load = number of visit messages
//!   generated ("no significant variance"); locations weigh 0.
//! * constraint 1 (location phase): location load = the piecewise static
//!   model evaluated at the location's event count; persons weigh 0.
//!
//! Edges connect persons to the locations they visit, weighted by the
//! number of daily visits (= messages crossing that edge).

use graph_part::{CsrGraph, GraphBuilder};
use load_model::{LoadUnits, PiecewiseModel};
use synthpop::Population;

/// Index helpers tying graph vertices back to persons/locations.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WorkloadLayout {
    /// Number of person vertices (ids `0..n_people`).
    pub n_people: u32,
    /// Number of location vertices (ids `n_people..n_people+n_locations`).
    pub n_locations: u32,
}

impl WorkloadLayout {
    /// Graph vertex of a person.
    #[inline]
    pub fn person_vertex(&self, p: u32) -> u32 {
        p
    }

    /// Graph vertex of a location.
    #[inline]
    pub fn location_vertex(&self, l: u32) -> u32 {
        self.n_people + l
    }

    /// Total vertices.
    pub fn n_vertices(&self) -> u32 {
        self.n_people + self.n_locations
    }
}

/// Build the 2-constraint workload graph for a population.
pub fn build_workload_graph(
    pop: &Population,
    model: &PiecewiseModel,
    units: LoadUnits,
) -> (CsrGraph, WorkloadLayout) {
    let layout = WorkloadLayout {
        n_people: pop.n_people(),
        n_locations: pop.n_locations(),
    };
    let mut b = GraphBuilder::new(layout.n_vertices(), 2);

    // Location event counts (2 per visit).
    let mut events = vec![0u64; pop.locations.len()];
    for v in &pop.visits {
        events[v.location.0 as usize] += 2;
    }

    // Person weights: visit counts.
    for p in 0..pop.n_people() {
        let visits = pop.person_offsets[p as usize + 1] - pop.person_offsets[p as usize];
        b.set_vwgt(layout.person_vertex(p), &[visits.max(1) as u64, 0]);
    }
    // Location weights: static model.
    for l in 0..pop.n_locations() {
        let load = model.eval_units(events[l as usize] as f64, units.per_second);
        b.set_vwgt(layout.location_vertex(l), &[0, load]);
    }
    // Edges: one per (person, location) pair, weight = visit count.
    // Visits are sorted by person, so same-pair visits may not be adjacent;
    // GraphBuilder merges duplicates.
    for v in &pop.visits {
        b.add_edge(
            layout.person_vertex(v.person.0),
            layout.location_vertex(v.location.0),
            1,
        );
    }
    (b.build(), layout)
}

/// The per-location static loads used for Table II / Figures 4–8 (the
/// location side of constraint 1).
pub fn location_static_loads(
    pop: &Population,
    model: &PiecewiseModel,
    units: LoadUnits,
) -> Vec<u64> {
    let mut events = vec![0u64; pop.locations.len()];
    for v in &pop.visits {
        events[v.location.0 as usize] += 2;
    }
    events
        .iter()
        .map(|&e| model.eval_units(e as f64, units.per_second))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use synthpop::PopulationConfig;

    fn setup() -> (Population, CsrGraph, WorkloadLayout) {
        let pop = Population::generate(&PopulationConfig::small("T", 2000, 9));
        let (g, layout) = build_workload_graph(
            &pop,
            &PiecewiseModel::paper_constants(),
            LoadUnits::default(),
        );
        (pop, g, layout)
    }

    #[test]
    fn graph_is_bipartite_sized() {
        let (pop, g, layout) = setup();
        assert_eq!(g.n(), pop.n_people() + pop.n_locations());
        assert_eq!(layout.n_vertices(), g.n());
        assert_eq!(g.ncon(), 2);
        g.validate().unwrap();
    }

    #[test]
    fn constraints_are_disjoint() {
        let (pop, g, layout) = setup();
        for p in 0..pop.n_people() {
            let w = g.vwgts(layout.person_vertex(p));
            assert!(w[0] > 0);
            assert_eq!(w[1], 0);
        }
        for l in 0..pop.n_locations() {
            let w = g.vwgts(layout.location_vertex(l));
            assert_eq!(w[0], 0);
        }
    }

    #[test]
    fn person_constraint_totals_visits() {
        let (pop, g, _) = setup();
        let totals = g.total_weights();
        assert_eq!(totals[0], pop.n_visits());
    }

    #[test]
    fn edges_only_cross_the_bipartition() {
        let (_, g, layout) = setup();
        for v in 0..g.n() {
            let v_is_person = v < layout.n_people;
            for (u, _) in g.neighbors(v) {
                let u_is_person = u < layout.n_people;
                assert_ne!(v_is_person, u_is_person, "edge within one side");
            }
        }
    }

    #[test]
    fn edge_weight_counts_visits() {
        let (pop, g, layout) = setup();
        // Total edge weight = number of visits (each visit contributes 1).
        assert_eq!(g.total_edge_weight(), pop.n_visits());
        // A person with two home visits has a weight-2 edge to home.
        let home = pop.people[0].home.0;
        let w = g
            .neighbors(layout.person_vertex(0))
            .find(|&(u, _)| u == layout.location_vertex(home))
            .map(|(_, w)| w)
            .unwrap();
        assert!(w >= 2, "home edge weight {w}");
    }

    #[test]
    fn heavy_location_heavy_weight() {
        let (pop, g, layout) = setup();
        // The heaviest-degree location gets the largest constraint-1 weight.
        let mut deg = vec![0u64; pop.locations.len()];
        for v in &pop.visits {
            deg[v.location.0 as usize] += 1;
        }
        let dmax_l = (0..deg.len()).max_by_key(|&l| deg[l]).unwrap() as u32;
        let wmax_l = (0..pop.n_locations())
            .max_by_key(|&l| g.vwgt(layout.location_vertex(l), 1))
            .unwrap();
        assert_eq!(dmax_l, wmax_l);
    }

    #[test]
    fn static_loads_match_graph_weights() {
        let (pop, g, layout) = setup();
        let loads = location_static_loads(
            &pop,
            &PiecewiseModel::paper_constants(),
            LoadUnits::default(),
        );
        for l in 0..pop.n_locations() {
            assert_eq!(loads[l as usize], g.vwgt(layout.location_vertex(l), 1));
        }
    }
}
