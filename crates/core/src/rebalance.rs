//! Measurement-driven dynamic load balancing — the paper's §VII plan,
//! implemented.
//!
//! "The work load in EpiSimdemics contains both deterministic and
//! non-deterministic portions. … Our plan is to address the dynamism by the
//! application-specific prediction of work load. The goal is to avoid
//! incurring excessive overhead by initiating LB phases without a
//! sufficient gain in performance … by using application-specific
//! information."
//!
//! The runner splits the simulation into epochs. After each epoch it reads
//! the *measured* per-location dynamic features (events and interactions,
//! accumulated by every LocationManager), estimates each location's dynamic
//! load, and — only when the measured imbalance exceeds a threshold
//! (avoiding gainless LB phases, per the quote) — re-partitions the
//! workload graph with the measured loads and migrates person/location
//! objects to their new homes. Migration is exact: person health states
//! carry over, so **rebalancing never changes the epidemic**, a property
//! the tests assert bit-for-bit.

use crate::distribution::DataDistribution;
use crate::kernel::LocationDayFeatures;
use crate::output::EpiCurve;
use crate::simulator::{Carry, SimConfig, SimRun, Simulator};
use chare_rt::RuntimeConfig;
use graph_part::{kway_partition, GraphBuilder, PartitionConfig};
use ptts::Ptts;

/// Rebalancing parameters.
#[derive(Debug, Clone, Copy)]
pub struct RebalanceConfig {
    /// Days per epoch (the LB decision cadence).
    pub epoch_days: u32,
    /// Re-partition only when `max/avg` measured location load exceeds
    /// this (§VII: skip LB phases "without a sufficient gain").
    pub imbalance_threshold: f64,
}

impl Default for RebalanceConfig {
    fn default() -> Self {
        RebalanceConfig {
            epoch_days: 10,
            imbalance_threshold: 1.15,
        }
    }
}

/// What happened at one epoch boundary.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EpochReport {
    /// Epoch index (0-based).
    pub epoch: u32,
    /// First simulated day of the epoch.
    pub start_day: u32,
    /// Days actually simulated in the epoch.
    pub days: u32,
    /// Measured dynamic-load imbalance (max/avg over partitions) during
    /// the epoch.
    pub imbalance: f64,
    /// Whether the runner re-partitioned afterwards.
    pub repartitioned: bool,
}

/// A rebalanced run: the (unchanged) epidemic plus the LB decision log.
#[derive(Debug, Clone)]
pub struct RebalanceRun {
    /// Day-by-day results, identical to a run without rebalancing.
    pub run: SimRun,
    /// One report per epoch.
    pub epochs: Vec<EpochReport>,
}

/// Estimate a location's dynamic load from its measured features. Events
/// dominate; interactions add the transmission-computation term (the same
/// two leading features as the paper's Figure 3b model).
pub fn dynamic_load(f: &LocationDayFeatures) -> u64 {
    f.events + 2 * f.interactions
}

/// Measured imbalance of per-location loads under an assignment.
pub fn measured_imbalance(loads: &[u64], assignment: &[u32], k: u32) -> f64 {
    let mut per_part = vec![0u64; k as usize];
    for (&l, &p) in loads.iter().zip(assignment) {
        per_part[p as usize] += l;
    }
    let total: u64 = per_part.iter().sum();
    if total == 0 {
        return 1.0;
    }
    let avg = total as f64 / k as f64;
    per_part.iter().copied().max().unwrap_or(0) as f64 / avg
}

/// Re-partition the workload graph using measured location loads for the
/// location-phase constraint.
fn repartition(dist: &DataDistribution, measured: &[u64], seed: u64) -> DataDistribution {
    let pop = &dist.pop;
    let n_people = pop.n_people();
    let n_locations = pop.n_locations();
    let mut b = GraphBuilder::new(n_people + n_locations, 2);
    for p in 0..n_people {
        let visits = pop.person_offsets[p as usize + 1] - pop.person_offsets[p as usize];
        b.set_vwgt(p, &[visits.max(1) as u64, 0]);
    }
    for l in 0..n_locations {
        b.set_vwgt(n_people + l, &[0, measured[l as usize].max(1)]);
    }
    for v in &pop.visits {
        b.add_edge(v.person.0, n_people + v.location.0, 1);
    }
    let graph = b.build();
    let part = kway_partition(
        &graph,
        &PartitionConfig::new(dist.k)
            .with_seed(seed)
            .with_ubfactor(1.10),
    );
    let mut new_dist = dist.clone();
    new_dist.person_part = part.assignment[..n_people as usize].to_vec();
    new_dist.location_part = part.assignment[n_people as usize..].to_vec();
    new_dist.quality = None;
    new_dist
}

/// Run the simulation with measurement-based rebalancing between epochs.
pub fn run_with_rebalancing(
    dist: &DataDistribution,
    ptts: Ptts,
    cfg: SimConfig,
    rt_cfg: RuntimeConfig,
    rb: RebalanceConfig,
) -> RebalanceRun {
    let population = dist.pop.n_people() as u64;
    let seeds = cfg.initial_infections.min(dist.pop.n_people()) as u64;
    let mut carry = Carry::new(cfg.interventions.clone(), seeds);
    let mut current = dist.clone();
    let mut states = None;
    let mut all_days = Vec::new();
    let mut all_perf = Vec::new();
    let mut epochs = Vec::new();
    let mut day = 0u32;
    let mut epoch = 0u32;

    while day < cfg.days {
        let end = (day + rb.epoch_days.max(1)).min(cfg.days);
        let mut sim =
            Simulator::with_states(&current, ptts.clone(), cfg.clone(), rt_cfg, states.take());
        let (day_stats, perf, extinct) = sim.run_days(day, end, &mut carry);
        let simulated = day_stats.len() as u32;
        all_days.extend(day_stats);
        all_perf.extend(perf);
        let (new_states, features) = sim.dismantle();

        let loads: Vec<u64> = features.iter().map(dynamic_load).collect();
        let imbalance = measured_imbalance(&loads, &current.location_part, current.k);
        let done = extinct || end >= cfg.days;
        let repartitioned = !done && current.k > 1 && imbalance > rb.imbalance_threshold;
        if repartitioned {
            current = repartition(&current, &loads, cfg.seed.wrapping_add(epoch as u64));
        }
        epochs.push(EpochReport {
            epoch,
            start_day: day,
            days: simulated,
            imbalance,
            repartitioned,
        });
        states = Some(new_states);
        day += simulated.max(1);
        epoch += 1;
        if extinct {
            break;
        }
    }

    RebalanceRun {
        run: SimRun {
            curve: EpiCurve {
                population,
                seeds,
                days: all_days,
            },
            perf: all_perf,
        },
        epochs,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::distribution::Strategy;
    use ptts::flu_model;
    use synthpop::{Population, PopulationConfig};

    fn pop() -> Population {
        Population::generate(&PopulationConfig::small("RB", 3000, 41))
    }

    fn cfg(days: u32) -> SimConfig {
        SimConfig {
            days,
            r: 0.0012,
            seed: 41,
            initial_infections: 10,
            stop_when_extinct: false,
            ..Default::default()
        }
    }

    #[test]
    fn rebalancing_never_changes_the_epidemic() {
        let pop = pop();
        let dist = DataDistribution::build(&pop, Strategy::GraphPartition, 6, 41);
        let plain = Simulator::new(&dist, flu_model(), cfg(30), RuntimeConfig::sequential(3)).run();
        let rb = run_with_rebalancing(
            &dist,
            flu_model(),
            cfg(30),
            RuntimeConfig::sequential(3),
            RebalanceConfig {
                epoch_days: 7,
                imbalance_threshold: 1.0, // force LB every epoch
            },
        );
        assert_eq!(plain.curve, rb.run.curve);
        assert!(rb.epochs.iter().any(|e| e.repartitioned));
        assert_eq!(rb.epochs.len(), 5, "30 days / 7-day epochs");
    }

    #[test]
    fn threshold_suppresses_gainless_lb() {
        let pop = pop();
        let dist = DataDistribution::build(&pop, Strategy::GraphPartition, 4, 41);
        let rb = run_with_rebalancing(
            &dist,
            flu_model(),
            cfg(20),
            RuntimeConfig::sequential(2),
            RebalanceConfig {
                epoch_days: 5,
                imbalance_threshold: 1e9, // nothing is ever this imbalanced
            },
        );
        assert!(rb.epochs.iter().all(|e| !e.repartitioned));
    }

    #[test]
    fn repartitioning_reduces_measured_imbalance() {
        // Start from a deliberately terrible distribution: all locations on
        // one partition. Rebalancing must fix it.
        let pop = pop();
        let mut dist = DataDistribution::build(&pop, Strategy::RoundRobin, 4, 41);
        dist.location_part.iter_mut().for_each(|p| *p = 0);
        let rb = run_with_rebalancing(
            &dist,
            flu_model(),
            cfg(20),
            RuntimeConfig::sequential(2),
            RebalanceConfig {
                epoch_days: 5,
                imbalance_threshold: 1.2,
            },
        );
        let first = &rb.epochs[0];
        let last = rb.epochs.last().unwrap();
        assert!(first.repartitioned, "epoch 0 must trigger LB");
        assert!(
            (first.imbalance - 4.0).abs() < 1e-9,
            "all-on-one imbalance is k"
        );
        assert!(
            last.imbalance < 0.6 * first.imbalance,
            "imbalance {} → {}",
            first.imbalance,
            last.imbalance
        );
    }

    #[test]
    fn epoch_days_larger_than_run() {
        let pop = pop();
        let dist = DataDistribution::build(&pop, Strategy::RoundRobin, 2, 41);
        let rb = run_with_rebalancing(
            &dist,
            flu_model(),
            cfg(5),
            RuntimeConfig::sequential(2),
            RebalanceConfig {
                epoch_days: 100,
                imbalance_threshold: 1.1,
            },
        );
        assert_eq!(rb.epochs.len(), 1);
        assert_eq!(rb.run.curve.days.len(), 5);
        assert!(
            !rb.epochs[0].repartitioned,
            "final epoch never repartitions"
        );
    }

    #[test]
    fn dynamic_load_weighs_interactions() {
        let f = LocationDayFeatures {
            events: 10,
            interactions: 5,
            sum_reciprocal_interactions: 0.0,
        };
        assert_eq!(dynamic_load(&f), 20);
    }

    #[test]
    fn measured_imbalance_bounds() {
        // Perfect balance → 1.0; all-on-one of k=4 → 4.0.
        let loads = [5u64, 5, 5, 5];
        assert!((measured_imbalance(&loads, &[0, 1, 2, 3], 4) - 1.0).abs() < 1e-12);
        assert!((measured_imbalance(&loads, &[0, 0, 0, 0], 4) - 4.0).abs() < 1e-12);
        assert_eq!(measured_imbalance(&[0, 0], &[0, 1], 2), 1.0);
    }
}
