//! Crash-tolerant simulation driver: coordinated checkpointing and
//! rollback recovery on top of [`crate::simulator::Simulator`].
//!
//! The net engine's failure contract is fail-fast: any peer loss (socket
//! EOF, write error, heartbeat timeout, mesh partition) surfaces on the
//! root as a typed [`chare_rt::TransportError`] panic while workers exit
//! with [`chare_rt::TRANSPORT_EXIT`]. This module turns that contract
//! into availability:
//!
//! * **Checkpoint.** Every `every` days — a global quiescence point, no
//!   messages in flight — each rank writes its shard of the simulation
//!   state (its PersonManager blobs plus a rank-identical meta record:
//!   resume day, carry counters, intervention state, and the curve so
//!   far) into a shared [`EpochStore`]. An epoch counts as *committed*
//!   only once every rank's shard exists and CRC-validates, so a crash
//!   mid-checkpoint disqualifies the partial epoch harmlessly.
//! * **Detect.** The heartbeat detector in `net::comm` classifies the
//!   loss (crashed / stalled / partitioned) and aborts the attempt.
//! * **Recover.** The root catches the [`chare_rt::TransportError`]
//!   panic, reaps the surviving workers (engine teardown), sleeps a
//!   jittered exponential [`Backoff`], and relaunches the whole mesh
//!   from the last committed epoch via the ordinary SPMD re-exec path.
//!   Fault-injection knobs are stripped on retries so an injected crash
//!   fires exactly once. After `max_retries` failed respawns the driver
//!   returns [`RecoveryError::Exhausted`] instead of hanging.
//!
//! Workers never iterate the retry loop themselves: each spawned worker
//! joins exactly the attempt it was spawned for
//! ([`chare_rt::align_to_invocation`]) and learns the resume epoch from
//! environment variables the root exports before spawning. Because the
//! meta record is assembled from broadcast phase reductions it is
//! bit-identical on every rank, and because person shards carry explicit
//! person ids the full state table can be reassembled on any rank — the
//! restored run is therefore bit-identical to an undisturbed one (the
//! conformance suite checks the curve hash).

use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::path::{Path, PathBuf};

use bytes::{Buf, BufMut, BytesMut};
use chare_rt::{
    align_to_invocation, worker_target, Backoff, EpochStore, ExecMode, RecoveryError,
    RecoverySnapshot, RuntimeConfig, TransportError,
};
use ptts::intervention::{InterventionSet, InterventionSnapshot};
use ptts::Ptts;

use crate::checkpoint::decode_person_shard;
use crate::distribution::DataDistribution;
use crate::output::{DayStats, EpiCurve};
use crate::person::PersonSlot;
use crate::simulator::{Carry, DayPerf, SimConfig, Simulator};

/// Env var naming the shared checkpoint directory. Exported by the root
/// before spawning workers so every rank of an attempt opens the same
/// [`EpochStore`] (the root's configured directory, not whatever the
/// worker's own config would default to).
pub const ENV_RECOVERY_DIR: &str = "EPISIM_NET_RECOVERY_DIR";
/// Env var carrying the epoch a respawned attempt must resume from.
/// Absent on the first attempt (fresh start).
pub const ENV_RESUME_EPOCH: &str = "EPISIM_NET_RESUME_EPOCH";

/// Knobs for [`run_resilient`].
#[derive(Debug, Clone)]
pub struct RecoveryConfig {
    /// Checkpoint directory, shared by every rank (same filesystem).
    pub dir: PathBuf,
    /// Committed epochs retained on disk (older ones are pruned).
    pub keep: u32,
    /// Checkpoint cadence in days (`1` = after every day).
    pub every: u32,
    /// Respawn attempts after the initial run before giving up.
    pub max_retries: u32,
    /// Base delay of the jittered exponential backoff between respawns.
    pub backoff_base_ms: u64,
    /// Cap on the backoff delay.
    pub backoff_cap_ms: u64,
}

impl RecoveryConfig {
    /// Defaults tuned for the conformance suite: keep 2 epochs,
    /// checkpoint daily, 3 respawns, 50ms..2s backoff.
    pub fn new(dir: impl Into<PathBuf>) -> RecoveryConfig {
        RecoveryConfig {
            dir: dir.into(),
            keep: 2,
            every: 1,
            max_retries: 3,
            backoff_base_ms: 50,
            backoff_cap_ms: 2_000,
        }
    }
}

/// Outcome of a resilient run.
#[derive(Debug, Clone)]
pub struct ResilientRun {
    /// The epidemic curve — bit-identical to an undisturbed run.
    pub curve: EpiCurve,
    /// Per-day phase timings of the *surviving* attempt only (days
    /// replayed from a checkpoint restore are not re-timed).
    pub perf: Vec<DayPerf>,
    /// Total attempts launched (1 = no failure).
    pub attempts: u32,
    /// Epoch the surviving attempt resumed from (`None` = fresh start).
    pub resumed_from: Option<u64>,
}

/// Rank-identical portion of a checkpoint shard: everything needed to
/// rebuild the driver state besides the person table.
struct Meta {
    next_day: u32,
    seeds: u64,
    cumulative: u64,
    yesterday_new: u64,
    yesterday_infected: u64,
    interventions: InterventionSnapshot,
    days: Vec<DayStats>,
}

fn encode_meta(next_day: u32, seeds: u64, carry: &Carry, days: &[DayStats]) -> Vec<u8> {
    let snap = carry.interventions.snapshot();
    let mut buf = BytesMut::with_capacity(64 + days.len() * 120);
    buf.put_u32_le(next_day);
    buf.put_u64_le(seeds);
    buf.put_u64_le(carry.cumulative);
    buf.put_u64_le(carry.yesterday_new);
    buf.put_u64_le(carry.yesterday_infected);
    buf.put_u32_le(snap.fired.len() as u32);
    for &f in &snap.fired {
        buf.put_u8(f as u8);
    }
    buf.put_u32_le(snap.active.len() as u32);
    for &(source, end_day) in &snap.active {
        buf.put_u32_le(source);
        buf.put_u32_le(end_day);
    }
    buf.put_u32_le(days.len() as u32);
    for d in days {
        buf.put_u32_le(d.day);
        buf.put_u64_le(d.new_infections);
        buf.put_u64_le(d.infected_now);
        buf.put_u64_le(d.susceptible);
        buf.put_u64_le(d.symptomatic);
        buf.put_u64_le(d.cumulative);
        buf.put_u64_le(d.visits);
        buf.put_u64_le(d.events);
        buf.put_u64_le(d.interactions);
        buf.put_u64_le(d.infects_sent);
        for &k in &d.infections_by_kind {
            buf.put_u64_le(k);
        }
    }
    buf.as_slice().to_vec()
}

fn short(buf: &[u8], bytes: usize) -> Result<(), RecoveryError> {
    if buf.remaining() < bytes {
        return Err(RecoveryError::ShardMismatch("truncated meta record".into()));
    }
    Ok(())
}

fn decode_meta(data: &[u8]) -> Result<Meta, RecoveryError> {
    let mut buf = data;
    short(buf, 4 + 8 * 4 + 4)?;
    let next_day = buf.get_u32_le();
    let seeds = buf.get_u64_le();
    let cumulative = buf.get_u64_le();
    let yesterday_new = buf.get_u64_le();
    let yesterday_infected = buf.get_u64_le();
    let n_fired = buf.get_u32_le() as usize;
    short(buf, n_fired + 4)?;
    let fired = (0..n_fired).map(|_| buf.get_u8() != 0).collect();
    let n_active = buf.get_u32_le() as usize;
    short(buf, n_active * 8 + 4)?;
    let active = (0..n_active)
        .map(|_| {
            let source = buf.get_u32_le();
            let end_day = buf.get_u32_le();
            (source, end_day)
        })
        .collect();
    let n_days = buf.get_u32_le() as usize;
    short(buf, n_days * (4 + 8 * 14))?;
    let days = (0..n_days)
        .map(|_| {
            let day = buf.get_u32_le();
            let new_infections = buf.get_u64_le();
            let infected_now = buf.get_u64_le();
            let susceptible = buf.get_u64_le();
            let symptomatic = buf.get_u64_le();
            let cumulative = buf.get_u64_le();
            let visits = buf.get_u64_le();
            let events = buf.get_u64_le();
            let interactions = buf.get_u64_le();
            let infects_sent = buf.get_u64_le();
            let mut infections_by_kind = [0u64; 5];
            for slot in infections_by_kind.iter_mut() {
                *slot = buf.get_u64_le();
            }
            DayStats {
                day,
                new_infections,
                infected_now,
                susceptible,
                symptomatic,
                cumulative,
                visits,
                events,
                interactions,
                infects_sent,
                infections_by_kind,
            }
        })
        .collect();
    Ok(Meta {
        next_day,
        seeds,
        cumulative,
        yesterday_new,
        yesterday_infected,
        interventions: InterventionSnapshot { fired, active },
        days,
    })
}

fn n_ranks_of(rt_cfg: &RuntimeConfig) -> u32 {
    if rt_cfg.mode == ExecMode::Net {
        rt_cfg.net.n_procs.max(1)
    } else {
        1
    }
}

/// Reassemble the full person table (indexed by person id) from every
/// rank's committed shard of `epoch`.
fn restore_states(
    store: &EpochStore,
    epoch: u64,
    n_ranks: u32,
    n_people: usize,
) -> Result<(Meta, Vec<PersonSlot>), RecoveryError> {
    let shards = store.load_epoch(epoch, n_ranks)?;
    let meta_blob = shards
        .first()
        .map(|s| s.meta.clone())
        .ok_or_else(|| RecoveryError::ShardMismatch("epoch has no shards".into()))?;
    let meta = decode_meta(&meta_blob)?;
    let mut persons: Vec<Option<PersonSlot>> = Vec::new();
    persons.resize_with(n_people, || None);
    for shard in &shards {
        if shard.meta != meta_blob {
            return Err(RecoveryError::ShardMismatch(format!(
                "rank {} meta record diverges from rank 0 (lockstep violated)",
                shard.rank
            )));
        }
        for (chare, blob) in &shard.chares {
            let slots = decode_person_shard(blob)
                .map_err(|e| RecoveryError::ShardMismatch(format!("chare {chare} shard: {e}")))?;
            for s in slots {
                match persons.get_mut(s.id as usize) {
                    Some(slot) => *slot = Some(s),
                    None => {
                        return Err(RecoveryError::ShardMismatch(format!(
                            "person id {} out of range ({} people)",
                            s.id, n_people
                        )))
                    }
                }
            }
        }
    }
    let states = persons
        .into_iter()
        .enumerate()
        .map(|(id, p)| {
            p.ok_or_else(|| {
                RecoveryError::ShardMismatch(format!("person {id} missing from epoch {epoch}"))
            })
        })
        .collect::<Result<Vec<_>, _>>()?;
    Ok((meta, states))
}

/// One mesh launch: construct (fresh or from `resume`), run day by day,
/// checkpointing at the configured cadence. Workers exit inside the
/// engine teardown when the run (or their process) ends; only the root
/// returns. A [`chare_rt::TransportError`] panic out of this function is
/// the failure signal [`run_resilient`] recovers from.
fn run_attempt(
    dist: &DataDistribution,
    ptts: Ptts,
    cfg: &SimConfig,
    rt_cfg: &RuntimeConfig,
    rec: &RecoveryConfig,
    store: &EpochStore,
    resume: Option<u64>,
) -> Result<(EpiCurve, Vec<DayPerf>), RecoveryError> {
    let n_ranks = n_ranks_of(rt_cfg);
    let population = dist.pop.n_people() as u64;
    let n_people = population as usize;
    let every = rec.every.max(1);

    let (mut carry, mut day, mut days, seeds, states) = match resume {
        Some(epoch) => {
            let (meta, states) = restore_states(store, epoch, n_ranks, n_people)?;
            let carry = Carry {
                interventions: InterventionSet::restore(
                    cfg.interventions.interventions().to_vec(),
                    &meta.interventions,
                ),
                cumulative: meta.cumulative,
                yesterday_new: meta.yesterday_new,
                yesterday_infected: meta.yesterday_infected,
            };
            (carry, meta.next_day, meta.days, meta.seeds, Some(states))
        }
        None => {
            let seeds = cfg.initial_infections.min(dist.pop.n_people()) as u64;
            let carry = Carry::new(cfg.interventions.clone(), seeds);
            (carry, 0u32, Vec::new(), seeds, None)
        }
    };

    let mut sim = Simulator::with_states(dist, ptts, cfg.clone(), *rt_cfg, states);
    if resume.is_some() {
        sim.note_restore();
    }

    let mut perf: Vec<DayPerf> = Vec::new();
    let mut extinct = false;
    while day < cfg.days && !extinct {
        let (mut d, mut p, ext) = sim.run_days(day, day + 1, &mut carry);
        days.append(&mut d);
        perf.append(&mut p);
        extinct = ext;
        day += 1;
        // Day boundaries are global quiescence points: every rank saw the
        // same broadcast reduction, no messages are in flight, and the
        // extinction decision below is taken in lockstep — so every rank
        // reaches this checkpoint (or none does).
        if day % every == 0 || day == cfg.days || extinct {
            let snap = RecoverySnapshot {
                epoch: day as u64,
                next_phase: day as u64 * 3 + 1,
                rank: sim.net_rank(),
                n_ranks,
                in_flight: 0,
                meta: encode_meta(day, seeds, &carry, &days),
                chares: sim.snapshot_chares(),
            };
            store.commit_shard(&snap)?;
            sim.note_checkpoint();
            if sim.net_rank() == 0 {
                store.retain(n_ranks);
            }
        }
    }

    let curve = EpiCurve {
        population,
        seeds,
        days,
    };
    Ok((curve, perf))
}

fn clear_env() {
    std::env::remove_var(ENV_RECOVERY_DIR);
    std::env::remove_var(ENV_RESUME_EPOCH);
}

/// Run the simulation with automatic crash recovery.
///
/// Equivalent to `Simulator::new(..).run_curve()` when nothing fails,
/// but a mesh failure mid-run (worker crash, stall, or partition —
/// injected or real) rolls the run back to the last committed epoch and
/// relaunches instead of aborting. Works in every [`ExecMode`]; only
/// `Net` can actually experience transport failures, the others simply
/// gain periodic checkpoints.
pub fn run_resilient(
    dist: &DataDistribution,
    ptts: &Ptts,
    cfg: &SimConfig,
    rt_cfg: &RuntimeConfig,
    rec: &RecoveryConfig,
) -> Result<ResilientRun, RecoveryError> {
    if let Some(target) = worker_target() {
        // Worker process: join exactly the attempt we were spawned for and
        // read the resume point the root exported before spawning us. The
        // process exits inside the engine teardown (or the fault-injection
        // kill), so control normally never returns here.
        align_to_invocation(target);
        let dir = std::env::var(ENV_RECOVERY_DIR)
            .map(PathBuf::from)
            .unwrap_or_else(|_| rec.dir.clone());
        let resume = std::env::var(ENV_RESUME_EPOCH)
            .ok()
            .and_then(|v| v.parse::<u64>().ok());
        let store = EpochStore::open(&dir, rec.keep)?;
        let (curve, perf) = run_attempt(dist, ptts.clone(), cfg, rt_cfg, rec, &store, resume)?;
        return Ok(ResilientRun {
            curve,
            perf,
            attempts: 1,
            resumed_from: resume,
        });
    }

    // Root (or standalone) process: own the retry loop.
    let store = EpochStore::open(&rec.dir, rec.keep)?;
    std::env::set_var(ENV_RECOVERY_DIR, abs_dir(&rec.dir));
    let n_ranks = n_ranks_of(rt_cfg);
    let mut backoff = Backoff::new(rec.backoff_base_ms, rec.backoff_cap_ms, cfg.seed);
    let mut rt = *rt_cfg;
    let mut attempts = 0u32;
    loop {
        attempts += 1;
        let resume = store.latest_committed(n_ranks);
        match resume {
            Some(epoch) => std::env::set_var(ENV_RESUME_EPOCH, epoch.to_string()),
            None => std::env::remove_var(ENV_RESUME_EPOCH),
        }
        let outcome = catch_unwind(AssertUnwindSafe(|| {
            run_attempt(dist, ptts.clone(), cfg, &rt, rec, &store, resume)
        }));
        match outcome {
            Ok(Ok((curve, perf))) => {
                clear_env();
                return Ok(ResilientRun {
                    curve,
                    perf,
                    attempts,
                    resumed_from: resume,
                });
            }
            Ok(Err(e)) => {
                // Recovery-store I/O or corruption: not a transport crash,
                // retrying the mesh will not help.
                clear_env();
                return Err(e);
            }
            Err(payload) => {
                let transport = payload
                    .downcast_ref::<TransportError>()
                    .map(|t| t.0.clone());
                match transport {
                    Some(last) => {
                        eprintln!(
                            "[net recovery] attempt {attempts} failed: {last}; \
                             last committed epoch: {resume:?}"
                        );
                        if attempts > rec.max_retries {
                            clear_env();
                            return Err(RecoveryError::Exhausted { attempts, last });
                        }
                        // An injected fault has fired by now; do not
                        // re-inject it into the respawned mesh.
                        rt.net.kill_rank = u32::MAX;
                        rt.faults = rt.faults.without_proc_faults();
                        backoff.sleep(attempts - 1);
                    }
                    // Anything other than the engine's typed transport
                    // failure is a genuine bug: propagate it.
                    None => resume_unwind(payload),
                }
            }
        }
    }
}

/// Workers may run with a different CWD than the root; export an
/// absolute path so the shared store resolves identically everywhere.
fn abs_dir(dir: &Path) -> PathBuf {
    std::env::current_dir()
        .map(|cwd| cwd.join(dir))
        .unwrap_or_else(|_| dir.to_path_buf())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::output::DayStats;

    fn stats(day: u32) -> DayStats {
        DayStats {
            day,
            new_infections: day as u64 + 1,
            infected_now: 7,
            susceptible: 90,
            symptomatic: 3,
            cumulative: 11,
            visits: 40,
            events: 9,
            interactions: 100,
            infects_sent: 2,
            infections_by_kind: [1, 2, 3, 4, 5],
        }
    }

    #[test]
    fn meta_roundtrip() {
        let interventions = InterventionSet::none();
        let carry = Carry {
            interventions,
            cumulative: 42,
            yesterday_new: 5,
            yesterday_infected: 9,
        };
        let days = vec![stats(0), stats(1), stats(2)];
        let blob = encode_meta(3, 10, &carry, &days);
        let meta = decode_meta(&blob).expect("roundtrip");
        assert_eq!(meta.next_day, 3);
        assert_eq!(meta.seeds, 10);
        assert_eq!(meta.cumulative, 42);
        assert_eq!(meta.yesterday_new, 5);
        assert_eq!(meta.yesterday_infected, 9);
        assert_eq!(meta.days, days);
    }

    #[test]
    fn meta_truncation_rejected() {
        let carry = Carry {
            interventions: InterventionSet::none(),
            cumulative: 0,
            yesterday_new: 0,
            yesterday_infected: 0,
        };
        let blob = encode_meta(1, 1, &carry, &[stats(0)]);
        for cut in [0, 3, blob.len() / 2, blob.len() - 1] {
            assert!(
                decode_meta(&blob[..cut]).is_err(),
                "cut at {cut} must be rejected"
            );
        }
    }
}
