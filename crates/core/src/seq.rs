//! A direct sequential EpiSimdemics implementation — the correctness oracle.
//!
//! Runs the same per-day algorithm with plain loops and no runtime. Because
//! every stochastic decision in the parallel simulator is keyed by
//! `(seed, entity, day, purpose)` rather than drawn from a shared stream,
//! this oracle must produce *bit-identical* epidemic curves; the
//! integration tests assert exactly that.

use crate::ensemble::MemberArena;
use crate::kernel::{simulate_location_day, InfectivityClasses};
use crate::messages::DayEffects;
use crate::output::{DayStats, EpiCurve};
use crate::person::{person_day, PersonSlot};
use crate::simulator::SimConfig;
use ptts::crng::{CounterRng, Purpose};
use ptts::intervention::DayObservables;
use ptts::Ptts;
use synthpop::Population;

/// Run the sequential reference simulation.
pub fn run_sequential(pop: &Population, ptts: &Ptts, cfg: &SimConfig) -> EpiCurve {
    run_sequential_with_states(pop, ptts, cfg).0
}

/// Like [`run_sequential`] but also returning the final person states
/// (the transmission tree lives in their provenance fields).
pub fn run_sequential_with_states(
    pop: &Population,
    ptts: &Ptts,
    cfg: &SimConfig,
) -> (EpiCurve, Vec<PersonSlot>) {
    let mut arena = MemberArena::new();
    let curve = run_sequential_into(pop, ptts, cfg, &mut arena);
    (curve, arena.into_person_states())
}

/// Run the sequential simulation with all mutable per-run state drawn from
/// `arena`. Reusing one arena across many runs (the ensemble scheduler gives
/// each worker its own) amortises the allocations; the epidemic itself is
/// bit-identical to [`run_sequential`] because the arena is reset to the
/// same initial state every run.
pub fn run_sequential_into(
    pop: &Population,
    ptts: &Ptts,
    cfg: &SimConfig,
    arena: &mut MemberArena,
) -> EpiCurve {
    let n_people = pop.n_people() as usize;
    let n_locations = pop.n_locations() as usize;
    arena.reset(n_people, n_locations, ptts);
    let MemberArena {
        slots,
        buffers,
        visit_buf,
        infects,
        scratch,
    } = arena;
    let buffers = &mut buffers[..n_locations];

    // Initial infections: identical draw to `Simulator::new`.
    let mut seeds = std::collections::BTreeSet::new();
    let mut rng = CounterRng::for_entity(cfg.seed, 0, 0, Purpose::Synthesis);
    let want = (cfg.initial_infections as usize).min(n_people);
    while seeds.len() < want {
        seeds.insert(rng.uniform_u64(n_people as u64) as u32);
    }
    for &pid in &seeds {
        slots[pid as usize].seed(ptts, cfg.seed);
    }

    let classes = InfectivityClasses::new(ptts);
    let symptomatic_state = ptts.state_by_name("symptomatic");
    let mut interventions = cfg.interventions.clone();
    let population = n_people as u64;
    let mut curve = EpiCurve {
        population,
        seeds: want as u64,
        days: Vec::new(),
    };
    let mut cumulative = want as u64;
    let mut yesterday_new = 0u64;
    let mut yesterday_infected = want as u64;

    for day in 0..cfg.days {
        let obs = DayObservables {
            day,
            infected_now: yesterday_infected,
            new_cases: yesterday_new,
            cumulative,
            population,
        };
        let fx = interventions.evaluate(&obs);
        let effects = DayEffects {
            closed_kinds: DayEffects::from_flags(&fx.closed_kinds),
            r_scale: fx.r_scale,
            vaccinations: fx.vaccinations,
        };
        let r_eff = cfg.r * effects.r_scale;

        // Phase 1: persons.
        let (mut symptomatic, mut infected_now, mut susceptible, mut visits) = (0u64, 0, 0, 0);
        for slot in slots.iter_mut() {
            visit_buf.clear();
            let sym = person_day(
                slot,
                pop,
                ptts,
                &effects,
                symptomatic_state,
                None,
                cfg.seed,
                day,
                visit_buf,
            );
            symptomatic += sym as u64;
            infected_now += slot.is_infected() as u64;
            susceptible += ptts.is_susceptible(slot.health.state) as u64;
            visits += visit_buf.len() as u64;
            for m in visit_buf.drain(..) {
                buffers[m.location as usize].push(m);
            }
        }

        // Phase 3: locations.
        let (mut events, mut interactions) = (0u64, 0u64);
        let mut infections_by_kind = [0u64; 5];
        infects.clear();
        for (l, buf) in buffers.iter_mut().enumerate() {
            let before = infects.len();
            let f =
                simulate_location_day(buf, ptts, &classes, r_eff, cfg.seed, day, scratch, infects);
            events += f.events;
            interactions += f.interactions;
            infections_by_kind[pop.locations[l].kind as usize] += (infects.len() - before) as u64;
            buf.clear();
        }

        // Phase 5: apply (same dedup as PersonManager).
        for i in infects.iter() {
            slots[i.person as usize].record_infection(i);
        }
        let mut new_infections = 0u64;
        for slot in slots.iter_mut() {
            new_infections += slot.apply_pending(ptts, cfg.seed, day) as u64;
        }
        cumulative += new_infections;
        let stats = DayStats {
            day,
            new_infections,
            infected_now,
            susceptible,
            symptomatic,
            cumulative,
            visits,
            events,
            interactions,
            infects_sent: infects.len() as u64,
            infections_by_kind,
        };
        yesterday_new = new_infections;
        yesterday_infected = infected_now;
        curve.days.push(stats);
        if cfg.stop_when_extinct && infected_now == 0 && new_infections == 0 && day > 0 {
            break;
        }
    }
    curve
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::distribution::{DataDistribution, Strategy};
    use crate::simulator::Simulator;
    use chare_rt::RuntimeConfig;
    use ptts::flu_model;
    use ptts::intervention::{Action, Intervention, InterventionSet, Trigger};
    use synthpop::PopulationConfig;

    fn small_pop() -> Population {
        Population::generate(&PopulationConfig::small("T", 1200, 23))
    }

    fn cfg(seed: u64) -> SimConfig {
        SimConfig {
            days: 35,
            r: 0.0012,
            seed,
            initial_infections: 6,
            ..Default::default()
        }
    }

    #[test]
    fn oracle_matches_parallel_simulator_exactly() {
        let pop = small_pop();
        let ptts = flu_model();
        let oracle = run_sequential(&pop, &ptts, &cfg(13));
        let dist = DataDistribution::build(&pop, Strategy::GraphPartition, 4, 13);
        let parallel = Simulator::new(&dist, ptts, cfg(13), RuntimeConfig::sequential(4)).run();
        assert_eq!(oracle, parallel.curve);
    }

    #[test]
    fn oracle_matches_threaded_simulator() {
        let pop = small_pop();
        let ptts = flu_model();
        let oracle = run_sequential(&pop, &ptts, &cfg(29));
        let dist = DataDistribution::build(&pop, Strategy::GraphPartitionSplit, 3, 29);
        let parallel = Simulator::new(&dist, ptts, cfg(29), RuntimeConfig::threaded(3)).run();
        assert_eq!(oracle, parallel.curve);
    }

    #[test]
    fn interventions_flow_through_identically() {
        let pop = small_pop();
        let ptts = flu_model();
        let interventions = InterventionSet::new(vec![
            Intervention {
                trigger: Trigger::Day(3),
                action: Action::Vaccinate {
                    fraction: 0.4,
                    treatment: ptts::model::TreatmentId(1),
                    efficacy_factor: 0.3,
                },
            },
            Intervention {
                trigger: Trigger::PrevalenceAbove(0.02),
                action: Action::CloseKind {
                    kind: synthpop::LocationKind::School as u8,
                    duration: 10,
                },
            },
        ]);
        let mut c = cfg(31);
        c.interventions = interventions;
        let oracle = run_sequential(&pop, &ptts, &c);
        let dist = DataDistribution::build(&pop, Strategy::RoundRobinSplit, 2, 31);
        let parallel = Simulator::new(&dist, ptts, c, RuntimeConfig::sequential(2)).run();
        assert_eq!(oracle, parallel.curve);
    }

    #[test]
    fn school_closure_reduces_attack_rate() {
        let pop = small_pop();
        let ptts = flu_model();
        let base = run_sequential(&pop, &ptts, &cfg(17));
        let mut with_closure = cfg(17);
        with_closure.interventions = InterventionSet::new(vec![Intervention {
            trigger: Trigger::Day(0),
            action: Action::CloseKind {
                kind: synthpop::LocationKind::School as u8,
                duration: 120,
            },
        }]);
        let closed = run_sequential(&pop, &ptts, &with_closure);
        assert!(
            closed.total_infections() <= base.total_infections(),
            "closure {} vs base {}",
            closed.total_infections(),
            base.total_infections()
        );
    }

    #[test]
    fn higher_r_more_infections() {
        let pop = small_pop();
        let ptts = flu_model();
        let lo = run_sequential(
            &pop,
            &ptts,
            &SimConfig {
                r: 0.0004,
                ..cfg(19)
            },
        );
        let hi = run_sequential(
            &pop,
            &ptts,
            &SimConfig {
                r: 0.003,
                ..cfg(19)
            },
        );
        assert!(hi.total_infections() > lo.total_infections());
    }

    #[test]
    fn susceptible_monotonically_decreases() {
        let pop = small_pop();
        let ptts = flu_model();
        let curve = run_sequential(&pop, &ptts, &cfg(37));
        for w in curve.days.windows(2) {
            assert!(w[1].susceptible <= w[0].susceptible);
            assert!(w[1].cumulative >= w[0].cumulative);
        }
    }

    #[test]
    fn venue_attribution_sums_to_infects() {
        let pop = small_pop();
        let ptts = flu_model();
        let curve = run_sequential(&pop, &ptts, &cfg(43));
        let mut any_kind = [false; 5];
        for d in &curve.days {
            assert_eq!(
                d.infections_by_kind.iter().sum::<u64>(),
                d.infects_sent,
                "day {}",
                d.day
            );
            for (k, &n) in d.infections_by_kind.iter().enumerate() {
                any_kind[k] |= n > 0;
            }
        }
        // Homes dominate transmission in this model; schools/workplaces
        // contribute too.
        assert!(any_kind[synthpop::LocationKind::Home as usize]);
        assert!(
            any_kind.iter().filter(|&&b| b).count() >= 2,
            "transmission should occur in multiple venue kinds"
        );
    }

    #[test]
    fn infects_never_exceed_interactions() {
        let pop = small_pop();
        let ptts = flu_model();
        let curve = run_sequential(&pop, &ptts, &cfg(41));
        for d in &curve.days {
            assert!(d.infects_sent <= d.interactions.max(1));
        }
    }
}
