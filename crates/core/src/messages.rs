//! Simulator messages and shared immutable state.

use chare_rt::Message;
use ptts::intervention::VaccinationOrder;
use ptts::model::StateId;
use ptts::Ptts;
use std::sync::Arc;
use synthpop::Population;

/// A visit message: "the object representing the person sends a 'visit'
/// message to the object representing the visited location with the ID of
/// the person, the start time and the end time of the visit, as well as the
/// person's health state" (§II-B step 1).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct VisitMsg {
    /// Visiting person.
    pub person: u32,
    /// Destination location (global id).
    pub location: u32,
    /// Room within the location.
    pub sublocation: u16,
    /// Start minute.
    pub start_min: u16,
    /// End minute (exclusive).
    pub end_min: u16,
    /// The person's health state today.
    pub state: StateId,
    /// Personal susceptibility multiplier (vaccine efficacy etc.).
    pub sus_scale: f32,
}

/// An infect message: "for each interaction that results in disease
/// transmission, an 'infect' message is sent to the infected person"
/// (§II-B step 3).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct InfectMsg {
    /// Person being infected.
    pub person: u32,
    /// Minute of infection (for deterministic dedup across sources).
    pub time_min: u16,
    /// Who transmitted.
    pub infector: u32,
}

/// Per-day intervention effects, broadcast to PersonManagers.
#[derive(Debug, Clone, Default)]
pub struct DayEffects {
    /// Bitmask over location kinds: bit k set ⇒ kind k closed today.
    pub closed_kinds: u8,
    /// Multiplier on transmissibility (social distancing).
    pub r_scale: f64,
    /// Vaccination orders activating today.
    pub vaccinations: Vec<VaccinationOrder>,
}

impl DayEffects {
    /// No active interventions.
    pub fn none() -> Self {
        DayEffects {
            closed_kinds: 0,
            r_scale: 1.0,
            vaccinations: Vec::new(),
        }
    }

    /// Is location kind `k` closed?
    #[inline]
    pub fn is_closed(&self, kind: u8) -> bool {
        kind < 8 && (self.closed_kinds >> kind) & 1 == 1
    }

    /// Build the bitmask from the intervention crate's bool array.
    pub fn from_flags(flags: &[bool]) -> u8 {
        flags
            .iter()
            .enumerate()
            .take(8)
            .fold(0u8, |m, (i, &c)| if c { m | (1 << i) } else { m })
    }
}

/// All messages exchanged in the simulation.
#[derive(Debug, Clone)]
pub enum SimMsg {
    /// Phase 1 kick-off, sent to every PersonManager.
    BeginDay {
        /// Simulation day (0-based).
        day: u32,
        /// Intervention effects in force.
        effects: DayEffects,
    },
    /// A person visiting a location (PM → LM; the aggregated hot path).
    Visit(VisitMsg),
    /// Phase 2 kick-off, sent to every LocationManager.
    ComputeDay {
        /// Simulation day.
        day: u32,
        /// Effective transmissibility `r × r_scale`.
        r_eff: f64,
    },
    /// A disease transmission (LM → PM).
    Infect(InfectMsg),
    /// Phase 3 kick-off, sent to every PersonManager.
    ApplyDay {
        /// Simulation day.
        day: u32,
    },
}

impl Message for SimMsg {
    fn size_bytes(&self) -> usize {
        // Wire-size estimates for the bandwidth model: the hot-path
        // messages are what matter.
        match self {
            SimMsg::Visit(_) => 20,
            SimMsg::Infect(_) => 12,
            SimMsg::BeginDay { effects, .. } => {
                16 + effects.vaccinations.len() * std::mem::size_of::<VaccinationOrder>()
            }
            SimMsg::ComputeDay { .. } => 16,
            SimMsg::ApplyDay { .. } => 8,
        }
    }
}

/// Reduction slot assignments (see `chare_rt::stats::REDUCTION_SLOTS`).
pub mod slots {
    /// Persons currently infected (dwelling in a non-absorbing state).
    pub const INFECTED_NOW: usize = 0;
    /// Infections applied this day.
    pub const NEW_INFECTIONS: usize = 1;
    /// Visit messages sent this day.
    pub const VISITS_SENT: usize = 2;
    /// Symptomatic persons today.
    pub const SYMPTOMATIC: usize = 3;
    /// Still-susceptible persons.
    pub const SUSCEPTIBLE: usize = 4;
    /// Arrive/depart events processed by locations today.
    pub const EVENTS: usize = 5;
    /// Susceptible×infectious interactions counted today.
    pub const INTERACTIONS: usize = 6;
    /// Infect messages sent today.
    pub const INFECTS_SENT: usize = 7;
    /// Base of the per-location-kind transmission counters: slot
    /// `BY_KIND_BASE + k` counts infect messages computed at locations of
    /// kind `k` (venue attribution of transmissions, before per-person
    /// dedup).
    pub const BY_KIND_BASE: usize = 8;
}

/// Immutable state shared by every manager chare (read-only sharing across
/// threads is one of the SMP-mode benefits the paper lists in §IV-A).
#[derive(Debug)]
pub struct Shared {
    /// The population (post-splitLoc if applicable).
    pub pop: Population,
    /// The disease model.
    pub ptts: Ptts,
    /// Base transmissibility per minute of contact.
    pub r: f64,
    /// Simulation seed.
    pub seed: u64,
    /// person → PersonManager chare id.
    pub pm_of_person: Vec<u32>,
    /// person → local slot within its PM.
    pub local_of_person: Vec<u32>,
    /// location → LocationManager chare id.
    pub lm_of_location: Vec<u32>,
    /// location → local slot within its LM.
    pub local_of_location: Vec<u32>,
}

/// Shared handle.
pub type SharedRef = Arc<Shared>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn closed_kind_bitmask() {
        let e = DayEffects {
            closed_kinds: DayEffects::from_flags(&[false, false, true, false, true]),
            r_scale: 1.0,
            vaccinations: Vec::new(),
        };
        assert!(!e.is_closed(0));
        assert!(e.is_closed(2));
        assert!(e.is_closed(4));
        assert!(!e.is_closed(7));
        assert!(!e.is_closed(200));
    }

    #[test]
    fn message_sizes_reflect_payload() {
        let v = SimMsg::Visit(VisitMsg {
            person: 1,
            location: 2,
            sublocation: 0,
            start_min: 0,
            end_min: 100,
            state: StateId(0),
            sus_scale: 1.0,
        });
        assert_eq!(v.size_bytes(), 20);
        let i = SimMsg::Infect(InfectMsg {
            person: 1,
            time_min: 10,
            infector: 2,
        });
        assert_eq!(i.size_bytes(), 12);
        assert!(v.size_bytes() > i.size_bytes());
    }
}
