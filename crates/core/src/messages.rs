//! Simulator messages and shared immutable state.

use bytes::{Buf, BufMut, BytesMut};
use chare_rt::Message;
use ptts::intervention::VaccinationOrder;
use ptts::model::{StateId, TreatmentId};
use ptts::Ptts;
use std::sync::Arc;
use synthpop::Population;

/// A visit message: "the object representing the person sends a 'visit'
/// message to the object representing the visited location with the ID of
/// the person, the start time and the end time of the visit, as well as the
/// person's health state" (§II-B step 1).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct VisitMsg {
    /// Visiting person.
    pub person: u32,
    /// Destination location (global id).
    pub location: u32,
    /// Room within the location.
    pub sublocation: u16,
    /// Start minute.
    pub start_min: u16,
    /// End minute (exclusive).
    pub end_min: u16,
    /// The person's health state today.
    pub state: StateId,
    /// Personal susceptibility multiplier (vaccine efficacy etc.).
    pub sus_scale: f32,
}

/// An infect message: "for each interaction that results in disease
/// transmission, an 'infect' message is sent to the infected person"
/// (§II-B step 3).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct InfectMsg {
    /// Person being infected.
    pub person: u32,
    /// Minute of infection (for deterministic dedup across sources).
    pub time_min: u16,
    /// Who transmitted.
    pub infector: u32,
}

/// Per-day intervention effects, broadcast to PersonManagers.
#[derive(Debug, Clone, Default)]
pub struct DayEffects {
    /// Bitmask over location kinds: bit k set ⇒ kind k closed today.
    pub closed_kinds: u8,
    /// Multiplier on transmissibility (social distancing).
    pub r_scale: f64,
    /// Vaccination orders activating today.
    pub vaccinations: Vec<VaccinationOrder>,
}

impl DayEffects {
    /// No active interventions.
    pub fn none() -> Self {
        DayEffects {
            closed_kinds: 0,
            r_scale: 1.0,
            vaccinations: Vec::new(),
        }
    }

    /// Is location kind `k` closed?
    #[inline]
    pub fn is_closed(&self, kind: u8) -> bool {
        kind < 8 && (self.closed_kinds >> kind) & 1 == 1
    }

    /// Build the bitmask from the intervention crate's bool array.
    pub fn from_flags(flags: &[bool]) -> u8 {
        flags
            .iter()
            .enumerate()
            .take(8)
            .fold(0u8, |m, (i, &c)| if c { m | (1 << i) } else { m })
    }
}

/// All messages exchanged in the simulation.
#[derive(Debug, Clone)]
pub enum SimMsg {
    /// Phase 1 kick-off, sent to every PersonManager.
    BeginDay {
        /// Simulation day (0-based).
        day: u32,
        /// Intervention effects in force.
        effects: DayEffects,
    },
    /// A person visiting a location (PM → LM; the aggregated hot path).
    Visit(VisitMsg),
    /// Phase 2 kick-off, sent to every LocationManager.
    ComputeDay {
        /// Simulation day.
        day: u32,
        /// Effective transmissibility `r × r_scale`.
        r_eff: f64,
    },
    /// A disease transmission (LM → PM).
    Infect(InfectMsg),
    /// Phase 3 kick-off, sent to every PersonManager.
    ApplyDay {
        /// Simulation day.
        day: u32,
    },
}

/// Wire tags for [`SimMsg`] variants (the first byte of the encoding;
/// DESIGN.md §8 pins them).
mod tag {
    pub const BEGIN_DAY: u8 = 0;
    pub const VISIT: u8 = 1;
    pub const COMPUTE_DAY: u8 = 2;
    pub const INFECT: u8 = 3;
    pub const APPLY_DAY: u8 = 4;
}

impl Message for SimMsg {
    fn size_bytes(&self) -> usize {
        // Wire-size estimates for the bandwidth model: the hot-path
        // messages are what matter.
        match self {
            SimMsg::Visit(_) => 20,
            SimMsg::Infect(_) => 12,
            SimMsg::BeginDay { effects, .. } => {
                16 + effects.vaccinations.len() * std::mem::size_of::<VaccinationOrder>()
            }
            SimMsg::ComputeDay { .. } => 16,
            SimMsg::ApplyDay { .. } => 8,
        }
    }

    fn wire_encode(&self, out: &mut BytesMut) {
        match self {
            SimMsg::BeginDay { day, effects } => {
                out.put_u8(tag::BEGIN_DAY);
                out.put_u32_le(*day);
                out.put_u8(effects.closed_kinds);
                out.put_f64_le(effects.r_scale);
                out.put_u32_le(effects.vaccinations.len() as u32);
                for v in &effects.vaccinations {
                    out.put_f64_le(v.fraction);
                    out.put_u16_le(v.treatment.0);
                    out.put_f64_le(v.efficacy_factor);
                }
            }
            SimMsg::Visit(v) => {
                out.put_u8(tag::VISIT);
                out.put_u32_le(v.person);
                out.put_u32_le(v.location);
                out.put_u16_le(v.sublocation);
                out.put_u16_le(v.start_min);
                out.put_u16_le(v.end_min);
                out.put_u16_le(v.state.0);
                out.put_f32_le(v.sus_scale);
            }
            SimMsg::ComputeDay { day, r_eff } => {
                out.put_u8(tag::COMPUTE_DAY);
                out.put_u32_le(*day);
                out.put_f64_le(*r_eff);
            }
            SimMsg::Infect(i) => {
                out.put_u8(tag::INFECT);
                out.put_u32_le(i.person);
                out.put_u16_le(i.time_min);
                out.put_u32_le(i.infector);
            }
            SimMsg::ApplyDay { day } => {
                out.put_u8(tag::APPLY_DAY);
                out.put_u32_le(*day);
            }
        }
    }

    fn wire_decode(buf: &mut &[u8]) -> Option<Self> {
        if buf.remaining() < 1 {
            return None;
        }
        match buf.get_u8() {
            tag::BEGIN_DAY => {
                if buf.remaining() < 17 {
                    return None;
                }
                let day = buf.get_u32_le();
                let closed_kinds = buf.get_u8();
                let r_scale = buf.get_f64_le();
                let n = buf.get_u32_le() as usize;
                if buf.remaining() < n.checked_mul(18)? {
                    return None;
                }
                let mut vaccinations = Vec::with_capacity(n);
                for _ in 0..n {
                    vaccinations.push(VaccinationOrder {
                        fraction: buf.get_f64_le(),
                        treatment: TreatmentId(buf.get_u16_le()),
                        efficacy_factor: buf.get_f64_le(),
                    });
                }
                Some(SimMsg::BeginDay {
                    day,
                    effects: DayEffects {
                        closed_kinds,
                        r_scale,
                        vaccinations,
                    },
                })
            }
            tag::VISIT => {
                if buf.remaining() < 20 {
                    return None;
                }
                Some(SimMsg::Visit(VisitMsg {
                    person: buf.get_u32_le(),
                    location: buf.get_u32_le(),
                    sublocation: buf.get_u16_le(),
                    start_min: buf.get_u16_le(),
                    end_min: buf.get_u16_le(),
                    state: StateId(buf.get_u16_le()),
                    sus_scale: buf.get_f32_le(),
                }))
            }
            tag::COMPUTE_DAY => {
                if buf.remaining() < 12 {
                    return None;
                }
                Some(SimMsg::ComputeDay {
                    day: buf.get_u32_le(),
                    r_eff: buf.get_f64_le(),
                })
            }
            tag::INFECT => {
                if buf.remaining() < 10 {
                    return None;
                }
                Some(SimMsg::Infect(InfectMsg {
                    person: buf.get_u32_le(),
                    time_min: buf.get_u16_le(),
                    infector: buf.get_u32_le(),
                }))
            }
            tag::APPLY_DAY => {
                if buf.remaining() < 4 {
                    return None;
                }
                Some(SimMsg::ApplyDay {
                    day: buf.get_u32_le(),
                })
            }
            _ => None,
        }
    }
}

/// Reduction slot assignments (see `chare_rt::stats::REDUCTION_SLOTS`).
pub mod slots {
    /// Persons currently infected (dwelling in a non-absorbing state).
    pub const INFECTED_NOW: usize = 0;
    /// Infections applied this day.
    pub const NEW_INFECTIONS: usize = 1;
    /// Visit messages sent this day.
    pub const VISITS_SENT: usize = 2;
    /// Symptomatic persons today.
    pub const SYMPTOMATIC: usize = 3;
    /// Still-susceptible persons.
    pub const SUSCEPTIBLE: usize = 4;
    /// Arrive/depart events processed by locations today.
    pub const EVENTS: usize = 5;
    /// Susceptible×infectious interactions counted today.
    pub const INTERACTIONS: usize = 6;
    /// Infect messages sent today.
    pub const INFECTS_SENT: usize = 7;
    /// Base of the per-location-kind transmission counters: slot
    /// `BY_KIND_BASE + k` counts infect messages computed at locations of
    /// kind `k` (venue attribution of transmissions, before per-person
    /// dedup).
    pub const BY_KIND_BASE: usize = 8;
}

/// The object→chare index maps of the two-level hierarchical data
/// distribution (§II-C), computed once per [`crate::DataDistribution`] and
/// shared immutably by every simulator (and every ensemble member) built
/// from it.
#[derive(Debug, Clone)]
pub struct WorldLayout {
    /// Number of partitions (PM chares are `0..k`, LM chares `k..2k`).
    pub k: u32,
    /// person → PersonManager chare id.
    pub pm_of_person: Vec<u32>,
    /// person → local slot within its PM.
    pub local_of_person: Vec<u32>,
    /// location → LocationManager chare id.
    pub lm_of_location: Vec<u32>,
    /// location → local slot within its LM.
    pub local_of_location: Vec<u32>,
    /// location → original location id (identity unless splitLoc ran);
    /// the stay-home filter uses it to recognise split home pieces.
    pub orig_of_location: Vec<u32>,
    /// Person ids owned by each partition, in local-slot order.
    pub persons_per_part: Vec<Vec<u32>>,
    /// Location ids owned by each partition, in local-slot order.
    pub locations_per_part: Vec<Vec<u32>>,
}

impl WorldLayout {
    /// Compute the layout for a distribution.
    pub fn build(dist: &crate::distribution::DataDistribution) -> WorldLayout {
        let k = dist.k;
        let n_people = dist.pop.n_people() as usize;
        let n_locations = dist.pop.n_locations() as usize;
        let mut pm_of_person = vec![0u32; n_people];
        let mut local_of_person = vec![0u32; n_people];
        let mut lm_of_location = vec![0u32; n_locations];
        let mut local_of_location = vec![0u32; n_locations];
        let mut persons_per_part: Vec<Vec<u32>> = vec![Vec::new(); k as usize];
        let mut locations_per_part: Vec<Vec<u32>> = vec![Vec::new(); k as usize];
        for p in 0..n_people {
            let part = dist.person_part[p];
            pm_of_person[p] = part;
            local_of_person[p] = persons_per_part[part as usize].len() as u32;
            persons_per_part[part as usize].push(p as u32);
        }
        for l in 0..n_locations {
            let part = dist.location_part[l];
            lm_of_location[l] = k + part;
            local_of_location[l] = locations_per_part[part as usize].len() as u32;
            locations_per_part[part as usize].push(l as u32);
        }
        WorldLayout {
            k,
            pm_of_person,
            local_of_person,
            lm_of_location,
            local_of_location,
            orig_of_location: dist.orig_of_location.clone(),
            persons_per_part,
            locations_per_part,
        }
    }
}

/// Immutable state shared by every manager chare (read-only sharing across
/// threads is one of the SMP-mode benefits the paper lists in §IV-A).
///
/// Copy-on-write: the population, disease model, and index maps are each
/// behind their own `Arc`, so many simulators — e.g. the members of a
/// [`crate::ensemble`] sweep — alias one world instead of deep-copying it.
#[derive(Debug)]
pub struct Shared {
    /// The population (post-splitLoc if applicable).
    pub pop: Arc<Population>,
    /// The disease model.
    pub ptts: Arc<Ptts>,
    /// The object→chare index maps.
    pub layout: Arc<WorldLayout>,
    /// Base transmissibility per minute of contact.
    pub r: f64,
    /// Simulation seed.
    pub seed: u64,
}

/// Shared handle.
pub type SharedRef = Arc<Shared>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn closed_kind_bitmask() {
        let e = DayEffects {
            closed_kinds: DayEffects::from_flags(&[false, false, true, false, true]),
            r_scale: 1.0,
            vaccinations: Vec::new(),
        };
        assert!(!e.is_closed(0));
        assert!(e.is_closed(2));
        assert!(e.is_closed(4));
        assert!(!e.is_closed(7));
        assert!(!e.is_closed(200));
    }

    fn roundtrip(msg: &SimMsg) -> SimMsg {
        let mut buf = BytesMut::with_capacity(64);
        msg.wire_encode(&mut buf);
        let frozen = buf.freeze();
        let mut slice: &[u8] = &frozen;
        let out = SimMsg::wire_decode(&mut slice).expect("decode");
        assert!(slice.is_empty(), "decode consumed everything");
        out
    }

    #[test]
    fn wire_codec_roundtrips_every_variant() {
        let begin = SimMsg::BeginDay {
            day: 7,
            effects: DayEffects {
                closed_kinds: 0b0001_0100,
                r_scale: 0.75,
                vaccinations: vec![
                    VaccinationOrder {
                        fraction: 0.25,
                        treatment: TreatmentId(3),
                        efficacy_factor: 0.5,
                    },
                    VaccinationOrder {
                        fraction: 1.0,
                        treatment: TreatmentId(0),
                        efficacy_factor: 0.125,
                    },
                ],
            },
        };
        match roundtrip(&begin) {
            SimMsg::BeginDay { day, effects } => {
                assert_eq!(day, 7);
                assert_eq!(effects.closed_kinds, 0b0001_0100);
                assert_eq!(effects.r_scale, 0.75);
                assert_eq!(effects.vaccinations.len(), 2);
                assert_eq!(effects.vaccinations[0].treatment, TreatmentId(3));
                assert_eq!(effects.vaccinations[1].efficacy_factor, 0.125);
            }
            other => panic!("wrong variant: {other:?}"),
        }

        let visit = SimMsg::Visit(VisitMsg {
            person: 12345,
            location: 67890,
            sublocation: 11,
            start_min: 480,
            end_min: 990,
            state: StateId(2),
            sus_scale: 0.625,
        });
        match roundtrip(&visit) {
            SimMsg::Visit(v) => {
                assert_eq!(v.person, 12345);
                assert_eq!(v.location, 67890);
                assert_eq!(v.sublocation, 11);
                assert_eq!(v.start_min, 480);
                assert_eq!(v.end_min, 990);
                assert_eq!(v.state, StateId(2));
                assert_eq!(v.sus_scale, 0.625);
            }
            other => panic!("wrong variant: {other:?}"),
        }

        match roundtrip(&SimMsg::ComputeDay {
            day: 3,
            r_eff: 0.0015,
        }) {
            SimMsg::ComputeDay { day, r_eff } => {
                assert_eq!(day, 3);
                assert_eq!(r_eff, 0.0015);
            }
            other => panic!("wrong variant: {other:?}"),
        }

        match roundtrip(&SimMsg::Infect(InfectMsg {
            person: 99,
            time_min: 720,
            infector: 7,
        })) {
            SimMsg::Infect(i) => {
                assert_eq!(i.person, 99);
                assert_eq!(i.time_min, 720);
                assert_eq!(i.infector, 7);
            }
            other => panic!("wrong variant: {other:?}"),
        }

        match roundtrip(&SimMsg::ApplyDay { day: 11 }) {
            SimMsg::ApplyDay { day } => assert_eq!(day, 11),
            other => panic!("wrong variant: {other:?}"),
        }
    }

    #[test]
    fn wire_decode_rejects_garbage() {
        // Unknown tag.
        let mut buf: &[u8] = &[200u8, 0, 0, 0, 0];
        assert!(SimMsg::wire_decode(&mut buf).is_none());
        // Truncated visit.
        let mut full = BytesMut::with_capacity(64);
        SimMsg::Visit(VisitMsg {
            person: 1,
            location: 2,
            sublocation: 3,
            start_min: 4,
            end_min: 5,
            state: StateId(0),
            sus_scale: 1.0,
        })
        .wire_encode(&mut full);
        let full = full.freeze();
        let mut short: &[u8] = &full[..full.len() - 1];
        assert!(SimMsg::wire_decode(&mut short).is_none());
        // Empty buffer.
        let mut empty: &[u8] = &[];
        assert!(SimMsg::wire_decode(&mut empty).is_none());
        // BeginDay claiming more vaccination orders than bytes present.
        let mut lying = BytesMut::with_capacity(64);
        lying.put_u8(0); // BEGIN_DAY
        lying.put_u32_le(1);
        lying.put_u8(0);
        lying.put_f64_le(1.0);
        lying.put_u32_le(1000); // 1000 orders, zero bytes follow
        let lying = lying.freeze();
        let mut slice: &[u8] = &lying;
        assert!(SimMsg::wire_decode(&mut slice).is_none());
    }

    #[test]
    fn message_sizes_reflect_payload() {
        let v = SimMsg::Visit(VisitMsg {
            person: 1,
            location: 2,
            sublocation: 0,
            start_min: 0,
            end_min: 100,
            state: StateId(0),
            sus_scale: 1.0,
        });
        assert_eq!(v.size_bytes(), 20);
        let i = SimMsg::Infect(InfectMsg {
            person: 1,
            time_min: 10,
            infector: 2,
        });
        assert_eq!(i.size_bytes(), 12);
        assert!(v.size_bytes() > i.size_bytes());
    }
}
