//! Heavy-location splitting — §III-C's graph preprocessing.
//!
//! "We split a heavy location into multiple locations, each of which
//! contains an exclusive subset of sublocations of the original location."
//! Because people only interact within a sublocation, the split adds no
//! communication edges (Figure 6a) and provably does not change simulation
//! results — a property the integration tests verify.
//!
//! The split threshold follows the paper: "We determine the threshold based
//! on the total load in the graph, the maximum number of partitions to use,
//! and the largest weight of a sublocation."

use synthpop::{Location, Population, SublocationId};

/// Split parameters.
#[derive(Debug, Clone, Copy)]
pub struct SplitConfig {
    /// The largest partition count the distribution will be asked for; the
    /// threshold scales with `total_load / max_partitions`.
    pub max_partitions: u32,
    /// Optional hard threshold override (visits per location). When `None`
    /// the paper's rule computes it.
    pub threshold_override: Option<u32>,
}

impl Default for SplitConfig {
    fn default() -> Self {
        SplitConfig {
            max_partitions: 1024,
            threshold_override: None,
        }
    }
}

/// Result of preprocessing.
#[derive(Debug, Clone)]
pub struct SplitResult {
    /// The population with heavy locations split (visits rewritten; new
    /// location ids appended after the originals).
    pub pop: Population,
    /// For every (new) location id, the original location id.
    pub orig_of_location: Vec<u32>,
    /// How many locations were split.
    pub n_split: u32,
    /// The visit-count threshold used.
    pub threshold: u32,
}

/// Compute the split threshold per the paper's rule.
pub fn split_threshold(pop: &Population, cfg: &SplitConfig) -> u32 {
    if let Some(t) = cfg.threshold_override {
        return t.max(1);
    }
    let total_visits = pop.visits.len() as u64;
    // Largest sublocation weight: the biggest per-room visit capacity in
    // use (the finest grain a split can reach).
    let max_subloc_weight = pop
        .locations
        .iter()
        .map(|l| l.kind.room_capacity())
        .max()
        .unwrap_or(1) as u64;
    // Target load per partition at the largest requested K, but never finer
    // than two of the heaviest rooms.
    let per_part = total_visits / cfg.max_partitions.max(1) as u64;
    (per_part.max(2 * max_subloc_weight)).min(u32::MAX as u64) as u32
}

/// Split every location whose visit count exceeds the threshold into
/// pieces of exclusive sublocation subsets (round-robin by sublocation id,
/// so pieces are even).
pub fn split_heavy_locations(pop: &Population, cfg: &SplitConfig) -> SplitResult {
    let threshold = split_threshold(pop, cfg);
    let n_orig = pop.locations.len();

    // Visit counts.
    let mut degree = vec![0u32; n_orig];
    for v in &pop.visits {
        degree[v.location.0 as usize] += 1;
    }

    // Plan splits: for each heavy location, the number of pieces (capped by
    // its sublocation count — we cannot split below one room).
    // piece_base[l] = id of the first extra piece for location l.
    let mut pieces = vec![1u32; n_orig];
    let mut piece_base = vec![0u32; n_orig];
    let mut next_id = n_orig as u32;
    let mut n_split = 0u32;
    for l in 0..n_orig {
        let d = degree[l];
        let rooms = pop.locations[l].n_sublocations as u32;
        if d > threshold && rooms > 1 {
            let want = d.div_ceil(threshold.max(1));
            let p = want.min(rooms);
            if p > 1 {
                pieces[l] = p;
                piece_base[l] = next_id;
                next_id += p - 1;
                n_split += 1;
            }
        }
    }

    // Build new location table.
    let mut locations: Vec<Location> = Vec::with_capacity(next_id as usize);
    let mut orig_of_location: Vec<u32> = Vec::with_capacity(next_id as usize);
    for (l, loc) in pop.locations.iter().enumerate() {
        let p = pieces[l];
        let rooms = loc.n_sublocations as u32;
        // Piece 0 keeps the original id; rooms distributed round-robin:
        // piece q receives rooms {s | s % p == q}.
        let rooms_piece0 = rooms.div_ceil(p);
        locations.push(Location {
            kind: loc.kind,
            n_sublocations: rooms_piece0.max(1) as u16,
            weight: loc.weight / p as f32,
        });
        orig_of_location.push(l as u32);
    }
    for (l, loc) in pop.locations.iter().enumerate() {
        let p = pieces[l];
        let rooms = loc.n_sublocations as u32;
        for q in 1..p {
            // Rooms with s % p == q: count = floor((rooms - q - 1)/p) + 1.
            let count = if q < rooms {
                (rooms - q - 1) / p + 1
            } else {
                0
            };
            locations.push(Location {
                kind: loc.kind,
                n_sublocations: count.max(1) as u16,
                weight: loc.weight / p as f32,
            });
            orig_of_location.push(l as u32);
        }
    }

    // Rewrite visits: sublocation s of a split location l moves to piece
    // s % p with local room index s / p.
    let mut visits = pop.visits.clone();
    for v in &mut visits {
        let l = v.location.0 as usize;
        let p = pieces[l];
        if p > 1 {
            let s = v.sublocation.0 as u32;
            let q = s % p;
            let new_loc = if q == 0 {
                l as u32
            } else {
                piece_base[l] + (q - 1)
            };
            v.location = synthpop::LocationId(new_loc);
            v.sublocation = SublocationId((s / p) as u16);
        }
    }

    let new_pop = Population {
        code: pop.code.clone(),
        seed: pop.seed,
        people: pop.people.clone(),
        locations,
        visits,
        person_offsets: pop.person_offsets.clone(),
    };
    SplitResult {
        pop: new_pop,
        orig_of_location,
        n_split,
        threshold,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use synthpop::{BipartiteGraph, LocationId, PopulationConfig};

    fn pop() -> Population {
        Population::generate(&PopulationConfig::small("T", 20_000, 5))
    }

    fn degrees(p: &Population) -> Vec<u32> {
        let mut d = vec![0u32; p.locations.len()];
        for v in &p.visits {
            d[v.location.0 as usize] += 1;
        }
        d
    }

    #[test]
    fn split_reduces_max_degree() {
        let p = pop();
        let before = degrees(&p);
        let dmax_before = *before.iter().max().unwrap();
        let res = split_heavy_locations(
            &p,
            &SplitConfig {
                max_partitions: 256,
                threshold_override: None,
            },
        );
        assert!(
            res.n_split > 0,
            "nothing split (threshold {})",
            res.threshold
        );
        let after = degrees(&res.pop);
        let dmax_after = *after.iter().max().unwrap();
        assert!(
            dmax_after < dmax_before,
            "dmax {dmax_before} → {dmax_after}"
        );
        // The paper reports dmax dropping by large factors; with a room cap
        // of ≤ 40 visits, pieces approach the threshold.
        assert!(dmax_after as f64 <= 2.2 * res.threshold as f64 + 80.0);
    }

    #[test]
    fn visits_and_people_conserved() {
        let p = pop();
        let res = split_heavy_locations(&p, &SplitConfig::default());
        assert_eq!(res.pop.visits.len(), p.visits.len());
        assert_eq!(res.pop.people.len(), p.people.len());
        assert_eq!(res.pop.person_offsets, p.person_offsets);
        // Total degree conserved.
        assert_eq!(
            degrees(&p).iter().sum::<u32>(),
            degrees(&res.pop).iter().sum::<u32>()
        );
    }

    #[test]
    fn sublocation_cohorts_preserved() {
        // Every set of people sharing (location, sublocation) before the
        // split still shares a (location, sublocation) after — the split
        // must not separate or merge interaction groups.
        let p = pop();
        let res = split_heavy_locations(&p, &SplitConfig::default());
        use std::collections::BTreeMap;
        let mut before: BTreeMap<(u32, u16), Vec<usize>> = BTreeMap::new();
        for (i, v) in p.visits.iter().enumerate() {
            before
                .entry((v.location.0, v.sublocation.0))
                .or_default()
                .push(i);
        }
        let mut after: BTreeMap<(u32, u16), Vec<usize>> = BTreeMap::new();
        for (i, v) in res.pop.visits.iter().enumerate() {
            after
                .entry((v.location.0, v.sublocation.0))
                .or_default()
                .push(i);
        }
        // Same number of cohorts with the same membership multiset.
        let mut b: Vec<Vec<usize>> = before.into_values().collect();
        let mut a: Vec<Vec<usize>> = after.into_values().collect();
        b.iter_mut().for_each(|v| v.sort_unstable());
        a.iter_mut().for_each(|v| v.sort_unstable());
        b.sort();
        a.sort();
        assert_eq!(a, b);
    }

    #[test]
    fn mapping_points_to_originals() {
        let p = pop();
        let n_orig = p.locations.len();
        let res = split_heavy_locations(&p, &SplitConfig::default());
        assert_eq!(res.orig_of_location.len(), res.pop.locations.len());
        for (new_id, &orig) in res.orig_of_location.iter().enumerate() {
            assert!((orig as usize) < n_orig);
            if new_id < n_orig {
                assert_eq!(orig as usize, new_id, "originals map to themselves");
            }
            // Kind preserved.
            assert_eq!(
                res.pop.locations[new_id].kind,
                p.locations[orig as usize].kind
            );
        }
    }

    #[test]
    fn sublocation_ids_in_range_after_split() {
        let p = pop();
        let res = split_heavy_locations(&p, &SplitConfig::default());
        for v in &res.pop.visits {
            let rooms = res.pop.locations[v.location.0 as usize].n_sublocations;
            assert!(
                v.sublocation.0 < rooms,
                "subloc {} ≥ rooms {rooms} at location {}",
                v.sublocation.0,
                v.location.0
            );
        }
    }

    #[test]
    fn threshold_override_respected() {
        let p = pop();
        let res = split_heavy_locations(
            &p,
            &SplitConfig {
                max_partitions: 16,
                threshold_override: Some(50),
            },
        );
        assert_eq!(res.threshold, 50);
    }

    #[test]
    fn small_threshold_splits_more() {
        let p = pop();
        let few = split_heavy_locations(
            &p,
            &SplitConfig {
                max_partitions: 8,
                threshold_override: None,
            },
        );
        let many = split_heavy_locations(
            &p,
            &SplitConfig {
                max_partitions: 4096,
                threshold_override: None,
            },
        );
        assert!(many.n_split >= few.n_split);
        assert!(many.pop.locations.len() >= few.pop.locations.len());
    }

    #[test]
    fn graph_builds_on_split_population() {
        let p = pop();
        let res = split_heavy_locations(&p, &SplitConfig::default());
        let g = BipartiteGraph::build(&res.pop);
        assert_eq!(g.n_locations() as usize, res.pop.locations.len());
        // Unique visitors at any split piece ≤ original's.
        let g0 = BipartiteGraph::build(&p);
        let orig0 = res.orig_of_location[p.locations.len()]; // first extra piece
        assert!(
            g.location_degree(LocationId(p.locations.len() as u32))
                <= g0.location_degree(LocationId(orig0))
        );
    }

    #[test]
    fn ceiling_improves_table_ii_style() {
        // Table II: Ltot/lmax rises sharply after modification.
        let p = pop();
        let res = split_heavy_locations(&p, &SplitConfig::default());
        let lmax_before = *degrees(&p).iter().max().unwrap() as f64;
        let lmax_after = *degrees(&res.pop).iter().max().unwrap() as f64;
        let total = p.visits.len() as f64;
        let ceiling_before = total / lmax_before;
        let ceiling_after = total / lmax_after;
        assert!(
            ceiling_after > 1.5 * ceiling_before,
            "ceiling {ceiling_before:.1} → {ceiling_after:.1}"
        );
    }
}
