//! Chaos conformance for the crash-tolerant driver: a net-mode run that
//! loses a worker mid-simulation must recover automatically from the
//! last committed checkpoint and finish with a curve **bit-identical**
//! to an undisturbed sequential run — on both wire planes, and for both
//! failure classes the detector knows (crash and stall).
//!
//! Tests with `n_procs > 1` re-execute this test binary (filtered by
//! thread name, see `chare_rt::net::launch`) to create their workers, so
//! each test body runs once per process and must stay SPMD-safe: the
//! sequential baseline is computed only on the root, and every rank
//! funnels through `run_resilient`, which aligns workers to the attempt
//! they were spawned for. The recovery env vars are process-global, so
//! the net tests serialize on a mutex.

use std::sync::Mutex;

use chare_rt::{FaultPlan, NetTransport, RecoveryError, RuntimeConfig, TransportError};
use episim_core::distribution::{DataDistribution, Strategy};
use episim_core::output::EpiCurve;
use episim_core::resilient::{run_resilient, RecoveryConfig};
use episim_core::simulator::{SimConfig, Simulator};
use ptts::flu_model;
use ptts::intervention::{Action, Intervention, InterventionSet, Trigger};
use synthpop::{LocationKind, Population, PopulationConfig};

/// Serializes the net-mode tests: the root exports `EPISIM_NET_RECOVERY_*`
/// env vars before each attempt, and env is process-global.
static ENV_LOCK: Mutex<()> = Mutex::new(());

const DAYS: u32 = 10;
/// Phase at which the injected fault fires: phases are 1-based with three
/// per day, so 17 = the ComputeDay phase of day 5 — squarely mid-run,
/// with epochs 1..=5 already committed.
const FAULT_PHASE: u32 = 17;

fn fixture() -> (DataDistribution, SimConfig) {
    let pop = Population::generate(&PopulationConfig::small("RZ", 1200, 55));
    let dist = DataDistribution::build(&pop, Strategy::GraphPartition, 4, 55);
    let cfg = SimConfig {
        days: DAYS,
        r: 0.0013,
        seed: 55,
        initial_infections: 8,
        stop_when_extinct: false,
        // An intervention that fires mid-run, so recovery must restore
        // intervention state (fired flags + active windows), not just
        // person states.
        interventions: InterventionSet::new(vec![Intervention {
            trigger: Trigger::PrevalenceAbove(0.02),
            action: Action::CloseKind {
                kind: LocationKind::School as u8,
                duration: 4,
            },
        }]),
    };
    (dist, cfg)
}

fn seq_baseline(dist: &DataDistribution, cfg: &SimConfig) -> EpiCurve {
    Simulator::new(dist, flu_model(), cfg.clone(), RuntimeConfig::sequential(4))
        .run()
        .curve
}

fn recovery_cfg(tag: &str) -> RecoveryConfig {
    let dir = std::env::temp_dir().join(format!("episim-resilient-{tag}-{}", std::process::id()));
    RecoveryConfig::new(dir)
}

/// Net config used by the chaos tests: heartbeats on, so stalls (not
/// just socket EOFs) are detectable.
fn net_cfg(transport: NetTransport) -> RuntimeConfig {
    let mut rt = RuntimeConfig::net(4, 2);
    rt.net.transport = transport;
    rt.net.heartbeat_interval_ms = 100;
    rt.net.heartbeat_timeout_ms = 1_000;
    rt
}

/// Root-side body shared by the chaos cases: run resiliently, then check
/// the curve against the undisturbed sequential reference bit-for-bit.
fn assert_recovers(tag: &str, rt: RuntimeConfig) {
    let on_root = chare_rt::worker_target().is_none();
    let _guard = on_root.then(|| ENV_LOCK.lock().unwrap_or_else(|e| e.into_inner()));
    let (dist, cfg) = fixture();
    let rec = recovery_cfg(tag);
    let run =
        run_resilient(&dist, &flu_model(), &cfg, &rt, &rec).expect("run must recover, not abort");
    // Workers exit inside engine teardown; everything below is root-only.
    let reference = seq_baseline(&dist, &cfg);
    assert_eq!(run.attempts, 2, "fault must fire exactly once");
    assert_eq!(
        run.resumed_from,
        Some(5),
        "day-5 fault must roll back to the epoch committed after day 5"
    );
    assert_eq!(
        run.curve.hash(),
        reference.hash(),
        "recovered curve must be bit-identical to the sequential run"
    );
    assert_eq!(run.curve.days, reference.days);
    let _ = std::fs::remove_dir_all(&rec.dir);
}

#[test]
fn resilient_recovers_from_killed_worker_tcp() {
    let mut rt = net_cfg(NetTransport::Tcp);
    rt.net.kill_rank = 1;
    rt.net.kill_phase = FAULT_PHASE;
    assert_recovers("kill-tcp", rt);
}

#[test]
fn resilient_recovers_from_killed_worker_shm() {
    let mut rt = net_cfg(NetTransport::Shm);
    rt.net.kill_rank = 1;
    rt.net.kill_phase = FAULT_PHASE;
    assert_recovers("kill-shm", rt);
}

/// A stall (process alive, compute+comm descheduled) is invisible to
/// EOF-based detection — only the heartbeat timeout catches it. The
/// stalled worker sleeps well past the timeout, the detector classifies
/// it, the attempt aborts, and recovery proceeds exactly as for a crash.
#[test]
fn resilient_recovers_from_stalled_worker() {
    let mut rt = net_cfg(NetTransport::Tcp);
    rt.faults = FaultPlan::proc_stall(55, 1, FAULT_PHASE, 4_000);
    assert_recovers("stall", rt);
}

/// Sequential mode gains checkpoints but can't fail: one attempt, no
/// resume, curve identical to the plain runner.
#[test]
fn resilient_sequential_matches_plain_run() {
    let _guard = ENV_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let (dist, cfg) = fixture();
    let rec = recovery_cfg("seq");
    let run = run_resilient(
        &dist,
        &flu_model(),
        &cfg,
        &RuntimeConfig::sequential(4),
        &rec,
    )
    .expect("sequential run cannot fail");
    assert_eq!(run.attempts, 1);
    assert_eq!(run.resumed_from, None);
    assert_eq!(run.curve.hash(), seq_baseline(&dist, &cfg).hash());
    // Checkpoints were actually written (daily cadence, keep = 2).
    let shards = std::fs::read_dir(&rec.dir)
        .expect("store dir exists")
        .count();
    assert!(shards >= 2, "expected retained epoch shards, got {shards}");
    let _ = std::fs::remove_dir_all(&rec.dir);
}

/// With retries exhausted the driver must return a typed error — never
/// hang, never loop forever.
#[test]
fn resilient_exhausted_returns_typed_error() {
    let on_root = chare_rt::worker_target().is_none();
    let _guard = on_root.then(|| ENV_LOCK.lock().unwrap_or_else(|e| e.into_inner()));
    let (dist, cfg) = fixture();
    let mut rt = net_cfg(NetTransport::Tcp);
    rt.net.kill_rank = 1;
    rt.net.kill_phase = FAULT_PHASE;
    let mut rec = recovery_cfg("exhausted");
    rec.max_retries = 0;
    let err = run_resilient(&dist, &flu_model(), &cfg, &rt, &rec)
        .expect_err("zero retries must surface the failure");
    match err {
        RecoveryError::Exhausted { attempts, ref last } => {
            assert_eq!(attempts, 1);
            assert!(!last.is_empty(), "last error must describe the failure");
        }
        other => panic!("expected Exhausted, got {other:?}"),
    }
    let _ = std::fs::remove_dir_all(&rec.dir);
}

/// The fail-fast contract is untouched when recovery is not in play: a
/// plain (non-resilient) net run that loses a worker still aborts with
/// the typed transport error instead of hanging or mis-reporting.
#[test]
fn plain_net_run_still_fails_fast_without_recovery() {
    let on_root = chare_rt::worker_target().is_none();
    let _guard = on_root.then(|| ENV_LOCK.lock().unwrap_or_else(|e| e.into_inner()));
    let (dist, cfg) = fixture();
    let mut rt = net_cfg(NetTransport::Tcp);
    rt.net.kill_rank = 1;
    rt.net.kill_phase = FAULT_PHASE;
    let err = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        Simulator::new(&dist, flu_model(), cfg, rt).run()
    }))
    .expect_err("losing a worker must not look like success");
    assert!(
        err.downcast_ref::<TransportError>().is_some(),
        "panic payload must stay a typed TransportError"
    );
}
