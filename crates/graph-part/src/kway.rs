//! The multilevel k-way driver: coarsen → initial partition → uncoarsen
//! with refinement at every level (the METIS recipe).

use crate::coarsen::coarsen_to;
use crate::graph::CsrGraph;
use crate::initpart::greedy_growing;
use crate::refine::{refine, RefineConfig};
use crate::Partition;

/// Partitioning parameters.
#[derive(Debug, Clone, Copy)]
pub struct PartitionConfig {
    /// Number of partitions.
    pub k: u32,
    /// Balance limit per constraint (≥ 1.0). METIS calls this the
    /// "tolerable variance in the sum of vertex weights per partition"
    /// (paper §III-A).
    pub ubfactor: f64,
    /// RNG seed (the partitioner is deterministic given the seed).
    pub seed: u64,
    /// Stop coarsening when at most `coarsen_factor × k` vertices remain.
    pub coarsen_factor: u32,
    /// Refinement passes per level.
    pub refine_passes: u32,
}

impl PartitionConfig {
    /// Reasonable defaults for `k` partitions.
    pub fn new(k: u32) -> Self {
        PartitionConfig {
            k,
            ubfactor: 1.05,
            seed: 1,
            coarsen_factor: 16,
            refine_passes: 8,
        }
    }

    /// Builder-style seed override.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Builder-style balance override.
    pub fn with_ubfactor(mut self, ub: f64) -> Self {
        self.ubfactor = ub.max(1.0);
        self
    }
}

/// Multilevel k-way partitioning of `g`.
pub fn kway_partition(g: &CsrGraph, cfg: &PartitionConfig) -> Partition {
    let k = cfg.k.max(1);
    let n = g.n();
    if k == 1 {
        return Partition {
            k,
            assignment: vec![0; n as usize],
        };
    }
    if n <= k {
        return Partition {
            k,
            assignment: (0..n).collect(),
        };
    }

    // Coarsen. Target keeps enough vertices for a meaningful initial
    // partition but small enough that greedy growing is cheap.
    let target = (cfg.coarsen_factor.max(2)).saturating_mul(k).max(256);
    let levels = coarsen_to(g, target, cfg.seed);

    // Initial partition on the coarsest graph.
    let coarsest: &CsrGraph = levels.last().map(|l| &l.graph).unwrap_or(g);
    let mut part = greedy_growing(coarsest, k, cfg.seed);
    let rcfg = RefineConfig {
        ubfactor: cfg.ubfactor,
        max_passes: cfg.refine_passes,
        seed: cfg.seed,
    };
    refine(coarsest, &mut part, &rcfg);

    // Uncoarsen: project through each level and refine on the finer graph.
    for i in (0..levels.len()).rev() {
        let fine_graph: &CsrGraph = if i == 0 { g } else { &levels[i - 1].graph };
        let map = &levels[i].map;
        let mut fine_assignment = vec![0u32; fine_graph.n() as usize];
        for (v, &c) in map.iter().enumerate() {
            fine_assignment[v] = part.assignment[c as usize];
        }
        part = Partition {
            k,
            assignment: fine_assignment,
        };
        refine(fine_graph, &mut part, &rcfg);
    }
    part
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::{figure2_example, GraphBuilder};
    use crate::metrics::{imbalances, total_edge_cut, PartitionQuality};
    use crate::rr::round_robin;
    use ptts::CounterRng;

    fn grid_graph(side: u32) -> CsrGraph {
        let n = side * side;
        let mut b = GraphBuilder::new(n, 1);
        for v in 0..n {
            b.set_vwgt(v, &[1]);
        }
        for r in 0..side {
            for c in 0..side {
                let v = r * side + c;
                if c + 1 < side {
                    b.add_edge(v, v + 1, 1);
                }
                if r + 1 < side {
                    b.add_edge(v, v + side, 1);
                }
            }
        }
        b.build()
    }

    #[test]
    fn grid_4way_close_to_optimal() {
        let g = grid_graph(16); // 256 vertices, optimal 4-way cut = 32
        let p = kway_partition(&g, &PartitionConfig::new(4));
        p.validate().unwrap();
        let cut = total_edge_cut(&g, &p);
        // Greedy k-way refinement typically lands within ~3× of the optimal
        // 32 on a grid (METIS gets ~36); anything materially above that
        // signals a regression.
        assert!(cut <= 100, "cut {cut}, optimal 32");
        let imb = imbalances(&g, &p);
        assert!(imb[0] <= 1.15, "imbalance {}", imb[0]);
    }

    #[test]
    fn beats_round_robin_on_cut() {
        let g = grid_graph(20);
        let gp = kway_partition(&g, &PartitionConfig::new(8));
        let rr = round_robin(g.n(), 8);
        let cut_gp = total_edge_cut(&g, &gp);
        let cut_rr = total_edge_cut(&g, &rr);
        assert!(
            (cut_gp as f64) < 0.5 * cut_rr as f64,
            "GP {cut_gp} vs RR {cut_rr}"
        );
    }

    #[test]
    fn k_exceeding_n() {
        let g = grid_graph(3);
        let p = kway_partition(&g, &PartitionConfig::new(64));
        p.validate().unwrap();
        assert_eq!(p.assignment, (0..9).collect::<Vec<_>>());
    }

    #[test]
    fn deterministic() {
        let g = grid_graph(12);
        let a = kway_partition(&g, &PartitionConfig::new(6).with_seed(9));
        let b = kway_partition(&g, &PartitionConfig::new(6).with_seed(9));
        assert_eq!(a.assignment, b.assignment);
    }

    #[test]
    fn heavy_tailed_graph_respects_minmax() {
        // Power-law-ish: one hub of weight 100, many leaves of weight 1.
        // Perfect balance is impossible; the partitioner must isolate the
        // hub rather than pile more onto its partition.
        let n = 101u32;
        let mut b = GraphBuilder::new(n, 1);
        b.set_vwgt(0, &[100]);
        for v in 1..n {
            b.set_vwgt(v, &[1]);
            b.add_edge(0, v, 1);
        }
        let g = b.build();
        let p = kway_partition(&g, &PartitionConfig::new(4));
        let q = PartitionQuality::compute(&g, &p);
        // Lmax is bounded below by lmax = 100; accept a small margin.
        assert!(q.max_load(0) <= 110, "Lmax {}", q.max_load(0));
    }

    #[test]
    fn figure2_partitioner_finds_good_tradeoff() {
        let g = figure2_example();
        let p = kway_partition(&g, &PartitionConfig::new(5).with_ubfactor(1.7));
        let q = PartitionQuality::compute(&g, &p);
        // The two caption optima are (cut 8, Lmax 8) and (cut 6, Lmax 10);
        // any sane result lies in that envelope.
        assert!(q.edge_cut <= 10, "cut {}", q.edge_cut);
        assert!(q.max_load(0) <= 12, "Lmax {}", q.max_load(0));
    }

    #[test]
    fn two_constraint_partitioning() {
        // 2-constraint random graph: both constraints must end up balanced.
        let n = 400u32;
        let mut b = GraphBuilder::new(n, 2);
        let mut rng = CounterRng::from_key(&[77]);
        for v in 0..n {
            b.set_vwgt(v, &[1 + rng.uniform_u64(5), 1 + rng.uniform_u64(5)]);
        }
        for v in 0..n {
            for _ in 0..3 {
                let u = rng.uniform_u64(n as u64) as u32;
                if u != v {
                    b.add_edge(v, u, 1);
                }
            }
        }
        let g = b.build();
        let p = kway_partition(&g, &PartitionConfig::new(8).with_seed(3));
        let imb = imbalances(&g, &p);
        assert!(imb[0] < 1.35 && imb[1] < 1.35, "imbalances {imb:?}");
    }

    #[test]
    fn large_k_on_modest_graph() {
        let g = grid_graph(32); // 1024 vertices
        let p = kway_partition(&g, &PartitionConfig::new(128));
        p.validate().unwrap();
        let q = PartitionQuality::compute(&g, &p);
        assert!(q.imbalance[0] < 2.0, "imbalance {}", q.imbalance[0]);
    }
}
