//! Round-robin data distribution — the paper's `RR` baseline.
//!
//! "Originally, we assign objects to Charm++ chares round-robin (RR) to
//! approximate static load balancing. However, this is not optimal in terms
//! of load balance and data locality" (§III-B).

use crate::Partition;

/// Assign vertex `v` to partition `v mod k`.
pub fn round_robin(n: u32, k: u32) -> Partition {
    assert!(k >= 1);
    Partition {
        k,
        assignment: (0..n).map(|v| v % k).collect(),
    }
}

/// Assign contiguous blocks of `ceil(n/k)` vertices to each partition
/// (the other common trivial mapping; useful as an ablation).
pub fn block(n: u32, k: u32) -> Partition {
    assert!(k >= 1);
    let per = n.div_ceil(k).max(1);
    Partition {
        k,
        assignment: (0..n).map(|v| (v / per).min(k - 1)).collect(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_robin_cycles() {
        let p = round_robin(10, 3);
        assert_eq!(p.assignment, vec![0, 1, 2, 0, 1, 2, 0, 1, 2, 0]);
        p.validate().unwrap();
    }

    #[test]
    fn round_robin_counts_even() {
        let p = round_robin(100, 7);
        let mut counts = [0u32; 7];
        for &a in &p.assignment {
            counts[a as usize] += 1;
        }
        let (min, max) = (counts.iter().min().unwrap(), counts.iter().max().unwrap());
        assert!(max - min <= 1);
    }

    #[test]
    fn block_is_contiguous() {
        let p = block(10, 3);
        assert_eq!(p.assignment, vec![0, 0, 0, 0, 1, 1, 1, 1, 2, 2]);
    }

    #[test]
    fn k_larger_than_n() {
        let p = round_robin(3, 10);
        p.validate().unwrap();
        assert_eq!(p.assignment, [0, 1, 2]);
        let b = block(3, 10);
        b.validate().unwrap();
    }

    #[test]
    fn k_one() {
        assert!(round_robin(5, 1).assignment.iter().all(|&a| a == 0));
        assert!(block(5, 1).assignment.iter().all(|&a| a == 0));
    }
}
