//! Recursive bisection — the other classic METIS-family driver, kept as an
//! ablation against the direct k-way partitioner.
//!
//! Splits the graph into two sides with target fractions `⌈k/2⌉ : ⌊k/2⌋`
//! (so odd k works), refines the bisection, then recurses on the induced
//! subgraphs. Compared to direct k-way it optimizes each cut locally and
//! can miss globally better arrangements, but its bisections are usually
//! tighter — the classic tradeoff this module lets the benches measure.

use crate::graph::{CsrGraph, GraphBuilder};
use crate::initpart::LoadTracker;
use crate::refine::{refine_targets, RefineConfig};
use crate::{kway::PartitionConfig, Partition};
use ptts::CounterRng;
use std::collections::BinaryHeap;

/// Recursive-bisection k-way partitioning with the same configuration type
/// as [`crate::kway_partition`].
pub fn recursive_bisection(g: &CsrGraph, cfg: &PartitionConfig) -> Partition {
    let k = cfg.k.max(1);
    let n = g.n();
    if k == 1 {
        return Partition {
            k,
            assignment: vec![0; n as usize],
        };
    }
    if n <= k {
        return Partition {
            k,
            assignment: (0..n).collect(),
        };
    }
    let mut assignment = vec![0u32; n as usize];
    let all: Vec<u32> = (0..n).collect();
    split(g, &all, 0, k, cfg, &mut assignment);
    Partition { k, assignment }
}

/// Recursively split `vertices` (ids into `g`) into partitions
/// `base..base + parts`, writing into `assignment`.
fn split(
    g: &CsrGraph,
    vertices: &[u32],
    base: u32,
    parts: u32,
    cfg: &PartitionConfig,
    assignment: &mut [u32],
) {
    if parts == 1 || vertices.is_empty() {
        for &v in vertices {
            assignment[v as usize] = base;
        }
        return;
    }
    let left_parts = parts.div_ceil(2);
    let right_parts = parts - left_parts;
    let (sub, _back) = induced_subgraph(g, vertices);
    let frac_left = left_parts as f64 / parts as f64;
    let side = bisect(&sub, frac_left, cfg);

    let mut left = Vec::with_capacity((vertices.len() as f64 * frac_left) as usize);
    let mut right = Vec::new();
    for (i, &v) in vertices.iter().enumerate() {
        if side[i] == 0 {
            left.push(v);
        } else {
            right.push(v);
        }
    }
    split(g, &left, base, left_parts, cfg, assignment);
    split(g, &right, base + left_parts, right_parts, cfg, assignment);
}

/// Build the subgraph induced by `vertices`. Returns the subgraph and the
/// local→global vertex map (which is just `vertices`, returned for
/// clarity).
fn induced_subgraph<'a>(g: &CsrGraph, vertices: &'a [u32]) -> (CsrGraph, &'a [u32]) {
    let mut local = vec![u32::MAX; g.n() as usize];
    for (i, &v) in vertices.iter().enumerate() {
        local[v as usize] = i as u32;
    }
    let mut b = GraphBuilder::new(vertices.len() as u32, g.ncon());
    for (i, &v) in vertices.iter().enumerate() {
        b.set_vwgt(i as u32, g.vwgts(v));
        for (u, w) in g.neighbors(v) {
            let lu = local[u as usize];
            if lu != u32::MAX && (i as u32) < lu {
                b.add_edge(i as u32, lu, w);
            }
        }
    }
    (b.build(), vertices)
}

/// Greedy-grow one side to `frac_left` of the total weight, then refine the
/// 2-way cut. Returns 0/1 per vertex.
fn bisect(g: &CsrGraph, frac_left: f64, cfg: &PartitionConfig) -> Vec<u32> {
    let n = g.n();
    if n <= 1 {
        return vec![0; n as usize];
    }
    let mut side = vec![1u32; n as usize];
    let mut tracker = LoadTracker::with_fractions(g, &[frac_left, (1.0 - frac_left).max(1e-9)]);
    // Everything starts on side 1.
    for v in 0..n {
        tracker.add(g, 1, v);
    }
    // Grow side 0 from the highest-degree vertex by strongest connection.
    let seed_v = (0..n).max_by_key(|&v| g.degree(v)).unwrap_or(0);
    let mut rng = CounterRng::from_key(&[cfg.seed, 0xB15E]);
    let mut frontier: BinaryHeap<(u64, u64, u32)> = BinaryHeap::new();
    frontier.push((0, 0, seed_v));
    let mut pending: Vec<u32> = Vec::new();
    while tracker.fullness(0) < 1.0 {
        let v = match frontier.pop() {
            Some((_, _, v)) => v,
            None => {
                // Disconnected remainder: seed from any side-1 vertex.
                match side.iter().position(|&s| s == 1) {
                    Some(v) => v as u32,
                    None => break,
                }
            }
        };
        if side[v as usize] == 0 {
            continue;
        }
        side[v as usize] = 0;
        tracker.remove(g, 1, v);
        tracker.add(g, 0, v);
        pending.clear();
        for (u, w) in g.neighbors(v) {
            if side[u as usize] == 1 {
                pending.push(u);
                frontier.push((w as u64, rng.uniform_u64(u64::MAX), u));
            }
        }
    }
    let mut part = Partition {
        k: 2,
        assignment: side,
    };
    refine_targets(
        g,
        &mut part,
        &RefineConfig {
            ubfactor: cfg.ubfactor,
            max_passes: cfg.refine_passes,
            seed: cfg.seed,
        },
        Some(&[frac_left, (1.0 - frac_left).max(1e-9)]),
    );
    part.assignment
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::GraphBuilder;
    use crate::kway::kway_partition;
    use crate::metrics::{imbalances, total_edge_cut, PartitionQuality};

    fn grid_graph(side: u32) -> CsrGraph {
        let n = side * side;
        let mut b = GraphBuilder::new(n, 1);
        for v in 0..n {
            b.set_vwgt(v, &[1]);
        }
        for r in 0..side {
            for c in 0..side {
                let v = r * side + c;
                if c + 1 < side {
                    b.add_edge(v, v + 1, 1);
                }
                if r + 1 < side {
                    b.add_edge(v, v + side, 1);
                }
            }
        }
        b.build()
    }

    #[test]
    fn rb_4way_grid_quality() {
        let g = grid_graph(16);
        let p = recursive_bisection(&g, &PartitionConfig::new(4));
        p.validate().unwrap();
        let cut = total_edge_cut(&g, &p);
        assert!(cut <= 100, "cut {cut}, optimal 32");
        let imb = imbalances(&g, &p);
        assert!(imb[0] <= 1.2, "imbalance {}", imb[0]);
    }

    #[test]
    fn rb_handles_odd_k() {
        let g = grid_graph(15); // 225 vertices
        for k in [3u32, 5, 7, 9] {
            let p = recursive_bisection(&g, &PartitionConfig::new(k));
            p.validate().unwrap();
            let imb = imbalances(&g, &p);
            assert!(imb[0] <= 1.35, "k={k} imbalance {}", imb[0]);
            // Every partition non-empty.
            let mut seen = vec![false; k as usize];
            for &a in &p.assignment {
                seen[a as usize] = true;
            }
            assert!(seen.iter().all(|&s| s), "k={k}: empty partition");
        }
    }

    #[test]
    fn rb_comparable_to_kway() {
        // RB and direct k-way should land in the same quality class on a
        // grid (within 2× of each other's cut).
        let g = grid_graph(20);
        let rb = recursive_bisection(&g, &PartitionConfig::new(8));
        let kw = kway_partition(&g, &PartitionConfig::new(8));
        let cut_rb = total_edge_cut(&g, &rb) as f64;
        let cut_kw = total_edge_cut(&g, &kw) as f64;
        assert!(
            cut_rb < 2.0 * cut_kw && cut_kw < 2.0 * cut_rb,
            "RB {cut_rb} vs kway {cut_kw}"
        );
    }

    #[test]
    fn rb_multiconstraint() {
        let mut b = GraphBuilder::new(100, 2);
        for v in 0..100u32 {
            b.set_vwgt(v, &[1 + (v % 3) as u64, 1 + (v % 5) as u64]);
        }
        for v in 0..99 {
            b.add_edge(v, v + 1, 1);
        }
        let g = b.build();
        let p = recursive_bisection(&g, &PartitionConfig::new(4));
        let q = PartitionQuality::compute(&g, &p);
        assert!(
            q.imbalance[0] < 1.4 && q.imbalance[1] < 1.4,
            "{:?}",
            q.imbalance
        );
    }

    #[test]
    fn rb_k_one_and_k_ge_n() {
        let g = grid_graph(3);
        let p1 = recursive_bisection(&g, &PartitionConfig::new(1));
        assert!(p1.assignment.iter().all(|&a| a == 0));
        let p16 = recursive_bisection(&g, &PartitionConfig::new(16));
        p16.validate().unwrap();
    }

    #[test]
    fn induced_subgraph_preserves_structure() {
        let g = grid_graph(4);
        // Take the left 2×4 column block.
        let vs: Vec<u32> = (0..16).filter(|v| v % 4 < 2).collect();
        let (sub, back) = induced_subgraph(&g, &vs);
        sub.validate().unwrap();
        assert_eq!(sub.n(), 8);
        assert_eq!(back.len(), 8);
        // Internal edges: vertical (3 per column × 2) + horizontal (4).
        assert_eq!(sub.m(), 10);
        assert_eq!(sub.total_weights()[0], 8);
    }
}
