//! # graph-part — multilevel multi-constraint k-way graph partitioning
//!
//! EpiSimdemics "supports an interface to apply external partitioning
//! methods, such as METIS" and specifically uses METIS's *multi-constraint*
//! mode, assigning "a vector of weights to each vertex … each element of the
//! vector is associated with a unique load balancing constraint for a
//! specific phase of the computation" (paper §III-A). METIS itself is not a
//! Rust library, so this crate implements the same algorithm family from
//! scratch (the substitution is recorded in DESIGN.md):
//!
//! * [`graph`] — CSR graphs with multi-constraint (vector) vertex weights,
//! * [`coarsen`] — heavy-edge matching (HEM) coarsening,
//! * [`initpart`] — greedy graph-growing initial partitioning,
//! * [`refine`] — boundary refinement with per-constraint balance limits,
//! * [`kway`] — the multilevel driver tying the phases together,
//! * [`rb`] — recursive bisection, the other METIS-family driver (ablation),
//! * [`rr`] — the round-robin baseline the paper labels `RR`,
//! * [`metrics`] — edge cut, **maximum per-partition edge cut** (Figure 14)
//!   and per-constraint imbalance.
//!
//! Like METIS, the partitioner minimizes total edge cut subject to balance
//! constraints; unlike METIS it is deterministic for a fixed seed.

pub mod coarsen;
pub mod graph;
pub mod initpart;
pub mod kway;
pub mod metrics;
pub mod rb;
pub mod refine;
pub mod rr;

pub use graph::{CsrGraph, GraphBuilder};
pub use kway::{kway_partition, PartitionConfig};
pub use metrics::{
    imbalances, max_partition_cut, partition_loads, total_edge_cut, PartitionQuality,
};
pub use rb::recursive_bisection;
pub use rr::round_robin;

/// A partition assignment: `assignment[v]` is the partition of vertex `v`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Partition {
    /// Number of partitions (`k`).
    pub k: u32,
    /// Partition id per vertex.
    pub assignment: Vec<u32>,
}

impl Partition {
    /// Validate that every vertex is assigned to a partition `< k`.
    pub fn validate(&self) -> Result<(), String> {
        match self.assignment.iter().position(|&p| p >= self.k) {
            None => Ok(()),
            Some(v) => Err(format!(
                "vertex {v} assigned to partition {} ≥ k = {}",
                self.assignment[v], self.k
            )),
        }
    }
}
