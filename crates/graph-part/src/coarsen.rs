//! Heavy-edge matching (HEM) coarsening.
//!
//! The classic multilevel first phase (Karypis & Kumar): repeatedly contract
//! a matching that prefers heavy edges, so that the edge weight hidden
//! inside coarse vertices — weight refinement can no longer cut — is
//! maximized.

use crate::graph::{CsrGraph, GraphBuilder};
use ptts::CounterRng;

/// One coarsening level: the coarse graph and the fine→coarse vertex map.
#[derive(Debug, Clone)]
pub struct CoarseLevel {
    /// The contracted graph.
    pub graph: CsrGraph,
    /// `map[v_fine] = v_coarse`.
    pub map: Vec<u32>,
}

/// Contract one heavy-edge matching. Returns `None` when the graph shrank
/// by less than 10% (coarsening has stalled, e.g. a star graph).
pub fn coarsen_once(g: &CsrGraph, seed: u64) -> Option<CoarseLevel> {
    let n = g.n();
    if n < 2 {
        return None;
    }
    // Random visitation order for matching (deterministic via seed).
    let mut order: Vec<u32> = (0..n).collect();
    let mut rng = CounterRng::from_key(&[seed, 0xC0A5]);
    // Fisher–Yates.
    for i in (1..n as usize).rev() {
        let j = rng.uniform_u64((i + 1) as u64) as usize;
        order.swap(i, j);
    }

    const UNMATCHED: u32 = u32::MAX;
    let mut mate = vec![UNMATCHED; n as usize];
    for &v in &order {
        if mate[v as usize] != UNMATCHED {
            continue;
        }
        // Heaviest unmatched neighbor.
        let mut best: Option<(u32, u32)> = None;
        for (u, w) in g.neighbors(v) {
            if mate[u as usize] == UNMATCHED && u != v {
                match best {
                    Some((_, bw)) if bw >= w => {}
                    _ => best = Some((u, w)),
                }
            }
        }
        match best {
            Some((u, _)) => {
                mate[v as usize] = u;
                mate[u as usize] = v;
            }
            None => mate[v as usize] = v, // matched with itself
        }
    }

    // Assign coarse ids: one per matched pair / singleton.
    let mut map = vec![UNMATCHED; n as usize];
    let mut next = 0u32;
    for v in 0..n {
        if map[v as usize] != UNMATCHED {
            continue;
        }
        let m = mate[v as usize];
        map[v as usize] = next;
        if m != v && m != UNMATCHED {
            map[m as usize] = next;
        }
        next += 1;
    }
    let coarse_n = next;
    if (coarse_n as f64) > 0.9 * n as f64 {
        return None;
    }

    // Contract.
    let mut b = GraphBuilder::new(coarse_n, g.ncon());
    let mut wbuf = vec![0u64; g.ncon()];
    let mut acc: Vec<Vec<u64>> = vec![vec![0; g.ncon()]; coarse_n as usize];
    for v in 0..n {
        let cv = map[v as usize] as usize;
        for (c, w) in g.vwgts(v).iter().enumerate() {
            acc[cv][c] += w;
        }
    }
    for (cv, ws) in acc.iter().enumerate() {
        wbuf.copy_from_slice(ws);
        b.set_vwgt(cv as u32, &wbuf);
    }
    for v in 0..n {
        for (u, w) in g.neighbors(v) {
            if v < u {
                let (cv, cu) = (map[v as usize], map[u as usize]);
                if cv != cu {
                    b.add_edge(cv, cu, w);
                }
            }
        }
    }
    Some(CoarseLevel {
        graph: b.build(),
        map,
    })
}

/// Coarsen until at most `target_n` vertices remain or progress stalls.
/// Returns the levels from finest to coarsest.
pub fn coarsen_to(g: &CsrGraph, target_n: u32, seed: u64) -> Vec<CoarseLevel> {
    let mut levels = Vec::new();
    let mut current = g.clone();
    let mut round = 0u64;
    while current.n() > target_n {
        match coarsen_once(&current, seed.wrapping_add(round)) {
            Some(level) => {
                current = level.graph.clone();
                levels.push(level);
            }
            None => break,
        }
        round += 1;
    }
    levels
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::figure2_example;

    fn path_graph(n: u32) -> CsrGraph {
        let mut b = GraphBuilder::new(n, 1);
        for v in 0..n {
            b.set_vwgt(v, &[1]);
        }
        for v in 0..n - 1 {
            b.add_edge(v, v + 1, 1);
        }
        b.build()
    }

    #[test]
    fn weights_conserved_across_levels() {
        let g = path_graph(64);
        let levels = coarsen_to(&g, 8, 1);
        assert!(!levels.is_empty());
        for level in &levels {
            level.graph.validate().unwrap();
        }
        let coarsest = &levels.last().unwrap().graph;
        assert_eq!(coarsest.total_weights(), g.total_weights());
        assert!(coarsest.n() <= 12, "coarsest n = {}", coarsest.n());
    }

    #[test]
    fn map_is_total_and_in_range() {
        let g = path_graph(33);
        let level = coarsen_once(&g, 2).unwrap();
        assert_eq!(level.map.len(), 33);
        let cn = level.graph.n();
        assert!(level.map.iter().all(|&c| c < cn));
        // Every coarse vertex has at least one fine vertex.
        let mut seen = vec![false; cn as usize];
        for &c in &level.map {
            seen[c as usize] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn matching_halves_path_graph() {
        let g = path_graph(100);
        let level = coarsen_once(&g, 3).unwrap();
        // A path admits a near-perfect matching.
        assert!(level.graph.n() <= 66, "coarse n = {}", level.graph.n());
    }

    #[test]
    fn star_graph_stalls_gracefully() {
        // A star only admits one matched pair per round; shrinkage is
        // 1/n and coarsening must refuse rather than loop forever.
        let mut b = GraphBuilder::new(50, 1);
        for v in 0..50 {
            b.set_vwgt(v, &[1]);
        }
        for v in 1..50 {
            b.add_edge(0, v, 1);
        }
        let g = b.build();
        let levels = coarsen_to(&g, 4, 7);
        // Must terminate; the coarsest graph keeps total weight.
        if let Some(last) = levels.last() {
            assert_eq!(last.graph.total_weights(), g.total_weights());
        }
    }

    #[test]
    fn edge_weight_accumulates_on_contraction() {
        // Triangle with unit weights: contracting one edge produces a
        // single vertex pair joined by weight 2.
        let mut b = GraphBuilder::new(3, 1);
        for v in 0..3 {
            b.set_vwgt(v, &[1]);
        }
        b.add_edge(0, 1, 1);
        b.add_edge(1, 2, 1);
        b.add_edge(0, 2, 1);
        let g = b.build();
        let level = coarsen_once(&g, 1).unwrap();
        assert_eq!(level.graph.n(), 2);
        assert_eq!(level.graph.total_edge_weight(), 2);
    }

    #[test]
    fn multiconstraint_weights_summed() {
        let mut b = GraphBuilder::new(4, 2);
        for v in 0..4 {
            b.set_vwgt(v, &[v as u64 + 1, 10 * (v as u64 + 1)]);
        }
        b.add_edge(0, 1, 5);
        b.add_edge(2, 3, 5);
        let g = b.build();
        let level = coarsen_once(&g, 1).unwrap();
        assert_eq!(level.graph.n(), 2);
        assert_eq!(level.graph.total_weights(), vec![10, 100]);
    }

    #[test]
    fn figure2_coarsens_validly() {
        let g = figure2_example();
        let levels = coarsen_to(&g, 4, 9);
        for l in &levels {
            l.graph.validate().unwrap();
        }
    }
}
