//! CSR graphs with multi-constraint vertex weights.
//!
//! The layout mirrors METIS: `xadj`/`adjncy`/`adjwgt` for the structure and
//! a flat `vwgt` array of `ncon` weights per vertex, where each constraint
//! corresponds to one phase of the application's computation (persons /
//! locations in EpiSimdemics).

/// An undirected graph in CSR form with weighted edges and `ncon`
/// weights per vertex.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CsrGraph {
    ncon: usize,
    /// Offsets: neighbors of `v` are `adjncy[xadj[v]..xadj[v+1]]`.
    xadj: Vec<u32>,
    /// Neighbor vertex ids (each undirected edge appears twice).
    adjncy: Vec<u32>,
    /// Edge weights, parallel to `adjncy`.
    adjwgt: Vec<u32>,
    /// Vertex weights, `vwgt[v*ncon + c]`.
    vwgt: Vec<u64>,
}

impl CsrGraph {
    /// Number of vertices.
    #[inline]
    pub fn n(&self) -> u32 {
        (self.xadj.len() - 1) as u32
    }

    /// Number of undirected edges.
    #[inline]
    pub fn m(&self) -> u64 {
        (self.adjncy.len() / 2) as u64
    }

    /// Number of balance constraints.
    #[inline]
    pub fn ncon(&self) -> usize {
        self.ncon
    }

    /// Neighbors of `v` with edge weights.
    #[inline]
    pub fn neighbors(&self, v: u32) -> impl Iterator<Item = (u32, u32)> + '_ {
        let lo = self.xadj[v as usize] as usize;
        let hi = self.xadj[v as usize + 1] as usize;
        self.adjncy[lo..hi]
            .iter()
            .copied()
            .zip(self.adjwgt[lo..hi].iter().copied())
    }

    /// Degree of `v`.
    #[inline]
    pub fn degree(&self, v: u32) -> u32 {
        self.xadj[v as usize + 1] - self.xadj[v as usize]
    }

    /// Weight of `v` under constraint `c`.
    #[inline]
    pub fn vwgt(&self, v: u32, c: usize) -> u64 {
        self.vwgt[v as usize * self.ncon + c]
    }

    /// All weights of `v`.
    #[inline]
    pub fn vwgts(&self, v: u32) -> &[u64] {
        let base = v as usize * self.ncon;
        &self.vwgt[base..base + self.ncon]
    }

    /// Total weight per constraint.
    pub fn total_weights(&self) -> Vec<u64> {
        let mut totals = vec![0u64; self.ncon];
        for v in 0..self.n() {
            for (c, t) in totals.iter_mut().enumerate() {
                *t += self.vwgt(v, c);
            }
        }
        totals
    }

    /// Sum of all edge weights (each undirected edge counted once).
    pub fn total_edge_weight(&self) -> u64 {
        self.adjwgt.iter().map(|&w| w as u64).sum::<u64>() / 2
    }

    /// Structural validation: symmetric adjacency, no self-loops, weights
    /// consistent.
    pub fn validate(&self) -> Result<(), String> {
        let n = self.n();
        if self.adjncy.len() != self.adjwgt.len() {
            return Err("adjncy/adjwgt length mismatch".into());
        }
        if self.vwgt.len() != n as usize * self.ncon {
            return Err("vwgt length mismatch".into());
        }
        for v in 0..n {
            for (u, w) in self.neighbors(v) {
                if u >= n {
                    return Err(format!("edge ({v},{u}) out of range"));
                }
                if u == v {
                    return Err(format!("self-loop at {v}"));
                }
                if !self.neighbors(u).any(|(x, wx)| x == v && wx == w) {
                    return Err(format!("asymmetric edge ({v},{u})"));
                }
            }
        }
        Ok(())
    }
}

/// Incremental builder: add undirected edges (duplicates accumulate their
/// weights), then `build()`.
#[derive(Debug, Clone)]
pub struct GraphBuilder {
    n: u32,
    ncon: usize,
    vwgt: Vec<u64>,
    /// (u, v, w) with u < v.
    edges: Vec<(u32, u32, u32)>,
}

impl GraphBuilder {
    /// A builder for `n` vertices with `ncon` constraints; vertex weights
    /// start at zero.
    pub fn new(n: u32, ncon: usize) -> Self {
        assert!(ncon >= 1, "need at least one constraint");
        GraphBuilder {
            n,
            ncon,
            vwgt: vec![0; n as usize * ncon],
            edges: Vec::new(),
        }
    }

    /// Set all weights of vertex `v`.
    pub fn set_vwgt(&mut self, v: u32, weights: &[u64]) {
        assert_eq!(weights.len(), self.ncon);
        let base = v as usize * self.ncon;
        self.vwgt[base..base + self.ncon].copy_from_slice(weights);
    }

    /// Add weight to one constraint of vertex `v`.
    pub fn add_vwgt(&mut self, v: u32, c: usize, w: u64) {
        self.vwgt[v as usize * self.ncon + c] += w;
    }

    /// Add an undirected edge. Parallel edges merge by weight addition;
    /// self-loops are ignored.
    pub fn add_edge(&mut self, u: u32, v: u32, w: u32) {
        if u == v {
            return;
        }
        assert!(u < self.n && v < self.n, "edge ({u},{v}) out of range");
        let (a, b) = if u < v { (u, v) } else { (v, u) };
        self.edges.push((a, b, w));
    }

    /// Build the CSR graph (sorts and merges edges).
    pub fn build(mut self) -> CsrGraph {
        self.edges.sort_unstable_by_key(|&(u, v, _)| (u, v));
        // Merge parallel edges (saturating to keep u32 weights safe).
        let mut merged: Vec<(u32, u32, u32)> = Vec::with_capacity(self.edges.len());
        for &(u, v, w) in &self.edges {
            match merged.last_mut() {
                Some(last) if last.0 == u && last.1 == v => {
                    last.2 = last.2.saturating_add(w);
                }
                _ => merged.push((u, v, w)),
            }
        }
        let n = self.n as usize;
        let mut deg = vec![0u32; n + 1];
        for &(u, v, _) in &merged {
            deg[u as usize + 1] += 1;
            deg[v as usize + 1] += 1;
        }
        for i in 1..=n {
            deg[i] += deg[i - 1];
        }
        let xadj = deg.clone();
        let mut cursor = deg;
        let m2 = merged.len() * 2;
        let mut adjncy = vec![0u32; m2];
        let mut adjwgt = vec![0u32; m2];
        for &(u, v, w) in &merged {
            let cu = cursor[u as usize] as usize;
            adjncy[cu] = v;
            adjwgt[cu] = w;
            cursor[u as usize] += 1;
            let cv = cursor[v as usize] as usize;
            adjncy[cv] = u;
            adjwgt[cv] = w;
            cursor[v as usize] += 1;
        }
        CsrGraph {
            ncon: self.ncon,
            xadj,
            adjncy,
            adjwgt,
            vwgt: self.vwgt,
        }
    }
}

/// The 13-vertex example of the paper's Figure 2 (vertex 1 has weight 8 and
/// the most edges; vertices 7 and 9 have weight 1; the rest weight 2), used
/// in tests and the partition-study example. Vertex ids are zero-based
/// (paper's node 1 → vertex 0).
pub fn figure2_example() -> CsrGraph {
    // Node weights from the caption: node 1 → 8, nodes 7 and 9 → 1. The
    // remaining weights and the topology (a star of 8 around node 1 plus two
    // short chains) are chosen to reproduce the caption's arithmetic
    // exactly: total weight 24 (avg 4.8 over 5 partitions), a load-optimal
    // partitioning with 8 cuts and max load 8 (ratio 8/4.8 ≈ 1.67), and a
    // cut-optimal partitioning with 6 cuts and max load 10 (10/4.8 ≈ 2.08).
    let weights: [u64; 13] = [8, 2, 2, 2, 2, 1, 1, 1, 1, 1, 1, 1, 1];
    let mut b = GraphBuilder::new(13, 1);
    for (v, &w) in weights.iter().enumerate() {
        b.set_vwgt(v as u32, &[w]);
    }
    // Star: node 1 (id 0) connects to ids 1..=8.
    for v in 1..=8u32 {
        b.add_edge(0, v, 1);
    }
    // Periphery pairs among the remaining vertices.
    b.add_edge(9, 10, 1);
    b.add_edge(11, 12, 1);
    b.add_edge(1, 9, 1);
    b.add_edge(2, 11, 1);
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_produces_symmetric_csr() {
        let mut b = GraphBuilder::new(4, 2);
        b.set_vwgt(0, &[1, 10]);
        b.set_vwgt(1, &[2, 20]);
        b.add_edge(0, 1, 3);
        b.add_edge(1, 2, 1);
        b.add_edge(2, 3, 5);
        let g = b.build();
        g.validate().unwrap();
        assert_eq!(g.n(), 4);
        assert_eq!(g.m(), 3);
        assert_eq!(g.vwgt(0, 1), 10);
        assert_eq!(g.degree(1), 2);
        assert_eq!(g.total_edge_weight(), 9);
    }

    #[test]
    fn parallel_edges_merge() {
        let mut b = GraphBuilder::new(2, 1);
        b.add_edge(0, 1, 2);
        b.add_edge(1, 0, 3);
        let g = b.build();
        assert_eq!(g.m(), 1);
        assert_eq!(g.neighbors(0).next(), Some((1, 5)));
    }

    #[test]
    fn self_loops_dropped() {
        let mut b = GraphBuilder::new(2, 1);
        b.add_edge(0, 0, 9);
        b.add_edge(0, 1, 1);
        let g = b.build();
        assert_eq!(g.m(), 1);
        g.validate().unwrap();
    }

    #[test]
    fn totals() {
        let mut b = GraphBuilder::new(3, 2);
        b.set_vwgt(0, &[1, 4]);
        b.set_vwgt(1, &[2, 5]);
        b.set_vwgt(2, &[3, 6]);
        let g = b.build();
        assert_eq!(g.total_weights(), vec![6, 15]);
    }

    #[test]
    fn isolated_vertices_ok() {
        let b = GraphBuilder::new(5, 1);
        let g = b.build();
        g.validate().unwrap();
        assert_eq!(g.n(), 5);
        assert_eq!(g.m(), 0);
        assert_eq!(g.degree(3), 0);
    }

    #[test]
    fn figure2_matches_caption_arithmetic() {
        let g = figure2_example();
        g.validate().unwrap();
        assert_eq!(g.n(), 13);
        // Total weight 24 ⇒ 5-way average load is 4.8, so the caption's
        // max/avg ratios are 8/4.8 ≈ 1.67 and 10/4.8 ≈ 2.08.
        let total: u64 = g.total_weights()[0];
        assert_eq!(total, 24);
        assert!((8.0 / (total as f64 / 5.0) - 1.67).abs() < 0.01);
        assert!((10.0 / (total as f64 / 5.0) - 2.08).abs() < 0.01);
        // Heaviest vertex has the most edges.
        let dmax_v = (0..g.n()).max_by_key(|&v| g.degree(v)).unwrap();
        assert_eq!(dmax_v, 0);
        assert_eq!(g.degree(0), 8);
        assert_eq!(g.vwgt(0, 0), 8);
    }
}
