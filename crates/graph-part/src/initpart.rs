//! Greedy graph-growing initial partitioning (on the coarsest graph).
//!
//! Grows the k regions one at a time from high-degree seeds, preferring the
//! frontier vertex most strongly connected to the growing region, and stops
//! each region once its *fullness* — the maximum over constraints of
//! load/target — reaches 1. Leftover vertices are placed heaviest-first
//! onto the least-full partition (a 2-approximation for makespan, which is
//! exactly the `Lmax` quantity §III-B analyzes).

use crate::graph::CsrGraph;
use crate::Partition;
use ptts::CounterRng;
use std::collections::BinaryHeap;

/// Track per-partition loads and fullness for multi-constraint balance.
#[derive(Debug, Clone)]
pub struct LoadTracker {
    /// loads[p * ncon + c]
    loads: Vec<u64>,
    /// Target load per partition per constraint, `targets[p * ncon + c]`
    /// (uniform total/k unless built with explicit fractions).
    targets: Vec<f64>,
    ncon: usize,
}

impl LoadTracker {
    /// Build from graph totals with uniform per-partition targets.
    pub fn new(g: &CsrGraph, k: u32) -> Self {
        Self::with_fractions(g, &vec![1.0 / k as f64; k as usize])
    }

    /// Build with per-partition target *fractions* of the total weight
    /// (used by recursive bisection, whose halves are unequal for odd k).
    /// `fractions` must be positive; they need not sum exactly to 1.
    pub fn with_fractions(g: &CsrGraph, fractions: &[f64]) -> Self {
        let totals = g.total_weights();
        let k = fractions.len();
        let mut targets = Vec::with_capacity(k * g.ncon());
        for &f in fractions {
            assert!(f > 0.0, "target fractions must be positive");
            for &t in &totals {
                targets.push((t as f64 * f).max(1.0));
            }
        }
        LoadTracker {
            loads: vec![0; k * g.ncon()],
            targets,
            ncon: g.ncon(),
        }
    }

    /// Add vertex `v`'s weights to partition `p`.
    #[inline]
    pub fn add(&mut self, g: &CsrGraph, p: u32, v: u32) {
        let base = p as usize * self.ncon;
        for (c, &w) in g.vwgts(v).iter().enumerate() {
            self.loads[base + c] += w;
        }
    }

    /// Remove vertex `v`'s weights from partition `p`.
    #[inline]
    pub fn remove(&mut self, g: &CsrGraph, p: u32, v: u32) {
        let base = p as usize * self.ncon;
        for (c, &w) in g.vwgts(v).iter().enumerate() {
            self.loads[base + c] -= w;
        }
    }

    /// Fullness of partition `p`: max over constraints of load/target.
    #[inline]
    pub fn fullness(&self, p: u32) -> f64 {
        let base = p as usize * self.ncon;
        (0..self.ncon)
            .map(|c| self.loads[base + c] as f64 / self.targets[base + c])
            .fold(0.0, f64::max)
    }

    /// Fullness of `p` if vertex `v` were added.
    #[inline]
    pub fn fullness_with(&self, g: &CsrGraph, p: u32, v: u32) -> f64 {
        let base = p as usize * self.ncon;
        g.vwgts(v)
            .iter()
            .enumerate()
            .map(|(c, &w)| (self.loads[base + c] + w) as f64 / self.targets[base + c])
            .fold(0.0, f64::max)
    }

    /// Load of partition `p` under constraint `c`.
    #[inline]
    pub fn load(&self, p: u32, c: usize) -> u64 {
        self.loads[p as usize * self.ncon + c]
    }

    /// Number of partitions.
    pub fn k(&self) -> u32 {
        (self.loads.len() / self.ncon) as u32
    }

    /// Maximum fullness over all partitions.
    pub fn max_fullness(&self) -> f64 {
        (0..self.k()).map(|p| self.fullness(p)).fold(0.0, f64::max)
    }
}

/// Greedy growing k-way initial partition.
pub fn greedy_growing(g: &CsrGraph, k: u32, seed: u64) -> Partition {
    let n = g.n();
    assert!(k >= 1);
    if k == 1 {
        return Partition {
            k,
            assignment: vec![0; n as usize],
        };
    }
    if n <= k {
        // One vertex per partition; extra partitions stay empty.
        return Partition {
            k,
            assignment: (0..n).collect(),
        };
    }

    const UNASSIGNED: u32 = u32::MAX;
    let mut part = vec![UNASSIGNED; n as usize];
    let mut tracker = LoadTracker::new(g, k);
    let mut rng = CounterRng::from_key(&[seed, 0x1417]);

    // Vertices by descending degree: good seeds first.
    let mut by_degree: Vec<u32> = (0..n).collect();
    by_degree.sort_by_key(|&v| std::cmp::Reverse(g.degree(v)));
    let mut seed_cursor = 0usize;

    for p in 0..k - 1 {
        // Pick the highest-degree unassigned vertex as seed.
        while seed_cursor < by_degree.len() && part[by_degree[seed_cursor] as usize] != UNASSIGNED {
            seed_cursor += 1;
        }
        let Some(&sv) = by_degree.get(seed_cursor) else {
            break;
        };
        // Max-heap of (connection weight to region, tie-break rand, vertex).
        let mut frontier: BinaryHeap<(u64, u64, u32)> = BinaryHeap::new();
        frontier.push((0, rng.uniform_u64(u64::MAX), sv));
        while tracker.fullness(p) < 1.0 {
            let Some((_, _, v)) = frontier.pop() else {
                break;
            };
            if part[v as usize] != UNASSIGNED {
                continue;
            }
            part[v as usize] = p;
            tracker.add(g, p, v);
            for (u, w) in g.neighbors(v) {
                if part[u as usize] == UNASSIGNED {
                    frontier.push((w as u64, rng.uniform_u64(u64::MAX), u));
                }
            }
        }
    }

    // Leftovers (including everything destined for the last partition):
    // heaviest-first onto the least-full partition. A lazy min-heap keyed
    // by fullness keeps this O((n + k) log k) — the paper partitions into
    // up to 196,608 parts, so a linear scan per vertex would be quadratic.
    let mut leftovers: Vec<u32> = (0..n).filter(|&v| part[v as usize] == UNASSIGNED).collect();
    leftovers.sort_by_key(|&v| std::cmp::Reverse(g.vwgts(v).iter().copied().max().unwrap_or(0)));
    // Heap of (Reverse(fullness as sortable bits), partition); entries go
    // stale after other insertions and are re-validated on pop.
    let key = |f: f64| -> u64 { (f.max(0.0) * 1e12) as u64 };
    let mut heap: BinaryHeap<std::cmp::Reverse<(u64, u32)>> = (0..k)
        .map(|p| std::cmp::Reverse((key(tracker.fullness(p)), p)))
        .collect();
    for v in leftovers {
        let p = loop {
            let std::cmp::Reverse((stale, p)) = heap.pop().expect("heap never empties");
            let current = key(tracker.fullness(p));
            if current <= stale {
                break p;
            }
            heap.push(std::cmp::Reverse((current, p)));
        };
        part[v as usize] = p;
        tracker.add(g, p, v);
        heap.push(std::cmp::Reverse((key(tracker.fullness(p)), p)));
    }

    Partition {
        k,
        assignment: part,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::{figure2_example, GraphBuilder};
    use crate::metrics::{imbalances, partition_loads};

    fn grid_graph(side: u32) -> CsrGraph {
        let n = side * side;
        let mut b = GraphBuilder::new(n, 1);
        for v in 0..n {
            b.set_vwgt(v, &[1]);
        }
        for r in 0..side {
            for c in 0..side {
                let v = r * side + c;
                if c + 1 < side {
                    b.add_edge(v, v + 1, 1);
                }
                if r + 1 < side {
                    b.add_edge(v, v + side, 1);
                }
            }
        }
        b.build()
    }

    #[test]
    fn all_vertices_assigned() {
        let g = grid_graph(12);
        let p = greedy_growing(&g, 4, 1);
        p.validate().unwrap();
        assert_eq!(p.assignment.len(), 144);
    }

    #[test]
    fn balance_on_uniform_grid() {
        let g = grid_graph(16);
        let p = greedy_growing(&g, 4, 3);
        let loads = partition_loads(&g, &p);
        let imb = imbalances(&g, &p);
        assert!(imb[0] < 1.25, "imbalance {} loads {loads:?}", imb[0]);
    }

    #[test]
    fn k_equals_one() {
        let g = grid_graph(4);
        let p = greedy_growing(&g, 1, 1);
        assert!(p.assignment.iter().all(|&x| x == 0));
    }

    #[test]
    fn k_ge_n_gives_identity_prefix() {
        let g = grid_graph(2);
        let p = greedy_growing(&g, 16, 1);
        p.validate().unwrap();
        assert_eq!(p.assignment, vec![0, 1, 2, 3]);
    }

    #[test]
    fn two_constraints_both_balanced() {
        // Vertices heavy in constraint 0 (even ids) vs constraint 1 (odd).
        let mut b = GraphBuilder::new(64, 2);
        for v in 0..64u32 {
            if v % 2 == 0 {
                b.set_vwgt(v, &[10, 1]);
            } else {
                b.set_vwgt(v, &[1, 10]);
            }
        }
        for v in 0..63 {
            b.add_edge(v, v + 1, 1);
        }
        let g = b.build();
        let p = greedy_growing(&g, 4, 5);
        let imb = imbalances(&g, &p);
        assert!(imb[0] < 1.5 && imb[1] < 1.5, "imbalances {imb:?}");
    }

    #[test]
    fn figure2_load_optimal_is_reachable() {
        // With the heavy vertex alone, max load per partition is 8 —
        // greedy growing should land at most a whisker above that.
        let g = figure2_example();
        let p = greedy_growing(&g, 5, 11);
        let loads = partition_loads(&g, &p);
        let max = loads.iter().map(|l| l[0]).max().unwrap();
        assert!(max <= 10, "max load {max} (caption's two options: 8 or 10)");
    }

    #[test]
    fn deterministic_for_fixed_seed() {
        let g = grid_graph(10);
        let a = greedy_growing(&g, 5, 42);
        let b = greedy_growing(&g, 5, 42);
        assert_eq!(a.assignment, b.assignment);
    }
}
