//! Greedy boundary refinement with multi-constraint balance.
//!
//! After each uncoarsening step the projected partition is improved by
//! moving boundary vertices between partitions. A move is accepted when it
//! reduces the edge cut without violating the balance limit, or when it
//! strictly improves the worst fullness (rebalancing moves). This is the
//! k-way analogue of Fiduccia–Mattheyses used by METIS's refinement phase.

use crate::graph::CsrGraph;
use crate::initpart::LoadTracker;
use crate::Partition;
use ptts::CounterRng;

/// Refinement parameters.
#[derive(Debug, Clone, Copy)]
pub struct RefineConfig {
    /// Balance limit: a partition may hold up to `ubfactor ×` the average
    /// load per constraint (METIS's default is 1.03–1.05; heavy-tailed
    /// graphs need more slack).
    pub ubfactor: f64,
    /// Maximum number of full passes over the boundary.
    pub max_passes: u32,
    /// RNG seed for visitation order.
    pub seed: u64,
}

impl Default for RefineConfig {
    fn default() -> Self {
        RefineConfig {
            ubfactor: 1.05,
            max_passes: 8,
            seed: 1,
        }
    }
}

/// Refine `p` in place. Returns the total cut improvement achieved.
pub fn refine(g: &CsrGraph, p: &mut Partition, cfg: &RefineConfig) -> u64 {
    refine_targets(g, p, cfg, None)
}

/// Like [`refine`] but with optional per-partition target fractions of the
/// total weight (recursive bisection refines 2-way cuts with unequal
/// sides). `None` means uniform.
pub fn refine_targets(
    g: &CsrGraph,
    p: &mut Partition,
    cfg: &RefineConfig,
    fractions: Option<&[f64]>,
) -> u64 {
    let n = g.n();
    let k = p.k;
    if k <= 1 || n == 0 {
        return 0;
    }
    let mut tracker = match fractions {
        Some(f) => {
            assert_eq!(f.len(), k as usize);
            LoadTracker::with_fractions(g, f)
        }
        None => LoadTracker::new(g, k),
    };
    for v in 0..n {
        tracker.add(g, p.assignment[v as usize], v);
    }

    let mut rng = CounterRng::from_key(&[cfg.seed, 0x0EF1]);
    let mut order: Vec<u32> = (0..n).collect();
    let mut total_improvement = 0u64;
    // Scratch: connection weight of the current vertex to each partition,
    // maintained sparsely via a touched list.
    let mut conn = vec![0u64; k as usize];
    let mut touched: Vec<u32> = Vec::new();

    for _ in 0..cfg.max_passes {
        // Shuffle visitation order each pass.
        for i in (1..n as usize).rev() {
            let j = rng.uniform_u64((i + 1) as u64) as usize;
            order.swap(i, j);
        }
        let mut pass_improvement = 0u64;
        let mut moved = false;
        // Least-full partition at pass start: the escape hatch for
        // *internal* vertices of overloaded partitions (e.g. a partition
        // holding the entire graph), which have no boundary candidates.
        let lightest = (0..k)
            .min_by(|&a, &b| {
                tracker
                    .fullness(a)
                    .partial_cmp(&tracker.fullness(b))
                    .unwrap()
            })
            .unwrap_or(0);

        for &v in &order {
            let from = p.assignment[v as usize];
            // Gather connection weights to neighboring partitions.
            touched.clear();
            let mut is_boundary = false;
            for (u, w) in g.neighbors(v) {
                let pu = p.assignment[u as usize];
                if conn[pu as usize] == 0 {
                    touched.push(pu);
                }
                conn[pu as usize] += w as u64;
                if pu != from {
                    is_boundary = true;
                }
            }
            let from_fullness = tracker.fullness(from);
            let overloaded = from_fullness > cfg.ubfactor;
            if !is_boundary && !overloaded {
                for &t in &touched {
                    conn[t as usize] = 0;
                }
                continue;
            }
            let conn_from = conn[from as usize];

            // Best candidate partition among neighbors (plus the lightest
            // partition when the source is overloaded).
            let mut best: Option<(u32, i64, f64)> = None; // (to, gain, to_fullness_after)
            let extra = if overloaded && lightest != from && !touched.contains(&lightest) {
                Some(lightest)
            } else {
                None
            };
            for &to in touched.iter().chain(extra.iter()) {
                if to == from {
                    continue;
                }
                let gain = conn[to as usize] as i64 - conn_from as i64;
                let to_after = tracker.fullness_with(g, to, v);
                let acceptable = if gain > 0 {
                    // Cut-improving: target must stay within the balance
                    // limit, or at least not become worse than the source
                    // already is (min-max fallback for infeasible graphs).
                    to_after <= cfg.ubfactor || to_after < from_fullness
                } else if gain == 0 {
                    // Balance-improving sideways move.
                    to_after < from_fullness - 1e-12
                } else {
                    // Cut-worsening move: only to drain an overloaded
                    // partition, and only if the target remains strictly
                    // less full than the source was.
                    overloaded && to_after < from_fullness - 1e-12
                };
                if acceptable {
                    match best {
                        Some((_, bg, bf)) if (bg, -bf) >= (gain, -to_after) => {}
                        _ => best = Some((to, gain, to_after)),
                    }
                }
            }
            if let Some((to, gain, _)) = best {
                tracker.remove(g, from, v);
                tracker.add(g, to, v);
                p.assignment[v as usize] = to;
                if gain > 0 {
                    pass_improvement += gain as u64;
                }
                moved = true;
            }
            for &t in &touched {
                conn[t as usize] = 0;
            }
        }
        total_improvement += pass_improvement;
        if !moved {
            break;
        }
    }
    total_improvement
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::GraphBuilder;
    use crate::metrics::{imbalances, total_edge_cut};

    fn ring(n: u32) -> CsrGraph {
        let mut b = GraphBuilder::new(n, 1);
        for v in 0..n {
            b.set_vwgt(v, &[1]);
        }
        for v in 0..n {
            b.add_edge(v, (v + 1) % n, 1);
        }
        b.build()
    }

    #[test]
    fn refinement_reduces_cut_of_scrambled_partition() {
        let g = ring(64);
        // Worst case: alternate partitions → cut = 64.
        let mut p = Partition {
            k: 2,
            assignment: (0..64).map(|v| v % 2).collect(),
        };
        let before = total_edge_cut(&g, &p);
        assert_eq!(before, 64);
        refine(&g, &mut p, &RefineConfig::default());
        let after = total_edge_cut(&g, &p);
        assert!(after < before, "cut {after} !< {before}");
        // Ring bisection optimum is 2; greedy should get close.
        assert!(after <= 8, "cut after refine = {after}");
        // Balance must be maintained.
        let imb = imbalances(&g, &p);
        assert!(imb[0] <= 1.1, "imbalance {}", imb[0]);
    }

    #[test]
    fn refinement_improves_cut_or_balance() {
        let g = ring(40);
        for seed in 0..5u64 {
            let mut rng = CounterRng::from_key(&[seed]);
            let mut p = Partition {
                k: 4,
                assignment: (0..40).map(|_| rng.uniform_u64(4) as u32).collect(),
            };
            let cut_before = total_edge_cut(&g, &p);
            let imb_before = imbalances(&g, &p)[0];
            refine(
                &g,
                &mut p,
                &RefineConfig {
                    seed,
                    ..Default::default()
                },
            );
            let cut_after = total_edge_cut(&g, &p);
            let imb_after = imbalances(&g, &p)[0];
            // Refinement may trade a little cut for balance on unbalanced
            // input, but must never worsen both.
            assert!(
                cut_after <= cut_before || imb_after < imb_before,
                "seed {seed}: cut {cut_before}→{cut_after}, imb {imb_before}→{imb_after}"
            );
            p.validate().unwrap();
        }
    }

    #[test]
    fn rebalancing_moves_fix_overload() {
        // All vertices initially in partition 0 of 2: refinement must move
        // roughly half across even though the cut temporarily dislikes it.
        let g = ring(32);
        let mut p = Partition {
            k: 2,
            assignment: vec![0; 32],
        };
        refine(&g, &mut p, &RefineConfig::default());
        let imb = imbalances(&g, &p);
        assert!(imb[0] < 1.6, "imbalance {} — rebalancing failed", imb[0]);
    }

    #[test]
    fn single_partition_noop() {
        let g = ring(8);
        let mut p = Partition {
            k: 1,
            assignment: vec![0; 8],
        };
        assert_eq!(refine(&g, &mut p, &RefineConfig::default()), 0);
    }

    #[test]
    fn multiconstraint_balance_respected() {
        // Two constraints where naive cut-chasing would pile constraint-1
        // weight into one partition.
        let mut b = GraphBuilder::new(32, 2);
        for v in 0..32u32 {
            b.set_vwgt(v, &[1, if v < 16 { 10 } else { 1 }]);
        }
        for v in 0..32 {
            b.add_edge(v, (v + 1) % 32, 1);
        }
        let g = b.build();
        let mut rng = CounterRng::from_key(&[3]);
        let mut p = Partition {
            k: 4,
            assignment: (0..32).map(|_| rng.uniform_u64(4) as u32).collect(),
        };
        refine(&g, &mut p, &RefineConfig::default());
        let imb = imbalances(&g, &p);
        // Constraint 1 is lumpy (half the vertices carry 10×); just require
        // that it did not collapse into a single partition.
        assert!(imb[1] < 2.5, "imbalances {imb:?}");
    }
}
